// Command-line front end for the library: optimize a workload spec, answer
// it privately over a CSV dataset, or translate SQL scripts into workload
// specs. This is the path a data custodian without a C++ toolchain takes:
// author a .workload file (or SQL), then
//
//   hdmm_cli optimize    --workload w.workload
//   hdmm_cli run         --workload w.workload --data people.csv --epsilon 1
//   hdmm_cli convert-sql --domain "sex=2,age=115" --sql queries.sql
//
// Strategy selection never touches the data (Section 7.3 of the paper);
// only `run` consumes privacy budget, via the Laplace mechanism.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "core/hdmm.h"
#include "core/strategy_io.h"
#include "core/svd_bound.h"
#include "data/csv.h"
#include "workload/building_blocks.h"
#include "workload/parser.h"
#include "workload/sql.h"

namespace {

using namespace hdmm;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hdmm_cli optimize    --workload FILE [--restarts N] [--seed S]\n"
      "                       [--epsilon E] [--save-strategy FILE]\n"
      "  hdmm_cli run         --workload FILE --data FILE --epsilon E\n"
      "                       [--seed S] [--truth] [--strategy FILE]\n"
      "  hdmm_cli convert-sql --domain \"a=2,b=10,...\" --sql FILE\n"
      "  hdmm_cli show        --workload FILE\n"
      "\n"
      "Optimize once, reuse forever: `optimize --save-strategy s.hdmm`\n"
      "persists the selected strategy; `run --strategy s.hdmm` skips the\n"
      "optimization (strategy selection is data-independent, Section 7.3).\n");
  return 2;
}

// Minimal flag parsing: --name value pairs plus boolean --name.
struct Flags {
  std::map<std::string, std::string> values;
  bool Has(const std::string& name) const { return values.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& dflt = "") const {
    auto it = values.find(name);
    return it == values.end() ? dflt : it->second;
  }
};

bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  static const char* kBoolFlags[] = {"truth"};
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg);
      return false;
    }
    const std::string name = arg + 2;
    bool is_bool = false;
    for (const char* b : kBoolFlags) {
      if (name == b) is_bool = true;
    }
    if (is_bool) {
      flags->values[name] = "1";
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
      flags->values[name] = argv[++i];
    }
  }
  return true;
}

bool LoadWorkloadFlag(const Flags& flags, UnionWorkload* w) {
  const std::string path = flags.Get("workload");
  if (path.empty()) {
    std::fprintf(stderr, "missing --workload FILE\n");
    return false;
  }
  std::string error;
  if (!LoadWorkloadFile(path, w, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Parses "a=2,b=10" into a named Domain.
bool ParseDomainSpec(const std::string& spec, Domain* out) {
  std::vector<std::string> names;
  std::vector<int64_t> sizes;
  std::string current;
  std::istringstream in(spec);
  while (std::getline(in, current, ',')) {
    const size_t eq = current.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad domain component '%s' (want name=size)\n",
                   current.c_str());
      return false;
    }
    char* end = nullptr;
    const long long size = std::strtoll(current.c_str() + eq + 1, &end, 10);
    if (*end != '\0' || size < 1) {
      std::fprintf(stderr, "bad attribute size in '%s'\n", current.c_str());
      return false;
    }
    names.push_back(current.substr(0, eq));
    sizes.push_back(size);
  }
  if (names.empty()) {
    std::fprintf(stderr, "empty domain spec\n");
    return false;
  }
  *out = Domain(std::move(names), std::move(sizes));
  return true;
}

void PrintWorkloadSummary(const UnionWorkload& w) {
  std::printf("domain:   %s  (N = %lld)\n", w.domain().ToString().c_str(),
              static_cast<long long>(w.DomainSize()));
  std::printf("products: %d\n", w.NumProducts());
  std::printf("queries:  %lld\n", static_cast<long long>(w.TotalQueries()));
  std::printf("implicit storage: %lld doubles (explicit would be %lld)\n",
               static_cast<long long>(w.ImplicitStorageDoubles()),
               static_cast<long long>(w.ExplicitStorageDoubles()));
}

HdmmResult OptimizeFromFlags(const UnionWorkload& w, const Flags& flags) {
  HdmmOptions options;
  options.restarts = static_cast<int>(
      std::strtol(flags.Get("restarts", "3").c_str(), nullptr, 10));
  options.seed = static_cast<uint64_t>(
      std::strtoll(flags.Get("seed", "0").c_str(), nullptr, 10));
  return OptimizeStrategy(w, options);
}

int CmdOptimize(const Flags& flags) {
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  PrintWorkloadSummary(w);

  const double epsilon = std::strtod(flags.Get("epsilon", "1.0").c_str(),
                                     nullptr);
  HdmmResult result = OptimizeFromFlags(w, flags);
  std::printf("\nchosen operator: %s\n", result.chosen_operator.c_str());
  std::printf("strategy queries: %lld, sensitivity %.6f\n",
              static_cast<long long>(result.strategy->NumQueries()),
              result.strategy->Sensitivity());
  std::printf("expected per-query RMSE at epsilon=%.3g: %.4f\n", epsilon,
              result.strategy->RootMeanSquaredError(w, epsilon));

  // Identity baseline ratio (always defined).
  std::vector<Matrix> id_factors;
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    id_factors.push_back(IdentityBlock(w.domain().AttributeSize(i)));
  }
  KronStrategy identity(std::move(id_factors), "identity");
  std::printf("error ratio vs Identity baseline: %.3f\n",
              std::sqrt(identity.SquaredError(w) / result.squared_error));

  // Laplace-mechanism baseline: per-query noise at workload sensitivity.
  const double lm_error = w.Sensitivity() * w.Sensitivity() *
                          static_cast<double>(w.TotalQueries());
  std::printf("error ratio vs Laplace mechanism:  %.3f\n",
              std::sqrt(lm_error / result.squared_error));

  // Spectral lower bound when computable (single product at any scale,
  // unions on modest domains).
  if (w.NumProducts() == 1 || w.DomainSize() <= 4096) {
    const double gap = OptimalityRatio(*result.strategy, w);
    std::printf("optimality gap vs spectral lower bound [28]: %.3f%s\n", gap,
                gap < 1.005 ? " (certified optimal)" : "");
  }

  if (flags.Has("save-strategy")) {
    const std::string path = flags.Get("save-strategy");
    std::string error;
    if (!SaveStrategyFile(path, *result.strategy, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("strategy saved to %s\n", path.c_str());
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  const std::string data_path = flags.Get("data");
  if (data_path.empty()) {
    std::fprintf(stderr, "missing --data FILE\n");
    return 1;
  }
  if (!flags.Has("epsilon")) {
    std::fprintf(stderr, "missing --epsilon E\n");
    return 1;
  }
  const double epsilon = std::strtod(flags.Get("epsilon").c_str(), nullptr);
  if (epsilon <= 0.0) {
    std::fprintf(stderr, "--epsilon must be positive\n");
    return 1;
  }

  Dataset dataset(w.domain());
  std::string error;
  if (!LoadCsvDataset(data_path, w.domain(), &dataset, &error)) {
    std::fprintf(stderr, "%s: %s\n", data_path.c_str(), error.c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %lld records over %s\n",
               static_cast<long long>(dataset.NumRecords()),
               w.domain().ToString().c_str());

  // Either reuse a saved strategy (optimize-once workflow) or select one
  // now; neither path touches the data.
  std::unique_ptr<Strategy> strategy;
  if (flags.Has("strategy")) {
    std::string error;
    strategy = LoadStrategyFile(flags.Get("strategy"), &error);
    if (strategy == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (strategy->DomainSize() != w.DomainSize()) {
      std::fprintf(stderr,
                   "strategy domain size %lld does not match workload %lld\n",
                   static_cast<long long>(strategy->DomainSize()),
                   static_cast<long long>(w.DomainSize()));
      return 1;
    }
    if (!SupportsWorkload(*strategy, w)) {
      std::fprintf(stderr,
                   "loaded strategy does not support this workload "
                   "(W A+ A != W); reconstruction would be biased\n");
      return 1;
    }
    std::fprintf(stderr, "loaded strategy: %s\n", strategy->Name().c_str());
  } else {
    HdmmResult result = OptimizeFromFlags(w, flags);
    std::fprintf(stderr, "optimized strategy: %s\n",
                 result.chosen_operator.c_str());
    strategy = std::move(result.strategy);
  }
  std::fprintf(stderr, "expected per-query RMSE %.4f\n",
               strategy->RootMeanSquaredError(w, epsilon));

  const Vector x = dataset.ToDataVector();
  Rng rng(static_cast<uint64_t>(
      std::strtoll(flags.Get("seed", "0").c_str(), nullptr, 10)));
  const Vector answers = RunMechanism(w, *strategy, x, epsilon, &rng);

  if (flags.Has("truth")) {
    const Vector truth = TrueAnswers(w, x);
    double sq = 0.0;
    for (size_t i = 0; i < answers.size(); ++i) {
      const double diff = answers[i] - truth[i];
      sq += diff * diff;
    }
    std::printf("# query, private_answer, true_answer\n");
    for (size_t i = 0; i < answers.size(); ++i) {
      std::printf("%zu,%.4f,%.1f\n", i, answers[i], truth[i]);
    }
    std::fprintf(stderr, "realized per-query RMSE: %.4f\n",
                 std::sqrt(sq / static_cast<double>(answers.size())));
  } else {
    std::printf("# query, private_answer\n");
    for (size_t i = 0; i < answers.size(); ++i) {
      std::printf("%zu,%.4f\n", i, answers[i]);
    }
  }
  return 0;
}

int CmdConvertSql(const Flags& flags) {
  Domain domain;
  if (!ParseDomainSpec(flags.Get("domain"), &domain)) return 1;
  const std::string sql_path = flags.Get("sql");
  if (sql_path.empty()) {
    std::fprintf(stderr, "missing --sql FILE\n");
    return 1;
  }
  std::ifstream in(sql_path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", sql_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  UnionWorkload w;
  std::string error;
  if (!ParseSqlWorkload(buffer.str(), domain, &w, &error)) {
    std::fprintf(stderr, "%s: %s\n", sql_path.c_str(), error.c_str());
    return 1;
  }
  std::fputs(SerializeWorkload(w).c_str(), stdout);
  return 0;
}

int CmdShow(const Flags& flags) {
  // --strategy: describe a persisted strategy (optionally checking support
  // against --workload). Otherwise show the workload.
  if (flags.Has("strategy")) {
    std::string error;
    auto strategy = LoadStrategyFile(flags.Get("strategy"), &error);
    if (strategy == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fputs(ReportToString(DescribeStrategy(*strategy)).c_str(), stdout);
    if (flags.Has("workload")) {
      UnionWorkload w;
      if (!LoadWorkloadFlag(flags, &w)) return 1;
      if (strategy->DomainSize() != w.DomainSize()) {
        std::printf("workload: DOMAIN MISMATCH (%lld vs %lld cells)\n",
                    static_cast<long long>(w.DomainSize()),
                    static_cast<long long>(strategy->DomainSize()));
        return 1;
      }
      const bool ok = SupportsWorkload(*strategy, w);
      std::printf("workload support: %s\n",
                  ok ? "yes (W A+ A = W)" : "NO — reconstruction would be "
                                            "biased");
      if (ok) {
        std::printf("expected per-query RMSE at epsilon=1: %.4f\n",
                    strategy->RootMeanSquaredError(w, 1.0));
      }
    }
    return 0;
  }
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  PrintWorkloadSummary(w);
  std::printf("\n%s", SerializeWorkload(w).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();

  if (command == "optimize") return CmdOptimize(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "convert-sql") return CmdConvertSql(flags);
  if (command == "show") return CmdShow(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}
