// Command-line front end for the library: optimize a workload spec, answer
// it privately over a CSV dataset, or translate SQL scripts into workload
// specs. This is the path a data custodian without a C++ toolchain takes:
// author a .workload file (or SQL), then
//
//   hdmm_cli optimize    --workload w.workload
//   hdmm_cli run         --workload w.workload --data people.csv --epsilon 1
//   hdmm_cli convert-sql --domain "sex=2,age=115" --sql queries.sql
//
// Strategy selection never touches the data (Section 7.3 of the paper);
// only `run` consumes privacy budget, via the Laplace mechanism.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/diagnostics.h"
#include "core/hdmm.h"
#include "core/strategy_io.h"
#include "core/svd_bound.h"
#include "data/csv.h"
#include "engine/engine.h"
#include "workload/building_blocks.h"
#include "workload/parser.h"
#include "workload/sql.h"

namespace {

using namespace hdmm;

int Usage() {
  std::fprintf(
      stderr,
      "usage: hdmm_cli COMMAND [--threads N] [--stats-json FILE] ...\n"
      "  hdmm_cli optimize    --workload FILE [--restarts N] [--seed S]\n"
      "                       [--epsilon E] [--save-strategy FILE]\n"
      "  hdmm_cli run         --workload FILE --data FILE --epsilon E\n"
      "                       [--seed S] [--truth] [--strategy FILE]\n"
      "  hdmm_cli convert-sql --domain \"a=2,b=10,...\" --sql FILE\n"
      "  hdmm_cli show        --workload FILE\n"
      "  hdmm_cli serve       --workload FILE --data FILE [--budget E]\n"
      "                       [--regime pure|zcdp] [--budget-rho R]\n"
      "                       [--delta D] [--cache-dir DIR] [--ledger FILE]\n"
      "                       [--seed S] [--opt-seed S] [--restarts N]\n"
      "                       [--session-storage memory|mmap]\n"
      "                       [--tile-bytes B] [--hot-tile-budget B]\n"
      "                       [--session-dir DIR] [--max-sessions N]\n"
      "                       [--memory-budget-bytes B] [--deadline-ms MS]\n"
      "\n"
      "Optimize once, reuse forever: `optimize --save-strategy s.hdmm`\n"
      "persists the selected strategy; `run --strategy s.hdmm` skips the\n"
      "optimization (strategy selection is data-independent, Section 7.3).\n"
      "`serve` reads commands from stdin and answers from measurement\n"
      "sessions: measure EPS [NAME] | gaussian RHO [NAME] | use NAME |\n"
      "release [NAME] | sessions | point a=V ... | range a=LO:HI ... |\n"
      "marginal a=V ... | budget | stats [json] | quit. Measurements are\n"
      "named sessions (default name `default`); queries answer from the\n"
      "most recently measured or `use`-selected one.\n"
      "\n"
      "Overload behavior (docs/serving.md): --max-sessions N and\n"
      "--memory-budget-bytes B cap live sessions and their footprint; an\n"
      "over-capacity measure is refused with a retryable\n"
      "`error retryable retry_after_ms=...` reply BEFORE any budget is\n"
      "spent. --deadline-ms MS bounds each measure/query; an expired\n"
      "deadline is likewise retryable and side-effect free.\n"
      "The accountant\n"
      "enforces the budget ceiling: --regime pure composes epsilons\n"
      "sequentially (Laplace only); --regime zcdp composes rho additively\n"
      "(Bun-Steinke) so `gaussian RHO` measurements are accountable too, and\n"
      "reports the spend as (epsilon, --delta)-DP. The ceiling is --budget\n"
      "epsilon (converted to rho under zcdp) or --budget-rho directly. With\n"
      "--cache-dir the spend ledger persists there across restarts (or at\n"
      "--ledger FILE), fsync-backed and flock-protected against concurrent\n"
      "serving processes.\n"
      "\n"
      "--threads N (any command) pins the shared pool's total thread count\n"
      "(planning stays bit-identical at any value for a fixed seed); the\n"
      "HDMM_THREADS environment variable is the equivalent knob for the\n"
      "bench binaries.\n"
      "\n"
      "Observability (docs/observability.md): --stats-json FILE (any\n"
      "command) dumps the metrics registry snapshot as JSON on exit; the\n"
      "serve-mode `stats` command prints live counters (`stats json` for\n"
      "the full snapshot); HDMM_TRACE=FILE records a Chrome trace of the\n"
      "session, loadable at ui.perfetto.dev.\n");
  return 2;
}

// Minimal flag parsing: --name value pairs plus boolean --name.
struct Flags {
  std::map<std::string, std::string> values;
  bool Has(const std::string& name) const { return values.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& dflt = "") const {
    auto it = values.find(name);
    return it == values.end() ? dflt : it->second;
  }
};

bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  static const char* kBoolFlags[] = {"truth"};
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg);
      return false;
    }
    const std::string name = arg + 2;
    bool is_bool = false;
    for (const char* b : kBoolFlags) {
      if (name == b) is_bool = true;
    }
    if (is_bool) {
      flags->values[name] = "1";
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
      flags->values[name] = argv[++i];
    }
  }
  return true;
}

bool LoadWorkloadFlag(const Flags& flags, UnionWorkload* w) {
  const std::string path = flags.Get("workload");
  if (path.empty()) {
    std::fprintf(stderr, "missing --workload FILE\n");
    return false;
  }
  std::string error;
  if (!LoadWorkloadFile(path, w, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Parses "a=2,b=10" into a named Domain.
bool ParseDomainSpec(const std::string& spec, Domain* out) {
  std::vector<std::string> names;
  std::vector<int64_t> sizes;
  std::string current;
  std::istringstream in(spec);
  while (std::getline(in, current, ',')) {
    const size_t eq = current.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad domain component '%s' (want name=size)\n",
                   current.c_str());
      return false;
    }
    char* end = nullptr;
    const long long size = std::strtoll(current.c_str() + eq + 1, &end, 10);
    if (*end != '\0' || size < 1) {
      std::fprintf(stderr, "bad attribute size in '%s'\n", current.c_str());
      return false;
    }
    names.push_back(current.substr(0, eq));
    sizes.push_back(size);
  }
  if (names.empty()) {
    std::fprintf(stderr, "empty domain spec\n");
    return false;
  }
  *out = Domain(std::move(names), std::move(sizes));
  return true;
}

void PrintWorkloadSummary(const UnionWorkload& w) {
  std::printf("domain:   %s  (N = %lld)\n", w.domain().ToString().c_str(),
              static_cast<long long>(w.DomainSize()));
  std::printf("products: %d\n", w.NumProducts());
  std::printf("queries:  %lld\n", static_cast<long long>(w.TotalQueries()));
  std::printf("implicit storage: %lld doubles (explicit would be %lld)\n",
               static_cast<long long>(w.ImplicitStorageDoubles()),
               static_cast<long long>(w.ExplicitStorageDoubles()));
}

HdmmOptions OptionsFromFlags(const Flags& flags) {
  HdmmOptions options;
  options.restarts = static_cast<int>(
      std::strtol(flags.Get("restarts", "3").c_str(), nullptr, 10));
  options.seed = static_cast<uint64_t>(
      std::strtoll(flags.Get("seed", "0").c_str(), nullptr, 10));
  return options;
}

HdmmResult OptimizeFromFlags(const UnionWorkload& w, const Flags& flags) {
  return OptimizeStrategy(w, OptionsFromFlags(flags));
}

int CmdOptimize(const Flags& flags) {
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  PrintWorkloadSummary(w);

  const double epsilon = std::strtod(flags.Get("epsilon", "1.0").c_str(),
                                     nullptr);
  std::printf("plan fingerprint: %s\n",
              FingerprintPlan(w, OptionsFromFlags(flags)).Hex().c_str());
  HdmmResult result = OptimizeFromFlags(w, flags);
  std::printf("\nchosen operator: %s\n", result.chosen_operator.c_str());
  std::printf("strategy queries: %lld, sensitivity %.6f\n",
              static_cast<long long>(result.strategy->NumQueries()),
              result.strategy->Sensitivity());
  std::printf("expected per-query RMSE at epsilon=%.3g: %.4f\n", epsilon,
              result.strategy->RootMeanSquaredError(w, epsilon));

  // Identity baseline ratio (always defined).
  std::vector<Matrix> id_factors;
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    id_factors.push_back(IdentityBlock(w.domain().AttributeSize(i)));
  }
  KronStrategy identity(std::move(id_factors), "identity");
  std::printf("error ratio vs Identity baseline: %.3f\n",
              std::sqrt(identity.SquaredError(w) / result.squared_error));

  // Laplace-mechanism baseline: per-query noise at workload sensitivity.
  const double lm_error = w.Sensitivity() * w.Sensitivity() *
                          static_cast<double>(w.TotalQueries());
  std::printf("error ratio vs Laplace mechanism:  %.3f\n",
              std::sqrt(lm_error / result.squared_error));

  // Spectral lower bound when computable (single product at any scale,
  // unions on modest domains): report how close this plan is to the best
  // any strategy could do, on the paper's root-error scale.
  const SessionDiagnostics diag = DiagnoseSession(*result.strategy, w, epsilon);
  if (diag.computable) {
    const double gap = OptimalityRatio(*result.strategy, w);
    std::printf("optimality gap vs spectral lower bound [28]: %.3f%s\n", gap,
                gap < 1.005 ? " (certified optimal)" : "");
    std::printf("pct_of_optimal: %.1f%%  (Err bound %.6g vs achieved %.6g at "
                "epsilon=%.3g)\n",
                diag.pct_of_optimal, diag.lower_bound_total_sq,
                diag.achieved_total_sq, epsilon);
  }

  if (flags.Has("save-strategy")) {
    const std::string path = flags.Get("save-strategy");
    std::string error;
    if (!SaveStrategyFile(path, *result.strategy, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("strategy saved to %s\n", path.c_str());
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  const std::string data_path = flags.Get("data");
  if (data_path.empty()) {
    std::fprintf(stderr, "missing --data FILE\n");
    return 1;
  }
  if (!flags.Has("epsilon")) {
    std::fprintf(stderr, "missing --epsilon E\n");
    return 1;
  }
  const double epsilon = std::strtod(flags.Get("epsilon").c_str(), nullptr);
  if (epsilon <= 0.0) {
    std::fprintf(stderr, "--epsilon must be positive\n");
    return 1;
  }

  Dataset dataset(w.domain());
  std::string error;
  if (!LoadCsvDataset(data_path, w.domain(), &dataset, &error)) {
    std::fprintf(stderr, "%s: %s\n", data_path.c_str(), error.c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %lld records over %s\n",
               static_cast<long long>(dataset.NumRecords()),
               w.domain().ToString().c_str());

  // Either reuse a saved strategy (optimize-once workflow) or select one
  // now; neither path touches the data. Either way, report the fingerprint
  // the serving engine's strategy cache would key this plan under.
  std::fprintf(stderr, "plan fingerprint: %s\n",
               FingerprintPlan(w, OptionsFromFlags(flags)).Hex().c_str());
  std::unique_ptr<Strategy> strategy;
  if (flags.Has("strategy")) {
    std::string error;
    strategy = LoadStrategyFile(flags.Get("strategy"), &error);
    if (strategy == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (strategy->DomainSize() != w.DomainSize()) {
      std::fprintf(stderr,
                   "strategy domain size %lld does not match workload %lld\n",
                   static_cast<long long>(strategy->DomainSize()),
                   static_cast<long long>(w.DomainSize()));
      return 1;
    }
    if (!SupportsWorkload(*strategy, w)) {
      std::fprintf(stderr,
                   "loaded strategy does not support this workload "
                   "(W A+ A != W); reconstruction would be biased\n");
      return 1;
    }
    std::fprintf(stderr, "loaded strategy: %s\n", strategy->Name().c_str());
  } else {
    HdmmResult result = OptimizeFromFlags(w, flags);
    std::fprintf(stderr, "optimized strategy: %s\n",
                 result.chosen_operator.c_str());
    strategy = std::move(result.strategy);
  }
  std::fprintf(stderr, "expected per-query RMSE %.4f\n",
               strategy->RootMeanSquaredError(w, epsilon));

  const Vector x = dataset.ToDataVector();
  Rng rng(static_cast<uint64_t>(
      std::strtoll(flags.Get("seed", "0").c_str(), nullptr, 10)));
  const Vector answers = RunMechanism(w, *strategy, x, epsilon, &rng);

  if (flags.Has("truth")) {
    const Vector truth = TrueAnswers(w, x);
    double sq = 0.0;
    for (size_t i = 0; i < answers.size(); ++i) {
      const double diff = answers[i] - truth[i];
      sq += diff * diff;
    }
    std::printf("# query, private_answer, true_answer\n");
    for (size_t i = 0; i < answers.size(); ++i) {
      std::printf("%zu,%.4f,%.1f\n", i, answers[i], truth[i]);
    }
    std::fprintf(stderr, "realized per-query RMSE: %.4f\n",
                 std::sqrt(sq / static_cast<double>(answers.size())));
  } else {
    std::printf("# query, private_answer\n");
    for (size_t i = 0; i < answers.size(); ++i) {
      std::printf("%zu,%.4f\n", i, answers[i]);
    }
  }
  return 0;
}

// serve: one long-lived process per dataset release. Planning goes through
// the engine's strategy cache (so a warm start answers from disk instead of
// re-running OPT_HDMM), measurements are budgeted by the accountant, and
// queries are answered from the current measurement session's x_hat — pure
// post-processing, no further budget.
int CmdServe(const Flags& flags) {
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  const std::string data_path = flags.Get("data");
  if (data_path.empty()) {
    std::fprintf(stderr, "missing --data FILE\n");
    return 1;
  }
  Dataset dataset(w.domain());
  std::string error;
  if (!LoadCsvDataset(data_path, w.domain(), &dataset, &error)) {
    std::fprintf(stderr, "%s: %s\n", data_path.c_str(), error.c_str());
    return 1;
  }

  EngineOptions engine_options;
  engine_options.optimizer = OptionsFromFlags(flags);
  // --seed steers the *noise* draw only. The optimizer seed is part of the
  // plan fingerprint, so folding the noise seed into it would invalidate
  // the strategy cache on every reseeded restart; use --opt-seed to
  // deliberately re-optimize with different random restarts.
  engine_options.optimizer.seed = static_cast<uint64_t>(
      std::strtoll(flags.Get("opt-seed", "0").c_str(), nullptr, 10));
  // Accounting regime: pure-eps sequential composition (Laplace only) or
  // rho-zCDP additive composition (Laplace at eps^2/2, Gaussian at rho).
  const std::string regime = flags.Get("regime", "pure");
  if (regime == "zcdp") {
    engine_options.regime = BudgetRegime::kZCdp;
  } else if (regime != "pure") {
    std::fprintf(stderr, "--regime must be pure or zcdp\n");
    return 1;
  }
  engine_options.total_epsilon =
      std::strtod(flags.Get("budget", "1.0").c_str(), nullptr);
  if (!(engine_options.total_epsilon > 0.0)) {
    std::fprintf(stderr, "--budget must be positive\n");
    return 1;
  }
  engine_options.delta =
      std::strtod(flags.Get("delta", "1e-9").c_str(), nullptr);
  if (!(engine_options.delta > 0.0 && engine_options.delta < 1.0)) {
    std::fprintf(stderr, "--delta must be in (0, 1)\n");
    return 1;
  }
  if (flags.Has("budget-rho")) {
    if (engine_options.regime != BudgetRegime::kZCdp) {
      std::fprintf(stderr, "--budget-rho needs --regime zcdp\n");
      return 1;
    }
    engine_options.total_rho =
        std::strtod(flags.Get("budget-rho").c_str(), nullptr);
    if (!(engine_options.total_rho > 0.0)) {
      std::fprintf(stderr, "--budget-rho must be positive\n");
      return 1;
    }
  }
  // Session data-vector storage: --session-storage mmap tiles each
  // measurement session's x_hat + summed-area table onto files (see
  // docs/serving.md, "Out-of-core sessions"), so serving a domain larger
  // than RAM answers box queries from O(2^d) corner tiles instead of a
  // dense vector.
  SessionStorageOptions& session_storage = engine_options.session_storage;
  if (!ParseSessionStorage(flags.Get("session-storage", "memory"),
                           &session_storage.backend)) {
    std::fprintf(stderr, "--session-storage must be memory or mmap\n");
    return 1;
  }
  if (flags.Has("tile-bytes")) {
    session_storage.tile_bytes =
        std::strtoll(flags.Get("tile-bytes").c_str(), nullptr, 10);
    if (session_storage.tile_bytes < static_cast<int64_t>(sizeof(double))) {
      std::fprintf(stderr, "--tile-bytes must be at least 8\n");
      return 1;
    }
  }
  if (flags.Has("hot-tile-budget")) {
    session_storage.hot_tile_budget =
        std::strtoll(flags.Get("hot-tile-budget").c_str(), nullptr, 10);
    if (session_storage.hot_tile_budget < 0) {
      std::fprintf(stderr, "--hot-tile-budget must be non-negative\n");
      return 1;
    }
  }
  session_storage.dir = flags.Get("session-dir");
  if (!session_storage.dir.empty()) {
    if (session_storage.backend != SessionStorage::kMmap) {
      std::fprintf(stderr, "--session-dir needs --session-storage mmap\n");
      return 1;
    }
    std::error_code ec;
    std::filesystem::create_directories(session_storage.dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --session-dir '%s': %s\n",
                   session_storage.dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  // Resource governor (docs/serving.md, "Overload behavior"): caps are
  // enforced at admission time, before any noise is drawn or budget
  // charged, so an over-capacity request is retryable and free.
  if (flags.Has("max-sessions")) {
    engine_options.governor.max_sessions =
        std::strtoll(flags.Get("max-sessions").c_str(), nullptr, 10);
    if (engine_options.governor.max_sessions < 0) {
      std::fprintf(stderr, "--max-sessions must be non-negative\n");
      return 1;
    }
  }
  if (flags.Has("memory-budget-bytes")) {
    engine_options.governor.memory_budget_bytes =
        std::strtoll(flags.Get("memory-budget-bytes").c_str(), nullptr, 10);
    if (engine_options.governor.memory_budget_bytes < 0) {
      std::fprintf(stderr, "--memory-budget-bytes must be non-negative\n");
      return 1;
    }
  }
  int64_t deadline_ms = 0;  // 0 = no deadline.
  if (flags.Has("deadline-ms")) {
    deadline_ms = std::strtoll(flags.Get("deadline-ms").c_str(), nullptr, 10);
    if (deadline_ms < 0) {
      std::fprintf(stderr, "--deadline-ms must be non-negative\n");
      return 1;
    }
  }
  engine_options.cache.disk_dir = flags.Get("cache-dir");
  // The budget ceiling must survive restarts whenever the strategies do:
  // with a cache directory the ledger defaults to living next to the
  // strategies (override with --ledger; an explicit --ledger works without
  // a cache directory too).
  engine_options.ledger_path = flags.Get("ledger");
  if (engine_options.ledger_path.empty() &&
      !engine_options.cache.disk_dir.empty()) {
    engine_options.ledger_path =
        engine_options.cache.disk_dir + "/budget.ledger";
  }
  if (!engine_options.cache.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(engine_options.cache.disk_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --cache-dir '%s': %s\n",
                   engine_options.cache.disk_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  Engine engine(engine_options);

  const Vector x = dataset.ToDataVector();
  Rng rng(static_cast<uint64_t>(
      std::strtoll(flags.Get("seed", "0").c_str(), nullptr, 10)));

  // The ledger keys on the dataset id: canonicalize the path so
  // `data.csv`, `./data.csv`, and an absolute spelling of the same file
  // share one budget instead of each getting a fresh ceiling.
  std::error_code canon_ec;
  std::string dataset_id =
      std::filesystem::weakly_canonical(data_path, canon_ec).string();
  if (canon_ec || dataset_id.empty()) dataset_id = data_path;

  if (engine.accountant().regime() == BudgetRegime::kZCdp) {
    std::printf(
        "serving %s over %s (N=%lld, zcdp budget rho=%g ~ epsilon=%g at "
        "delta=%g)\n",
        flags.Get("workload").c_str(), w.domain().ToString().c_str(),
        static_cast<long long>(w.DomainSize()),
        engine.accountant().TotalBudget(), engine.accountant().total_epsilon(),
        engine.accountant().delta());
  } else {
    std::printf("serving %s over %s (N=%lld, budget epsilon=%g)\n",
                flags.Get("workload").c_str(), w.domain().ToString().c_str(),
                static_cast<long long>(w.DomainSize()),
                engine.accountant().total_epsilon());
  }
  std::printf("dataset id: %s\n", dataset_id.c_str());

  // Prewarm: plan before the first measure so startup reports whether this
  // release hits the cache, and so disk-tier problems surface immediately
  // instead of as a silent cold plan on every restart.
  PlanResult plan = engine.Plan(w);
  std::printf("plan fingerprint: %s (%s, %.1f ms)\n",
              plan.fingerprint.Hex().c_str(), PlanSourceName(plan.source),
              1e3 * plan.seconds);
  if (!plan.cache_error.empty()) {
    std::fprintf(stderr, "warning: strategy not persisted: %s\n",
                 plan.cache_error.c_str());
  }
  const SessionDiagnostics serve_diag = DiagnoseSession(
      *plan.strategy, w, engine.accountant().total_epsilon());
  if (serve_diag.computable) {
    std::printf("pct_of_optimal: %.1f%% of the spectral error bound\n",
                serve_diag.pct_of_optimal);
  }
  std::fflush(stdout);

  // Serve-loop contract: a malformed line gets a one-line `error: ...`
  // reply and the loop continues. A session may hold a measurement whose
  // budget is already spent — tearing it down over a typo would waste an
  // unrecoverable release.
  //
  // Reply protocol for failures: retryable conditions (admission refused,
  // deadline expired, lock contention) reply
  //   error retryable retry_after_ms=N: <status>
  // so a client can back off and resend; everything else keeps the plain
  // fatal `error: ...` form.
  constexpr size_t kMaxLineBytes = 4096;
  std::map<std::string, std::unique_ptr<MeasurementSession>> sessions;
  std::string current_name;  // Empty until the first successful measure.
  auto current_session = [&]() -> MeasurementSession* {
    auto it = sessions.find(current_name);
    return it == sessions.end() ? nullptr : it->second.get();
  };
  auto print_status_error = [](const Status& status) {
    if (IsRetryable(status.code())) {
      int retry_ms = RetryAfterMillis(status);
      if (retry_ms < 0) retry_ms = 100;
      std::printf("error retryable retry_after_ms=%d: %s\n", retry_ms,
                  status.ToString().c_str());
    } else {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  };
  auto valid_session_name = [](const std::string& name) {
    if (name.empty() || name.size() > 64) return false;
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-')) {
        return false;
      }
    }
    return true;
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    // CRLF-tolerant: Windows clients and piped here-docs send \r\n.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > kMaxLineBytes) {
      std::printf("error: line too long (%zu bytes, max %zu)\n", line.size(),
                  kMaxLineBytes);
      std::fflush(stdout);
      continue;
    }
    // Strip comments and whitespace-only lines so sessions can be scripted.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;

    if (command == "budget") {
      if (engine.accountant().regime() == BudgetRegime::kZCdp) {
        std::printf(
            "budget regime=zcdp spent_rho=%g remaining_rho=%g total_rho=%g "
            "reported_epsilon=%g delta=%g\n",
            engine.accountant().Spent(dataset_id),
            engine.accountant().Remaining(dataset_id),
            engine.accountant().TotalBudget(),
            engine.accountant().ReportedEpsilon(dataset_id),
            engine.accountant().delta());
      } else {
        std::printf("budget spent=%g remaining=%g total=%g\n",
                    engine.accountant().Spent(dataset_id),
                    engine.accountant().Remaining(dataset_id),
                    engine.accountant().total_epsilon());
      }
    } else if (command == "measure" || command == "gaussian") {
      // measure EPS [NAME] -> Laplace; gaussian RHO [NAME] -> Gaussian under
      // zCDP. The accountant decides whether the regime can express the
      // charge. NAME (default `default`) keys the session: re-measuring a
      // name replaces that session, so many live sessions need many names.
      const bool is_gaussian = command == "gaussian";
      // Strict numeric parse: `measure 1.5x` is a malformed request, not a
      // request for 1.5 — iostream's lax "parse a prefix" behavior would
      // silently spend budget on a typo.
      std::string amount_token;
      std::string name = "default";
      std::string extra;
      char* end = nullptr;
      double amount = 0.0;
      bool well_formed = static_cast<bool>(in >> amount_token);
      if (well_formed && (in >> extra)) {
        name = extra;
        extra.clear();
        well_formed = !static_cast<bool>(in >> extra);
      }
      if (well_formed) {
        amount = std::strtod(amount_token.c_str(), &end);
        well_formed = end == amount_token.c_str() + amount_token.size();
      }
      if (!well_formed || !(amount > 0.0) || !std::isfinite(amount)) {
        std::printf(
            "error: %s needs one positive finite %s and at most one "
            "session name\n",
            command.c_str(), is_gaussian ? "rho" : "epsilon");
      } else if (!valid_session_name(name)) {
        std::printf(
            "error: session name must be 1-64 chars of [A-Za-z0-9_-]\n");
      } else {
        const MeasureRequest request = is_gaussian
                                           ? MeasureRequest::Gaussian(amount)
                                           : MeasureRequest::Laplace(amount);
        // A fresh token per request: --deadline-ms bounds each command, not
        // the process lifetime.
        CancelToken token(deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms)
                                          : Deadline());
        const CancelToken* cancel = deadline_ms > 0 ? &token : nullptr;
        auto next = engine.MeasureOr(w, dataset_id, x, request, &rng, cancel);
        if (!next.ok()) {
          print_status_error(next.status());
        } else {
          sessions[name] = std::move(next).value();
          current_name = name;
          std::printf("ok measured %s=%g session=%s spent=%g remaining=%g\n",
                      is_gaussian ? "rho" : "epsilon", amount, name.c_str(),
                      engine.accountant().Spent(dataset_id),
                      engine.accountant().Remaining(dataset_id));
        }
      }
    } else if (command == "use") {
      std::string name;
      if (!(in >> name) || sessions.find(name) == sessions.end()) {
        std::printf("error: no session named '%s'\n", name.c_str());
      } else {
        current_name = name;
        std::printf("ok using session=%s\n", name.c_str());
      }
    } else if (command == "release") {
      // release [NAME]: drop a session and return its footprint to the
      // governor. The budget already spent on it stays spent — release
      // frees memory, never privacy budget.
      std::string name;
      if (!(in >> name)) name = current_name;
      auto it = sessions.find(name);
      if (it == sessions.end()) {
        std::printf("error: no session named '%s'\n", name.c_str());
      } else {
        sessions.erase(it);
        if (name == current_name) current_name.clear();
        std::printf("ok released session=%s live=%zu\n", name.c_str(),
                    sessions.size());
      }
    } else if (command == "sessions") {
      std::string names;
      for (const auto& entry : sessions) {
        names += names.empty() ? entry.first : " " + entry.first;
      }
      if (engine.governor() != nullptr) {
        std::printf("sessions live=%zu charged_bytes=%lld current=%s [%s]\n",
                    sessions.size(),
                    static_cast<long long>(engine.governor()->charged_bytes()),
                    current_name.empty() ? "-" : current_name.c_str(),
                    names.c_str());
      } else {
        std::printf("sessions live=%zu current=%s [%s]\n", sessions.size(),
                    current_name.empty() ? "-" : current_name.c_str(),
                    names.c_str());
      }
    } else if (command == "point" || command == "range" ||
               command == "marginal") {
      MeasurementSession* session = current_session();
      if (session == nullptr) {
        std::printf(
            "error: no measurement session (run `measure EPS` first)\n");
      } else {
        BoxQuery q;
        std::string why;
        if (!ParseQueryLine(line, w.domain(), &q, &why)) {
          std::printf("error: %s\n", why.c_str());
        } else {
          // Through the batch path (not session->Answer directly) so the
          // `stats` command's AnswerBatch latency histogram covers every
          // served answer, and through the Or variant so --deadline-ms
          // bounds queries the same way it bounds measurements.
          CancelToken token(deadline_ms > 0
                                ? Deadline::AfterMillis(deadline_ms)
                                : Deadline());
          const CancelToken* cancel = deadline_ms > 0 ? &token : nullptr;
          auto answer = session->AnswerBatchOr({q}, cancel);
          if (!answer.ok()) {
            print_status_error(answer.status());
          } else {
            std::printf("answer %.4f\n", answer.value()[0]);
          }
        }
      }
    } else if (command == "stats") {
      std::string mode;
      in >> mode;
      if (mode == "json") {
        std::fputs(Metrics::ToJson().c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        const MetricsSnapshot snap = Metrics::Snapshot();
        auto count = [&snap](const char* name) -> unsigned long long {
          auto it = snap.counters.find(name);
          return it == snap.counters.end() ? 0 : it->second;
        };
        const unsigned long long memory_hits =
            count("strategy_cache.memory_hits");
        const unsigned long long disk_hits = count("strategy_cache.disk_hits");
        const unsigned long long misses = count("strategy_cache.misses");
        const unsigned long long lookups = memory_hits + disk_hits + misses;
        const double hit_rate =
            lookups == 0
                ? 0.0
                : 100.0 * static_cast<double>(memory_hits + disk_hits) /
                      static_cast<double>(lookups);
        HistogramSnapshot answer_latency;
        auto hist_it = snap.histograms.find("engine.answer_batch.latency_ns");
        if (hist_it != snap.histograms.end()) answer_latency = hist_it->second;
        std::printf(
            "stats cache_hit_rate=%.1f%% memory_hits=%llu disk_hits=%llu "
            "misses=%llu budget_spent=%g budget_remaining=%g "
            "answer_batches=%llu answer_batch_p99_us=%.1f\n",
            hit_rate, memory_hits, disk_hits, misses,
            engine.accountant().Spent(dataset_id),
            engine.accountant().Remaining(dataset_id),
            count("engine.answer_batch.count"), answer_latency.p99 / 1e3);
      }
    } else {
      std::printf("error: unknown command '%s' (measure | gaussian | use | "
                  "release | sessions | point | range | marginal | budget | "
                  "stats | quit)\n",
                  command.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

int CmdConvertSql(const Flags& flags) {
  Domain domain;
  if (!ParseDomainSpec(flags.Get("domain"), &domain)) return 1;
  const std::string sql_path = flags.Get("sql");
  if (sql_path.empty()) {
    std::fprintf(stderr, "missing --sql FILE\n");
    return 1;
  }
  std::ifstream in(sql_path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", sql_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  UnionWorkload w;
  std::string error;
  if (!ParseSqlWorkload(buffer.str(), domain, &w, &error)) {
    std::fprintf(stderr, "%s: %s\n", sql_path.c_str(), error.c_str());
    return 1;
  }
  std::fputs(SerializeWorkload(w).c_str(), stdout);
  return 0;
}

int CmdShow(const Flags& flags) {
  // --strategy: describe a persisted strategy (optionally checking support
  // against --workload). Otherwise show the workload.
  if (flags.Has("strategy")) {
    std::string error;
    auto strategy = LoadStrategyFile(flags.Get("strategy"), &error);
    if (strategy == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fputs(ReportToString(DescribeStrategy(*strategy)).c_str(), stdout);
    if (flags.Has("workload")) {
      UnionWorkload w;
      if (!LoadWorkloadFlag(flags, &w)) return 1;
      if (strategy->DomainSize() != w.DomainSize()) {
        std::printf("workload: DOMAIN MISMATCH (%lld vs %lld cells)\n",
                    static_cast<long long>(w.DomainSize()),
                    static_cast<long long>(strategy->DomainSize()));
        return 1;
      }
      const bool ok = SupportsWorkload(*strategy, w);
      std::printf("workload support: %s\n",
                  ok ? "yes (W A+ A = W)" : "NO — reconstruction would be "
                                            "biased");
      if (ok) {
        std::printf("expected per-query RMSE at epsilon=1: %.4f\n",
                    strategy->RootMeanSquaredError(w, 1.0));
      }
    }
    return 0;
  }
  UnionWorkload w;
  if (!LoadWorkloadFlag(flags, &w)) return 1;
  PrintWorkloadSummary(w);
  std::printf("\n%s", SerializeWorkload(w).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();

  // --threads N (all commands): pin the shared pool before any library code
  // can lazily create it at the hardware default. Planning results are
  // bit-identical at any thread count for a fixed seed, so this is purely a
  // throughput/isolation knob.
  if (flags.Has("threads")) {
    char* end = nullptr;
    const long n = std::strtol(flags.Get("threads").c_str(), &end, 10);
    if (*end != '\0' || n < 1) {
      std::fprintf(stderr, "--threads must be a positive integer\n");
      return 2;
    }
    ThreadPool::SetGlobalThreads(static_cast<int>(n));
  }

  Trace::SetThreadName("main");

  int rc = -1;
  if (command == "optimize") rc = CmdOptimize(flags);
  else if (command == "run") rc = CmdRun(flags);
  else if (command == "serve") rc = CmdServe(flags);
  else if (command == "convert-sql") rc = CmdConvertSql(flags);
  else if (command == "show") rc = CmdShow(flags);
  if (rc < 0) {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return Usage();
  }

  // --stats-json FILE (any command): machine-readable snapshot of every
  // metric the command touched, in the schema shared with bench_util's
  // BENCH_*.json "metrics" section (see docs/observability.md).
  if (flags.Has("stats-json")) {
    const std::string path = flags.Get("stats-json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --stats-json '%s'\n", path.c_str());
      return rc == 0 ? 1 : rc;
    }
    Metrics::WriteJson(f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return rc;
}
