// Edge cases and failure-injection across modules: degenerate shapes,
// singular inputs, boundary parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dawa.h"
#include "core/opt0.h"
#include "core/opt_marginals.h"
#include "core/strategy.h"
#include "linalg/cholesky.h"
#include "linalg/kron.h"
#include "linalg/lsmr.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/impvec.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(EdgeCases, SingleCellDomain) {
  Domain d({1});
  UnionWorkload w = MakeProductWorkload(d, {TotalBlock(1)});
  KronStrategy id({IdentityBlock(1)});
  EXPECT_NEAR(id.SquaredError(w), 1.0, 1e-12);
  Vector x = {5.0};
  Vector y = id.Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(EdgeCases, KronWithUnitDimensions) {
  // Factors with a single row or column.
  Matrix a = Matrix::Ones(1, 3);
  Matrix b = Matrix::Identity(2);
  Matrix c = Matrix::Ones(2, 1);
  Vector x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  Vector fast = KronMatVec({a, b, c}, x);
  Vector ref = MatVec(KronExplicit({a, b, c}), x);
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(fast[i], ref[i], 1e-12);
}

TEST(EdgeCases, PinvOfZeroMatrix) {
  Matrix z = Matrix::Zeros(3, 4);
  Matrix p = PseudoInverse(z);
  EXPECT_EQ(p.rows(), 4);
  EXPECT_EQ(p.cols(), 3);
  EXPECT_LT(p.MaxAbsDiff(Matrix::Zeros(4, 3)), 1e-12);
}

TEST(EdgeCases, TracePinvGramWithSingularStrategy) {
  // Strategy supporting only part of the space, workload inside the span:
  // the trace must still be finite and match the explicit computation.
  Matrix a = Matrix::FromRows({{1.0, 1.0, 0.0}});  // Measures x0 + x1 only.
  Matrix w = Matrix::FromRows({{2.0, 2.0, 0.0}});  // Inside rowspace(A).
  double tr = TracePinvGram(Gram(a), Gram(w));
  Matrix wap = MatMul(w, PseudoInverse(a));
  EXPECT_NEAR(tr, wap.FrobeniusNormSquared(), 1e-9);
}

TEST(EdgeCases, LsmrOnRankDeficientSystem) {
  // Consistent but rank-deficient: LSMR converges to the min-norm solution.
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {2.0, 2.0}});
  Vector b = {3.0, 6.0};
  DenseOperator op(a);
  LsmrResult res = LsmrSolve(op, b);
  EXPECT_NEAR(res.x[0], 1.5, 1e-6);
  EXPECT_NEAR(res.x[1], 1.5, 1e-6);
}

TEST(EdgeCases, CholeskyOnOneByOne) {
  Matrix x = Matrix::FromRows({{4.0}});
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(x, &l));
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
}

TEST(EdgeCases, Opt0OnTotalWorkload) {
  // Workload = single total query: p-Identity still supports it; the
  // optimizer should find low error by weighting the total-like row.
  const int64_t n = 8;
  Matrix gram = Gram(TotalBlock(n));
  Rng rng(1);
  Opt0Options opts;
  opts.p = 1;
  opts.restarts = 3;
  Opt0Result res = Opt0(gram, opts, &rng);
  // Identity error is n = 8; a total-weighted strategy gets close to 1.
  EXPECT_LT(res.error, 8.0);
}

TEST(EdgeCases, MarginalsSingleAttribute) {
  MarginalsAlgebra alg({5});
  Vector u = {0.5, 2.0};
  Vector v = alg.InverseWeights(u);
  // G(u) = 0.5 * ones(5) + 2 I; check G(u) G(v) = I explicitly.
  Matrix g = MatScale(Matrix::Ones(5, 5), 0.5);
  g.AddInPlace(Matrix::Identity(5), 2.0);
  Matrix gv = MatScale(Matrix::Ones(5, 5), v[0]);
  gv.AddInPlace(Matrix::Identity(5), v[1]);
  EXPECT_LT(MatMul(g, gv).MaxAbsDiff(Matrix::Identity(5)), 1e-10);
}

TEST(EdgeCases, MarginalsStrategyZeroWeightsDie) {
  Domain d({2, 2});
  Vector theta(4, 0.0);
  MarginalsStrategy strat(d, theta);
  EXPECT_DEATH(strat.NumQueries(), "all-zero");
}

TEST(EdgeCases, ImpVecEmptyPredicateSetIsTotal) {
  Domain d({3, 4});
  LogicalWorkload logical;
  logical.domain = d;
  LogicalProduct p;
  p.predicate_sets.resize(2);
  p.predicate_sets[0].push_back(Predicate::Equals(1));
  // Attribute 1 unmentioned -> Total.
  logical.products.push_back(p);
  UnionWorkload w = ImpVec(logical);
  EXPECT_EQ(w.TotalQueries(), 1);
  Matrix full = w.Explicit();
  double sum = 0.0;
  for (int64_t j = 0; j < full.cols(); ++j) sum += full(0, j);
  EXPECT_DOUBLE_EQ(sum, 4.0);  // Counts the whole age slice.
}

TEST(EdgeCases, PredicateOutOfRangeValuesIgnored) {
  Vector v = VectorizePredicate(Predicate::InSet({-5, 2, 99}), 4);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
  EXPECT_DOUBLE_EQ(Sum(v), 1.0);
}

TEST(EdgeCases, DawaPartitionSingleCell) {
  Vector x = {42.0};
  std::vector<int64_t> bounds = DawaPartition(x, 1.0);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0], 1);
}

TEST(EdgeCases, HierarchicalBranchingLargerThanDomain) {
  Matrix h = HierarchicalBlock(5, 8);
  // One leaf level plus one root level.
  EXPECT_EQ(h.rows(), 6);
  EXPECT_EQ(h.cols(), 5);
}

TEST(EdgeCases, WidthRangeFullWidth) {
  Matrix w = WidthRangeBlock(6, 6);
  EXPECT_EQ(w.rows(), 1);
  EXPECT_DOUBLE_EQ(w.Sum(), 6.0);
}

TEST(EdgeCases, UnionWorkloadWeightScaling) {
  // Doubling a product's weight quadruples its error contribution.
  Domain d({4});
  UnionWorkload w1(d), w2(d);
  ProductWorkload p;
  p.factors = {PrefixBlock(4)};
  p.weight = 1.0;
  w1.AddProduct(p);
  p.weight = 2.0;
  w2.AddProduct(p);
  KronStrategy id({IdentityBlock(4)});
  EXPECT_NEAR(id.SquaredError(w2), 4.0 * id.SquaredError(w1), 1e-10);
}

TEST(EdgeCases, StrategyMeasureZeroEpsilonDies) {
  KronStrategy id({IdentityBlock(4)});
  Rng rng(1);
  Vector x(4, 1.0);
  EXPECT_DEATH(id.Measure(x, 0.0, &rng), "epsilon");
}

}  // namespace
}  // namespace hdmm
