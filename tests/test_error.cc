// Cross-representation consistency of the expected-error machinery: every
// strategy type's SquaredError must agree with the explicit-matrix
// definition, and the matrix-free estimator must agree with both.
#include "core/error.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

UnionWorkload Mixed2D() {
  Domain d({4, 6});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(4), IdentityBlock(6)};
  p1.weight = 2.0;
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(4), AllRangeBlock(6)};
  p2.weight = 0.5;
  w.AddProduct(p2);
  return w;
}

TEST(Error, ExplicitDefinitionMatchesPinv) {
  Rng rng(1);
  UnionWorkload w = Mixed2D();
  Matrix a = Matrix::RandomUniform(30, 24, &rng, 0.0, 1.0);
  double via_trace = ExplicitSquaredError(w.Explicit(), a);
  Matrix wap = MatMul(w.Explicit(), PseudoInverse(a));
  double sens = a.MaxAbsColSum();
  EXPECT_NEAR(via_trace, sens * sens * wap.FrobeniusNormSquared(),
              1e-6 * via_trace);
}

TEST(Error, KronAgreesWithExplicit) {
  Rng rng(2);
  UnionWorkload w = Mixed2D();
  Matrix a1 = Matrix::RandomUniform(5, 4, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(7, 6, &rng, 0.1, 1.0);
  KronStrategy kron({a1, a2});
  double explicit_err = ExplicitSquaredError(w.Explicit(),
                                             KronExplicit({a1, a2}));
  EXPECT_NEAR(kron.SquaredError(w), explicit_err, 1e-6 * explicit_err);
}

TEST(Error, MarginalsAgreesWithExplicit) {
  Domain d({3, 4});
  UnionWorkload w = AllMarginals(d);
  Vector theta = {0.4, 0.9, 1.3, 0.8};
  MarginalsStrategy marg(d, theta);
  // Build the explicit weighted-marginals matrix.
  std::vector<Matrix> blocks;
  for (uint32_t m = 0; m < 4; ++m)
    blocks.push_back(MarginalProduct(d, m, theta[m]).Explicit());
  double explicit_err = ExplicitSquaredError(w.Explicit(), VStack(blocks));
  EXPECT_NEAR(marg.SquaredError(w), explicit_err, 1e-6 * explicit_err);
}

TEST(Error, StackedEstimatorAgreesWithDense) {
  // Force the Hutchinson path with a tiny dense threshold and compare.
  std::vector<std::vector<Matrix>> parts = {
      {DyadicPartitionBlock(8, 0), DyadicPartitionBlock(8, 0)},
      {DyadicPartitionBlock(8, 2), DyadicPartitionBlock(8, 2)},
      {DyadicPartitionBlock(8, 3), DyadicPartitionBlock(8, 3)}};
  Domain d({8, 8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8), PrefixBlock(8)});

  ImplicitStackedStrategy dense(parts, "dense", /*dense_threshold=*/4096);
  ImplicitStackedStrategy estimated(parts, "est", /*dense_threshold=*/1,
                                    /*estimator_seed=*/3,
                                    /*estimator_samples=*/800);
  double exact = dense.SquaredError(w);
  double est = estimated.SquaredError(w);
  EXPECT_NEAR(est, exact, 0.15 * exact);
}

TEST(Error, EmpiricalSquaredError) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(EmpiricalSquaredError(a, b), 0.25 + 0.0 + 4.0);
}

TEST(Error, RatioIsEpsilonIndependent) {
  UnionWorkload w = Mixed2D();
  KronStrategy a({IdentityBlock(4), IdentityBlock(6)});
  KronStrategy b({PrefixBlock(4), IdentityBlock(6)});
  double r = ErrorRatio(w, a, b);
  // Total errors at two epsilons give the same ratio.
  double r1 = std::sqrt(a.TotalSquaredError(w, 0.5) /
                        b.TotalSquaredError(w, 0.5));
  double r2 = std::sqrt(a.TotalSquaredError(w, 2.0) /
                        b.TotalSquaredError(w, 2.0));
  EXPECT_NEAR(r, r1, 1e-12);
  EXPECT_NEAR(r, r2, 1e-12);
}

// Parameterized: KronStrategy error equals explicit error for varying
// factor shapes (property sweep over Theorem 6).
class KronErrorProperty : public ::testing::TestWithParam<int> {};

TEST_P(KronErrorProperty, AgreesWithExplicit) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int64_t n1 = rng.UniformInt(2, 5), n2 = rng.UniformInt(2, 5);
  Domain d({n1, n2});
  UnionWorkload w(d);
  int k = static_cast<int>(rng.UniformInt(1, 3));
  for (int j = 0; j < k; ++j) {
    ProductWorkload p;
    p.factors = {Matrix::RandomUniform(rng.UniformInt(1, 4), n1, &rng),
                 Matrix::RandomUniform(rng.UniformInt(1, 4), n2, &rng)};
    p.weight = rng.Uniform(0.5, 2.0);
    w.AddProduct(std::move(p));
  }
  Matrix a1 = Matrix::RandomUniform(n1 + 1, n1, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(n2 + 1, n2, &rng, 0.1, 1.0);
  KronStrategy kron({a1, a2});
  double explicit_err =
      ExplicitSquaredError(w.Explicit(), KronExplicit({a1, a2}));
  EXPECT_NEAR(kron.SquaredError(w), explicit_err,
              1e-6 * std::max(1.0, explicit_err));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KronErrorProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace hdmm
