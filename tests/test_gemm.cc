// Randomized equivalence tests for the blocked GEMM/SYRK kernels against a
// naive triple-loop reference, across the shapes that stress the blocking
// logic: non-square, tall/skinny, zero-sized, sparse, and sizes straddling
// every micro/macro tile boundary.
#include "linalg/gemm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdmm {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t k = 0; k < a.cols(); ++k)
      for (int64_t j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}

// Max |diff| scaled to the operand magnitudes involved in one dot product.
double Tol(int64_t k_dim) { return 1e-12 * std::max<int64_t>(k_dim, 1); }

Matrix RandomSigned(int64_t rows, int64_t cols, Rng* rng) {
  return Matrix::RandomUniform(rows, cols, rng, -1.0, 1.0);
}

// Zeroes a random ~half of the rows to exercise sparse inputs (the seed
// kernels special-cased zeros; the blocked ones must stay correct on them).
void SparsifyRows(Matrix* m, Rng* rng) {
  for (int64_t i = 0; i < m->rows(); ++i) {
    if (rng->Uniform() < 0.5) {
      double* row = m->Row(i);
      for (int64_t j = 0; j < m->cols(); ++j) row[j] = 0.0;
    }
  }
}

struct Shape {
  int64_t m, k, n;
};

// Sizes around the kMR=6 / kNR=8 micro-tile, the kMC=120 / kKC=256 /
// kNC=1024 macro-tiles, and the naive-fallback cutoff.
const Shape kShapes[] = {
    {1, 1, 1},    {2, 3, 4},     {6, 8, 8},    {7, 9, 5},    {13, 17, 11},
    {64, 64, 64}, {120, 256, 8}, {121, 257, 9}, {200, 3, 200}, {3, 200, 3},
    {130, 300, 140}, {1, 500, 1}, {500, 1, 500}, {127, 128, 129},
};

TEST(Gemm, MatMulMatchesNaive) {
  Rng rng(42);
  for (const Shape& s : kShapes) {
    Matrix a = RandomSigned(s.m, s.k, &rng);
    Matrix b = RandomSigned(s.k, s.n, &rng);
    Matrix c;
    MatMulInto(a, b, &c);
    Matrix ref = NaiveMatMul(a, b);
    EXPECT_LT(c.MaxAbsDiff(ref), Tol(s.k)) << s.m << "x" << s.k << "x" << s.n;

    Matrix c_serial;
    MatMulInto(a, b, &c_serial, GemmParallelism::kSerial);
    EXPECT_LT(c_serial.MaxAbsDiff(ref), Tol(s.k));
  }
}

TEST(Gemm, MatMulTNMatchesNaive) {
  Rng rng(43);
  for (const Shape& s : kShapes) {
    Matrix a = RandomSigned(s.k, s.m, &rng);  // A^T is m x k.
    Matrix b = RandomSigned(s.k, s.n, &rng);
    Matrix c;
    MatMulTNInto(a, b, &c);
    Matrix ref = NaiveMatMul(a.Transposed(), b);
    EXPECT_LT(c.MaxAbsDiff(ref), Tol(s.k)) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(Gemm, MatMulNTMatchesNaive) {
  Rng rng(44);
  for (const Shape& s : kShapes) {
    Matrix a = RandomSigned(s.m, s.k, &rng);
    Matrix b = RandomSigned(s.n, s.k, &rng);  // B^T is k x n.
    Matrix c;
    MatMulNTInto(a, b, &c);
    Matrix ref = NaiveMatMul(a, b.Transposed());
    EXPECT_LT(c.MaxAbsDiff(ref), Tol(s.k)) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(Gemm, GramMatchesNaiveAndIsExactlySymmetric) {
  Rng rng(45);
  for (const Shape& s : kShapes) {
    Matrix a = RandomSigned(s.m, s.n, &rng);
    Matrix g;
    GramInto(a, &g);
    Matrix ref = NaiveMatMul(a.Transposed(), a);
    EXPECT_LT(g.MaxAbsDiff(ref), Tol(s.m));
    // SYRK mirrors the lower triangle, so symmetry must be bit-exact.
    for (int64_t i = 0; i < g.rows(); ++i)
      for (int64_t j = 0; j < i; ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(Gemm, GramOuterMatchesNaiveAndIsExactlySymmetric) {
  Rng rng(46);
  for (const Shape& s : kShapes) {
    Matrix a = RandomSigned(s.m, s.n, &rng);
    Matrix g;
    GramOuterInto(a, &g);
    Matrix ref = NaiveMatMul(a, a.Transposed());
    EXPECT_LT(g.MaxAbsDiff(ref), Tol(s.n));
    for (int64_t i = 0; i < g.rows(); ++i)
      for (int64_t j = 0; j < i; ++j) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(Gemm, SparseRowInputs) {
  Rng rng(47);
  Matrix a = RandomSigned(150, 90, &rng);
  Matrix b = RandomSigned(90, 70, &rng);
  SparsifyRows(&a, &rng);
  SparsifyRows(&b, &rng);
  Matrix c;
  MatMulInto(a, b, &c);
  EXPECT_LT(c.MaxAbsDiff(NaiveMatMul(a, b)), Tol(90));
  Matrix g;
  GramInto(a, &g);
  EXPECT_LT(g.MaxAbsDiff(NaiveMatMul(a.Transposed(), a)), Tol(150));
}

TEST(Gemm, ZeroSizedOperands) {
  Matrix a(0, 5);
  Matrix b(5, 3);
  Matrix c;
  MatMulInto(a, b, &c);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 3);

  Matrix d(4, 0);
  Matrix e(0, 6);
  MatMulInto(d, e, &c);  // Inner dimension zero: all-zeros result.
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 6);
  EXPECT_DOUBLE_EQ(c.Sum(), 0.0);

  Matrix g;
  GramInto(a, &g);  // 0 x 5 input: 5 x 5 zero Gram.
  EXPECT_EQ(g.rows(), 5);
  EXPECT_DOUBLE_EQ(g.Sum(), 0.0);
  GramOuterInto(d, &g);  // 4 x 0 input: 4 x 4 zero outer Gram.
  EXPECT_EQ(g.rows(), 4);
  EXPECT_DOUBLE_EQ(g.Sum(), 0.0);
}

TEST(Gemm, IdentityAndDiagonalSanity) {
  Rng rng(48);
  Matrix a = RandomSigned(37, 37, &rng);
  Matrix c;
  MatMulInto(a, Matrix::Identity(37), &c);
  EXPECT_LT(c.MaxAbsDiff(a), 1e-15);
  MatMulInto(Matrix::Identity(37), a, &c);
  EXPECT_LT(c.MaxAbsDiff(a), 1e-15);
}

// Restores the dispatcher's original ISA selection when a test body that
// forces tiers exits (including via an assertion failure).
class IsaGuard {
 public:
  IsaGuard() : saved_(ActiveGemmIsa()) {}
  ~IsaGuard() { SetGemmIsa(saved_); }

 private:
  GemmIsa saved_;
};

TEST(Gemm, BlockingIsCoherent) {
  const GemmBlocking bl = ActiveGemmBlocking();
  EXPECT_GT(bl.mr, 0);
  EXPECT_GT(bl.nr, 0);
  // Macro blocks must hold whole micro-tiles, and at least two of them so
  // the packed loops always run.
  EXPECT_EQ(bl.mc % bl.mr, 0);
  EXPECT_EQ(bl.nc % bl.nr, 0);
  EXPECT_GE(bl.mc, 2 * bl.mr);
  EXPECT_GE(bl.nc, 2 * bl.nr);
  EXPECT_GE(bl.kc, 64);
  EXPECT_NE(GemmIsaName(), nullptr);
}

TEST(Gemm, EveryIsaTierMatchesNaive) {
  IsaGuard guard;
  Rng rng(49);
  // Shapes straddling both the 6x8 and 8x16 micro-tiles and a kc boundary.
  const Shape shapes[] = {{1, 1, 1},    {6, 8, 8},      {8, 16, 16},
                          {9, 17, 23},  {130, 300, 140}, {127, 513, 129}};
  for (GemmIsa isa : {GemmIsa::kPortable, GemmIsa::kAvx2, GemmIsa::kAvx512}) {
    if (!SetGemmIsa(isa)) continue;  // Host CPU can't run this tier.
    EXPECT_EQ(ActiveGemmIsa(), isa);
    for (const Shape& s : shapes) {
      Matrix a = RandomSigned(s.m, s.k, &rng);
      Matrix b = RandomSigned(s.k, s.n, &rng);
      Matrix c;
      MatMulInto(a, b, &c, GemmParallelism::kSerial);
      EXPECT_LT(c.MaxAbsDiff(NaiveMatMul(a, b)), Tol(s.k))
          << GemmIsaName() << " " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(Gemm, ForcingUnsupportedTierIsRejected) {
  IsaGuard guard;
  const GemmIsa before = ActiveGemmIsa();
  // The portable tier always exists; forcing it must succeed, and forcing
  // anything the probe rejected must leave the selection untouched.
  ASSERT_TRUE(SetGemmIsa(GemmIsa::kPortable));
  EXPECT_EQ(ActiveGemmIsa(), GemmIsa::kPortable);
  if (!SetGemmIsa(GemmIsa::kAvx512)) {
    EXPECT_EQ(ActiveGemmIsa(), GemmIsa::kPortable);
  }
  SetGemmIsa(before);
}

}  // namespace
}  // namespace hdmm
