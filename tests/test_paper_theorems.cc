// Direct verification of every numbered theorem and proposition of
// McKenna et al. (PVLDB 2018) on randomized instances. Each test states the
// claim, builds both sides independently (implicit machinery vs brute-force
// explicit computation), and compares. These are the load-bearing
// correctness arguments of the paper; everything else in the library leans
// on them.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/opt_marginals.h"
#include "core/pidentity.h"
#include "core/strategy.h"
#include "linalg/kron.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/impvec.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

Predicate RandomPredicate(int64_t n, Rng* rng) {
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return Predicate::True();
    case 1:
      return Predicate::Equals(rng->UniformInt(0, n - 1));
    case 2: {
      int64_t lo = rng->UniformInt(0, n - 1);
      int64_t hi = rng->UniformInt(lo, n - 1);
      return Predicate::Range(lo, hi);
    }
    default: {
      std::vector<int64_t> values;
      for (int64_t v = 0; v < n; ++v) {
        if (rng->UniformInt(0, 1) == 1) values.push_back(v);
      }
      if (values.empty()) values.push_back(rng->UniformInt(0, n - 1));
      return Predicate::InSet(std::move(values));
    }
  }
}

// vec(phi) over the FULL product domain by brute force: evaluate the
// conjunction on every tuple (the "simple algorithm" below Definition 4).
Vector BruteForceVectorize(const std::vector<Predicate>& conjuncts,
                           const Domain& domain) {
  Vector v(static_cast<size_t>(domain.TotalSize()), 0.0);
  for (int64_t cell = 0; cell < domain.TotalSize(); ++cell) {
    const std::vector<int64_t> coords = domain.Unflatten(cell);
    bool match = true;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!conjuncts[i].Matches(coords[i])) match = false;
    }
    v[static_cast<size_t>(cell)] = match ? 1.0 : 0.0;
  }
  return v;
}

// --- Theorem 1: vec(phi_1 AND phi_2) = vec(phi_1) (x) vec(phi_2). ----------

class Theorem1Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Test, ImplicitVectorizationOfConjunctions) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int64_t n1 = rng.UniformInt(2, 6);
  const int64_t n2 = rng.UniformInt(2, 6);
  const int64_t n3 = rng.UniformInt(2, 4);
  Domain domain({n1, n2, n3});
  std::vector<Predicate> conjuncts = {RandomPredicate(n1, &rng),
                                      RandomPredicate(n2, &rng),
                                      RandomPredicate(n3, &rng)};

  const Vector brute = BruteForceVectorize(conjuncts, domain);
  const Vector implicit = KronVector({VectorizePredicate(conjuncts[0], n1),
                                      VectorizePredicate(conjuncts[1], n2),
                                      VectorizePredicate(conjuncts[2], n3)});
  ASSERT_EQ(brute.size(), implicit.size());
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_EQ(brute[i], implicit[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem1Test, ::testing::Range(0, 10));

// --- Theorem 2 / Proposition 2: vec(Phi x Psi) = vec(Phi) (x) vec(Psi). ----

class Theorem2Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2Test, ProductWorkloadVectorization) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  const int64_t n1 = rng.UniformInt(2, 5);
  const int64_t n2 = rng.UniformInt(2, 5);
  Domain domain({n1, n2});

  std::vector<Predicate> phi, psi;
  const int p = static_cast<int>(rng.UniformInt(1, 3));
  const int r = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < p; ++i) phi.push_back(RandomPredicate(n1, &rng));
  for (int i = 0; i < r; ++i) psi.push_back(RandomPredicate(n2, &rng));

  // Implicit: Kronecker of the per-attribute predicate-set matrices.
  Matrix implicit = KronExplicit({VectorizePredicateSet(phi, n1),
                                  VectorizePredicateSet(psi, n2)});

  // Brute force: one full-domain row per (phi_i, psi_j) pair, in product
  // order (Definition 2).
  ASSERT_EQ(implicit.rows(), p * r);
  int64_t row = 0;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < r; ++j) {
      const Vector expected = BruteForceVectorize({phi[i], psi[j]}, domain);
      for (int64_t c = 0; c < domain.TotalSize(); ++c) {
        EXPECT_EQ(implicit(row, c), expected[static_cast<size_t>(c)]);
      }
      ++row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2Test, ::testing::Range(0, 10));

// --- Proposition 1: vec(phi AND psi) x = vec(phi) X vec(psi)^T. ------------

TEST(Proposition1, DataMatrixForm) {
  Rng rng(3);
  const int64_t n1 = 4, n2 = 5;
  Domain domain({n1, n2});
  Predicate phi = Predicate::Range(1, 2);
  Predicate psi = Predicate::InSet({0, 3, 4});

  // Random data vector and its matrix form X (Definition 12).
  Vector x(static_cast<size_t>(n1 * n2));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 9.0));
  Matrix data_matrix(n1, n2);
  for (int64_t a = 0; a < n1; ++a) {
    for (int64_t b = 0; b < n2; ++b) {
      data_matrix(a, b) = x[static_cast<size_t>(domain.Flatten({a, b}))];
    }
  }

  const double lhs = Dot(BruteForceVectorize({phi, psi}, domain), x);
  // vec(phi) X vec(psi)^T.
  const Vector vp = VectorizePredicate(phi, n1);
  const Vector vq = VectorizePredicate(psi, n2);
  double rhs = 0.0;
  for (int64_t a = 0; a < n1; ++a) {
    for (int64_t b = 0; b < n2; ++b) {
      rhs += vp[static_cast<size_t>(a)] * data_matrix(a, b) *
             vq[static_cast<size_t>(b)];
    }
  }
  EXPECT_DOUBLE_EQ(lhs, rhs);
}

// --- Theorem 3: ||A_1 (x) ... (x) A_d||_1 = prod ||A_i||_1. ----------------

class Theorem3Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem3Test, KroneckerSensitivity) {
  Rng rng(static_cast<uint64_t>(200 + GetParam()));
  std::vector<Matrix> factors;
  const int d = static_cast<int>(rng.UniformInt(2, 3));
  for (int i = 0; i < d; ++i) {
    factors.push_back(Matrix::RandomUniform(rng.UniformInt(1, 4),
                                            rng.UniformInt(2, 4), &rng, -1.0,
                                            1.0));
  }
  EXPECT_NEAR(KronSensitivity(factors),
              KronExplicit(factors).MaxAbsColSum(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem3Test, ::testing::Range(0, 10));

// --- Theorem 5: ||W A^+||_F^2 = prod_i ||W_i A_i^+||_F^2. ------------------

class Theorem5Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem5Test, ErrorDecomposition) {
  Rng rng(static_cast<uint64_t>(300 + GetParam()));
  const int64_t n1 = rng.UniformInt(2, 5), n2 = rng.UniformInt(2, 5);
  Matrix w1 = Matrix::RandomUniform(rng.UniformInt(1, 5), n1, &rng, 0.0, 1.0);
  Matrix w2 = Matrix::RandomUniform(rng.UniformInt(1, 5), n2, &rng, 0.0, 1.0);
  Matrix a1 = Matrix::RandomUniform(n1 + 1, n1, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(n2 + 1, n2, &rng, 0.1, 1.0);

  const double lhs =
      MatMul(KronExplicit({w1, w2}), PseudoInverse(KronExplicit({a1, a2})))
          .FrobeniusNormSquared();
  const double rhs = MatMul(w1, PseudoInverse(a1)).FrobeniusNormSquared() *
                     MatMul(w2, PseudoInverse(a2)).FrobeniusNormSquared();
  EXPECT_NEAR(lhs, rhs, 1e-6 * std::max(1.0, rhs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem5Test, ::testing::Range(0, 10));

// --- Theorem 6: union error sum_j w_j^2 prod_i ||W_i^(j) A_i^+||_F^2. ------

class Theorem6Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem6Test, UnionErrorDecomposition) {
  Rng rng(static_cast<uint64_t>(400 + GetParam()));
  const int64_t n1 = rng.UniformInt(2, 4), n2 = rng.UniformInt(2, 4);
  const int k = static_cast<int>(rng.UniformInt(1, 3));

  std::vector<Matrix> w1s, w2s;
  std::vector<double> weights;
  std::vector<Matrix> stacked;
  for (int j = 0; j < k; ++j) {
    w1s.push_back(Matrix::RandomUniform(rng.UniformInt(1, 3), n1, &rng));
    w2s.push_back(Matrix::RandomUniform(rng.UniformInt(1, 3), n2, &rng));
    weights.push_back(rng.Uniform(0.5, 2.0));
    Matrix block = KronExplicit({w1s.back(), w2s.back()});
    block.ScaleInPlace(weights.back());
    stacked.push_back(std::move(block));
  }
  Matrix a1 = Matrix::RandomUniform(n1 + 1, n1, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(n2 + 1, n2, &rng, 0.1, 1.0);

  const double lhs =
      MatMul(VStack(stacked), PseudoInverse(KronExplicit({a1, a2})))
          .FrobeniusNormSquared();
  double rhs = 0.0;
  for (int j = 0; j < k; ++j) {
    rhs += weights[static_cast<size_t>(j)] * weights[static_cast<size_t>(j)] *
           MatMul(w1s[static_cast<size_t>(j)], PseudoInverse(a1))
               .FrobeniusNormSquared() *
           MatMul(w2s[static_cast<size_t>(j)], PseudoInverse(a2))
               .FrobeniusNormSquared();
  }
  EXPECT_NEAR(lhs, rhs, 1e-6 * std::max(1.0, rhs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem6Test, ::testing::Range(0, 10));

// --- Equation 7: (B (x) C) flat(X) = flat(B X C^T). ------------------------

TEST(Equation7, KroneckerMatVecIdentity) {
  Rng rng(7);
  Matrix b = Matrix::RandomUniform(4, 3, &rng, -1.0, 1.0);
  Matrix c = Matrix::RandomUniform(5, 6, &rng, -1.0, 1.0);
  // X is 3 x 6; flat stacks rows (row-major), matching the library layout.
  Matrix x(3, 6);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Uniform(-1.0, 1.0);
  Vector flat_x(x.data(), x.data() + x.size());

  const Vector lhs = KronMatVec({b, c}, flat_x);
  Matrix bxct = MatMulNT(MatMul(b, x), c);
  ASSERT_EQ(static_cast<int64_t>(lhs.size()), bxct.size());
  for (int64_t i = 0; i < bxct.size(); ++i) {
    EXPECT_NEAR(lhs[static_cast<size_t>(i)], bxct.data()[i], 1e-12);
  }
}

// --- Proposition 3: C(a) C(b) = c(a|b) C(a&b). -----------------------------

TEST(Proposition3, MaskProductAlgebra) {
  const std::vector<int64_t> sizes = {2, 3, 4};
  MarginalsAlgebra algebra(sizes);
  Domain d(sizes);

  auto explicit_c = [&](uint32_t mask) {
    std::vector<Matrix> factors;
    for (int i = 0; i < 3; ++i) {
      const int64_t n = sizes[static_cast<size_t>(i)];
      if ((mask >> i) & 1) {
        factors.push_back(IdentityBlock(n));
      } else {
        factors.push_back(Matrix::Ones(n, n));  // 1 = T^T T.
      }
    }
    return KronExplicit(factors);
  };

  for (uint32_t a = 0; a < 8; ++a) {
    for (uint32_t b = 0; b < 8; ++b) {
      Matrix lhs = MatMul(explicit_c(a), explicit_c(b));
      Matrix rhs = explicit_c(a & b);
      rhs.ScaleInPlace(algebra.CWeight(a | b));
      EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-9) << "a=" << a << " b=" << b;
    }
  }
}

// The bit convention note: the paper writes C(a) with bit i selecting I vs 1;
// CWeight(m) = prod over the zero bits of m of n_i.
TEST(Proposition3, CWeightClosedForm) {
  MarginalsAlgebra algebra({2, 3, 4});
  EXPECT_DOUBLE_EQ(algebra.CWeight(0b111), 1.0);
  EXPECT_DOUBLE_EQ(algebra.CWeight(0b000), 24.0);
  EXPECT_DOUBLE_EQ(algebra.CWeight(0b001), 12.0);  // zero bits: sizes 3, 4.
  EXPECT_DOUBLE_EQ(algebra.CWeight(0b110), 2.0);   // zero bit: size 2.
}

// --- Proposition 4: G(u) G(v) = G(X(u) v). ---------------------------------

class Proposition4Test : public ::testing::TestWithParam<int> {};

TEST_P(Proposition4Test, GAlgebraClosedUnderProducts) {
  Rng rng(static_cast<uint64_t>(500 + GetParam()));
  const std::vector<int64_t> sizes = {2, 3, 2};
  MarginalsAlgebra algebra(sizes);

  auto explicit_g = [&](const Vector& v) {
    Matrix acc = Matrix::Zeros(12, 12);
    for (uint32_t mask = 0; mask < 8; ++mask) {
      std::vector<Matrix> factors;
      for (int i = 0; i < 3; ++i) {
        const int64_t n = sizes[static_cast<size_t>(i)];
        factors.push_back(((mask >> i) & 1) ? IdentityBlock(n)
                                            : Matrix::Ones(n, n));
      }
      Matrix c = KronExplicit(factors);
      c.ScaleInPlace(v[mask]);
      acc.AddInPlace(c, 1.0);
    }
    return acc;
  };

  Vector u(8), v(8);
  for (double& x : u) x = rng.Uniform(0.0, 2.0);
  for (double& x : v) x = rng.Uniform(0.0, 2.0);

  const Matrix lhs = MatMul(explicit_g(u), explicit_g(v));
  const Matrix rhs = explicit_g(MatVec(algebra.BuildX(u), v));
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Proposition4Test, ::testing::Range(0, 8));

TEST(Proposition4, InverseWeightsInvertG) {
  // G(v) = G(u)^{-1} when X(u) v = e_full — the O(4^d) pseudo-inverse trick
  // behind OPT_M's RECONSTRUCT (Section 7.2).
  const std::vector<int64_t> sizes = {2, 3};
  MarginalsAlgebra algebra(sizes);
  Rng rng(9);
  Vector u(4);
  for (double& x : u) x = rng.Uniform(0.2, 1.5);  // u_full > 0.

  auto explicit_g = [&](const Vector& v) {
    Matrix acc = Matrix::Zeros(6, 6);
    for (uint32_t mask = 0; mask < 4; ++mask) {
      std::vector<Matrix> factors;
      for (int i = 0; i < 2; ++i) {
        const int64_t n = sizes[static_cast<size_t>(i)];
        factors.push_back(((mask >> i) & 1) ? IdentityBlock(n)
                                            : Matrix::Ones(n, n));
      }
      Matrix c = KronExplicit(factors);
      c.ScaleInPlace(v[mask]);
      acc.AddInPlace(c, 1.0);
    }
    return acc;
  };

  const Vector v = algebra.InverseWeights(u);
  const Matrix product = MatMul(explicit_g(u), explicit_g(v));
  EXPECT_LT(product.MaxAbsDiff(Matrix::Identity(6)), 1e-9);
}

// --- Theorem 4 / 8: the O(pN^2) objective equals the O(N^3) reference. -----

class Theorem4Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Test, FastObjectiveMatchesReference) {
  Rng rng(static_cast<uint64_t>(600 + GetParam()));
  const int64_t n = rng.UniformInt(4, 16);
  const int p = static_cast<int>(rng.UniformInt(1, 4));
  Matrix gram = AllRangeGram(n);
  Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.0, 1.0);
  const double fast = PIdentityObjective::TraceWithGram(theta, gram);
  const double reference = PIdentityObjective::EvalReference(theta, gram);
  EXPECT_NEAR(fast, reference, 1e-7 * std::max(1.0, reference));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem4Test, ::testing::Range(0, 12));

// --- ImpVec (Algorithm 1): logical workloads to implicit matrices. ---------

TEST(ImpVecAlgorithm, MatchesBruteForceOnLogicalWorkload) {
  Domain domain({3, 4});
  LogicalWorkload logical;
  logical.domain = domain;
  logical.AddConjunction({{0, Predicate::Equals(1)}, {1, Predicate::Range(0, 2)}},
                         2.0);
  logical.AddConjunction({{1, Predicate::InSet({0, 3})}});

  UnionWorkload w = ImpVec(logical);
  ASSERT_EQ(w.NumProducts(), 2);
  Matrix explicit_w = w.Explicit();
  ASSERT_EQ(explicit_w.rows(), 2);

  Vector row0 = BruteForceVectorize(
      {Predicate::Equals(1), Predicate::Range(0, 2)}, domain);
  Vector row1 =
      BruteForceVectorize({Predicate::True(), Predicate::InSet({0, 3})},
                          domain);
  for (int64_t c = 0; c < domain.TotalSize(); ++c) {
    EXPECT_DOUBLE_EQ(explicit_w(0, c), 2.0 * row0[static_cast<size_t>(c)]);
    EXPECT_DOUBLE_EQ(explicit_w(1, c), row1[static_cast<size_t>(c)]);
  }
}

}  // namespace
}  // namespace hdmm
