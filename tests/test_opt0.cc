#include "core/opt0.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Opt0, BeatsIdentityOnPrefix) {
  // For the Prefix workload, identity is a poor strategy; OPT_0 must find
  // something substantially better.
  const int64_t n = 32;
  Matrix g = PrefixGram(n);
  double identity_error = g.Trace();
  Rng rng(1);
  Opt0Options opts;
  opts.p = static_cast<int>(n / 16);
  Opt0Result res = Opt0(g, opts, &rng);
  EXPECT_LT(res.error, 0.75 * identity_error);
}

TEST(Opt0, BeatsIdentityOnAllRange) {
  // At small n identity is close to optimal for AllRange (Table 4a shows a
  // ratio of only 1.38 even at n = 128); n = 64 with a few restarts shows a
  // solid improvement without making the test slow.
  const int64_t n = 64;
  Matrix g = AllRangeGram(n);
  double identity_error = g.Trace();
  Rng rng(2);
  Opt0Options opts;
  opts.p = 8;
  opts.restarts = 3;
  Opt0Result res = Opt0(g, opts, &rng);
  EXPECT_LT(res.error, 0.8 * identity_error);
}

TEST(Opt0, IdentityWorkloadKeepsIdentityLikeError) {
  // For W = I the optimal strategy is I itself (error n); OPT_0 should get
  // within a few percent.
  const int64_t n = 16;
  Matrix g = Matrix::Identity(n);
  Rng rng(3);
  Opt0Options opts;
  opts.p = 1;
  Opt0Result res = Opt0(g, opts, &rng);
  EXPECT_LT(res.error, 1.10 * static_cast<double>(n));
  EXPECT_GE(res.error, static_cast<double>(n) - 1e-6);
}

TEST(Opt0, RestartsNeverHurt) {
  const int64_t n = 16;
  Matrix g = AllRangeGram(n);
  Rng rng1(7), rng2(7);
  Opt0Options one;
  one.p = 2;
  one.restarts = 1;
  Opt0Options three = one;
  three.restarts = 3;
  double e1 = Opt0(g, one, &rng1).error;
  double e3 = Opt0(g, three, &rng2).error;
  EXPECT_LE(e3, e1 + 1e-9);
}

TEST(Opt0, WarmStartImproves) {
  const int64_t n = 16;
  Matrix g = PrefixGram(n);
  Rng rng(4);
  Matrix theta0 = Matrix::RandomUniform(2, n, &rng, 0.0, 1.0);
  PIdentityObjective obj(g, 2);
  Vector flat(theta0.data(), theta0.data() + theta0.size());
  double before = obj.Eval(flat, nullptr);
  Opt0Result res = Opt0WarmStart(g, theta0, LbfgsbOptions());
  EXPECT_LE(res.error, before);
}

TEST(Opt0, DefaultPConvention) {
  // Identity and Total factors are "simple": p = 1.
  EXPECT_EQ(DefaultP(IdentityBlock(64)), 1);
  EXPECT_EQ(DefaultP(TotalBlock(64)), 1);
  // Prefix is not: p = n/16.
  EXPECT_EQ(DefaultP(PrefixBlock(64)), 4);
  EXPECT_EQ(DefaultPFromSize(64), 4);
  EXPECT_EQ(DefaultPFromSize(8), 1);
}

TEST(Opt0, KeepsFirstRestartWhenAllNonFinite) {
  // A poisoned Gram makes every restart's error non-finite. The result must
  // still carry restart 0's full-sized parameterization (mirroring OptKron's
  // keep-restart-0 behavior) instead of an empty Theta.
  const int64_t n = 8;
  Matrix g(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      g(i, j) = std::numeric_limits<double>::quiet_NaN();
  Rng rng(6);
  Opt0Options opts;
  opts.p = 2;
  opts.restarts = 3;
  opts.lbfgs.max_iterations = 3;
  Opt0Result res = Opt0(g, opts, &rng);
  EXPECT_EQ(res.theta.rows(), 2);
  EXPECT_EQ(res.theta.cols(), n);
  EXPECT_FALSE(std::isfinite(res.error));
}

TEST(Opt0, ThetaIsNonNegative) {
  const int64_t n = 12;
  Matrix g = PrefixGram(n);
  Rng rng(5);
  Opt0Options opts;
  opts.p = 2;
  Opt0Result res = Opt0(g, opts, &rng);
  for (int64_t i = 0; i < res.theta.rows(); ++i)
    for (int64_t j = 0; j < res.theta.cols(); ++j)
      EXPECT_GE(res.theta(i, j), 0.0);
}

}  // namespace
}  // namespace hdmm
