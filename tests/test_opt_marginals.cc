#include "core/opt_marginals.h"

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

// Explicit M(theta) for testing: stack of theta_a-weighted marginals.
Matrix ExplicitMarginalsMatrix(const Domain& domain, const Vector& theta) {
  std::vector<Matrix> blocks;
  for (uint32_t mask = 0; mask < theta.size(); ++mask) {
    if (theta[mask] == 0.0) continue;
    ProductWorkload p = MarginalProduct(domain, mask, theta[mask]);
    blocks.push_back(p.Explicit());
  }
  return VStack(blocks);
}

TEST(MarginalsAlgebra, CWeight) {
  MarginalsAlgebra alg({2, 3, 5});
  EXPECT_DOUBLE_EQ(alg.CWeight(0b000), 30.0);
  EXPECT_DOUBLE_EQ(alg.CWeight(0b111), 1.0);
  EXPECT_DOUBLE_EQ(alg.CWeight(0b001), 15.0);  // bit0 set -> drop n_0 = 2.
  EXPECT_DOUBLE_EQ(alg.CWeight(0b100), 6.0);   // bit2 set -> drop n_2 = 5.
}

TEST(MarginalsAlgebra, Proposition3ProductRule) {
  // C(a) C(b) = c(a|b) C(a&b), checked explicitly on a small domain.
  Domain d({2, 3});
  MarginalsAlgebra alg({2, 3});
  auto c_of = [&](uint32_t m) {
    std::vector<Matrix> fs;
    for (int i = 0; i < 2; ++i) {
      int64_t n = d.AttributeSize(i);
      fs.push_back(((m >> i) & 1u) ? Matrix::Identity(n) : Matrix::Ones(n, n));
    }
    return KronExplicit(fs);
  };
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      Matrix lhs = MatMul(c_of(a), c_of(b));
      Matrix rhs = MatScale(c_of(a & b), alg.CWeight(a | b));
      EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-12) << "a=" << a << " b=" << b;
    }
  }
}

TEST(MarginalsAlgebra, XMatrixIsUpperTriangular) {
  MarginalsAlgebra alg({2, 2, 2});
  Rng rng(1);
  Vector u(8);
  for (auto& v : u) v = rng.Uniform(0.1, 1.0);
  Matrix x = alg.BuildX(u);
  for (int64_t i = 0; i < 8; ++i)
    for (int64_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(x(i, j), 0.0);
}

TEST(MarginalsAlgebra, InverseWeightsGiveTrueInverse) {
  // G(v) = (M^T M)^{-1} checked against the explicit matrix.
  Domain d({2, 3});
  MarginalsAlgebra alg({2, 3});
  Rng rng(2);
  Vector theta(4);
  for (auto& v : theta) v = rng.Uniform(0.2, 1.0);

  Vector u(4);
  for (int a = 0; a < 4; ++a) u[static_cast<size_t>(a)] = theta[static_cast<size_t>(a)] * theta[static_cast<size_t>(a)];
  Vector v = alg.InverseWeights(u);

  Matrix m = ExplicitMarginalsMatrix(d, theta);
  Matrix mtm = Gram(m);
  // G(v) = sum_a v_a C(a).
  Matrix gv(6, 6);
  for (uint32_t a = 0; a < 4; ++a) {
    std::vector<Matrix> fs;
    for (int i = 0; i < 2; ++i) {
      int64_t n = d.AttributeSize(i);
      fs.push_back(((a >> i) & 1u) ? Matrix::Identity(n) : Matrix::Ones(n, n));
    }
    gv.AddInPlace(KronExplicit(fs), v[a]);
  }
  EXPECT_LT(MatMul(mtm, gv).MaxAbsDiff(Matrix::Identity(6)), 1e-8);
}

TEST(MarginalsAlgebra, TraceObjectiveMatchesExplicit) {
  Domain d({2, 3, 2});
  MarginalsAlgebra alg({2, 3, 2});
  Rng rng(3);
  Vector theta(8);
  for (auto& v : theta) v = rng.Uniform(0.2, 1.0);
  UnionWorkload w = UpToKWayMarginals(d, 2);

  Vector tau = alg.WorkloadTraceVector(w);
  double tr = alg.TraceObjective(theta, tau);

  Matrix m = ExplicitMarginalsMatrix(d, theta);
  Matrix ref_gram = Gram(w.Explicit());
  double ref = TracePinvGram(Gram(m), ref_gram);
  EXPECT_NEAR(tr, ref, 1e-6 * std::fabs(ref));
}

TEST(OptMarginals, GradientMatchesFiniteDifference) {
  Domain d({3, 4});
  UnionWorkload w = AllMarginals(d);
  MarginalsAlgebra alg({3, 4});
  Vector tau = alg.WorkloadTraceVector(w);

  // Recreate the OPT_M objective via public pieces: f(theta) =
  // (sum theta)^2 * TraceObjective(theta).
  auto f = [&](const Vector& theta) {
    double s = Sum(theta);
    return s * s * alg.TraceObjective(theta, tau);
  };
  Rng rng(4);
  Vector theta(4);
  for (auto& v : theta) v = rng.Uniform(0.3, 1.0);

  // Finite-difference the OptMarginals objective indirectly by comparing a
  // one-step OptMarginals run's internal gradient: we instead check that the
  // objective is smooth and the optimizer decreases it.
  OptMarginalsOptions opts;
  opts.lbfgs.max_iterations = 60;
  OptMarginalsResult res = OptMarginals(w, opts, &rng);
  EXPECT_LT(res.error, f(theta));  // Optimized beats an arbitrary point.
}

TEST(OptMarginals, NeverWorseThanFullTable) {
  // At tiny scale (4x4x4) measuring the full table is locally optimal; the
  // built-in fallback guarantees OPT_M matches it.
  Domain d({4, 4, 4});
  UnionWorkload w = UpToKWayMarginals(d, 2);
  Rng rng(5);
  OptMarginalsResult res = OptMarginals(w, OptMarginalsOptions(), &rng);
  MarginalsAlgebra alg({4, 4, 4});
  Vector full_only(8, 0.0);
  full_only[7] = 1.0;
  Vector tau = alg.WorkloadTraceVector(w);
  double id_err = alg.TraceObjective(full_only, tau);
  EXPECT_LE(res.error, id_err + 1e-9);
}

TEST(OptMarginals, BeatsFullTableOnLargerDomains) {
  // The regime of Table 5: larger per-attribute domains make weighted
  // low-order marginals strongly better than the full contingency table.
  Domain d({10, 10, 10, 10});
  UnionWorkload w = UpToKWayMarginals(d, 2);
  Rng rng(7);
  OptMarginalsOptions opts;
  opts.restarts = 3;
  OptMarginalsResult res = OptMarginals(w, opts, &rng);
  MarginalsAlgebra alg({10, 10, 10, 10});
  Vector full_only(16, 0.0);
  full_only[15] = 1.0;
  Vector tau = alg.WorkloadTraceVector(w);
  double id_err = alg.TraceObjective(full_only, tau);
  EXPECT_LT(res.error, 0.5 * id_err);
}

TEST(OptMarginals, ErrorMatchesStrategySquaredError) {
  Domain d({3, 3});
  UnionWorkload w = AllMarginals(d);
  Rng rng(6);
  OptMarginalsResult res = OptMarginals(w, OptMarginalsOptions(), &rng);
  MarginalsStrategy strat(d, res.theta);
  EXPECT_NEAR(strat.SquaredError(w), res.error,
              1e-6 * std::max(1.0, res.error));
}

}  // namespace
}  // namespace hdmm
