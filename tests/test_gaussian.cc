#include "core/gaussian.h"

#include <gtest/gtest.h>

#include "linalg/kron.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Gaussian, L2SensitivityExplicit) {
  Matrix a = Matrix::FromRows({{3.0, 0.0}, {4.0, 1.0}});
  // Column 0: sqrt(9 + 16) = 5; column 1: 1.
  EXPECT_DOUBLE_EQ(L2Sensitivity(a), 5.0);
}

TEST(Gaussian, KronL2SensitivityMatchesExplicit) {
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(3, 4, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(5, 2, &rng, -1.0, 1.0);
  double implicit = KronL2Sensitivity({a, b});
  double explicit_sens = L2Sensitivity(KronExplicit({a, b}));
  EXPECT_NEAR(implicit, explicit_sens, 1e-12);
}

TEST(Gaussian, NoiseScaleFormula) {
  // sigma = sens * sqrt(2 ln(1.25/delta)) / eps.
  double sigma = GaussianNoiseScale(2.0, 0.5, 1e-5);
  EXPECT_NEAR(sigma, 2.0 * std::sqrt(2.0 * std::log(1.25e5)) / 0.5, 1e-9);
}

TEST(Gaussian, MeasureCalibration) {
  // Empirical variance of the Gaussian measurement matches sigma^2.
  KronStrategy id({IdentityBlock(4)});
  Rng rng(2);
  Vector x = {10.0, 20.0, 30.0, 40.0};
  const double eps = 1.0, delta = 1e-6;
  const double sigma = GaussianNoiseScale(1.0, eps, delta);
  double sum_sq = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Vector y = MeasureGaussian(id, x, 1.0, eps, delta, &rng);
    for (size_t i = 0; i < 4; ++i) {
      double noise = y[i] - x[i];
      sum_sq += noise * noise;
    }
  }
  double var = sum_sq / (4 * trials);
  EXPECT_NEAR(var, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(Gaussian, TotalErrorScalesWithTrace) {
  double e1 = GaussianTotalSquaredError(10.0, 1.0, 1.0, 1e-6);
  double e2 = GaussianTotalSquaredError(20.0, 1.0, 1.0, 1e-6);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
}

TEST(Gaussian, L2AdvantageOverL1ForDenseStrategies) {
  // For strategies with many small entries per column (e.g., Prefix), the
  // L2 sensitivity is much smaller than L1 — the structural reason the
  // Gaussian mechanism wins at high dimension.
  Matrix p = PrefixBlock(64);
  EXPECT_LT(L2Sensitivity(p), p.MaxAbsColSum());
  EXPECT_GT(p.MaxAbsColSum() / L2Sensitivity(p), 5.0);
}

}  // namespace
}  // namespace hdmm
