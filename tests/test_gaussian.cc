#include "core/gaussian.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/kron.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Gaussian, L2SensitivityExplicit) {
  Matrix a = Matrix::FromRows({{3.0, 0.0}, {4.0, 1.0}});
  // Column 0: sqrt(9 + 16) = 5; column 1: 1.
  EXPECT_DOUBLE_EQ(L2Sensitivity(a), 5.0);
}

TEST(Gaussian, KronL2SensitivityMatchesExplicit) {
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(3, 4, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(5, 2, &rng, -1.0, 1.0);
  double implicit = KronL2Sensitivity({a, b});
  double explicit_sens = L2Sensitivity(KronExplicit({a, b}));
  EXPECT_NEAR(implicit, explicit_sens, 1e-12);
}

TEST(Gaussian, NoiseScaleFormula) {
  // sigma = sens * sqrt(2 ln(1.25/delta)) / eps.
  double sigma = GaussianNoiseScale(2.0, 0.5, 1e-5);
  EXPECT_NEAR(sigma, 2.0 * std::sqrt(2.0 * std::log(1.25e5)) / 0.5, 1e-9);
}

TEST(Gaussian, MeasureCalibration) {
  // Empirical variance of the Gaussian measurement matches sigma^2.
  KronStrategy id({IdentityBlock(4)});
  Rng rng(2);
  Vector x = {10.0, 20.0, 30.0, 40.0};
  const double eps = 0.9, delta = 1e-6;
  const double sigma = GaussianNoiseScale(1.0, eps, delta);
  double sum_sq = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Vector y = MeasureGaussian(id, x, 1.0, eps, delta, &rng);
    for (size_t i = 0; i < 4; ++i) {
      double noise = y[i] - x[i];
      sum_sq += noise * noise;
    }
  }
  double var = sum_sq / (4 * trials);
  EXPECT_NEAR(var, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(Gaussian, TotalErrorScalesWithTrace) {
  double e1 = GaussianTotalSquaredError(10.0, 1.0, 0.5, 1e-6);
  double e2 = GaussianTotalSquaredError(20.0, 1.0, 0.5, 1e-6);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
}

TEST(GaussianDeath, ClassicCalibrationRejectsEpsilonAtLeastOne) {
  // Regression for the silent under-noising bug: the classic
  // sqrt(2 ln(1.25/delta)) analysis is only valid for epsilon < 1. Exactly
  // epsilon = 1 is the boundary case that used to slip through.
  EXPECT_DEATH(GaussianNoiseScale(1.0, 1.0, 1e-6), "invalid for epsilon");
  EXPECT_DEATH(GaussianNoiseScale(1.0, 4.0, 1e-6), "invalid for epsilon");
  EXPECT_GT(GaussianNoiseScale(1.0, 0.999, 1e-6), 0.0);
}

TEST(Gaussian, ZCdpSigmaFormulaAndInverse) {
  // sigma = sens / sqrt(2 rho), exact for every rho > 0 — including the
  // large-budget regime the classic calibration cannot express.
  EXPECT_DOUBLE_EQ(GaussianSigmaFromRho(2.0, 0.5), 2.0);
  EXPECT_NEAR(GaussianSigmaFromRho(1.0, 8.0), 0.25, 1e-15);
  for (double rho : {0.01, 0.5, 2.0, 50.0}) {
    EXPECT_NEAR(RhoFromGaussianSigma(3.0, GaussianSigmaFromRho(3.0, rho)),
                rho, 1e-12 * rho);
  }
}

TEST(Gaussian, BunSteinkeConversionClosedForm) {
  // rho-zCDP => (rho + 2 sqrt(rho ln(1/delta)), delta)-DP (Prop 1.3).
  const double rho = 0.5, delta = 1e-6;
  EXPECT_NEAR(RhoToEpsilon(rho, delta),
              rho + 2.0 * std::sqrt(rho * std::log(1e6)), 1e-12);
  EXPECT_EQ(RhoToEpsilon(0.0, delta), 0.0);
  // Pure eps-DP => (eps^2/2)-zCDP (Prop 1.4).
  EXPECT_DOUBLE_EQ(PureDpToRho(2.0), 2.0);
  EXPECT_DOUBLE_EQ(PureDpToRho(0.5), 0.125);
}

TEST(Gaussian, RhoFromEpsilonDeltaInvertsRhoToEpsilon) {
  for (double eps : {0.1, 1.0, 3.0, 10.0}) {
    for (double delta : {1e-9, 1e-6, 1e-3}) {
      const double rho = RhoFromEpsilonDelta(eps, delta);
      EXPECT_GT(rho, 0.0);
      EXPECT_NEAR(RhoToEpsilon(rho, delta), eps, 1e-9 * eps)
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(Gaussian, StrategyMeasureGaussianCalibration) {
  // Strategy::MeasureGaussian draws N(0, sigma^2) with
  // sigma = L2Sensitivity() / sqrt(2 rho).
  KronStrategy id({IdentityBlock(4)});
  Rng rng(7);
  Vector x = {10.0, 20.0, 30.0, 40.0};
  const double rho = 0.125;
  const double sigma = GaussianSigmaFromRho(id.L2Sensitivity(), rho);
  EXPECT_DOUBLE_EQ(sigma, 2.0);  // sens 1, sqrt(2 * 0.125) = 0.5.
  double sum_sq = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Vector y = id.MeasureGaussian(x, rho, &rng);
    for (size_t i = 0; i < 4; ++i) {
      double noise = y[i] - x[i];
      sum_sq += noise * noise;
    }
  }
  double var = sum_sq / (4 * trials);
  EXPECT_NEAR(var, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(GaussianDeath, ZCdpRejectsInvalidRho) {
  KronStrategy id({IdentityBlock(4)});
  Vector x = {1.0, 2.0, 3.0, 4.0};
  Rng rng(9);
  EXPECT_DEATH(id.MeasureGaussian(x, 0.0, &rng), "rho");
  EXPECT_DEATH(id.MeasureGaussian(x, std::nan(""), &rng), "rho");
  EXPECT_DEATH(GaussianSigmaFromRho(0.0, 1.0), "sensitivity");
}

TEST(Gaussian, L2AdvantageOverL1ForDenseStrategies) {
  // For strategies with many small entries per column (e.g., Prefix), the
  // L2 sensitivity is much smaller than L1 — the structural reason the
  // Gaussian mechanism wins at high dimension.
  Matrix p = PrefixBlock(64);
  EXPECT_LT(L2Sensitivity(p), p.MaxAbsColSum());
  EXPECT_GT(p.MaxAbsColSum() / L2Sensitivity(p), 5.0);
}

}  // namespace
}  // namespace hdmm
