// Stress tests for the shared work-stealing pool: partition correctness,
// concurrent ParallelFor calls from many external threads, and the serial
// fallback for nested parallel sections.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace hdmm {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool& pool = ThreadPool::Global();
  const int64_t n = 10007;  // Prime: never divides evenly into chunks.
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, /*grain=*/16, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool& pool = ThreadPool::Global();
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(3, 2, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A single-element range runs serially on the caller.
  pool.ParallelFor(7, 8, 64, [&](int64_t b, int64_t e) {
    EXPECT_EQ(b, 7);
    EXPECT_EQ(e, 8);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PrivatePoolSumsCorrectly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int64_t> sum{0};
  const int64_t n = 100000;
  pool.ParallelFor(0, n, 100, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, ConcurrentSubmittersShareOnePool) {
  // Many external threads hammer the same pool concurrently; every
  // ParallelFor must see exactly its own range covered.
  ThreadPool pool(2);
  constexpr int kSubmitters = 8;
  constexpr int64_t kN = 20000;
  std::vector<std::int64_t> sums(kSubmitters, 0);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &sums, t] {
      std::atomic<int64_t> sum{0};
      pool.ParallelFor(0, kN, 64, [&](int64_t b, int64_t e) {
        int64_t local = 0;
        for (int64_t i = b; i < e; ++i) local += i + t;
        sum.fetch_add(local);
      });
      sums[static_cast<size_t>(t)] = sum.load();
    });
  }
  for (auto& th : submitters) th.join();
  for (int t = 0; t < kSubmitters; ++t) {
    EXPECT_EQ(sums[static_cast<size_t>(t)], kN * (kN - 1) / 2 + kN * t);
  }
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  std::atomic<bool> saw_nested_worker_flag{false};
  pool.ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Inside a pool task the nested section must run inline: exactly one
      // body invocation covering the whole range, no deadlock.
      int inner_calls = 0;
      pool.ParallelFor(0, 100, 1, [&](int64_t ib, int64_t ie) {
        ++inner_calls;
        EXPECT_EQ(ib, 0);
        EXPECT_EQ(ie, 100);
        total.fetch_add(ie - ib);
      });
      EXPECT_EQ(inner_calls, 1);
      if (ThreadPool::InWorker()) saw_nested_worker_flag.store(true);
    }
  });
  EXPECT_EQ(total.load(), 64 * 100);
  EXPECT_TRUE(saw_nested_worker_flag.load());
}

TEST(ThreadPool, ZeroWorkerPoolIsSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1000);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ManySmallParallelForsDoNotLeakOrDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> count{0};
  for (int round = 0; round < 500; ++round) {
    pool.ParallelFor(0, 64, 4, [&](int64_t b, int64_t e) {
      count.fetch_add(e - b);
    });
  }
  EXPECT_EQ(count.load(), 500 * 64);
}

}  // namespace
}  // namespace hdmm
