// Tiled data-vector storage: backend roundtrips, tiling edge cases (domain
// smaller than one tile, tile size not dividing N), hot-tile eviction under
// a one-tile budget, corruption quarantine, crash-at-seal recovery, and
// memory-vs-mmap answer parity at the session layer (bit-identical answers
// are the contract that makes the mmap backend a pure storage decision).
#include "engine/tile_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/strategy.h"
#include "engine/engine.h"
#include "engine/privacy.h"
#include "crash_harness.h"
#include "workload/domain.h"

namespace hdmm {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("hdmm_tile_store_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

Vector Ramp(int64_t n) {
  Vector v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = 0.5 * static_cast<double>(i) - 3.0;
  }
  return v;
}

void FillStore(DataVectorStore* store, const Vector& data) {
  for (int64_t t = 0; t < store->num_tiles(); ++t) {
    ASSERT_TRUE(store
                    ->AppendTile(data.data() + t * store->tile_cells(),
                                 store->TileCells(t))
                    .ok());
  }
  ASSERT_TRUE(store->Seal().ok());
}

void ExpectStoreHolds(const DataVectorStore& store, const Vector& data) {
  ASSERT_EQ(store.size(), static_cast<int64_t>(data.size()));
  for (int64_t t = 0; t < store.num_tiles(); ++t) {
    StatusOr<TileRef> ref = store.Tile(t);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_EQ(ref.value().cells(), store.TileCells(t));
    EXPECT_EQ(std::memcmp(ref.value().data(),
                          data.data() + t * store.tile_cells(),
                          static_cast<size_t>(ref.value().cells()) *
                              sizeof(double)),
              0);
  }
  for (int64_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.At(i), data[static_cast<size_t>(i)]);
  }
}

class TileStoreTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(TileStoreTest, MemoryRoundtripNonDividingTileSize) {
  // 3 cells per tile over 10 cells: last tile is short.
  const Vector data = Ramp(10);
  MemoryVectorStore store(10, /*tile_bytes=*/3 * 8);
  EXPECT_EQ(store.tile_cells(), 3);
  EXPECT_EQ(store.num_tiles(), 4);
  EXPECT_EQ(store.TileCells(3), 1);
  FillStore(&store, data);
  ExpectStoreHolds(store, data);
  ASSERT_NE(store.ContiguousData(), nullptr);
  ASSERT_NE(store.AsVector(), nullptr);
}

TEST_F(TileStoreTest, MemoryAdoptWrapsWithoutRebuilding) {
  Vector data = Ramp(7);
  const Vector expect = data;
  auto store = MemoryVectorStore::Adopt(std::move(data), /*tile_bytes=*/16);
  ASSERT_TRUE(store->sealed());
  ExpectStoreHolds(*store, expect);
}

TEST_F(TileStoreTest, MmapRoundtripNonDividingTileSize) {
  const std::string dir = FreshDir("roundtrip");
  const Vector data = Ramp(10);
  MmapTileStore store(10, /*tile_bytes=*/3 * 8, dir,
                      /*hot_tile_budget=*/1 << 20);
  EXPECT_EQ(store.num_tiles(), 4);
  FillStore(&store, data);
  ASSERT_TRUE(std::filesystem::exists(dir + "/" +
                                      MmapTileStore::kManifestName));
  ExpectStoreHolds(store, data);
  EXPECT_EQ(store.ContiguousData(), nullptr);
}

TEST_F(TileStoreTest, DomainSmallerThanOneTile) {
  const std::string dir = FreshDir("small");
  const Vector data = Ramp(5);
  MmapTileStore store(5, /*tile_bytes=*/1 << 20, dir,
                      /*hot_tile_budget=*/1 << 20);
  EXPECT_EQ(store.num_tiles(), 1);
  EXPECT_EQ(store.TileCells(0), 5);
  FillStore(&store, data);
  ExpectStoreHolds(store, data);
}

TEST_F(TileStoreTest, RemovesDirectoryOnDestruction) {
  const std::string dir = FreshDir("cleanup");
  {
    MmapTileStore store(4, 16, dir, 1 << 20);
    FillStore(&store, Ramp(4));
    ASSERT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST_F(TileStoreTest, OneTileBudgetEvictsButStaysCorrect) {
  const std::string dir = FreshDir("evict");
  const Vector data = Ramp(12);
  // 4 cells per tile, 3 tiles; budget of one byte forces every fault to
  // evict the previous tile — the degenerate "never refuse the read" case.
  MmapTileStore store(12, /*tile_bytes=*/4 * 8, dir, /*hot_tile_budget=*/1);
  FillStore(&store, data);
  for (int round = 0; round < 2; ++round) {
    for (int64_t t = 0; t < store.num_tiles(); ++t) {
      StatusOr<TileRef> ref = store.Tile(t);
      ASSERT_TRUE(ref.ok());
      EXPECT_EQ(ref.value().data()[0],
                data[static_cast<size_t>(t * store.tile_cells())]);
      EXPECT_EQ(store.HotTiles(), 1);
    }
  }
  // A pinned ref must stay readable across the eviction of its tile.
  StatusOr<TileRef> pinned = store.Tile(0);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(store.Tile(1).ok());  // Evicts tile 0 from the hot set.
  EXPECT_EQ(store.HotTiles(), 1);
  EXPECT_EQ(pinned.value().data()[3], data[3]);
}

TEST_F(TileStoreTest, CorruptTileQuarantinedLikeStrategyCache) {
  const std::string dir = FreshDir("corrupt");
  const Vector data = Ramp(8);
  MmapTileStore store(8, /*tile_bytes=*/4 * 8, dir, 1 << 20);
  FillStore(&store, data);

  // Flip payload bytes of tile 1 behind the store's back.
  const std::string victim = dir + "/tile-00000001.bin";
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 48, SEEK_SET), 0);
    const char junk[8] = {0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
    std::fclose(f);
  }

  StatusOr<TileRef> ref = store.Tile(1);
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(ref.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(std::filesystem::exists(victim));
  EXPECT_TRUE(std::filesystem::exists(victim + ".corrupt"));
  // The healthy tiles still serve.
  EXPECT_TRUE(store.Tile(0).ok());
}

TEST_F(TileStoreTest, TruncatedTileQuarantined) {
  const std::string dir = FreshDir("truncated");
  MmapTileStore store(8, /*tile_bytes=*/4 * 8, dir, 1 << 20);
  FillStore(&store, Ramp(8));
  const std::string victim = dir + "/tile-00000000.bin";
  ASSERT_EQ(::truncate(victim.c_str(), 16), 0);
  StatusOr<TileRef> ref = store.Tile(0);
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(ref.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(std::filesystem::exists(victim + ".corrupt"));
}

TEST_F(TileStoreTest, WriteFailpointSurfacesIoError) {
  const std::string dir = FreshDir("write_fp");
  MmapTileStore store(8, /*tile_bytes=*/4 * 8, dir, 1 << 20);
  ASSERT_TRUE(Failpoints::Activate("tile_store.write.io_error", "nth:2"));
  const Vector data = Ramp(8);
  ASSERT_TRUE(store.AppendTile(data.data(), 4).ok());
  const Status st = store.AppendTile(data.data() + 4, 4);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  Failpoints::DeactivateAll();
  // The failed append did not advance the build: retrying completes it.
  ASSERT_TRUE(store.AppendTile(data.data() + 4, 4).ok());
  ASSERT_TRUE(store.Seal().ok());
  ExpectStoreHolds(store, data);
}

TEST_F(TileStoreTest, CrashAtSealRebuildsCleanly) {
  const std::string dir = FreshDir("crash_seal");
  CrashResult crash = RunCrashChild(
      "tile_store.seal=crash", [&](const std::function<void()>& ack) {
        const Vector data = Ramp(8);
        MmapTileStore store(8, /*tile_bytes=*/4 * 8, dir, 1 << 20,
                            /*remove_dir_on_destroy=*/false);
        for (int64_t t = 0; t < store.num_tiles(); ++t) {
          if (store
                  .AppendTile(data.data() + t * store.tile_cells(),
                              store.TileCells(t))
                  .ok()) {
            ack();
          }
        }
        (void)store.Seal();  // SIGKILLed inside the failpoint.
      });
  ASSERT_TRUE(crash.forked);
  ASSERT_TRUE(crash.sigkilled);
  EXPECT_EQ(crash.acked, 2);
  // Tiles are on disk but the manifest never landed — the store was not
  // sealed, and a fresh build over the same directory must start clean and
  // succeed without tripping over the orphans.
  EXPECT_FALSE(std::filesystem::exists(dir + "/" +
                                       MmapTileStore::kManifestName));
  const Vector data = Ramp(8);
  MmapTileStore rebuilt(8, /*tile_bytes=*/4 * 8, dir, 1 << 20);
  FillStore(&rebuilt, data);
  ExpectStoreHolds(rebuilt, data);
}

// ------------------------------------------------- session-layer parity --

SessionStorageOptions MmapStorage(const std::string& dir, int64_t tile_bytes,
                                  int64_t budget = 64 << 20) {
  SessionStorageOptions storage;
  storage.backend = SessionStorage::kMmap;
  storage.tile_bytes = tile_bytes;
  storage.hot_tile_budget = budget;
  storage.dir = dir;
  return storage;
}

std::vector<BoxQuery> AllBoxQueries(const Domain& d) {
  // Every valid (lo, hi) box over the domain — exhaustive for small domains.
  std::vector<BoxQuery> queries;
  std::vector<BoxQuery> partial{BoxQuery{{}, {}}};
  for (int a = 0; a < d.NumAttributes(); ++a) {
    std::vector<BoxQuery> next;
    for (const BoxQuery& q : partial) {
      for (int64_t lo = 0; lo < d.AttributeSize(a); ++lo) {
        for (int64_t hi = lo; hi < d.AttributeSize(a); ++hi) {
          BoxQuery extended = q;
          extended.lo.push_back(lo);
          extended.hi.push_back(hi);
          next.push_back(std::move(extended));
        }
      }
    }
    partial = std::move(next);
  }
  return partial;
}

TEST_F(TileStoreTest, GenericSessionAnswersBitIdenticalAcrossBackends) {
  const Domain d({3, 4, 5});
  Rng rng(1234);
  Vector x_hat(static_cast<size_t>(d.TotalSize()));
  for (double& v : x_hat) v = rng.Uniform(-2.0, 2.0);

  MeasurementSession memory_session(d, x_hat, PrivacyCharge::Laplace(1.0),
                                    nullptr);
  // 7 cells per tile: does not divide 60, exercises seam carry.
  MeasurementSession mmap_session(
      d, x_hat, PrivacyCharge::Laplace(1.0), nullptr,
      MmapStorage(FreshDir("parity_generic"), /*tile_bytes=*/7 * 8));

  const std::vector<BoxQuery> queries = AllBoxQueries(d);
  const Vector from_memory = memory_session.AnswerBatch(queries);
  const Vector from_mmap = mmap_session.AnswerBatch(queries);
  ASSERT_EQ(from_memory.size(), from_mmap.size());
  EXPECT_EQ(std::memcmp(from_memory.data(), from_mmap.data(),
                        from_memory.size() * sizeof(double)),
            0);
  // XHat on the mmap backend densifies from tiles — also bit-identical.
  const Vector& xm = memory_session.XHat();
  const Vector& xt = mmap_session.XHat();
  ASSERT_EQ(xm.size(), xt.size());
  EXPECT_EQ(std::memcmp(xm.data(), xt.data(), xm.size() * sizeof(double)), 0);
}

TEST_F(TileStoreTest, MarginalsSessionLazyPathBitIdenticalAcrossBackends) {
  // Marginals-measured sessions materialize x_hat lazily through
  // MarginalsStreamReconstructor + the seam pass; both backends run the
  // exact same fill and accumulation order, so the densified x_hat must
  // agree to the last bit (and covered answers trivially match — they are
  // served from the same measured tables).
  const Domain d({3, 4});
  Vector theta(4, 0.0);
  theta[1] = 1.0;
  theta[2] = 0.5;
  theta[3] = 0.25;  // Full marginal: reconstruction is well-defined.
  auto strategy = std::make_shared<MarginalsStrategy>(d, theta, "mixed");
  Vector x{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0, 8.0};
  const Vector y = strategy->Apply(x);

  MeasurementSession memory_session(d, strategy, y,
                                    PrivacyCharge::Gaussian(1.0));
  MeasurementSession mmap_session(
      d, strategy, y, PrivacyCharge::Gaussian(1.0),
      MmapStorage(FreshDir("parity_marginals"), /*tile_bytes=*/5 * 8));

  // XHat drives EnsureMaterialized — the lazy streaming build — on both.
  const Vector& xm = memory_session.XHat();
  const Vector& xt = mmap_session.XHat();
  ASSERT_EQ(xm.size(), xt.size());
  EXPECT_EQ(std::memcmp(xm.data(), xt.data(), xm.size() * sizeof(double)), 0);
  // And the streamed x_hat agrees with the dense closed-form reconstruction.
  const Vector dense = strategy->Reconstruct(y);
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(xm[i], dense[i], 1e-9) << "cell " << i;
  }

  const std::vector<BoxQuery> queries = AllBoxQueries(d);
  const Vector from_memory = memory_session.AnswerBatch(queries);
  const Vector from_mmap = mmap_session.AnswerBatch(queries);
  EXPECT_EQ(std::memcmp(from_memory.data(), from_mmap.data(),
                        from_memory.size() * sizeof(double)),
            0);
}

TEST_F(TileStoreTest, StreamReconstructorMatchesClosedFormReconstruct) {
  const Domain d({3, 2, 4});
  Vector theta(8, 0.0);
  theta[0b011] = 1.0;
  theta[0b100] = 0.7;
  theta[0b111] = 0.25;
  MarginalsStrategy strategy(d, theta, "mixed");
  Rng rng(99);
  Vector x(static_cast<size_t>(d.TotalSize()));
  for (double& v : x) v = rng.Uniform(0.0, 10.0);
  Vector y = strategy.Apply(x);
  // Perturb so y is not exactly in the strategy's range (as noise makes it).
  for (double& v : y) v += rng.Uniform(-0.5, 0.5);

  const Vector dense = strategy.Reconstruct(y);
  const MarginalsStreamReconstructor stream(strategy, y);
  Vector tiled(static_cast<size_t>(d.TotalSize()), 0.0);
  // Odd-sized chunks so ranges start mid-row everywhere.
  for (int64_t begin = 0; begin < d.TotalSize(); begin += 5) {
    const int64_t end = std::min<int64_t>(begin + 5, d.TotalSize());
    stream.Fill(begin, end, tiled.data() + begin);
  }
  ASSERT_EQ(dense.size(), tiled.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(tiled[i], dense[i], 1e-9) << "cell " << i;
  }
}

TEST_F(TileStoreTest, ParseSessionStorageNames) {
  SessionStorage backend = SessionStorage::kMemory;
  EXPECT_TRUE(ParseSessionStorage("mmap", &backend));
  EXPECT_EQ(backend, SessionStorage::kMmap);
  EXPECT_TRUE(ParseSessionStorage("memory", &backend));
  EXPECT_EQ(backend, SessionStorage::kMemory);
  EXPECT_FALSE(ParseSessionStorage("disk", &backend));
  EXPECT_STREQ(SessionStorageName(SessionStorage::kMmap), "mmap");
  EXPECT_STREQ(SessionStorageName(SessionStorage::kMemory), "memory");
}

}  // namespace
}  // namespace hdmm
