#include "linalg/kron.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

TEST(Kron, ExplicitSmall) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{0, 1}, {1, 0}});
  Matrix k = KronExplicit(a, b);
  EXPECT_EQ(k.rows(), 2);
  EXPECT_EQ(k.cols(), 4);
  // a kron b = [0 1 0 2; 1 0 2 0].
  EXPECT_DOUBLE_EQ(k(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(k(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(k(1, 2), 2.0);
}

TEST(Kron, VectorKron) {
  Vector a = {1.0, 2.0};
  Vector b = {3.0, 4.0, 5.0};
  Vector k = KronVector({a, b});
  ASSERT_EQ(k.size(), 6u);
  EXPECT_DOUBLE_EQ(k[0], 3.0);
  EXPECT_DOUBLE_EQ(k[2], 5.0);
  EXPECT_DOUBLE_EQ(k[3], 6.0);
  EXPECT_DOUBLE_EQ(k[5], 10.0);
}

// Property: KronMatVec(A_1..A_d, x) == KronExplicit(A_1..A_d) * x for random
// factor shapes (including non-square factors), d = 1..4.
class KronMatVecTest : public ::testing::TestWithParam<int> {};

TEST_P(KronMatVecTest, MatchesExplicit) {
  const int d = GetParam();
  Rng rng(static_cast<uint64_t>(100 + d));
  std::vector<Matrix> factors;
  int64_t n_total = 1;
  for (int i = 0; i < d; ++i) {
    int64_t m = rng.UniformInt(1, 4);
    int64_t n = rng.UniformInt(2, 4);
    factors.push_back(Matrix::RandomUniform(m, n, &rng, -1.0, 1.0));
    n_total *= n;
  }
  Vector x(static_cast<size_t>(n_total));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);

  Vector fast = KronMatVec(factors, x);
  Matrix full = KronExplicit(factors);
  Vector ref = MatVec(full, x);
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(fast[i], ref[i], 1e-11);

  // Transpose apply agrees too.
  Vector y(static_cast<size_t>(full.rows()));
  for (auto& v : y) v = rng.Uniform(-1.0, 1.0);
  Vector fast_t = KronMatTVec(factors, y);
  Vector ref_t = MatTVec(full, y);
  for (size_t i = 0; i < ref_t.size(); ++i)
    EXPECT_NEAR(fast_t[i], ref_t[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Dims, KronMatVecTest, ::testing::Values(1, 2, 3, 4));

TEST(Kron, OperatorInterface) {
  Rng rng(42);
  Matrix a = Matrix::RandomUniform(3, 4, &rng);
  Matrix b = Matrix::RandomUniform(2, 5, &rng);
  KronOperator op({a, b});
  EXPECT_EQ(op.Rows(), 6);
  EXPECT_EQ(op.Cols(), 20);
  Vector x(20, 1.0);
  Vector y = op.Apply(x);
  Vector ref = MatVec(KronExplicit({a, b}), x);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST(Kron, SensitivityTheorem3) {
  // ||A_1 x A_2||_1 = ||A_1||_1 ||A_2||_1.
  Rng rng(43);
  Matrix a = Matrix::RandomUniform(3, 3, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(4, 2, &rng, -1.0, 1.0);
  double implicit = KronSensitivity({a, b});
  double explicit_sens = KronExplicit({a, b}).MaxAbsColSum();
  EXPECT_NEAR(implicit, explicit_sens, 1e-12);
}

TEST(Kron, PinvFactorization) {
  // (A x B)^+ = A^+ x B^+ (Section 4.4): verified via explicit matrices.
  Rng rng(44);
  Matrix a = Matrix::RandomUniform(4, 3, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(5, 2, &rng, -1.0, 1.0);
  Matrix full = KronExplicit({a, b});
  // Use the library pinv on the kron and on the factors.
  Matrix p_full = PseudoInverse(full);
  Matrix p_kron = KronExplicit({PseudoInverse(a), PseudoInverse(b)});
  EXPECT_LT(p_full.MaxAbsDiff(p_kron), 1e-8);
}

// The parallel kmatvec must be bit-identical to the serial path: the column
// split preserves per-entry summation order. Sweep shapes and thread counts.
class KronParallelTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KronParallelTest, MatchesSerialBitForBit) {
  auto [shape_id, threads] = GetParam();
  Rng rng(static_cast<uint64_t>(shape_id * 17 + threads));
  std::vector<Matrix> factors;
  switch (shape_id) {
    case 0:  // 1D large-ish.
      factors = {Matrix::RandomUniform(300, 256, &rng, -1.0, 1.0)};
      break;
    case 1:  // 2D, uneven.
      factors = {Matrix::RandomUniform(7, 32, &rng, -1.0, 1.0),
                 Matrix::RandomUniform(64, 64, &rng, -1.0, 1.0)};
      break;
    default:  // 3D including a wide factor.
      factors = {Matrix::RandomUniform(3, 8, &rng, -1.0, 1.0),
                 Matrix::RandomUniform(16, 16, &rng, -1.0, 1.0),
                 Matrix::RandomUniform(2, 32, &rng, -1.0, 1.0)};
      break;
  }
  int64_t n = 1;
  for (const Matrix& f : factors) n *= f.cols();
  Vector x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  Vector serial = KronMatVec(factors, x);
  Vector parallel = KronMatVecParallel(factors, x, threads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "entry " << i;
  }

  Vector xt(static_cast<size_t>(KronOperator(factors).Rows()));
  for (double& v : xt) v = rng.Uniform(-1.0, 1.0);
  Vector serial_t = KronMatTVec(factors, xt);
  Vector parallel_t = KronMatTVecParallel(factors, xt, threads);
  for (size_t i = 0; i < serial_t.size(); ++i) {
    EXPECT_EQ(serial_t[i], parallel_t[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(ShapesAndThreads, KronParallelTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4, 0)));

TEST(KronParallel, TinyInputsFallBackToSerial) {
  Rng rng(9);
  Matrix a = Matrix::RandomUniform(2, 3, &rng, -1.0, 1.0);
  Vector x = {1.0, 2.0, 3.0};
  Vector serial = KronMatVec({a}, x);
  Vector parallel = KronMatVecParallel({a}, x, 8);
  for (size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]);
}

}  // namespace
}  // namespace hdmm
