#include "workload/building_blocks.h"

#include <gtest/gtest.h>

namespace hdmm {
namespace {

TEST(BuildingBlocks, IdentityTotal) {
  EXPECT_LT(IdentityBlock(4).MaxAbsDiff(Matrix::Identity(4)), 1e-15);
  Matrix t = TotalBlock(5);
  EXPECT_EQ(t.rows(), 1);
  EXPECT_DOUBLE_EQ(t.Sum(), 5.0);
}

TEST(BuildingBlocks, PrefixShape) {
  Matrix p = PrefixBlock(4);
  EXPECT_EQ(p.rows(), 4);
  // Row i sums i+1 cells.
  for (int64_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 4; ++j) s += p(i, j);
    EXPECT_DOUBLE_EQ(s, static_cast<double>(i + 1));
  }
}

TEST(BuildingBlocks, AllRangeCount) {
  Matrix r = AllRangeBlock(5);
  EXPECT_EQ(r.rows(), 15);  // n(n+1)/2.
  EXPECT_EQ(r.cols(), 5);
}

// Property: the closed-form Grams match explicit W^T W.
class GramClosedFormTest : public ::testing::TestWithParam<int> {};

TEST_P(GramClosedFormTest, PrefixGramMatches) {
  int n = GetParam();
  Matrix g = PrefixGram(n);
  Matrix ref = Gram(PrefixBlock(n));
  EXPECT_LT(g.MaxAbsDiff(ref), 1e-12);
}

TEST_P(GramClosedFormTest, AllRangeGramMatches) {
  int n = GetParam();
  Matrix g = AllRangeGram(n);
  Matrix ref = Gram(AllRangeBlock(n));
  EXPECT_LT(g.MaxAbsDiff(ref), 1e-12);
}

TEST_P(GramClosedFormTest, WidthRangeGramMatches) {
  int n = GetParam();
  for (int w : {1, 2, n / 2, n}) {
    if (w < 1) continue;
    Matrix g = WidthRangeGram(n, w);
    Matrix ref = Gram(WidthRangeBlock(n, w));
    EXPECT_LT(g.MaxAbsDiff(ref), 1e-12) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GramClosedFormTest,
                         ::testing::Values(2, 3, 8, 17, 32));

TEST(BuildingBlocks, PermutedRangeGram) {
  Rng rng(5);
  int n = 9;
  Matrix perm_block = PermutedRangeBlock(n, &rng);
  // Same row count; every row still sums an interval's worth of cells.
  EXPECT_EQ(perm_block.rows(), n * (n + 1) / 2);
  // Gram permutation helper agrees with explicit computation.
  Rng rng2(7);
  std::vector<int> perm = rng2.Permutation(n);
  Matrix g = AllRangeGram(n);
  Matrix gp = PermuteGram(g, perm);
  // Build permuted workload explicitly: W P with P[i][perm[i]]... column j of
  // WP is column perm^{-1}... verify via W' = AllRange * P.
  Matrix p(n, n);
  for (int i = 0; i < n; ++i) p(i, perm[static_cast<size_t>(i)]) = 1.0;
  // Rows of AllRangeBlock * P: entry (r, perm[j]) = range(r, j).
  Matrix wp = MatMul(AllRangeBlock(n), p);
  EXPECT_LT(gp.MaxAbsDiff(Gram(wp)), 1e-12);
}

TEST(BuildingBlocks, HaarStructure) {
  Matrix h = HaarBlock(8);
  EXPECT_EQ(h.rows(), 8);
  // Sensitivity of the Haar strategy is log2(n) + 1.
  EXPECT_DOUBLE_EQ(h.MaxAbsColSum(), 4.0);
  // Rows below the total are mutually orthogonal.
  Matrix g = MatMulNT(h, h);
  for (int64_t i = 1; i < 8; ++i)
    for (int64_t j = i + 1; j < 8; ++j) EXPECT_DOUBLE_EQ(g(i, j), 0.0);
  // Haar basis is complete: H is invertible (Gram nonsingular).
  EXPECT_GT(Gram(h).Trace(), 0.0);
}

TEST(BuildingBlocks, HierarchicalStructure) {
  Matrix h = HierarchicalBlock(9, 3);
  // Levels: 9 leaves + 3 + 1 root = 13 rows.
  EXPECT_EQ(h.rows(), 13);
  EXPECT_EQ(h.cols(), 9);
  // Every column is covered once per level: column sums = #levels.
  Vector cs = h.ColSums();
  for (double v : cs) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(BuildingBlocks, HierarchicalNonDivisible) {
  Matrix h = HierarchicalBlock(10, 4);
  EXPECT_EQ(h.cols(), 10);
  // Root row sums everything.
  double root_sum = 0.0;
  for (int64_t j = 0; j < 10; ++j) root_sum += h(h.rows() - 1, j);
  EXPECT_DOUBLE_EQ(root_sum, 10.0);
}

TEST(BuildingBlocks, DyadicPartition) {
  Matrix d = DyadicPartitionBlock(8, 2);
  EXPECT_EQ(d.rows(), 4);
  for (int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (int64_t j = 0; j < 8; ++j) s += d(r, j);
    EXPECT_DOUBLE_EQ(s, 2.0);
  }
}

}  // namespace
}  // namespace hdmm
