#include "workload/marginals.h"

#include <gtest/gtest.h>

#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Marginals, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(PopCount(0xFF), 8);
}

TEST(Marginals, SingleMarginalShape) {
  Domain d({2, 3, 4});
  // Marginal over attributes {0, 2}: mask 0b101.
  ProductWorkload p = MarginalProduct(d, 0b101);
  EXPECT_EQ(p.NumQueries(), 2 * 4);
  EXPECT_EQ(p.DomainSize(), 24);
  // Factor 1 is Total (1 row), factors 0 and 2 are Identity.
  EXPECT_EQ(p.factors[1].rows(), 1);
  EXPECT_EQ(p.factors[0].rows(), 2);
  EXPECT_EQ(p.factors[2].rows(), 4);
}

TEST(Marginals, MarginalRowsPartitionDomain) {
  Domain d({2, 3});
  ProductWorkload p = MarginalProduct(d, 0b01);  // Group by attribute 0.
  Matrix full = p.Explicit();
  EXPECT_EQ(full.rows(), 2);
  // Every domain cell is counted exactly once across the marginal's queries.
  Vector cs = full.ColSums();
  for (double v : cs) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Marginals, KWayCounts) {
  Domain d({2, 2, 2, 2});
  EXPECT_EQ(KWayMarginals(d, 2).NumProducts(), 6);   // C(4,2).
  EXPECT_EQ(KWayMarginals(d, 0).NumProducts(), 1);   // Total query.
  EXPECT_EQ(UpToKWayMarginals(d, 2).NumProducts(), 1 + 4 + 6);
  EXPECT_EQ(AllMarginals(d).NumProducts(), 16);
}

TEST(Marginals, AllMarginalsQueryCount) {
  Domain d({2, 3});
  UnionWorkload w = AllMarginals(d);
  // Total(1) + {0}(2) + {1}(3) + {0,1}(6) = 12 queries.
  EXPECT_EQ(w.TotalQueries(), 12);
}

TEST(Marginals, RangeMarginalsSubstituteBlocks) {
  Domain d({4, 3});
  std::vector<Matrix> blocks(2);
  blocks[0] = PrefixBlock(4);  // Attribute 0 is "numeric".
  UnionWorkload w = KWayRangeMarginals(d, 1, blocks);
  // Two products: {0} uses Prefix (4 queries), {1} uses Identity (3 queries).
  EXPECT_EQ(w.NumProducts(), 2);
  EXPECT_EQ(w.TotalQueries(), 7);
}

TEST(Marginals, AllRangeMarginalsCovrsAllSubsets) {
  Domain d({4, 3});
  std::vector<Matrix> blocks(2);
  UnionWorkload w = AllRangeMarginals(d, blocks);
  EXPECT_EQ(w.NumProducts(), 4);
}

}  // namespace
}  // namespace hdmm
