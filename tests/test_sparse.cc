#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/lsmr.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Sparse, FromTripletsBasics) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {0, 1, 3.0}});  // Duplicate summed.
  EXPECT_EQ(m.NumNonZeros(), 2);
  Matrix d = m.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Sparse, ZeroSumDuplicatesDropped) {
  SparseMatrix m =
      SparseMatrix::FromTriplets(1, 1, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.NumNonZeros(), 0);
}

TEST(Sparse, FromDenseRoundTrip) {
  Rng rng(1);
  Matrix dense = Matrix::RandomUniform(6, 4, &rng, -1.0, 1.0);
  dense(2, 2) = 0.0;
  SparseMatrix m = SparseMatrix::FromDense(dense);
  EXPECT_LT(m.ToDense().MaxAbsDiff(dense), 1e-15);
}

TEST(Sparse, ApplyMatchesDense) {
  Rng rng(2);
  Matrix dense = HierarchicalBlock(16, 2);
  SparseMatrix m = SparseMatrix::FromDense(dense);
  Vector x(16);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  Vector ys = m.Apply(x);
  Vector yd = MatVec(dense, x);
  for (size_t i = 0; i < yd.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);

  Vector z(static_cast<size_t>(dense.rows()));
  for (auto& v : z) v = rng.Uniform(-1.0, 1.0);
  Vector ts = m.ApplyTranspose(z);
  Vector td = MatTVec(dense, z);
  for (size_t i = 0; i < td.size(); ++i) EXPECT_NEAR(ts[i], td[i], 1e-12);
}

TEST(Sparse, SensitivityMatchesDense) {
  Matrix dense = HaarBlock(32);
  SparseMatrix m = SparseMatrix::FromDense(dense);
  EXPECT_NEAR(m.MaxAbsColSum(), dense.MaxAbsColSum(), 1e-12);
}

TEST(Sparse, HierarchyIsActuallySparse) {
  SparseMatrix m = SparseMatrix::FromDense(HierarchicalBlock(256, 2));
  // O(n log n) non-zeros out of ~2n * n cells.
  EXPECT_LT(m.Density(), 0.05);
}

TEST(Sparse, OperatorWorksWithLsmr) {
  Matrix dense = HierarchicalBlock(32, 2);
  SparseOperator op(SparseMatrix::FromDense(dense));
  Rng rng(3);
  Vector x(32);
  for (auto& v : x) v = rng.Uniform(0.0, 5.0);
  Vector y = op.Apply(x);
  LsmrResult res = LsmrSolve(op, y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(res.x[i], x[i], 1e-6);
}

}  // namespace
}  // namespace hdmm
