#include "data/csv.h"

#include <gtest/gtest.h>

namespace hdmm {
namespace {

Domain MiniDomain() { return Domain({"sex", "age"}, {2, 5}); }

TEST(Csv, ParsesRecordsInHeaderOrder) {
  Dataset d(MiniDomain());
  std::string error;
  ASSERT_TRUE(ParseCsvDataset("sex,age\n0,3\n1,4\n0,3\n", MiniDomain(), &d,
                              &error))
      << error;
  EXPECT_EQ(d.NumRecords(), 3);
  Vector x = d.ToDataVector();
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(MiniDomain().Flatten({0, 3}))], 2.0);
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(MiniDomain().Flatten({1, 4}))], 1.0);
}

TEST(Csv, HeaderOrderMayDiffer) {
  Dataset d(MiniDomain());
  std::string error;
  ASSERT_TRUE(
      ParseCsvDataset("age,sex\n3,0\n4,1\n", MiniDomain(), &d, &error))
      << error;
  Vector x = d.ToDataVector();
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(MiniDomain().Flatten({0, 3}))], 1.0);
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(MiniDomain().Flatten({1, 4}))], 1.0);
}

TEST(Csv, SkipsBlankLinesAndTrimsWhitespace) {
  Dataset d(MiniDomain());
  std::string error;
  ASSERT_TRUE(ParseCsvDataset("sex, age\n 0 , 3 \n\n1,0\n\n", MiniDomain(),
                              &d, &error))
      << error;
  EXPECT_EQ(d.NumRecords(), 2);
}

TEST(Csv, EmptyBodyIsValid) {
  Dataset d(MiniDomain());
  std::string error;
  ASSERT_TRUE(ParseCsvDataset("sex,age\n", MiniDomain(), &d, &error));
  EXPECT_EQ(d.NumRecords(), 0);
  EXPECT_DOUBLE_EQ(Sum(d.ToDataVector()), 0.0);
}

struct BadCsv {
  const char* text;
  const char* message_fragment;
};

class CsvErrorTest : public ::testing::TestWithParam<BadCsv> {};

TEST_P(CsvErrorTest, RejectsWithMessage) {
  Dataset d(MiniDomain());
  std::string error;
  EXPECT_FALSE(ParseCsvDataset(GetParam().text, MiniDomain(), &d, &error));
  EXPECT_NE(error.find(GetParam().message_fragment), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, CsvErrorTest,
    ::testing::Values(
        BadCsv{"", "missing header"},
        BadCsv{"sex,bogus\n0,0\n", "not a domain attribute"},
        BadCsv{"sex,sex\n0,0\n", "duplicate header"},
        BadCsv{"sex\n0\n", "missing domain attribute 'age'"},
        BadCsv{"sex,age\n0\n", "expected 2 fields"},
        BadCsv{"sex,age\n0,1,2\n", "expected 2 fields"},
        BadCsv{"sex,age\n0,x\n", "non-integer"},
        BadCsv{"sex,age\n0,\n", "non-integer"},
        BadCsv{"sex,age\n2,0\n", "outside dom(sex)"},
        BadCsv{"sex,age\n0,-1\n", "outside dom(age)"},
        BadCsv{"sex,age\n0,5\n", "outside dom(age)"}));

TEST(Csv, ErrorsAreLineNumbered) {
  Dataset d(MiniDomain());
  std::string error;
  ASSERT_FALSE(
      ParseCsvDataset("sex,age\n0,1\n0,9\n", MiniDomain(), &d, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(Csv, WriteParseRoundTrip) {
  Dataset d(MiniDomain());
  d.AddRecord({0, 3});
  d.AddRecord({1, 2});
  d.AddRecord({1, 2});
  const std::string csv = WriteCsvDataset(d);
  Dataset back(MiniDomain());
  std::string error;
  ASSERT_TRUE(ParseCsvDataset(csv, MiniDomain(), &back, &error)) << error;
  EXPECT_EQ(back.NumRecords(), 3);
  Vector x1 = d.ToDataVector();
  Vector x2 = back.ToDataVector();
  for (size_t i = 0; i < x1.size(); ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(Csv, WriteUsesGeneratedNamesForUnnamedDomains) {
  Domain unnamed({2, 3});
  Dataset d(unnamed);
  d.AddRecord({1, 2});
  const std::string csv = WriteCsvDataset(d);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "a1,a2");
}

TEST(Csv, LoadMissingFile) {
  Dataset d(MiniDomain());
  std::string error;
  EXPECT_FALSE(LoadCsvDataset("/nonexistent.csv", MiniDomain(), &d, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace hdmm
