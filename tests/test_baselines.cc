#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/datacube.h"
#include "baselines/greedy_h.h"
#include "baselines/hb.h"
#include "baselines/lrm.h"
#include "baselines/matrix_mechanism.h"
#include "baselines/privelet.h"
#include "baselines/quadtree.h"
#include "core/error.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(IdentityBaseline, ErrorIsGramTrace) {
  Domain d({8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8)});
  auto id = MakeIdentityBaseline(d);
  EXPECT_NEAR(id->SquaredError(w), PrefixGram(8).Trace(), 1e-9);
}

TEST(LaplaceMechanism, ErrorFormula) {
  Domain d({4});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(4)});
  // Prefix sensitivity: cell 0 appears in all 4 prefixes -> ||W||_1 = 4.
  // m = 4 queries -> Err = 16 * 4 = 64.
  EXPECT_NEAR(LaplaceMechanismSquaredError(w), 64.0, 1e-12);
}

TEST(LaplaceMechanism, RunIsUnbiased) {
  Domain d({4});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(4)});
  Vector x = {5.0, 10.0, 15.0, 20.0};
  Rng rng(1);
  Vector truth = {5.0, 15.0, 30.0, 50.0};
  Vector mean(4, 0.0);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Vector y = RunLaplaceMechanism(w, x, 1.0, &rng);
    Axpy(1.0 / trials, y, &mean);
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(mean[i], truth[i], 1.0);
}

TEST(Privelet, SensitivityIsLogarithmic) {
  Domain d({64});
  auto wav = MakePriveletStrategy(d);
  EXPECT_DOUBLE_EQ(wav->Sensitivity(), 7.0);  // log2(64) + 1.
}

TEST(Privelet, BeatsLmOnPrefix) {
  Domain d({64});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(64)});
  auto wav = MakePriveletStrategy(d);
  EXPECT_LT(wav->SquaredError(w), LaplaceMechanismSquaredError(w));
}

TEST(Privelet, Kron2D) {
  Domain d({8, 8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8), PrefixBlock(8)});
  auto wav = MakePriveletStrategy(d);
  EXPECT_DOUBLE_EQ(wav->Sensitivity(), 16.0);  // (log2(8)+1)^2.
  EXPECT_GT(wav->SquaredError(w), 0.0);
}

TEST(Hb, BranchingSelection) {
  // For small domains the exact criterion should return a sane value.
  int b = SelectHbBranching(256);
  EXPECT_GE(b, 2);
  EXPECT_LE(b, 16);
}

TEST(Hb, CompetitiveOnAllRange) {
  // Table 4a: at n = 128 HB and Identity tie (both 1.38); HB pulls ahead on
  // larger domains. Assert rough parity here.
  Domain d({128});
  UnionWorkload w = MakeProductWorkload(d, {AllRangeBlock(128)});
  auto hb = MakeHbStrategy(d);
  auto id = MakeIdentityBaseline(d);
  EXPECT_LT(hb->SquaredError(w), 1.15 * id->SquaredError(w));
}

TEST(Hb, BeatsIdentityOnLargerDomain) {
  const int64_t n = 512;
  Domain d({n});
  UnionWorkload w(d);
  ProductWorkload p;
  p.factors = {Matrix()};
  // Avoid materializing AllRange(512): use the closed-form Gram through an
  // explicit strategy evaluation instead.
  Matrix g = AllRangeGram(n);
  auto hb = MakeHbStrategy(d);
  // Evaluate both errors directly from the Gram.
  auto* kron = dynamic_cast<KronStrategy*>(hb.get());
  ASSERT_NE(kron, nullptr);
  const Matrix& h = kron->factors()[0];
  double sens = h.MaxAbsColSum();
  double hb_err = sens * sens * TracePinvGram(Gram(h), g);
  double id_err = g.Trace();
  EXPECT_LT(hb_err, id_err);
}

TEST(GreedyH, ImprovesOnUniformHierarchy) {
  Matrix gram = PrefixGram(32);
  GreedyHResult res = GreedyH(gram);
  // Uniform weights = all ones is in the search space; result can only be
  // better or equal.
  GreedyHOptions no_search;
  no_search.sweeps = 0;
  GreedyHResult uniform = GreedyH(gram, no_search);
  EXPECT_LE(res.squared_error, uniform.squared_error + 1e-9);
}

TEST(GreedyH, StrategySupportsWorkload) {
  Matrix gram = AllRangeGram(16);
  auto strat = MakeGreedyHStrategy(gram);
  Domain d({16});
  UnionWorkload w = MakeProductWorkload(d, {AllRangeBlock(16)});
  double err = strat->SquaredError(w);
  EXPECT_TRUE(std::isfinite(err));
  EXPECT_GT(err, 0.0);
}

TEST(Quadtree, MatchesExplicitOnSmallGrid) {
  auto qt = MakeQuadtreeStrategy(8, 8);
  Domain d({8, 8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8), PrefixBlock(8)});
  // Dense path (N = 64 <= threshold) equals an explicitly stacked strategy.
  std::vector<Matrix> blocks;
  for (int k = 0; k <= 3; ++k) {
    blocks.push_back(KronExplicit(
        {DyadicPartitionBlock(8, k), DyadicPartitionBlock(8, k)}));
  }
  ExplicitStrategy explicit_strat(VStack(blocks));
  EXPECT_NEAR(qt->SquaredError(w), explicit_strat.SquaredError(w),
              1e-6 * explicit_strat.SquaredError(w));
  EXPECT_NEAR(qt->Sensitivity(), explicit_strat.Sensitivity(), 1e-12);
}

TEST(Quadtree, ReconstructRecoversData) {
  auto qt = MakeQuadtreeStrategy(4, 4);
  Rng rng(3);
  Vector x(16);
  for (auto& v : x) v = rng.Uniform(0.0, 5.0);
  Vector xhat = qt->Reconstruct(qt->Apply(x));
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(xhat[i], x[i], 1e-6);
}

TEST(DataCube, SupportsWorkload) {
  Domain d({4, 4, 4});
  std::vector<uint32_t> workload = {0b011, 0b101, 0b110};  // 2-way marginals.
  DataCubeResult res = DataCubeSelect(d, workload);
  EXPECT_TRUE(std::isfinite(res.squared_error));
  // Every workload marginal has a measured superset.
  for (uint32_t s : workload) {
    bool covered = false;
    for (uint32_t t : res.measured) covered = covered || ((s & t) == s);
    EXPECT_TRUE(covered);
  }
}

TEST(DataCube, MeasuringWorkloadDirectlyConsidered) {
  // For 1-way marginals over a big domain, measuring them directly is far
  // better than aggregating the full table; greedy must find that.
  Domain d({10, 10, 10});
  std::vector<uint32_t> workload = {0b001, 0b010, 0b100};
  DataCubeResult res = DataCubeSelect(d, workload);
  // Full-table-only error: 3 marginals x 10 cells x 100 agg x k^2=1 = 3000.
  // Direct: k=3 -> 9 * (10+10+10) = 270.
  EXPECT_LE(res.squared_error, 3000.0);
}

TEST(DataCube, RunAnswersAreUnbiased) {
  Domain d({3, 3});
  std::vector<uint32_t> workload = {0b01, 0b10};
  DataCubeResult sel = DataCubeSelect(d, workload);
  Rng rng(4);
  Vector x(9);
  for (auto& v : x) v = rng.Uniform(0.0, 20.0);
  Vector mean(6, 0.0);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Vector est = RunDataCube(d, workload, sel, x, 2.0, &rng);
    ASSERT_EQ(est.size(), 6u);
    Axpy(1.0 / trials, est, &mean);
  }
  // Truth: marginal over attr 0 then attr 1.
  Domain dd({3, 3});
  UnionWorkload w(dd);
  w.AddProduct(MarginalProduct(dd, 0b01));
  w.AddProduct(MarginalProduct(dd, 0b10));
  Vector truth = w.ToOperator()->Apply(x);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(mean[i], truth[i], 1.0);
}

TEST(Lrm, SpectralErrorBeatsLmOnPrefix) {
  Domain d({32});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(32)});
  LrmResult res = LowRankMechanism(PrefixBlock(32));
  EXPECT_LT(res.squared_error, LaplaceMechanismSquaredError(w));
}

TEST(Lrm, FactorizationReconstructsWorkload) {
  Matrix w = PrefixBlock(16);
  LrmResult res = LowRankMechanism(w);
  Matrix rec = MatMul(res.b, res.l);
  EXPECT_LT(rec.MaxAbsDiff(w), 1e-6);
}

TEST(Lrm, GramOnlyPathAgreesOnError) {
  Matrix w = PrefixBlock(16);
  LrmOptions opts;
  opts.als_iterations = 0;
  LrmResult a = LowRankMechanism(w, opts);
  LrmResult b = LowRankMechanismFromGram(Gram(w), opts);
  EXPECT_NEAR(a.squared_error, b.squared_error, 1e-6 * a.squared_error);
}

TEST(Lrm, SurvivesRankDeficientFactorIterates) {
  // Rank-2 workload (every row a combination of two base rows, with exact
  // duplicates) but a requested factor rank of 5 with the spectral floor
  // disabled: the seed L carries near-zero rows for the junk eigenvalues,
  // so the ALS least-squares iterates are numerically rank-deficient. The
  // rank-revealing solves must truncate those directions — finite factors,
  // finite error, and B L still reconstructing W — where a plain QR solve
  // dies and normal equations amplify roundoff.
  Matrix base = Matrix::FromRows({{1.0, 2.0, 3.0, 4.0, 5.0, 6.0},
                                  {6.0, 5.0, 4.0, 3.0, 2.0, 1.0}});
  Matrix w(8, 6);
  for (int64_t i = 0; i < 8; ++i) {
    const double c0 = static_cast<double>(i % 3) - 1.0;
    const double c1 = static_cast<double>(i % 2) + 0.5;
    for (int64_t j = 0; j < 6; ++j) {
      w(i, j) = c0 * base(0, j) + c1 * base(1, j);
    }
  }
  LrmOptions opts;
  opts.rank = 5;
  opts.spectral_tol = 1e-30;
  LrmResult res = LowRankMechanism(w, opts);
  EXPECT_TRUE(std::isfinite(res.squared_error));
  for (int64_t i = 0; i < res.b.rows(); ++i) {
    for (int64_t j = 0; j < res.b.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(res.b(i, j)));
    }
  }
  Matrix rec = MatMul(res.b, res.l);
  EXPECT_LT(rec.MaxAbsDiff(w), 1e-6);
}

TEST(MatrixMechanism, ImprovesOverIdentityStart) {
  Matrix gram = PrefixGram(24);
  Rng rng(5);
  MatrixMechanismOptions opts;
  MatrixMechanismResult res = MatrixMechanism(gram, opts, &rng);
  // Identity error = tr(G); MM should strictly improve.
  EXPECT_LT(res.squared_error, gram.Trace());
}

TEST(MatrixMechanism, RefusesHugeDomains) {
  MatrixMechanismOptions opts;
  opts.max_domain = 64;
  Rng rng(6);
  EXPECT_DEATH(MatrixMechanism(PrefixGram(128), opts, &rng), "feasibility");
}

}  // namespace
}  // namespace hdmm
