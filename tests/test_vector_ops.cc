#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hdmm {
namespace {

TEST(VectorOps, DotAndNorms) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2Squared(a), 14.0);
  EXPECT_DOUBLE_EQ(Norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
}

TEST(VectorOps, AxpyScale) {
  Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VectorOps, AddSub) {
  Vector a = {1.0, 2.0};
  Vector b = {3.0, 5.0};
  Vector s = Add(a, b);
  Vector d = Sub(b, a);
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 7.0);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

TEST(VectorOps, Constructors) {
  Vector z = ZerosVector(4);
  EXPECT_EQ(z.size(), 4u);
  EXPECT_DOUBLE_EQ(Sum(z), 0.0);
  Vector c = ConstantVector(3, 2.5);
  EXPECT_DOUBLE_EQ(Sum(c), 7.5);
}

}  // namespace
}  // namespace hdmm
