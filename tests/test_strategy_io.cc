#include "core/strategy_io.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hdmm.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

// Round-trip invariant: the reloaded strategy must agree with the original
// on every observable — name, shape, sensitivity, measurement operator, and
// expected error on a reference workload.
void ExpectEquivalent(const Strategy& a, const Strategy& b,
                      const UnionWorkload& w, Rng* rng) {
  EXPECT_EQ(a.Name(), b.Name());
  EXPECT_EQ(a.DomainSize(), b.DomainSize());
  EXPECT_EQ(a.NumQueries(), b.NumQueries());
  EXPECT_NEAR(a.Sensitivity(), b.Sensitivity(), 1e-12);
  EXPECT_NEAR(a.SquaredError(w), b.SquaredError(w),
              1e-9 * std::max(1.0, a.SquaredError(w)));
  Vector x(static_cast<size_t>(a.DomainSize()));
  for (double& v : x) v = rng->Uniform(0.0, 5.0);
  const Vector ya = a.Apply(x);
  const Vector yb = b.Apply(x);
  ASSERT_EQ(ya.size(), yb.size());
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(StrategyIo, ExplicitRoundTrip) {
  Rng rng(1);
  ExplicitStrategy original(
      Matrix::RandomUniform(5, 4, &rng, 0.0, 1.0), "my-explicit");
  UnionWorkload w = MakeProductWorkload(Domain({4}), {PrefixBlock(4)});

  std::string error;
  auto restored = ParseStrategy(SerializeStrategy(original), &error);
  ASSERT_NE(restored, nullptr) << error;
  ExpectEquivalent(original, *restored, w, &rng);
}

TEST(StrategyIo, KronRoundTrip) {
  Rng rng(2);
  KronStrategy original(
      {Matrix::RandomUniform(3, 2, &rng, 0.1, 1.0),
       Matrix::RandomUniform(6, 5, &rng, 0.1, 1.0)},
      "opt-kron");
  UnionWorkload w = MakeProductWorkload(Domain({2, 5}),
                                        {IdentityBlock(2), PrefixBlock(5)});

  std::string error;
  auto restored = ParseStrategy(SerializeStrategy(original), &error);
  ASSERT_NE(restored, nullptr) << error;
  ExpectEquivalent(original, *restored, w, &rng);
  EXPECT_NE(dynamic_cast<KronStrategy*>(restored.get()), nullptr);
}

TEST(StrategyIo, UnionKronRoundTrip) {
  Domain d({4, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(4), TotalBlock(4)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(4), AllRangeBlock(4)};
  w.AddProduct(p2);

  Rng rng(3);
  UnionKronStrategy original(
      {{MatScale(PrefixBlock(4), 0.5), MatScale(TotalBlock(4), 1.0)},
       {MatScale(TotalBlock(4), 1.0), MatScale(PrefixBlock(4), 0.5)}},
      {{0}, {1}}, "opt-union");

  std::string error;
  auto restored = ParseStrategy(SerializeStrategy(original), &error);
  ASSERT_NE(restored, nullptr) << error;
  ExpectEquivalent(original, *restored, w, &rng);
  auto* u = dynamic_cast<UnionKronStrategy*>(restored.get());
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->NumParts(), 2);
  EXPECT_EQ(u->group_products()[0], std::vector<int>{0});
  EXPECT_EQ(u->group_products()[1], std::vector<int>{1});
}

TEST(StrategyIo, MarginalsRoundTrip) {
  Domain d({3, 4, 2});
  Rng rng(4);
  Vector theta(8);
  for (double& v : theta) v = rng.Uniform(0.1, 2.0);
  MarginalsStrategy original(d, theta, "opt-marginals");
  UnionWorkload w = KWayMarginals(d, 2);

  std::string error;
  auto restored = ParseStrategy(SerializeStrategy(original), &error);
  ASSERT_NE(restored, nullptr) << error;
  ExpectEquivalent(original, *restored, w, &rng);
}

TEST(StrategyIo, OptimizerOutputRoundTripsThroughDisk) {
  // The Section 3.6 use case: optimize once, save, reload for a later
  // release, and measure with identical accuracy.
  UnionWorkload w = MakeProductWorkload(Domain({16, 4}),
                                        {AllRangeBlock(16), IdentityBlock(4)});
  HdmmOptions options;
  options.restarts = 1;
  options.seed = 11;
  HdmmResult result = OptimizeStrategy(w, options);

  const std::string path = ::testing::TempDir() + "/strategy.hdmm";
  std::string error;
  ASSERT_TRUE(SaveStrategyFile(path, *result.strategy, &error)) << error;
  auto restored = LoadStrategyFile(path, &error);
  ASSERT_NE(restored, nullptr) << error;

  Rng rng(5);
  ExpectEquivalent(*result.strategy, *restored, w, &rng);

  // The reloaded strategy reconstructs identically: same noisy input, same
  // inference output.
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 9.0));
  Rng noise_a(99), noise_b(99);
  const Vector ans_a =
      RunMechanism(w, *result.strategy, x, 1.0, &noise_a);
  const Vector ans_b = RunMechanism(w, *restored, x, 1.0, &noise_b);
  for (size_t i = 0; i < ans_a.size(); ++i) {
    EXPECT_NEAR(ans_a[i], ans_b[i], 1e-9 * std::max(1.0, std::abs(ans_a[i])));
  }
}

TEST(StrategyIo, ExactDoubleFidelity) {
  // %.17g round-trips doubles exactly: a strategy with non-representable
  // decimal weights must survive unchanged bit for bit.
  KronStrategy original({Matrix::FromRows({{1.0 / 3.0, 0.1}, {0.7, 2.0 / 7.0}})},
                        "precision");
  std::string error;
  auto restored = ParseStrategy(SerializeStrategy(original), &error);
  ASSERT_NE(restored, nullptr) << error;
  auto* k = dynamic_cast<KronStrategy*>(restored.get());
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->factors()[0].MaxAbsDiff(original.factors()[0]), 0.0);
}

// --- Fixed-point fuzzing -----------------------------------------------------
// serialize(parse(serialize(s))) == serialize(s) for randomized strategies of
// every kind: one parse/serialize round must already be the normal form, so
// cached strategies never drift however many times they bounce through the
// serving engine's disk tier.

Matrix FuzzMatrix(Rng* rng, int64_t max_rows, int64_t max_cols) {
  const int64_t rows = 1 + static_cast<int64_t>(rng->Uniform(0.0, 1.0) *
                                                static_cast<double>(max_rows));
  const int64_t cols = 1 + static_cast<int64_t>(rng->Uniform(0.0, 1.0) *
                                                static_cast<double>(max_cols));
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    // Mix exactly-representable and irrational-looking values, plus sparse
    // zeros, so both integer and %.17g serialization paths are exercised.
    const double pick = rng->Uniform(0.0, 1.0);
    if (pick < 0.25) {
      m.data()[i] = std::floor(rng->Uniform(-4.0, 5.0));
    } else if (pick < 0.4) {
      m.data()[i] = 0.0;
    } else {
      m.data()[i] = rng->Uniform(-1.0, 1.0) / 3.0;
    }
  }
  return m;
}

void ExpectSerializationFixedPoint(const Strategy& s) {
  const std::string first = SerializeStrategy(s);
  std::string error;
  auto reparsed = ParseStrategy(first, &error);
  ASSERT_NE(reparsed, nullptr) << error;
  EXPECT_EQ(SerializeStrategy(*reparsed), first);
}

TEST(StrategyIoFixedPoint, ExplicitFuzz) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(1000 + seed);
    ExplicitStrategy s(FuzzMatrix(&rng, 8, 8),
                       "fuzz-explicit-" + std::to_string(seed));
    ExpectSerializationFixedPoint(s);
  }
}

TEST(StrategyIoFixedPoint, KronFuzz) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(2000 + seed);
    std::vector<Matrix> factors;
    const int d = 1 + static_cast<int>(rng.Uniform(0.0, 3.0));
    for (int i = 0; i < d; ++i) factors.push_back(FuzzMatrix(&rng, 6, 5));
    KronStrategy s(std::move(factors), "fuzz-kron-" + std::to_string(seed));
    ExpectSerializationFixedPoint(s);
  }
}

TEST(StrategyIoFixedPoint, UnionKronFuzz) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(3000 + seed);
    const int nparts = 1 + static_cast<int>(rng.Uniform(0.0, 3.0));
    const int d = 1 + static_cast<int>(rng.Uniform(0.0, 2.0));
    // All parts must agree on the per-attribute domain sizes.
    std::vector<int64_t> sizes;
    for (int i = 0; i < d; ++i) {
      sizes.push_back(2 + static_cast<int64_t>(rng.Uniform(0.0, 4.0)));
    }
    std::vector<std::vector<Matrix>> parts;
    std::vector<std::vector<int>> covers;
    for (int p = 0; p < nparts; ++p) {
      std::vector<Matrix> factors;
      for (int i = 0; i < d; ++i) {
        Matrix f = FuzzMatrix(&rng, 5, 1);
        factors.push_back(Matrix(f.rows(), sizes[static_cast<size_t>(i)]));
        for (int64_t r = 0; r < f.rows(); ++r) {
          for (int64_t c = 0; c < sizes[static_cast<size_t>(i)]; ++c) {
            factors.back()(r, c) = rng.Uniform(-1.0, 1.0);
          }
        }
      }
      parts.push_back(std::move(factors));
      covers.push_back({p});
    }
    UnionKronStrategy s(std::move(parts), std::move(covers),
                        "fuzz-union-" + std::to_string(seed));
    ExpectSerializationFixedPoint(s);
  }
}

TEST(StrategyIoFixedPoint, MarginalsFuzz) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(4000 + seed);
    const int d = 1 + static_cast<int>(rng.Uniform(0.0, 3.0));
    std::vector<int64_t> sizes;
    for (int i = 0; i < d; ++i) {
      sizes.push_back(2 + static_cast<int64_t>(rng.Uniform(0.0, 3.0)));
    }
    Vector theta(size_t{1} << d);
    for (double& v : theta) {
      v = rng.Uniform(0.0, 1.0) < 0.3 ? 0.0 : rng.Uniform(0.01, 2.0);
    }
    // Keep at least one positive weight so the strategy is well formed.
    theta.back() = 1.0 / 7.0;
    MarginalsStrategy s(Domain(std::move(sizes)), theta,
                        "fuzz-marginals-" + std::to_string(seed));
    ExpectSerializationFixedPoint(s);
  }
}

struct BadStrategyText {
  const char* text;
  const char* message_fragment;
};

class StrategyIoErrorTest
    : public ::testing::TestWithParam<BadStrategyText> {};

TEST_P(StrategyIoErrorTest, RejectsWithMessage) {
  std::string error;
  EXPECT_EQ(ParseStrategy(GetParam().text, &error), nullptr);
  EXPECT_NE(error.find(GetParam().message_fragment), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, StrategyIoErrorTest,
    ::testing::Values(
        BadStrategyText{"", "header"},
        BadStrategyText{"bogus header\n", "header"},
        BadStrategyText{"hdmm-strategy v1\n", "missing 'kind'"},
        BadStrategyText{"hdmm-strategy v1\nkind alien\nname x\n",
                        "unknown strategy kind"},
        BadStrategyText{"hdmm-strategy v1\nkind kron\nname x\n",
                        "no factors"},
        BadStrategyText{"hdmm-strategy v1\nkind kron\nname x\nfactor 2x2 1,2,3\n",
                        "entry count"},
        BadStrategyText{"hdmm-strategy v1\nkind kron\nname x\nfactor 2xq 1,2\n",
                        "bad shape"},
        BadStrategyText{
            "hdmm-strategy v1\nkind explicit\nname x\nmatrix 1x2 1,zz\n",
            "bad entry"},
        BadStrategyText{
            "hdmm-strategy v1\nkind union-kron\nname x\nfactor 1x1 1\n",
            "expected 'part'"},
        BadStrategyText{"hdmm-strategy v1\nkind union-kron\nname x\npart\n",
                        "no factors"},
        BadStrategyText{
            "hdmm-strategy v1\nkind marginals\nname x\ndomain 2 2\ntheta 1 1\n",
            "2^d"}));

TEST(StrategyIo, LoadMissingFile) {
  std::string error;
  EXPECT_EQ(LoadStrategyFile("/nonexistent.hdmm", &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ------------------------------------------------- malformed-input corpus --
//
// The corpus is the fuzz generators' own output, mutated: every valid
// serialization the library can produce is truncated, byte-flipped, and
// extended with garbage. The contract under test is narrow but absolute —
// ParseStrategy either returns a strategy or returns nullptr with a
// non-empty error; corrupt input must never reach an aborting constructor
// contract.
std::vector<std::string> FuzzCorpus() {
  std::vector<std::string> corpus;
  Rng rng(9000);
  corpus.push_back(SerializeStrategy(
      ExplicitStrategy(FuzzMatrix(&rng, 6, 6), "corpus-explicit")));
  corpus.push_back(SerializeStrategy(KronStrategy(
      std::vector<Matrix>{FuzzMatrix(&rng, 5, 4), FuzzMatrix(&rng, 4, 3)},
      "corpus-kron")));
  corpus.push_back(SerializeStrategy(UnionKronStrategy(
      std::vector<std::vector<Matrix>>{{PrefixBlock(4), IdentityBlock(3)},
                                       {TotalBlock(4), PrefixBlock(3)}},
      std::vector<std::vector<int>>{{0}, {1}}, "corpus-union")));
  corpus.push_back(SerializeStrategy(MarginalsStrategy(
      Domain({2, 3, 2}), Vector{0.5, 0.0, 1.0, 0.25, 0.0, 0.75, 0.125, 1.5},
      "corpus-marginals")));
  return corpus;
}

// Parse must not abort; on rejection it must say why.
void ExpectParseIsTotal(const std::string& text, const char* what) {
  std::string error;
  auto parsed = ParseStrategy(text, &error);
  if (parsed == nullptr) {
    EXPECT_FALSE(error.empty()) << what << ": rejected without a message";
  }
}

TEST(StrategyIoCorpus, TruncationAtEveryByteNeverAborts) {
  for (const std::string& good : FuzzCorpus()) {
    std::string error;
    ASSERT_NE(ParseStrategy(good, &error), nullptr) << error;
    for (size_t cut = 0; cut < good.size(); ++cut) {
      ExpectParseIsTotal(good.substr(0, cut), "truncation");
    }
  }
}

TEST(StrategyIoCorpus, WrongMagicIsRejectedUpFront) {
  for (std::string text : FuzzCorpus()) {
    text[0] ^= 0x20;  // "hdmm" -> "Hdmm"
    std::string error;
    EXPECT_EQ(ParseStrategy(text, &error), nullptr);
    EXPECT_NE(error.find("header"), std::string::npos) << error;
  }
}

TEST(StrategyIoCorpus, ByteFlipsNeverAbort) {
  Rng rng(9100);
  for (const std::string& good : FuzzCorpus()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutant = good;
      const size_t pos = static_cast<size_t>(
          rng.Uniform(0.0, static_cast<double>(mutant.size())));
      mutant[pos] = static_cast<char>(rng.Uniform(1.0, 127.0));
      ExpectParseIsTotal(mutant, "byte flip");
    }
  }
}

TEST(StrategyIoCorpus, TrailingGarbageIsRejectedNotAbsorbed) {
  for (const std::string& good : FuzzCorpus()) {
    std::string error;
    EXPECT_EQ(ParseStrategy(good + "spurious trailing line\n", &error),
              nullptr)
        << "garbage after a complete strategy must not parse";
    EXPECT_FALSE(error.empty());
  }
}

TEST(StrategyIoCorpus, LoadStatusClassifiesTheFailure) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "strategy_io_corpus";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::unique_ptr<Strategy> out;
  EXPECT_EQ(LoadStrategyFileOr((dir / "absent.hdmm").string(), &out).code(),
            StatusCode::kNotFound);

  const fs::path corrupt = dir / "corrupt.hdmm";
  std::ofstream(corrupt) << "hdmm-strategy v1\nkind kron\nname x\n";
  const Status status = LoadStrategyFileOr(corrupt.string(), &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("no factors"), std::string::npos)
      << status.ToString();

  const fs::path good = dir / "good.hdmm";
  std::ofstream(good) << FuzzCorpus().front();
  const Status loaded = LoadStrategyFileOr(good.string(), &out);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->Name(), "corpus-explicit");
}

}  // namespace
}  // namespace hdmm
