#include "workload/algebra.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

UnionWorkload TwoProducts() {
  Domain d({3, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(3), IdentityBlock(4)};
  p1.weight = 1.5;
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {IdentityBlock(3), TotalBlock(4)};
  w.AddProduct(p2);
  return w;
}

TEST(Algebra, UnionConcatenatesProducts) {
  UnionWorkload a = TwoProducts();
  UnionWorkload b = MakeProductWorkload(Domain({3, 4}),
                                        {TotalBlock(3), PrefixBlock(4)});
  UnionWorkload u = UnionOf(a, b);
  EXPECT_EQ(u.NumProducts(), 3);
  EXPECT_EQ(u.TotalQueries(), a.TotalQueries() + b.TotalQueries());
  // The explicit stack equals the two stacks concatenated.
  Matrix ua = a.Explicit();
  Matrix ue = u.Explicit();
  for (int64_t i = 0; i < ua.rows(); ++i) {
    for (int64_t j = 0; j < ua.cols(); ++j) {
      EXPECT_EQ(ue(i, j), ua(i, j));
    }
  }
}

TEST(AlgebraDeath, UnionRejectsMismatchedDomains) {
  UnionWorkload a = MakeProductWorkload(Domain({3}), {PrefixBlock(3)});
  UnionWorkload b = MakeProductWorkload(Domain({4}), {PrefixBlock(4)});
  EXPECT_DEATH(UnionOf(a, b), "mismatch");
}

TEST(Algebra, ScaleWeightsScalesErrorQuadratically) {
  UnionWorkload w = TwoProducts();
  UnionWorkload w3 = ScaleWeights(w, 3.0);
  KronStrategy a({PrefixBlock(3), IdentityBlock(4)});
  EXPECT_NEAR(a.SquaredError(w3), 9.0 * a.SquaredError(w),
              1e-9 * a.SquaredError(w3));
}

TEST(AlgebraDeath, ScaleRejectsNonPositive) {
  UnionWorkload w = TwoProducts();
  EXPECT_DEATH(ScaleWeights(w, 0.0), "positive");
}

TEST(Algebra, AppendAttributeIsExample5) {
  // SF1 -> SF1+ in miniature: national queries get a [Total; Identity]
  // factor on a new "state" attribute, turning q queries over N cells into
  // q * (1 + states) queries over N * states cells.
  UnionWorkload national = TwoProducts();
  const int64_t states = 5;
  Matrix state_block =
      VStack({TotalBlock(states), IdentityBlock(states)});
  UnionWorkload plus = AppendAttribute(national, state_block, "state");

  EXPECT_EQ(plus.domain().NumAttributes(), 3);
  EXPECT_EQ(plus.domain().AttributeSize(2), states);
  EXPECT_EQ(plus.domain().AttributeName(2), "state");
  EXPECT_EQ(plus.DomainSize(), national.DomainSize() * states);
  EXPECT_EQ(plus.TotalQueries(), national.TotalQueries() * (1 + states));

  // Semantics: for data that is national data replicated into state 0 only,
  // the national rows of the extended workload give the original answers.
  Vector x_nat(static_cast<size_t>(national.DomainSize()));
  for (size_t i = 0; i < x_nat.size(); ++i) x_nat[i] = static_cast<double>(i);
  Vector x_plus(static_cast<size_t>(plus.DomainSize()), 0.0);
  for (size_t i = 0; i < x_nat.size(); ++i) {
    x_plus[i * static_cast<size_t>(states)] = x_nat[i];  // State = 0.
  }
  const Vector nat_answers = national.ToOperator()->Apply(x_nat);
  const Vector plus_answers = plus.ToOperator()->Apply(x_plus);
  // Product 1 of `plus` emits, per original query, 1 national row then
  // `states` per-state rows; check the first product's national rows.
  const int64_t q1 = national.products()[0].NumQueries();
  for (int64_t q = 0; q < q1; ++q) {
    EXPECT_DOUBLE_EQ(plus_answers[static_cast<size_t>(q * (1 + states))],
                     nat_answers[static_cast<size_t>(q)]);
  }
}

TEST(Algebra, MarginalizeAttributeReplacesWithTotal) {
  UnionWorkload w = TwoProducts();
  UnionWorkload m = MarginalizeAttribute(w, 1);
  EXPECT_EQ(m.NumProducts(), 2);
  for (const ProductWorkload& p : m.products()) {
    EXPECT_EQ(p.factors[1].rows(), 1);
    EXPECT_EQ(p.factors[1].MaxAbsDiff(TotalBlock(4)), 0.0);
  }
  // Marginalized answers: sums over the removed attribute. Compare against
  // explicit evaluation.
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7);
  Matrix explicit_m = m.Explicit();
  const Vector got = m.ToOperator()->Apply(x);
  for (int64_t q = 0; q < explicit_m.rows(); ++q) {
    double expected = 0.0;
    for (int64_t c = 0; c < explicit_m.cols(); ++c) {
      expected += explicit_m(q, c) * x[static_cast<size_t>(c)];
    }
    EXPECT_NEAR(got[static_cast<size_t>(q)], expected, 1e-9);
  }
}

TEST(Algebra, MergeDuplicatesPreservesGram) {
  Domain d({3, 3});
  UnionWorkload w(d);
  ProductWorkload p;
  p.factors = {PrefixBlock(3), TotalBlock(3)};
  p.weight = 1.0;
  w.AddProduct(p);
  w.AddProduct(p);  // Exact duplicate.
  ProductWorkload q;
  q.factors = {IdentityBlock(3), IdentityBlock(3)};
  q.weight = 2.0;
  w.AddProduct(q);

  UnionWorkload merged = MergeDuplicateProducts(w);
  EXPECT_EQ(merged.NumProducts(), 2);
  EXPECT_NEAR(merged.products()[0].weight, std::sqrt(2.0), 1e-12);
  // Gram preservation => identical expected error for any strategy.
  EXPECT_LT(merged.ExplicitGram().MaxAbsDiff(w.ExplicitGram()), 1e-9);
  KronStrategy a({PrefixBlock(3), PrefixBlock(3)});
  EXPECT_NEAR(a.SquaredError(merged), a.SquaredError(w),
              1e-9 * a.SquaredError(w));
}

TEST(Algebra, MergeKeepsDistinctProducts) {
  UnionWorkload w = TwoProducts();
  UnionWorkload merged = MergeDuplicateProducts(w);
  EXPECT_EQ(merged.NumProducts(), w.NumProducts());
}

TEST(Algebra, ComposedPipeline) {
  // Realistic composition: (national u extra) -> add states -> dedupe.
  UnionWorkload base = TwoProducts();
  UnionWorkload doubled = UnionOf(base, base);
  UnionWorkload with_state = AppendAttribute(
      doubled, VStack({TotalBlock(3), IdentityBlock(3)}), "state");
  UnionWorkload compact = MergeDuplicateProducts(with_state);
  EXPECT_EQ(compact.NumProducts(), 2);
  EXPECT_EQ(compact.domain().NumAttributes(), 3);
  // Gram equality with the uncompacted version.
  EXPECT_LT(compact.ExplicitGram().MaxAbsDiff(with_state.ExplicitGram()),
            1e-9);
}

}  // namespace
}  // namespace hdmm
