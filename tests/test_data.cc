#include <gtest/gtest.h>

#include <algorithm>

#include "data/census.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace hdmm {
namespace {

TEST(Dataset, DataVectorCounts) {
  Domain d({2, 3});
  Dataset ds(d);
  ds.AddRecord({0, 1});
  ds.AddRecord({0, 1});
  ds.AddRecord({1, 2});
  Vector x = ds.ToDataVector();
  EXPECT_EQ(x.size(), 6u);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[5], 1.0);
  EXPECT_DOUBLE_EQ(Sum(x), 3.0);
}

TEST(Dataset, FromDataVectorRoundTrip) {
  Domain d({4});
  Vector counts = {1.0, 0.0, 3.0, 2.0};
  Dataset ds = FromDataVector(d, counts);
  EXPECT_EQ(ds.NumRecords(), 6);
  Vector back = ds.ToDataVector();
  for (size_t i = 0; i < counts.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], counts[i]);
}

TEST(Synthetic, UniformTotalPreserved) {
  Domain d({50});
  Rng rng(1);
  Vector x = UniformDataVector(d, 1000, &rng);
  EXPECT_DOUBLE_EQ(Sum(x), 1000.0);
  for (double v : x) EXPECT_GE(v, 0.0);
}

TEST(Synthetic, ZipfIsSkewed) {
  Domain d({100});
  Rng rng(2);
  Vector x = ZipfDataVector(d, 10000, 1.2, &rng);
  // Heaviest cell should dominate the median cell.
  Vector sorted = x;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), 10 * std::max(1.0, sorted[50]));
}

TEST(Synthetic, ClusteredIsPiecewise) {
  Domain d({64});
  Rng rng(3);
  Vector x = ClusteredDataVector(d, 5000, 4, &rng);
  EXPECT_GT(Sum(x), 0.0);
}

TEST(Synthetic, DpbenchStandinsExist) {
  Rng rng(4);
  for (const char* name :
       {"Hepth", "Medcost", "Nettrace", "Patent", "Searchlogs"}) {
    Vector x = DpbenchStandinDataVector(name, 128, 1000, &rng);
    EXPECT_EQ(x.size(), 128u) << name;
    EXPECT_GT(Sum(x), 0.0) << name;
  }
}

TEST(Census, DomainSizesMatchPaper) {
  // Section 2: 2 x 2 x 64 x 17 x 115 = 500,480 (national);
  // x 51 = 25,524,480 (with state).
  EXPECT_EQ(CphDomain(false).TotalSize(), 500480);
  EXPECT_EQ(CphDomain(true).TotalSize(), 25524480);
}

TEST(Census, Sf1QueryCounts) {
  UnionWorkload sf1 = Sf1Workload();
  EXPECT_EQ(sf1.NumProducts(), 32);       // The paper's W*_SF1 factoring.
  EXPECT_EQ(sf1.TotalQueries(), 4151);    // Section 2.
}

TEST(Census, Sf1PlusQueryCounts) {
  UnionWorkload sf1p = Sf1PlusWorkload();
  EXPECT_EQ(sf1p.NumProducts(), 32);
  EXPECT_EQ(sf1p.TotalQueries(), 215852);  // 4151 * 52 (Example 5).
}

TEST(Census, ImplicitStorageTiny) {
  // Example 7: the 32-product factored form is a few hundred KB.
  UnionWorkload sf1p = Sf1PlusWorkload();
  int64_t implicit_bytes = sf1p.ImplicitStorageDoubles() * 8;
  int64_t explicit_bytes = sf1p.ExplicitStorageDoubles() * 8;
  EXPECT_LT(implicit_bytes, int64_t{4} << 20);       // < 4 MB.
  EXPECT_GT(explicit_bytes, int64_t{1} << 40);       // > 1 TB.
}

TEST(Census, OtherDomains) {
  EXPECT_EQ(AdultDomain().TotalSize(), 75 * 16 * 5 * 2 * 20);
  EXPECT_EQ(CpsDomain().TotalSize(), 100 * 50 * 7 * 4 * 2);
}

}  // namespace
}  // namespace hdmm
