// Resource governor and deadline tests: admission control, the
// degradation ladder (degrade-to-mmap -> hibernate -> refuse), ticket
// lifecycle under concurrency, and the cancellation contract (a refused or
// cancelled request has no side effects — no noise drawn, no budget spent).
//
// Test groups are named Governor*/GovernorStress* so the sanitizer CI jobs
// (ASan and TSan) pick them up by filter; the timing-sensitive Deadline*
// tests stay out of the sanitizer filters on purpose (instrumented builds
// dilate wall time).
#include "engine/governor.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/accountant.h"
#include "engine/engine.h"
#include "engine/tile_store.h"
#include "workload/parser.h"

namespace hdmm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

UnionWorkload SmallWorkload() {
  return ParseWorkloadOrDie(
      "domain sex=2 age=8\n"
      "product sex=identity age=prefix\n"
      "product age=identity\n");
}

EngineOptions FastEngineOptions() {
  EngineOptions options;
  options.optimizer.restarts = 1;
  options.optimizer.seed = 5;
  options.total_epsilon = 1.0;
  return options;
}

// A GovernedSession that only counts ladder calls — lets the ladder be
// exercised without building real tile stores.
class FakeSession : public GovernedSession {
 public:
  bool Hibernatable() const override { return hibernatable_; }
  void HibernateStores() override { ++hibernate_calls_; }
  void WakeStores() override { ++wake_calls_; }

  bool hibernatable_ = true;
  std::atomic<int> hibernate_calls_{0};
  std::atomic<int> wake_calls_{0};
};

SessionStorageOptions MmapStorage(int64_t tile_bytes, int64_t hot_budget) {
  SessionStorageOptions storage;
  storage.backend = SessionStorage::kMmap;
  storage.tile_bytes = tile_bytes;
  storage.hot_tile_budget = hot_budget;
  return storage;
}

// --- Footprint arithmetic ----------------------------------------------------

TEST(Governor, FootprintEstimateMatchesLadderArithmetic) {
  constexpr int64_t kSlack = 4096;  // Per-tile header + page rounding.
  SessionStorageOptions memory;     // Default backend.
  // Memory backend: two dense stores (x_hat + summed-area table).
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(1000, memory),
            2 * 1000 * 8);
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(0, memory), 0);
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(-5, memory), 0);

  // Mmap backend: per store, min(whole vector, max(hot budget, one tile)).
  SessionStorageOptions mmap = MmapStorage(/*tile_bytes=*/1 << 16,
                                           /*hot_budget=*/1 << 20);
  const int64_t big = 1 << 24;  // Dense far exceeds the hot budget.
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(big, mmap),
            2 * (1 << 20));
  const int64_t tiny = 16;  // Whole vector smaller than the hot budget.
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(tiny, mmap),
            2 * (tiny * 8 + kSlack));
  // A zero hot budget still maps the tile being read.
  SessionStorageOptions cold = MmapStorage(1 << 16, 0);
  EXPECT_EQ(ResourceGovernor::EstimateFootprintBytes(big, cold),
            2 * ((1 << 16) + kSlack));
}

// --- Admission and release ---------------------------------------------------

TEST(Governor, AdmitChargesAndReleaseRefunds) {
  GovernorOptions options;
  options.memory_budget_bytes = 1 << 20;
  auto governor = std::make_shared<ResourceGovernor>(options);
  SessionStorageOptions storage;  // Memory backend.

  const int64_t cells = 1024;  // 2 * 8 KiB.
  auto ticket = governor->Admit(cells, &storage);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  EXPECT_TRUE(ticket.value().valid());
  EXPECT_EQ(governor->live_sessions(), 1);
  EXPECT_EQ(governor->charged_bytes(),
            ResourceGovernor::EstimateFootprintBytes(cells, storage));

  {
    AdmissionTicket moved = std::move(ticket).value();
    EXPECT_EQ(governor->live_sessions(), 1);  // Move does not double-charge.
  }
  EXPECT_EQ(governor->live_sessions(), 0);
  EXPECT_EQ(governor->charged_bytes(), 0);
}

TEST(Governor, SessionLimitRefusalIsRetryableAndFree) {
  GovernorOptions options;
  options.max_sessions = 1;
  options.retry_after_ms = 250;
  auto governor = std::make_shared<ResourceGovernor>(options);
  SessionStorageOptions storage;

  auto first = governor->Admit(64, &storage);
  ASSERT_TRUE(first.ok());

  auto refused = governor->Admit(64, &storage);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(refused.status().code()));
  EXPECT_EQ(RetryAfterMillis(refused.status()), 250);
  EXPECT_EQ(governor->live_sessions(), 1);  // Nothing charged for the refusal.

  first.value().Unbind();  // Unbind keeps the charge; only release refunds.
  EXPECT_EQ(governor->live_sessions(), 1);
}

TEST(Governor, BudgetRefusalNamesTheShortfall) {
  GovernorOptions options;
  options.memory_budget_bytes = 1024;
  auto governor = std::make_shared<ResourceGovernor>(options);
  // Even the mmap floor of this shape exceeds 1 KiB: refusal, not degrade.
  SessionStorageOptions storage = MmapStorage(1 << 20, 1 << 20);
  auto refused = governor->Admit(1 << 24, &storage);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("memory budget exhausted"),
            std::string::npos);
  EXPECT_GE(RetryAfterMillis(refused.status()), 0);
}

TEST(Governor, DegradesMemorySessionsToMmapUnderPressure) {
  GovernorOptions options;
  options.memory_budget_bytes = 1 << 20;  // 1 MiB.
  auto governor = std::make_shared<ResourceGovernor>(options);

  // Dense would need 2 * 8 MiB; the mmap rung shrinks it to the hot-tile
  // budgets, which fit.
  SessionStorageOptions storage;
  storage.backend = SessionStorage::kMemory;
  storage.tile_bytes = 1 << 16;
  storage.hot_tile_budget = 1 << 18;  // 256 KiB per store.
  auto ticket = governor->Admit(1 << 20, &storage);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  EXPECT_EQ(storage.backend, SessionStorage::kMmap);
  EXPECT_LE(governor->charged_bytes(), options.memory_budget_bytes);
}

TEST(Governor, ForceRefuseFailpointDrillsOverload) {
  auto governor = std::make_shared<ResourceGovernor>(GovernorOptions{});
  SessionStorageOptions storage;
  ASSERT_TRUE(Failpoints::Activate("governor.admit.force_refuse", "always"));
  auto refused = governor->Admit(8, &storage);
  Failpoints::Deactivate("governor.admit.force_refuse");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(RetryAfterMillis(refused.status()), 0);
  // The drill over, admission works again.
  EXPECT_TRUE(governor->Admit(8, &storage).ok());
}

// --- The hibernation rung ----------------------------------------------------

TEST(Governor, HibernatesIdleSessionsToMakeRoomAndWakesOnTouch) {
  GovernorOptions options;
  options.memory_budget_bytes = 300 << 10;  // 300 KiB.
  auto governor = std::make_shared<ResourceGovernor>(options);

  // Awake charge 2 * 100 KiB; hibernated floor 2 * (8 KiB + slack).
  SessionStorageOptions shape = MmapStorage(8 << 10, 100 << 10);
  const int64_t cells = 1 << 22;  // Dense dwarfs the hot budget.

  SessionStorageOptions a_storage = shape;
  auto a = governor->Admit(cells, &a_storage);
  ASSERT_TRUE(a.ok());
  FakeSession fake_a;
  a.value().Bind(&fake_a);
  const int64_t awake_charge = governor->charged_bytes();

  // B does not fit next to an awake A — the ladder hibernates A.
  SessionStorageOptions b_storage = shape;
  auto b = governor->Admit(cells, &b_storage);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(fake_a.hibernate_calls_.load(), 1);
  EXPECT_LE(governor->charged_bytes(), options.memory_budget_bytes);
  EXPECT_EQ(governor->live_sessions(), 2);

  // Releasing B frees budget; touching A wakes it back to full charge.
  { AdmissionTicket drop = std::move(b).value(); }
  a.value().Touch();
  EXPECT_EQ(fake_a.wake_calls_.load(), 1);
  EXPECT_EQ(governor->charged_bytes(), awake_charge);

  a.value().Unbind();
}

TEST(Governor, HibernateIoErrorFailpointSkipsVictim) {
  GovernorOptions options;
  options.memory_budget_bytes = 300 << 10;
  auto governor = std::make_shared<ResourceGovernor>(options);
  SessionStorageOptions shape = MmapStorage(8 << 10, 100 << 10);
  const int64_t cells = 1 << 22;

  SessionStorageOptions a_storage = shape;
  auto a = governor->Admit(cells, &a_storage);
  ASSERT_TRUE(a.ok());
  FakeSession fake_a;
  a.value().Bind(&fake_a);

  // With hibernation failing, the only remaining rung is refusal — and the
  // victim must not be half-hibernated.
  ASSERT_TRUE(Failpoints::Activate("governor.hibernate.io_error", "always"));
  SessionStorageOptions b_storage = shape;
  auto b = governor->Admit(cells, &b_storage);
  Failpoints::Deactivate("governor.hibernate.io_error");
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fake_a.hibernate_calls_.load(), 0);

  a.value().Unbind();
}

TEST(Governor, UnboundSessionsAreNotHibernationVictims) {
  GovernorOptions options;
  options.memory_budget_bytes = 300 << 10;
  auto governor = std::make_shared<ResourceGovernor>(options);
  SessionStorageOptions shape = MmapStorage(8 << 10, 100 << 10);

  SessionStorageOptions a_storage = shape;
  auto a = governor->Admit(1 << 22, &a_storage);
  ASSERT_TRUE(a.ok());  // Never bound: mirrors a session mid-teardown.

  SessionStorageOptions b_storage = shape;
  auto b = governor->Admit(1 << 22, &b_storage);
  EXPECT_FALSE(b.ok());  // No victim available; refuse rather than touch it.
}

// --- Engine integration ------------------------------------------------------

TEST(Governor, EngineRefusalSpendsNoPrivacyBudget) {
  UnionWorkload w = SmallWorkload();
  EngineOptions options = FastEngineOptions();
  options.governor.max_sessions = 1;
  Engine engine(options);
  ASSERT_NE(engine.governor(), nullptr);
  Vector x(static_cast<size_t>(w.DomainSize()), 2.0);
  Rng rng(7);

  auto first = engine.MeasureOr(w, "census", x, MeasureRequest::Laplace(0.3),
                                &rng, nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.3, 1e-15);

  auto refused = engine.MeasureOr(w, "census", x,
                                  MeasureRequest::Laplace(0.3), &rng, nullptr);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(RetryAfterMillis(refused.status()), 0);
  // The refusal was free: admission precedes the accountant charge.
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.3, 1e-15);

  // Releasing the session frees the slot.
  first.value().reset();
  EXPECT_EQ(engine.governor()->live_sessions(), 0);
  auto second = engine.MeasureOr(w, "census", x, MeasureRequest::Laplace(0.3),
                                 &rng, nullptr);
  EXPECT_TRUE(second.ok()) << second.status().ToString();
}

TEST(Governor, SessionOutlivesItsEngine) {
  UnionWorkload w = SmallWorkload();
  std::unique_ptr<MeasurementSession> session;
  {
    EngineOptions options = FastEngineOptions();
    options.governor.max_sessions = 4;
    Engine engine(options);
    Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
    Rng rng(11);
    auto got = engine.MeasureOr(w, "d", x, MeasureRequest::Laplace(0.5), &rng,
                                nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    session = std::move(got).value();
  }
  // The ticket's shared ownership keeps the governor alive past the engine.
  BoxQuery q;
  q.lo = {0, 0};
  q.hi = {0, 3};
  EXPECT_TRUE(std::isfinite(session->AnswerBatch({q})[0]));
  session.reset();  // Releases against the orphaned governor; must not crash.
}

TEST(Governor, UngovernedEngineBuildsNoGovernor) {
  Engine engine(FastEngineOptions());
  EXPECT_EQ(engine.governor(), nullptr);
}

// Acceptance invariant: under a 256 MiB governor budget, concurrent session
// builds never push the governor's charge (an upper bound on session
// mapped+resident bytes) past the budget, and every refusal is retryable.
TEST(Governor, BudgetInvariantUnderConcurrentBuilds) {
  constexpr int64_t kBudget = 256ll << 20;
  GovernorOptions options;
  options.memory_budget_bytes = kBudget;
  auto governor = std::make_shared<ResourceGovernor>(options);

  const Domain domain({1 << 11, 1 << 10});  // 2^21 cells = 16 MiB dense.
  const std::string base_dir = FreshDir("governor_budget");
  std::filesystem::create_directories(base_dir);

  std::mutex mu;
  std::vector<std::unique_ptr<MeasurementSession>> live;
  std::atomic<int> refused{0};
  std::atomic<bool> over_budget{false};

  auto builder = [&](int worker) {
    for (int round = 0; round < 2; ++round) {
      SessionStorageOptions storage;  // Memory backend: 32 MiB per session.
      storage.tile_bytes = 1 << 20;
      storage.hot_tile_budget = 4 << 20;
      storage.dir = base_dir + "/w" + std::to_string(worker) + "_r" +
                    std::to_string(round);
      auto ticket = governor->Admit(domain.TotalSize(), &storage);
      if (!ticket.ok()) {
        if (ticket.status().code() != StatusCode::kResourceExhausted) {
          over_budget.store(true);  // Only retryable refusals are allowed.
        }
        ++refused;
        continue;
      }
      if (governor->charged_bytes() > kBudget) over_budget.store(true);
      auto session = std::make_unique<MeasurementSession>(
          domain,
          [](int64_t begin, int64_t end, double* out) {
            for (int64_t i = begin; i < end; ++i) out[i - begin] = 1.0;
          },
          PrivacyCharge::Laplace(0.1), nullptr, storage);
      session->AttachTicket(std::move(ticket).value());
      if (governor->charged_bytes() > kBudget) over_budget.store(true);
      std::lock_guard<std::mutex> lock(mu);
      live.push_back(std::move(session));
    }
  };
  std::vector<std::thread> workers;
  for (int i = 0; i < 10; ++i) workers.emplace_back(builder, i);
  for (auto& t : workers) t.join();

  EXPECT_FALSE(over_budget.load());
  EXPECT_LE(governor->charged_bytes(), kBudget);
  EXPECT_EQ(governor->live_sessions(), static_cast<int64_t>(live.size()));
  // 20 x 32 MiB dense does not fit 256 MiB: the ladder had to act (degrade
  // to mmap, hibernate, or refuse) — but most builds must still be served.
  EXPECT_GE(live.size(), 8u);

  // Every surviving session still answers.
  BoxQuery q;
  q.lo = {0, 0};
  q.hi = {0, 0};
  for (const auto& session : live) {
    EXPECT_DOUBLE_EQ(session->AnswerBatch({q})[0], 1.0);
  }
  live.clear();
  EXPECT_EQ(governor->charged_bytes(), 0);
  EXPECT_EQ(governor->live_sessions(), 0);
}

// --- Concurrency stress (TSan target) ----------------------------------------

TEST(GovernorStress, ConcurrentAdmitTouchHibernateRelease) {
  GovernorOptions options;
  options.max_sessions = 64;
  options.memory_budget_bytes = 64 << 10;  // Tight: forces the full ladder.
  auto governor = std::make_shared<ResourceGovernor>(options);
  SessionStorageOptions shape = MmapStorage(1 << 10, 8 << 10);

  std::atomic<int> admitted{0};
  std::atomic<int> refused{0};
  auto worker = [&]() {
    FakeSession fake;
    for (int i = 0; i < 200; ++i) {
      SessionStorageOptions storage = shape;
      auto ticket = governor->Admit(1 << 20, &storage);
      if (!ticket.ok()) {
        ASSERT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
        ++refused;
        continue;
      }
      ++admitted;
      AdmissionTicket held = std::move(ticket).value();
      held.Bind(&fake);
      for (int t = 0; t < 3; ++t) held.Touch();
      if (i % 3 == 0) held.Unbind();  // Mix unbound teardown into the soup.
      // Ticket destructor releases; fake outlives it in this scope.
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  EXPECT_EQ(governor->live_sessions(), 0);
  EXPECT_EQ(governor->charged_bytes(), 0);
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(admitted.load() + refused.load(), 8 * 200);
}

// --- Retry-after protocol ----------------------------------------------------

TEST(GovernorProtocol, RetryAfterRoundTripsThroughStatus) {
  Status refused = WithRetryAfter(Status::ResourceExhausted("full"), 350);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(RetryAfterMillis(refused), 350);
  EXPECT_EQ(RetryAfterMillis(Status::ResourceExhausted("no hint")), -1);
  EXPECT_EQ(RetryAfterMillis(Status::Ok()), -1);

  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_FALSE(IsRetryable(StatusCode::kOverBudget));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
}

// The flock wait respects lock_timeout_ms: with the lock held forever
// (injected),
// construction dies right after the configured timeout instead of a backoff
// step beyond it.
TEST(GovernorProtocol, AccountantLockWaitDiesAfterConfiguredTimeout) {
  const std::string dir = FreshDir("governor_flock");
  std::filesystem::create_directories(dir);
  BudgetAccountantOptions options;
  options.total_epsilon = 1.0;
  options.ledger_path = dir + "/budget.ledger";
  options.lock_timeout_ms = 200;
  ASSERT_TRUE(Failpoints::Activate("accountant.flock.busy", "always"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_DEATH(BudgetAccountant accountant(options),
               "locked by another accountant");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  Failpoints::Deactivate("accountant.flock.busy");
  // Generous upper bound (fork + engine setup overhead included), but far
  // below what repeated unclamped 100ms oversleeps would produce.
  EXPECT_GE(elapsed.count(), 200);
  EXPECT_LE(elapsed.count(), 5000);
}

// --- Deadlines ---------------------------------------------------------------

TEST(Deadline, ValueSemantics) {
  Deadline infinite;
  EXPECT_FALSE(infinite.Expired());
  EXPECT_GT(infinite.RemainingMillis(), 0);

  Deadline past = Deadline::AfterMillis(0);
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.RemainingMillis(), 0);

  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.StopStatus().ok());
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(CancelRequested(&token));
  EXPECT_FALSE(CancelRequested(nullptr));

  CancelToken expired(Deadline::AfterMillis(0));
  EXPECT_TRUE(expired.ShouldStop());
  EXPECT_EQ(expired.StopStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(Deadline, CancelledColdPlanIsBoundedAndSideEffectFree) {
  // A workload whose cold plan is much slower than the deadline.
  UnionWorkload w = ParseWorkloadOrDie(
      "domain a=64 b=32\n"
      "product a=prefix b=prefix\n"
      "product a=identity b=prefix\n"
      "product a=prefix b=identity\n");
  EngineOptions options;
  options.optimizer.restarts = 24;
  options.optimizer.seed = 5;
  options.total_epsilon = 1.0;
  Engine engine(options);

  constexpr int64_t kDeadlineMs = 30;
  CancelToken token(Deadline::AfterMillis(kDeadlineMs));
  const auto start = std::chrono::steady_clock::now();
  auto plan = engine.PlanOr(w, &token);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
  // Acceptance bound: the cancelled plan returns within deadline + 50ms —
  // the optimizer polls the token per L-BFGS-B iteration.
  EXPECT_LE(elapsed.count(), kDeadlineMs + 50);

  // No side effects: the partial result was not cached, so the next plan is
  // a genuine (uncancelled) optimization, and it converges to the same
  // deterministic winner a fresh engine would pick.
  auto full = engine.PlanOr(w, nullptr);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().source, PlanSource::kOptimized);
}

TEST(Deadline, ExpiredMeasureSpendsNothing) {
  UnionWorkload w = SmallWorkload();
  EngineOptions options = FastEngineOptions();
  Engine engine(options);
  Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
  Rng rng(3);

  CancelToken token;
  token.Cancel();
  auto refused = engine.MeasureOr(w, "d", x, MeasureRequest::Laplace(0.5),
                                  &rng, &token);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.accountant().Spent("d"), 0.0);

  // Without the token the same request succeeds — the engine held nothing
  // back from the cancelled attempt.
  auto ok = engine.MeasureOr(w, "d", x, MeasureRequest::Laplace(0.5), &rng,
                             nullptr);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(Deadline, AnswerBatchOrHonorsCancellation) {
  UnionWorkload w = SmallWorkload();
  Engine engine(FastEngineOptions());
  Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
  Rng rng(9);
  auto session = engine.MeasureOr(w, "d", x, MeasureRequest::Laplace(0.5),
                                  &rng, nullptr);
  ASSERT_TRUE(session.ok());

  BoxQuery q;
  q.lo = {0, 0};
  q.hi = {1, 7};
  CancelToken cancelled;
  cancelled.Cancel();
  auto stopped = session.value()->AnswerBatchOr({q}, &cancelled);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), StatusCode::kDeadlineExceeded);

  auto answered = session.value()->AnswerBatchOr({q}, nullptr);
  ASSERT_TRUE(answered.ok());
  EXPECT_TRUE(std::isfinite(answered.value()[0]));
}

}  // namespace
}  // namespace hdmm
