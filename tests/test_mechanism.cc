// End-to-end mechanism tests (Table 1b): unbiasedness, privacy-calibration,
// and accuracy of the full select-measure-reconstruct pipeline.
#include <gtest/gtest.h>

#include "core/error.h"
#include "core/hdmm.h"
#include "core/measure.h"
#include "core/reconstruct.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Mechanism, ReconstructionIsUnbiased) {
  // Average of many mechanism runs converges to the true answers.
  Domain d({8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8)});
  HdmmOptions opts;
  opts.restarts = 1;
  opts.kron.lbfgs.max_iterations = 60;
  HdmmResult res = OptimizeStrategy(w, opts);

  Rng rng(1);
  Vector x = UniformDataVector(d, 400, &rng);
  Vector truth = TrueAnswers(w, x);

  const int trials = 300;
  Vector mean(truth.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    Vector est = RunMechanism(w, *res.strategy, x, 1.0, &rng);
    Axpy(1.0 / trials, est, &mean);
  }
  double scale = Norm2(truth) + 1.0;
  for (size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(mean[i], truth[i], 0.05 * scale);
}

TEST(Mechanism, EmpiricalErrorMatchesClosedForm) {
  // Average total squared error over runs ~= (2/eps^2) * SquaredError.
  Domain d({8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8)});
  HdmmOptions opts;
  opts.restarts = 1;
  opts.kron.lbfgs.max_iterations = 60;
  HdmmResult res = OptimizeStrategy(w, opts);

  Rng rng(2);
  Vector x = UniformDataVector(d, 500, &rng);
  Vector truth = TrueAnswers(w, x);
  const double eps = 1.0;
  const int trials = 500;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector est = RunMechanism(w, *res.strategy, x, eps, &rng);
    total += EmpiricalSquaredError(truth, est);
  }
  double empirical = total / trials;
  double predicted = res.strategy->TotalSquaredError(w, eps);
  EXPECT_NEAR(empirical, predicted, 0.15 * predicted);
}

TEST(Mechanism, HigherEpsilonLowersError) {
  Domain d({16});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(16)});
  HdmmOptions opts;
  opts.restarts = 1;
  opts.kron.lbfgs.max_iterations = 60;
  HdmmResult res = OptimizeStrategy(w, opts);
  Rng rng(3);
  Vector x = UniformDataVector(d, 1000, &rng);
  Vector truth = TrueAnswers(w, x);
  const int trials = 150;
  double err_low = 0.0, err_high = 0.0;
  for (int t = 0; t < trials; ++t) {
    err_low += EmpiricalSquaredError(
        truth, RunMechanism(w, *res.strategy, x, 0.5, &rng));
    err_high += EmpiricalSquaredError(
        truth, RunMechanism(w, *res.strategy, x, 2.0, &rng));
  }
  EXPECT_LT(err_high, err_low);
}

TEST(Mechanism, LaplaceMeasureOperatorPath) {
  Rng rng(4);
  Matrix a = PrefixBlock(6);
  DenseOperator op(a);
  Vector x = {1, 2, 3, 4, 5, 6};
  Vector y = LaplaceMeasure(op, x, a.MaxAbsColSum(), 1e9, &rng);
  // With enormous epsilon the noise is negligible.
  Vector ref = MatVec(a, x);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-5);
}

TEST(Mechanism, LeastSquaresReconstructRecovers) {
  Rng rng(5);
  Matrix a = PrefixBlock(6);
  DenseOperator op(a);
  Vector x = {3, 1, 4, 1, 5, 9};
  Vector y = MatVec(a, x);
  Vector xhat = LeastSquaresReconstruct(op, y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(xhat[i], x[i], 1e-7);
}

}  // namespace
}  // namespace hdmm
