#include "core/pidentity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(PIdentity, BuildStrategyExample8) {
  // Example 8 of the paper: p = 2, N = 3.
  Matrix theta = Matrix::FromRows({{1, 2, 3}, {1, 1, 1}});
  Matrix a = PIdentityObjective::BuildStrategy(theta);
  ASSERT_EQ(a.rows(), 5);
  ASSERT_EQ(a.cols(), 3);
  EXPECT_NEAR(a(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(a(1, 1), 0.25, 1e-12);
  EXPECT_NEAR(a(2, 2), 0.2, 1e-12);
  EXPECT_NEAR(a(3, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(a(3, 1), 0.5, 1e-12);
  EXPECT_NEAR(a(3, 2), 0.6, 1e-12);
  EXPECT_NEAR(a(4, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(a(4, 1), 0.25, 1e-12);
  EXPECT_NEAR(a(4, 2), 0.2, 1e-12);
}

TEST(PIdentity, StrategyHasUnitSensitivity) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix theta = Matrix::RandomUniform(3, 7, &rng, 0.0, 2.0);
    Matrix a = PIdentityObjective::BuildStrategy(theta);
    EXPECT_NEAR(a.MaxAbsColSum(), 1.0, 1e-12);
    // Every column, not just the max.
    Vector cs = a.AbsColSums();
    for (double v : cs) EXPECT_NEAR(v, 1.0, 1e-12);
  }
}

TEST(PIdentity, ObjectiveMatchesReference) {
  // The O(pN^2) Woodbury objective equals the O(N^3) pinv-based reference.
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    int64_t n = 6 + trial;
    int p = 2 + trial % 3;
    Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.0, 1.0);
    Matrix w = Matrix::RandomUniform(9, n, &rng, 0.0, 1.0);
    Matrix gram = Gram(w);
    PIdentityObjective obj(gram, p);
    Vector flat(theta.data(), theta.data() + theta.size());
    double fast = obj.Eval(flat, nullptr);
    double ref = PIdentityObjective::EvalReference(theta, gram);
    EXPECT_NEAR(fast, ref, 1e-7 * std::max(1.0, std::fabs(ref)));
  }
}

TEST(PIdentity, ObjectiveIsSquaredErrorOfStrategy) {
  // tr[(A^T A)^{-1} W^T W] == ||W A^+||_F^2 for the supported workload.
  Rng rng(3);
  int64_t n = 8;
  Matrix theta = Matrix::RandomUniform(2, n, &rng, 0.1, 1.0);
  Matrix w = PrefixBlock(n);
  PIdentityObjective obj(Gram(w), 2);
  Vector flat(theta.data(), theta.data() + theta.size());
  double c = obj.Eval(flat, nullptr);
  Matrix a = PIdentityObjective::BuildStrategy(theta);
  Matrix wap = MatMul(w, PseudoInverse(a));
  EXPECT_NEAR(c, wap.FrobeniusNormSquared(), 1e-7 * c);
}

// Property: analytic gradient matches central finite differences.
class PIdentityGradientTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PIdentityGradientTest, FiniteDifference) {
  auto [n, p] = GetParam();
  Rng rng(static_cast<uint64_t>(17 * n + p));
  Matrix w = Matrix::RandomUniform(n + 2, n, &rng, 0.0, 1.0);
  Matrix gram = Gram(w);
  PIdentityObjective obj(gram, p);
  Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 1.0);
  Vector flat(theta.data(), theta.data() + theta.size());

  Vector grad;
  double f0 = obj.Eval(flat, &grad);
  ASSERT_TRUE(std::isfinite(f0));

  const double h = 1e-5;
  for (size_t idx = 0; idx < flat.size(); idx += 3) {  // Sample coordinates.
    Vector plus = flat, minus = flat;
    plus[idx] += h;
    minus[idx] -= h;
    double fp = obj.Eval(plus, nullptr);
    double fm = obj.Eval(minus, nullptr);
    double fd = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(grad[idx], fd, 1e-3 * std::max(1.0, std::fabs(fd)))
        << "coordinate " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PIdentityGradientTest,
    ::testing::Values(std::make_pair(5, 1), std::make_pair(8, 2),
                      std::make_pair(10, 4), std::make_pair(6, 6)));

TEST(PIdentity, TraceWithGramMatchesEval) {
  Rng rng(4);
  int64_t n = 7;
  int p = 3;
  Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 1.0);
  Matrix g = AllRangeGram(n);
  PIdentityObjective obj(g, p);
  Vector flat(theta.data(), theta.data() + theta.size());
  EXPECT_NEAR(obj.Eval(flat, nullptr),
              PIdentityObjective::TraceWithGram(theta, g), 1e-9);
}

TEST(PIdentity, TraceWithGramStableOnRankOneGram) {
  // tr[(A^T A)^{-1} 1 1^T] = || X^{-1/2} 1 ||^2 is tiny when the strategy
  // has a heavy total-like row; the Woodbury fast path cancels and must fall
  // back to the stable dense evaluation (this was a real crash: the [RxT;
  // TxR] union workload in Table 4b).
  const int64_t n = 32;
  Matrix theta = Matrix::Ones(1, n);  // Heavy total row.
  theta.ScaleInPlace(50.0);
  Matrix total_gram = Gram(TotalBlock(n));  // Rank-1 all-ones.
  double fast = PIdentityObjective::TraceWithGram(theta, total_gram);
  double ref = PIdentityObjective::EvalReference(theta, total_gram);
  ASSERT_TRUE(std::isfinite(fast));
  EXPECT_NEAR(fast, ref, 1e-6 * std::max(1.0, ref));
}

TEST(PIdentity, EvalRejectsCancellationRegion) {
  // Extreme Theta drives the objective below the rounding floor: Eval must
  // report infeasible rather than returning cancellation garbage.
  const int64_t n = 16;
  Matrix gram = Gram(TotalBlock(n));
  PIdentityObjective obj(gram, 1);
  Vector flat(static_cast<size_t>(n), 1e9);
  double f = obj.Eval(flat, nullptr);
  EXPECT_TRUE(std::isinf(f) || f > 0.0);
}

TEST(PIdentity, ZeroThetaIsIdentityStrategy) {
  // Theta = 0 gives A = I, so C = tr[G].
  int64_t n = 6;
  Matrix g = PrefixGram(n);
  PIdentityObjective obj(g, 2);
  Vector flat(static_cast<size_t>(2 * n), 0.0);
  EXPECT_NEAR(obj.Eval(flat, nullptr), g.Trace(), 1e-9);
}

}  // namespace
}  // namespace hdmm
