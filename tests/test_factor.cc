// Randomized factorization suite for the blocked linalg layer: blocked
// right-looking Cholesky and the multi-RHS triangular solves against scalar
// reference kernels, eigen reconstruction/orthogonality bounds across the
// Jacobi/tridiagonal cutoff, Moore-Penrose identities, and the near-singular
// fallback paths in TracePinvGram.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

Matrix RandomSpdGram(int64_t n, Rng* rng, double ridge = 0.5) {
  Matrix a = Matrix::RandomUniform(n + 5, n, rng, -1.0, 1.0);
  Matrix g;
  GramInto(a, &g);
  for (int64_t i = 0; i < n; ++i) g(i, i) += ridge;
  return g;
}

// The seed repo's scalar three-loop Cholesky, kept as the reference the
// blocked factorization must reproduce.
bool ReferenceCholesky(const Matrix& x, Matrix* l) {
  const int64_t n = x.rows();
  *l = Matrix::Zeros(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double s = x(i, j);
      const double* li = l->Row(i);
      const double* lj = l->Row(j);
      for (int64_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return false;
        (*l)(i, i) = std::sqrt(s);
      } else {
        (*l)(i, j) = s / (*l)(j, j);
      }
    }
  }
  return true;
}

double RelativeFrobDiff(const Matrix& a, const Matrix& b) {
  double num = 0.0, den = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
      den += b(i, j) * b(i, j);
    }
  }
  return std::sqrt(num) / std::sqrt(std::max(den, 1e-300));
}

// Sizes straddling the factorization panel width (64) and its multiples so
// every code path — pure diagonal block, partial panel, multi-panel with
// trailing updates — gets exercised.
const int64_t kCholeskySizes[] = {1, 2, 7, 63, 64, 65, 130, 257};

TEST(BlockedCholesky, MatchesReferenceOnRandomSpdGrams) {
  Rng rng(11);
  for (int64_t n : kCholeskySizes) {
    Matrix x = RandomSpdGram(n, &rng);
    Matrix blocked, reference;
    ASSERT_TRUE(CholeskyFactor(x, &blocked));
    ASSERT_TRUE(ReferenceCholesky(x, &reference));
    EXPECT_LT(RelativeFrobDiff(blocked, reference), 1e-8) << "n=" << n;
  }
}

TEST(BlockedCholesky, FactorIsLowerTriangularAndReconstructs) {
  Rng rng(12);
  for (int64_t n : {65, 200}) {
    Matrix x = RandomSpdGram(n, &rng);
    Matrix l;
    ASSERT_TRUE(CholeskyFactor(x, &l));
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = i + 1; j < n; ++j)
        ASSERT_EQ(l(i, j), 0.0) << i << "," << j;
    Matrix rec = MatMulNT(l, l);
    EXPECT_LT(RelativeFrobDiff(rec, x), 1e-10);
  }
}

TEST(BlockedCholesky, RejectsIndefiniteAtAnyPanel) {
  Rng rng(13);
  // Indefinite in the first panel.
  Matrix x = Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});
  Matrix l;
  EXPECT_FALSE(CholeskyFactor(x, &l));
  // SPD except for one late direction: flip the sign of a trailing
  // eigenvalue by subtracting a large rank-1 term at the far corner.
  const int64_t n = 100;
  Matrix y = RandomSpdGram(n, &rng);
  y(n - 1, n - 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor(y, &l));
}

TEST(MultiRhsSolve, MatchesPerColumnSolves) {
  Rng rng(14);
  for (int64_t n : {5, 64, 150}) {
    Matrix x = RandomSpdGram(n, &rng);
    Matrix b = Matrix::RandomUniform(n, 37, &rng, -2.0, 2.0);
    Matrix l;
    ASSERT_TRUE(CholeskyFactor(x, &l));
    Matrix multi;
    CholeskySolveMatrixInto(l, b, &multi);
    for (int64_t j = 0; j < b.cols(); ++j) {
      Vector col = b.ColVector(j);
      Vector sol = CholeskySolve(l, col);
      for (int64_t i = 0; i < n; ++i)
        ASSERT_NEAR(multi(i, j), sol[static_cast<size_t>(i)], 1e-9)
            << "n=" << n << " col=" << j;
    }
  }
}

TEST(MultiRhsSolve, TriangularPiecesInvertRoundTrip) {
  Rng rng(15);
  const int64_t n = 129;
  Matrix x = RandomSpdGram(n, &rng);
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(x, &l));
  Matrix y = Matrix::RandomUniform(n, 20, &rng, -1.0, 1.0);
  // Forward then multiply back: L (L^{-1} Y) == Y.
  Matrix z = y;
  ForwardSubstituteMatrix(l, &z);
  Matrix back;
  MatMulInto(l, z, &back);
  EXPECT_LT(RelativeFrobDiff(back, y), 1e-10);
  // Backward then multiply back: L^T (L^{-T} Y) == Y.
  z = y;
  BackwardSubstituteTransposeMatrix(l, &z);
  MatMulTNInto(l, z, &back);
  EXPECT_LT(RelativeFrobDiff(back, y), 1e-10);
}

TEST(TraceSolve, BlockedTraceMatchesExplicitInverse) {
  Rng rng(16);
  const int64_t n = 96;
  Matrix x = RandomSpdGram(n, &rng);
  Matrix g = RandomSpdGram(n, &rng);
  double tr = TraceSolveSpd(x, g);
  Matrix explicit_prod = MatMul(SpdInverse(x), g);
  EXPECT_NEAR(tr, explicit_prod.Trace(), 1e-6 * std::fabs(tr));
}

// Eigen sizes straddling the Jacobi cutoff (32) and the WY block width (32).
const int64_t kEigenSizes[] = {3, 16, 31, 32, 33, 64, 97, 200};

TEST(EigenFactor, ReconstructionWithinFrobeniusBound) {
  Rng rng(17);
  for (int64_t n : kEigenSizes) {
    Matrix x = RandomSpdGram(n, &rng, 0.1);
    SymmetricEigen eig = EigenSym(x);
    // ||V Lambda V^T - X||_F <= tol ||X||_F.
    Matrix scaled = eig.eigenvectors;
    for (int64_t j = 0; j < n; ++j)
      for (int64_t i = 0; i < n; ++i)
        scaled(i, j) *= eig.eigenvalues[static_cast<size_t>(j)];
    Matrix rec = MatMulNT(scaled, eig.eigenvectors);
    EXPECT_LT(RelativeFrobDiff(rec, x), 1e-8) << "n=" << n;
    // Columns orthonormal.
    Matrix vtv;
    GramInto(eig.eigenvectors, &vtv);
    EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(n)), 1e-9) << "n=" << n;
    // Ascending order.
    for (int64_t i = 1; i < n; ++i)
      ASSERT_LE(eig.eigenvalues[static_cast<size_t>(i - 1)],
                eig.eigenvalues[static_cast<size_t>(i)]);
  }
}

TEST(EigenFactor, ValuesOnlyPathMatchesFullDecomposition) {
  Rng rng(18);
  for (int64_t n : {20, 33, 128}) {
    Matrix x = RandomSpdGram(n, &rng, 0.1);
    SymmetricEigen eig = EigenSym(x);
    Vector vals = EigenvaluesSym(x);
    ASSERT_EQ(vals.size(), eig.eigenvalues.size());
    const double scale = std::fabs(eig.eigenvalues.back()) + 1e-300;
    for (size_t i = 0; i < vals.size(); ++i)
      ASSERT_NEAR(vals[i], eig.eigenvalues[i], 1e-9 * scale) << "n=" << n;
  }
}

TEST(EigenFactor, HandlesRankDeficiency) {
  Rng rng(19);
  const int64_t n = 80;
  // Rank-20 PSD matrix: 60 eigenvalues should come out (near) zero.
  Matrix a = Matrix::RandomUniform(20, n, &rng, -1.0, 1.0);
  Matrix g;
  GramInto(a, &g);
  SymmetricEigen eig = EigenSym(g);
  for (int64_t i = 0; i < n - 20; ++i)
    EXPECT_NEAR(eig.eigenvalues[static_cast<size_t>(i)], 0.0, 1e-8);
  for (int64_t i = n - 20; i < n; ++i)
    EXPECT_GT(eig.eigenvalues[static_cast<size_t>(i)], 1e-6);
}

TEST(PseudoInverseFactor, MoorePenroseIdentities) {
  Rng rng(20);
  // Rank-deficient rectangular matrix: 50 x 40 of rank 25.
  Matrix b1 = Matrix::RandomUniform(50, 25, &rng, -1.0, 1.0);
  Matrix b2 = Matrix::RandomUniform(25, 40, &rng, -1.0, 1.0);
  Matrix a = MatMul(b1, b2);
  Matrix ap = PseudoInverse(a);
  // A A+ A = A.
  Matrix aapa = MatMul(MatMul(a, ap), a);
  EXPECT_LT(RelativeFrobDiff(aapa, a), 1e-8);
  // A+ A A+ = A+.
  Matrix apaap = MatMul(MatMul(ap, a), ap);
  EXPECT_LT(RelativeFrobDiff(apaap, ap), 1e-8);
  // A A+ and A+ A symmetric.
  Matrix aap = MatMul(a, ap);
  EXPECT_LT(aap.MaxAbsDiff(aap.Transposed()), 1e-8);
  Matrix apa = MatMul(ap, a);
  EXPECT_LT(apa.MaxAbsDiff(apa.Transposed()), 1e-8);
}

TEST(TracePinvGramFactor, SpdPathMatchesPinvPath) {
  Rng rng(21);
  const int64_t n = 70;
  Matrix ga = RandomSpdGram(n, &rng);
  Matrix gw = RandomSpdGram(n, &rng);
  double fast = TracePinvGram(ga, gw);
  Matrix pinv = PsdPseudoInverse(ga);
  double slow = MatMul(pinv, gw).Trace();
  EXPECT_NEAR(fast, slow, 1e-6 * std::fabs(fast));
}

TEST(TracePinvGramFactor, NearSingularFallsBackToPseudoInverse) {
  Rng rng(22);
  const int64_t n = 60;
  // Exactly singular strategy Gram (rank 40): the Cholesky path must refuse
  // and the eigen-based pseudo-inverse fallback take over.
  Matrix a = Matrix::RandomUniform(40, n, &rng, -1.0, 1.0);
  Matrix ga;
  GramInto(a, &ga);
  Matrix gw = RandomSpdGram(n, &rng);
  double tr = TracePinvGram(ga, gw);
  ASSERT_TRUE(std::isfinite(tr));
  Matrix pinv = PsdPseudoInverse(ga);
  double expect = MatMul(pinv, gw).Trace();
  EXPECT_NEAR(tr, expect, 1e-6 * std::fabs(expect));
}

}  // namespace
}  // namespace hdmm
