// Thread-invariance tests for the pooled kernels: the GEMM driver and the
// blocked Cholesky partition work only over disjoint output tiles, with
// every element's reduction running in a fixed order inside one micro-kernel
// call, so results must be bit-identical at ANY pool width — including the
// degenerate 1-thread pool that runs everything inline. These tests install
// private pools via SetComputePool and compare against the serial kernels
// with memcmp, not a tolerance. The suite name matches the sanitize-thread
// CI job's gtest filter (Parallel*), so the same bodies double as the TSan
// workout for the packing-buffer and task-decomposition paths.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"

namespace hdmm {
namespace {

bool SameBits(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) *
                         static_cast<size_t>(a.rows() * a.cols())) == 0;
}

// Runs `fn` with a private pool of `total_threads` (caller included)
// installed as the compute pool, restoring the global pool afterwards.
template <typename Fn>
void WithComputeThreads(int total_threads, Fn&& fn) {
  ThreadPool pool(total_threads - 1);
  SetComputePool(&pool);
  fn();
  SetComputePool(nullptr);
}

TEST(ParallelKernels, PooledGemmBitIdenticalToSerial) {
  Rng rng(71);
  // Shapes chosen to span multiple row panels and column chunks of the
  // active blocking, plus a thin one that takes the elementwise fast path.
  struct Shape {
    int64_t m, k, n;
  };
  const Shape shapes[] = {{777, 333, 555}, {1024, 256, 1024}, {2000, 8, 3}};
  for (const Shape& s : shapes) {
    Matrix a = Matrix::RandomUniform(s.m, s.k, &rng, -1.0, 1.0);
    Matrix b = Matrix::RandomUniform(s.k, s.n, &rng, -1.0, 1.0);
    Matrix serial;
    MatMulInto(a, b, &serial, GemmParallelism::kSerial);
    for (int threads : {1, 4, 8}) {
      Matrix pooled;
      WithComputeThreads(threads, [&] {
        MatMulInto(a, b, &pooled, GemmParallelism::kPooled);
      });
      EXPECT_TRUE(SameBits(serial, pooled))
          << s.m << "x" << s.k << "x" << s.n << " @ " << threads
          << " threads";
    }
  }
}

TEST(ParallelKernels, PooledGramBitIdenticalToSerial) {
  Rng rng(72);
  Matrix a = Matrix::RandomUniform(600, 450, &rng, -1.0, 1.0);
  Matrix serial;
  GramInto(a, &serial, GemmParallelism::kSerial);
  for (int threads : {1, 8}) {
    Matrix pooled;
    WithComputeThreads(
        threads, [&] { GramInto(a, &pooled, GemmParallelism::kPooled); });
    EXPECT_TRUE(SameBits(serial, pooled)) << threads << " threads";
  }
}

TEST(ParallelKernels, CholeskyFactorBitIdenticalAcrossPoolWidths) {
  Rng rng(73);
  const int64_t n = 500;  // > kPanel so TRSM + trailing SYRK both fan out.
  Matrix g = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix spd;
  GramInto(g, &spd, GemmParallelism::kSerial);
  for (int64_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  Matrix ref;
  ASSERT_TRUE(CholeskyFactor(spd, &ref));
  for (int threads : {1, 4, 16}) {
    Matrix l;
    bool ok = false;
    WithComputeThreads(threads, [&] { ok = CholeskyFactor(spd, &l); });
    ASSERT_TRUE(ok) << threads << " threads";
    EXPECT_TRUE(SameBits(ref, l)) << threads << " threads";
  }
}

TEST(ParallelKernels, EveryIsaTierIsPoolWidthInvariant) {
  const GemmIsa saved = ActiveGemmIsa();
  Rng rng(74);
  Matrix a = Matrix::RandomUniform(513, 257, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(257, 385, &rng, -1.0, 1.0);
  for (GemmIsa isa : {GemmIsa::kPortable, GemmIsa::kAvx2, GemmIsa::kAvx512}) {
    if (!SetGemmIsa(isa)) continue;
    Matrix serial;
    MatMulInto(a, b, &serial, GemmParallelism::kSerial);
    Matrix pooled;
    WithComputeThreads(
        8, [&] { MatMulInto(a, b, &pooled, GemmParallelism::kPooled); });
    EXPECT_TRUE(SameBits(serial, pooled)) << GemmIsaName();
  }
  SetGemmIsa(saved);
}

TEST(ParallelKernels, ComputePoolOverrideInstallsAndReverts) {
  ThreadPool pool(3);
  EXPECT_EQ(&ComputePool(), &ThreadPool::Global());
  SetComputePool(&pool);
  EXPECT_EQ(&ComputePool(), &pool);
  EXPECT_EQ(ComputePool().num_threads(), 4);
  SetComputePool(nullptr);
  EXPECT_EQ(&ComputePool(), &ThreadPool::Global());
}

}  // namespace
}  // namespace hdmm
