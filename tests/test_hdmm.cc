#include "core/hdmm.h"

#include <gtest/gtest.h>

#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

HdmmOptions FastOptions() {
  HdmmOptions opts;
  opts.restarts = 1;
  opts.kron.lbfgs.max_iterations = 80;
  opts.union_opts.kron.lbfgs.max_iterations = 80;
  opts.marginals.lbfgs.max_iterations = 80;
  return opts;
}

TEST(Hdmm, NeverWorseThanIdentity) {
  Domain d({8, 8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8), PrefixBlock(8)});
  HdmmResult res = OptimizeStrategy(w, FastOptions());
  // Identity error: prod of tr(PrefixGram).
  double id_err = PrefixGram(8).Trace() * PrefixGram(8).Trace();
  EXPECT_LE(res.squared_error, id_err);
  EXPECT_NE(res.chosen_operator, "");
}

TEST(Hdmm, PicksMarginalsForMarginalWorkloads) {
  Domain d({4, 4, 4});
  UnionWorkload w = UpToKWayMarginals(d, 3);
  HdmmOptions opts = FastOptions();
  HdmmResult res = OptimizeStrategy(w, opts);
  // Expected-error consistency between the driver's bookkeeping and the
  // returned strategy object.
  EXPECT_NEAR(res.strategy->SquaredError(w), res.squared_error,
              1e-5 * std::max(1.0, res.squared_error));
}

TEST(Hdmm, UnionOperatorWinsOnDisjointUnion) {
  // W = (R x T) u (T x R): a single product strategy pairs queries badly
  // (Section 6.2); OPT_+ should do at least as well as OPT_x.
  const int64_t n = 8;
  Domain d({n, n});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(n), TotalBlock(n)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(n), AllRangeBlock(n)};
  w.AddProduct(p2);

  HdmmOptions kron_only = FastOptions();
  kron_only.use_union = false;
  kron_only.use_marginals = false;
  HdmmOptions both = FastOptions();
  both.use_marginals = false;

  HdmmResult res_kron = OptimizeStrategy(w, kron_only);
  HdmmResult res_both = OptimizeStrategy(w, both);
  EXPECT_LE(res_both.squared_error, res_kron.squared_error + 1e-9);
}

TEST(Hdmm, StrategySelectionIsDeterministicGivenSeed) {
  Domain d({8});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(8)});
  HdmmOptions opts = FastOptions();
  opts.seed = 99;
  HdmmResult a = OptimizeStrategy(w, opts);
  HdmmResult b = OptimizeStrategy(w, opts);
  EXPECT_DOUBLE_EQ(a.squared_error, b.squared_error);
  EXPECT_EQ(a.chosen_operator, b.chosen_operator);
}

// Regression: the reported squared_error must describe the returned strategy
// exactly. An earlier version reported the optimizer's internal fast-path
// objective, which at extreme Theta disagreed with the built strategy by a
// factor of 5 on AllRange n=64 (it also dipped below the spectral lower
// bound, which is how the bug was caught).
TEST(Hdmm, ReportedErrorMatchesReturnedStrategy) {
  const int64_t n = 64;
  UnionWorkload w = MakeProductWorkload(Domain({n}), {AllRangeBlock(n)});
  HdmmOptions opts;
  opts.restarts = 2;
  opts.seed = 4;
  HdmmResult res = OptimizeStrategy(w, opts);
  EXPECT_NEAR(res.squared_error, res.strategy->SquaredError(w),
              1e-9 * res.squared_error);
}

TEST(Hdmm, MoreRestartsNeverHurt) {
  Domain d({8});
  UnionWorkload w = MakeProductWorkload(d, {AllRangeBlock(8)});
  HdmmOptions one = FastOptions();
  one.seed = 5;
  HdmmOptions three = FastOptions();
  three.restarts = 3;
  three.seed = 5;
  HdmmResult r1 = OptimizeStrategy(w, one);
  HdmmResult r3 = OptimizeStrategy(w, three);
  EXPECT_LE(r3.squared_error, r1.squared_error + 1e-9);
}

}  // namespace
}  // namespace hdmm
