#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

Matrix RandomSpd(int64_t n, Rng* rng) {
  Matrix a = Matrix::RandomUniform(n + 3, n, rng, -1.0, 1.0);
  Matrix g = Gram(a);
  for (int64_t i = 0; i < n; ++i) g(i, i) += 0.5;  // Well-conditioned.
  return g;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  Matrix x = RandomSpd(12, &rng);
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(x, &l));
  Matrix rec = MatMulNT(l, l);
  EXPECT_LT(rec.MaxAbsDiff(x), 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix x = Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});  // Eigenvalue -1.
  Matrix l;
  EXPECT_FALSE(CholeskyFactor(x, &l));
}

TEST(Cholesky, SolveMatchesDirect) {
  Rng rng(2);
  Matrix x = RandomSpd(10, &rng);
  Vector b(10);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(x, &l));
  Vector sol = CholeskySolve(l, b);
  Vector back = MatVec(x, sol);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(Cholesky, SpdInverse) {
  Rng rng(3);
  Matrix x = RandomSpd(8, &rng);
  Matrix inv = SpdInverse(x);
  Matrix prod = MatMul(x, inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(8)), 1e-9);
}

TEST(Cholesky, TraceSolveSpdMatchesExplicit) {
  Rng rng(4);
  Matrix x = RandomSpd(9, &rng);
  Matrix g = RandomSpd(9, &rng);
  double tr = TraceSolveSpd(x, g);
  Matrix explicit_prod = MatMul(SpdInverse(x), g);
  EXPECT_NEAR(tr, explicit_prod.Trace(), 1e-8);
}

TEST(Lu, SolveGeneral) {
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(11, 11, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 11; ++i) a(i, i) += 3.0;  // Diagonally dominant.
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  Vector b(11);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  Vector sol = lu.Solve(b);
  Vector back = MatVec(a, sol);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
  // Transpose solve.
  Vector solt = lu.SolveTranspose(b);
  Vector backt = MatVec(a.Transposed(), solt);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(backt[i], b[i], 1e-9);
}

TEST(Lu, DetectsSingular) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  LuFactorization lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, InverseRoundTrip) {
  Rng rng(6);
  Matrix a = Matrix::RandomUniform(7, 7, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 7; ++i) a(i, i) += 2.0;
  Matrix inv = Inverse(a);
  EXPECT_LT(MatMul(a, inv).MaxAbsDiff(Matrix::Identity(7)), 1e-9);
}

TEST(Lu, TriangularSolvers) {
  Matrix u = Matrix::FromRows({{2.0, 1.0, 3.0}, {0.0, 4.0, 5.0}, {0.0, 0.0, 6.0}});
  Vector b = {1.0, 2.0, 3.0};
  Vector x = UpperTriangularSolve(u, b);
  Vector back = MatVec(u, x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);
  Vector xt = UpperTriangularSolveTranspose(u, b);
  Vector backt = MatVec(u.Transposed(), xt);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(backt[i], b[i], 1e-12);
}

TEST(EigenSym, Reconstructs) {
  Rng rng(7);
  Matrix x = RandomSpd(10, &rng);
  SymmetricEigen eig = EigenSym(x);
  // X = V diag(lambda) V^T.
  Matrix scaled = eig.eigenvectors;
  for (int64_t j = 0; j < 10; ++j)
    for (int64_t i = 0; i < 10; ++i)
      scaled(i, j) *= eig.eigenvalues[static_cast<size_t>(j)];
  Matrix rec = MatMulNT(scaled, eig.eigenvectors);
  EXPECT_LT(rec.MaxAbsDiff(x), 1e-9);
  // Ascending eigenvalues, all positive for SPD.
  for (size_t i = 1; i < eig.eigenvalues.size(); ++i)
    EXPECT_LE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  EXPECT_GT(eig.eigenvalues[0], 0.0);
}

TEST(EigenSym, OrthonormalVectors) {
  Rng rng(8);
  Matrix x = RandomSpd(9, &rng);
  SymmetricEigen eig = EigenSym(x);
  Matrix vtv = Gram(eig.eigenvectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(9)), 1e-9);
}

TEST(Pinv, PsdPseudoInverseFullRank) {
  Rng rng(9);
  Matrix x = RandomSpd(8, &rng);
  Matrix p = PsdPseudoInverse(x);
  EXPECT_LT(MatMul(x, p).MaxAbsDiff(Matrix::Identity(8)), 1e-8);
}

TEST(Pinv, PsdPseudoInverseSingular) {
  // Rank-1 PSD matrix: X = v v^T.
  Matrix v = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  Matrix x = MatMulNT(v, v);
  Matrix p = PsdPseudoInverse(x);
  // Penrose conditions: X P X = X and P X P = P.
  EXPECT_LT(MatMul(MatMul(x, p), x).MaxAbsDiff(x), 1e-9);
  EXPECT_LT(MatMul(MatMul(p, x), p).MaxAbsDiff(p), 1e-9);
}

TEST(Pinv, GeneralPinvPenroseConditions) {
  Rng rng(10);
  for (auto [m, n] : std::vector<std::pair<int, int>>{{8, 5}, {5, 8}, {6, 6}}) {
    Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
    Matrix p = PseudoInverse(a);
    EXPECT_EQ(p.rows(), n);
    EXPECT_EQ(p.cols(), m);
    EXPECT_LT(MatMul(MatMul(a, p), a).MaxAbsDiff(a), 1e-8);
    EXPECT_LT(MatMul(MatMul(p, a), p).MaxAbsDiff(p), 1e-8);
  }
}

TEST(Pinv, TracePinvGramMatchesExplicit) {
  Rng rng(11);
  Matrix a = Matrix::RandomUniform(12, 6, &rng, -1.0, 1.0);
  Matrix w = Matrix::RandomUniform(9, 6, &rng, -1.0, 1.0);
  double tr = TracePinvGram(Gram(a), Gram(w));
  // ||W A^+||_F^2 computed explicitly.
  Matrix wap = MatMul(w, PseudoInverse(a));
  EXPECT_NEAR(tr, wap.FrobeniusNormSquared(), 1e-8);
}

}  // namespace
}  // namespace hdmm
