// Fork/kill crash-consistency harness. A test describes a child body that
// exercises a durable-state code path (ledger appends, cache writes) and
// acks each unit of work the moment the *caller* learns it succeeded; the
// harness arms a failpoint spec in the child, lets a crash site SIGKILL it
// mid-operation, and reports how many acks escaped before death. The test
// then re-opens the durable state in the parent and asserts the recovery
// invariants against the ack count.
//
// The ack pipe is the "client's view": anything acked was observably
// committed before the crash, so recovery must preserve at least that much;
// anything in flight at the kill may legitimately be present or absent,
// depending on which side of the durability point the crash landed.
#ifndef HDMM_TESTS_CRASH_HARNESS_H_
#define HDMM_TESTS_CRASH_HARNESS_H_

#include <functional>
#include <string>

namespace hdmm {

struct CrashResult {
  bool forked = false;        ///< The harness itself worked.
  bool sigkilled = false;     ///< Child died by SIGKILL (a crash site fired).
  bool exited_clean = false;  ///< Child ran to completion (no site fired).
  int raw_status = 0;         ///< waitpid status, for diagnostics.
  int acked = 0;              ///< Work units acked before death.
};

/// Forks, activates `failpoint_spec` (HDMM_FAILPOINTS grammar) in the
/// child, and runs `body(ack)` there; `ack()` reports one completed work
/// unit to the parent. The child _exit(0)s if the body returns. Blocks
/// until the child is gone.
CrashResult RunCrashChild(
    const std::string& failpoint_spec,
    const std::function<void(const std::function<void()>& ack)>& body);

}  // namespace hdmm

#endif  // HDMM_TESTS_CRASH_HARNESS_H_
