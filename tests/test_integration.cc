// Whole-pipeline integration tests: workload authoring (spec text or SQL)
// through OPT_HDMM, persistence, measurement, and reconstruction — the paths
// a deployment actually exercises, glued end to end.
#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/hdmm.h"
#include "core/strategy_io.h"
#include "core/svd_bound.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "workload/algebra.h"
#include "workload/building_blocks.h"
#include "workload/parser.h"
#include "workload/sql.h"

namespace hdmm {
namespace {

// The sf1_mini sample shipped in examples/workloads, inlined so the test is
// hermetic. Parity with the file is covered by the CLI smoke tests.
constexpr char kSf1Mini[] = R"(
domain hispanic=2 sex=2 race=8 age=24 state=6
product sex=identity age=prefix
product race=identity state=identitytotal
product weight=2 sex=identity hispanic=identity age=range(18,23) state=identitytotal
product age=range(0,4) state=identitytotal
product weight=4 state=identitytotal
)";

TEST(Integration, SpecToMechanismEndToEnd) {
  UnionWorkload w = ParseWorkloadOrDie(kSf1Mini);
  EXPECT_EQ(w.domain().NumAttributes(), 5);
  EXPECT_EQ(w.DomainSize(), 2 * 2 * 8 * 24 * 6);

  HdmmOptions options;
  options.restarts = 1;
  options.seed = 3;
  HdmmResult sel = OptimizeStrategy(w, options);
  // Never worse than the identity fallback, by construction.
  std::vector<Matrix> id;
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    id.push_back(IdentityBlock(w.domain().AttributeSize(i)));
  }
  EXPECT_LE(sel.squared_error,
            KronStrategy(std::move(id)).SquaredError(w) * (1.0 + 1e-9));

  // Mechanism run: empirical error within a loose factor of the closed form
  // (single run, so only sanity-scale agreement is expected).
  Rng rng(5);
  Vector x = ZipfDataVector(w.domain(), 30000, 1.1, &rng);
  const Vector truth = TrueAnswers(w, x);
  const double eps = 1.0;
  const int trials = 8;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += EmpiricalSquaredError(
        truth, RunMechanism(w, *sel.strategy, x, eps, &rng));
  }
  const double predicted = sel.strategy->TotalSquaredError(w, eps);
  EXPECT_GT(total / trials, 0.2 * predicted);
  EXPECT_LT(total / trials, 5.0 * predicted);
}

TEST(Integration, SpecSerializeReoptimizeFixedPoint) {
  // Spec -> workload -> serialize -> parse -> identical Gram, identical
  // optimized error under the same seed.
  UnionWorkload w1 = ParseWorkloadOrDie(kSf1Mini);
  UnionWorkload w2 = ParseWorkloadOrDie(SerializeWorkload(w1));
  ASSERT_EQ(w1.NumProducts(), w2.NumProducts());
  ASSERT_EQ(w1.TotalQueries(), w2.TotalQueries());

  HdmmOptions options;
  options.restarts = 1;
  options.seed = 17;
  HdmmResult r1 = OptimizeStrategy(w1, options);
  HdmmResult r2 = OptimizeStrategy(w2, options);
  EXPECT_DOUBLE_EQ(r1.squared_error, r2.squared_error);
  EXPECT_EQ(r1.chosen_operator, r2.chosen_operator);
}

TEST(Integration, SqlAndSpecAgreeOnEquivalentWorkloads) {
  // The same logical workload authored through both front ends must produce
  // identical Gram matrices (and therefore identical optimization problems).
  Domain d({"sex", "age"}, {2, 12});
  UnionWorkload from_sql = ParseSqlWorkloadOrDie(
      "SELECT sex, COUNT(*) FROM R GROUP BY sex;"
      "SELECT COUNT(*) FROM R WHERE age <= 4",
      d);
  UnionWorkload from_spec = ParseWorkloadOrDie(
      "domain sex=2 age=12\n"
      "product sex=identity\n"
      "product age=range(0,4)\n");
  EXPECT_LT(from_sql.ExplicitGram().MaxAbsDiff(from_spec.ExplicitGram()),
            1e-12);
}

TEST(Integration, OptimizeSaveLoadMeasureParity) {
  // The deployment loop: optimize, persist, reload, measure — reloaded
  // strategy must give bit-equal measurements under the same noise seed.
  UnionWorkload w = ParseWorkloadOrDie(
      "domain a=16 b=4\n"
      "product a=allrange\n"
      "product a=identity b=identity\n");
  HdmmOptions options;
  options.restarts = 1;
  options.seed = 7;
  HdmmResult sel = OptimizeStrategy(w, options);

  const std::string path = ::testing::TempDir() + "/integration.hdmm";
  std::string error;
  ASSERT_TRUE(SaveStrategyFile(path, *sel.strategy, &error)) << error;
  auto loaded = LoadStrategyFile(path, &error);
  ASSERT_NE(loaded, nullptr) << error;

  Rng rng_data(1);
  Vector x = UniformDataVector(w.domain(), 5000, &rng_data);
  Rng noise_a(42), noise_b(42);
  const Vector ya = sel.strategy->Measure(x, 1.0, &noise_a);
  const Vector yb = loaded->Measure(x, 1.0, &noise_b);
  ASSERT_EQ(ya.size(), yb.size());
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Integration, CsvToAnswersMatchesDirectCounts) {
  // CSV ingestion feeding the mechanism at huge epsilon reproduces exact
  // counts, closing the loop between the data layer and query semantics.
  Domain d({"sex", "age"}, {2, 6});
  Dataset dataset(d);
  std::string error;
  ASSERT_TRUE(ParseCsvDataset(
      "sex,age\n0,1\n0,1\n1,5\n1,0\n0,3\n", d, &dataset, &error))
      << error;

  UnionWorkload w = ParseSqlWorkloadOrDie(
      "SELECT COUNT(*) FROM R WHERE sex = 0;"
      "SELECT age, COUNT(*) FROM R GROUP BY age",
      d);
  HdmmOptions options;
  options.restarts = 1;
  HdmmResult sel = OptimizeStrategy(w, options);

  Rng rng(2);
  const Vector answers =
      RunMechanism(w, *sel.strategy, dataset.ToDataVector(), 1e9, &rng);
  EXPECT_NEAR(answers[0], 3.0, 1e-4);  // sex = 0 count.
  EXPECT_NEAR(answers[1], 1.0, 1e-4);  // age 0.
  EXPECT_NEAR(answers[2], 2.0, 1e-4);  // age 1.
  EXPECT_NEAR(answers[6], 1.0, 1e-4);  // age 5.
}

TEST(Integration, AlgebraExtensionOptimizesAtLargerDomain) {
  // SF1 -> SF1+ style growth through the algebra: the extended workload
  // still optimizes, with the domain scaled by the new attribute.
  UnionWorkload national = ParseWorkloadOrDie(
      "domain sex=2 age=8\n"
      "product sex=identity age=prefix\n");
  UnionWorkload with_state = AppendAttribute(
      national, VStack({TotalBlock(4), IdentityBlock(4)}), "state");
  EXPECT_EQ(with_state.DomainSize(), national.DomainSize() * 4);

  HdmmOptions options;
  options.restarts = 1;
  HdmmResult sel = OptimizeStrategy(with_state, options);
  EXPECT_GT(sel.squared_error, 0.0);
  EXPECT_GE(OptimalityRatio(*sel.strategy, with_state), 1.0 - 1e-9);
}

}  // namespace
}  // namespace hdmm
