#include "baselines/privbayes.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(PrivBayes, SyntheticDataHasRequestedSize) {
  Domain d({4, 4, 4});
  Rng rng(1);
  Vector x = UniformDataVector(d, 2000, &rng);
  PrivBayesOptions opts;
  Vector synth = RunPrivBayesSynthetic(d, x, 1.0, opts, &rng);
  EXPECT_EQ(synth.size(), x.size());
  EXPECT_NEAR(Sum(synth), 2000.0, 1.0);
  for (double v : synth) EXPECT_GE(v, 0.0);
}

TEST(PrivBayes, PreservesStrongPairwiseStructure) {
  // Data where attribute 1 == attribute 0 deterministically: a good network
  // at high epsilon should keep the diagonal heavy.
  Domain d({4, 4});
  Vector x(16, 0.0);
  Rng rng(2);
  for (int t = 0; t < 4000; ++t) {
    int64_t a = rng.UniformInt(0, 3);
    x[static_cast<size_t>(a * 4 + a)] += 1.0;
  }
  PrivBayesOptions opts;
  Vector synth = RunPrivBayesSynthetic(d, x, 50.0, opts, &rng);
  double diag = 0.0;
  for (int64_t a = 0; a < 4; ++a) diag += synth[static_cast<size_t>(a * 4 + a)];
  EXPECT_GT(diag, 0.8 * Sum(synth));
}

TEST(PrivBayes, WorkloadAnswersFinite) {
  Domain d({5, 5, 5});
  Rng rng(3);
  Vector x = ZipfDataVector(d, 5000, 1.0, &rng);
  UnionWorkload w = UpToKWayMarginals(d, 2);
  PrivBayesOptions opts;
  Vector est = RunPrivBayes(w, x, 1.0, opts, &rng);
  EXPECT_EQ(est.size(), static_cast<size_t>(w.TotalQueries()));
  for (double v : est) EXPECT_TRUE(std::isfinite(v));
}

TEST(PrivBayes, MoreBudgetHelpsOnMarginals) {
  Domain d({6, 6});
  Rng rng(4);
  Vector x = ZipfDataVector(d, 20000, 1.1, &rng);
  UnionWorkload w = AllMarginals(d);
  Vector truth = w.ToOperator()->Apply(x);
  PrivBayesOptions opts;
  double err_low = 0.0, err_high = 0.0;
  for (int t = 0; t < 8; ++t) {
    err_low += EmpiricalSquaredError(truth, RunPrivBayes(w, x, 0.05, opts, &rng));
    err_high += EmpiricalSquaredError(truth, RunPrivBayes(w, x, 5.0, opts, &rng));
  }
  EXPECT_LT(err_high, err_low);
}

}  // namespace
}  // namespace hdmm
