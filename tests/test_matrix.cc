#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdmm {
namespace {

TEST(Matrix, BasicAccessors) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 5.0);
}

TEST(MatrixDeathTest, NegativeDimensionsTripCheckBeforeAllocating) {
  // The shape check must run before storage sizes itself from rows * cols;
  // a negative dimension used to wrap into a huge allocation instead.
  // Threadsafe style: other suites may have started the shared thread pool.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Matrix(-1, 5), "rows >= 0");
  EXPECT_DEATH(Matrix(5, -1), "rows >= 0");
  // The data-taking constructor must reject negative shapes too, even when
  // rows * cols happens to match the buffer size.
  EXPECT_DEATH(Matrix(-2, -3, std::vector<double>(6)), "rows >= 0");
}

TEST(Matrix, IdentityDiagonalOnes) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i.Trace(), 3.0);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
  Matrix d = Matrix::Diagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.Trace(), 6.0);
  Matrix o = Matrix::Ones(2, 2);
  EXPECT_DOUBLE_EQ(o.Sum(), 4.0);
}

TEST(Matrix, Transpose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatMulSmall) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatMulVariantsAgree) {
  Rng rng(7);
  Matrix a = Matrix::RandomUniform(13, 7, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(13, 9, &rng, -1.0, 1.0);
  Matrix tn = MatMulTN(a, b);
  Matrix ref = MatMul(a.Transposed(), b);
  EXPECT_LT(tn.MaxAbsDiff(ref), 1e-12);

  Matrix c = Matrix::RandomUniform(5, 7, &rng, -1.0, 1.0);
  Matrix d = Matrix::RandomUniform(6, 7, &rng, -1.0, 1.0);
  Matrix nt = MatMulNT(c, d);
  Matrix ref2 = MatMul(c, d.Transposed());
  EXPECT_LT(nt.MaxAbsDiff(ref2), 1e-12);
}

TEST(Matrix, GramIsSymmetricPsd) {
  Rng rng(3);
  Matrix a = Matrix::RandomUniform(8, 5, &rng, -1.0, 1.0);
  Matrix g = Gram(a);
  EXPECT_EQ(g.rows(), 5);
  EXPECT_LT(g.MaxAbsDiff(g.Transposed()), 1e-14);
  // Diagonal entries are column norms (non-negative).
  for (int64_t i = 0; i < 5; ++i) EXPECT_GE(g(i, i), 0.0);
}

TEST(Matrix, MatVecAgainstMatMul) {
  Rng rng(11);
  Matrix a = Matrix::RandomUniform(6, 4, &rng, -2.0, 2.0);
  Vector x = {1.0, -1.0, 0.5, 2.0};
  Vector y = MatVec(a, x);
  for (int64_t i = 0; i < 6; ++i) {
    double expect = 0.0;
    for (int64_t j = 0; j < 4; ++j) expect += a(i, j) * x[static_cast<size_t>(j)];
    EXPECT_NEAR(y[static_cast<size_t>(i)], expect, 1e-13);
  }
  Vector yt = MatTVec(a, y);
  Vector ref = MatVec(a.Transposed(), y);
  for (size_t i = 0; i < yt.size(); ++i) EXPECT_NEAR(yt[i], ref[i], 1e-12);
}

TEST(Matrix, Norms) {
  Matrix m = Matrix::FromRows({{1, -2}, {-3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 30.0);
  EXPECT_DOUBLE_EQ(m.MaxAbsColSum(), 6.0);  // |−2| + |4| = 6.
  Vector cs = m.ColSums();
  EXPECT_DOUBLE_EQ(cs[0], -2.0);
  EXPECT_DOUBLE_EQ(cs[1], 2.0);
}

TEST(Matrix, VStack) {
  Matrix a = Matrix::Ones(2, 3);
  Matrix b = Matrix::Zeros(1, 3);
  Matrix s = VStack({a, b});
  EXPECT_EQ(s.rows(), 3);
  EXPECT_DOUBLE_EQ(s(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
}

// Parameterized: large-shape MatMul agrees with a reference triple loop (the
// threaded path must match the serial semantics).
class MatMulSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulSizeTest, ThreadedMatchesReference) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  Matrix a = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix c = MatMul(a, b);
  // Reference: spot check 25 random entries.
  for (int t = 0; t < 25; ++t) {
    int64_t i = rng.UniformInt(0, n - 1);
    int64_t j = rng.UniformInt(0, n - 1);
    double expect = 0.0;
    for (int64_t k = 0; k < n; ++k) expect += a(i, k) * b(k, j);
    EXPECT_NEAR(c(i, j), expect, 1e-10 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSizeTest,
                         ::testing::Values(3, 17, 64, 129, 300));

}  // namespace
}  // namespace hdmm
