#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hdmm.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(Diagnostics, ExplicitSupportBasics) {
  // Identity supports everything; Total supports only multiples of Total.
  Matrix prefix = PrefixBlock(6);
  EXPECT_TRUE(SupportsWorkloadExplicit(prefix, IdentityBlock(6)));
  EXPECT_TRUE(SupportsWorkloadExplicit(TotalBlock(6), TotalBlock(6)));
  EXPECT_FALSE(SupportsWorkloadExplicit(prefix, TotalBlock(6)));
  // Prefix is square full rank, so it supports identity (and everything).
  EXPECT_TRUE(SupportsWorkloadExplicit(IdentityBlock(6), prefix));
}

TEST(Diagnostics, RankDeficientStrategyRejectsRicherWorkload) {
  // A two-row strategy spans a 2D rowspace; a 3-query workload outside it
  // must be rejected.
  Matrix a = Matrix::FromRows({{1.0, 1.0, 0.0, 0.0}, {0.0, 0.0, 1.0, 1.0}});
  Matrix w_ok = Matrix::FromRows({{2.0, 2.0, 3.0, 3.0}});
  Matrix w_bad = Matrix::FromRows({{1.0, 0.0, 0.0, 0.0}});
  EXPECT_TRUE(SupportsWorkloadExplicit(w_ok, a));
  EXPECT_FALSE(SupportsWorkloadExplicit(w_bad, a));
}

TEST(Diagnostics, KronSupportPerFactorReduction) {
  UnionWorkload w = MakeProductWorkload(Domain({4, 3}),
                                        {PrefixBlock(4), TotalBlock(3)});
  // Identity x Total supports Prefix x Total.
  KronStrategy good({IdentityBlock(4), TotalBlock(3)});
  EXPECT_TRUE(SupportsWorkload(good, w));
  // Total x Total does not support Prefix on the first attribute.
  KronStrategy bad({TotalBlock(4), TotalBlock(3)});
  EXPECT_FALSE(SupportsWorkload(bad, w));
}

TEST(Diagnostics, MarginalsSupportNeedsFullTableWeight) {
  Domain d({3, 3});
  UnionWorkload w = AllMarginals(d);
  MarginalsStrategy with_full(d, {0.5, 0.5, 0.5, 0.5});
  EXPECT_TRUE(SupportsWorkload(with_full, w));
  MarginalsStrategy without_full(d, {1.0, 1.0, 1.0, 1e-12});
  EXPECT_FALSE(SupportsWorkload(without_full, w));
}

TEST(Diagnostics, UnionKronPerGroupCheck) {
  Domain d({4, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(4), TotalBlock(4)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(4), AllRangeBlock(4)};
  w.AddProduct(p2);

  UnionKronStrategy good(
      {{MatScale(IdentityBlock(4), 0.5), MatScale(TotalBlock(4), 1.0)},
       {MatScale(TotalBlock(4), 1.0), MatScale(IdentityBlock(4), 0.5)}},
      {{0}, {1}}, "good");
  EXPECT_TRUE(SupportsWorkload(good, w));

  // Swap the group assignments: each part now faces the workload its
  // factors cannot span.
  UnionKronStrategy bad(
      {{MatScale(IdentityBlock(4), 0.5), MatScale(TotalBlock(4), 1.0)},
       {MatScale(TotalBlock(4), 1.0), MatScale(IdentityBlock(4), 0.5)}},
      {{1}, {0}}, "bad");
  EXPECT_FALSE(SupportsWorkload(bad, w));
}

TEST(Diagnostics, OptimizerOutputAlwaysSupports) {
  // Structural guarantee of the p-Identity parameterization (Section 5.2):
  // every OPT_HDMM strategy supports its workload.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    UnionWorkload w = MakeProductWorkload(Domain({8, 4}),
                                          {AllRangeBlock(8), PrefixBlock(4)});
    HdmmOptions options;
    options.restarts = 1;
    options.seed = seed;
    HdmmResult sel = OptimizeStrategy(w, options);
    EXPECT_TRUE(SupportsWorkload(*sel.strategy, w)) << "seed " << seed;
  }
}

TEST(Diagnostics, ReportExplicit) {
  ExplicitStrategy s(PrefixBlock(8), "prefix");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.name, "prefix");
  EXPECT_EQ(report.num_queries, 8);
  EXPECT_EQ(report.rank, 8);
  EXPECT_TRUE(report.full_column_rank);
  EXPECT_DOUBLE_EQ(report.l1_sensitivity, 8.0);
  EXPECT_NEAR(report.l2_sensitivity, std::sqrt(8.0), 1e-12);
  EXPECT_GT(report.condition_number, 1.0);
}

TEST(Diagnostics, ReportKronMultiplies) {
  KronStrategy s({PrefixBlock(4), IdentityBlock(3)});
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.rank, 12);
  EXPECT_TRUE(report.full_column_rank);
  // Condition of a Kronecker product is the product of conditions; identity
  // contributes 1.
  StrategyReport prefix_only =
      DescribeStrategy(ExplicitStrategy(PrefixBlock(4)));
  EXPECT_NEAR(report.condition_number, prefix_only.condition_number, 1e-9);
}

TEST(Diagnostics, ReportMarginalsViaGenericPath) {
  Domain d({3, 2});
  MarginalsStrategy s(d, {0.2, 0.4, 0.6, 0.8}, "marg");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.domain_size, 6);
  EXPECT_TRUE(report.full_column_rank);  // theta_full > 0.
  EXPECT_NEAR(report.l1_sensitivity, 2.0, 1e-12);
  EXPECT_GT(report.l2_sensitivity, 0.0);
  EXPECT_LE(report.l2_sensitivity, report.l1_sensitivity + 1e-12);
}

TEST(Diagnostics, ReportRankDeficiency) {
  ExplicitStrategy s(TotalBlock(5), "total");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.rank, 1);
  EXPECT_FALSE(report.full_column_rank);
  const std::string text = ReportToString(report);
  EXPECT_NE(text.find("rank 1/5"), std::string::npos) << text;
}

TEST(DiagnosticsDeath, GenericPathSizeGuard) {
  Domain d({64, 64, 64});
  MarginalsStrategy s(d, Vector(8, 1.0));
  EXPECT_DEATH(DescribeStrategy(s, /*max_explicit_cells=*/1024), "too large");
}

}  // namespace
}  // namespace hdmm
