#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hdmm.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(Diagnostics, ExplicitSupportBasics) {
  // Identity supports everything; Total supports only multiples of Total.
  Matrix prefix = PrefixBlock(6);
  EXPECT_TRUE(SupportsWorkloadExplicit(prefix, IdentityBlock(6)));
  EXPECT_TRUE(SupportsWorkloadExplicit(TotalBlock(6), TotalBlock(6)));
  EXPECT_FALSE(SupportsWorkloadExplicit(prefix, TotalBlock(6)));
  // Prefix is square full rank, so it supports identity (and everything).
  EXPECT_TRUE(SupportsWorkloadExplicit(IdentityBlock(6), prefix));
}

TEST(Diagnostics, RankDeficientStrategyRejectsRicherWorkload) {
  // A two-row strategy spans a 2D rowspace; a 3-query workload outside it
  // must be rejected.
  Matrix a = Matrix::FromRows({{1.0, 1.0, 0.0, 0.0}, {0.0, 0.0, 1.0, 1.0}});
  Matrix w_ok = Matrix::FromRows({{2.0, 2.0, 3.0, 3.0}});
  Matrix w_bad = Matrix::FromRows({{1.0, 0.0, 0.0, 0.0}});
  EXPECT_TRUE(SupportsWorkloadExplicit(w_ok, a));
  EXPECT_FALSE(SupportsWorkloadExplicit(w_bad, a));
}

TEST(Diagnostics, KronSupportPerFactorReduction) {
  UnionWorkload w = MakeProductWorkload(Domain({4, 3}),
                                        {PrefixBlock(4), TotalBlock(3)});
  // Identity x Total supports Prefix x Total.
  KronStrategy good({IdentityBlock(4), TotalBlock(3)});
  EXPECT_TRUE(SupportsWorkload(good, w));
  // Total x Total does not support Prefix on the first attribute.
  KronStrategy bad({TotalBlock(4), TotalBlock(3)});
  EXPECT_FALSE(SupportsWorkload(bad, w));
}

TEST(Diagnostics, MarginalsSupportNeedsFullTableWeight) {
  Domain d({3, 3});
  UnionWorkload w = AllMarginals(d);
  MarginalsStrategy with_full(d, {0.5, 0.5, 0.5, 0.5});
  EXPECT_TRUE(SupportsWorkload(with_full, w));
  MarginalsStrategy without_full(d, {1.0, 1.0, 1.0, 1e-12});
  EXPECT_FALSE(SupportsWorkload(without_full, w));
}

TEST(Diagnostics, UnionKronPerGroupCheck) {
  Domain d({4, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(4), TotalBlock(4)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(4), AllRangeBlock(4)};
  w.AddProduct(p2);

  UnionKronStrategy good(
      {{MatScale(IdentityBlock(4), 0.5), MatScale(TotalBlock(4), 1.0)},
       {MatScale(TotalBlock(4), 1.0), MatScale(IdentityBlock(4), 0.5)}},
      {{0}, {1}}, "good");
  EXPECT_TRUE(SupportsWorkload(good, w));

  // Swap the group assignments: each part now faces the workload its
  // factors cannot span.
  UnionKronStrategy bad(
      {{MatScale(IdentityBlock(4), 0.5), MatScale(TotalBlock(4), 1.0)},
       {MatScale(TotalBlock(4), 1.0), MatScale(IdentityBlock(4), 0.5)}},
      {{1}, {0}}, "bad");
  EXPECT_FALSE(SupportsWorkload(bad, w));
}

TEST(Diagnostics, OptimizerOutputAlwaysSupports) {
  // Structural guarantee of the p-Identity parameterization (Section 5.2):
  // every OPT_HDMM strategy supports its workload.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    UnionWorkload w = MakeProductWorkload(Domain({8, 4}),
                                          {AllRangeBlock(8), PrefixBlock(4)});
    HdmmOptions options;
    options.restarts = 1;
    options.seed = seed;
    HdmmResult sel = OptimizeStrategy(w, options);
    EXPECT_TRUE(SupportsWorkload(*sel.strategy, w)) << "seed " << seed;
  }
}

TEST(Diagnostics, ReportExplicit) {
  ExplicitStrategy s(PrefixBlock(8), "prefix");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.name, "prefix");
  EXPECT_EQ(report.num_queries, 8);
  EXPECT_EQ(report.rank, 8);
  EXPECT_TRUE(report.full_column_rank);
  EXPECT_DOUBLE_EQ(report.l1_sensitivity, 8.0);
  EXPECT_NEAR(report.l2_sensitivity, std::sqrt(8.0), 1e-12);
  EXPECT_GT(report.condition_number, 1.0);
}

TEST(Diagnostics, ReportKronMultiplies) {
  KronStrategy s({PrefixBlock(4), IdentityBlock(3)});
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.rank, 12);
  EXPECT_TRUE(report.full_column_rank);
  // Condition of a Kronecker product is the product of conditions; identity
  // contributes 1.
  StrategyReport prefix_only =
      DescribeStrategy(ExplicitStrategy(PrefixBlock(4)));
  EXPECT_NEAR(report.condition_number, prefix_only.condition_number, 1e-9);
}

TEST(Diagnostics, ReportMarginalsViaGenericPath) {
  Domain d({3, 2});
  MarginalsStrategy s(d, {0.2, 0.4, 0.6, 0.8}, "marg");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.domain_size, 6);
  EXPECT_TRUE(report.full_column_rank);  // theta_full > 0.
  EXPECT_NEAR(report.l1_sensitivity, 2.0, 1e-12);
  EXPECT_GT(report.l2_sensitivity, 0.0);
  EXPECT_LE(report.l2_sensitivity, report.l1_sensitivity + 1e-12);
}

TEST(Diagnostics, ReportRankDeficiency) {
  ExplicitStrategy s(TotalBlock(5), "total");
  StrategyReport report = DescribeStrategy(s);
  EXPECT_EQ(report.rank, 1);
  EXPECT_FALSE(report.full_column_rank);
  const std::string text = ReportToString(report);
  EXPECT_NE(text.find("rank 1/5"), std::string::npos) << text;
}

TEST(Diagnostics, SessionIdentityIsCertifiedOptimal) {
  // W = I: the spectral bound ||W||_*^2 / N equals the identity strategy's
  // error exactly, so the session is certified 100% of optimal.
  UnionWorkload w = MakeProductWorkload(Domain({8}), {IdentityBlock(8)});
  KronStrategy s({IdentityBlock(8)});
  SessionDiagnostics diag = DiagnoseSession(s, w, /*epsilon=*/1.0);
  ASSERT_TRUE(diag.computable) << diag.note;
  EXPECT_NEAR(diag.pct_of_optimal, 100.0, 1e-6);
  EXPECT_NEAR(diag.achieved_total_sq, diag.lower_bound_total_sq, 1e-6);
  EXPECT_DOUBLE_EQ(diag.epsilon, 1.0);
}

TEST(Diagnostics, SessionSuboptimalStrategyScoresBelowOptimal) {
  // Identity is a legal but poor strategy for prefix queries; the bound
  // must still hold (pct <= 100) and stay strictly positive.
  UnionWorkload w = MakeProductWorkload(Domain({16}), {PrefixBlock(16)});
  KronStrategy s({IdentityBlock(16)});
  SessionDiagnostics diag = DiagnoseSession(s, w, /*epsilon=*/0.5);
  ASSERT_TRUE(diag.computable) << diag.note;
  EXPECT_GT(diag.pct_of_optimal, 0.0);
  EXPECT_LT(diag.pct_of_optimal, 100.0);
  EXPECT_GE(diag.achieved_total_sq, diag.lower_bound_total_sq);
}

TEST(Diagnostics, SessionPctIsEpsilonIndependent) {
  UnionWorkload w = MakeProductWorkload(Domain({16}), {PrefixBlock(16)});
  KronStrategy s({IdentityBlock(16)});
  SessionDiagnostics tight = DiagnoseSession(s, w, 0.1);
  SessionDiagnostics loose = DiagnoseSession(s, w, 2.0);
  ASSERT_TRUE(tight.computable && loose.computable);
  EXPECT_NEAR(tight.pct_of_optimal, loose.pct_of_optimal, 1e-9);
  // The error figures themselves scale by (2/eps^2).
  EXPECT_NEAR(tight.lower_bound_total_sq / loose.lower_bound_total_sq,
              (2.0 / 0.01) / (2.0 / 4.0), 1e-9);
}

TEST(Diagnostics, SessionUnionBeyondCeilingRefusesGracefully) {
  Domain d({4, 3});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(4), TotalBlock(3)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(4), PrefixBlock(3)};
  w.AddProduct(p2);
  KronStrategy s({IdentityBlock(4), IdentityBlock(3)});

  // Domain 12 > ceiling 8: the union path needs the explicit Gram spectrum,
  // so the diagnostics must refuse with a note rather than die.
  SessionDiagnostics gated =
      DiagnoseSession(s, w, /*epsilon=*/1.0, /*max_explicit_cells=*/8);
  EXPECT_FALSE(gated.computable);
  EXPECT_FALSE(gated.note.empty());
  EXPECT_DOUBLE_EQ(gated.pct_of_optimal, 0.0);

  // At the default ceiling the same union is computable.
  SessionDiagnostics open = DiagnoseSession(s, w, /*epsilon=*/1.0);
  ASSERT_TRUE(open.computable) << open.note;
  EXPECT_GT(open.pct_of_optimal, 0.0);
  EXPECT_LE(open.pct_of_optimal, 100.0 + 1e-9);
}

TEST(Diagnostics, SessionSingleProductIsImplicitAtAnySize) {
  // Single products use factor multiplicativity: no explicit expansion, so
  // a tiny ceiling must not gate them.
  UnionWorkload w = MakeProductWorkload(Domain({8, 4}),
                                        {PrefixBlock(8), PrefixBlock(4)});
  KronStrategy s({IdentityBlock(8), IdentityBlock(4)});
  SessionDiagnostics diag =
      DiagnoseSession(s, w, /*epsilon=*/1.0, /*max_explicit_cells=*/2);
  ASSERT_TRUE(diag.computable) << diag.note;
  EXPECT_GT(diag.pct_of_optimal, 0.0);
  EXPECT_LE(diag.pct_of_optimal, 100.0 + 1e-9);
}

TEST(DiagnosticsDeath, GenericPathSizeGuard) {
  Domain d({64, 64, 64});
  MarginalsStrategy s(d, Vector(8, 1.0));
  EXPECT_DEATH(DescribeStrategy(s, /*max_explicit_cells=*/1024), "too large");
}

}  // namespace
}  // namespace hdmm
