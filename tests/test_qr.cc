#include "linalg/qr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

class QrShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(QrShapeTest, FactorizationReconstructs) {
  auto [m, n] = GetParam();
  Rng rng(m * 53 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  QrResult qr = HouseholderQr(a);
  EXPECT_EQ(qr.q.rows(), m);
  EXPECT_EQ(qr.q.cols(), n);
  EXPECT_EQ(qr.r.rows(), n);
  EXPECT_EQ(qr.r.cols(), n);
  EXPECT_LT(qr.Reconstruct().MaxAbsDiff(a), 1e-10);
}

TEST_P(QrShapeTest, QHasOrthonormalColumns) {
  auto [m, n] = GetParam();
  Rng rng(m * 59 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  QrResult qr = HouseholderQr(a);
  EXPECT_LT(Gram(qr.q).MaxAbsDiff(Matrix::Identity(n)), 1e-10);
}

TEST_P(QrShapeTest, RUpperTriangularNonNegativeDiagonal) {
  auto [m, n] = GetParam();
  Rng rng(m * 61 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  QrResult qr = HouseholderQr(a);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GE(qr.r(i, i), 0.0);
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{5, 5},
                      std::pair<int64_t, int64_t>{12, 4},
                      std::pair<int64_t, int64_t>{30, 30},
                      std::pair<int64_t, int64_t>{8, 1},
                      std::pair<int64_t, int64_t>{25, 13},
                      // Blocked panel + compact-WY path (cols >= 64),
                      // including ragged final panels.
                      std::pair<int64_t, int64_t>{96, 64},
                      std::pair<int64_t, int64_t>{150, 97},
                      std::pair<int64_t, int64_t>{130, 130}));

TEST(Qr, BlockedLeastSquaresMatchesNormalEquations) {
  // Exercises the blocked factorization inside QrLeastSquares: 80 columns
  // crosses the scalar/blocked cutoff.
  Rng rng(11);
  Matrix a = Matrix::RandomUniform(120, 80, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 80; ++i) a(i, i) += 4.0;
  Vector b(120);
  for (auto& v : b) v = rng.Uniform(-2.0, 2.0);

  Vector x_qr = QrLeastSquares(a, b);
  Matrix g = Gram(a);
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(g, &l));
  Vector x_ne = CholeskySolve(l, MatTVec(a, b));
  for (size_t i = 0; i < x_qr.size(); ++i) {
    EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
  }
}

TEST(Qr, BlockedHandlesZeroColumns) {
  // Zero columns produce identity reflectors (tau = 0); the compact-WY
  // aggregation must keep the block product exact through them. The matrix
  // is rank-deficient, so only the factorization identities are checked.
  Rng rng(12);
  Matrix a = Matrix::RandomUniform(100, 70, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 100; ++i) a(i, 40) = 0.0;
  QrResult qr = HouseholderQr(a);
  EXPECT_LT(qr.Reconstruct().MaxAbsDiff(a), 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Rng rng(7);
  Matrix a = Matrix::RandomUniform(15, 6, &rng, -1.0, 1.0);
  Vector b(15);
  for (auto& v : b) v = rng.Uniform(-2.0, 2.0);

  Vector x_qr = QrLeastSquares(a, b);
  // Normal equations solution (A^T A) x = A^T b via Cholesky.
  Matrix g = Gram(a);
  Matrix l;
  ASSERT_TRUE(CholeskyFactor(g, &l));
  Vector x_ne = CholeskySolve(l, MatTVec(a, b));
  for (size_t i = 0; i < x_qr.size(); ++i) {
    EXPECT_NEAR(x_qr[i], x_ne[i], 1e-9);
  }
}

TEST(Qr, LeastSquaresResidualOrthogonalToRange) {
  Rng rng(8);
  Matrix a = Matrix::RandomUniform(12, 5, &rng, -1.0, 1.0);
  Vector b(12);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  Vector x = QrLeastSquares(a, b);
  Vector residual = Sub(b, MatVec(a, x));
  // A^T r = 0 characterizes the least-squares minimizer.
  Vector atr = MatTVec(a, residual);
  EXPECT_LT(NormInf(atr), 1e-9);
}

TEST(Qr, ExactSolveSquareSystem) {
  Rng rng(9);
  Matrix a = Matrix::RandomUniform(9, 9, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 9; ++i) a(i, i) += 3.0;
  Vector x_true(9);
  for (auto& v : x_true) v = rng.Uniform(-1.0, 1.0);
  Vector b = MatVec(a, x_true);
  Vector x = QrLeastSquares(a, b);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Qr, IdentityFactorsTrivially) {
  Matrix i4 = Matrix::Identity(4);
  QrResult qr = HouseholderQr(i4);
  EXPECT_LT(qr.q.MaxAbsDiff(i4), 1e-12);
  EXPECT_LT(qr.r.MaxAbsDiff(i4), 1e-12);
}

TEST(Qr, AbsDeterminantMatchesLu) {
  Rng rng(10);
  Matrix a = Matrix::RandomUniform(8, 8, &rng, -1.0, 1.0);
  for (int64_t i = 0; i < 8; ++i) a(i, i) += 2.0;
  const double qr_det = AbsDeterminant(a);
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(qr_det, std::abs(lu.Determinant()), 1e-8 * qr_det);
}

TEST(Qr, AbsDeterminantOfSingularIsZero) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_NEAR(AbsDeterminant(a), 0.0, 1e-12);
}

TEST(QrDeath, RejectsWideInput) {
  Matrix a = Matrix::Zeros(2, 5);
  EXPECT_DEATH(HouseholderQr(a), "rows >= cols");
}

TEST(QrDeath, LeastSquaresRejectsRankDeficient) {
  // Two identical columns: rank 1 out of 2.
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  Vector b = {1.0, 1.0, 1.0};
  EXPECT_DEATH(QrLeastSquares(a, b), "rank-deficient");
}

// ------------------------------------------------------- column-pivoted --

class PivotedQrShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PivotedQrShapeTest, FactorizationReconstructs) {
  auto [m, n] = GetParam();
  Rng rng(m * 67 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  PivotedQrResult qr = ColumnPivotedQr(a);
  const int64_t k = std::min(m, n);
  EXPECT_EQ(qr.q.rows(), m);
  EXPECT_EQ(qr.q.cols(), k);
  EXPECT_EQ(qr.r.rows(), k);
  EXPECT_EQ(qr.r.cols(), n);
  EXPECT_LT(qr.Reconstruct().MaxAbsDiff(a), 1e-10);
}

TEST_P(PivotedQrShapeTest, QOrthonormalAndDiagonalDescending) {
  auto [m, n] = GetParam();
  Rng rng(m * 71 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  PivotedQrResult qr = ColumnPivotedQr(a);
  const int64_t k = std::min(m, n);
  EXPECT_LT(Gram(qr.q).MaxAbsDiff(Matrix::Identity(k)), 1e-10);
  for (int64_t i = 0; i < k; ++i) {
    EXPECT_GE(qr.r(i, i), 0.0);
    if (i > 0) EXPECT_LE(qr.r(i, i), qr.r(i - 1, i - 1) + 1e-12);
    for (int64_t j = 0; j < std::min(i, n); ++j) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

TEST_P(PivotedQrShapeTest, PermIsAPermutation) {
  auto [m, n] = GetParam();
  Rng rng(m * 73 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  PivotedQrResult qr = ColumnPivotedQr(a);
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int64_t p : qr.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[static_cast<size_t>(p)]);
    seen[static_cast<size_t>(p)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PivotedQrShapeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{5, 5},
                      std::pair<int64_t, int64_t>{12, 4},
                      std::pair<int64_t, int64_t>{4, 12},
                      std::pair<int64_t, int64_t>{25, 13},
                      std::pair<int64_t, int64_t>{40, 40}));

TEST(PivotedQr, RevealsExactRankOfConstructedMatrix) {
  // A = U V^T with U 20x3, V 11x3: rank exactly 3.
  Rng rng(77);
  Matrix u = Matrix::RandomUniform(20, 3, &rng, -1.0, 1.0);
  Matrix v = Matrix::RandomUniform(11, 3, &rng, -1.0, 1.0);
  Matrix a = MatMulNT(u, v);
  PivotedQrResult qr = ColumnPivotedQr(a, 1e-10);
  EXPECT_EQ(qr.rank, 3);
  EXPECT_LT(qr.Reconstruct().MaxAbsDiff(a), 1e-10);
}

TEST(PivotedQr, FullRankMatrixHasFullRank) {
  Rng rng(79);
  Matrix a = Matrix::RandomUniform(9, 6, &rng, -1.0, 1.0);
  EXPECT_EQ(ColumnPivotedQr(a).rank, 6);
}

TEST(PivotedQr, LeastSquaresMatchesPlainQrOnFullRank) {
  Rng rng(83);
  Matrix a = Matrix::RandomUniform(14, 6, &rng, -1.0, 1.0);
  Vector b(14);
  for (double& x : b) x = rng.Uniform(-1.0, 1.0);
  const Vector plain = QrLeastSquares(a, b);
  const Vector pivoted = PivotedQrLeastSquares(a, b);
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(pivoted[i], plain[i], 1e-9);
  }
}

TEST(PivotedQr, RankDeficientLeastSquaresHasOptimalResidual) {
  // Column 2 duplicates column 0: rank 2 of 3. QrLeastSquares dies here;
  // the pivoted solve must return a finite x whose residual matches the
  // pseudo-inverse (minimum-norm) solution's — both are least-squares
  // optimal even though the basic solution zeroes the redundant column.
  Matrix a = Matrix::FromRows({{1.0, 2.0, 1.0},
                               {2.0, 1.0, 2.0},
                               {3.0, 1.0, 3.0},
                               {1.0, 5.0, 1.0}});
  Vector b = {1.0, -2.0, 0.5, 3.0};
  const Vector x = PivotedQrLeastSquares(a, b);
  const Vector x_pinv = MatVec(PseudoInverse(a), b);
  auto residual = [&](const Vector& sol) {
    double s = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) {
      double r = b[static_cast<size_t>(i)];
      for (int64_t j = 0; j < a.cols(); ++j) {
        r -= a(i, j) * sol[static_cast<size_t>(j)];
      }
      s += r * r;
    }
    return s;
  };
  EXPECT_NEAR(residual(x), residual(x_pinv), 1e-9);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(PivotedQr, MultiRhsSolvesEachColumn) {
  Rng rng(89);
  Matrix a = Matrix::RandomUniform(10, 4, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(10, 3, &rng, -1.0, 1.0);
  const Matrix x = PivotedQrLeastSquares(a, b);
  ASSERT_EQ(x.rows(), 4);
  ASSERT_EQ(x.cols(), 3);
  for (int64_t col = 0; col < 3; ++col) {
    Vector rhs(10);
    for (int64_t i = 0; i < 10; ++i) rhs[static_cast<size_t>(i)] = b(i, col);
    const Vector single = QrLeastSquares(a, rhs);
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(x(j, col), single[static_cast<size_t>(j)], 1e-9);
    }
  }
}

}  // namespace
}  // namespace hdmm
