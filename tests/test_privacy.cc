// Privacy-calibration tests: the epsilon-DP guarantee of Theorem 7 reduces
// to (a) the sensitivity used for noise calibration dominating the true
// worst-case neighboring-database distance, and (b) the noise actually being
// Laplace with scale sensitivity/epsilon. Both are verified directly here,
// per strategy representation.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gaussian.h"
#include "core/hdmm.h"
#include "core/strategy.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

// True sensitivity by definition: neighboring databases differ in one
// record, i.e. x' = x +- e_j, so max_j ||A e_j||_1 over all cells j.
double BruteForceSensitivity(const Matrix& a) {
  double best = 0.0;
  for (int64_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) col += std::abs(a(i, j));
    best = std::max(best, col);
  }
  return best;
}

TEST(Privacy, ExplicitSensitivityMatchesDefinition) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    Matrix a = Matrix::RandomUniform(rng.UniformInt(2, 8),
                                     rng.UniformInt(2, 8), &rng, -1.0, 1.0);
    ExplicitStrategy s(a);
    EXPECT_NEAR(s.Sensitivity(), BruteForceSensitivity(a), 1e-12);
  }
}

TEST(Privacy, KronSensitivityMatchesDefinition) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Matrix> factors = {
        Matrix::RandomUniform(rng.UniformInt(1, 4), rng.UniformInt(2, 4),
                              &rng, 0.0, 1.0),
        Matrix::RandomUniform(rng.UniformInt(1, 4), rng.UniformInt(2, 4),
                              &rng, 0.0, 1.0)};
    KronStrategy s(factors);
    EXPECT_NEAR(s.Sensitivity(), BruteForceSensitivity(KronExplicit(factors)),
                1e-10);
  }
}

TEST(Privacy, MarginalsSensitivityMatchesDefinition) {
  Domain d({3, 4});
  Rng rng(3);
  Vector theta(4);
  for (double& v : theta) v = rng.Uniform(0.1, 2.0);
  MarginalsStrategy s(d, theta);
  // Explicit M(theta): stack the weighted marginal blocks.
  std::vector<Matrix> blocks;
  for (uint32_t m = 0; m < 4; ++m) {
    blocks.push_back(MarginalProduct(d, m, theta[m]).Explicit());
  }
  EXPECT_NEAR(s.Sensitivity(), BruteForceSensitivity(VStack(blocks)), 1e-10);
}

// True L2 sensitivity by definition: max_j ||A e_j||_2 over all cells j —
// the quantity Gaussian noise is calibrated to.
double BruteForceL2Sensitivity(const Matrix& a) {
  double best = 0.0;
  for (int64_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) col += a(i, j) * a(i, j);
    best = std::max(best, col);
  }
  return std::sqrt(best);
}

TEST(Privacy, ExplicitL2SensitivityMatchesDefinition) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    Matrix a = Matrix::RandomUniform(rng.UniformInt(2, 8),
                                     rng.UniformInt(2, 8), &rng, -1.0, 1.0);
    ExplicitStrategy s(a);
    EXPECT_NEAR(s.L2Sensitivity(), BruteForceL2Sensitivity(a), 1e-12);
  }
}

TEST(Privacy, KronL2SensitivityMatchesDefinition) {
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Matrix> factors = {
        Matrix::RandomUniform(rng.UniformInt(1, 4), rng.UniformInt(2, 4),
                              &rng, -1.0, 1.0),
        Matrix::RandomUniform(rng.UniformInt(1, 4), rng.UniformInt(2, 4),
                              &rng, -1.0, 1.0)};
    KronStrategy s(factors);
    EXPECT_NEAR(s.L2Sensitivity(),
                BruteForceL2Sensitivity(KronExplicit(factors)), 1e-10);
  }
}

TEST(Privacy, MarginalsL2SensitivityMatchesDefinition) {
  Domain d({3, 4});
  Rng rng(13);
  Vector theta(4);
  for (double& v : theta) v = rng.Uniform(0.1, 2.0);
  MarginalsStrategy s(d, theta);
  std::vector<Matrix> blocks;
  for (uint32_t m = 0; m < 4; ++m) {
    blocks.push_back(MarginalProduct(d, m, theta[m]).Explicit());
  }
  EXPECT_NEAR(s.L2Sensitivity(), BruteForceL2Sensitivity(VStack(blocks)),
              1e-10);
}

TEST(Privacy, UnionKronL2SensitivityDominatesDefinition) {
  // The stacked upper bound must never under-report — Gaussian noise
  // calibrated below the true L2 sensitivity would void the zCDP guarantee.
  Rng rng(14);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Matrix> part_a = {Matrix::RandomUniform(
        rng.UniformInt(2, 4), 4, &rng, -1.0, 1.0)};
    std::vector<Matrix> part_b = {Matrix::RandomUniform(
        rng.UniformInt(2, 4), 4, &rng, -1.0, 1.0)};
    UnionKronStrategy s({part_a, part_b}, {{0}, {1}}, "u");
    Matrix stacked = VStack({part_a[0], part_b[0]});
    EXPECT_GE(s.L2Sensitivity() + 1e-12, BruteForceL2Sensitivity(stacked))
        << "trial " << trial;
  }
}

TEST(Privacy, UnionKronSensitivityDominatesDefinition) {
  // The union strategy's sensitivity must never under-report (that would
  // break the DP guarantee); for uniform-column-sum parts it is exact.
  UnionKronStrategy s({{MatScale(PrefixBlock(4), 0.3)},
                       {MatScale(IdentityBlock(4), 0.7)}},
                      {{0}, {1}}, "u");
  Matrix stacked = VStack(
      {MatScale(PrefixBlock(4), 0.3), MatScale(IdentityBlock(4), 0.7)});
  EXPECT_GE(s.Sensitivity() + 1e-12, BruteForceSensitivity(stacked));
}

// The differential-privacy inequality itself, checked analytically: for the
// Laplace mechanism with scale b = sens/eps, the log-density ratio of any
// output y under neighboring inputs x, x' is
//   sum_i (|y_i - (Ax')_i| - |y_i - (Ax)_i|) / b  <=  ||A(x - x')||_1 / b
//   <= sens / b = eps.
TEST(Privacy, LaplaceDensityRatioBoundedByEpsilon) {
  Rng rng(4);
  const double eps = 0.7;
  Matrix a = PrefixBlock(6);
  const double sens = BruteForceSensitivity(a);
  const double b = sens / eps;

  for (int trial = 0; trial < 200; ++trial) {
    // Random database and a random neighbor (one record added/removed).
    Vector x(6);
    for (double& v : x) v = std::floor(rng.Uniform(0.0, 10.0));
    Vector x_neighbor = x;
    const int64_t j = rng.UniformInt(0, 5);
    x_neighbor[static_cast<size_t>(j)] += (rng.UniformInt(0, 1) == 0 &&
                                           x_neighbor[static_cast<size_t>(j)] > 0)
                                              ? -1.0
                                              : 1.0;
    // Random output in a wide box around the true answers.
    Vector ax = MatVec(a, x);
    Vector ax2 = MatVec(a, x_neighbor);
    double log_ratio = 0.0;
    for (size_t i = 0; i < ax.size(); ++i) {
      const double y = ax[i] + rng.Uniform(-30.0, 30.0);
      log_ratio += (std::abs(y - ax2[i]) - std::abs(y - ax[i])) / b;
    }
    EXPECT_LE(log_ratio, eps + 1e-9);
    EXPECT_GE(log_ratio, -eps - 1e-9);
  }
}

TEST(Privacy, MeasureNoiseHasLaplaceVariance) {
  // Var[Lap(b)] = 2 b^2 with b = sens / eps. Estimate from repeated
  // measurements of a fixed database.
  Rng rng(5);
  KronStrategy s({PrefixBlock(4)});
  const double eps = 1.3;
  const double b = s.Sensitivity() / eps;
  Vector x = {5.0, 2.0, 7.0, 1.0};
  const Vector ax = s.Apply(x);

  const int trials = 20000;
  double sum = 0.0, sum_sq = 0.0;
  int64_t count = 0;
  for (int t = 0; t < trials; ++t) {
    Vector y = s.Measure(x, eps, &rng);
    for (size_t i = 0; i < y.size(); ++i) {
      const double noise = y[i] - ax[i];
      sum += noise;
      sum_sq += noise * noise;
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sum_sq / static_cast<double>(count) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05 * b);
  EXPECT_NEAR(var, 2.0 * b * b, 0.1 * 2.0 * b * b);
}

TEST(Privacy, GaussianMeasureNoiseHasCalibratedVariance) {
  Rng rng(6);
  ExplicitStrategy s(IdentityBlock(4));
  const double eps = 0.8, delta = 1e-5;
  const double sigma = GaussianNoiseScale(1.0, eps, delta);
  Vector x = {3.0, 0.0, 9.0, 4.0};

  const int trials = 20000;
  double sum = 0.0, sum_sq = 0.0;
  int64_t count = 0;
  for (int t = 0; t < trials; ++t) {
    Vector y = MeasureGaussian(s, x, 1.0, eps, delta, &rng);
    for (size_t i = 0; i < y.size(); ++i) {
      const double noise = y[i] - x[i];
      sum += noise;
      sum_sq += noise * noise;
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sum_sq / static_cast<double>(count) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05 * sigma);
  EXPECT_NEAR(var, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(Privacy, NoiseScalesInverselyWithEpsilon) {
  Rng rng(7);
  KronStrategy s({IdentityBlock(8)});
  Vector x(8, 10.0);
  const Vector ax = s.Apply(x);
  auto mean_abs_noise = [&](double eps) {
    double total = 0.0;
    for (int t = 0; t < 3000; ++t) {
      Vector y = s.Measure(x, eps, &rng);
      for (size_t i = 0; i < y.size(); ++i) total += std::abs(y[i] - ax[i]);
    }
    return total;
  };
  const double at_half = mean_abs_noise(0.5);
  const double at_two = mean_abs_noise(2.0);
  // E|Lap(b)| = b, so quartering epsilon quadruples the mean deviation.
  EXPECT_NEAR(at_half / at_two, 4.0, 0.5);
}

TEST(Privacy, StrategySelectionIgnoresData) {
  // Structural restatement of Section 7.3: OptimizeStrategy's signature
  // admits no data, so selection cannot leak. This test pins the invariant
  // that measuring different databases under the same seed yields the same
  // strategy (no hidden global state).
  UnionWorkload w = MakeProductWorkload(Domain({8}), {PrefixBlock(8)});
  HdmmOptions opts;
  opts.restarts = 1;
  opts.seed = 9;
  HdmmResult r1 = OptimizeStrategy(w, opts);
  HdmmResult r2 = OptimizeStrategy(w, opts);
  EXPECT_DOUBLE_EQ(r1.squared_error, r2.squared_error);
  EXPECT_EQ(r1.chosen_operator, r2.chosen_operator);
}

}  // namespace
}  // namespace hdmm
