#include "core/strategy.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

UnionWorkload SmallWorkload() {
  Domain d({3, 4});
  UnionWorkload w(d);
  ProductWorkload p;
  p.factors = {PrefixBlock(3), PrefixBlock(4)};
  w.AddProduct(p);
  return w;
}

TEST(ExplicitStrategy, SquaredErrorAgainstDefinition) {
  UnionWorkload w = SmallWorkload();
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(14, 12, &rng, 0.0, 1.0);
  ExplicitStrategy strat(a);
  // Definition 7 (sens^2-scaled): ||A||_1^2 ||W A^+||_F^2.
  Matrix wap = MatMul(w.Explicit(), PseudoInverse(a));
  double sens = a.MaxAbsColSum();
  EXPECT_NEAR(strat.SquaredError(w), sens * sens * wap.FrobeniusNormSquared(),
              1e-6 * strat.SquaredError(w));
}

TEST(ExplicitStrategy, ReconstructIsPinv) {
  Rng rng(2);
  Matrix a = Matrix::RandomUniform(9, 5, &rng, 0.0, 1.0);
  ExplicitStrategy strat(a);
  Vector y(9);
  for (auto& v : y) v = rng.Uniform(-1.0, 1.0);
  Vector xhat = strat.Reconstruct(y);
  Vector ref = MatVec(PseudoInverse(a), y);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(xhat[i], ref[i], 1e-9);
}

TEST(KronStrategy, MatchesExplicitEquivalent) {
  UnionWorkload w = SmallWorkload();
  Rng rng(3);
  Matrix a1 = Matrix::RandomUniform(4, 3, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(5, 4, &rng, 0.1, 1.0);
  KronStrategy kron({a1, a2});
  ExplicitStrategy explicit_strat(KronExplicit({a1, a2}));

  EXPECT_NEAR(kron.Sensitivity(), explicit_strat.Sensitivity(), 1e-12);
  EXPECT_NEAR(kron.SquaredError(w), explicit_strat.SquaredError(w),
              1e-6 * kron.SquaredError(w));

  Vector x(12);
  for (auto& v : x) v = rng.Uniform(0.0, 5.0);
  Vector ya = kron.Apply(x);
  Vector yb = explicit_strat.Apply(x);
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_NEAR(ya[i], yb[i], 1e-10);

  Vector y(20);
  for (auto& v : y) v = rng.Uniform(-1.0, 1.0);
  Vector ra = kron.Reconstruct(y);
  Vector rb = explicit_strat.Reconstruct(y);
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_NEAR(ra[i], rb[i], 1e-8);
}

TEST(KronStrategy, ReconstructInvertsApplyForInvertibleStrategy) {
  Rng rng(4);
  // Full-rank square factors: A^+ A = I, so Reconstruct(Apply(x)) = x.
  Matrix a1 = Matrix::RandomUniform(3, 3, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(4, 4, &rng, 0.1, 1.0);
  for (int64_t i = 0; i < 3; ++i) a1(i, i) += 2.0;
  for (int64_t i = 0; i < 4; ++i) a2(i, i) += 2.0;
  KronStrategy kron({a1, a2});
  Vector x(12);
  for (auto& v : x) v = rng.Uniform(0.0, 3.0);
  Vector round = kron.Reconstruct(kron.Apply(x));
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(round[i], x[i], 1e-8);
}

TEST(UnionKronStrategy, SquaredErrorConvention) {
  // Two groups, each handling one product; sens doubles -> error x4 vs the
  // per-group sum.
  const int64_t n = 5;
  Domain d({n, n});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(n), TotalBlock(n)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(n), AllRangeBlock(n)};
  w.AddProduct(p2);

  // Each part is a sensitivity-1 p-identity-like strategy: use identity.
  std::vector<Matrix> part1 = {IdentityBlock(n), TotalBlock(n)};
  std::vector<Matrix> part2 = {TotalBlock(n), IdentityBlock(n)};
  // Normalize: [I] has column sums 1; [T] column sums 1. OK as-is.
  UnionKronStrategy strat({part1, part2}, {{0}, {1}});
  EXPECT_NEAR(strat.Sensitivity(), 2.0, 1e-12);

  double expected = 0.0;
  {
    double term = TracePinvGram(Gram(IdentityBlock(n)), AllRangeGram(n)) *
                  TracePinvGram(Gram(TotalBlock(n)),
                                Gram(TotalBlock(n)));
    expected += term;
    expected += term;  // Symmetric second group.
  }
  EXPECT_NEAR(strat.SquaredError(w), 4.0 * expected, 1e-8 * expected);
}

TEST(UnionKronStrategy, LsmrReconstructSolvesLeastSquares) {
  Rng rng(5);
  const int64_t n = 4;
  std::vector<Matrix> part1 = {PrefixBlock(n), IdentityBlock(n)};
  std::vector<Matrix> part2 = {IdentityBlock(n), PrefixBlock(n)};
  UnionKronStrategy strat({part1, part2}, {{0}, {1}});
  Vector x(16);
  for (auto& v : x) v = rng.Uniform(0.0, 2.0);
  Vector y = strat.Apply(x);
  Vector xhat = strat.Reconstruct(y);
  // The stacked strategy has full column rank, so recovery is exact.
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(xhat[i], x[i], 1e-6);
}

TEST(MarginalsStrategy, SensitivityAndShape) {
  Domain d({2, 3});
  Vector theta = {0.5, 1.0, 0.0, 2.0};
  MarginalsStrategy strat(d, theta);
  EXPECT_DOUBLE_EQ(strat.Sensitivity(), 3.5);
  // Queries: total (1) + marginal{0} (2) + marginal{0,1} (6) = 9.
  EXPECT_EQ(strat.NumQueries(), 9);
}

TEST(MarginalsStrategy, ApplyMatchesExplicit) {
  Domain d({2, 3});
  Vector theta = {0.5, 1.0, 0.7, 2.0};
  MarginalsStrategy strat(d, theta);
  Rng rng(6);
  Vector x(6);
  for (auto& v : x) v = rng.Uniform(0.0, 4.0);

  Vector y = strat.Apply(x);
  // Explicit: stack of weighted marginals in ascending mask order.
  std::vector<Matrix> blocks;
  for (uint32_t mask = 0; mask < 4; ++mask) {
    ProductWorkload p = MarginalProduct(d, mask, theta[mask]);
    blocks.push_back(p.Explicit());
  }
  Vector ref = MatVec(VStack(blocks), x);
  ASSERT_EQ(y.size(), ref.size());
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-10);
}

TEST(MarginalsStrategy, ReconstructMatchesPinv) {
  Domain d({2, 3});
  Vector theta = {0.5, 1.0, 0.7, 2.0};
  MarginalsStrategy strat(d, theta);
  std::vector<Matrix> blocks;
  for (uint32_t mask = 0; mask < 4; ++mask) {
    ProductWorkload p = MarginalProduct(d, mask, theta[mask]);
    blocks.push_back(p.Explicit());
  }
  Matrix m = VStack(blocks);
  Rng rng(7);
  Vector y(static_cast<size_t>(m.rows()));
  for (auto& v : y) v = rng.Uniform(-1.0, 1.0);
  Vector xhat = strat.Reconstruct(y);
  Vector ref = MatVec(PseudoInverse(m), y);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(xhat[i], ref[i], 1e-7);
}

TEST(Strategy, MeasureAddsCalibratedNoise) {
  // Statistical test: empirical variance of Measure matches 2(sens/eps)^2.
  Domain d({4});
  UnionWorkload w = MakeProductWorkload(d, {IdentityBlock(4)});
  KronStrategy strat({IdentityBlock(4)});
  Rng rng(8);
  Vector x = {10.0, 20.0, 30.0, 40.0};
  const double eps = 0.7;
  const int trials = 4000;
  double sum_sq = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector y = strat.Measure(x, eps, &rng);
    for (size_t i = 0; i < 4; ++i) {
      double noise = y[i] - x[i];
      sum_sq += noise * noise;
    }
  }
  double var = sum_sq / (4 * trials);
  double expected = 2.0 / (eps * eps);  // sens = 1.
  EXPECT_NEAR(var, expected, 0.15 * expected);
}

TEST(ErrorRatio, IdentityVsItselfIsOne) {
  UnionWorkload w = SmallWorkload();
  KronStrategy a({IdentityBlock(3), IdentityBlock(4)});
  KronStrategy b({IdentityBlock(3), IdentityBlock(4)});
  EXPECT_NEAR(ErrorRatio(w, a, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace hdmm
