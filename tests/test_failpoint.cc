// Unit tests for the Status/StatusOr error channel and the named-failpoint
// registry (mode semantics, spec parsing, hit accounting).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/status.h"

namespace hdmm {
namespace {

// ----------------------------------------------------------------- status --

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::Corruption("bad magic");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "bad magic");
  EXPECT_EQ(status.ToString(), "CORRUPTION: bad magic");
}

TEST(Status, AnnotatedPrefixesContextAndKeepsCode) {
  const Status status =
      Status::OverBudget("spent 1 of 1").Annotated("dataset 'census'");
  EXPECT_EQ(status.code(), StatusCode::kOverBudget);
  EXPECT_EQ(status.message(), "dataset 'census': spent 1 of 1");
  EXPECT_TRUE(Status::Ok().Annotated("ignored").ok());
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kCorruption, StatusCode::kContention,
        StatusCode::kOverBudget, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

Status FailsThenSucceeds(bool fail) {
  HDMM_RETURN_IF_ERROR(fail ? Status::IoError("early") : Status::Ok());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenSucceeds(false).ok());
  EXPECT_EQ(FailsThenSucceeds(true).code(), StatusCode::kIoError);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  StatusOr<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MovesMoveOnlyValuesOut) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> moved = std::move(holder).value();
  EXPECT_EQ(*moved, 7);
}

TEST(StatusOrDeath, ValueOnErrorDies) {
  StatusOr<int> bad = Status::IoError("gone");
  EXPECT_DEATH(bad.value(), "value\\(\\) on an error status");
}

// ------------------------------------------------------------- failpoints --

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveSitesNeverFire) {
  EXPECT_FALSE(HDMM_FAILPOINT("test.nowhere"));
  EXPECT_EQ(Failpoints::HitCount("test.nowhere"), 0u);
}

TEST_F(FailpointTest, AlwaysMode) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "always"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_EQ(Failpoints::HitCount("test.p"), 2u);
}

TEST_F(FailpointTest, NthModeFiresExactlyOnce) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "nth:3"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
}

TEST_F(FailpointTest, TimesModeFiresAPrefix) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "times:2"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
}

TEST_F(FailpointTest, AfterModeFiresASuffix) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "after:2"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
}

TEST_F(FailpointTest, ProbModeExtremesAreDeterministic) {
  ASSERT_TRUE(Failpoints::Activate("test.never", "prob:0"));
  ASSERT_TRUE(Failpoints::Activate("test.surely", "prob:1"));
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(HDMM_FAILPOINT("test.never"));
    EXPECT_TRUE(HDMM_FAILPOINT("test.surely"));
  }
}

TEST_F(FailpointTest, OffModeCountsHitsWithoutFiring) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "off"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_EQ(Failpoints::HitCount("test.p"), 2u);
}

TEST_F(FailpointTest, ReactivationResetsHitCount) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "always"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  ASSERT_TRUE(Failpoints::Activate("test.p", "nth:1"));
  EXPECT_EQ(Failpoints::HitCount("test.p"), 0u);
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
}

TEST_F(FailpointTest, DeactivateStopsFiring) {
  ASSERT_TRUE(Failpoints::Activate("test.p", "always"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.p"));
  Failpoints::Deactivate("test.p");
  EXPECT_FALSE(HDMM_FAILPOINT("test.p"));
  EXPECT_EQ(Failpoints::HitCount("test.p"), 0u);
}

TEST_F(FailpointTest, SpecActivatesSeveralPointsAtOnce) {
  ASSERT_TRUE(Failpoints::ActivateSpec("test.a=always,test.b=nth:2"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.a"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.b"));
  EXPECT_TRUE(HDMM_FAILPOINT("test.b"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedWithAReason) {
  std::string error;
  EXPECT_FALSE(Failpoints::ActivateSpec("no-equals-sign", &error));
  EXPECT_NE(error.find("name=mode"), std::string::npos);
  EXPECT_FALSE(Failpoints::Activate("test.p", "nth", &error));
  EXPECT_NE(error.find("wants :N"), std::string::npos);
  EXPECT_FALSE(Failpoints::Activate("test.p", "nth:0", &error));
  EXPECT_FALSE(Failpoints::Activate("test.p", "prob:1.5", &error));
  EXPECT_FALSE(Failpoints::Activate("test.p", "warble", &error));
  EXPECT_NE(error.find("unknown mode"), std::string::npos);
  EXPECT_FALSE(Failpoints::Activate("", "always", &error));
  // None of the rejected specs left a point behind.
  EXPECT_FALSE(Failpoints::Enabled());
}

TEST_F(FailpointTest, EnabledTracksActivePointCount) {
  EXPECT_FALSE(Failpoints::Enabled());
  ASSERT_TRUE(Failpoints::Activate("test.a", "off"));
  EXPECT_TRUE(Failpoints::Enabled());
  ASSERT_TRUE(Failpoints::Activate("test.b", "off"));
  Failpoints::Deactivate("test.a");
  EXPECT_TRUE(Failpoints::Enabled());
  Failpoints::Deactivate("test.b");
  EXPECT_FALSE(Failpoints::Enabled());
}

TEST_F(FailpointTest, CrashModeKillsWithSigkill) {
  ASSERT_TRUE(Failpoints::Activate("test.die", "crash:2"));
  EXPECT_FALSE(HDMM_FAILPOINT("test.die"));  // Hit 1 of crash:2 — survives.
  // gtest death tests report raw-signal deaths through ExitedWithCode's
  // negation; assert on the KilledBySignal predicate directly.
  EXPECT_EXIT(HDMM_FAILPOINT("test.die"), ::testing::KilledBySignal(SIGKILL),
              "");
}

}  // namespace
}  // namespace hdmm
