// Minimal recursive-descent JSON validator for tests: checks that a string
// is one well-formed JSON value (RFC 8259 grammar, no extensions). Used by
// the metrics and trace tests to assert that every exported document —
// --stats-json snapshots, Chrome trace files, BENCH_*.json sections — stays
// loadable by real parsers without taking a JSON library dependency.
#ifndef HDMM_TESTS_JSON_LINT_H_
#define HDMM_TESTS_JSON_LINT_H_

#include <cctype>
#include <string>

namespace hdmm_tests {

class JsonLinter {
 public:
  /// True iff `text` is exactly one valid JSON value (plus whitespace).
  /// On failure, *error (when given) describes the first problem.
  static bool Valid(const std::string& text, std::string* error = nullptr) {
    JsonLinter lint(text);
    bool ok = lint.Value() && (lint.SkipWs(), lint.pos_ == text.size());
    if (!ok && error != nullptr) {
      *error = "invalid JSON near byte " + std::to_string(lint.pos_);
    }
    return ok;
  }

 private:
  explicit JsonLinter(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Raw control.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Number() {
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // Leading zero must stand alone.
    } else if (!Digits()) {
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digits()) return false;
    }
    return true;
  }

  bool Members(char close, bool keyed) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == close) {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (keyed) {
        if (!String()) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
      }
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      return Members('}', /*keyed=*/true);
    }
    if (c == '[') {
      ++pos_;
      return Members(']', /*keyed=*/false);
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace hdmm_tests

#endif  // HDMM_TESTS_JSON_LINT_H_
