#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "json_lint.h"

namespace hdmm {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TracePath(const std::string& leaf) {
  return testing::TempDir() + "/" + leaf;
}

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Trace::Enabled());
  const uint64_t before = Trace::RecordedSpans();
  for (int i = 0; i < 1000; ++i) {
    HDMM_TRACE_SPAN("never.recorded");
  }
  EXPECT_EQ(Trace::RecordedSpans(), before);
}

TEST(Trace, RoundTripProducesWellFormedChromeTrace) {
  const std::string path = TracePath("trace_roundtrip.json");
  std::string error;
  ASSERT_TRUE(Trace::Start(path, &error)) << error;
  Trace::SetThreadName("test-main");
  {
    HDMM_TRACE_SPAN("outer.span");
    {
      HDMM_TRACE_SPAN("inner.span");
    }
  }
  std::thread worker([] {
    Trace::SetThreadName("test-worker");
    HDMM_TRACE_SPAN("worker.span");
  });
  worker.join();
  EXPECT_GE(Trace::RecordedSpans(), 3u);
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  EXPECT_FALSE(Trace::Enabled());

  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(hdmm_tests::JsonLinter::Valid(json, &error)) << error << "\n"
                                                           << json;
  // Chrome trace-event essentials Perfetto keys on.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"test-main\""), std::string::npos);
  EXPECT_NE(json.find("\"test-worker\""), std::string::npos);
  EXPECT_NE(json.find("\"outer.span\""), std::string::npos);
  EXPECT_NE(json.find("\"inner.span\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, StartWhileCollectingFails) {
  const std::string path = TracePath("trace_double_start.json");
  std::string error;
  ASSERT_TRUE(Trace::Start(path, &error)) << error;
  EXPECT_FALSE(Trace::Start(TracePath("trace_other.json"), &error));
  EXPECT_FALSE(error.empty());
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  std::remove(path.c_str());
}

TEST(Trace, StopWhenIdleIsANoOp) {
  ASSERT_FALSE(Trace::Enabled());
  EXPECT_TRUE(Trace::Stop());
}

TEST(Trace, RestartDoesNotReplayOldSpans) {
  const std::string first = TracePath("trace_first.json");
  const std::string second = TracePath("trace_second.json");
  std::string error;
  ASSERT_TRUE(Trace::Start(first, &error)) << error;
  {
    HDMM_TRACE_SPAN("stale.span");
  }
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  ASSERT_TRUE(Trace::Start(second, &error)) << error;
  {
    HDMM_TRACE_SPAN("fresh.span");
  }
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  const std::string json = ReadFileOrDie(second);
  EXPECT_TRUE(hdmm_tests::JsonLinter::Valid(json, &error)) << error;
  EXPECT_NE(json.find("\"fresh.span\""), std::string::npos);
  EXPECT_EQ(json.find("\"stale.span\""), std::string::npos);
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(Trace, RingOverflowDropsOldestAndStaysWellFormed) {
  const std::string path = TracePath("trace_overflow.json");
  std::string error;
  ASSERT_TRUE(Trace::Start(path, &error)) << error;
  // Overrun the 1<<14 per-thread ring so the writer takes the dropped path.
  constexpr int kSpans = (1 << 14) + 500;
  for (int i = 0; i < kSpans; ++i) {
    HDMM_TRACE_SPAN("overflow.span");
  }
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(hdmm_tests::JsonLinter::Valid(json, &error)) << error;
  EXPECT_NE(json.find("\"hdmm_dropped_spans\""), std::string::npos);
  EXPECT_NE(json.find("\"overflow.span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, FlushWritesWithoutStopping) {
  const std::string path = TracePath("trace_flush.json");
  std::string error;
  ASSERT_TRUE(Trace::Start(path, &error)) << error;
  {
    HDMM_TRACE_SPAN("flushed.span");
  }
  ASSERT_TRUE(Trace::Flush(&error)) << error;
  EXPECT_TRUE(Trace::Enabled());
  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(hdmm_tests::JsonLinter::Valid(json, &error)) << error;
  EXPECT_NE(json.find("\"flushed.span\""), std::string::npos);
  ASSERT_TRUE(Trace::Stop(&error)) << error;
  std::remove(path.c_str());
}

TEST(Trace, StopReportsUnwritablePath) {
  std::string error;
  ASSERT_TRUE(Trace::Start("/nonexistent-dir/trace.json", &error)) << error;
  {
    HDMM_TRACE_SPAN("doomed.span");
  }
  EXPECT_FALSE(Trace::Stop(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Trace::Enabled());  // Disabled even when the write failed.
}

}  // namespace
}  // namespace hdmm
