#include "workload/parser.h"

#include <random>

#include <gtest/gtest.h>

#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(Parser, MinimalSpec) {
  UnionWorkload w = ParseWorkloadOrDie(
      "domain age=10\n"
      "product age=prefix\n");
  EXPECT_EQ(w.domain().NumAttributes(), 1);
  EXPECT_EQ(w.domain().AttributeSize(0), 10);
  EXPECT_EQ(w.domain().AttributeName(0), "age");
  ASSERT_EQ(w.NumProducts(), 1);
  EXPECT_EQ(w.products()[0].factors[0].MaxAbsDiff(PrefixBlock(10)), 0.0);
}

TEST(Parser, UnmentionedAttributesDefaultToTotal) {
  UnionWorkload w = ParseWorkloadOrDie(
      "domain sex=2 age=5 race=3\n"
      "product age=identity\n");
  ASSERT_EQ(w.NumProducts(), 1);
  const ProductWorkload& p = w.products()[0];
  EXPECT_EQ(p.factors[0].MaxAbsDiff(TotalBlock(2)), 0.0);
  EXPECT_EQ(p.factors[1].MaxAbsDiff(IdentityBlock(5)), 0.0);
  EXPECT_EQ(p.factors[2].MaxAbsDiff(TotalBlock(3)), 0.0);
}

TEST(Parser, AllBlockKinds) {
  UnionWorkload w = ParseWorkloadOrDie(
      "domain a=6\n"
      "product a=identity\n"
      "product a=total\n"
      "product a=identitytotal\n"
      "product a=prefix\n"
      "product a=allrange\n"
      "product a=width(3)\n"
      "product a=point(2)\n"
      "product a=range(1,4)\n"
      "product a=matrix(2x6:1,1,0,0,0,0,0,0,0,0,1,1)\n");
  ASSERT_EQ(w.NumProducts(), 9);
  EXPECT_EQ(w.products()[0].factors[0].rows(), 6);
  EXPECT_EQ(w.products()[1].factors[0].rows(), 1);
  EXPECT_EQ(w.products()[2].factors[0].rows(), 7);
  EXPECT_EQ(w.products()[3].factors[0].MaxAbsDiff(PrefixBlock(6)), 0.0);
  EXPECT_EQ(w.products()[4].factors[0].rows(), 21);  // 6*7/2 ranges.
  EXPECT_EQ(w.products()[5].factors[0].MaxAbsDiff(WidthRangeBlock(6, 3)), 0.0);
  // point(2).
  EXPECT_EQ(w.products()[6].factors[0](0, 2), 1.0);
  EXPECT_EQ(w.products()[6].factors[0].Sum(), 1.0);
  // range(1,4).
  EXPECT_EQ(w.products()[7].factors[0].Sum(), 4.0);
  // matrix literal.
  EXPECT_EQ(w.products()[8].factors[0](0, 0), 1.0);
  EXPECT_EQ(w.products()[8].factors[0](1, 5), 1.0);
}

TEST(Parser, WeightsAndComments) {
  UnionWorkload w = ParseWorkloadOrDie(
      "# header comment\n"
      "domain a=4   # trailing comment\n"
      "\n"
      "product weight=2.5 a=identity\n"
      "product a=total   # unweighted\n");
  ASSERT_EQ(w.NumProducts(), 2);
  EXPECT_DOUBLE_EQ(w.products()[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(w.products()[1].weight, 1.0);
}

TEST(Parser, MarginalsDirectives) {
  Domain d({3, 4, 2});
  UnionWorkload k2 = ParseWorkloadOrDie(
      "domain a=3 b=4 c=2\nmarginals k=2\n");
  EXPECT_EQ(k2.NumProducts(), KWayMarginals(d, 2).NumProducts());
  UnionWorkload upto = ParseWorkloadOrDie(
      "domain a=3 b=4 c=2\nmarginals upto=2\n");
  EXPECT_EQ(upto.NumProducts(), UpToKWayMarginals(d, 2).NumProducts());
  UnionWorkload all = ParseWorkloadOrDie(
      "domain a=3 b=4 c=2\nmarginals all\n");
  EXPECT_EQ(all.NumProducts(), 8);
  EXPECT_EQ(all.TotalQueries(), AllMarginals(d).TotalQueries());
}

TEST(Parser, MixedProductsAndMarginals) {
  UnionWorkload w = ParseWorkloadOrDie(
      "domain a=3 b=4\n"
      "product a=prefix b=identity\n"
      "marginals k=1\n");
  EXPECT_EQ(w.NumProducts(), 3);  // 1 product + 2 one-way marginals.
}

// --- Error cases: every malformed input must be rejected with a
// line-anchored message, never accepted or crashed on. -----------------------

struct BadSpec {
  const char* spec;
  const char* message_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSpec> {};

TEST_P(ParserErrorTest, RejectsWithMessage) {
  UnionWorkload w;
  std::string error;
  EXPECT_FALSE(ParseWorkload(GetParam().spec, &w, &error));
  EXPECT_NE(error.find(GetParam().message_fragment), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    BadSpecs, ParserErrorTest,
    ::testing::Values(
        BadSpec{"", "missing domain"},
        BadSpec{"product a=identity\n", "expected a domain"},
        BadSpec{"domain a=4\n", "no products"},
        BadSpec{"domain a=4\ndomain b=2\nproduct a=total\n", "duplicate domain"},
        BadSpec{"domain\nproduct a=total\n", "at least one attribute"},
        BadSpec{"domain a=0\nproduct a=total\n", "bad attribute"},
        BadSpec{"domain a=x\nproduct a=total\n", "bad attribute"},
        BadSpec{"domain a=4 a=5\nproduct a=total\n", "duplicate attribute"},
        BadSpec{"domain a=4\nproduct b=identity\n", "unknown attribute"},
        BadSpec{"domain a=4\nproduct a=identity a=total\n", "twice"},
        BadSpec{"domain a=4\nproduct a=bogus\n", "unknown block"},
        BadSpec{"domain a=4\nproduct a=point(7)\n", "point(v)"},
        BadSpec{"domain a=4\nproduct a=point(-1)\n", "point(v)"},
        BadSpec{"domain a=4\nproduct a=range(3,1)\n", "range(lo,hi)"},
        BadSpec{"domain a=4\nproduct a=range(0,9)\n", "range(lo,hi)"},
        BadSpec{"domain a=4\nproduct a=width(9)\n", "width(w)"},
        BadSpec{"domain a=4\nproduct a=width()\n", "expects 1"},
        BadSpec{"domain a=4\nproduct a=identity(3)\n", "expects 0"},
        BadSpec{"domain a=4\nproduct weight=-1 a=total\n", "bad weight"},
        BadSpec{"domain a=4\nproduct weight=abc a=total\n", "bad weight"},
        BadSpec{"domain a=4\nproduct a=matrix(2x4:1,2)\n",
                "does not match dimensions"},
        BadSpec{"domain a=4\nproduct a=matrix(2x3:1,2,3,4,5,6)\n",
                "column count"},
        BadSpec{"domain a=4\nfrobnicate a=total\n", "unknown directive"},
        BadSpec{"domain a=4\nmarginals k=7\n", "bad marginals"},
        BadSpec{"domain a=4\nmarginals\n", "exactly one"},
        BadSpec{"domain a=4\nmarginals j=1\n", "bad marginals key"}));

TEST(Parser, ErrorsAreLineAnchored) {
  UnionWorkload w;
  std::string error;
  ASSERT_FALSE(ParseWorkload("domain a=4\n\n# c\nproduct a=bogus\n", &w,
                             &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
}

// --- Round trips -------------------------------------------------------------

TEST(Parser, SerializeParseRoundTripNamedBlocks) {
  const std::string spec =
      "domain sex=2 age=10\n"
      "product weight=2 sex=identity age=prefix\n"
      "product age=range(2,5)\n"
      "product sex=point(1) age=width(4)\n"
      "product age=allrange\n"
      "product sex=identitytotal\n";
  UnionWorkload w = ParseWorkloadOrDie(spec);
  UnionWorkload back = ParseWorkloadOrDie(SerializeWorkload(w));
  ASSERT_EQ(back.NumProducts(), w.NumProducts());
  for (int j = 0; j < w.NumProducts(); ++j) {
    EXPECT_DOUBLE_EQ(back.products()[j].weight, w.products()[j].weight);
    for (size_t i = 0; i < w.products()[j].factors.size(); ++i) {
      EXPECT_EQ(back.products()[j].factors[i].MaxAbsDiff(
                    w.products()[j].factors[i]),
                0.0)
          << "product " << j << " factor " << i;
    }
  }
}

TEST(Parser, SerializeUsesNamedBlocks) {
  UnionWorkload w = ParseWorkloadOrDie(
      "domain a=8\nproduct a=prefix\nproduct a=range(1,3)\n");
  const std::string spec = SerializeWorkload(w);
  EXPECT_NE(spec.find("a=prefix"), std::string::npos) << spec;
  EXPECT_NE(spec.find("a=range(1,3)"), std::string::npos) << spec;
  EXPECT_EQ(spec.find("matrix("), std::string::npos) << spec;
}

TEST(Parser, SerializeFallsBackToMatrixLiteral) {
  Domain d({3});
  UnionWorkload w(d);
  ProductWorkload p;
  p.factors = {Matrix::FromRows({{0.5, 1.0, 0.0}})};
  w.AddProduct(p);
  const std::string spec = SerializeWorkload(w);
  EXPECT_NE(spec.find("matrix(1x3:0.5,1,0)"), std::string::npos) << spec;
  UnionWorkload back = ParseWorkloadOrDie(spec);
  EXPECT_EQ(back.products()[0].factors[0].MaxAbsDiff(w.products()[0].factors[0]),
            0.0);
}

TEST(Parser, UnnamedDomainSerializesWithGeneratedNames) {
  UnionWorkload w = MakeProductWorkload(Domain({4, 2}),
                                        {PrefixBlock(4), IdentityBlock(2)});
  const std::string spec = SerializeWorkload(w);
  EXPECT_NE(spec.find("a1=4"), std::string::npos) << spec;
  EXPECT_NE(spec.find("a2=2"), std::string::npos) << spec;
  UnionWorkload back = ParseWorkloadOrDie(spec);
  EXPECT_EQ(back.DomainSize(), 8);
}

TEST(Parser, LoadWorkloadFileMissing) {
  UnionWorkload w;
  std::string error;
  EXPECT_FALSE(LoadWorkloadFile("/nonexistent/path.workload", &w, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(ParserDeath, ParseOrDieAborts) {
  EXPECT_DEATH(ParseWorkloadOrDie("domain a=4\nproduct a=bogus\n"),
               "unknown block");
}

// Robustness sweep: random byte soup must never crash the parser — it either
// parses (vanishingly unlikely) or returns false with a message.
TEST(Parser, SurvivesRandomGarbage) {
  std::mt19937_64 gen(99);
  const std::string alphabet =
      "domain product marginals weight identity total prefix point range "
      "width matrix()=,0123456789abcxyz \n\t#";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const size_t len = gen() % 200;
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[gen() % alphabet.size()]);
    }
    UnionWorkload w;
    std::string error;
    if (!ParseWorkload(text, &w, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

// Structured-but-wrong sweep: mutate a valid spec one character at a time;
// every mutation must be either accepted or rejected cleanly.
TEST(Parser, SurvivesSingleCharacterMutations) {
  const std::string valid =
      "domain a=4 b=3\nproduct weight=2 a=prefix b=point(1)\nmarginals k=1\n";
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    for (char c : {'x', '0', '(', '=', ' '}) {
      std::string mutated = valid;
      mutated[pos] = c;
      UnionWorkload w;
      std::string error;
      (void)ParseWorkload(mutated, &w, &error);  // Must not crash or abort.
    }
  }
}

}  // namespace
}  // namespace hdmm
