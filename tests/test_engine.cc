#include "engine/engine.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/gaussian.h"
#include "core/measure.h"
#include "core/strategy_io.h"
#include "engine/accountant.h"
#include "engine/fingerprint.h"
#include "engine/privacy.h"
#include "engine/strategy_cache.h"
#include "workload/building_blocks.h"
#include "workload/parser.h"

namespace hdmm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

UnionWorkload SmallWorkload() {
  return ParseWorkloadOrDie(
      "domain sex=2 age=8\n"
      "product sex=identity age=prefix\n"
      "product age=identity\n");
}

// --- Fingerprints ------------------------------------------------------------

TEST(Fingerprint, ProductOrderInsensitive) {
  UnionWorkload a = ParseWorkloadOrDie(
      "domain x=4 y=3\nproduct x=identity\nproduct y=prefix\n");
  UnionWorkload b = ParseWorkloadOrDie(
      "domain x=4 y=3\nproduct y=prefix\nproduct x=identity\n");
  EXPECT_EQ(FingerprintWorkload(a).value, FingerprintWorkload(b).value);
}

TEST(Fingerprint, SensitiveToWeightsFactorsAndDomain) {
  UnionWorkload base = ParseWorkloadOrDie(
      "domain x=4 y=3\nproduct x=identity\n");
  UnionWorkload reweighted = ParseWorkloadOrDie(
      "domain x=4 y=3\nproduct weight=2.0 x=identity\n");
  UnionWorkload other_block = ParseWorkloadOrDie(
      "domain x=4 y=3\nproduct x=prefix\n");
  UnionWorkload other_domain = ParseWorkloadOrDie(
      "domain x=4 y=5\nproduct x=identity\n");
  const uint64_t fp = FingerprintWorkload(base).value;
  EXPECT_NE(fp, FingerprintWorkload(reweighted).value);
  EXPECT_NE(fp, FingerprintWorkload(other_block).value);
  EXPECT_NE(fp, FingerprintWorkload(other_domain).value);
}

TEST(Fingerprint, IgnoresAttributeNames) {
  UnionWorkload a = ParseWorkloadOrDie("domain x=4\nproduct x=identity\n");
  UnionWorkload b = ParseWorkloadOrDie("domain z=4\nproduct z=identity\n");
  EXPECT_EQ(FingerprintWorkload(a).value, FingerprintWorkload(b).value);
}

TEST(Fingerprint, PlanDependsOnOptimizerOptions) {
  UnionWorkload w = SmallWorkload();
  HdmmOptions base;
  HdmmOptions more_restarts = base;
  more_restarts.restarts = base.restarts + 1;
  HdmmOptions other_seed = base;
  other_seed.seed = 12345;
  HdmmOptions no_marginals = base;
  no_marginals.use_marginals = false;
  const uint64_t fp = FingerprintPlan(w, base).value;
  EXPECT_NE(fp, FingerprintPlan(w, more_restarts).value);
  EXPECT_NE(fp, FingerprintPlan(w, other_seed).value);
  EXPECT_NE(fp, FingerprintPlan(w, no_marginals).value);
  EXPECT_EQ(fp, FingerprintPlan(w, HdmmOptions()).value);
}

TEST(Fingerprint, HexIsStable16Digits) {
  Fingerprint fp{0x0123456789abcdefULL};
  EXPECT_EQ(fp.Hex(), "0123456789abcdef");
  EXPECT_EQ(Fingerprint{0}.Hex(), "0000000000000000");
}

// --- Strategy cache ----------------------------------------------------------

TEST(StrategyCache, MemoryHitAndMiss) {
  StrategyCache cache;
  Fingerprint fp{42};
  StrategyCache::Tier tier;
  EXPECT_EQ(cache.Get(fp, &tier), nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kMiss);

  cache.Put(fp, std::make_shared<ExplicitStrategy>(PrefixBlock(4), "p4"));
  auto hit = cache.Get(fp, &tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kMemory);
  EXPECT_EQ(hit->Name(), "p4");
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(StrategyCache, LruEviction) {
  StrategyCacheOptions options;
  options.memory_capacity = 2;
  StrategyCache cache(options);
  cache.Put(Fingerprint{1},
            std::make_shared<ExplicitStrategy>(PrefixBlock(2), "a"));
  cache.Put(Fingerprint{2},
            std::make_shared<ExplicitStrategy>(PrefixBlock(2), "b"));
  // Touch 1 so 2 becomes the LRU entry, then insert 3.
  EXPECT_NE(cache.Get(Fingerprint{1}), nullptr);
  cache.Put(Fingerprint{3},
            std::make_shared<ExplicitStrategy>(PrefixBlock(2), "c"));
  EXPECT_EQ(cache.MemorySize(), 2u);
  EXPECT_NE(cache.Get(Fingerprint{1}), nullptr);
  EXPECT_NE(cache.Get(Fingerprint{3}), nullptr);
  EXPECT_EQ(cache.Get(Fingerprint{2}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(StrategyCache, DiskTierSurvivesRestart) {
  const std::string dir = FreshDir("cache_restart");
  Fingerprint fp{7};
  {
    StrategyCacheOptions options;
    options.disk_dir = dir;
    StrategyCache cache(options);
    const Status put = cache.Put(
        fp, std::make_shared<ExplicitStrategy>(PrefixBlock(5), "persisted"));
    ASSERT_TRUE(put.ok()) << put.ToString();
    EXPECT_TRUE(std::filesystem::exists(cache.DiskPath(fp)));
  }
  // A new cache instance (fresh process in real life) finds it on disk.
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  StrategyCache::Tier tier;
  auto hit = cache.Get(fp, &tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kDisk);
  EXPECT_EQ(hit->Name(), "persisted");
  // Promoted into memory: second lookup is a memory hit.
  EXPECT_NE(cache.Get(fp, &tier), nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kMemory);
}

TEST(StrategyCache, EvictedEntryReloadsFromDisk) {
  const std::string dir = FreshDir("cache_evict_reload");
  StrategyCacheOptions options;
  options.memory_capacity = 1;
  options.disk_dir = dir;
  StrategyCache cache(options);
  cache.Put(Fingerprint{1},
            std::make_shared<ExplicitStrategy>(PrefixBlock(3), "one"));
  cache.Put(Fingerprint{2},
            std::make_shared<ExplicitStrategy>(PrefixBlock(3), "two"));
  StrategyCache::Tier tier;
  auto hit = cache.Get(Fingerprint{1}, &tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kDisk);
  EXPECT_EQ(hit->Name(), "one");
}

TEST(StrategyCache, AllKindsRoundTripThroughCacheFixedPoint) {
  // The persistence satellite seen from the cache: every strategy kind the
  // optimizers produce must come back from the disk tier serializing to the
  // identical normal form.
  const std::string dir = FreshDir("cache_kinds");
  Rng rng(17);
  std::vector<std::shared_ptr<const Strategy>> strategies;
  strategies.push_back(std::make_shared<ExplicitStrategy>(
      Matrix::RandomUniform(5, 4, &rng, 0.0, 1.0), "explicit"));
  strategies.push_back(std::make_shared<KronStrategy>(
      std::vector<Matrix>{PrefixBlock(4), IdentityBlock(3)}, "kron"));
  strategies.push_back(std::make_shared<UnionKronStrategy>(
      std::vector<std::vector<Matrix>>{{PrefixBlock(4)}, {IdentityBlock(4)}},
      std::vector<std::vector<int>>{{0}, {1}}, "union-kron"));
  strategies.push_back(std::make_shared<MarginalsStrategy>(
      Domain({2, 3}), Vector{0.5, 1.0 / 3.0, 0.0, 1.25}, "marginals"));

  StrategyCacheOptions options;
  options.disk_dir = dir;
  options.memory_capacity = 1;  // Forces every Get through the disk tier.
  StrategyCache cache(options);
  for (size_t i = 0; i < strategies.size(); ++i) {
    cache.Put(Fingerprint{i + 1}, strategies[i]);
  }
  for (size_t i = 0; i < strategies.size(); ++i) {
    auto restored = cache.Get(Fingerprint{i + 1});
    ASSERT_NE(restored, nullptr) << "kind " << i;
    EXPECT_EQ(SerializeStrategy(*restored), SerializeStrategy(*strategies[i]))
        << "kind " << i;
  }
}

TEST(StrategyCache, PutIsAtomicOnDisk) {
  const std::string dir = FreshDir("cache_atomic");
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  const Fingerprint fp{11};
  const Status put = cache.Put(
      fp, std::make_shared<ExplicitStrategy>(PrefixBlock(4), "atomic"));
  ASSERT_TRUE(put.ok()) << put.ToString();
  // The write went through a tmp file + rename: the final file exists and
  // no tmp residue is left behind.
  EXPECT_TRUE(std::filesystem::exists(cache.DiskPath(fp)));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".strategy") << entry.path();
  }
}

TEST(StrategyCache, TornStrategyFileFromCrashedWriterIsInvisible) {
  // Simulates a writer that crashed mid-Put under the tmp+rename protocol:
  // the tmp file holds a torn prefix, the final path was never created.
  // Get must miss cleanly (and a fresh Put must succeed) — the scenario the
  // non-atomic write could not survive.
  const std::string dir = FreshDir("cache_torn");
  std::filesystem::create_directories(dir);
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  const Fingerprint fp{12};
  {
    std::ofstream torn(cache.DiskPath(fp) + ".1234-0.tmp");
    torn << "hdmm-strategy v1\nkind expl";  // Torn mid-write.
  }
  StrategyCache::Tier tier;
  EXPECT_EQ(cache.Get(fp, &tier), nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kMiss);
  ASSERT_TRUE(cache.Put(
      fp, std::make_shared<ExplicitStrategy>(PrefixBlock(4), "fresh")).ok());
  cache.ClearMemory();
  auto hit = cache.Get(fp, &tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Name(), "fresh");
}

TEST(StrategyCache, CorruptDiskFileIsQuarantinedNotFatal) {
  // A corrupt cache file (bit rot, a concurrent writer from a buggy build)
  // must read as a miss, move aside so it cannot poison later lookups, and
  // leave the slot writable.
  const std::string dir = FreshDir("cache_quarantine");
  std::filesystem::create_directories(dir);
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  const Fingerprint fp{13};
  {
    std::ofstream garbage(cache.DiskPath(fp));
    garbage << "hdmm-strategy v1\nkind alien\nname zap\n";
  }
  StrategyCache::Tier tier;
  EXPECT_EQ(cache.Get(fp, &tier), nullptr);
  EXPECT_EQ(tier, StrategyCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().corrupt_quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.DiskPath(fp)));
  EXPECT_TRUE(std::filesystem::exists(cache.DiskPath(fp) + ".corrupt"));
  // The quarantine is once per file: the next Get is a plain miss.
  EXPECT_EQ(cache.Get(fp, &tier), nullptr);
  EXPECT_EQ(cache.stats().corrupt_quarantined, 1u);
  // And the slot recovers through a normal replan+Put.
  ASSERT_TRUE(cache.Put(
      fp, std::make_shared<ExplicitStrategy>(PrefixBlock(4), "replanned"))
          .ok());
  cache.ClearMemory();
  auto hit = cache.Get(fp, &tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Name(), "replanned");
}

TEST(StrategyCache, ConcurrentGetPutEvictStress) {
  // Hammers one small cache from several threads mixing Put, memory/disk
  // Get, and ClearMemory. The assertions are modest (never a wrong
  // strategy back for a fingerprint); the real payoff is under
  // -DHDMM_SANITIZE=thread, where any lock-discipline regression in the
  // LRU/disk promotion paths trips the sanitizer.
  const std::string dir = FreshDir("cache_stress");
  StrategyCacheOptions options;
  options.memory_capacity = 4;  // Small: forces constant eviction churn.
  options.disk_dir = dir;
  StrategyCache cache(options);
  constexpr int kFingerprints = 8;
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 200;

  std::atomic<int> wrong_strategy{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong_strategy, t] {
      Rng rng(static_cast<uint64_t>(7000 + t));
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto id = static_cast<size_t>(
            rng.Uniform(0.0, static_cast<double>(kFingerprints)));
        const Fingerprint fp{100 + id};
        const double action = rng.Uniform(0.0, 1.0);
        if (action < 0.3) {
          const Status put = cache.Put(
              fp, std::make_shared<ExplicitStrategy>(
                      PrefixBlock(3), "fp-" + std::to_string(id)));
          if (!put.ok()) ++wrong_strategy;
        } else if (action < 0.95) {
          auto hit = cache.Get(fp);
          if (hit != nullptr && hit->Name() != "fp-" + std::to_string(id)) {
            ++wrong_strategy;
          }
        } else {
          cache.ClearMemory();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong_strategy.load(), 0);
  EXPECT_EQ(cache.stats().corrupt_quarantined, 0u);
  EXPECT_EQ(cache.stats().disk_read_errors, 0u);
  EXPECT_FALSE(cache.DiskWriteDegraded());
}

TEST(StrategyCache, DiskTierReenablesAfterRecoveryProbe) {
  // Regression: degradation used to be one-way — once Put stopped touching
  // the disk, no write could ever succeed to reset the failure counter, so
  // a recovered disk (volume remounted, space freed) stayed unused until
  // restart. Now every kReprobeInterval-th degraded Put probes the disk.
  const std::string dir = FreshDir("cache_reprobe");
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  auto strategy = [] {
    return std::make_shared<ExplicitStrategy>(PrefixBlock(3), "probe");
  };

  ASSERT_TRUE(Failpoints::Activate("strategy_cache.put.io_error", "always"));
  for (int i = 0; i < StrategyCache::kDiskFailureLimit; ++i) {
    EXPECT_FALSE(
        cache.Put(Fingerprint{static_cast<uint64_t>(i + 1)}, strategy())
            .ok());
  }
  ASSERT_TRUE(cache.DiskWriteDegraded());
  Failpoints::Deactivate("strategy_cache.put.io_error");

  // The disk has "recovered", but degraded Puts skip it — until the probe.
  int puts = 0;
  uint64_t last = 0;
  while (cache.DiskWriteDegraded() &&
         puts < StrategyCache::kReprobeInterval + 1) {
    last = static_cast<uint64_t>(100 + puts);
    EXPECT_TRUE(cache.Put(Fingerprint{last}, strategy()).ok());
    ++puts;
  }
  EXPECT_FALSE(cache.DiskWriteDegraded());
  EXPECT_LE(puts, StrategyCache::kReprobeInterval);
  EXPECT_GE(cache.stats().disk_reprobes, 1u);
  // The probe write itself landed on disk, and the tier is live again for
  // ordinary Puts.
  EXPECT_TRUE(std::filesystem::exists(cache.DiskPath(Fingerprint{last})));
  EXPECT_TRUE(cache.Put(Fingerprint{999}, strategy()).ok());
  EXPECT_TRUE(std::filesystem::exists(cache.DiskPath(Fingerprint{999})));

  // And a failed probe keeps the degraded contract: Put returns OK.
  ASSERT_TRUE(Failpoints::Activate("strategy_cache.put.io_error", "always"));
  for (int i = 0; i < StrategyCache::kDiskFailureLimit; ++i) {
    cache.Put(Fingerprint{static_cast<uint64_t>(200 + i)}, strategy());
  }
  ASSERT_TRUE(cache.DiskWriteDegraded());
  const uint64_t probes_before = cache.stats().disk_reprobes;
  for (int i = 0; i < StrategyCache::kReprobeInterval; ++i) {
    EXPECT_TRUE(
        cache.Put(Fingerprint{static_cast<uint64_t>(300 + i)}, strategy())
            .ok());
  }
  EXPECT_GT(cache.stats().disk_reprobes, probes_before);
  EXPECT_TRUE(cache.DiskWriteDegraded());  // Probe failed: still degraded.
  Failpoints::Deactivate("strategy_cache.put.io_error");
}

// --- Accountant --------------------------------------------------------------

TEST(Accountant, SequentialCompositionLedger) {
  BudgetAccountant accountant(1.0);
  EXPECT_TRUE(accountant.TryCharge("census", 0.25));
  EXPECT_TRUE(accountant.TryCharge("census", 0.5));
  EXPECT_NEAR(accountant.Spent("census"), 0.75, 1e-15);
  EXPECT_NEAR(accountant.Remaining("census"), 0.25, 1e-15);
  // Over budget: refused, ledger unchanged.
  EXPECT_FALSE(accountant.TryCharge("census", 0.5));
  EXPECT_NEAR(accountant.Spent("census"), 0.75, 1e-15);
  EXPECT_EQ(accountant.NumCharges("census"), 2);
  // Exactly exhausting the budget is allowed.
  EXPECT_TRUE(accountant.TryCharge("census", 0.25));
  EXPECT_FALSE(accountant.TryCharge("census", 1e-9));
  EXPECT_EQ(accountant.Remaining("census"), 0.0);
}

TEST(Accountant, DatasetsAreIndependent) {
  BudgetAccountant accountant(0.5);
  EXPECT_TRUE(accountant.TryCharge("a", 0.5));
  EXPECT_FALSE(accountant.TryCharge("a", 0.1));
  EXPECT_TRUE(accountant.TryCharge("b", 0.5));
  EXPECT_EQ(accountant.Spent("unknown"), 0.0);
  EXPECT_NEAR(accountant.Remaining("unknown"), 0.5, 1e-15);
}

TEST(Accountant, ToleratesFloatingPointSplits) {
  // 10 equal slices of 1/10 must exactly exhaust a unit budget despite
  // accumulation rounding.
  BudgetAccountant accountant(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.TryCharge("d", 0.1)) << "slice " << i;
  }
  EXPECT_FALSE(accountant.TryCharge("d", 0.01));
}

TEST(Accountant, LedgerSurvivesRestart) {
  const std::string path = FreshDir("ledger_restart") + "/budget.ledger";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  {
    BudgetAccountant accountant(1.0, path);
    EXPECT_TRUE(accountant.TryCharge("census data.csv", 0.6));
    EXPECT_TRUE(accountant.TryCharge("other", 0.25));
  }
  // A fresh accountant (new process in real life) replays the ledger: the
  // ceiling holds across restarts instead of resetting to the full budget.
  // Scoped — the flock admits one live accountant per ledger at a time.
  {
    BudgetAccountant restarted(1.0, path);
    EXPECT_NEAR(restarted.Spent("census data.csv"), 0.6, 1e-15);
    EXPECT_EQ(restarted.NumCharges("census data.csv"), 1);
    EXPECT_FALSE(restarted.TryCharge("census data.csv", 0.5));
    EXPECT_TRUE(restarted.TryCharge("census data.csv", 0.4));
  }
  BudgetAccountant third(1.0, path);
  EXPECT_EQ(third.Remaining("census data.csv"), 0.0);
  EXPECT_NEAR(third.Spent("other"), 0.25, 1e-15);
}

TEST(AccountantDeath, DiesOnCorruptLedger) {
  const std::string path = FreshDir("ledger_corrupt") + "/budget.ledger";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  {
    std::ofstream out(path);
    out << "not-a-number census.csv\n";
  }
  EXPECT_DEATH(BudgetAccountant(1.0, path), "malformed budget ledger");
}

TEST(AccountantDeath, RejectsInvalidEpsilon) {
  BudgetAccountant accountant(1.0);
  EXPECT_DEATH(accountant.TryCharge("d", 0.0), "positive and finite");
  EXPECT_DEATH(accountant.TryCharge("d", -0.5), "positive and finite");
  EXPECT_DEATH(accountant.TryCharge("d", std::nan("")), "positive and finite");
  EXPECT_DEATH(
      accountant.TryCharge("d", std::numeric_limits<double>::infinity()),
      "positive and finite");
}

TEST(AccountantDeath, RejectsInvalidTotal) {
  EXPECT_DEATH(BudgetAccountant(0.0), "positive and finite");
  EXPECT_DEATH(BudgetAccountant(std::numeric_limits<double>::infinity()),
               "positive and finite");
}

TEST(Accountant, PerDatasetCeilingOverrides) {
  BudgetAccountantOptions options;
  options.regime = BudgetRegime::kPureDp;
  options.total_epsilon = 1.0;
  options.dataset_ceilings["sensitive"] = 0.4;
  BudgetAccountant accountant(options);
  EXPECT_NEAR(accountant.TotalBudget("sensitive"), 0.4, 1e-15);
  EXPECT_NEAR(accountant.TotalBudget("other"), 1.0, 1e-15);
  EXPECT_NEAR(accountant.Remaining("sensitive"), 0.4, 1e-15);
  // A charge the default ceiling would admit is refused on the overridden
  // dataset, admitted elsewhere; the refusal records nothing.
  EXPECT_FALSE(accountant.TryCharge("sensitive", 0.6));
  EXPECT_EQ(accountant.Spent("sensitive"), 0.0);
  EXPECT_TRUE(accountant.TryCharge("other", 0.6));
  // Exactly exhausting the override is allowed; one more dust charge isn't.
  EXPECT_TRUE(accountant.TryCharge("sensitive", 0.4));
  EXPECT_FALSE(accountant.TryCharge("sensitive", 1e-9));
  EXPECT_EQ(accountant.Remaining("sensitive"), 0.0);
  EXPECT_NEAR(accountant.Remaining("other"), 0.4, 1e-15);
}

TEST(Accountant, PerDatasetCeilingSurvivesLedgerReplay) {
  const std::string path = FreshDir("ledger_override") + "/budget.ledger";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  BudgetAccountantOptions options;
  options.total_epsilon = 1.0;
  options.dataset_ceilings["tight"] = 0.3;
  options.ledger_path = path;
  {
    BudgetAccountant accountant(options);
    EXPECT_TRUE(accountant.TryCharge("tight", 0.3));
  }
  BudgetAccountant restarted(options);
  EXPECT_NEAR(restarted.Spent("tight"), 0.3, 1e-15);
  EXPECT_FALSE(restarted.TryCharge("tight", 0.1));
  EXPECT_TRUE(restarted.TryCharge("loose", 0.9));
}

TEST(AccountantDeath, RejectsInvalidDatasetCeiling) {
  BudgetAccountantOptions options;
  options.total_epsilon = 1.0;
  options.dataset_ceilings["d"] = 0.0;
  EXPECT_DEATH(BudgetAccountant{options}, "positive and finite");
}

// --- zCDP accounting ---------------------------------------------------------

BudgetAccountantOptions ZCdpOptions(double total_rho,
                                    const std::string& ledger_path = "") {
  BudgetAccountantOptions options;
  options.regime = BudgetRegime::kZCdp;
  options.total_rho = total_rho;
  options.delta = 1e-6;
  options.ledger_path = ledger_path;
  return options;
}

TEST(AccountantZCdp, ComposesRhoAdditively) {
  // k charges of rho/k must exactly exhaust the budget; charge k+1 refused.
  const int k = 8;
  const double total_rho = 0.5;
  BudgetAccountant accountant(ZCdpOptions(total_rho));
  for (int i = 0; i < k; ++i) {
    EXPECT_TRUE(accountant.TryCharge(
        "census", PrivacyCharge::Gaussian(total_rho / k)))
        << "charge " << i;
  }
  EXPECT_NEAR(accountant.Spent("census"), total_rho, 1e-12);
  std::string why;
  EXPECT_FALSE(accountant.TryCharge(
      "census", PrivacyCharge::Gaussian(total_rho / k), &why));
  EXPECT_NE(why.find("budget exceeded"), std::string::npos);
  EXPECT_EQ(accountant.NumCharges("census"), k);
}

TEST(AccountantZCdp, ReportsBunSteinkeEpsilon) {
  BudgetAccountant accountant(ZCdpOptions(1.0));
  EXPECT_TRUE(accountant.TryCharge("d", PrivacyCharge::Gaussian(0.25)));
  // eps = rho + 2 sqrt(rho ln(1/delta)), the Bun-Steinke closed form.
  const double expected = 0.25 + 2.0 * std::sqrt(0.25 * std::log(1e6));
  EXPECT_NEAR(accountant.ReportedEpsilon("d"), expected, 1e-12);
  EXPECT_NEAR(accountant.ReportedEpsilon("unknown"), 0.0, 1e-15);
  EXPECT_NEAR(accountant.total_epsilon(), RhoToEpsilon(1.0, 1e-6), 1e-12);
}

TEST(AccountantZCdp, LaplaceChargesCostEpsilonSquaredOverTwo) {
  // Pure eps-DP => (eps^2/2)-zCDP: a Laplace measurement is accountable in
  // the zCDP regime, at quadratic cost.
  BudgetAccountant accountant(ZCdpOptions(1.0));
  EXPECT_TRUE(accountant.TryCharge("d", PrivacyCharge::Laplace(1.0)));
  EXPECT_NEAR(accountant.Spent("d"), 0.5, 1e-15);
  EXPECT_TRUE(accountant.TryCharge("d", 0.5));  // Shorthand overload.
  EXPECT_NEAR(accountant.Spent("d"), 0.625, 1e-15);
}

TEST(AccountantZCdp, CeilingDerivedFromEpsilonDelta) {
  // total_rho == 0: the rho ceiling is the Bun-Steinke inverse of
  // (total_epsilon, delta) — spending it all reports exactly total_epsilon.
  BudgetAccountantOptions options;
  options.regime = BudgetRegime::kZCdp;
  options.total_epsilon = 2.0;
  options.delta = 1e-9;
  BudgetAccountant accountant(options);
  EXPECT_NEAR(accountant.TotalBudget(), RhoFromEpsilonDelta(2.0, 1e-9),
              1e-15);
  EXPECT_TRUE(accountant.TryCharge(
      "d", PrivacyCharge::Gaussian(accountant.TotalBudget())));
  EXPECT_NEAR(accountant.ReportedEpsilon("d"), 2.0, 1e-9);
  EXPECT_FALSE(accountant.TryCharge("d", PrivacyCharge::Gaussian(1e-6)));
}

TEST(AccountantZCdp, PureRegimeRefusesGaussianCharges) {
  // A Gaussian release has no finite pure-eps cost: the pure regime must
  // refuse (softly — a serve-mode request must not abort the process), not
  // approximate.
  BudgetAccountant accountant(1.0);
  std::string why;
  EXPECT_FALSE(accountant.TryCharge("d", PrivacyCharge::Gaussian(0.1), &why));
  EXPECT_NE(why.find("zcdp"), std::string::npos);
  EXPECT_EQ(accountant.Spent("d"), 0.0);
  EXPECT_EQ(accountant.NumCharges("d"), 0);
}

// --- Ledger v2: durability, migration, locking -------------------------------

std::string LedgerPathIn(const std::string& name) {
  const std::string dir = FreshDir(name);
  std::filesystem::create_directories(dir);
  return dir + "/budget.ledger";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AccountantLedger, V2RecordsMechanismAndRoundTrips) {
  const std::string path = LedgerPathIn("ledger_v2");
  {
    BudgetAccountant accountant(ZCdpOptions(1.0, path));
    EXPECT_TRUE(accountant.TryCharge("census data.csv",
                                     PrivacyCharge::Gaussian(0.25)));
    EXPECT_TRUE(accountant.TryCharge("census data.csv",
                                     PrivacyCharge::Laplace(0.5)));
  }
  const std::string content = ReadFile(path);
  EXPECT_EQ(content.rfind("hdmm-budget-ledger v2\n", 0), 0u) << content;
  EXPECT_NE(content.find("gaussian 0.25"), std::string::npos) << content;
  EXPECT_NE(content.find("laplace 0.5"), std::string::npos) << content;

  BudgetAccountant restarted(ZCdpOptions(1.0, path));
  EXPECT_NEAR(restarted.Spent("census data.csv"), 0.25 + 0.125, 1e-15);
  EXPECT_EQ(restarted.NumCharges("census data.csv"), 2);
}

TEST(AccountantLedger, V1LedgerReplaysAndMigratesToV2) {
  const std::string path = LedgerPathIn("ledger_v1_migrate");
  {
    std::ofstream out(path);
    out << "0.25 census data.csv\n0.5 census data.csv\n0.1 other\n";
  }
  // The v2 reader replays headerless v1 content as pure-eps charges...
  BudgetAccountant accountant(1.0, path);
  EXPECT_NEAR(accountant.Spent("census data.csv"), 0.75, 1e-15);
  EXPECT_EQ(accountant.NumCharges("census data.csv"), 2);
  EXPECT_NEAR(accountant.Spent("other"), 0.1, 1e-15);
  // ...and migrates the file to v2 in place.
  const std::string content = ReadFile(path);
  EXPECT_EQ(content.rfind("hdmm-budget-ledger v2\n", 0), 0u) << content;
  EXPECT_NE(content.find("laplace 0.25 0 census data.csv"),
            std::string::npos)
      << content;
  EXPECT_TRUE(accountant.TryCharge("census data.csv", 0.25));
  EXPECT_FALSE(accountant.TryCharge("census data.csv", 0.01));
}

TEST(AccountantLedger, TruncatedFinalLineIsCrashReplaySafe) {
  // A torn final record without a trailing newline is the signature of a
  // crash mid-append; by durable-before-spendable its charge was never
  // acted on, so replay drops it — and only it — and truncates the tail so
  // subsequent appends land on a record boundary.
  const std::string path = LedgerPathIn("ledger_torn");
  {
    std::ofstream out(path, std::ios::binary);
    out << "hdmm-budget-ledger v2\n"
        << "laplace 0.25 0 census.csv\n"
        << "gaussian 0.125 1e-";  // Torn mid-write: no newline.
  }
  {
    BudgetAccountant accountant(ZCdpOptions(1.0, path));
    EXPECT_NEAR(accountant.Spent("census.csv"), 0.03125, 1e-15);  // eps^2/2.
    EXPECT_EQ(accountant.NumCharges("census.csv"), 1);
    EXPECT_TRUE(accountant.TryCharge("census.csv",
                                     PrivacyCharge::Gaussian(0.25)));
    const std::string content = ReadFile(path);
    EXPECT_EQ(content.find("1e-"), std::string::npos) << content;
  }

  BudgetAccountant restarted(ZCdpOptions(1.0, path));
  EXPECT_NEAR(restarted.Spent("census.csv"), 0.28125, 1e-12);
  EXPECT_EQ(restarted.NumCharges("census.csv"), 2);
}

TEST(AccountantLedgerDeath, InteriorCorruptionStillDies) {
  // The torn-tail tolerance must not soften interior corruption: a
  // malformed line *followed by* valid records (or with its newline intact)
  // is not a crash artifact and must abort.
  const std::string path = LedgerPathIn("ledger_interior_corrupt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "hdmm-budget-ledger v2\n"
        << "garbage not-a-record\n"
        << "laplace 0.25 0 census.csv\n";
  }
  EXPECT_DEATH(BudgetAccountant(1.0, path), "malformed budget ledger");
}

TEST(AccountantLedgerDeath, GaussianHistoryNeedsZCdpRegime) {
  // Replaying Gaussian charges under a pure-eps accountant would silently
  // drop spend from the ledger — a configuration error that must abort.
  const std::string path = LedgerPathIn("ledger_regime_mismatch");
  {
    BudgetAccountant accountant(ZCdpOptions(1.0, path));
    EXPECT_TRUE(accountant.TryCharge("d", PrivacyCharge::Gaussian(0.25)));
  }
  EXPECT_DEATH(BudgetAccountant(1.0, path), "zcdp");
}

TEST(AccountantLedgerDeath, FlockExcludesSecondAccountant) {
  // Two accountants replaying one ledger would each see only the
  // pre-existing spend and could jointly spend up to twice the ceiling; the
  // flock makes the second one die instead of double-spending.
  const std::string path = LedgerPathIn("ledger_flock");
  BudgetAccountant first(1.0, path);
  EXPECT_TRUE(first.TryCharge("census", 0.6));
  // Short lock timeout: the lock is held for the whole test, so the default
  // backoff window would only slow the death down.
  BudgetAccountantOptions contended;
  contended.total_epsilon = 1.0;
  contended.ledger_path = path;
  contended.lock_timeout_ms = 50;
  EXPECT_DEATH(BudgetAccountant{contended}, "locked by another");
  // The budget stays jointly bounded: only the lock holder can spend.
  EXPECT_TRUE(first.TryCharge("census", 0.4));
  EXPECT_FALSE(first.TryCharge("census", 0.1));
}

TEST(AccountantLedger, FlockReleasedOnDestruction) {
  const std::string path = LedgerPathIn("ledger_flock_release");
  {
    BudgetAccountant first(1.0, path);
    EXPECT_TRUE(first.TryCharge("census", 0.6));
  }
  BudgetAccountant second(1.0, path);  // Lock released: no death.
  EXPECT_NEAR(second.Spent("census"), 0.6, 1e-15);
  EXPECT_FALSE(second.TryCharge("census", 0.5));
}

// --- Laplace measurement validation ------------------------------------------

TEST(MeasureDeath, RejectsNonFiniteEpsilonAndSensitivity) {
  ExplicitStrategy s(IdentityBlock(4), "id");
  Vector x{1.0, 2.0, 3.0, 4.0};
  Rng rng(1);
  EXPECT_DEATH(s.Measure(x, 0.0, &rng), "epsilon");
  EXPECT_DEATH(s.Measure(x, std::nan(""), &rng), "epsilon");
  EXPECT_DEATH(s.Measure(x, std::numeric_limits<double>::infinity(), &rng),
               "epsilon");
  EXPECT_DEATH(LaplaceScale(1.0, -1.0), "epsilon");
  EXPECT_DEATH(LaplaceScale(0.0, 1.0), "sensitivity");
  EXPECT_DEATH(LaplaceScale(std::nan(""), 1.0), "sensitivity");
  EXPECT_EQ(LaplaceScale(2.0, 0.5), 4.0);
}

// --- Queries and sessions ----------------------------------------------------

TEST(Queries, ParseQueryLineForms) {
  Domain d({"sex", "age"}, {2, 8});
  BoxQuery q;
  std::string error;

  ASSERT_TRUE(ParseQueryLine("point sex=1 age=3", d, &q, &error)) << error;
  EXPECT_EQ(q.lo, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(q.hi, (std::vector<int64_t>{1, 3}));

  ASSERT_TRUE(ParseQueryLine("marginal sex=0", d, &q, &error)) << error;
  EXPECT_EQ(q.lo, (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(q.hi, (std::vector<int64_t>{0, 7}));

  ASSERT_TRUE(ParseQueryLine("range age=2:5", d, &q, &error)) << error;
  EXPECT_EQ(q.lo, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(q.hi, (std::vector<int64_t>{1, 5}));

  // Unnamed domains accept zero-based attribute indices...
  Domain unnamed({2, 8});
  ASSERT_TRUE(ParseQueryLine("range 1=2:5", unnamed, &q, &error)) << error;
  EXPECT_EQ(q.lo, (std::vector<int64_t>{0, 2}));
  // ...but named schemas reject bare indices: positions silently shift when
  // the schema changes, and a wrong answer is worse than a rejected query.
  EXPECT_FALSE(ParseQueryLine("range 1=2:5", d, &q, &error));
  EXPECT_NE(error.find("unknown attribute"), std::string::npos);
}

TEST(Queries, ParseQueryLineRejections) {
  Domain d({"sex", "age"}, {2, 8});
  BoxQuery q;
  std::string error;
  EXPECT_FALSE(ParseQueryLine("point sex=1", d, &q, &error));
  EXPECT_NE(error.find("every attribute"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("marginal height=1", d, &q, &error));
  EXPECT_NE(error.find("unknown attribute"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("marginal age=9", d, &q, &error));
  EXPECT_NE(error.find("outside"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("marginal age=2:5", d, &q, &error));
  EXPECT_NE(error.find("single value"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("sum age=1", d, &q, &error));
  EXPECT_NE(error.find("unknown query kind"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("marginal age=1 age=2", d, &q, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
  EXPECT_FALSE(ParseQueryLine("marginal", d, &q, &error));
  EXPECT_NE(error.find("binds no attributes"), std::string::npos);
}

// Brute-force box sum for cross-checking the summed-area table.
double BruteForceBox(const Domain& d, const Vector& x, const BoxQuery& q) {
  double total = 0.0;
  for (int64_t i = 0; i < d.TotalSize(); ++i) {
    const std::vector<int64_t> coords = d.Unflatten(i);
    bool inside = true;
    for (size_t a = 0; a < coords.size(); ++a) {
      if (coords[a] < q.lo[a] || coords[a] > q.hi[a]) inside = false;
    }
    if (inside) total += x[static_cast<size_t>(i)];
  }
  return total;
}

TEST(Session, AnswersMatchBruteForce) {
  Domain d({3, 4, 5});
  Rng rng(23);
  Vector x(static_cast<size_t>(d.TotalSize()));
  for (double& v : x) v = rng.Uniform(-1.0, 3.0);
  MeasurementSession session(d, x, 1.0, nullptr);

  Rng qrng(29);
  for (int trial = 0; trial < 200; ++trial) {
    BoxQuery q = FullRangeQuery(d);
    for (int a = 0; a < d.NumAttributes(); ++a) {
      const int64_t n = d.AttributeSize(a);
      int64_t lo = static_cast<int64_t>(qrng.Uniform(0.0, double(n)));
      int64_t hi = static_cast<int64_t>(qrng.Uniform(0.0, double(n)));
      if (lo > hi) std::swap(lo, hi);
      q.lo[static_cast<size_t>(a)] = lo;
      q.hi[static_cast<size_t>(a)] = hi;
    }
    EXPECT_NEAR(session.Answer(q), BruteForceBox(d, x, q), 1e-9)
        << "trial " << trial;
  }
}

TEST(Session, BatchMatchesSingleAnswers) {
  Domain d({4, 6});
  Rng rng(31);
  Vector x(static_cast<size_t>(d.TotalSize()));
  for (double& v : x) v = rng.Uniform(0.0, 10.0);
  MeasurementSession session(d, x, 0.5, nullptr);

  std::vector<BoxQuery> queries;
  for (int64_t a = 0; a < 4; ++a) {
    for (int64_t b = 0; b < 6; ++b) {
      queries.push_back(BoxQuery{{a, 0}, {a, b}});
    }
  }
  const Vector batch = session.AnswerBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], session.Answer(queries[i])) << "query " << i;
  }
}

// --- Engine ------------------------------------------------------------------

EngineOptions FastEngineOptions(const std::string& cache_dir = "") {
  EngineOptions options;
  options.optimizer.restarts = 1;
  options.optimizer.seed = 5;
  options.cache.disk_dir = cache_dir;
  options.total_epsilon = 1.0;
  return options;
}

TEST(Engine, PlanCachesAcrossCallsAndRestarts) {
  const std::string dir = FreshDir("engine_plan");
  UnionWorkload w = SmallWorkload();

  Engine engine(FastEngineOptions(dir));
  PlanResult cold = engine.Plan(w);
  ASSERT_NE(cold.strategy, nullptr);
  EXPECT_EQ(cold.source, PlanSource::kOptimized);

  PlanResult warm = engine.Plan(w);
  EXPECT_EQ(warm.source, PlanSource::kMemoryCache);
  EXPECT_EQ(warm.strategy.get(), cold.strategy.get());
  EXPECT_EQ(warm.fingerprint.value, cold.fingerprint.value);

  // A second engine over the same directory plans from disk.
  Engine restarted(FastEngineOptions(dir));
  PlanResult from_disk = restarted.Plan(w);
  EXPECT_EQ(from_disk.source, PlanSource::kDiskCache);
  EXPECT_EQ(SerializeStrategy(*from_disk.strategy),
            SerializeStrategy(*cold.strategy));
}

TEST(Engine, PlanTreatsWrongDomainCacheEntryAsMiss) {
  // A stale or foreign cache entry (copied directory, hand-placed file)
  // whose domain does not match must be re-optimized over, not served — and
  // certainly not allowed to abort Measure deep inside Strategy::Apply.
  UnionWorkload w = SmallWorkload();
  EngineOptions options = FastEngineOptions();
  Engine engine(options);
  const Fingerprint fp = FingerprintPlan(w, options.optimizer);
  engine.cache().Put(fp, std::make_shared<ExplicitStrategy>(
                             PrefixBlock(3), "foreign"));  // Domain 3 != 16.
  PlanResult plan = engine.Plan(w);
  ASSERT_NE(plan.strategy, nullptr);
  EXPECT_EQ(plan.source, PlanSource::kOptimized);
  EXPECT_EQ(plan.strategy->DomainSize(), w.DomainSize());
  // The bad entry was overwritten: the next plan is a healthy cache hit.
  PlanResult again = engine.Plan(w);
  EXPECT_EQ(again.source, PlanSource::kMemoryCache);
  EXPECT_EQ(again.strategy->DomainSize(), w.DomainSize());
}

TEST(Engine, PlanSurfacesDiskWriteFailure) {
  EngineOptions options = FastEngineOptions();
  // A file where the cache directory should be: create_directories fails.
  const std::string bogus = ::testing::TempDir() + "/engine_not_a_dir";
  std::filesystem::remove_all(bogus);
  { std::ofstream out(bogus); out << "occupied"; }
  options.cache.disk_dir = bogus + "/cache";
  Engine engine(options);
  PlanResult plan = engine.Plan(SmallWorkload());
  ASSERT_NE(plan.strategy, nullptr);  // The plan itself still serves.
  EXPECT_EQ(plan.source, PlanSource::kOptimized);
  EXPECT_FALSE(plan.cache_error.empty());
}

TEST(Engine, BudgetLedgerPersistsAcrossEngines) {
  const std::string dir = FreshDir("engine_ledger");
  std::filesystem::create_directories(dir);
  EngineOptions options = FastEngineOptions(dir);
  options.ledger_path = dir + "/budget.ledger";
  UnionWorkload w = SmallWorkload();
  Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
  std::string error;
  {
    Engine engine(options);
    Rng rng(51);
    ASSERT_NE(engine.Measure(w, "d.csv", x, 0.8, &rng, &error), nullptr)
        << error;
  }
  Engine restarted(options);
  EXPECT_NEAR(restarted.accountant().Spent("d.csv"), 0.8, 1e-15);
  Rng rng(52);
  EXPECT_EQ(restarted.Measure(w, "d.csv", x, 0.5, &rng, &error), nullptr);
  EXPECT_NE(error.find("budget exceeded"), std::string::npos);
}

TEST(Engine, MeasureChargesAndRefuses) {
  UnionWorkload w = SmallWorkload();
  Engine engine(FastEngineOptions());
  Vector x(static_cast<size_t>(w.DomainSize()), 2.0);
  Rng rng(41);

  std::string error;
  auto first = engine.Measure(w, "census", x, 0.7, &rng, &error);
  ASSERT_NE(first, nullptr) << error;
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.7, 1e-15);

  auto refused = engine.Measure(w, "census", x, 0.5, &rng, &error);
  EXPECT_EQ(refused, nullptr);
  EXPECT_NE(error.find("budget exceeded"), std::string::npos);
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.7, 1e-15);

  auto second = engine.Measure(w, "census", x, 0.3, &rng, &error);
  ASSERT_NE(second, nullptr) << error;
  EXPECT_EQ(engine.accountant().Remaining("census"), 0.0);
}

TEST(Engine, PerDatasetBudgetOverridesGateMeasure) {
  UnionWorkload w = SmallWorkload();
  EngineOptions options = FastEngineOptions();  // total_epsilon = 1.0.
  options.dataset_budgets["sensitive.csv"] = 0.4;
  Engine engine(options);
  Vector x(static_cast<size_t>(w.DomainSize()), 2.0);
  Rng rng(43);

  // 0.6 fits the fleet-wide ceiling but not the override.
  std::string error;
  auto refused = engine.Measure(w, "sensitive.csv", x, 0.6, &rng, &error);
  EXPECT_EQ(refused, nullptr);
  EXPECT_NE(error.find("budget exceeded"), std::string::npos);
  EXPECT_EQ(engine.accountant().Spent("sensitive.csv"), 0.0);

  auto allowed = engine.Measure(w, "other.csv", x, 0.6, &rng, &error);
  ASSERT_NE(allowed, nullptr) << error;

  auto under = engine.Measure(w, "sensitive.csv", x, 0.4, &rng, &error);
  ASSERT_NE(under, nullptr) << error;
  EXPECT_EQ(engine.accountant().Remaining("sensitive.csv"), 0.0);
  EXPECT_NEAR(engine.accountant().Remaining("other.csv"), 0.4, 1e-15);
}

TEST(Engine, PerDatasetBudgetOverridesConvertUnderZCdp) {
  // Engine overrides are epsilon ceilings; under zcdp they must arrive at
  // the accountant as the Bun-Steinke rho, same as total_epsilon does.
  EngineOptions options = FastEngineOptions();
  options.regime = BudgetRegime::kZCdp;
  options.total_epsilon = 2.0;
  options.delta = 1e-9;
  options.dataset_budgets["tight"] = 0.5;
  Engine engine(options);
  EXPECT_NEAR(engine.accountant().TotalBudget("tight"),
              RhoFromEpsilonDelta(0.5, 1e-9), 1e-15);
  EXPECT_NEAR(engine.accountant().TotalBudget("other"),
              RhoFromEpsilonDelta(2.0, 1e-9), 1e-15);
}

TEST(Engine, SessionAnswersApproximateTruthAtHighEpsilon) {
  // With epsilon large the noise is negligible, so session answers must be
  // close to the true box sums — this checks the whole path: plan, measure,
  // reconstruct, summed-area table, batched answering.
  UnionWorkload w = SmallWorkload();
  EngineOptions options = FastEngineOptions();
  options.total_epsilon = 2e6;
  Engine engine(options);
  Rng rng(43);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 20.0));

  std::string error;
  auto session = engine.Measure(w, "d", x, 1e6, &rng, &error);
  ASSERT_NE(session, nullptr) << error;

  std::vector<BoxQuery> queries;
  std::string parse_error;
  BoxQuery q;
  ASSERT_TRUE(ParseQueryLine("point sex=1 age=3", w.domain(), &q,
                             &parse_error));
  queries.push_back(q);
  ASSERT_TRUE(ParseQueryLine("marginal sex=0", w.domain(), &q, &parse_error));
  queries.push_back(q);
  ASSERT_TRUE(ParseQueryLine("range age=2:6", w.domain(), &q, &parse_error));
  queries.push_back(q);

  const Vector answers = session->AnswerBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(answers[i], BruteForceBox(w.domain(), x, queries[i]), 0.05)
        << "query " << i;
  }
}

TEST(Engine, ExplicitStrategyReconstructionReusesCholesky) {
  // An explicit-strategy plan goes through the engine's normal-equations
  // path; answers must match the strategy's own pinv reconstruction.
  UnionWorkload w = ParseWorkloadOrDie("domain x=6\nproduct x=prefix\n");
  EngineOptions options = FastEngineOptions();
  options.total_epsilon = 4e6;
  Engine engine(options);

  // Seed the cache with an explicit strategy under this plan's fingerprint
  // so Plan() returns it.
  const Fingerprint fp = FingerprintPlan(w, options.optimizer);
  auto explicit_strategy =
      std::make_shared<ExplicitStrategy>(PrefixBlock(6), "explicit-prefix");
  engine.cache().Put(fp, explicit_strategy);

  Rng rng(47);
  Vector x{5.0, 3.0, 8.0, 1.0, 0.0, 2.0};
  std::string error;
  auto s1 = engine.Measure(w, "d", x, 1e6, &rng, &error);
  ASSERT_NE(s1, nullptr) << error;
  auto s2 = engine.Measure(w, "d", x, 1e6, &rng, &error);  // Reuses factor.
  ASSERT_NE(s2, nullptr) << error;
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s1->XHat()[i], x[i], 1e-3);
    EXPECT_NEAR(s2->XHat()[i], x[i], 1e-3);
  }
}

// --- Gaussian measurement and marginal-table sessions ------------------------

EngineOptions ZCdpEngineOptions(double total_rho) {
  EngineOptions options;
  options.optimizer.restarts = 1;
  options.optimizer.seed = 5;
  options.regime = BudgetRegime::kZCdp;
  options.total_rho = total_rho;
  options.delta = 1e-6;
  return options;
}

TEST(Engine, GaussianMeasureChargesRhoAndRefusesOverBudget) {
  UnionWorkload w = SmallWorkload();
  Engine engine(ZCdpEngineOptions(1.0));
  Vector x(static_cast<size_t>(w.DomainSize()), 2.0);
  Rng rng(61);

  std::string error;
  auto first = engine.Measure(w, "census", x, MeasureRequest::Gaussian(0.7),
                              &rng, &error);
  ASSERT_NE(first, nullptr) << error;
  EXPECT_EQ(first->mechanism(), Mechanism::kGaussian);
  EXPECT_EQ(first->rho(), 0.7);
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.7, 1e-15);

  auto refused = engine.Measure(w, "census", x, MeasureRequest::Gaussian(0.5),
                                &rng, &error);
  EXPECT_EQ(refused, nullptr);
  EXPECT_NE(error.find("budget exceeded"), std::string::npos);
  EXPECT_NEAR(engine.accountant().Spent("census"), 0.7, 1e-15);

  auto second = engine.Measure(w, "census", x, MeasureRequest::Gaussian(0.3),
                               &rng, &error);
  ASSERT_NE(second, nullptr) << error;
  EXPECT_EQ(engine.accountant().Remaining("census"), 0.0);
}

TEST(Engine, GaussianMeasureRefusedInPureRegimeWithoutNoise) {
  UnionWorkload w = SmallWorkload();
  Engine engine(FastEngineOptions());  // Pure-dp regime.
  Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
  Rng rng(62);
  std::string error;
  auto refused = engine.Measure(w, "d", x, MeasureRequest::Gaussian(0.5),
                                &rng, &error);
  EXPECT_EQ(refused, nullptr);
  EXPECT_NE(error.find("zcdp"), std::string::npos);
  EXPECT_EQ(engine.accountant().Spent("d"), 0.0);
}

TEST(Engine, GaussianSessionAnswersApproximateTruthAtHighRho) {
  // End-to-end zCDP path: plan, rho-charge, Gaussian measure, reconstruct,
  // answer. At huge rho the noise is negligible.
  UnionWorkload w = SmallWorkload();
  Engine engine(ZCdpEngineOptions(2e12));
  Rng rng(63);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 20.0));

  std::string error;
  auto session = engine.Measure(w, "d", x, MeasureRequest::Gaussian(1e12),
                                &rng, &error);
  ASSERT_NE(session, nullptr) << error;

  std::vector<BoxQuery> queries;
  std::string parse_error;
  BoxQuery q;
  ASSERT_TRUE(ParseQueryLine("point sex=1 age=3", w.domain(), &q,
                             &parse_error));
  queries.push_back(q);
  ASSERT_TRUE(ParseQueryLine("marginal sex=0", w.domain(), &q, &parse_error));
  queries.push_back(q);
  ASSERT_TRUE(ParseQueryLine("range age=2:6", w.domain(), &q, &parse_error));
  queries.push_back(q);

  const Vector answers = session->AnswerBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(answers[i], BruteForceBox(w.domain(), x, queries[i]), 0.05)
        << "query " << i;
  }
}

// A marginals strategy over both attributes plus each one-way marginal, so
// marginal queries are covered by measured tables.
std::shared_ptr<const MarginalsStrategy> TwoAttributeMarginals(
    const Domain& domain) {
  Vector theta(4, 0.0);
  theta[1] = 1.0;  // attr 0 marginal.
  theta[2] = 1.0;  // attr 1 marginal.
  theta[3] = 1.0;  // Two-way (full) table.
  return std::make_shared<MarginalsStrategy>(domain, theta, "marginals");
}

TEST(Engine, MarginalsSessionServesMarginalsFromMeasuredTables) {
  UnionWorkload w = SmallWorkload();
  EngineOptions options = ZCdpEngineOptions(4e12);
  Engine engine(options);
  // Pin the plan to a marginals strategy so Measure builds a
  // marginal-table session.
  const Fingerprint fp = FingerprintPlan(w, options.optimizer);
  engine.cache().Put(fp, TwoAttributeMarginals(w.domain()));

  Rng rng(67);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 30.0));
  std::string error;
  auto session = engine.Measure(w, "d", x, MeasureRequest::Gaussian(1e12),
                                &rng, &error);
  ASSERT_NE(session, nullptr) << error;
  ASSERT_EQ(session->marginal_tables().size(), 3u);

  // Marginal queries are covered by the measured tables and answered from
  // them directly — within noise tolerance of the truth.
  std::string parse_error;
  BoxQuery q;
  ASSERT_TRUE(ParseQueryLine("marginal sex=1", w.domain(), &q, &parse_error));
  EXPECT_TRUE(session->CoveredByMarginal(q));
  EXPECT_NEAR(session->Answer(q), BruteForceBox(w.domain(), x, q), 0.05);

  ASSERT_TRUE(ParseQueryLine("marginal age=5", w.domain(), &q, &parse_error));
  EXPECT_TRUE(session->CoveredByMarginal(q));
  EXPECT_NEAR(session->Answer(q), BruteForceBox(w.domain(), x, q), 0.05);

  ASSERT_TRUE(ParseQueryLine("point sex=0 age=2", w.domain(), &q,
                             &parse_error));
  EXPECT_TRUE(session->CoveredByMarginal(q));
  EXPECT_NEAR(session->Answer(q), BruteForceBox(w.domain(), x, q), 0.05);

  // Range queries over a strict sub-range are covered too (the covering
  // table is summed over the sub-box).
  ASSERT_TRUE(ParseQueryLine("range age=2:6", w.domain(), &q, &parse_error));
  EXPECT_NEAR(session->Answer(q), BruteForceBox(w.domain(), x, q), 0.1);
}

TEST(Engine, MarginalsSessionLazilyMaterializesXHat) {
  // A marginals session defers full-domain reconstruction; XHat() (or an
  // uncovered query) triggers it lazily, and the materialized x_hat agrees
  // with the truth at negligible noise. Queries keep working afterwards.
  UnionWorkload w = SmallWorkload();
  EngineOptions options = ZCdpEngineOptions(4e12);
  Engine engine(options);
  const Fingerprint fp = FingerprintPlan(w, options.optimizer);
  engine.cache().Put(fp, TwoAttributeMarginals(w.domain()));

  Rng rng(71);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (double& v : x) v = std::floor(rng.Uniform(0.0, 30.0));
  std::string error;
  auto session = engine.Measure(w, "d", x, MeasureRequest::Gaussian(1e12),
                                &rng, &error);
  ASSERT_NE(session, nullptr) << error;

  const Vector& x_hat = session->XHat();
  ASSERT_EQ(x_hat.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x_hat[i], x[i], 0.05) << "cell " << i;
  }
  std::string parse_error;
  BoxQuery q;
  ASSERT_TRUE(ParseQueryLine("marginal age=3", w.domain(), &q, &parse_error));
  EXPECT_NEAR(session->Answer(q), BruteForceBox(w.domain(), x, q), 0.05);
}

TEST(Session, UncoveredQueryFallsBackToSummedAreaTable) {
  // A session whose measured marginals do not cover a query must fall back
  // to the summed-area path. Built directly (no engine) with a one-way-only
  // strategy: the point query constrains both attributes and is uncovered —
  // coverage detection is what routes it away from the tables.
  Domain d({"a", "b"}, {2, 3});
  Vector theta(4, 0.0);
  theta[1] = 1.0;  // attr a marginal.
  theta[2] = 1.0;  // attr b marginal.
  auto one_way = std::make_shared<MarginalsStrategy>(d, theta, "one-way");
  Vector x{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const Vector y = one_way->Apply(x);  // Noiseless: tables are exact.
  MeasurementSession session(d, one_way, y, PrivacyCharge::Gaussian(1.0));
  ASSERT_EQ(session.marginal_tables().size(), 2u);

  BoxQuery covered;
  std::string parse_error;
  ASSERT_TRUE(ParseQueryLine("marginal a=1", d, &covered, &parse_error));
  EXPECT_TRUE(session.CoveredByMarginal(covered));
  EXPECT_NEAR(session.Answer(covered), 1.0 + 5.0 + 9.0, 1e-9);

  BoxQuery uncovered;
  ASSERT_TRUE(ParseQueryLine("point a=1 b=2", d, &uncovered, &parse_error));
  EXPECT_FALSE(session.CoveredByMarginal(uncovered));
}

TEST(Engine, ZCdpLedgerPersistsGaussianChargesAcrossEngines) {
  const std::string dir = FreshDir("engine_zcdp_ledger");
  std::filesystem::create_directories(dir);
  EngineOptions options = ZCdpEngineOptions(1.0);
  options.cache.disk_dir = dir;
  options.ledger_path = dir + "/budget.ledger";
  UnionWorkload w = SmallWorkload();
  Vector x(static_cast<size_t>(w.DomainSize()), 1.0);
  std::string error;
  {
    Engine engine(options);
    Rng rng(73);
    ASSERT_NE(engine.Measure(w, "d.csv", x, MeasureRequest::Gaussian(0.8),
                             &rng, &error),
              nullptr)
        << error;
  }
  Engine restarted(options);
  EXPECT_NEAR(restarted.accountant().Spent("d.csv"), 0.8, 1e-15);
  Rng rng(74);
  EXPECT_EQ(restarted.Measure(w, "d.csv", x, MeasureRequest::Gaussian(0.5),
                              &rng, &error),
            nullptr);
  EXPECT_NE(error.find("budget exceeded"), std::string::npos);
}

}  // namespace
}  // namespace hdmm
