#include "core/svd_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hdmm.h"
#include "core/opt0.h"
#include "linalg/svd.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

TEST(SvdBound, IdentityWorkloadBoundIsTight) {
  // W = I_n: every singular value is 1, so the bound is n^2 / n = n, and the
  // identity strategy achieves exactly ||I||_1^2 ||I I^+||_F^2 = n.
  for (int64_t n : {2, 5, 16}) {
    UnionWorkload w = MakeProductWorkload(Domain({n}), {IdentityBlock(n)});
    EXPECT_NEAR(SquaredErrorLowerBound(w), static_cast<double>(n), 1e-9);
    ExplicitStrategy identity(IdentityBlock(n));
    EXPECT_NEAR(OptimalityRatio(identity, w), 1.0, 1e-9);
  }
}

TEST(SvdBound, TotalWorkloadBoundIsTight) {
  // W = Total (1 x n): sigma = sqrt(n), bound = n / n = 1, achieved by the
  // Total strategy itself.
  const int64_t n = 12;
  UnionWorkload w = MakeProductWorkload(Domain({n}), {TotalBlock(n)});
  EXPECT_NEAR(SquaredErrorLowerBound(w), 1.0, 1e-9);
  ExplicitStrategy total(TotalBlock(n));
  EXPECT_NEAR(OptimalityRatio(total, w), 1.0, 1e-9);
}

TEST(SvdBound, SingleProductMatchesExplicitNuclearNorm) {
  // The implicit product path (factor nuclear norms multiplied) must agree
  // with the nuclear norm of the expanded matrix.
  Domain d({4, 5});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(4), AllRangeBlock(5)},
                                        /*weight=*/1.7);
  const double implicit = WorkloadNuclearNorm(w);
  const double explicit_norm = NuclearNorm(w.Explicit());
  EXPECT_NEAR(implicit, explicit_norm, 1e-8 * explicit_norm);
}

TEST(SvdBound, UnionMatchesExplicitNuclearNorm) {
  Domain d({3, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(3), IdentityBlock(4)};
  p1.weight = 1.0;
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {IdentityBlock(3), PrefixBlock(4)};
  p2.weight = 2.0;
  w.AddProduct(p2);

  const double via_gram = WorkloadNuclearNorm(w);
  const double explicit_norm = NuclearNorm(w.Explicit());
  EXPECT_NEAR(via_gram, explicit_norm, 1e-7 * explicit_norm);
}

TEST(SvdBound, ScalesQuadraticallyWithWeight) {
  Domain d({6});
  UnionWorkload w1 = MakeProductWorkload(d, {PrefixBlock(6)}, 1.0);
  UnionWorkload w3 = MakeProductWorkload(d, {PrefixBlock(6)}, 3.0);
  EXPECT_NEAR(SquaredErrorLowerBound(w3), 9.0 * SquaredErrorLowerBound(w1),
              1e-9);
}

TEST(SvdBound, EpsilonScaling) {
  UnionWorkload w = MakeProductWorkload(Domain({8}), {PrefixBlock(8)});
  const double at_1 = TotalSquaredErrorLowerBound(w, 1.0);
  const double at_2 = TotalSquaredErrorLowerBound(w, 2.0);
  EXPECT_NEAR(at_1, 4.0 * at_2, 1e-9 * at_1);
}

// Every strategy must sit above the bound: sweep strategies and workloads.
class BoundDominanceTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(BoundDominanceTest, AllStrategiesAboveBound) {
  const int64_t n = GetParam();
  UnionWorkload range = MakeProductWorkload(Domain({n}), {AllRangeBlock(n)});
  UnionWorkload prefix = MakeProductWorkload(Domain({n}), {PrefixBlock(n)});

  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(std::make_unique<ExplicitStrategy>(IdentityBlock(n)));
  strategies.push_back(std::make_unique<ExplicitStrategy>(PrefixBlock(n)));
  strategies.push_back(std::make_unique<ExplicitStrategy>(HaarBlock(n)));
  strategies.push_back(
      std::make_unique<ExplicitStrategy>(HierarchicalBlock(n, 4)));

  for (const auto& s : strategies) {
    EXPECT_GE(OptimalityRatio(*s, range), 1.0 - 1e-9) << s->Name();
    EXPECT_GE(OptimalityRatio(*s, prefix), 1.0 - 1e-9) << s->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoundDominanceTest,
                         ::testing::Values(8, 16, 32));

TEST(SvdBound, HdmmStrategyIsAboveBoundAndReasonablyClose) {
  // The optimized strategy must respect the bound, and on AllRange the gap
  // should be modest (the bench quantifies it precisely).
  const int64_t n = 32;
  UnionWorkload w = MakeProductWorkload(Domain({n}), {AllRangeBlock(n)});
  HdmmOptions options;
  options.restarts = 2;
  options.seed = 7;
  HdmmResult result = OptimizeStrategy(w, options);
  const double ratio = OptimalityRatio(*result.strategy, w);
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LT(ratio, 3.0);
}

TEST(SvdBound, MarginalsWorkloadRespectsBound) {
  Domain d({3, 4, 2});
  UnionWorkload w = AllMarginals(d);
  MarginalsStrategy uniform(d, Vector(8, 1.0));
  EXPECT_GE(OptimalityRatio(uniform, w), 1.0 - 1e-9);
}

TEST(SvdBoundDeath, EmptyWorkload) {
  UnionWorkload w(Domain({4}));
  EXPECT_DEATH(WorkloadNuclearNorm(w), "empty workload");
}

TEST(SvdBoundDeath, UnionTooLargeForExplicitGram) {
  Domain d({64, 64});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(64), TotalBlock(64)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(64), PrefixBlock(64)};
  w.AddProduct(p2);
  // 4096^2 Gram cells > the 1024-cell cap passed here.
  EXPECT_DEATH(WorkloadNuclearNorm(w, /*max_explicit_cells=*/1024),
               "too large");
}

}  // namespace
}  // namespace hdmm
