#include "core/gram_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/building_blocks.h"
#include "workload/workload.h"

namespace hdmm {
namespace {

// Reverses the row order of a matrix (Grams are row-order invariant; the
// recognizer must be too).
Matrix ReversedRows(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i)
    for (int64_t j = 0; j < m.cols(); ++j) out(m.rows() - 1 - i, j) = m(i, j);
  return out;
}

TEST(GramCacheRecognize, ClosedFormsMatchSyrk) {
  const int64_t n = 17;
  struct Case {
    const char* name;
    Matrix factor;
  } cases[] = {
      {"identity", IdentityBlock(n)},
      {"total", TotalBlock(n)},
      {"prefix", PrefixBlock(n)},
      {"all-range", AllRangeBlock(n)},
      {"width-5", WidthRangeBlock(n, 5)},
  };
  for (const Case& c : cases) {
    Matrix recognized;
    ASSERT_TRUE(RecognizeClosedFormGram(c.factor, &recognized)) << c.name;
    EXPECT_LT(recognized.MaxAbsDiff(Gram(c.factor)), 1e-12) << c.name;
  }
}

TEST(GramCacheRecognize, RowOrderInvariant) {
  const int64_t n = 9;
  for (const Matrix& f :
       {PrefixBlock(n), AllRangeBlock(n), WidthRangeBlock(n, 3)}) {
    Matrix shuffled = ReversedRows(f);
    Matrix recognized;
    ASSERT_TRUE(RecognizeClosedFormGram(shuffled, &recognized));
    EXPECT_LT(recognized.MaxAbsDiff(Gram(shuffled)), 1e-12);
  }
}

TEST(GramCacheRecognize, RejectsNonBuildingBlocks) {
  Matrix gram;
  // Weighted entries are not a 0/1 building block.
  Matrix weighted = PrefixBlock(6);
  weighted.ScaleInPlace(2.0);
  EXPECT_FALSE(RecognizeClosedFormGram(weighted, &gram));
  // Two disjoint runs in one row.
  Matrix split(1, 5);
  split(0, 0) = 1.0;
  split(0, 3) = 1.0;
  EXPECT_FALSE(RecognizeClosedFormGram(split, &gram));
  // A duplicated interval cannot be AllRange even at the right row count.
  Matrix dup = AllRangeBlock(3);  // 6 x 3.
  for (int64_t j = 0; j < 3; ++j) dup(1, j) = dup(0, j);
  EXPECT_FALSE(RecognizeClosedFormGram(dup, &gram));
  // Random dense matrix.
  Rng rng(3);
  Matrix dense = Matrix::RandomUniform(4, 6, &rng);
  EXPECT_FALSE(RecognizeClosedFormGram(dense, &gram));
}

TEST(GramCacheRecognize, UnrecognizedStillComputedExactly) {
  // The cache must serve exact SYRK Grams for factors it cannot recognize.
  Rng rng(9);
  Matrix f = Matrix::RandomUniform(11, 7, &rng);
  GramCache cache;
  auto g = cache.FactorGram(f);
  EXPECT_LT(g->MaxAbsDiff(Gram(f)), 1e-12);
  EXPECT_EQ(cache.stats().closed_form, 0u);
}

TEST(GramCacheKeys, ContentIdentity) {
  Matrix a = PrefixBlock(8);
  Matrix b = PrefixBlock(8);
  Matrix c = PrefixBlock(9);
  EXPECT_EQ(GramCache::FactorKey(a), GramCache::FactorKey(b));
  EXPECT_NE(GramCache::FactorKey(a), GramCache::FactorKey(c));
  Matrix d = a;
  d(3, 2) += 1e-9;  // Any bit flip must change the key.
  EXPECT_NE(GramCache::FactorKey(a), GramCache::FactorKey(d));
  // Shape participates even when the flattened content matches.
  Matrix row(1, 4, {1.0, 1.0, 1.0, 1.0});
  Matrix col(4, 1, {1.0, 1.0, 1.0, 1.0});
  EXPECT_NE(GramCache::FactorKey(row), GramCache::FactorKey(col));
}

TEST(GramCache, HitsShareOneGram) {
  GramCache cache;
  Matrix f = PrefixBlock(12);
  auto first = cache.FactorGram(f);
  auto second = cache.FactorGram(Matrix(f));  // Equal content, new object.
  EXPECT_EQ(first.get(), second.get());
  GramCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.closed_form, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_doubles(), 12 * 12);
}

TEST(GramCache, ClearKeepsOutstandingGramsValid) {
  GramCache cache;
  auto g = cache.FactorGram(AllRangeBlock(6));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_LT(g->MaxAbsDiff(AllRangeGram(6)), 1e-12);  // Still readable.
}

TEST(GramCache, FactorGramThroughWorkload) {
  // ProductWorkload::FactorGram consults the global cache and must agree
  // with the direct SYRK.
  Domain d({5, 3});
  UnionWorkload w = MakeProductWorkload(d, {PrefixBlock(5), IdentityBlock(3)});
  const ProductWorkload& p = w.products()[0];
  EXPECT_LT(p.FactorGram(0).MaxAbsDiff(PrefixGram(5)), 1e-12);
  EXPECT_LT(p.FactorGram(1).MaxAbsDiff(Matrix::Identity(3)), 1e-12);
  // The shared variant hands out the cached object itself.
  auto shared_a = p.FactorGramShared(0);
  auto shared_b = p.FactorGramShared(0);
  EXPECT_EQ(shared_a.get(), shared_b.get());
}

}  // namespace
}  // namespace hdmm
