#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/eigen_sym.h"
#include "linalg/kron.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// Property sweep over shapes: the SVD contract must hold for tall, wide, and
// square inputs of varying size.
class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapeTest, FactorizationReconstructs) {
  auto [m, n] = GetParam();
  Rng rng(m * 131 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  Svd svd = ComputeSvd(a);
  const int64_t r = std::min(m, n);
  EXPECT_EQ(svd.u.rows(), m);
  EXPECT_EQ(svd.u.cols(), r);
  EXPECT_EQ(static_cast<int64_t>(svd.singular_values.size()), r);
  EXPECT_EQ(svd.v.rows(), n);
  EXPECT_EQ(svd.v.cols(), r);
  EXPECT_LT(svd.Reconstruct().MaxAbsDiff(a), 1e-9);
}

TEST_P(SvdShapeTest, FactorsAreOrthonormal) {
  auto [m, n] = GetParam();
  Rng rng(m * 977 + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  Svd svd = ComputeSvd(a);
  const int64_t r = std::min(m, n);
  // Random dense inputs are full rank with probability 1, so U^T U and
  // V^T V must both be the r x r identity.
  EXPECT_LT(Gram(svd.u).MaxAbsDiff(Matrix::Identity(r)), 1e-9);
  EXPECT_LT(Gram(svd.v).MaxAbsDiff(Matrix::Identity(r)), 1e-9);
}

TEST_P(SvdShapeTest, SingularValuesDescendingAndNonNegative) {
  auto [m, n] = GetParam();
  Rng rng(m + 7 * n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  Vector s = SingularValues(a);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s[i], 0.0);
    if (i > 0) {
      EXPECT_LE(s[i], s[i - 1]);
    }
  }
}

TEST_P(SvdShapeTest, MatchesGramEigenvalues) {
  auto [m, n] = GetParam();
  Rng rng(3 * m + n);
  Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
  Vector s = SingularValues(a);
  // Eigenvalues of A^T A are the squared singular values (ascending order
  // from EigenSym, descending from SingularValues).
  Matrix g = m >= n ? Gram(a) : Gram(a.Transposed());
  SymmetricEigen eig = EigenSym(g);
  std::vector<double> lam(eig.eigenvalues.rbegin(), eig.eigenvalues.rend());
  ASSERT_EQ(lam.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s[i] * s[i], std::max(lam[i], 0.0), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{6, 6},
                      std::pair<int64_t, int64_t>{12, 5},
                      std::pair<int64_t, int64_t>{5, 12},
                      std::pair<int64_t, int64_t>{20, 20},
                      std::pair<int64_t, int64_t>{1, 8},
                      std::pair<int64_t, int64_t>{8, 1},
                      std::pair<int64_t, int64_t>{32, 17}));

TEST(Svd, DiagonalMatrixExact) {
  Matrix a = Matrix::Diagonal({3.0, 1.0, 2.0});
  Vector s = SingularValues(a);
  EXPECT_NEAR(s[0], 3.0, 1e-12);
  EXPECT_NEAR(s[1], 2.0, 1e-12);
  EXPECT_NEAR(s[2], 1.0, 1e-12);
}

TEST(Svd, ZeroMatrix) {
  Matrix a = Matrix::Zeros(4, 3);
  Svd svd = ComputeSvd(a);
  for (double sv : svd.singular_values) EXPECT_EQ(sv, 0.0);
  EXPECT_EQ(svd.Rank(), 0);
  EXPECT_LT(svd.Reconstruct().MaxAbsDiff(a), 1e-15);
}

TEST(Svd, RankDetection) {
  // Rank-2 matrix built from two outer products.
  Rng rng(42);
  Matrix b = Matrix::RandomUniform(7, 2, &rng, -1.0, 1.0);
  Matrix c = Matrix::RandomUniform(2, 5, &rng, -1.0, 1.0);
  Matrix a = MatMul(b, c);
  Svd svd = ComputeSvd(a);
  EXPECT_EQ(svd.Rank(1e-9), 2);
  // Reconstruction holds even with the rank deficiency.
  EXPECT_LT(svd.Reconstruct().MaxAbsDiff(a), 1e-9);
}

TEST(Svd, PrefixSingularValuesKnownForm) {
  // Singular values of the n x n lower-triangular all-ones matrix are
  // 1 / (2 sin((2k+1) pi / (2(2n+1)))), k = 0..n-1. Check against the
  // closed form for n = 8.
  const int64_t n = 8;
  Matrix p = PrefixBlock(n);
  Vector s = SingularValues(p);
  const double pi = 3.14159265358979323846;
  for (int64_t k = 0; k < n; ++k) {
    const double expected =
        0.5 / std::sin((2.0 * static_cast<double>(k) + 1.0) * pi /
                       (2.0 * (2.0 * static_cast<double>(n) + 1.0)));
    EXPECT_NEAR(s[static_cast<size_t>(k)], expected, 1e-10);
  }
}

TEST(Svd, NuclearAndSpectralNorms) {
  Matrix a = Matrix::Diagonal({4.0, 3.0, 0.0});
  EXPECT_NEAR(NuclearNorm(a), 7.0, 1e-12);
  EXPECT_NEAR(SpectralNorm(a), 4.0, 1e-12);
}

TEST(Svd, SpectralNormBoundsFrobenius) {
  Rng rng(11);
  Matrix a = Matrix::RandomUniform(9, 6, &rng, -1.0, 1.0);
  const double frob = std::sqrt(a.FrobeniusNormSquared());
  const double spec = SpectralNorm(a);
  const double nuc = NuclearNorm(a);
  EXPECT_LE(spec, frob + 1e-10);
  EXPECT_LE(frob, nuc + 1e-10);
}

TEST(Svd, KroneckerSingularValuesAreProducts) {
  // sigma(A (x) B) = { sigma_i(A) * sigma_j(B) } — the identity that lets
  // the lower-bound machinery work implicitly on product workloads.
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(4, 3, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(5, 4, &rng, -1.0, 1.0);
  Vector sa = SingularValues(a);
  Vector sb = SingularValues(b);
  std::vector<double> products;
  for (double x : sa)
    for (double y : sb) products.push_back(x * y);
  std::sort(products.begin(), products.end(), std::greater<double>());

  Vector s_kron = SingularValues(KronExplicit(a, b));
  ASSERT_EQ(s_kron.size(), products.size());
  for (size_t i = 0; i < products.size(); ++i) {
    EXPECT_NEAR(s_kron[i], products[i], 1e-9);
  }
}

TEST(PinvViaSvd, MatchesGramPinvFullRank) {
  Rng rng(21);
  Matrix a = Matrix::RandomUniform(10, 6, &rng, -1.0, 1.0);
  Matrix p1 = PinvViaSvd(a);
  Matrix p2 = PseudoInverse(a);
  EXPECT_LT(p1.MaxAbsDiff(p2), 1e-8);
}

TEST(PinvViaSvd, PenroseConditionsRankDeficient) {
  // Heavy rank deficiency: 10 x 8 with rank 3.
  Rng rng(22);
  Matrix b = Matrix::RandomUniform(10, 3, &rng, -1.0, 1.0);
  Matrix c = Matrix::RandomUniform(3, 8, &rng, -1.0, 1.0);
  Matrix a = MatMul(b, c);
  Matrix p = PinvViaSvd(a);
  // All four Penrose conditions.
  EXPECT_LT(MatMul(MatMul(a, p), a).MaxAbsDiff(a), 1e-8);
  EXPECT_LT(MatMul(MatMul(p, a), p).MaxAbsDiff(p), 1e-8);
  Matrix ap = MatMul(a, p);
  Matrix pa = MatMul(p, a);
  EXPECT_LT(ap.MaxAbsDiff(ap.Transposed()), 1e-8);
  EXPECT_LT(pa.MaxAbsDiff(pa.Transposed()), 1e-8);
}

TEST(PinvViaSvd, LeastSquaresMinimumNorm) {
  // For an underdetermined consistent system, A^+ b is the minimum-norm
  // solution: it lies in the row space of A, i.e. x = V V^T x.
  Rng rng(23);
  Matrix a = Matrix::RandomUniform(3, 7, &rng, -1.0, 1.0);
  Vector b = {1.0, -2.0, 0.5};
  Vector x = MatVec(PinvViaSvd(a), b);
  Vector back = MatVec(a, x);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-9);

  Svd svd = ComputeSvd(a);
  Vector projected = MatVec(svd.v, MatTVec(svd.v, x));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(projected[i], x[i], 1e-9) << "component outside rowspace";
  }
}

}  // namespace
}  // namespace hdmm
