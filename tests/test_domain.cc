#include "workload/domain.h"

#include <gtest/gtest.h>

namespace hdmm {
namespace {

TEST(Domain, SizesAndTotal) {
  Domain d({2, 3, 4});
  EXPECT_EQ(d.NumAttributes(), 3);
  EXPECT_EQ(d.TotalSize(), 24);
  EXPECT_EQ(d.AttributeSize(1), 3);
}

TEST(Domain, FlattenUnflattenRoundTrip) {
  Domain d({3, 4, 5});
  for (int64_t i = 0; i < d.TotalSize(); ++i) {
    EXPECT_EQ(d.Flatten(d.Unflatten(i)), i);
  }
}

TEST(Domain, FlattenIsRowMajor) {
  Domain d({2, 3});
  EXPECT_EQ(d.Flatten({0, 0}), 0);
  EXPECT_EQ(d.Flatten({0, 2}), 2);
  EXPECT_EQ(d.Flatten({1, 0}), 3);
  EXPECT_EQ(d.Flatten({1, 2}), 5);
}

TEST(Domain, NamedAttributes) {
  Domain d({"sex", "age"}, {2, 115});
  EXPECT_EQ(d.AttributeIndex("age"), 1);
  EXPECT_EQ(d.AttributeName(0), "sex");
  EXPECT_EQ(d.ToString(), "2 x 115");
}

}  // namespace
}  // namespace hdmm
