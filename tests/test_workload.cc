#include "workload/workload.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/building_blocks.h"
#include "workload/impvec.h"

namespace hdmm {
namespace {

UnionWorkload TwoProductWorkload() {
  Domain d({3, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(3), TotalBlock(4)};
  p1.weight = 1.0;
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(3), IdentityBlock(4)};
  p2.weight = 2.0;
  w.AddProduct(p2);
  return w;
}

TEST(Workload, Counts) {
  UnionWorkload w = TwoProductWorkload();
  EXPECT_EQ(w.NumProducts(), 2);
  EXPECT_EQ(w.TotalQueries(), 3 + 4);
  EXPECT_EQ(w.DomainSize(), 12);
}

TEST(Workload, ExplicitMatchesOperator) {
  UnionWorkload w = TwoProductWorkload();
  Matrix full = w.Explicit();
  EXPECT_EQ(full.rows(), 7);
  EXPECT_EQ(full.cols(), 12);
  auto op = w.ToOperator();
  Rng rng(1);
  Vector x(12);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  Vector via_op = op->Apply(x);
  Vector via_full = MatVec(full, x);
  ASSERT_EQ(via_op.size(), via_full.size());
  for (size_t i = 0; i < via_op.size(); ++i)
    EXPECT_NEAR(via_op[i], via_full[i], 1e-12);
}

TEST(Workload, ExplicitGramMatches) {
  UnionWorkload w = TwoProductWorkload();
  Matrix g = w.ExplicitGram();
  Matrix ref = Gram(w.Explicit());
  EXPECT_LT(g.MaxAbsDiff(ref), 1e-12);
}

TEST(Workload, SensitivityMatchesExplicit) {
  UnionWorkload w = TwoProductWorkload();
  EXPECT_NEAR(w.Sensitivity(), w.Explicit().MaxAbsColSum(), 1e-12);
}

TEST(Workload, StorageAccounting) {
  UnionWorkload w = TwoProductWorkload();
  // Implicit: (3*3 + 1*4) + (1*3 + 4*4) = 13 + 19 = 32 doubles.
  EXPECT_EQ(w.ImplicitStorageDoubles(), 32);
  EXPECT_EQ(w.ExplicitStorageDoubles(), 7 * 12);
}

TEST(ImpVec, SingleConjunctionExample2) {
  // Example 2: SELECT Count(*) WHERE sex = M AND age < 5,
  // on a Sex(2) x Age(10) toy domain.
  Domain d({"sex", "age"}, {2, 10});
  LogicalWorkload logical;
  logical.domain = d;
  logical.AddConjunction({{0, Predicate::Equals(0)},
                          {1, Predicate::Range(0, 4)}});
  UnionWorkload w = ImpVec(logical);
  EXPECT_EQ(w.TotalQueries(), 1);
  Matrix full = w.Explicit();
  EXPECT_EQ(full.rows(), 1);
  // The single query counts cells (0, 0..4).
  double expect_sum = 0.0;
  for (int64_t j = 0; j < full.cols(); ++j) expect_sum += full(0, j);
  EXPECT_DOUBLE_EQ(expect_sum, 5.0);
  EXPECT_DOUBLE_EQ(full(0, 0), 1.0);   // (sex=0, age=0)
  EXPECT_DOUBLE_EQ(full(0, 10), 0.0);  // (sex=1, age=0)
}

TEST(ImpVec, GroupByAsProductExample3) {
  // Example 3: GROUP BY sex, age WHERE hispanic = true on
  // Hispanic(2) x Sex(2) x Age(5): 2*5 = 10 queries.
  Domain d({"hispanic", "sex", "age"}, {2, 2, 5});
  LogicalWorkload logical;
  logical.domain = d;
  LogicalProduct p;
  p.predicate_sets.resize(3);
  p.predicate_sets[0] = {Predicate::Equals(1)};
  for (int64_t s = 0; s < 2; ++s)
    p.predicate_sets[1].push_back(Predicate::Equals(s));
  for (int64_t a = 0; a < 5; ++a)
    p.predicate_sets[2].push_back(Predicate::Equals(a));
  logical.products.push_back(p);
  UnionWorkload w = ImpVec(logical);
  EXPECT_EQ(w.TotalQueries(), 10);
  // Each query counts exactly one cell (hispanic=1 slice).
  Matrix full = w.Explicit();
  for (int64_t r = 0; r < full.rows(); ++r) {
    double s = 0.0;
    for (int64_t j = 0; j < full.cols(); ++j) s += full(r, j);
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(ImpVec, ImplicitVectorizationTheorem1) {
  // vec(phi1 ^ phi2) = vec(phi1) kron vec(phi2).
  Domain d({4, 6});
  LogicalWorkload logical;
  logical.domain = d;
  logical.AddConjunction({{0, Predicate::InSet({1, 3})},
                          {1, Predicate::Range(2, 4)}});
  UnionWorkload w = ImpVec(logical);
  Matrix full = w.Explicit();
  Vector v1 = VectorizePredicate(Predicate::InSet({1, 3}), 4);
  Vector v2 = VectorizePredicate(Predicate::Range(2, 4), 6);
  Vector kron = KronVector({v1, v2});
  for (int64_t j = 0; j < full.cols(); ++j)
    EXPECT_DOUBLE_EQ(full(0, j), kron[static_cast<size_t>(j)]);
}

TEST(Workload, WeightForRelativeErrorScalesInverselyToL1) {
  Domain d({4, 4});
  UnionWorkload w(d);
  ProductWorkload narrow;  // Point queries: L1 norm 1 each.
  narrow.factors = {IdentityBlock(4), IdentityBlock(4)};
  w.AddProduct(narrow);
  ProductWorkload wide;  // Total query: L1 norm 16.
  wide.factors = {TotalBlock(4), TotalBlock(4)};
  w.AddProduct(wide);

  UnionWorkload rw = WeightForRelativeError(w);
  // Point queries keep weight 1; the total query is down-weighted by 16.
  EXPECT_NEAR(rw.products()[0].weight, 1.0, 1e-12);
  EXPECT_NEAR(rw.products()[1].weight, 1.0 / 16.0, 1e-12);
}

TEST(Workload, WeightForRelativeErrorAveragesRowNorms) {
  Domain d({4});
  UnionWorkload w(d);
  ProductWorkload p;  // Prefix rows have L1 norms 1, 2, 3, 4: mean 2.5.
  p.factors = {PrefixBlock(4)};
  p.weight = 5.0;
  w.AddProduct(p);
  UnionWorkload rw = WeightForRelativeError(w);
  EXPECT_NEAR(rw.products()[0].weight, 5.0 / 2.5, 1e-12);
}

TEST(Workload, AbsColumnSumsMatchExplicit) {
  UnionWorkload w = TwoProductWorkload();
  Vector sums = w.AbsColumnSums();
  Vector ref = w.Explicit().AbsColSums();
  ASSERT_EQ(sums.size(), ref.size());
  for (size_t i = 0; i < sums.size(); ++i) EXPECT_NEAR(sums[i], ref[i], 1e-12);
}

}  // namespace
}  // namespace hdmm
