// Crash-consistency tests: SIGKILL a forked child at every registered crash
// failpoint mid-ledger-append and mid-cache-write, then re-open the durable
// state and assert the recovery invariants. The accountant's contract is
// "durable before spendable": recovery must see every acked charge, may see
// at most one in-flight charge more, and must never abort on the torn bytes
// a crash leaves behind. The strategy cache's contract is atomic install:
// after any crash, every installed `.strategy` file parses and a fresh
// plan-and-put cycle works.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/strategy.h"
#include "core/strategy_io.h"
#include "crash_harness.h"
#include "engine/accountant.h"
#include "engine/strategy_cache.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Every crash site the harness below exercises must be registered — the
// registry is how a newly added crash point automatically gains coverage,
// so a site disappearing from it is a test bug, not a soft skip.
TEST(CrashSites, AllExpectedSitesRegistered) {
  const std::vector<std::string> sites = Failpoints::CrashSites();
  for (const char* expected :
       {"accountant.append.before", "accountant.append.torn",
        "accountant.append.after_sync", "strategy_cache.put.torn_tmp",
        "strategy_cache.put.tmp_synced", "strategy_cache.put.after_rename"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "crash site not registered: " << expected;
  }
}

// ---------------------------------------------------- accountant crashes --

// Child: charge 1.0 epsilon against a 100.0 ceiling up to `kAttempts`
// times, acking after each successful charge. A crash site armed at nth:N
// kills it during the Nth append.
constexpr int kAttempts = 5;
constexpr double kEps = 1.0;

CrashResult CrashChargingChild(const std::string& ledger,
                               const std::string& spec) {
  return RunCrashChild(spec, [&ledger](const std::function<void()>& ack) {
    BudgetAccountant accountant(100.0, ledger);
    for (int i = 0; i < kAttempts; ++i) {
      if (!accountant.TryCharge("census", kEps)) break;
      ack();
    }
  });
}

TEST(CrashRecovery, AccountantSurvivesEveryAppendCrashSite) {
  const std::string dir = FreshDir("crash_accountant");
  const std::vector<std::string> sites = Failpoints::CrashSites();
  int exercised = 0;
  for (const std::string& site : sites) {
    if (site.rfind("accountant.append.", 0) != 0) continue;
    for (int nth = 1; nth <= 3; ++nth) {
      const std::string ledger = dir + "/" + std::to_string(exercised) + "-" +
                                 std::to_string(nth) + ".ledger";
      const CrashResult crash =
          CrashChargingChild(ledger, site + "=nth:" + std::to_string(nth));
      ASSERT_TRUE(crash.forked) << site;
      ASSERT_TRUE(crash.sigkilled)
          << site << " nth:" << nth << " status " << crash.raw_status;
      // The crash landed inside append #nth, so exactly nth-1 charges were
      // acked before it.
      EXPECT_EQ(crash.acked, nth - 1) << site;

      // Recovery invariant: replay does not abort (torn bytes included),
      // and the recovered spend brackets the client's view — everything
      // acked, at most the one in-flight charge more (it is durable iff
      // the crash fell after the fsync).
      BudgetAccountant recovered(100.0, ledger);
      const double spent = recovered.Spent("census");
      EXPECT_GE(spent, crash.acked * kEps - 1e-12) << site << " nth:" << nth;
      EXPECT_LE(spent, (crash.acked + 1) * kEps + 1e-12)
          << site << " nth:" << nth;
      ++exercised;
    }
  }
  EXPECT_EQ(exercised, 9);  // 3 accountant crash sites x 3 positions.
}

TEST(CrashRecovery, AccountantReplayIsIdempotent) {
  // Re-opening a crashed ledger twice must land on the same spend — the
  // canonical rewrite at recovery truncates the torn tail away, so the
  // second replay sees a clean file.
  const std::string dir = FreshDir("crash_accountant_idem");
  const std::string ledger = dir + "/budget.ledger";
  const CrashResult crash =
      CrashChargingChild(ledger, "accountant.append.torn=nth:3");
  ASSERT_TRUE(crash.sigkilled);
  double first_spent = 0.0;
  {
    BudgetAccountant first(100.0, ledger);
    first_spent = first.Spent("census");
  }
  BudgetAccountant second(100.0, ledger);
  EXPECT_EQ(second.Spent("census"), first_spent);
  EXPECT_EQ(second.NumCharges("census"), crash.acked);
}

TEST(CrashRecovery, TornCrashLeavesPartialFinalLine) {
  // White-box check that the torn site really produces the failure mode it
  // claims to: a final line without its newline, dropped on replay.
  const std::string dir = FreshDir("crash_accountant_torn");
  const std::string ledger = dir + "/budget.ledger";
  const CrashResult crash =
      CrashChargingChild(ledger, "accountant.append.torn=nth:2");
  ASSERT_TRUE(crash.sigkilled);
  std::ifstream in(ledger, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ASSERT_FALSE(content.empty());
  EXPECT_NE(content.back(), '\n');
  BudgetAccountant recovered(100.0, ledger);
  EXPECT_NEAR(recovered.Spent("census"), crash.acked * kEps, 1e-12);
}

// ------------------------------------------------- strategy cache crashes --

std::shared_ptr<const Strategy> CacheStrategy(const std::string& name) {
  return std::make_shared<ExplicitStrategy>(PrefixBlock(4), name);
}

TEST(CrashRecovery, CacheSurvivesEveryPutCrashSite) {
  const std::vector<std::string> sites = Failpoints::CrashSites();
  int exercised = 0;
  for (const std::string& site : sites) {
    if (site.rfind("strategy_cache.put.", 0) != 0) continue;
    const std::string dir = FreshDir("crash_cache_" + std::to_string(exercised));
    const CrashResult crash = RunCrashChild(
        site + "=nth:1", [&dir](const std::function<void()>& ack) {
          StrategyCacheOptions options;
          options.disk_dir = dir;
          StrategyCache cache(options);
          (void)cache.Put(Fingerprint{9}, CacheStrategy("victim"));
          ack();  // Unreachable: the site kills inside Put.
        });
    ASSERT_TRUE(crash.forked) << site;
    ASSERT_TRUE(crash.sigkilled) << site << " status " << crash.raw_status;
    EXPECT_EQ(crash.acked, 0) << site;

    // Invariant 1: whatever the crash left behind, every installed
    // `.strategy` file parses — the install is atomic, so torn bytes can
    // only live in `.tmp` siblings.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() != ".strategy") continue;
      std::unique_ptr<Strategy> loaded;
      const Status status = LoadStrategyFileOr(entry.path().string(), &loaded);
      EXPECT_TRUE(status.ok())
          << site << ": torn install at " << entry.path() << ": "
          << status.ToString();
    }

    // Invariant 2: a fresh cache over the same directory serves without
    // aborting or quarantining, and a new plan-and-put cycle works.
    StrategyCacheOptions options;
    options.disk_dir = dir;
    StrategyCache cache(options);
    std::shared_ptr<const Strategy> recovered = cache.Get(Fingerprint{9});
    if (site == "strategy_cache.put.after_rename") {
      // Crash after the atomic install: the entry is durable.
      ASSERT_NE(recovered, nullptr) << site;
      EXPECT_EQ(recovered->Name(), "victim");
    } else {
      // Crash before the rename: a clean miss, not a corrupt read.
      EXPECT_EQ(recovered, nullptr) << site;
      EXPECT_EQ(cache.stats().corrupt_quarantined, 0u) << site;
    }
    ASSERT_TRUE(cache.Put(Fingerprint{9}, CacheStrategy("replacement")).ok());
    cache.ClearMemory();
    recovered = cache.Get(Fingerprint{9});
    ASSERT_NE(recovered, nullptr) << site;
    EXPECT_EQ(recovered->Name(), "replacement");
    ++exercised;
  }
  EXPECT_EQ(exercised, 3);
}

// -------------------------------------------------------- flock backoff --

TEST(FlockBackoff, RetriesThroughInjectedContention) {
  // Three attempts see a held lock (injected), the fourth succeeds — the
  // accountant must come up instead of dying on the first busy attempt.
  const std::string dir = FreshDir("flock_injected");
  ASSERT_TRUE(Failpoints::Activate("accountant.flock.busy", "times:3"));
  {
    BudgetAccountantOptions options;
    options.total_epsilon = 1.0;
    options.ledger_path = dir + "/budget.ledger";
    options.lock_timeout_ms = 5000;
    BudgetAccountant accountant(options);
    EXPECT_TRUE(accountant.TryCharge("d", 0.5));
  }
  EXPECT_GE(Failpoints::HitCount("accountant.flock.busy"), 4u);
  Failpoints::Deactivate("accountant.flock.busy");
}

TEST(FlockBackoff, WaitsOutARealHolderReleasingWithinDeadline) {
  // A genuinely held flock released mid-backoff: the second accountant must
  // acquire it within the deadline and see the first one's spend.
  const std::string dir = FreshDir("flock_real");
  const std::string ledger = dir + "/budget.ledger";
  auto first = std::make_unique<BudgetAccountant>(1.0, ledger);
  EXPECT_TRUE(first->TryCharge("census", 0.6));
  std::thread releaser([&first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    first.reset();  // Destructor releases the flock.
  });
  BudgetAccountantOptions options;
  options.total_epsilon = 1.0;
  options.ledger_path = ledger;
  options.lock_timeout_ms = 10000;
  BudgetAccountant second(options);  // Blocks in backoff until the release.
  releaser.join();
  EXPECT_NEAR(second.Spent("census"), 0.6, 1e-12);
  EXPECT_FALSE(second.TryCharge("census", 0.5));
}

// --------------------------------------------- injected I/O errors (no fork) --

TEST(InjectedFailure, AppendIoErrorRefusesChargeWithoutRecordingIt) {
  const std::string dir = FreshDir("inject_append_io");
  const std::string ledger = dir + "/budget.ledger";
  ASSERT_TRUE(Failpoints::Activate("accountant.append.io_error", "nth:2"));
  {
    BudgetAccountant accountant(10.0, ledger);
    EXPECT_TRUE(accountant.TryCharge("d", 1.0));
    // The injected failure refuses the charge as kIoError, spends nothing.
    const Status status = accountant.Charge("d", PrivacyCharge::Laplace(1.0));
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_NEAR(accountant.Spent("d"), 1.0, 1e-12);
    // The accountant is not wedged: the rollback restored the record
    // boundary, so the next charge lands cleanly.
    EXPECT_TRUE(accountant.TryCharge("d", 1.0));
    EXPECT_NEAR(accountant.Spent("d"), 2.0, 1e-12);
  }
  Failpoints::Deactivate("accountant.append.io_error");
  // Replay agrees with the in-memory view: the refused charge left no
  // record, the others both did.
  BudgetAccountant recovered(10.0, ledger);
  EXPECT_NEAR(recovered.Spent("d"), 2.0, 1e-12);
  EXPECT_EQ(recovered.NumCharges("d"), 2);
}

TEST(InjectedFailure, CacheDegradesToMemoryOnlyAfterRepeatedWriteFailures) {
  const std::string dir = FreshDir("inject_cache_degrade");
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  ASSERT_TRUE(Failpoints::Activate("strategy_cache.put.io_error", "always"));
  for (int i = 0; i < StrategyCache::kDiskFailureLimit; ++i) {
    const Status status =
        cache.Put(Fingerprint{static_cast<uint64_t>(i + 1)},
                  CacheStrategy("s" + std::to_string(i)));
    EXPECT_EQ(status.code(), StatusCode::kIoError) << i;
    // The memory tier took the entry regardless.
    EXPECT_NE(cache.Get(Fingerprint{static_cast<uint64_t>(i + 1)}), nullptr);
  }
  EXPECT_TRUE(cache.DiskWriteDegraded());
  EXPECT_EQ(cache.stats().disk_write_failures,
            static_cast<uint64_t>(StrategyCache::kDiskFailureLimit));
  // Degraded: Put skips the disk (and the failpoint) and reports OK.
  EXPECT_TRUE(cache.Put(Fingerprint{50}, CacheStrategy("mem-only")).ok());
  Failpoints::Deactivate("strategy_cache.put.io_error");
  EXPECT_NE(cache.Get(Fingerprint{50}), nullptr);
  cache.ClearMemory();
  // Nothing reached the disk while degraded.
  EXPECT_EQ(cache.Get(Fingerprint{50}), nullptr);
}

TEST(InjectedFailure, OneCacheWriteSuccessResetsTheDegradationCounter) {
  const std::string dir = FreshDir("inject_cache_reset");
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  ASSERT_TRUE(Failpoints::Activate("strategy_cache.put.io_error", "times:2"));
  EXPECT_FALSE(cache.Put(Fingerprint{1}, CacheStrategy("a")).ok());
  EXPECT_FALSE(cache.Put(Fingerprint{2}, CacheStrategy("b")).ok());
  EXPECT_FALSE(cache.DiskWriteDegraded());
  // A success between failures resets the consecutive count...
  EXPECT_TRUE(cache.Put(Fingerprint{3}, CacheStrategy("c")).ok());
  // ...so two more failures still stay under the limit.
  ASSERT_TRUE(Failpoints::Activate("strategy_cache.put.io_error", "times:2"));
  EXPECT_FALSE(cache.Put(Fingerprint{4}, CacheStrategy("d")).ok());
  EXPECT_FALSE(cache.Put(Fingerprint{5}, CacheStrategy("e")).ok());
  EXPECT_FALSE(cache.DiskWriteDegraded());
  Failpoints::Deactivate("strategy_cache.put.io_error");
}

TEST(InjectedFailure, CacheGetCountsInjectedReadErrorsAsMisses) {
  const std::string dir = FreshDir("inject_cache_read");
  StrategyCacheOptions options;
  options.disk_dir = dir;
  StrategyCache cache(options);
  ASSERT_TRUE(cache.Put(Fingerprint{7}, CacheStrategy("durable")).ok());
  cache.ClearMemory();
  ASSERT_TRUE(Failpoints::Activate("strategy_io.load.io_error", "always"));
  EXPECT_EQ(cache.Get(Fingerprint{7}), nullptr);
  EXPECT_EQ(cache.stats().disk_read_errors, 1u);
  EXPECT_EQ(cache.stats().corrupt_quarantined, 0u);
  Failpoints::Deactivate("strategy_io.load.io_error");
  // A transient read error must not quarantine the (healthy) file: once the
  // disk recovers, the entry is served again.
  EXPECT_NE(cache.Get(Fingerprint{7}), nullptr);
}

}  // namespace
}  // namespace hdmm
