#include "core/nnls.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reconstruct.h"
#include "core/strategy.h"
#include "linalg/kron.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(Nnls, RecoversNonNegativeExactSolution) {
  // When the unconstrained solution is already non-negative, NNLS must find
  // it: consistent system with x >= 0.
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(12, 6, &rng, 0.0, 1.0);
  Vector x_true = {1.0, 0.5, 2.0, 0.0, 3.0, 0.25};
  Vector y = MatVec(a, x_true);

  DenseOperator op(a);
  NnlsResult res = SolveNnls(op, y);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.objective, 1e-8);
  for (size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(res.x[i], x_true[i], 1e-4) << "entry " << i;
  }
}

TEST(Nnls, SolutionIsNonNegative) {
  // Noisy measurements that drive the unconstrained solution negative.
  Rng rng(2);
  Matrix a = IdentityBlock(8);
  Vector y = {3.0, -2.5, 1.0, -0.5, 4.0, 0.0, -1.0, 2.0};
  DenseOperator op(a);
  NnlsResult res = SolveNnls(op, y);
  for (double v : res.x) EXPECT_GE(v, 0.0);
  // For identity A, NNLS is exactly entrywise clamping (up to first-order
  // solver accuracy).
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(res.x[i], std::max(y[i], 0.0), 1e-6);
  }
}

TEST(Nnls, MatchesUnconstrainedWhenInteriorOptimum) {
  Rng rng(3);
  Matrix a = Matrix::RandomUniform(15, 5, &rng, 0.1, 1.0);
  Vector x_true = {2.0, 1.0, 3.0, 0.7, 1.5};
  Vector y = MatVec(a, x_true);
  // Tiny perturbation keeps the optimum interior.
  for (double& v : y) v += 1e-3 * rng.Uniform(-1.0, 1.0);

  Vector x_ls = MatVec(PseudoInverse(a), y);
  DenseOperator op(a);
  NnlsResult res = SolveNnls(op, y);
  for (size_t i = 0; i < x_ls.size(); ++i) {
    EXPECT_NEAR(res.x[i], x_ls[i], 1e-4);
  }
}

TEST(Nnls, KktConditionsHold) {
  // At the NNLS optimum: gradient g = 2 A^T (A x - y) satisfies
  // g_i >= 0 where x_i == 0 and g_i == 0 where x_i > 0.
  Rng rng(4);
  Matrix a = Matrix::RandomUniform(10, 7, &rng, -1.0, 1.0);
  Vector y(10);
  for (double& v : y) v = rng.Uniform(-2.0, 2.0);

  DenseOperator op(a);
  NnlsOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-14;
  NnlsResult res = SolveNnls(op, y, options);

  Vector residual = MatVec(a, res.x);
  for (size_t i = 0; i < residual.size(); ++i) residual[i] -= y[i];
  Vector grad = MatTVec(a, residual);
  for (size_t i = 0; i < grad.size(); ++i) {
    if (res.x[i] > 1e-7) {
      EXPECT_NEAR(grad[i], 0.0, 1e-5) << "active entry " << i;
    } else {
      EXPECT_GE(grad[i], -1e-5) << "zero entry " << i;
    }
  }
}

TEST(Nnls, WorksOnImplicitKroneckerOperator) {
  // Full-pipeline shape: Kron strategy measurement, NNLS reconstruction.
  KronOperator op({PrefixBlock(6), IdentityBlock(4)});
  Rng rng(5);
  Vector x_true(24);
  for (double& v : x_true) v = std::floor(rng.Uniform(0.0, 5.0));
  Vector y = op.Apply(x_true);
  for (double& v : y) v += rng.Laplace(0.4);

  NnlsResult res = SolveNnls(op, y);
  for (double v : res.x) EXPECT_GE(v, 0.0);
  // NNLS error must not exceed clamped-least-squares error by more than
  // numerical slack (it minimizes over a superset... of the clamped point).
  Vector x_ls = LeastSquaresReconstruct(op, y);
  for (double& v : x_ls) v = std::max(v, 0.0);
  Vector fit_ls = op.Apply(x_ls);
  double obj_clamped = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    obj_clamped += (fit_ls[i] - y[i]) * (fit_ls[i] - y[i]);
  }
  EXPECT_LE(res.objective, obj_clamped + 1e-6);
}

TEST(Nnls, WarmStartReducesIterations) {
  Rng rng(6);
  Matrix a = Matrix::RandomUniform(20, 10, &rng, 0.0, 1.0);
  Vector x_true(10);
  for (double& v : x_true) v = rng.Uniform(0.0, 3.0);
  Vector y = MatVec(a, x_true);
  for (double& v : y) v += rng.Laplace(0.05);

  DenseOperator op(a);
  NnlsResult cold = SolveNnls(op, y);
  // Warm start from the (projected) unconstrained solution.
  Vector x0 = MatVec(PseudoInverse(a), y);
  NnlsResult warm = SolveNnls(op, y, x0);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-5 * std::max(1.0, cold.objective));
}

TEST(Nnls, ZeroMeasurementsGiveZeroSolution) {
  DenseOperator op(PrefixBlock(5));
  NnlsResult res = SolveNnls(op, Vector(5, 0.0));
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Nnls, ReducesErrorOnSparseCounts) {
  // The deployment motivation: sparse count vectors + Laplace noise. NNLS
  // should (weakly) beat plain least squares against the ground truth here.
  const int64_t n = 64;
  KronOperator op({HierarchicalBlock(n, 4)});
  Rng rng(7);
  Vector x_true(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < 6; ++i) {
    x_true[static_cast<size_t>(rng.UniformInt(0, n - 1))] =
        static_cast<double>(rng.UniformInt(1, 30));
  }
  double ls_sq = 0.0, nnls_sq = 0.0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    Vector y = op.Apply(x_true);
    for (double& v : y) v += rng.Laplace(2.0);
    Vector x_ls = LeastSquaresReconstruct(op, y);
    NnlsResult res = SolveNnls(op, y, x_ls);
    for (size_t i = 0; i < x_true.size(); ++i) {
      ls_sq += (x_ls[i] - x_true[i]) * (x_ls[i] - x_true[i]);
      nnls_sq += (res.x[i] - x_true[i]) * (res.x[i] - x_true[i]);
    }
  }
  EXPECT_LE(nnls_sq, ls_sq * 1.02);
}

TEST(NnlsDeath, ShapeMismatch) {
  DenseOperator op(PrefixBlock(4));
  EXPECT_DEATH(SolveNnls(op, Vector(3, 1.0)), "");
}

}  // namespace
}  // namespace hdmm
