#include "core/opt_union.h"

#include <gtest/gtest.h>

#include "core/hdmm.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

UnionWorkload DisjointUnion(int64_t n) {
  Domain d({n, n});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(n), TotalBlock(n)};
  w.AddProduct(std::move(p1));
  ProductWorkload p2;
  p2.factors = {TotalBlock(n), AllRangeBlock(n)};
  w.AddProduct(std::move(p2));
  return w;
}

TEST(OptUnion, PartitionBySignatureSeparatesDisjointProducts) {
  UnionWorkload w = DisjointUnion(6);
  auto groups = PartitionBySignature(w, 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size() + groups[1].size(), 2u);
}

TEST(OptUnion, PartitionMergesBeyondCap) {
  Domain d({4, 4, 4});
  UnionWorkload w(d);
  // Three distinct signatures.
  for (int active = 0; active < 3; ++active) {
    ProductWorkload p;
    for (int i = 0; i < 3; ++i) {
      p.factors.push_back(i == active ? PrefixBlock(4) : TotalBlock(4));
    }
    w.AddProduct(std::move(p));
  }
  auto groups = PartitionBySignature(w, 2);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(OptUnion, OptimalBudgetSplitFormula) {
  std::vector<double> split = OptimalBudgetSplit({8.0, 1.0});
  // Proportional to cbrt: 2 : 1 -> 2/3, 1/3.
  EXPECT_NEAR(split[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(split[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(split[0] + split[1], 1.0, 1e-12);
}

TEST(OptUnion, OptimizedSplitNeverWorseThanEven) {
  UnionWorkload w = DisjointUnion(6);
  OptUnionOptions even;
  even.optimize_budget_split = false;
  even.kron.lbfgs.max_iterations = 60;
  OptUnionOptions opt = even;
  opt.optimize_budget_split = true;
  Rng rng1(3), rng2(3);
  OptUnionResult res_even = OptUnion(w, even, &rng1);
  OptUnionResult res_opt = OptUnion(w, opt, &rng2);
  EXPECT_LE(res_opt.error, res_even.error + 1e-9);
  // Split sums to 1.
  double total = 0.0;
  for (double s : res_opt.budget_split) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OptUnion, DriverStrategyErrorMatchesBookkeeping) {
  // The UnionKronStrategy assembled by the HDMM driver (with budget-split
  // scaled factors) must report the same error OptUnion computed.
  UnionWorkload w = DisjointUnion(6);
  HdmmOptions opts;
  opts.restarts = 1;
  opts.use_kron = false;
  opts.use_marginals = false;
  opts.union_opts.kron.lbfgs.max_iterations = 80;
  HdmmResult res = OptimizeStrategy(w, opts);
  if (res.chosen_operator == "union") {
    EXPECT_NEAR(res.strategy->SquaredError(w), res.squared_error,
                1e-4 * res.squared_error);
    EXPECT_NEAR(res.strategy->Sensitivity(), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace hdmm
