#include "optimize/lbfgsb.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hdmm {
namespace {

TEST(Lbfgsb, QuadraticUnconstrained) {
  // f(x) = sum (x_i - i)^2, minimum at x_i = i.
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    double fx = 0.0;
    g->assign(x.size(), 0.0);
    for (size_t i = 0; i < x.size(); ++i) {
      double d = x[i] - static_cast<double>(i);
      fx += d * d;
      (*g)[i] = 2.0 * d;
    }
    return fx;
  };
  Vector lower(5, -1e30), upper(5, 1e30);
  LbfgsbResult res = MinimizeLbfgsb(f, Vector(5, 10.0), lower, upper);
  EXPECT_TRUE(res.converged);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(res.x[i], static_cast<double>(i), 1e-4);
}

TEST(Lbfgsb, ActiveBoundsRespected) {
  // Minimize (x-(-3))^2 with x >= 0: solution pinned at 0.
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(1, 2.0 * (x[0] + 3.0));
    return (x[0] + 3.0) * (x[0] + 3.0);
  };
  LbfgsbResult res = MinimizeNonNegative(f, Vector(1, 5.0));
  EXPECT_NEAR(res.x[0], 0.0, 1e-10);
}

TEST(Lbfgsb, Rosenbrock) {
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    double a = 1.0, b = 100.0;
    double fx = (a - x[0]) * (a - x[0]) +
                b * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0]);
    g->assign(2, 0.0);
    (*g)[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
    (*g)[1] = 2.0 * b * (x[1] - x[0] * x[0]);
    return fx;
  };
  Vector lower(2, -10.0), upper(2, 10.0);
  LbfgsbOptions opts;
  opts.max_iterations = 2000;
  opts.pg_tolerance = 1e-8;
  LbfgsbResult res = MinimizeLbfgsb(f, {-1.2, 1.0}, lower, upper, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(Lbfgsb, BoxedQuadraticInteriorAndBoundary) {
  // f(x) = (x0-2)^2 + (x1+2)^2 over [0,1]^2: optimum (1, 0).
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(2, 0.0);
    (*g)[0] = 2.0 * (x[0] - 2.0);
    (*g)[1] = 2.0 * (x[1] + 2.0);
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  Vector lower(2, 0.0), upper(2, 1.0);
  LbfgsbResult res = MinimizeLbfgsb(f, {0.5, 0.5}, lower, upper);
  EXPECT_NEAR(res.x[0], 1.0, 1e-6);
  EXPECT_NEAR(res.x[1], 0.0, 1e-6);
}

TEST(Lbfgsb, ClampsInfeasibleStart) {
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(1, 2.0 * x[0]);
    return x[0] * x[0];
  };
  Vector lower(1, 1.0), upper(1, 2.0);
  LbfgsbResult res = MinimizeLbfgsb(f, Vector(1, -57.0), lower, upper);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
}

// Classic test battery, parameterized over dimension where applicable.

TEST(Lbfgsb, BealeFunction) {
  // f(x, y) = (1.5 - x + xy)^2 + (2.25 - x + xy^2)^2 + (2.625 - x + xy^3)^2,
  // global minimum f = 0 at (3, 0.5).
  ObjectiveFn f = [](const Vector& v, Vector* g) {
    const double x = v[0], y = v[1];
    const double t1 = 1.5 - x + x * y;
    const double t2 = 2.25 - x + x * y * y;
    const double t3 = 2.625 - x + x * y * y * y;
    g->assign(2, 0.0);
    (*g)[0] = 2.0 * t1 * (y - 1.0) + 2.0 * t2 * (y * y - 1.0) +
              2.0 * t3 * (y * y * y - 1.0);
    (*g)[1] = 2.0 * t1 * x + 2.0 * t2 * 2.0 * x * y +
              2.0 * t3 * 3.0 * x * y * y;
    return t1 * t1 + t2 * t2 + t3 * t3;
  };
  Vector lower(2, -4.5), upper(2, 4.5);
  LbfgsbOptions opts;
  opts.max_iterations = 2000;
  opts.pg_tolerance = 1e-10;
  LbfgsbResult res = MinimizeLbfgsb(f, {1.0, 1.0}, lower, upper, opts);
  EXPECT_NEAR(res.f, 0.0, 1e-8);
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.x[1], 0.5, 1e-3);
}

class LbfgsbDimensionTest : public ::testing::TestWithParam<int> {};

TEST_P(LbfgsbDimensionTest, ExtendedRosenbrock) {
  const int n = GetParam();
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    double fx = 0.0;
    g->assign(x.size(), 0.0);
    for (size_t i = 0; i + 1 < x.size(); ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      fx += 100.0 * a * a + b * b;
      (*g)[i] += -400.0 * x[i] * a - 2.0 * b;
      (*g)[i + 1] += 200.0 * a;
    }
    return fx;
  };
  Vector lower(static_cast<size_t>(n), -10.0);
  Vector upper(static_cast<size_t>(n), 10.0);
  LbfgsbOptions opts;
  opts.max_iterations = 5000;
  opts.pg_tolerance = 1e-9;
  LbfgsbResult res =
      MinimizeLbfgsb(f, Vector(static_cast<size_t>(n), -1.0), lower, upper,
                     opts);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(res.x[static_cast<size_t>(i)], 1.0, 1e-3) << "coord " << i;
  }
}

TEST_P(LbfgsbDimensionTest, IllConditionedQuadratic) {
  // f(x) = sum kappa_i x_i^2 with condition number 10^4: convergence must
  // survive anisotropy (this is what the p-Identity landscape looks like).
  const int n = GetParam();
  ObjectiveFn f = [n](const Vector& x, Vector* g) {
    double fx = 0.0;
    g->assign(x.size(), 0.0);
    for (size_t i = 0; i < x.size(); ++i) {
      const double k = std::pow(
          1e4, static_cast<double>(i) / std::max(1, n - 1));
      fx += k * x[i] * x[i];
      (*g)[i] = 2.0 * k * x[i];
    }
    return fx;
  };
  LbfgsbResult res =
      MinimizeNonNegative(f, Vector(static_cast<size_t>(n), 3.0));
  EXPECT_LT(res.f, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Dims, LbfgsbDimensionTest,
                         ::testing::Values(2, 5, 20, 50));

TEST(Lbfgsb, InfeasiblePointsAreSteppedBack) {
  // The p-Identity objective returns +inf in cancellation regions; the line
  // search must back off instead of accepting the point.
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(1, 0.0);
    if (x[0] > 2.0) {
      return std::numeric_limits<double>::infinity();
    }
    (*g)[0] = -1.0;  // Constant slope pushing toward the infeasible region.
    return -x[0];
  };
  Vector lower(1, 0.0), upper(1, 1e30);
  LbfgsbOptions opts;
  opts.max_iterations = 50;
  LbfgsbResult res = MinimizeLbfgsb(f, Vector(1, 0.5), lower, upper, opts);
  EXPECT_LE(res.x[0], 2.0);
  EXPECT_TRUE(std::isfinite(res.f));
}

TEST(Lbfgsb, ReportsFunctionEvaluations) {
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(1, 2.0 * x[0]);
    return x[0] * x[0];
  };
  LbfgsbResult res = MinimizeNonNegative(f, Vector(1, 4.0));
  EXPECT_GT(res.function_evaluations, 0);
  EXPECT_GE(res.function_evaluations, res.iterations);
}

TEST(Lbfgsb, ZeroIterationBudgetReturnsStart) {
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(1, 2.0 * x[0]);
    return x[0] * x[0];
  };
  LbfgsbOptions opts;
  opts.max_iterations = 0;
  LbfgsbResult res = MinimizeNonNegative(f, Vector(1, 4.0), opts);
  EXPECT_DOUBLE_EQ(res.x[0], 4.0);
}

TEST(Lbfgsb, AlreadyOptimalConvergesImmediately) {
  ObjectiveFn f = [](const Vector& x, Vector* g) {
    g->assign(x.size(), 0.0);
    double fx = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      fx += x[i] * x[i];
      (*g)[i] = 2.0 * x[i];
    }
    return fx;
  };
  LbfgsbResult res = MinimizeNonNegative(f, Vector(3, 0.0));
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1);
}

}  // namespace
}  // namespace hdmm
