#include "crash_harness.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/failpoint.h"

namespace hdmm {

CrashResult RunCrashChild(
    const std::string& failpoint_spec,
    const std::function<void(const std::function<void()>& ack)>& body) {
  CrashResult result;
  int fds[2];
  if (::pipe(fds) != 0) return result;

  // Flush stdio before forking so the child cannot replay buffered test
  // output when it exits (or have it torn off by the SIGKILL).
  std::fflush(stdout);
  std::fflush(stderr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return result;
  }
  if (pid == 0) {
    ::close(fds[0]);
    const int ack_fd = fds[1];
    std::string error;
    if (!Failpoints::ActivateSpec(failpoint_spec, &error)) _exit(3);
    const auto ack = [ack_fd] {
      const char byte = 'A';
      (void)!::write(ack_fd, &byte, 1);
    };
    body(ack);
    ::close(ack_fd);
    _exit(0);
  }

  ::close(fds[1]);
  char buffer[64];
  ssize_t n;
  // Drains until the child's write end closes — at _exit or at the SIGKILL,
  // whichever comes first. Acks written before the kill are already in the
  // pipe and survive it.
  while ((n = ::read(fds[0], buffer, sizeof(buffer))) > 0) {
    result.acked += static_cast<int>(n);
  }
  ::close(fds[0]);

  int status = 0;
  ::waitpid(pid, &status, 0);
  result.forked = true;
  result.raw_status = status;
  result.sigkilled = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  result.exited_clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  return result;
}

}  // namespace hdmm
