#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "json_lint.h"

namespace hdmm {
namespace {

// Each test uses its own metric names: the registry is process-global and
// these tests run in one binary, so sharing a name would couple their
// counts. ResetAllForTest is exercised explicitly where the test needs it.

TEST(Metrics, CounterCountsExactly) {
  Counter* c = Metrics::GetCounter("test.counter.exact");
  const uint64_t before = c->Value();
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), before + 42);
}

TEST(Metrics, GetReturnsSamePointerAndValue) {
  Counter* a = Metrics::GetCounter("test.counter.same");
  Counter* b = Metrics::GetCounter("test.counter.same");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->Value(), a->Value());
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge* g = Metrics::GetGauge("test.gauge.lww");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Value(), -2.25);
}

TEST(Metrics, DisabledRecordsNothing) {
  Counter* c = Metrics::GetCounter("test.counter.disabled");
  Histogram* h = Metrics::GetHistogram("test.histogram.disabled");
  const uint64_t c_before = c->Value();
  const uint64_t h_before = h->Snapshot().count;
  Metrics::SetEnabled(false);
  c->Add(100);
  h->Record(100);
  Metrics::SetEnabled(true);
  EXPECT_EQ(c->Value(), c_before);
  EXPECT_EQ(h->Snapshot().count, h_before);
  c->Add(1);
  EXPECT_EQ(c->Value(), c_before + 1);  // Re-enabled records again.
}

// The satellite requirement: 16 threads hammering one counter and one
// histogram concurrently, then a snapshot that must see every update. With
// kSlots = 64 every thread gets an exclusive single-writer slot, so the
// totals are exact, not approximate.
TEST(Metrics, ConcurrentRecordingMergesExactly) {
  constexpr int kThreads = 16;
  constexpr int kPerThread = 10'000;
  Counter* c = Metrics::GetCounter("test.counter.concurrent");
  Histogram* h = Metrics::GetHistogram("test.histogram.concurrent");
  const uint64_t c_before = c->Value();
  const HistogramSnapshot h_before = h->Snapshot();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        // Values spread across buckets; sum is deterministic.
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c->Value(), c_before + kThreads * kPerThread);
  const HistogramSnapshot after = h->Snapshot();
  EXPECT_EQ(after.count, h_before.count + kThreads * kPerThread);
  const uint64_t n = kThreads * kPerThread;
  const double expected_sum =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_DOUBLE_EQ(after.sum - h_before.sum, expected_sum);
}

TEST(Metrics, ConcurrentSnapshotsDoNotBlockWriters) {
  Counter* c = Metrics::GetCounter("test.counter.snapshot_race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c->Add(1);
  });
  for (int i = 0; i < 100; ++i) {
    (void)Metrics::Snapshot();  // Must not tear, deadlock, or race (TSan).
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(c->Value(), 0u);
}

TEST(Metrics, HistogramPercentilesOrderedAndBracketed) {
  Metrics::ResetAllForTest();
  Histogram* h = Metrics::GetHistogram("test.histogram.percentiles");
  // 1..1000: p50 ~ 500, p99 ~ 990, within a 2x log-bucket.
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, 500500.0);
  EXPECT_LE(s.min, 1.0);
  EXPECT_GE(s.max, 1000.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Log-bucketed estimates are within the bucket's 2x width.
  EXPECT_GE(s.p50, 250.0);
  EXPECT_LE(s.p50, 1000.0);
  EXPECT_GE(s.p99, 500.0);
}

TEST(Metrics, HistogramZeroAndHugeValues) {
  Histogram* h = Metrics::GetHistogram("test.histogram.extremes");
  h->Record(0);
  h->Record(UINT64_MAX);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_GE(s.max, 9e18);
}

TEST(Metrics, SnapshotContainsAllThreeKinds) {
  Metrics::GetCounter("test.kind.counter")->Add(3);
  Metrics::GetGauge("test.kind.gauge")->Set(1.25);
  Metrics::GetHistogram("test.kind.histogram")->Record(8);
  const MetricsSnapshot s = Metrics::Snapshot();
  ASSERT_TRUE(s.counters.count("test.kind.counter"));
  EXPECT_GE(s.counters.at("test.kind.counter"), 3u);
  ASSERT_TRUE(s.gauges.count("test.kind.gauge"));
  EXPECT_DOUBLE_EQ(s.gauges.at("test.kind.gauge"), 1.25);
  ASSERT_TRUE(s.histograms.count("test.kind.histogram"));
  EXPECT_GE(s.histograms.at("test.kind.histogram").count, 1u);
}

TEST(Metrics, JsonIsWellFormedAndCarriesValues) {
  Metrics::GetCounter("test.json.counter")->Add(5);
  Metrics::GetGauge("test.json.gauge")->Set(0.5);
  Metrics::GetHistogram("test.json.histogram")->Record(123);
  const std::string json = Metrics::ToJson();
  std::string error;
  EXPECT_TRUE(hdmm_tests::JsonLinter::Valid(json, &error)) << error << "\n"
                                                           << json;
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, ResetZeroesValuesButKeepsPointers) {
  Counter* c = Metrics::GetCounter("test.reset.counter");
  Histogram* h = Metrics::GetHistogram("test.reset.histogram");
  c->Add(9);
  h->Record(9);
  Metrics::ResetAllForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(c, Metrics::GetCounter("test.reset.counter"));
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

}  // namespace
}  // namespace hdmm
