#include "baselines/dawa.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

TEST(DawaPartition, UniformDataGivesFewBuckets) {
  // Perfectly uniform counts: deviation is zero everywhere, so the
  // per-bucket penalty forces one bucket.
  Vector x(64, 10.0);
  std::vector<int64_t> bounds = DawaPartition(x, 5.0);
  EXPECT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0], 64);
}

TEST(DawaPartition, StepDataSplitsAtStep) {
  Vector x(32, 1.0);
  for (size_t i = 16; i < 32; ++i) x[i] = 100.0;
  std::vector<int64_t> bounds = DawaPartition(x, 5.0);
  ASSERT_GE(bounds.size(), 2u);
  // One boundary must be exactly at the step.
  bool found = false;
  for (int64_t b : bounds) found = found || (b == 16);
  EXPECT_TRUE(found);
  EXPECT_EQ(bounds.back(), 32);
}

TEST(DawaPartition, ZeroPenaltyGivesSingletons) {
  Rng rng(1);
  Vector x(16);
  for (auto& v : x) v = rng.Uniform(0.0, 50.0);
  std::vector<int64_t> bounds = DawaPartition(x, 0.0);
  EXPECT_EQ(bounds.size(), 16u);
}

TEST(Dawa, RunProducesFiniteAnswers) {
  const int64_t n = 64;
  Matrix w = PrefixBlock(n);
  Domain d({n});
  Rng rng(2);
  Vector x = ClusteredDataVector(d, 10000, 4, &rng);
  DawaOptions opts;
  Vector est = RunDawa(w, x, 1.0, opts, &rng);
  ASSERT_EQ(est.size(), static_cast<size_t>(n));
  for (double v : est) EXPECT_TRUE(std::isfinite(v));
}

TEST(Dawa, AccurateOnClusteredData) {
  // DAWA's reason to exist: on piecewise-uniform data it compresses the
  // domain and beats plain per-cell measurement.
  const int64_t n = 128;
  Matrix w = PrefixBlock(n);
  Domain d({n});
  Rng rng(3);
  Vector x = ClusteredDataVector(d, 100000, 4, &rng);
  Vector truth = MatVec(w, x);

  const int trials = 12;
  double dawa_err = 0.0, identity_err = 0.0;
  DawaOptions opts;
  for (int t = 0; t < trials; ++t) {
    Vector est = RunDawa(w, x, 0.1, opts, &rng);
    dawa_err += EmpiricalSquaredError(truth, est);
    // Identity baseline at the same budget.
    Vector noisy = x;
    for (double& v : noisy) v += rng.Laplace(1.0 / 0.1);
    identity_err += EmpiricalSquaredError(truth, MatVec(w, noisy));
  }
  EXPECT_LT(dawa_err, identity_err);
}

TEST(Dawa, HdmmStage2RunsAndIsFinite) {
  const int64_t n = 64;
  Matrix w = PrefixBlock(n);
  Domain d({n});
  Rng rng(4);
  Vector x = ClusteredDataVector(d, 20000, 4, &rng);
  DawaOptions opts;
  opts.stage2 = DawaStage2::kHdmm;
  Vector est = RunDawa(w, x, 1.0, opts, &rng);
  ASSERT_EQ(est.size(), static_cast<size_t>(n));
  for (double v : est) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace hdmm
