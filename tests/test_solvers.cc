#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cg.h"
#include "linalg/lsmr.h"
#include "linalg/cholesky.h"
#include "linalg/pinv.h"
#include "linalg/trace_estimator.h"

namespace hdmm {
namespace {

TEST(Lsmr, SolvesConsistentSystem) {
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(12, 8, &rng, -1.0, 1.0);
  Vector x_true(8);
  for (auto& v : x_true) v = rng.Uniform(-1.0, 1.0);
  Vector b = MatVec(a, x_true);
  DenseOperator op(a);
  LsmrResult res = LsmrSolve(op, b);
  EXPECT_TRUE(res.converged);
  for (size_t i = 0; i < x_true.size(); ++i)
    EXPECT_NEAR(res.x[i], x_true[i], 1e-6);
}

TEST(Lsmr, MatchesPinvOnLeastSquares) {
  Rng rng(2);
  Matrix a = Matrix::RandomUniform(15, 6, &rng, -1.0, 1.0);
  Vector b(15);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  DenseOperator op(a);
  LsmrResult res = LsmrSolve(op, b);
  Vector ref = MatVec(PseudoInverse(a), b);
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(res.x[i], ref[i], 1e-6);
}

TEST(Lsmr, ZeroRhs) {
  Rng rng(3);
  Matrix a = Matrix::RandomUniform(5, 4, &rng);
  DenseOperator op(a);
  LsmrResult res = LsmrSolve(op, Vector(5, 0.0));
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, SolvesSpdSystem) {
  Rng rng(4);
  Matrix a = Matrix::RandomUniform(10, 7, &rng, -1.0, 1.0);
  Matrix g = Gram(a);
  for (int64_t i = 0; i < 7; ++i) g(i, i) += 1.0;
  Vector b(7);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  DenseOperator op(g);
  CgResult res = CgSolve(op, b);
  EXPECT_TRUE(res.converged);
  Vector back = MatVec(g, res.x);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-7);
}

TEST(TraceEstimator, ApproximatesExactTrace) {
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(20, 10, &rng, -1.0, 1.0);
  Matrix x = Gram(a);
  for (int64_t i = 0; i < 10; ++i) x(i, i) += 2.0;
  Matrix b = Matrix::RandomUniform(14, 10, &rng, -1.0, 1.0);
  Matrix g = Gram(b);

  double exact = TraceSolveSpd(x, g);
  DenseOperator xop(x), gop(g);
  TraceEstimatorOptions opts;
  opts.num_samples = 600;
  double est = EstimateTraceInvProduct(xop, gop, &rng, opts);
  // Hutchinson with 600 samples should land within ~10%.
  EXPECT_NEAR(est, exact, 0.12 * std::fabs(exact));
}

TEST(StackedOperator, ApplyAndTranspose) {
  Rng rng(6);
  Matrix a = Matrix::RandomUniform(3, 5, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(4, 5, &rng, -1.0, 1.0);
  auto sa = std::make_shared<DenseOperator>(a);
  auto sb = std::make_shared<DenseOperator>(b);
  StackedOperator stack({sa, sb});
  EXPECT_EQ(stack.Rows(), 7);
  Vector x(5, 1.0);
  Vector y = stack.Apply(x);
  Vector ya = MatVec(a, x), yb = MatVec(b, x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y[static_cast<size_t>(i)], ya[static_cast<size_t>(i)], 1e-12);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(y[static_cast<size_t>(3 + i)], yb[static_cast<size_t>(i)], 1e-12);

  Vector z(7);
  for (auto& v : z) v = rng.Uniform(-1.0, 1.0);
  Vector t = stack.ApplyTranspose(z);
  Matrix full = VStack({a, b});
  Vector ref = MatTVec(full, z);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_NEAR(t[i], ref[i], 1e-12);
}

}  // namespace
}  // namespace hdmm
