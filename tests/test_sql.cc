#include "workload/sql.h"

#include <random>

#include <gtest/gtest.h>

#include "workload/building_blocks.h"

namespace hdmm {
namespace {

Domain PersonDomain() {
  // A miniature of the paper's Person schema (Section 2).
  return Domain({"sex", "age", "hispanic"}, {2, 10, 2});
}

ProductWorkload MustParse(const std::string& sql, const Domain& d) {
  ProductWorkload p;
  std::string error;
  bool ok = ParseSqlQuery(sql, d, &p, &error);
  EXPECT_TRUE(ok) << error;
  return p;
}

// Example 2 of the paper: WHERE sex=M AND age < 5 as a product of singleton
// predicate sets (with Total on the unmentioned attribute).
TEST(Sql, PaperExample2) {
  ProductWorkload p = MustParse(
      "SELECT COUNT(*) FROM Person WHERE sex = 1 AND age < 5",
      PersonDomain());
  ASSERT_EQ(p.factors.size(), 3u);
  // sex = 1.
  EXPECT_EQ(p.factors[0].rows(), 1);
  EXPECT_EQ(p.factors[0](0, 0), 0.0);
  EXPECT_EQ(p.factors[0](0, 1), 1.0);
  // age < 5: ones on [0, 5).
  EXPECT_EQ(p.factors[1].rows(), 1);
  EXPECT_EQ(p.factors[1].Sum(), 5.0);
  EXPECT_EQ(p.factors[1](0, 4), 1.0);
  EXPECT_EQ(p.factors[1](0, 5), 0.0);
  // hispanic unmentioned -> Total.
  EXPECT_EQ(p.factors[2].MaxAbsDiff(TotalBlock(2)), 0.0);
  EXPECT_EQ(p.NumQueries(), 1);
}

// Example 3 of the paper: GROUP BY sex, age WHERE hispanic = 1 becomes
// I_sex x I_age x {hispanic=1} with 2 x 10 = 20 queries.
TEST(Sql, PaperExample3) {
  ProductWorkload p = MustParse(
      "SELECT sex, age, COUNT(*) FROM Person WHERE hispanic = 1 "
      "GROUP BY sex, age",
      PersonDomain());
  EXPECT_EQ(p.factors[0].MaxAbsDiff(IdentityBlock(2)), 0.0);
  EXPECT_EQ(p.factors[1].MaxAbsDiff(IdentityBlock(10)), 0.0);
  EXPECT_EQ(p.factors[2].rows(), 1);
  EXPECT_EQ(p.factors[2](0, 1), 1.0);
  EXPECT_EQ(p.NumQueries(), 20);
}

TEST(Sql, UnconstrainedCountIsTotalQuery) {
  ProductWorkload p =
      MustParse("SELECT COUNT(*) FROM Person", PersonDomain());
  for (const Matrix& f : p.factors) EXPECT_EQ(f.rows(), 1);
  EXPECT_EQ(p.NumQueries(), 1);
}

TEST(Sql, OperatorSemantics) {
  const Domain d({"a"}, {6});
  struct Case {
    const char* where;
    double expected_sum;  // Number of selected domain values.
  };
  for (const Case& c : std::vector<Case>{{"a = 3", 1},
                                         {"a != 3", 5},
                                         {"a < 3", 3},
                                         {"a <= 3", 4},
                                         {"a > 3", 2},
                                         {"a >= 3", 3}}) {
    ProductWorkload p = MustParse(
        std::string("SELECT COUNT(*) FROM R WHERE ") + c.where, d);
    EXPECT_EQ(p.factors[0].Sum(), c.expected_sum) << c.where;
  }
}

TEST(Sql, BetweenAndIn) {
  const Domain d({"a"}, {10});
  ProductWorkload between = MustParse(
      "SELECT COUNT(*) FROM R WHERE a BETWEEN 2 AND 5", d);
  EXPECT_EQ(between.factors[0].Sum(), 4.0);
  EXPECT_EQ(between.factors[0](0, 2), 1.0);
  EXPECT_EQ(between.factors[0](0, 5), 1.0);

  ProductWorkload in = MustParse(
      "SELECT COUNT(*) FROM R WHERE a IN (1, 4, 7)", d);
  EXPECT_EQ(in.factors[0].Sum(), 3.0);
  EXPECT_EQ(in.factors[0](0, 4), 1.0);
  EXPECT_EQ(in.factors[0](0, 5), 0.0);
}

TEST(Sql, ConjunctionOnSameAttributeIntersects) {
  const Domain d({"a"}, {10});
  ProductWorkload p = MustParse(
      "SELECT COUNT(*) FROM R WHERE a >= 3 AND a < 7 AND a != 5", d);
  // {3, 4, 6}.
  EXPECT_EQ(p.factors[0].Sum(), 3.0);
  EXPECT_EQ(p.factors[0](0, 5), 0.0);
  EXPECT_EQ(p.factors[0](0, 6), 1.0);
}

TEST(Sql, GroupByWithPredicateOnSameAttribute) {
  const Domain d({"a"}, {10});
  ProductWorkload p = MustParse(
      "SELECT a, COUNT(*) FROM R WHERE a < 4 GROUP BY a", d);
  // Four groups: rows of identity restricted to {0,1,2,3}.
  EXPECT_EQ(p.factors[0].rows(), 4);
  EXPECT_EQ(p.factors[0](3, 3), 1.0);
  EXPECT_EQ(p.factors[0](3, 4), 0.0);
  EXPECT_EQ(p.NumQueries(), 4);
}

TEST(Sql, InequalityConstantsMaySaturate) {
  const Domain d({"a"}, {5});
  // a < 100 selects everything; a > 100 selects nothing -> error later, but
  // the saturating "<" alone is fine.
  ProductWorkload p = MustParse("SELECT COUNT(*) FROM R WHERE a < 100", d);
  EXPECT_EQ(p.factors[0].Sum(), 5.0);
}

TEST(Sql, KeywordsAreCaseInsensitive) {
  const Domain d({"a"}, {4});
  ProductWorkload p = MustParse(
      "select count(*) from R where a between 1 and 2", d);
  EXPECT_EQ(p.factors[0].Sum(), 2.0);
}

TEST(Sql, ScriptBecomesUnionWorkload) {
  const Domain d = PersonDomain();
  UnionWorkload w = ParseSqlWorkloadOrDie(
      "SELECT COUNT(*) FROM Person WHERE sex = 0;\n"
      "SELECT age, COUNT(*) FROM Person GROUP BY age;\n"
      "  ;\n"  // Empty statements are ignored.
      "SELECT COUNT(*) FROM Person WHERE age BETWEEN 0 AND 4 AND sex = 1\n",
      d);
  EXPECT_EQ(w.NumProducts(), 3);
  EXPECT_EQ(w.TotalQueries(), 1 + 10 + 1);
  EXPECT_EQ(w.DomainSize(), 40);
}

// --- Error cases -------------------------------------------------------------

struct BadSql {
  const char* sql;
  const char* message_fragment;
};

class SqlErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(SqlErrorTest, RejectsWithMessage) {
  ProductWorkload p;
  std::string error;
  EXPECT_FALSE(ParseSqlQuery(GetParam().sql, PersonDomain(), &p, &error));
  EXPECT_NE(error.find(GetParam().message_fragment), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, SqlErrorTest,
    ::testing::Values(
        BadSql{"", "expected SELECT"},
        BadSql{"SELECT * FROM R", "expected an attribute name"},
        BadSql{"SELECT COUNT(*) WHERE sex = 1", "expected FROM"},
        BadSql{"SELECT COUNT(*) FROM R WHERE", "expected an attribute name"},
        BadSql{"SELECT COUNT(*) FROM R WHERE bogus = 1", "unknown attribute"},
        BadSql{"SELECT COUNT(*) FROM R WHERE sex = 5",
               "outside dom(sex)"},
        BadSql{"SELECT COUNT(*) FROM R WHERE sex = -1",
               "outside dom(sex)"},
        BadSql{"SELECT COUNT(*) FROM R WHERE age BETWEEN 5 AND 2",
               "out of order"},
        BadSql{"SELECT COUNT(*) FROM R WHERE age IN ()", "expected an integer"},
        BadSql{"SELECT COUNT(*) FROM R WHERE age = 1 AND age = 2",
               "contradictory predicates"},
        BadSql{"SELECT sex, COUNT(*) FROM R", "not in GROUP BY"},
        BadSql{"SELECT COUNT(*) FROM R GROUP BY bogus", "unknown attribute"},
        BadSql{"SELECT COUNT(*) FROM R WHERE sex ~ 1", "unexpected character"},
        BadSql{"SELECT COUNT(*) FROM R extra", "unexpected trailing"},
        BadSql{"SELECT COUNT(* FROM R", "expected ')'"},
        BadSql{"SELECT sex COUNT(*) FROM R", "expected ','"}));

TEST(SqlError, ScriptErrorNamesStatement) {
  UnionWorkload w;
  std::string error;
  ASSERT_FALSE(ParseSqlWorkload(
      "SELECT COUNT(*) FROM R; SELECT COUNT(*) FROM R WHERE bogus = 1",
      PersonDomain(), &w, &error));
  EXPECT_NE(error.find("statement 2"), std::string::npos) << error;
}

TEST(SqlError, EmptyScript) {
  UnionWorkload w;
  std::string error;
  EXPECT_FALSE(ParseSqlWorkload(" ;; ", PersonDomain(), &w, &error));
  EXPECT_NE(error.find("no statements"), std::string::npos);
}

// Robustness sweep: arbitrary near-SQL strings must never crash the parser.
TEST(Sql, SurvivesRandomGarbage) {
  std::mt19937_64 gen(7);
  const std::string alphabet =
      "SELECT COUNT FROM WHERE GROUP BY AND BETWEEN IN sex age hispanic "
      "(*),=<>!0123456789 ;\n";
  const Domain d = PersonDomain();
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const size_t len = gen() % 120;
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[gen() % alphabet.size()]);
    }
    ProductWorkload p;
    std::string error;
    if (!ParseSqlQuery(text, d, &p, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(SqlDeath, ParseOrDieAborts) {
  EXPECT_DEATH(
      ParseSqlWorkloadOrDie("SELECT COUNT(*) FROM R WHERE bogus = 1",
                            PersonDomain()),
      "unknown attribute");
}

// The end-to-end property: a parsed SQL workload evaluates queries exactly.
TEST(Sql, ParsedWorkloadComputesCorrectCounts) {
  const Domain d = PersonDomain();
  UnionWorkload w = ParseSqlWorkloadOrDie(
      "SELECT COUNT(*) FROM Person WHERE sex = 1 AND age < 5;"
      "SELECT sex, COUNT(*) FROM Person GROUP BY sex",
      d);
  // Data vector: one person per cell index for a few cells.
  Vector x(static_cast<size_t>(d.TotalSize()), 0.0);
  // (sex=1, age=3, hispanic=0) -> count 4.
  x[static_cast<size_t>(d.Flatten({1, 3, 0}))] = 4.0;
  // (sex=0, age=7, hispanic=1) -> count 2.
  x[static_cast<size_t>(d.Flatten({0, 7, 1}))] = 2.0;

  Vector answers = w.ToOperator()->Apply(x);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_DOUBLE_EQ(answers[0], 4.0);  // sex=1 & age<5.
  EXPECT_DOUBLE_EQ(answers[1], 2.0);  // sex=0 group.
  EXPECT_DOUBLE_EQ(answers[2], 4.0);  // sex=1 group.
}

}  // namespace
}  // namespace hdmm
