// Thread-count invariance of the planner: for a fixed seed, Opt0 / OptKron /
// OptMarginals / OptimizeStrategy must select bit-identical strategies and
// errors whether restarts fan out over 1 thread, 4, or 16. The tests route
// the restart fan-out through private pools of different widths
// (SetRestartPoolForTest) and compare raw result bits, so any scheduling- or
// reduction-order dependence fails loudly. 16 exceeds both the restart
// counts used here (tasks outnumbered by threads — idle workers must not
// perturb anything) and any CI runner's core count (oversubscription).
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/hdmm.h"
#include "core/opt0.h"
#include "core/opt_kron.h"
#include "core/opt_marginals.h"
#include "core/strategy_io.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// Runs `fn` with optimizer restart fan-out on a dedicated pool of
// `total_threads` (callers included), restoring the default pool afterwards.
template <typename Fn>
auto WithRestartThreads(int total_threads, Fn fn) {
  ThreadPool pool(total_threads - 1);
  SetRestartPoolForTest(&pool);
  auto result = fn();
  SetRestartPoolForTest(nullptr);
  return result;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      sizeof(double) * static_cast<size_t>(a.size())) == 0);
}

bool BitIdentical(const Vector& a, const Vector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), sizeof(double) * a.size()) == 0);
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

UnionWorkload SmallCensus() {
  Domain d({"sex", "age"}, {2, 24});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {IdentityBlock(2), PrefixBlock(24)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(2), IdentityBlock(24)};
  w.AddProduct(p2);
  return w;
}

TEST(RngFork, IndependentOfParentConsumption) {
  // The forked stream depends on (seed, fork order, stream id) only — not on
  // how far the parent sequence has advanced.
  Rng drained(7);
  for (int i = 0; i < 100; ++i) drained.Uniform();
  Rng fresh(7);
  Rng a = drained.Fork(3);
  Rng b = fresh.Fork(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngFork, SuccessiveForksDiffer) {
  // Equal stream ids on successive Fork calls still yield distinct streams
  // (the per-parent epoch separates them), and distinct stream ids differ.
  Rng parent(11);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(0);
  Rng c = parent.Fork(1);
  EXPECT_NE(a.Uniform(), b.Uniform());
  EXPECT_NE(a.Uniform(), c.Uniform());
}

TEST(PlannerDeterminism, Opt0ThreadCountInvariant) {
  Matrix g = AllRangeGram(24);
  Opt0Options opts;
  opts.p = 2;
  opts.restarts = 4;
  auto run = [&] {
    Rng rng(42);
    return Opt0(g, opts, &rng);
  };
  Opt0Result narrow = WithRestartThreads(1, run);
  for (int threads : {4, 16}) {
    Opt0Result wide = WithRestartThreads(threads, run);
    EXPECT_TRUE(BitIdentical(narrow.error, wide.error)) << threads;
    EXPECT_TRUE(BitIdentical(narrow.theta, wide.theta)) << threads;
  }
}

TEST(PlannerDeterminism, OptKronThreadCountInvariant) {
  UnionWorkload w = SmallCensus();
  OptKronOptions opts;
  opts.restarts = 3;
  opts.max_cycles = 3;
  auto run = [&] {
    Rng rng(5);
    return OptKron(w, opts, &rng);
  };
  OptKronResult narrow = WithRestartThreads(1, run);
  for (int threads : {4, 16}) {
    OptKronResult wide = WithRestartThreads(threads, run);
    EXPECT_TRUE(BitIdentical(narrow.error, wide.error)) << threads;
    ASSERT_EQ(narrow.thetas.size(), wide.thetas.size());
    for (size_t i = 0; i < narrow.thetas.size(); ++i)
      EXPECT_TRUE(BitIdentical(narrow.thetas[i], wide.thetas[i]))
          << threads << " threads, theta " << i;
  }
}

TEST(PlannerDeterminism, OptMarginalsThreadCountInvariant) {
  Domain d({3, 4, 2});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {IdentityBlock(3), TotalBlock(4), IdentityBlock(2)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(3), IdentityBlock(4), TotalBlock(2)};
  w.AddProduct(p2);
  OptMarginalsOptions opts;
  opts.restarts = 3;
  auto run = [&] {
    Rng rng(13);
    return OptMarginals(w, opts, &rng);
  };
  OptMarginalsResult narrow = WithRestartThreads(1, run);
  for (int threads : {4, 16}) {
    OptMarginalsResult wide = WithRestartThreads(threads, run);
    EXPECT_TRUE(BitIdentical(narrow.error, wide.error)) << threads;
    EXPECT_TRUE(BitIdentical(narrow.theta, wide.theta)) << threads;
  }
}

TEST(PlannerDeterminism, OptimizeStrategyThreadCountInvariant) {
  UnionWorkload w = SmallCensus();
  HdmmOptions options;
  options.restarts = 2;
  options.seed = 99;
  auto run = [&] { return OptimizeStrategy(w, options); };
  HdmmResult narrow = WithRestartThreads(1, run);
  for (int threads : {4, 16}) {
    HdmmResult wide = WithRestartThreads(threads, run);
    EXPECT_EQ(narrow.chosen_operator, wide.chosen_operator) << threads;
    EXPECT_TRUE(BitIdentical(narrow.squared_error, wide.squared_error))
        << threads;
    // The strategies themselves must match bit-for-bit, not just their
    // errors: compare through the canonical serialization.
    EXPECT_EQ(SerializeStrategy(*narrow.strategy),
              SerializeStrategy(*wide.strategy))
        << threads;
  }
}

TEST(PlannerDeterminism, RepeatedRunsIdenticalOnSamePool) {
  // Two back-to-back runs with the same seed (same pool) must agree — the
  // restart Rng forking may not leak state between calls through anything
  // but the caller's Rng instance.
  UnionWorkload w = SmallCensus();
  HdmmOptions options;
  options.restarts = 2;
  options.seed = 7;
  HdmmResult first = OptimizeStrategy(w, options);
  HdmmResult second = OptimizeStrategy(w, options);
  EXPECT_EQ(first.chosen_operator, second.chosen_operator);
  EXPECT_TRUE(BitIdentical(first.squared_error, second.squared_error));
  EXPECT_EQ(SerializeStrategy(*first.strategy),
            SerializeStrategy(*second.strategy));
}

}  // namespace
}  // namespace hdmm
