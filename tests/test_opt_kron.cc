#include "core/opt_kron.h"

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

UnionWorkload Prefix2D(int64_t n) {
  Domain d({n, n});
  return MakeProductWorkload(d, {PrefixBlock(n), PrefixBlock(n)});
}

TEST(OptKron, ErrorDecompositionTheorem5) {
  // ||(W1 x W2)(A1 x A2)^+||_F^2 = prod_i ||W_i A_i^+||_F^2.
  Rng rng(1);
  Matrix w1 = PrefixBlock(4), w2 = AllRangeBlock(3);
  Matrix a1 = Matrix::RandomUniform(5, 4, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(4, 3, &rng, 0.1, 1.0);
  double err1 = MatMul(w1, PseudoInverse(a1)).FrobeniusNormSquared();
  double err2 = MatMul(w2, PseudoInverse(a2)).FrobeniusNormSquared();
  Matrix wk = KronExplicit({w1, w2});
  Matrix ak = KronExplicit({a1, a2});
  double err_full = MatMul(wk, PseudoInverse(ak)).FrobeniusNormSquared();
  EXPECT_NEAR(err_full, err1 * err2, 1e-6 * err_full);
}

TEST(OptKron, UnionDecompositionTheorem6) {
  // ||W_[k] A^+||_F^2 = sum_j w_j^2 prod_i ||W_i^(j) A_i^+||_F^2.
  Rng rng(2);
  Domain d({3, 4});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(3), IdentityBlock(4)};
  p1.weight = 1.5;
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {IdentityBlock(3), PrefixBlock(4)};
  p2.weight = 0.5;
  w.AddProduct(p2);

  Matrix a1 = Matrix::RandomUniform(4, 3, &rng, 0.1, 1.0);
  Matrix a2 = Matrix::RandomUniform(5, 4, &rng, 0.1, 1.0);
  Matrix ak = KronExplicit({a1, a2});
  double err_full =
      MatMul(w.Explicit(), PseudoInverse(ak)).FrobeniusNormSquared();

  double err_decomposed = 0.0;
  for (const ProductWorkload& prod : w.products()) {
    double term = prod.weight * prod.weight;
    term *= MatMul(prod.factors[0], PseudoInverse(a1)).FrobeniusNormSquared();
    term *= MatMul(prod.factors[1], PseudoInverse(a2)).FrobeniusNormSquared();
    err_decomposed += term;
  }
  EXPECT_NEAR(err_full, err_decomposed, 1e-6 * err_full);
}

TEST(OptKron, SingleProductMatchesPerAttributeOpt0) {
  const int64_t n = 8;
  UnionWorkload w = Prefix2D(n);
  OptKronOptions opts;
  opts.p = {2, 2};
  Rng rng(3);
  OptKronResult res = OptKron(w, opts, &rng);
  ASSERT_EQ(res.thetas.size(), 2u);
  // The reported error matches the product of per-factor traces.
  double prod = 1.0;
  for (int i = 0; i < 2; ++i) {
    prod *= PIdentityObjective::TraceWithGram(res.thetas[static_cast<size_t>(i)],
                                              PrefixGram(n));
  }
  EXPECT_NEAR(res.error, prod, 1e-6 * prod);
}

TEST(OptKron, BeatsIdentityOnPrefix2D) {
  const int64_t n = 16;
  UnionWorkload w = Prefix2D(n);
  // Identity strategy error: prod tr[G_i].
  double id_err = PrefixGram(n).Trace() * PrefixGram(n).Trace();
  OptKronOptions opts;
  opts.p = {2, 2};
  opts.restarts = 3;
  Rng rng(4);
  OptKronResult res = OptKron(w, opts, &rng);
  EXPECT_LT(res.error, 0.7 * id_err);
}

TEST(OptKron, ReportedErrorMatchesStrategyError) {
  // The OPT_x objective value must equal the KronStrategy's SquaredError.
  const int64_t n = 6;
  Domain d({n, n});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(n), TotalBlock(n)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {TotalBlock(n), AllRangeBlock(n)};
  w.AddProduct(p2);

  OptKronOptions opts;
  opts.p = {2, 2};
  opts.max_cycles = 4;
  Rng rng(5);
  OptKronResult res = OptKron(w, opts, &rng);
  KronStrategy strat(KronStrategyFactors(res));
  EXPECT_NEAR(strat.Sensitivity(), 1.0, 1e-10);
  EXPECT_NEAR(strat.SquaredError(w), res.error, 1e-5 * res.error);
}

TEST(OptKron, CyclesImproveUnions) {
  const int64_t n = 8;
  Domain d({n, n});
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {AllRangeBlock(n), TotalBlock(n)};
  w.AddProduct(p1);
  ProductWorkload p2;
  p2.factors = {IdentityBlock(n), AllRangeBlock(n)};
  w.AddProduct(p2);

  Rng rng1(6), rng2(6);
  OptKronOptions one_cycle;
  one_cycle.p = {1, 1};
  one_cycle.max_cycles = 1;
  OptKronOptions many;
  many.p = {1, 1};
  many.max_cycles = 8;
  double e1 = OptKron(w, one_cycle, &rng1).error;
  double e8 = OptKron(w, many, &rng2).error;
  EXPECT_LE(e8, e1 + 1e-9);
}

TEST(OptKron, AttributeDefaultPConvention) {
  Domain d({64, 32});
  UnionWorkload w(d);
  ProductWorkload p;
  p.factors = {PrefixBlock(64), IdentityBlock(32)};
  w.AddProduct(p);
  EXPECT_EQ(AttributeDefaultP(w, 0), 4);  // 64/16.
  EXPECT_EQ(AttributeDefaultP(w, 1), 1);  // Identity is simple.
}

}  // namespace
}  // namespace hdmm
