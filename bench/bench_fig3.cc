// Figure 3 (Appendix C.2): distribution of locally optimal strategies across
// random restarts, for OPT_0 on range queries and OPT_M on up-to-4-way
// marginals. The paper: range-query local minima are tightly concentrated
// (no restarts needed); marginals vary more, with ~25% of restarts within
// 1.05x of the best.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/opt0.h"
#include "core/opt_marginals.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace {

void PrintHistogram(const char* name, std::vector<double> errors) {
  double best = *std::min_element(errors.begin(), errors.end());
  std::vector<double> rel;
  for (double e : errors) rel.push_back(std::sqrt(e / best));
  std::sort(rel.begin(), rel.end());
  std::printf("%s: %zu restarts\n", name, rel.size());
  const double edges[] = {1.0, 1.01, 1.05, 1.10, 1.25, 1e9};
  const char* labels[] = {"[1.00,1.01)", "[1.01,1.05)", "[1.05,1.10)",
                          "[1.10,1.25)", ">=1.25"};
  for (int b = 0; b < 5; ++b) {
    int count = 0;
    for (double r : rel)
      if (r >= edges[b] && r < edges[b + 1]) ++count;
    std::printf("  %-14s %4d  ", labels[b], count);
    for (int i = 0; i < count; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("  min %.4f  median %.4f  max %.4f\n\n", rel.front(),
              rel[rel.size() / 2], rel.back());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Figure 3: distribution of local minima over random restarts",
      "Figure 3 of McKenna et al. 2018");

  // OPT_0 on range queries.
  {
    const int64_t n = full ? 256 : 64;
    const int restarts = full ? 50 : 20;
    Matrix gram = AllRangeGram(n);
    std::vector<double> errors;
    for (int r = 0; r < restarts; ++r) {
      Rng rng(static_cast<uint64_t>(r));
      Opt0Options opts;
      opts.p = static_cast<int>(std::max<int64_t>(2, n / 16));
      opts.restarts = 1;
      errors.push_back(Opt0(gram, opts, &rng).error);
    }
    PrintHistogram("OPT_0, AllRange", std::move(errors));
  }

  // OPT_M on up-to-4-way marginals, d = 8, n = 10.
  {
    const int restarts = full ? 100 : 25;
    Domain d(std::vector<int64_t>(8, 10));
    UnionWorkload w = UpToKWayMarginals(d, 4);
    std::vector<double> errors;
    for (int r = 0; r < restarts; ++r) {
      Rng rng(static_cast<uint64_t>(1000 + r));
      OptMarginalsOptions opts;
      opts.restarts = 1;
      opts.workload_aware_init = false;  // Pure random restarts (Figure 3).
      errors.push_back(OptMarginals(w, opts, &rng).error);
    }
    PrintHistogram("OPT_M, up-to-4-way marginals", std::move(errors));
  }
  std::printf(
      "Shape check (paper): range-query minima concentrated near 1.00; "
      "marginals more spread with ~25%% within 1.05.\n");
  return 0;
}
