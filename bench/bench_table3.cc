// Table 3: error ratios of all competing algorithms across low- and
// high-dimensional datasets/workloads at epsilon = 1. Columns follow the
// paper: '-' = not applicable for the configuration, '*' = infeasible at
// this scale (exactly the paper's marks for MM, LRM beyond 1D, DAWA beyond
// 2D, etc.).
//
// Default scale shrinks the 1D/2D domains (Patent 1024 -> 256,
// Taxi 256x256 -> 64x64) so the full suite runs in minutes; --full restores
// paper-scale domains. High-dimensional configs (CPH/Adult/CPS) run at the
// paper's exact domain sizes in both modes.
#include <cmath>
#include <limits>

#include "baselines/baselines.h"
#include "baselines/dawa.h"
#include "baselines/datacube.h"
#include "baselines/greedy_h.h"
#include "baselines/hb.h"
#include "baselines/lrm.h"
#include "baselines/privbayes.h"
#include "baselines/privelet.h"
#include "baselines/quadtree.h"
#include "bench_util.h"
#include "core/error.h"
#include "core/hdmm.h"
#include "core/opt0.h"
#include "linalg/pinv.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace {

using namespace hdmm;

constexpr double kNA = std::numeric_limits<double>::quiet_NaN();
constexpr double kInfeasible = -1.0;

// Column order of the printed table.
const std::vector<std::string> kColumns = {
    "Identity", "LM", "MM", "LRM", "HDMM", "Privelet", "HB",
    "Quadtree", "GreedyH", "DAWA", "DataCube", "PrivBayes"};

struct Row {
  std::string label;
  double identity = kNA, lm = kNA, mm = kInfeasible, lrm = kNA, hdmm = 1.0,
         privelet = kNA, hb = kNA, quadtree = kNA, greedyh = kNA, dawa = kNA,
         datacube = kNA, privbayes = kNA;
  void Print() const {
    hdmm_bench::PrintRow(label, {identity, lm, mm, lrm, hdmm, privelet, hb,
                                 quadtree, greedyh, dawa, datacube,
                                 privbayes});
  }
};

double Ratio(double err, double hdmm_err) { return std::sqrt(err / hdmm_err); }

// Empirical expected total squared error of a data-dependent mechanism at
// epsilon = 1, averaged over trials, expressed in the library's
// (eps^2/2-scaled) convention for ratio compatibility.
template <typename RunFn>
double EmpiricalError(const Vector& truth, int trials, RunFn run) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t)
    total += EmpiricalSquaredError(truth, run(t));
  return total / trials / 2.0;  // Divide by 2/eps^2 with eps = 1.
}

// ------------------------------------------------------------- 1D configs

void Run1D(const char* dataset, const char* workload_name, const Matrix& w,
           const Matrix& gram, bool run_dawa, Rng* data_rng) {
  const int64_t n = gram.rows();
  Row row;
  row.label = std::string(dataset) + " " + workload_name;

  Rng rng(1);
  Opt0Options opts;
  opts.p = static_cast<int>(std::max<int64_t>(1, n / 16));
  opts.restarts = 3;
  Opt0Result hdmm_res = Opt0(gram, opts, &rng);
  const double hdmm_err = hdmm_res.error;

  row.identity = Ratio(gram.Trace(), hdmm_err);
  // LM error: sens^2 * m, from the explicit workload.
  {
    double sens = w.MaxAbsColSum();
    row.lm = Ratio(sens * sens * static_cast<double>(w.rows()), hdmm_err);
  }
  {
    LrmResult lrm = LowRankMechanismFromGram(gram);
    row.lrm = Ratio(lrm.squared_error, hdmm_err);
  }
  {
    Matrix haar = HaarBlock(n);
    double sens = haar.MaxAbsColSum();
    row.privelet = Ratio(sens * sens * TracePinvGram(Gram(haar), gram),
                         hdmm_err);
  }
  {
    Matrix hb = HierarchicalBlock(n, SelectHbBranching(n));
    double sens = hb.MaxAbsColSum();
    row.hb = Ratio(sens * sens * TracePinvGram(Gram(hb), gram), hdmm_err);
  }
  {
    GreedyHResult gh = GreedyH(gram);
    row.greedyh = Ratio(gh.squared_error, hdmm_err);
  }
  if (run_dawa) {
    Domain d({n});
    Vector x = DpbenchStandinDataVector("Patent", n, 100000, data_rng);
    Vector truth = MatVec(w, x);
    DawaOptions dopts;
    Rng trial_rng(7);
    double emp = EmpiricalError(truth, 5, [&](int) {
      return RunDawa(w, x, 1.0, dopts, &trial_rng);
    });
    row.dawa = Ratio(emp, hdmm_err);
  } else {
    row.dawa = kInfeasible;
  }
  row.Print();
}

// ------------------------------------------------------------- 2D configs

void Run2D(const char* dataset, const char* workload_name,
           const UnionWorkload& w, int64_t n) {
  Row row;
  row.label = std::string(dataset) + " " + workload_name;

  HdmmOptions opts;
  opts.restarts = 2;
  opts.use_marginals = false;
  HdmmResult hdmm_res = OptimizeStrategy(w, opts);
  const double hdmm_err = hdmm_res.squared_error;

  row.identity = Ratio(MakeIdentityBaseline(w.domain())->SquaredError(w),
                       hdmm_err);
  row.lm = Ratio(LaplaceMechanismSquaredError(w), hdmm_err);
  row.privelet = Ratio(MakePriveletStrategy(w.domain())->SquaredError(w),
                       hdmm_err);
  row.hb = Ratio(MakeHbStrategy(w.domain())->SquaredError(w), hdmm_err);
  row.quadtree = Ratio(MakeQuadtreeStrategy(n, n)->SquaredError(w), hdmm_err);
  row.lrm = kInfeasible;
  row.dawa = kInfeasible;  // Times out at these scales (as in the paper).
  row.Print();
}

// ----------------------------------------------------- high-dim configs

void RunCph(bool full) {
  for (int which = 0; which < (full ? 2 : 1); ++which) {
    const bool plus = (which == 1);
    UnionWorkload w = plus ? Sf1PlusWorkload() : Sf1Workload();
    Row row;
    row.label = std::string("CPH ") + (plus ? "SF1+" : "SF1");

    HdmmOptions opts;
    opts.restarts = 2;
    opts.use_marginals = false;  // 6 attributes but range-heavy workload.
    HdmmResult hdmm_res = OptimizeStrategy(w, opts);
    const double hdmm_err = hdmm_res.squared_error;

    row.identity = Ratio(
        MakeIdentityBaseline(w.domain())->SquaredError(w), hdmm_err);
    row.lm = Ratio(LaplaceMechanismSquaredError(w), hdmm_err);

    if (!plus) {
      // PrivBayes on the national domain (N = 500,480), 2 trials.
      Rng rng(3);
      Vector x = ZipfDataVector(w.domain(), 200000, 1.1, &rng);
      Vector truth = w.ToOperator()->Apply(x);
      PrivBayesOptions popts;
      Rng trial_rng(5);
      double emp = EmpiricalError(truth, 2, [&](int) {
        return RunPrivBayes(w, x, 1.0, popts, &trial_rng);
      });
      row.privbayes = Ratio(emp, hdmm_err);
    }
    row.Print();
  }
}

void RunMarginalConfig(const char* dataset, const char* workload_name,
                       const Domain& domain, const UnionWorkload& w,
                       bool run_datacube,
                       const std::vector<uint32_t>& workload_masks,
                       bool run_privbayes) {
  Row row;
  row.label = std::string(dataset) + " " + workload_name;

  HdmmOptions opts;
  opts.restarts = 2;
  HdmmResult hdmm_res = OptimizeStrategy(w, opts);
  const double hdmm_err = hdmm_res.squared_error;

  row.identity = Ratio(MakeIdentityBaseline(domain)->SquaredError(w),
                       hdmm_err);
  row.lm = Ratio(LaplaceMechanismSquaredError(w), hdmm_err);
  if (run_datacube) {
    DataCubeResult dc = DataCubeSelect(domain, workload_masks);
    row.datacube = Ratio(dc.squared_error, hdmm_err);
  }
  if (run_privbayes) {
    Rng rng(4);
    Vector x = ZipfDataVector(domain, 50000, 1.1, &rng);
    Vector truth = w.ToOperator()->Apply(x);
    PrivBayesOptions popts;
    Rng trial_rng(6);
    double emp = EmpiricalError(truth, 3, [&](int) {
      return RunPrivBayes(w, x, 1.0, popts, &trial_rng);
    });
    row.privbayes = Ratio(emp, hdmm_err);
  }
  row.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Table 3: error ratios across datasets and workloads",
                     "Table 3 of McKenna et al. 2018 (epsilon = 1)");
  hdmm_bench::PrintHeader("configuration", kColumns);

  // ---- Patent (1D). Paper scale 1024; default 256.
  const int64_t n1 = full ? 1024 : 256;
  Rng data_rng(11);
  Run1D("Patent", "Width32Range", WidthRangeBlock(n1, 32),
        WidthRangeGram(n1, 32), /*run_dawa=*/true, &data_rng);
  Run1D("Patent", "Prefix1D", PrefixBlock(n1), PrefixGram(n1),
        /*run_dawa=*/true, &data_rng);
  {
    Rng rng(42);
    std::vector<int> perm = rng.Permutation(static_cast<int>(n1));
    // DAWA is marked * for Permuted Range in the paper (timed out).
    Run1D("Patent", "PermutedRange", PermutedRangeBlock(n1, &rng),
          PermuteGram(AllRangeGram(n1), perm), /*run_dawa=*/false, &data_rng);
  }

  // ---- Taxi (2D). Paper scale 256x256; default 64x64.
  const int64_t n2 = full ? 256 : 64;
  {
    Domain d({n2, n2});
    Matrix p = PrefixBlock(n2), i = IdentityBlock(n2);
    UnionWorkload prefix_identity(d);
    ProductWorkload a;
    a.factors = {p, i};
    prefix_identity.AddProduct(std::move(a));
    ProductWorkload b;
    b.factors = {i, p};
    prefix_identity.AddProduct(std::move(b));
    Run2D("Taxi", "PrefixIdentity", prefix_identity, n2);
    Run2D("Taxi", "Prefix2D", MakeProductWorkload(d, {p, p}), n2);
  }

  // ---- CPH: SF1 (and SF1+ under --full).
  RunCph(full);

  // ---- Adult: marginals workloads.
  {
    Domain d = AdultDomain();
    std::vector<uint32_t> all_masks, two_masks;
    for (uint32_t m = 0; m < 32; ++m) {
      all_masks.push_back(m);
      if (PopCount(m) == 2) two_masks.push_back(m);
    }
    RunMarginalConfig("Adult", "AllMarginals", d, AllMarginals(d),
                      /*run_datacube=*/true, all_masks,
                      /*run_privbayes=*/true);
    RunMarginalConfig("Adult", "2wayMarginals", d, KWayMarginals(d, 2),
                      /*run_datacube=*/true, two_masks,
                      /*run_privbayes=*/true);
  }

  // ---- CPS: range-marginals workloads.
  {
    Domain d = CpsDomain();
    std::vector<Matrix> blocks(5);
    // Prefix is the paper's compact proxy for all range queries (Section
    // 8.1); the AllRange sets would make the largest product's query count
    // explode past 10^8, which matters for the empirical PrivBayes rows.
    blocks[0] = PrefixBlock(100);  // income
    blocks[1] = PrefixBlock(50);   // age
    RunMarginalConfig("CPS", "AllRangeMarginals", d, AllRangeMarginals(d, blocks),
                      /*run_datacube=*/false, {}, /*run_privbayes=*/true);
    RunMarginalConfig("CPS", "2wayRangeMarginals", d,
                      KWayRangeMarginals(d, 2, blocks),
                      /*run_datacube=*/false, {}, /*run_privbayes=*/true);
  }

  std::printf(
      "\nPaper (at full scale): Patent Width32 1.25/7.06/*/3.21/1.00, "
      "Prefix1D 3.34/151/*/2.44/1.00, Permuted 2.36/877000/*/*/1.00;\n"
      "  Taxi PrefixIdentity 1.44/65.0 (HB 4.05, QuadTree 4.71), Prefix2D "
      "4.75/2422 (HB 2.03, QuadTree 1.95);\n"
      "  CPH SF1 3.07/9.32 (PrivBayes 66700), SF1+ 3.16/13.7 (PrivBayes "
      "6930);\n"
      "  Adult AllMarginals 1.38/11.2 (DataCube 4.57, PrivBayes 20.5), 2way "
      "5.30/2.11 (DataCube 2.01, PrivBayes 155);\n"
      "  CPS AllRangeMarg 1.49/421000 (PrivBayes 4.74), 2wayRangeMarg "
      "5.79/53200 (PrivBayes 24.8)\n");
  return 0;
}
