// Figure 1b: strategy-selection runtime vs total domain size N = n^3 on the
// Prefix 3D workload. HDMM (OPT_x) decomposes into three small OPT_0
// problems and scales far beyond LRM, which needs the dense N x N workload
// (the paper shows LRM stopping near N ~ 10^4 while HDMM continues to 10^9).
#include <cstdio>

#include "baselines/lrm.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/opt_kron.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 1b: runtime vs N = n^3, Prefix (3D)",
                     "Figure 1(b) of McKenna et al. 2018");
  std::printf("%-12s %-8s %12s %12s\n", "N", "n", "LRM(s)", "HDMM(s)");

  std::vector<int64_t> ns = {8, 16, 32, 64, 128};
  if (full) ns.push_back(256);

  for (int64_t n : ns) {
    const int64_t big_n = n * n * n;
    // LRM needs the explicit N x N Gram (and a dense eigendecomposition):
    // only feasible while N is small.
    double lrm_s = -1.0;
    if (big_n <= 1024) {
      Matrix g1 = PrefixGram(n);
      Matrix gram3 = KronExplicit({g1, g1, g1});
      WallTimer t;
      LowRankMechanismFromGram(gram3);
      lrm_s = t.Seconds();
    }

    Domain d({n, n, n});
    Matrix p = PrefixBlock(n);
    UnionWorkload w = MakeProductWorkload(d, {p, p, p});
    WallTimer t;
    Rng rng(1);
    OptKronOptions opts;
    OptKron(w, opts, &rng);
    double hdmm_s = t.Seconds();

    if (lrm_s < 0) {
      std::printf("%-12lld %-8lld %12s %12.3f\n",
                  static_cast<long long>(big_n), static_cast<long long>(n),
                  "*", hdmm_s);
    } else {
      std::printf("%-12lld %-8lld %12.3f %12.3f\n",
                  static_cast<long long>(big_n), static_cast<long long>(n),
                  lrm_s, hdmm_s);
    }
  }
  std::printf(
      "\nShape check (paper): LRM walls out near N ~ 10^4; HDMM's "
      "decomposed optimization keeps going (10^9 at paper scale).\n");
  return 0;
}
