// Shared helpers for the experiment binaries. Each bench regenerates one
// table or figure of the paper (see DESIGN.md section 6) and prints the
// paper's rows/series; pass --full to run at full paper scale.
#ifndef HDMM_BENCH_BENCH_UTIL_H_
#define HDMM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "linalg/gemm.h"

namespace hdmm_bench {

/// True if --full was passed (paper-scale domains; slower).
inline bool FullScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

/// Prints a header banner for one experiment.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s; error ratios are sqrt(Err_other/Err_HDMM), "
              "epsilon-independent)\n\n",
              paper_ref.c_str());
}

/// Prints one row of a ratio table: label followed by values ("-" for NaN,
/// "*" for infeasible/skipped).
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values, int width = 10) {
  std::printf("%-28s", label.c_str());
  for (double v : values) {
    if (v != v) {  // NaN = not applicable.
      std::printf("%*s", width, "-");
    } else if (v < 0) {  // Negative = infeasible marker.
      std::printf("%*s", width, "*");
    } else {
      std::printf("%*.2f", width, v);
    }
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<std::string>& columns,
                        int width = 10) {
  std::printf("%-28s", label.c_str());
  for (const auto& c : columns) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

/// Opens a BENCH_*.json object and writes the shared header fields every
/// bench records: the default pool width, the host's core count (so
/// validators can tell a 1-core box from a real multi-core run), the
/// dispatched GEMM ISA tier, and its cache-tuned blocking constants. The
/// caller finishes the object (results arrays + closing brace).
inline void WriteJsonHeader(std::FILE* f, const std::string& bench) {
  const hdmm::GemmBlocking bl = hdmm::ActiveGemmBlocking();
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench.c_str());
  std::fprintf(f, "  \"pool_threads\": %d,\n",
               hdmm::ThreadPool::Global().num_threads());
  std::fprintf(f, "  \"host_cores\": %u,\n", hw == 0 ? 1u : hw);
  std::fprintf(f, "  \"isa\": \"%s\",\n", hdmm::GemmIsaName());
  std::fprintf(f,
               "  \"blocking\": {\"mr\": %d, \"nr\": %d, \"mc\": %lld, "
               "\"kc\": %lld, \"nc\": %lld},\n",
               bl.mr, bl.nr, static_cast<long long>(bl.mc),
               static_cast<long long>(bl.kc), static_cast<long long>(bl.nc));
}

/// Writes a `"metrics": {...}` member holding the live metrics-registry
/// snapshot (hdmm::Metrics::WriteJson schema — the same document
/// `hdmm_cli --stats-json` emits; see docs/observability.md). Call between
/// other members; emits the trailing comma when `trailing_comma`.
inline void WriteMetricsSection(std::FILE* f, bool trailing_comma = true) {
  std::fprintf(f, "  \"metrics\": ");
  hdmm::Metrics::WriteJson(f, 2);
  std::fprintf(f, trailing_comma ? ",\n" : "\n");
}

}  // namespace hdmm_bench

#endif  // HDMM_BENCH_BENCH_UTIL_H_
