// Figure 1d: runtime of the MEASURE + RECONSTRUCT phase vs total domain
// size, for strategies produced by OPT_x (Kronecker pseudo-inverse), OPT_+
// (LSMR iterative inference), and OPT_M (closed-form marginals inverse).
// The paper's shape: OPT_x and OPT_M scale to N ~ 10^9; OPT_+ stops earlier
// because its inference is iterative.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/pidentity.h"
#include "core/strategy.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

// A small p-Identity-like factor for timing (structure matters, values
// don't).
Matrix TimingFactor(int64_t n, Rng* rng) {
  Matrix theta = Matrix::RandomUniform(std::max<int64_t>(1, n / 16), n, rng,
                                       0.1, 1.0);
  return PIdentityObjective::BuildStrategy(theta);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Figure 1d: measure+reconstruct runtime vs N by strategy type",
      "Figure 1(d) of McKenna et al. 2018");
  std::printf("%-12s %12s %12s %12s\n", "N", "OPTx(s)", "OPT+(s)", "OPTM(s)");

  std::vector<int64_t> ns = {32, 64, 128, 256};
  if (full) ns.push_back(512);

  Rng rng(1);
  for (int64_t n : ns) {
    const int64_t big_n = n * n;
    Vector x(static_cast<size_t>(big_n), 0.0);  // All-zero data (Section 8.1).

    // OPT_x-style: product of two p-identity blocks.
    KronStrategy kron({TimingFactor(n, &rng), TimingFactor(n, &rng)});
    WallTimer t1;
    Vector y = kron.Measure(x, 1.0, &rng);
    kron.Reconstruct(y);
    double kron_s = t1.Seconds();

    // OPT_+-style: union of two products, LSMR inference.
    UnionKronStrategy uni(
        {{TimingFactor(n, &rng), IdentityBlock(n)},
         {IdentityBlock(n), TimingFactor(n, &rng)}},
        {{0}, {1}});
    WallTimer t2;
    Vector y2 = uni.Measure(x, 1.0, &rng);
    uni.Reconstruct(y2);
    double uni_s = t2.Seconds();

    // OPT_M-style: weighted marginals over a 2-attribute domain.
    Domain d({n, n});
    Vector theta = {0.3, 1.0, 1.0, 0.7};
    MarginalsStrategy marg(d, theta);
    WallTimer t3;
    Vector y3 = marg.Measure(x, 1.0, &rng);
    marg.Reconstruct(y3);
    double marg_s = t3.Seconds();

    std::printf("%-12lld %12.3f %12.3f %12.3f\n",
                static_cast<long long>(big_n), kron_s, uni_s, marg_s);
  }
  std::printf(
      "\nShape check (paper): closed-form inference (OPTx, OPTM) scales "
      "further than iterative LSMR inference (OPT+).\n");
  return 0;
}
