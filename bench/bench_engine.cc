// Serving-engine benchmarks: the compute-once/serve-many claim in numbers.
//
//   plan   cold OPT_HDMM run vs warm Plan() through the strategy cache's
//          disk tier (simulated restart) and memory tier, on the
//          census-style example workload
//   batch  10k box queries answered one dense row at a time (today's
//          `W x_hat` serving path) vs AnswerBatch over the session's
//          summed-area table, pool-parallel
//
// Emits BENCH_engine.json in the working directory; the CI smoke job parses
// it and fails the build if the cache ever gets slower than a cold plan.
#include <cmath>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "workload/parser.h"

namespace {

using namespace hdmm;

// The parser-doc census-style example: identity+prefix style products over a
// sex x age x race schema. --full widens race to the full SF1-ish 128.
UnionWorkload CensusWorkload(bool full) {
  const std::string spec = full ? "domain sex=2 age=115 race=128\n"
                                : "domain sex=2 age=115 race=64\n";
  return ParseWorkloadOrDie(spec +
                            "product sex=identity age=prefix\n"
                            "product age=prefix race=identity\n"
                            "product sex=identity race=identity\n"
                            "product age=width(10)\n");
}

struct PlanTimings {
  double cold_s = 0.0;
  double warm_disk_s = 0.0;
  double warm_mem_s = 0.0;
};

PlanTimings BenchPlan(const UnionWorkload& w, const std::string& cache_dir) {
  std::filesystem::remove_all(cache_dir);
  EngineOptions options;
  options.optimizer.restarts = 1;
  options.optimizer.seed = 7;
  options.cache.disk_dir = cache_dir;

  PlanTimings t;
  {
    Engine cold_engine(options);
    PlanResult cold = cold_engine.Plan(w);
    if (PlanSource::kOptimized != cold.source) {
      std::fprintf(stderr, "expected a cold plan, got %s\n",
                   PlanSourceName(cold.source));
    }
    t.cold_s = cold.seconds;
    std::printf("  cold plan (OPT_HDMM):      %9.3f ms  fingerprint %s\n",
                1e3 * t.cold_s, cold.fingerprint.Hex().c_str());
  }
  {
    // Fresh engine over the same directory = restart: the plan is a file
    // read. Best of 5 to measure the steady state, not the page cache warmup.
    Engine warm_engine(options);
    for (int rep = 0; rep < 5; ++rep) {
      warm_engine.cache().ClearMemory();
      PlanResult warm = warm_engine.Plan(w);
      if (PlanSource::kDiskCache != warm.source) {
        std::fprintf(stderr, "expected a disk hit, got %s\n",
                     PlanSourceName(warm.source));
      }
      t.warm_disk_s = rep == 0 ? warm.seconds
                               : std::min(t.warm_disk_s, warm.seconds);
    }
    std::printf("  warm plan (disk cache):    %9.3f ms  (%.0fx)\n",
                1e3 * t.warm_disk_s, t.cold_s / t.warm_disk_s);
    for (int rep = 0; rep < 5; ++rep) {
      PlanResult warm = warm_engine.Plan(w);
      if (PlanSource::kMemoryCache != warm.source) {
        std::fprintf(stderr, "expected a memory hit, got %s\n",
                     PlanSourceName(warm.source));
      }
      t.warm_mem_s = rep == 0 ? warm.seconds
                              : std::min(t.warm_mem_s, warm.seconds);
    }
    std::printf("  warm plan (memory cache):  %9.3f ms  (%.0fx)\n",
                1e3 * t.warm_mem_s, t.cold_s / t.warm_mem_s);
  }
  return t;
}

struct FailpointTimings {
  double disabled_check_ns = 0.0;  ///< Registry empty: the fast path.
  double armed_other_check_ns = 0.0;  ///< Some *other* point armed.
  double warm_mem_armed_s = 0.0;  ///< Warm-mem Plan with an off-point armed.
  double overhead_pct_bound = 0.0;  ///< Computed worst-case on a warm Plan.
};

// The robustness tier's standing cost: every environmental code path now
// carries HDMM_FAILPOINT sites, which must be free when nothing is armed.
// Measures the per-check cost with the registry empty (one relaxed atomic
// load + a predicted-untaken branch) and with an unrelated point armed (the
// slow path: a registry lookup that misses), then bounds the worst-case
// overhead on a warm in-memory Plan assuming a generous per-plan site count.
FailpointTimings BenchFailpoints(const UnionWorkload& w,
                                 const std::string& cache_dir,
                                 double warm_mem_baseline_s) {
  constexpr int64_t kIters = 50'000'000;
  FailpointTimings t;
  int64_t fired = 0;

  WallTimer timer;
  for (int64_t i = 0; i < kIters; ++i) {
    if (HDMM_FAILPOINT("bench.engine.probe")) ++fired;
  }
  t.disabled_check_ns = timer.Seconds() * 1e9 / static_cast<double>(kIters);

  Failpoints::Activate("bench.engine.other", "off");
  timer.Restart();
  for (int64_t i = 0; i < kIters; ++i) {
    if (HDMM_FAILPOINT("bench.engine.probe")) ++fired;
  }
  t.armed_other_check_ns =
      timer.Seconds() * 1e9 / static_cast<double>(kIters);

  {
    // Warm-mem Plan with the registry non-empty: the realistic "operator
    // left a failpoint armed" regime. Best of 5, same as the baseline arm.
    EngineOptions options;
    options.optimizer.restarts = 1;
    options.optimizer.seed = 7;
    options.cache.disk_dir = cache_dir;
    Engine engine(options);
    engine.Plan(w);  // Promote disk -> memory once.
    for (int rep = 0; rep < 5; ++rep) {
      PlanResult warm = engine.Plan(w);
      t.warm_mem_armed_s = rep == 0 ? warm.seconds
                                    : std::min(t.warm_mem_armed_s,
                                               warm.seconds);
    }
  }
  Failpoints::Deactivate("bench.engine.other");

  // Worst-case bound, deterministic by construction: even if a warm Plan
  // crossed 64 disabled sites (it crosses far fewer), the added latency is
  // 64 * disabled_check_ns.
  constexpr double kGenerousSitesPerPlan = 64.0;
  t.overhead_pct_bound = 100.0 * kGenerousSitesPerPlan *
                         (t.disabled_check_ns * 1e-9) / warm_mem_baseline_s;

  std::printf("  disabled check:            %9.3f ns  (registry empty)\n",
              t.disabled_check_ns);
  std::printf("  disabled check, armed reg: %9.3f ns  (other point armed)\n",
              t.armed_other_check_ns);
  std::printf("  warm plan, armed registry: %9.3f ms  (baseline %.3f ms)\n",
              1e3 * t.warm_mem_armed_s, 1e3 * warm_mem_baseline_s);
  std::printf("  warm-plan overhead bound:  %9.4f %%  (64 sites assumed)\n",
              t.overhead_pct_bound);
  if (fired != 0) std::printf("  (impossible: probe fired %lld)\n",
                              static_cast<long long>(fired));
  return t;
}

struct MetricsTimings {
  double disabled_add_ns = 0.0;  ///< HDMM_METRICS off: the gated fast path.
  double enabled_add_ns = 0.0;   ///< Uncontended single-writer slot update.
  double hist_record_ns = 0.0;   ///< Enabled Histogram::Record.
  double overhead_pct_bound = 0.0;  ///< Worst case on a warm in-memory Plan.
};

// The observability tier's standing cost, mirroring BenchFailpoints: counter
// and histogram sites are compiled into the serving path unconditionally, so
// both the disabled path (one relaxed load + predicted branch) and the
// always-on enabled path (sharded single-writer slot update) must stay in
// the nanoseconds. The CI smoke gate holds the disabled path at ~1 ns and
// the instrumented warm-Plan overhead bound under 1%.
MetricsTimings BenchMetrics(double warm_mem_baseline_s) {
  constexpr int64_t kIters = 50'000'000;
  MetricsTimings t;
  Counter* const probe = Metrics::GetCounter("bench.engine.metrics_probe");
  Histogram* const hist =
      Metrics::GetHistogram("bench.engine.metrics_probe_ns");

  // 4x unrolled so the loop counter amortizes: the figure of interest is
  // the marginal per-op cost of the gate (one relaxed load + predicted
  // branch), not the bench loop's own increment/compare.
  Metrics::SetEnabled(false);
  WallTimer timer;
  for (int64_t i = 0; i < kIters; i += 4) {
    probe->Add(1);
    probe->Add(1);
    probe->Add(1);
    probe->Add(1);
  }
  t.disabled_add_ns = timer.Seconds() * 1e9 / static_cast<double>(kIters);
  Metrics::SetEnabled(true);

  timer.Restart();
  for (int64_t i = 0; i < kIters; i += 4) {
    probe->Add(1);
    probe->Add(1);
    probe->Add(1);
    probe->Add(1);
  }
  t.enabled_add_ns = timer.Seconds() * 1e9 / static_cast<double>(kIters);

  timer.Restart();
  for (int64_t i = 0; i < kIters; ++i) {
    hist->Record(static_cast<uint64_t>(i & 0xffff));
  }
  t.hist_record_ns = timer.Seconds() * 1e9 / static_cast<double>(kIters);

  // Worst-case bound on a warm in-memory Plan, same construction as the
  // failpoint gate: even 64 enabled counter updates per plan (the real path
  // crosses a handful) add only 64 * enabled_add_ns.
  constexpr double kGenerousSitesPerPlan = 64.0;
  t.overhead_pct_bound = 100.0 * kGenerousSitesPerPlan *
                         (t.enabled_add_ns * 1e-9) / warm_mem_baseline_s;

  std::printf("  counter add, disabled:     %9.3f ns  (HDMM_METRICS=off)\n",
              t.disabled_add_ns);
  std::printf("  counter add, enabled:      %9.3f ns  (single-writer slot)\n",
              t.enabled_add_ns);
  std::printf("  histogram record, enabled: %9.3f ns\n", t.hist_record_ns);
  std::printf("  warm-plan overhead bound:  %9.4f %%  (64 sites assumed)\n",
              t.overhead_pct_bound);
  return t;
}

struct BatchTimings {
  int64_t num_queries = 0;
  double one_at_a_time_s = 0.0;
  double batched_s = 0.0;
  double max_abs_diff = 0.0;
};

struct GovernorTimings {
  double touch_ns = 0.0;  ///< Throttled ticket Touch: the per-answer hook.
  double admit_release_us = 0.0;  ///< Full Admit + release cycle (cold path).
  double overhead_pct_bound = 0.0;  ///< Worst case on a warm batched answer.
};

// The resource governor's standing cost on the warm serving path, mirroring
// the failpoint/metrics arms: a session ticket Touch() (LRU recency) fires
// once per public Answer() call and once per AnswerBatch call — the batched
// inner loop is touch-free — and is a relaxed counter bump on 63 of 64
// calls, one governor-lock splice on the 64th. Admit/release is the cold
// path — once per measurement, never per query — and is reported for
// capacity planning, not gated.
GovernorTimings BenchGovernor(const BatchTimings& batch) {
  constexpr int64_t kIters = 50'000'000;
  GovernorTimings t;
  GovernorOptions options;
  options.max_sessions = 64;
  options.memory_budget_bytes = 1ll << 30;
  auto governor = std::make_shared<ResourceGovernor>(options);

  SessionStorageOptions storage;
  auto admitted = governor->Admit(1 << 20, &storage);
  if (!admitted.ok()) {
    std::fprintf(stderr, "governor bench: admit failed: %s\n",
                 admitted.status().ToString().c_str());
    return t;
  }
  AdmissionTicket held = std::move(admitted).value();

  WallTimer timer;
  for (int64_t i = 0; i < kIters; ++i) held.Touch();
  t.touch_ns = timer.Seconds() * 1e9 / static_cast<double>(kIters);

  constexpr int64_t kCycles = 200'000;
  timer.Restart();
  for (int64_t i = 0; i < kCycles; ++i) {
    SessionStorageOptions cycle_storage;
    auto ticket = governor->Admit(1 << 12, &cycle_storage);
    if (!ticket.ok()) break;  // Cannot happen under these limits.
    // The ticket releases its charge at scope exit.
  }
  t.admit_release_us = timer.Seconds() * 1e6 / static_cast<double>(kCycles);

  // Worst-case bound: one Touch per governed call, against the cheaper of
  // the two call shapes that pay it — a single one-at-a-time Answer() or a
  // whole AnswerBatch invocation (whose inner loop is touch-free).
  const double per_single_answer_s =
      batch.one_at_a_time_s / static_cast<double>(batch.num_queries);
  const double cheapest_call_s = std::min(per_single_answer_s, batch.batched_s);
  t.overhead_pct_bound = 100.0 * (t.touch_ns * 1e-9) / cheapest_call_s;

  std::printf("  ticket touch (throttled):  %9.3f ns  (per governed call)\n",
              t.touch_ns);
  std::printf("  admit + release cycle:     %9.3f us  (per measurement)\n",
              t.admit_release_us);
  std::printf("  answer overhead bound:     %9.4f %%  (1 touch per call)\n",
              t.overhead_pct_bound);
  return t;
}

// Today's serving path for an ad-hoc query: materialize its dense indicator
// row over the domain and dot it with x_hat — O(N) per query.
double DenseRowAnswer(const Domain& domain, const Vector& x_hat,
                      const BoxQuery& q) {
  const int64_t n = domain.TotalSize();
  const int d = domain.NumAttributes();
  double total = 0.0;
  std::vector<int64_t> coords(static_cast<size_t>(d));
  for (int64_t cell = 0; cell < n; ++cell) {
    int64_t rest = cell;
    bool inside = true;
    for (int i = d - 1; i >= 0; --i) {
      coords[static_cast<size_t>(i)] = rest % domain.AttributeSize(i);
      rest /= domain.AttributeSize(i);
    }
    for (int i = 0; i < d; ++i) {
      const int64_t c = coords[static_cast<size_t>(i)];
      if (c < q.lo[static_cast<size_t>(i)] || c > q.hi[static_cast<size_t>(i)])
        inside = false;
    }
    if (inside) total += x_hat[static_cast<size_t>(cell)];
  }
  return total;
}

BatchTimings BenchBatch(const Domain& domain, int64_t num_queries) {
  Rng rng(11);
  Vector x_hat(static_cast<size_t>(domain.TotalSize()));
  for (double& v : x_hat) v = rng.Uniform(0.0, 50.0);
  MeasurementSession session(domain, x_hat, 1.0, nullptr);

  std::vector<BoxQuery> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int64_t i = 0; i < num_queries; ++i) {
    BoxQuery q = FullRangeQuery(domain);
    for (int a = 0; a < domain.NumAttributes(); ++a) {
      const double pick = rng.Uniform(0.0, 1.0);
      const int64_t size = domain.AttributeSize(a);
      if (pick < 0.4) {  // Point coordinate on this attribute.
        const int64_t v = static_cast<int64_t>(
            rng.Uniform(0.0, static_cast<double>(size)));
        q.lo[static_cast<size_t>(a)] = v;
        q.hi[static_cast<size_t>(a)] = v;
      } else if (pick < 0.7) {  // Proper sub-range.
        int64_t lo = static_cast<int64_t>(
            rng.Uniform(0.0, static_cast<double>(size)));
        int64_t hi = static_cast<int64_t>(
            rng.Uniform(0.0, static_cast<double>(size)));
        if (lo > hi) std::swap(lo, hi);
        q.lo[static_cast<size_t>(a)] = lo;
        q.hi[static_cast<size_t>(a)] = hi;
      }  // Else: marginalize the attribute out (full range).
    }
    queries.push_back(std::move(q));
  }

  BatchTimings t;
  t.num_queries = num_queries;

  Vector serial(queries.size(), 0.0);
  WallTimer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = DenseRowAnswer(domain, x_hat, queries[i]);
  }
  t.one_at_a_time_s = timer.Seconds();

  timer.Restart();
  const Vector batched = session.AnswerBatch(queries);
  t.batched_s = timer.Seconds();

  for (size_t i = 0; i < queries.size(); ++i) {
    t.max_abs_diff = std::max(t.max_abs_diff,
                              std::fabs(serial[i] - batched[i]));
  }
  std::printf("  one-at-a-time (dense row): %9.3f ms  (%.0f q/s)\n",
              1e3 * t.one_at_a_time_s,
              static_cast<double>(num_queries) / t.one_at_a_time_s);
  std::printf("  AnswerBatch (SAT + pool):  %9.3f ms  (%.0f q/s, %.0fx)\n",
              1e3 * t.batched_s,
              static_cast<double>(num_queries) / t.batched_s,
              t.one_at_a_time_s / t.batched_s);
  std::printf("  max |diff|: %.3g\n", t.max_abs_diff);
  return t;
}

void WriteJson(const PlanTimings& plan, const FailpointTimings& fp,
               const MetricsTimings& mt, const BatchTimings& batch,
               const GovernorTimings& gov, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_engine");
  std::fprintf(f,
               "  \"plan\": {\"cold_s\": %.6f, \"warm_disk_s\": %.6f, "
               "\"warm_mem_s\": %.6f, \"warm_disk_speedup\": %.1f, "
               "\"warm_mem_speedup\": %.1f},\n",
               plan.cold_s, plan.warm_disk_s, plan.warm_mem_s,
               plan.cold_s / plan.warm_disk_s, plan.cold_s / plan.warm_mem_s);
  std::fprintf(f,
               "  \"failpoints\": {\"disabled_check_ns\": %.4f, "
               "\"armed_other_check_ns\": %.4f, \"warm_mem_armed_s\": %.6f, "
               "\"overhead_pct_bound\": %.6f},\n",
               fp.disabled_check_ns, fp.armed_other_check_ns,
               fp.warm_mem_armed_s, fp.overhead_pct_bound);
  std::fprintf(f,
               "  \"metrics_overhead\": {\"disabled_add_ns\": %.4f, "
               "\"enabled_add_ns\": %.4f, \"hist_record_ns\": %.4f, "
               "\"overhead_pct_bound\": %.6f},\n",
               mt.disabled_add_ns, mt.enabled_add_ns, mt.hist_record_ns,
               mt.overhead_pct_bound);
  std::fprintf(f,
               "  \"batch\": {\"num_queries\": %lld, \"one_at_a_time_s\": "
               "%.6f, \"batched_s\": %.6f, \"throughput_speedup\": %.1f, "
               "\"batched_qps\": %.0f, \"max_abs_diff\": %.3g},\n",
               static_cast<long long>(batch.num_queries),
               batch.one_at_a_time_s, batch.batched_s,
               batch.one_at_a_time_s / batch.batched_s,
               static_cast<double>(batch.num_queries) / batch.batched_s,
               batch.max_abs_diff);
  std::fprintf(f,
               "  \"governor\": {\"touch_ns\": %.4f, "
               "\"admit_release_us\": %.4f, "
               "\"overhead_pct_bound\": %.6f},\n",
               gov.touch_ns, gov.admit_release_us, gov.overhead_pct_bound);
  // Live registry snapshot: the cache_hits/misses/quarantine counters CI
  // asserts on come from the same metrics the serving tier reports, not
  // from bench-local bookkeeping.
  hdmm_bench::WriteMetricsSection(f, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = hdmm_bench::FullScale(argc, argv);
  UnionWorkload w = CensusWorkload(full);

  std::printf("=== serving engine: plan latency ===\n");
  std::printf("(census-style workload, %s domain, N=%lld)\n",
              w.domain().ToString().c_str(),
              static_cast<long long>(w.DomainSize()));
  const PlanTimings plan = BenchPlan(w, "bench_engine_cache");

  std::printf("\n=== serving engine: failpoint overhead ===\n");
  const FailpointTimings fp =
      BenchFailpoints(w, "bench_engine_cache", plan.warm_mem_s);

  std::printf("\n=== serving engine: metrics overhead ===\n");
  const MetricsTimings mt = BenchMetrics(plan.warm_mem_s);

  const int64_t num_queries = full ? 100000 : 10000;
  std::printf("\n=== serving engine: batched answering (%lld queries) ===\n",
              static_cast<long long>(num_queries));
  const BatchTimings batch = BenchBatch(w.domain(), num_queries);

  std::printf("\n=== serving engine: governor overhead ===\n");
  const GovernorTimings gov = BenchGovernor(batch);

  WriteJson(plan, fp, mt, batch, gov, "BENCH_engine.json");
  return 0;
}
