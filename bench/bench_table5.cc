// Table 5: up-to-K-way marginals on an 8-dimensional domain with attribute
// size 10 (N = 10^8). Ratios of Identity, LM, and DataCube vs HDMM's OPT_M.
// Paper values: K=1: 435.19/1.18/1.12, K=2: 43.89/1.43/1.03,
// K=3: 8.37/1.96/1.15, K=4: 2.73/3.03/1.21, K=5: 1.33/4.95/1.36,
// K=6: 1.00/9.21/1.67, K=7: 1.07/18.21/2.99, K=8: 1.06/24.94/5.76.
#include <cmath>

#include "baselines/datacube.h"
#include "bench_util.h"
#include "core/opt_marginals.h"
#include "workload/marginals.h"

namespace {

using namespace hdmm;

}  // namespace

int main(int argc, char** argv) {
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Table 5: up-to-K-way marginals, d=8, n=10 (N = 10^8)",
                     "Table 5 of McKenna et al. 2018");
  hdmm_bench::PrintHeader("K", {"Identity", "LM", "DataCube", "HDMM"});

  const int d = 8;
  Domain domain(std::vector<int64_t>(d, 10));
  MarginalsAlgebra algebra(domain.sizes());
  const uint32_t masks = algebra.num_masks();

  for (int k = 1; k <= d; ++k) {
    UnionWorkload w = UpToKWayMarginals(domain, k);
    Vector tau = algebra.WorkloadTraceVector(w);

    // HDMM = OPT_M.
    Rng rng(static_cast<uint64_t>(k));
    OptMarginalsOptions opts;
    opts.restarts = full ? 5 : 3;
    opts.lbfgs.max_iterations = full ? 400 : 200;
    OptMarginalsResult hdmm_res = OptMarginals(w, opts, &rng);
    double hdmm_err = hdmm_res.error;

    // Identity: measure the full contingency table (theta = e_full).
    Vector e_full(masks, 0.0);
    e_full[masks - 1] = 1.0;
    double id_err = algebra.TraceObjective(e_full, tau);

    // LM: each workload marginal is itself measured; sensitivity is the
    // number of marginals (every cell counted once per marginal), and every
    // query gets full-sensitivity noise.
    double num_marginals = static_cast<double>(w.NumProducts());
    double lm_err =
        num_marginals * num_marginals * static_cast<double>(w.TotalQueries());

    // DataCube greedy selection.
    std::vector<uint32_t> workload_masks;
    for (uint32_t m = 0; m < masks; ++m)
      if (PopCount(m) <= k) workload_masks.push_back(m);
    DataCubeResult dc = DataCubeSelect(domain, workload_masks);

    auto ratio = [&](double e) { return std::sqrt(e / hdmm_err); };
    hdmm_bench::PrintRow("K=" + std::to_string(k),
                         {ratio(id_err), ratio(lm_err),
                          ratio(dc.squared_error), 1.0});
  }
  std::printf(
      "\nPaper: K=1 435/1.18/1.12, K=2 43.9/1.43/1.03, K=3 8.37/1.96/1.15, "
      "K=4 2.73/3.03/1.21,\n  K=5 1.33/4.95/1.36, K=6 1.00/9.21/1.67, "
      "K=7 1.07/18.2/2.99, K=8 1.06/24.9/5.76 (all /1.00 HDMM)\n");
  return 0;
}
