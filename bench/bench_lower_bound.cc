// Optimality-gap measurement against the Li-Miklau spectral lower bound
// (reference [28]; Section 9 of the paper notes that HDMM's distance to the
// true optimum is unknown and that the bound "is often a very loose lower
// bound under epsilon-differential privacy"). This bench quantifies the gap
// sqrt(Err_HDMM / bound) for the paper's core workload families: a value of
// 1.00 certifies an optimal strategy; the gap bounds any possible further
// improvement over HDMM by a competing mechanism.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/hdmm.h"
#include "core/svd_bound.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace {

using namespace hdmm;

// Identity-strategy error, for the "headroom" column: how much of the
// Identity -> bound interval HDMM closes.
double IdentityError(const UnionWorkload& w) {
  std::vector<Matrix> factors;
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    factors.push_back(IdentityBlock(w.domain().AttributeSize(i)));
  }
  return KronStrategy(std::move(factors)).SquaredError(w);
}

void ReportRow(const char* label, const UnionWorkload& w, int restarts,
               uint64_t seed) {
  HdmmOptions options;
  options.restarts = restarts;
  options.seed = seed;
  HdmmResult result = OptimizeStrategy(w, options);

  const double bound = SquaredErrorLowerBound(w);
  const double gap = std::sqrt(result.squared_error / bound);
  const double identity_gap = std::sqrt(IdentityError(w) / bound);
  std::printf("%-32s %14.4g %14.4g %9.3f %9.3f   %s\n", label, bound,
              result.squared_error, gap, identity_gap,
              result.chosen_operator.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdmm;
  const bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Optimality gap vs the Li-Miklau spectral lower bound",
      "the Section 9 discussion of [28]; gap = sqrt(Err_HDMM / bound)");

  std::printf("%-32s %14s %14s %9s %9s   %s\n", "workload", "bound",
              "Err(HDMM)", "gap", "gap(Id)", "operator");

  const int64_t n = full ? 256 : 64;
  const int restarts = full ? 5 : 2;

  // 1D families (Table 4a).
  ReportRow("Identity (certified optimal)",
            MakeProductWorkload(Domain({n}), {IdentityBlock(n)}), restarts, 1);
  ReportRow("Total (certified optimal)",
            MakeProductWorkload(Domain({n}), {TotalBlock(n)}), restarts, 2);
  ReportRow("Prefix 1D",
            MakeProductWorkload(Domain({n}), {PrefixBlock(n)}), restarts, 3);
  ReportRow("AllRange 1D",
            MakeProductWorkload(Domain({n}), {AllRangeBlock(n)}), restarts, 4);
  {
    Rng rng(99);
    ReportRow("PermutedRange 1D",
              MakeProductWorkload(Domain({n}), {PermutedRangeBlock(n, &rng)}),
              restarts, 5);
  }

  // 2D products (Table 4b).
  const int64_t n2 = full ? 64 : 16;
  ReportRow("Prefix x Prefix 2D",
            MakeProductWorkload(Domain({n2, n2}),
                                {PrefixBlock(n2), PrefixBlock(n2)}),
            restarts, 6);
  {
    Domain d({n2, n2});
    UnionWorkload w(d);
    ProductWorkload p1;
    p1.factors = {AllRangeBlock(n2), TotalBlock(n2)};
    w.AddProduct(p1);
    ProductWorkload p2;
    p2.factors = {TotalBlock(n2), AllRangeBlock(n2)};
    w.AddProduct(p2);
    ReportRow("[R x T; T x R] 2D union", w, restarts, 7);
  }

  // Marginals (Table 5 family).
  {
    Domain d({4, 4, 4, 4});
    ReportRow("All marginals d=4", AllMarginals(d), restarts, 8);
    ReportRow("2-way marginals d=4", KWayMarginals(d, 2), restarts, 9);
  }

  std::printf(
      "\nReading: gap = 1.00 certifies optimality (identity/total rows).\n"
      "The spectral bound is loose for range workloads under pure eps-DP\n"
      "(Section 9), so gaps > 1 there bound, not measure, suboptimality;\n"
      "gap(Id) shows how much headroom HDMM closes relative to Identity.\n");
  return 0;
}
