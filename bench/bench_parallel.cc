// Parallel measure+reconstruct ablation (Section 9: "Recent work has shown
// that standard operations on large matrices can be parallelized, however
// the decomposed structure of our strategies should lead to even faster
// specialized parallel solutions"). Measures the threaded kmatvec against
// the serial baseline across domain sizes; the kernel is the bottleneck of
// both MEASURE and RECONSTRUCT for product strategies (Figure 1d).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  const bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Parallel kmatvec ablation (Section 9 future-work extension)",
      "the Section 9 parallelization discussion; kernel of Figure 1d");

  std::vector<int> dims = {2, 3};
  const int64_t n = full ? 128 : 64;

  std::printf("%-24s %14s %14s %10s\n", "shape", "serial (ms)",
              "parallel (ms)", "speedup");
  for (int d : dims) {
    std::vector<Matrix> factors;
    int64_t total = 1;
    for (int i = 0; i < d; ++i) {
      factors.push_back(HierarchicalBlock(n, 4));
      total *= n;
    }
    Rng rng(7);
    Vector x(static_cast<size_t>(total));
    for (double& v : x) v = rng.Uniform(0.0, 1.0);

    // Warm up and verify agreement once.
    Vector ys = KronMatVec(factors, x);
    Vector yp = KronMatVecParallel(factors, x);
    double max_diff = 0.0;
    for (size_t i = 0; i < ys.size(); ++i) {
      double diff = ys[i] - yp[i];
      if (diff < 0) diff = -diff;
      if (diff > max_diff) max_diff = diff;
    }

    // More repetitions on small shapes so sub-millisecond kernels are
    // resolved above timer noise.
    const int reps = total <= 65536 ? 200 : 5;
    WallTimer t_serial;
    for (int r = 0; r < reps; ++r) ys = KronMatVec(factors, x);
    const double ms_serial = t_serial.Seconds() * 1000.0 / reps;

    WallTimer t_parallel;
    for (int r = 0; r < reps; ++r) yp = KronMatVecParallel(factors, x);
    const double ms_parallel = t_parallel.Seconds() * 1000.0 / reps;

    char label[64];
    std::snprintf(label, sizeof(label), "%dD, N = %lld^%d", d,
                  static_cast<long long>(n), d);
    std::printf("%-24s %14.2f %14.2f %9.2fx   (max |diff| = %g)\n", label,
                ms_serial, ms_parallel,
                ms_parallel > 0 ? ms_serial / ms_parallel : 0.0, max_diff);
  }
  std::printf(
      "\nReading: identical outputs (max |diff| must be 0); speedup bounded\n"
      "by the core count (%u available here). Gains concentrate in the\n"
      "passes whose batch dimension N/n_i is large, exactly the regime of\n"
      "the paper's N ~ 10^9 measure+reconstruct bottleneck.\n",
      std::thread::hardware_concurrency());
  return 0;
}
