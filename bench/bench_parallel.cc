// Multi-core scaling report (Section 9: "standard operations on large
// matrices can be parallelized"). Runs the three parallel tiers of the
// library — the pooled GEMM substrate, the blocked Cholesky factorization,
// and the planner's deterministic restart fan-out — on private pools of
// 1/2/4/8 total threads within one process, and emits BENCH_parallel.json
// with wall times, parallel efficiency, and the determinism evidence: the
// GEMM product and Cholesky factor must match the 1-thread arm bit for bit,
// and the 8-restart census plan must select a strategy whose content hash
// is identical at every width. The parallel-smoke CI job parses the file
// and (on hosts with >= 4 cores) fails the build if the 4-thread GEMM arm
// is not at least 2x the 1-thread arm; the bitwise/hash checks are enforced
// regardless of core count, since oversubscribed pools still exercise the
// full task decomposition.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/gram_cache.h"
#include "core/hdmm.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "workload/parser.h"

namespace {

using namespace hdmm;

double TimeBest(const std::function<void()>& fn, int min_reps = 3,
                double min_total_s = 0.3) {
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < 20 && (rep < min_reps || total < min_total_s);
       ++rep) {
    WallTimer timer;
    fn();
    double t = timer.Seconds();
    best = std::min(best, t);
    total += t;
  }
  return best;
}

bool SameBits(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) *
                         static_cast<size_t>(a.rows() * a.cols())) == 0;
}

UnionWorkload CensusWorkload() {
  return ParseWorkloadOrDie(
      "domain sex=2 age=115 race=64\n"
      "product sex=identity age=prefix\n"
      "product age=prefix race=identity\n"
      "product sex=identity race=identity\n"
      "product age=width(10)\n");
}

uint64_t SelectionHash(const UnionWorkload& w, const HdmmResult& res) {
  Fnv1aHasher h;
  h.Bytes(res.chosen_operator.data(), res.chosen_operator.size());
  h.F64(res.squared_error);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 0.25 * static_cast<double>(i % 11);
  for (double v : res.strategy->Apply(x)) h.F64(v);
  return h.Digest();
}

struct Arm {
  int threads = 0;
  double gemm_s = 0.0;
  double chol_s = 0.0;
  double plan_s = 0.0;
  bool gemm_bits = false;
  bool chol_bits = false;
  uint64_t selection_hash = 0;
};

void WriteJson(const std::vector<Arm>& arms, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_parallel");
  const Arm& base = arms.front();
  bool hashes_consistent = true;
  for (const Arm& a : arms)
    hashes_consistent =
        hashes_consistent && a.selection_hash == base.selection_hash;
  std::fprintf(f, "  \"selection_hash_consistent\": %s,\n",
               hashes_consistent ? "true" : "false");
  std::fprintf(f, "  \"arms\": [\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"gemm_1024_s\": %.6f, "
        "\"gemm_speedup_vs_1\": %.3f, \"gemm_efficiency\": %.3f, "
        "\"gemm_bitwise_identical\": %s, \"cholesky_2048_s\": %.6f, "
        "\"cholesky_speedup_vs_1\": %.3f, \"cholesky_bitwise_identical\": "
        "%s, \"plan8_s\": %.6f, \"plan8_speedup_vs_1\": %.3f, "
        "\"selection_hash\": \"%016llx\"}%s\n",
        a.threads, a.gemm_s, base.gemm_s / a.gemm_s,
        base.gemm_s / a.gemm_s / a.threads, a.gemm_bits ? "true" : "false",
        a.chol_s, base.chol_s / a.chol_s, a.chol_bits ? "true" : "false",
        a.plan_s, base.plan_s / a.plan_s,
        static_cast<unsigned long long>(a.selection_hash),
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  hdmm_bench::Banner("Multi-core scaling: GEMM / Cholesky / restart fan-out",
                     "Section 9 parallelization; determinism per PR 5/7");

  const int64_t n = 1024;
  Rng rng(11);
  Matrix a = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  // SPD input for the factorization arm: Gram of a random 2048^2 operand,
  // diagonally shifted well clear of singularity.
  const int64_t cn = 2048;
  Matrix spd;
  {
    Matrix g = Matrix::RandomUniform(cn, cn, &rng, -1.0, 1.0);
    GramInto(g, &spd, GemmParallelism::kSerial);
    for (int64_t i = 0; i < cn; ++i) spd(i, i) += static_cast<double>(cn);
  }
  UnionWorkload w = CensusWorkload();

  std::printf("%-10s %12s %8s %12s %8s %12s %8s %6s\n", "threads",
              "gemm(s)", "eff", "chol(s)", "eff", "plan8(s)", "eff", "bits");
  std::vector<Arm> arms;
  Matrix gemm_ref, chol_ref;
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t - 1);
    SetComputePool(&pool);
    SetRestartPoolForTest(&pool);

    Arm arm;
    arm.threads = t;
    Matrix c;
    arm.gemm_s =
        TimeBest([&] { MatMulInto(a, b, &c, GemmParallelism::kPooled); });
    Matrix l;
    arm.chol_s = TimeBest([&] { CholeskyFactor(spd, &l); }, 2, 0.2);
    GramCache::Global().Clear();  // Same (cold) cache work in every arm.
    HdmmOptions options;
    options.restarts = 8;
    options.seed = 7;
    WallTimer plan_timer;
    HdmmResult res = OptimizeStrategy(w, options);
    arm.plan_s = plan_timer.Seconds();
    arm.selection_hash = SelectionHash(w, res);

    SetRestartPoolForTest(nullptr);
    SetComputePool(nullptr);

    if (t == 1) {
      gemm_ref = c;
      chol_ref = l;
    }
    arm.gemm_bits = SameBits(c, gemm_ref);
    arm.chol_bits = SameBits(l, chol_ref);
    const Arm& base = arms.empty() ? arm : arms.front();
    std::printf("%-10d %12.4f %8.2f %12.4f %8.2f %12.4f %8.2f %6s\n", t,
                arm.gemm_s, base.gemm_s / arm.gemm_s / t, arm.chol_s,
                base.chol_s / arm.chol_s / t, arm.plan_s,
                base.plan_s / arm.plan_s / t,
                arm.gemm_bits && arm.chol_bits ? "same" : "DIFFER");
    arms.push_back(arm);
  }

  bool hashes_ok = true;
  for (const Arm& arm : arms)
    hashes_ok = hashes_ok && arm.selection_hash == arms.front().selection_hash;
  std::printf("\nselected-strategy hash consistent across widths: %s\n",
              hashes_ok ? "yes" : "NO (determinism bug)");

  WriteJson(arms, "BENCH_parallel.json");
  return 0;
}
