// Out-of-core session benchmark: answer latency and peak RSS of
// MeasurementSession on the in-memory vs mmap-tiled data-vector backends
// (src/engine/tile_store.*).
//
// Each arm forks: the child builds a session over a synthetic separable
// data vector x[c] = prod_a g_a(c_a) through the streaming fill
// constructor (the full vector never exists in RAM), answers a fixed set
// of box queries against the closed-form expectation
// prod_a sum_{lo_a..hi_a} g_a, and reports its own VmHWM — so every arm's
// peak RSS is isolated and honestly measured, not inferred.
//
//   --log2n L       domain size 2^L cells (default 24)
//   --backend B     memory | mmap | both (default both)
//   --queries Q     box queries per arm (default 64)
//   --full          adds the flagship arm: 2^29 cells on the mmap backend
//                   under a self-imposed 1 GiB RLIMIT_AS — the dense path
//                   would need 8 GiB for x_hat + summed-area table alone
//   --probe-dense   builds the in-memory session at --log2n IN-PROCESS and
//                   exits 0; run it under `ulimit -v` to prove the dense
//                   path exceeds a cap the mmap path fits (CI does)
//   --out PATH      output JSON (default BENCH_outofcore.json)
//
// Emits BENCH_outofcore.json; the outofcore-smoke CI job runs the probe
// and the mmap arm under a 768 MiB address-space cap and validates the
// schema, the parity bit, and the answer accuracy.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/privacy.h"
#include "engine/tile_store.h"
#include "workload/domain.h"

namespace {

using namespace hdmm;

// ------------------------------------------------------------ test signal --

// Per-axis weights in [0.75, 1.25), deterministic and cheap: a separable
// x[c] = prod_a g_a(c_a) gives every box query the closed-form answer
// prod_a (S_a[hi_a + 1] - S_a[lo_a]) with S_a the per-axis prefix sums —
// an independent oracle that never touches the code under test.
double AxisWeight(int axis, int64_t c) {
  const uint64_t h =
      (static_cast<uint64_t>(c) * 2654435761ull + 0x9e37ull * (axis + 1));
  return 0.75 + 0.5 * static_cast<double>(h % 1024) / 1024.0;
}

struct Signal {
  Domain domain;
  std::vector<std::vector<double>> axis_prefix;  // S_a, size n_a + 1.

  explicit Signal(Domain d) : domain(std::move(d)) {
    for (int a = 0; a < domain.NumAttributes(); ++a) {
      std::vector<double> s(static_cast<size_t>(domain.AttributeSize(a)) + 1,
                            0.0);
      for (int64_t c = 0; c < domain.AttributeSize(a); ++c)
        s[static_cast<size_t>(c) + 1] =
            s[static_cast<size_t>(c)] + AxisWeight(a, c);
      axis_prefix.push_back(std::move(s));
    }
  }

  // fill(begin, end, out): walks the flattened range with an odometer.
  void Fill(int64_t begin, int64_t end, double* out) const {
    const int d = domain.NumAttributes();
    std::vector<int64_t> coord = domain.Unflatten(begin);
    for (int64_t i = begin; i < end; ++i) {
      double v = 1.0;
      for (int a = 0; a < d; ++a)
        v *= AxisWeight(a, coord[static_cast<size_t>(a)]);
      out[i - begin] = v;
      for (int a = d - 1; a >= 0; --a) {
        if (++coord[static_cast<size_t>(a)] < domain.AttributeSize(a)) break;
        coord[static_cast<size_t>(a)] = 0;
      }
    }
  }

  double Expected(const BoxQuery& q) const {
    double v = 1.0;
    for (int a = 0; a < domain.NumAttributes(); ++a) {
      const auto& s = axis_prefix[static_cast<size_t>(a)];
      v *= s[static_cast<size_t>(q.hi[static_cast<size_t>(a)]) + 1] -
           s[static_cast<size_t>(q.lo[static_cast<size_t>(a)])];
    }
    return v;
  }
};

// The seam pass's transient memory is sum_a strides_a ~ N / n_0, so the
// leading attribute takes most of the bits: 2^L splits as
// {2^(L-2k), 2^k, 2^k} with k = min(7, L/3).
Domain ShapeForLog2N(int log2n) {
  const int k = std::min<int>(7, log2n / 3);
  return Domain({int64_t{1} << (log2n - 2 * k), int64_t{1} << k,
                 int64_t{1} << k});
}

// Deterministic query mix: points, thin ranges, fat ranges, and
// marginal-style boxes (some axes full-range). Identical across arms so the
// parity memcmp below compares like with like.
std::vector<BoxQuery> MakeQueries(const Domain& domain, int count) {
  Rng rng(20260807);
  std::vector<BoxQuery> queries;
  const int d = domain.NumAttributes();
  for (int qi = 0; qi < count; ++qi) {
    BoxQuery q = FullRangeQuery(domain);
    const int kind = qi % 4;
    for (int a = 0; a < d; ++a) {
      const int64_t n = domain.AttributeSize(a);
      if (kind == 3 && a % 2 == (qi / 4) % 2) continue;  // Leave full-range.
      int64_t lo = rng.UniformInt(0, n - 1);
      int64_t hi;
      if (kind == 0) {
        hi = lo;  // Point.
      } else if (kind == 1) {
        hi = std::min<int64_t>(n - 1, lo + rng.UniformInt(0, 7));  // Thin.
      } else {
        hi = rng.UniformInt(lo, n - 1);  // Fat / marginal sub-box.
      }
      q.lo[static_cast<size_t>(a)] = lo;
      q.hi[static_cast<size_t>(a)] = hi;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// ------------------------------------------------------------------- arms --

long long ReadVmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

struct ArmResult {
  std::string backend;
  int log2n = 0;
  long long cells = 0;
  long long cap_kb = 0;  // Self-imposed RLIMIT_AS; 0 = unlimited.
  double build_s = 0.0;
  int queries = 0;
  double answer_total_s = 0.0;
  double mean_answer_us = 0.0;
  double max_answer_us = 0.0;
  double max_abs_err = 0.0;
  double answers_checksum = 0.0;
  long long peak_rss_kb = 0;
  bool ok = false;
};

// Runs one arm in the current process and writes its result (plus the raw
// answer doubles, for the parent's cross-backend memcmp) to `result_path` /
// `answers_path`.
int RunArmChild(SessionStorage backend, int log2n, int num_queries,
                long long cap_mib, const std::string& result_path,
                const std::string& answers_path) {
  if (cap_mib > 0) {
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(cap_mib) * 1024 * 1024;
    if (setrlimit(RLIMIT_AS, &rl) != 0) {
      std::fprintf(stderr, "setrlimit(RLIMIT_AS) failed\n");
      return 1;
    }
  }
  Signal sig(ShapeForLog2N(log2n));
  SessionStorageOptions storage;
  storage.backend = backend;

  WallTimer build_timer;
  MeasurementSession session(
      sig.domain,
      [&sig](int64_t begin, int64_t end, double* out) {
        sig.Fill(begin, end, out);
      },
      PrivacyCharge::Laplace(1.0), nullptr, storage);
  const double build_s = build_timer.Seconds();

  const std::vector<BoxQuery> queries = MakeQueries(sig.domain, num_queries);
  std::vector<double> answers(queries.size());
  double max_err = 0.0, checksum = 0.0, max_us = 0.0;
  WallTimer answer_timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    WallTimer one;
    answers[i] = session.Answer(queries[i]);
    max_us = std::max(max_us, 1e6 * one.Seconds());
    max_err = std::max(max_err,
                       std::fabs(answers[i] - sig.Expected(queries[i])));
    checksum += answers[i];
  }
  const double answer_s = answer_timer.Seconds();
  const long long hwm = ReadVmHwmKb();

  std::FILE* af = std::fopen(answers_path.c_str(), "wb");
  if (af == nullptr) return 1;
  std::fwrite(answers.data(), sizeof(double), answers.size(), af);
  std::fclose(af);

  std::FILE* rf = std::fopen(result_path.c_str(), "w");
  if (rf == nullptr) return 1;
  std::fprintf(rf, "%.6f %.6f %.6f %.3g %.17g %lld\n", build_s, answer_s,
               max_us, max_err, checksum, hwm);
  std::fclose(rf);
  return 0;
}

bool RunArm(SessionStorage backend, int log2n, int num_queries,
            long long cap_mib, const std::string& scratch, ArmResult* out) {
  out->backend = SessionStorageName(backend);
  out->log2n = log2n;
  out->cells = 1ll << log2n;
  out->cap_kb = cap_mib * 1024;
  out->queries = num_queries;
  const std::string result_path =
      scratch + "/arm-" + out->backend + "-" + std::to_string(log2n) + ".txt";
  const std::string answers_path =
      scratch + "/ans-" + out->backend + "-" + std::to_string(log2n) + ".bin";

  const pid_t pid = fork();
  if (pid == 0) {
    _exit(RunArmChild(backend, log2n, num_queries, cap_mib, result_path,
                      answers_path));
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "arm %s log2n=%d failed (status %d)\n",
                 out->backend.c_str(), log2n, status);
    return false;
  }
  std::FILE* rf = std::fopen(result_path.c_str(), "r");
  if (rf == nullptr) return false;
  const int got = std::fscanf(rf, "%lf %lf %lf %lf %lf %lld", &out->build_s,
                              &out->answer_total_s, &out->max_answer_us,
                              &out->max_abs_err, &out->answers_checksum,
                              &out->peak_rss_kb);
  std::fclose(rf);
  std::remove(result_path.c_str());
  if (got != 6) return false;
  out->mean_answer_us =
      1e6 * out->answer_total_s / std::max(1, out->queries);
  out->ok = true;
  std::printf("  %-6s 2^%-2d  build %8.2f s   answer mean %8.1f us "
              "(max %.1f us)   max |err| %.3g   peak RSS %lld MiB%s\n",
              out->backend.c_str(), log2n, out->build_s, out->mean_answer_us,
              out->max_answer_us, out->max_abs_err, out->peak_rss_kb / 1024,
              cap_mib > 0
                  ? (" (under " + std::to_string(cap_mib) + " MiB cap)")
                        .c_str()
                  : "");
  return true;
}

// Byte-compares the answer files two arms wrote. Bit-identity across
// backends is a design property (same fill, same seam pass, same corner
// reads), so anything but equality is a bug.
bool AnswersBitIdentical(const std::string& scratch, int log2n) {
  auto read = [&](const char* backend, std::vector<char>* bytes) {
    const std::string path =
        scratch + "/ans-" + backend + "-" + std::to_string(log2n) + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fseek(f, 0, SEEK_END);
    bytes->resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    const bool ok = std::fread(bytes->data(), 1, bytes->size(), f) ==
                    bytes->size();
    std::fclose(f);
    return ok;
  };
  std::vector<char> mem, mm;
  if (!read("memory", &mem) || !read("mmap", &mm)) return false;
  return !mem.empty() && mem.size() == mm.size() &&
         std::memcmp(mem.data(), mm.data(), mem.size()) == 0;
}

void WriteJson(const std::vector<ArmResult>& arms, int parity_log2n,
               int parity, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_outofcore");
  std::fprintf(f, "  \"arms\": [\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"log2n\": %d, \"cells\": %lld, "
        "\"address_space_cap_kb\": %lld, \"build_s\": %.6f, "
        "\"queries\": %d, \"mean_answer_us\": %.3f, "
        "\"max_answer_us\": %.3f, \"max_abs_err\": %.3g, "
        "\"answers_checksum\": %.17g, \"peak_rss_kb\": %lld}%s\n",
        a.backend.c_str(), a.log2n, a.cells, a.cap_kb, a.build_s, a.queries,
        a.mean_answer_us, a.max_answer_us, a.max_abs_err, a.answers_checksum,
        a.peak_rss_kb, i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (parity >= 0) {
    std::fprintf(f,
                 "  \"parity\": {\"log2n\": %d, \"bitwise_identical\": %s}\n",
                 parity_log2n, parity == 1 ? "true" : "false");
  } else {
    std::fprintf(f, "  \"parity\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int log2n = 24;
  if (const char* v = FlagValue(argc, argv, "--log2n")) log2n = std::atoi(v);
  int num_queries = 64;
  if (const char* v = FlagValue(argc, argv, "--queries"))
    num_queries = std::atoi(v);
  std::string backend = "both";
  if (const char* v = FlagValue(argc, argv, "--backend")) backend = v;
  const char* out_path = "BENCH_outofcore.json";
  if (const char* v = FlagValue(argc, argv, "--out")) out_path = v;
  const bool full = HasFlag(argc, argv, "--full");

  if (HasFlag(argc, argv, "--probe-dense")) {
    // The whole point of this mode is to die under a ulimit the mmap arm
    // survives: the in-memory backend's x_hat + summed-area stores need
    // 2 * 8 * 2^log2n bytes, built right here in-process.
    std::printf("probe: dense in-memory session over 2^%d cells "
                "(needs %lld MiB)...\n",
                log2n, (2ll * 8 << log2n) >> 20);
    Signal sig(ShapeForLog2N(log2n));
    MeasurementSession session(
        sig.domain,
        [&sig](int64_t begin, int64_t end, double* out) {
          sig.Fill(begin, end, out);
        },
        PrivacyCharge::Laplace(1.0), nullptr, SessionStorageOptions{});
    const double answer = session.Answer(FullRangeQuery(sig.domain));
    std::printf("probe: survived (total = %.6g, peak RSS %lld MiB)\n", answer,
                ReadVmHwmKb() / 1024);
    return 0;
  }

  std::printf("=== out-of-core sessions: tiled mmap store vs in-memory "
              "(%d box queries/arm) ===\n",
              num_queries);
  const std::string scratch = ".";
  std::vector<ArmResult> arms;
  auto run = [&](SessionStorage b, int l, long long cap_mib) {
    ArmResult r;
    if (!RunArm(b, l, num_queries, cap_mib, scratch, &r)) return false;
    arms.push_back(std::move(r));
    return true;
  };

  bool ok = true;
  const bool want_mem = backend == "memory" || backend == "both";
  const bool want_mmap = backend == "mmap" || backend == "both";
  if (want_mem) ok &= run(SessionStorage::kMemory, log2n, 0);
  if (want_mmap) ok &= run(SessionStorage::kMmap, log2n, 0);

  int parity = -1;
  if (want_mem && want_mmap) {
    parity = AnswersBitIdentical(scratch, log2n) ? 1 : 0;
    std::printf("  parity at 2^%d: answers %s across backends\n", log2n,
                parity == 1 ? "bit-identical" : "DIVERGE");
    ok &= parity == 1;
  }

  if (full) {
    // The flagship arm: 2^29 cells (dense would need 8 GiB for the two
    // stores) served out-of-core inside a 1 GiB address space.
    std::printf("  --full: 2^29-cell mmap session under 1 GiB RLIMIT_AS\n");
    ok &= run(SessionStorage::kMmap, 29, 1024);
  }

  for (const char* b : {"memory", "mmap"}) {
    for (int l : {log2n, 29}) {
      std::remove(
          (scratch + "/ans-" + b + "-" + std::to_string(l) + ".bin").c_str());
    }
  }

  WriteJson(arms, log2n, parity, out_path);
  return ok ? 0 : 1;
}
