// Figure 2 (Appendix C.1): OPT_0 error as a function of the hyper-parameter
// p on the all-range workload. The paper (n = 256): p = 1 -> 1.29 relative
// error, p in [8, 128] all within ~3% of the best, p = 256 slightly worse
// (too expressive, poor local minima).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/opt0.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 2: OPT_0 error vs p (AllRange workload)",
                     "Figure 2 of McKenna et al. 2018");

  const int64_t n = full ? 256 : 128;
  Matrix gram = AllRangeGram(n);
  std::vector<int> ps = {1, 2, 4, 8, 16};
  if (full) {
    ps.push_back(32);
    ps.push_back(64);
  }

  std::vector<double> errors;
  double best = 1e300;
  for (int p : ps) {
    Rng rng(static_cast<uint64_t>(p));
    Opt0Options opts;
    opts.p = p;
    opts.restarts = 3;
    Opt0Result res = Opt0(gram, opts, &rng);
    errors.push_back(res.error);
    best = std::min(best, res.error);
  }
  std::printf("%-8s %16s %16s\n", "p", "squared error", "relative RMSE");
  for (size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-8d %16.1f %16.3f\n", ps[i], errors[i],
                std::sqrt(errors[i] / best));
  }
  std::printf(
      "\nShape check (paper, n=256): p=1 -> 1.29, p=2 -> 1.17, p=4 -> 1.07, "
      "p in [8,128] -> ~1.00-1.03.\n");
  return 0;
}
