// Table 4b: 2D error ratios of Identity, Wavelet, HB (Kronecker extensions)
// and QuadTree against HDMM on P x P, R x R, [R x T; T x R], and
// [P x I; I x P] workloads. Paper values at 64 x 64: PxP 2.35/3.40/1.41/1.72,
// RxR 1.54/3.59/1.45/1.72, [RT;TR] 5.00/7.00/3.51/4.13,
// [PI;IP] 1.11/5.26/2.08/3.32.
#include <cmath>

#include "baselines/baselines.h"
#include "baselines/hb.h"
#include "baselines/privelet.h"
#include "baselines/quadtree.h"
#include "bench_util.h"
#include "core/hdmm.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

UnionWorkload MakeUnion2D(const Domain& d, const Matrix& f1a,
                          const Matrix& f1b, const Matrix& f2a,
                          const Matrix& f2b) {
  UnionWorkload w(d);
  ProductWorkload p1;
  p1.factors = {f1a, f1b};
  w.AddProduct(std::move(p1));
  ProductWorkload p2;
  p2.factors = {f2a, f2b};
  w.AddProduct(std::move(p2));
  return w;
}

void RunConfig(const char* name, const UnionWorkload& w, int64_t n) {
  HdmmOptions opts;
  opts.restarts = 2;
  opts.use_marginals = false;
  opts.kron.lbfgs.max_iterations = 200;
  opts.union_opts.kron.lbfgs.max_iterations = 200;
  HdmmResult hdmm_res = OptimizeStrategy(w, opts);
  double hdmm_err = hdmm_res.squared_error;

  auto id = MakeIdentityBaseline(w.domain());
  auto wav = MakePriveletStrategy(w.domain());
  auto hb = MakeHbStrategy(w.domain());
  auto qt = MakeQuadtreeStrategy(n, n);

  auto ratio = [&](double e) { return std::sqrt(e / hdmm_err); };
  hdmm_bench::PrintRow(
      std::string(name) + " " + std::to_string(n) + "x" + std::to_string(n),
      {ratio(id->SquaredError(w)), ratio(wav->SquaredError(w)),
       ratio(hb->SquaredError(w)), ratio(qt->SquaredError(w)), 1.0});
}

}  // namespace

int main(int argc, char** argv) {
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Table 4b: 2D workloads, error ratios vs HDMM",
                     "Table 4(b) of McKenna et al. 2018");
  hdmm_bench::PrintHeader("workload",
                          {"Identity", "Wavelet", "HB", "QuadTree", "HDMM"});

  std::vector<int64_t> sizes = {32, 64};
  if (full) sizes.push_back(128);

  for (int64_t n : sizes) {
    Domain d({n, n});
    Matrix p = PrefixBlock(n), r = AllRangeBlock(n), i = IdentityBlock(n),
           t = TotalBlock(n);
    RunConfig("PxP", MakeProductWorkload(d, {p, p}), n);
    RunConfig("RxR", MakeProductWorkload(d, {r, r}), n);
    RunConfig("[RT;TR]", MakeUnion2D(d, r, t, t, r), n);
    RunConfig("[PI;IP]", MakeUnion2D(d, p, i, i, p), n);
  }
  std::printf(
      "\nPaper (64x64): PxP 2.35/3.40/1.41/1.72/1.00, RxR "
      "1.54/3.59/1.45/1.72/1.00,\n  [RT;TR] 5.00/7.00/3.51/4.13/1.00, "
      "[PI;IP] 1.11/5.26/2.08/3.32/1.00\n");
  return 0;
}
