// Examples 6 and 7: storage accounting for the implicit workload
// representation. The paper: explicit W_SF1 = 8.3 GB vs 3.3 MB implicit;
// explicit W_SF1+ = 22 TB vs 200 MB (per-query), 687 KB in the 32-product
// factored form W*_SF1+ (335 KB for W*_SF1).
#include <cstdio>

#include "bench_util.h"
#include "data/census.h"

namespace {

std::string Human(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdmm;
  (void)argc;
  (void)argv;
  hdmm_bench::Banner("Examples 6-7: implicit vs explicit workload storage",
                     "Examples 6 and 7 of McKenna et al. 2018");

  for (int which = 0; which < 2; ++which) {
    UnionWorkload w = which == 0 ? Sf1Workload() : Sf1PlusWorkload();
    const char* name = which == 0 ? "SF1" : "SF1+";
    double implicit_b = static_cast<double>(w.ImplicitStorageDoubles()) * 8;
    double explicit_b = static_cast<double>(w.ExplicitStorageDoubles()) * 8;
    std::printf("%-6s queries=%-8lld domain=%-10lld products=%d\n", name,
                static_cast<long long>(w.TotalQueries()),
                static_cast<long long>(w.DomainSize()), w.NumProducts());
    std::printf("       explicit matrix: %12s\n", Human(explicit_b).c_str());
    std::printf("       implicit (32-product factored): %12s  (%.0fx "
                "smaller)\n",
                Human(implicit_b).c_str(), explicit_b / implicit_b);
  }
  std::printf(
      "\nPaper: SF1 explicit 8.3 GB -> 335 KB factored; SF1+ explicit 22 TB "
      "-> 687 KB factored.\n");
  return 0;
}
