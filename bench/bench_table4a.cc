// Table 4a: 1D error ratios of Identity, Wavelet (Privelet), HB, GreedyH
// against HDMM on AllRange, Prefix, and Permuted Range workloads across
// domain sizes. Paper values at n = 128 (for comparison): AllRange row
// Identity 1.38, Wavelet 1.85, HB 1.38, GreedyH 1.16; Prefix row 1.80 /
// 1.78 / 1.80 / 1.20; PermutedRange row 1.38 / 4.67 / 1.38 / 1.35.
#include <cmath>

#include "baselines/baselines.h"
#include "baselines/greedy_h.h"
#include "baselines/hb.h"
#include "baselines/privelet.h"
#include "bench_util.h"
#include "core/opt0.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

double StrategyError(const Matrix& strategy, const Matrix& gram) {
  double sens = strategy.MaxAbsColSum();
  return sens * sens * TracePinvGram(Gram(strategy), gram);
}

void RunConfig(const char* workload_name, const Matrix& gram, int64_t n) {
  // HDMM: OPT_0 with the Section 7.1 p-convention and a few restarts.
  Rng rng(0);
  Opt0Options opts;
  opts.p = static_cast<int>(std::max<int64_t>(1, n / 16));
  opts.restarts = 3;
  Opt0Result hdmm_res = Opt0(gram, opts, &rng);
  double hdmm_err = hdmm_res.error;

  double id_err = gram.Trace();
  double wav_err = StrategyError(HaarBlock(n), gram);
  double hb_err = StrategyError(HierarchicalBlock(n, SelectHbBranching(n)), gram);
  GreedyHResult gh = GreedyH(gram);

  auto ratio = [&](double e) { return std::sqrt(e / hdmm_err); };
  hdmm_bench::PrintRow(
      std::string(workload_name) + " n=" + std::to_string(n),
      {ratio(id_err), ratio(wav_err), ratio(hb_err),
       ratio(gh.squared_error), 1.0});
}

}  // namespace

int main(int argc, char** argv) {
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Table 4a: 1D workloads, error ratios vs HDMM",
                     "Table 4(a) of McKenna et al. 2018");
  hdmm_bench::PrintHeader("workload",
                          {"Identity", "Wavelet", "HB", "GreedyH", "HDMM"});

  std::vector<int64_t> sizes = {128, 256};
  if (full) sizes.push_back(1024);

  for (int64_t n : sizes) RunConfig("AllRange", hdmm::AllRangeGram(n), n);
  for (int64_t n : sizes) RunConfig("Prefix", hdmm::PrefixGram(n), n);
  for (int64_t n : sizes) {
    hdmm::Rng rng(42);
    std::vector<int> perm = rng.Permutation(static_cast<int>(n));
    RunConfig("PermutedRange", hdmm::PermuteGram(hdmm::AllRangeGram(n), perm),
              n);
  }
  std::printf(
      "\nPaper (n=128): AllRange 1.38/1.85/1.38/1.16/1.00, Prefix "
      "1.80/1.78/1.80/1.20/1.00, Permuted 1.38/4.67/1.38/1.35/1.00\n");
  return 0;
}
