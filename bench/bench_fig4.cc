// Figure 4 (Appendix C.3): visualization of the p = 13 non-identity rows of
// the OPT_0 strategy for all range queries. The paper observes smooth,
// banded, non-hierarchical structures. This bench prints each row as an
// ASCII intensity strip plus summary statistics (support width, center).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/opt0.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Figure 4: the p = 13 non-identity strategy rows for AllRange",
      "Figure 4 of McKenna et al. 2018");

  const int64_t n = full ? 256 : 128;
  Matrix gram = AllRangeGram(n);
  Rng rng(1);
  Opt0Options opts;
  opts.p = 13;
  opts.restarts = full ? 3 : 2;
  Opt0Result res = Opt0(gram, opts, &rng);

  Matrix a = PIdentityObjective::BuildStrategy(res.theta);
  const int64_t width = 64;  // Terminal strip width.
  const char* shades = " .:-=+*#%@";
  std::printf("strategy error: %.1f (identity: %.1f)\n\n", res.error,
              gram.Trace());
  for (int64_t r = 0; r < 13; ++r) {
    // Row n + r of A is the r-th non-identity query.
    double maxv = 0.0;
    for (int64_t j = 0; j < n; ++j) maxv = std::max(maxv, a(n + r, j));
    std::printf("q%02lld |", static_cast<long long>(r));
    for (int64_t c = 0; c < width; ++c) {
      // Average the coefficients in this strip cell.
      int64_t lo = c * n / width, hi = (c + 1) * n / width;
      double avg = 0.0;
      for (int64_t j = lo; j < hi; ++j) avg += a(n + r, j);
      avg /= std::max<int64_t>(1, hi - lo);
      int shade = maxv > 0 ? static_cast<int>(9.0 * avg / maxv) : 0;
      std::printf("%c", shades[std::clamp(shade, 0, 9)]);
    }
    // Support stats.
    int64_t support = 0;
    double center = 0.0, mass = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (a(n + r, j) > 1e-6) ++support;
      center += a(n + r, j) * static_cast<double>(j);
      mass += a(n + r, j);
    }
    std::printf("| support=%lld center=%.0f\n",
                static_cast<long long>(support),
                mass > 0 ? center / mass : 0.0);
  }
  std::printf(
      "\nShape check (paper): smooth overlapping bumps spanning wide ranges "
      "— structured but *not* the dyadic hierarchy heuristics assume.\n");
  return 0;
}
