// Ablations on HDMM's design choices (DESIGN.md section 6):
//  1. Theorem 4: the O(pN^2) Woodbury objective vs the naive O(N^3) path
//     (the paper reports a 240x speedup at N = 8192).
//  2. The Section 7.1 p-convention (p = n/16) vs p = 1 on range workloads.
//  3. Restart-scale cycling vs fixed-scale initialization (the identity
//     basin escape described in core/opt0.cc).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/opt0.h"
#include "core/opt_union.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Ablations: Woodbury fast path, p-convention, init scale",
                     "Theorem 4 + Section 7.1 design choices");

  // --- 1. Objective evaluation cost: fast vs reference.
  std::printf("objective evaluation time (p = n/16):\n");
  std::printf("%-8s %14s %14s %10s\n", "n", "Woodbury(s)", "naive(s)",
              "speedup");
  std::vector<int64_t> sizes = {128, 256, 512};
  if (full) sizes.push_back(1024);
  for (int64_t n : sizes) {
    int p = static_cast<int>(std::max<int64_t>(1, n / 16));
    Matrix gram = AllRangeGram(n);
    Rng rng(1);
    Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 1.0);
    PIdentityObjective obj(gram, p);
    Vector flat(theta.data(), theta.data() + theta.size());

    WallTimer t_fast;
    Vector grad;
    double fast_val = obj.Eval(flat, &grad);
    double fast_s = t_fast.Seconds();

    WallTimer t_ref;
    double ref_val = PIdentityObjective::EvalReference(theta, gram);
    double ref_s = t_ref.Seconds();

    std::printf("%-8lld %14.4f %14.4f %9.1fx   (values agree to %.2g)\n",
                static_cast<long long>(n), fast_s, ref_s,
                ref_s / std::max(1e-9, fast_s),
                std::fabs(fast_val - ref_val) / ref_val);
  }

  // --- 2. p-convention: p = 1 vs p = n/16 on AllRange.
  std::printf("\np-convention on AllRange (squared error):\n");
  std::printf("%-8s %14s %14s %10s\n", "n", "p=1", "p=n/16", "gain");
  for (int64_t n : {128, 256}) {
    Matrix gram = AllRangeGram(n);
    Rng rng1(2), rng2(2);
    Opt0Options o1;
    o1.p = 1;
    o1.restarts = 3;
    Opt0Options o2 = o1;
    o2.p = static_cast<int>(n / 16);
    double e1 = Opt0(gram, o1, &rng1).error;
    double e2 = Opt0(gram, o2, &rng2).error;
    std::printf("%-8lld %14.1f %14.1f %9.2fx\n", static_cast<long long>(n),
                e1, e2, e1 / e2);
  }

  // --- 3. Initialization-scale cycling: fixed U[0,1] restarts vs cycled
  // scales, on the workload where the identity basin bites (AllRange n=64).
  std::printf("\ninit-scale cycling on AllRange n=64 (squared error, 3 "
              "restarts):\n");
  {
    const int64_t n = 64;
    Matrix gram = AllRangeGram(n);
    double id_err = gram.Trace();
    // Fixed-scale: emulate by single restarts at scale 1 across seeds.
    double fixed_best = 1e300;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Rng rng(seed);
      Matrix theta0 = Matrix::RandomUniform(4, n, &rng, 0.0, 1.0);
      fixed_best = std::min(fixed_best,
                            Opt0WarmStart(gram, theta0, LbfgsbOptions()).error);
    }
    Rng rng(0);
    Opt0Options opts;
    opts.p = 4;
    opts.restarts = 3;
    double cycled = Opt0(gram, opts, &rng).error;
    std::printf("  identity=%0.f  fixed-scale=%.0f  cycled=%.0f\n", id_err,
                fixed_best, cycled);
  }

  // --- 4. OPT_+ budget split: even lambda_g = 1/l vs the optimized
  // lambda_g ~ e_g^{1/3} (the Definition 11 extension, DESIGN.md 6b) on the
  // asymmetric union [R x T; T x R'] where group errors differ.
  std::printf("\nOPT_+ budget split on [R(32) x T; T x R(8)] (squared "
              "error):\n");
  {
    Domain d({32, 8});
    UnionWorkload w(d);
    ProductWorkload p1;
    p1.factors = {AllRangeBlock(32), TotalBlock(8)};
    w.AddProduct(p1);
    ProductWorkload p2;
    p2.factors = {TotalBlock(32), AllRangeBlock(8)};
    w.AddProduct(p2);

    OptUnionOptions even;
    even.optimize_budget_split = false;
    OptUnionOptions optimized;
    optimized.optimize_budget_split = true;
    Rng rng_even(3), rng_opt(3);
    const double e_even = OptUnion(w, even, &rng_even).error;
    const double e_opt = OptUnion(w, optimized, &rng_opt).error;
    std::printf("  even split=%.1f  optimized split=%.1f  gain=%.2fx\n",
                e_even, e_opt, e_even / e_opt);
    std::printf("  (closed form: optimized total (sum e_g^{1/3})^3 <= l^2 "
                "sum e_g = even total)\n");
  }
  return 0;
}
