// Factorization-layer micro-benchmarks: races the seed repo's scalar kernels
// (three-loop Cholesky, cyclic-Jacobi EigenSym, per-column TracePinvGram —
// replicated below so the baseline never drifts) against the blocked
// right-looking Cholesky, the Householder+QL eigensolver, and the multi-RHS
// solve path, and emits BENCH_factor.json in the working directory as the
// perf-trajectory record alongside BENCH_matmul.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "linalg/pinv.h"

namespace {

using namespace hdmm;

// ----------------------------------------------------------------------
// Replicas of the seed repo's factorization kernels (pre-blocked layer).

bool SeedCholeskyFactor(const Matrix& x, Matrix* l) {
  const int64_t n = x.rows();
  *l = Matrix::Zeros(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double s = x(i, j);
      const double* li = l->Row(i);
      const double* lj = l->Row(j);
      for (int64_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return false;
        (*l)(i, i) = std::sqrt(s);
      } else {
        (*l)(i, j) = s / (*l)(j, j);
      }
    }
  }
  return true;
}

SymmetricEigen SeedJacobiEigenSym(const Matrix& x, int max_sweeps = 64,
                                  double tol = 1e-12) {
  const int64_t n = x.rows();
  Matrix a = x;
  Matrix v = Matrix::Identity(n);
  double base = 0.0;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) base += a(i, j) * a(i, j);
  base = std::sqrt(base);
  if (base == 0.0) base = 1.0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * base) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = a(p, p), aqq = a(q, q);
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Vector evals(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) evals[static_cast<size_t>(i)] = a(i, i);
  std::sort(order.begin(), order.end(), [&](int64_t l, int64_t r) {
    return evals[static_cast<size_t>(l)] < evals[static_cast<size_t>(r)];
  });
  SymmetricEigen out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    out.eigenvalues[static_cast<size_t>(i)] = evals[static_cast<size_t>(src)];
    for (int64_t k = 0; k < n; ++k) out.eigenvectors(k, i) = v(k, src);
  }
  return out;
}

double SeedTracePinvGram(const Matrix& gram_a, const Matrix& gram_w) {
  Matrix l;
  if (SeedCholeskyFactor(gram_a, &l)) {
    double tr = 0.0;
    for (int64_t j = 0; j < gram_w.cols(); ++j) {
      Vector col = gram_w.ColVector(j);
      Vector sol = CholeskySolve(l, col);
      tr += sol[static_cast<size_t>(j)];
    }
    return tr;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

// ----------------------------------------------------------------------

double TimeBest(const std::function<void()>& fn, int min_reps = 3,
                double min_total_s = 0.3) {
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < 20 && (rep < min_reps || total < min_total_s);
       ++rep) {
    WallTimer timer;
    fn();
    double t = timer.Seconds();
    best = std::min(best, t);
    total += t;
  }
  return best;
}

struct FactorRow {
  std::string kernel;
  int64_t n;
  double seed_s, blocked_s;
};

void PrintRow(const FactorRow& r) {
  std::printf("%-16s n=%-6lld %12.4f %12.4f %10.2fx\n", r.kernel.c_str(),
              static_cast<long long>(r.n), r.seed_s, r.blocked_s,
              r.seed_s / r.blocked_s);
}

void BenchCholesky(bool full, std::vector<FactorRow>* rows) {
  hdmm_bench::Banner("Cholesky factorization",
                     "seed scalar three-loop vs blocked right-looking");
  std::vector<int64_t> sizes = {256, 512, 1024};
  if (full) sizes.push_back(2048);
  Rng rng(1);
  for (int64_t n : sizes) {
    Matrix a = Matrix::RandomUniform(n + 5, n, &rng, -1.0, 1.0);
    Matrix g;
    GramInto(a, &g);
    for (int64_t i = 0; i < n; ++i) g(i, i) += 0.5;
    Matrix l;
    FactorRow row{"cholesky", n, 0, 0};
    row.seed_s = TimeBest([&] { SeedCholeskyFactor(g, &l); }, 1, 0.3);
    row.blocked_s = TimeBest([&] { CholeskyFactor(g, &l); }, 3, 0.3);
    PrintRow(row);
    rows->push_back(row);
  }
}

void BenchEigen(bool full, std::vector<FactorRow>* rows) {
  hdmm_bench::Banner("Symmetric eigendecomposition",
                     "seed cyclic Jacobi vs Householder tridiag + QL");
  std::vector<int64_t> sizes = {256, 512};
  if (full) sizes.push_back(1024);
  Rng rng(2);
  for (int64_t n : sizes) {
    Matrix a = Matrix::RandomUniform(n + 5, n, &rng, -1.0, 1.0);
    Matrix g;
    GramInto(a, &g);
    for (int64_t i = 0; i < n; ++i) g(i, i) += 0.1;
    SymmetricEigen eig;
    FactorRow row{"eigen_sym", n, 0, 0};
    row.seed_s = TimeBest([&] { eig = SeedJacobiEigenSym(g); }, 1, 0.0);
    row.blocked_s = TimeBest([&] { eig = EigenSym(g); }, 1, 0.3);
    PrintRow(row);
    rows->push_back(row);
  }
}

void BenchTracePinvGram(bool full, std::vector<FactorRow>* rows) {
  hdmm_bench::Banner("TracePinvGram end-to-end",
                     "seed per-column solves vs blocked multi-RHS path");
  std::vector<int64_t> sizes = {256, 512, 1024};
  if (full) sizes.push_back(2048);
  Rng rng(3);
  for (int64_t n : sizes) {
    Matrix a = Matrix::RandomUniform(n + 5, n, &rng, -1.0, 1.0);
    Matrix ga;
    GramInto(a, &ga);
    for (int64_t i = 0; i < n; ++i) ga(i, i) += 0.5;
    Matrix w = Matrix::RandomUniform(n + 5, n, &rng, 0.0, 1.0);
    Matrix gw;
    GramInto(w, &gw);
    double tr = 0.0;
    FactorRow row{"trace_pinv_gram", n, 0, 0};
    row.seed_s = TimeBest([&] { tr = SeedTracePinvGram(ga, gw); }, 1, 0.3);
    const double seed_tr = tr;
    row.blocked_s = TimeBest([&] { tr = TracePinvGram(ga, gw); }, 3, 0.3);
    if (std::fabs(tr - seed_tr) > 1e-6 * std::fabs(seed_tr)) {
      std::printf("  WARNING: blocked trace %.12g != seed trace %.12g\n", tr,
                  seed_tr);
    }
    PrintRow(row);
    rows->push_back(row);
  }
}

void WriteJson(const std::vector<FactorRow>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_factor");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const FactorRow& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %lld, \"seed_s\": %.6f, "
                 "\"blocked_s\": %.6f, \"speedup\": %.3f}%s\n",
                 r.kernel.c_str(), static_cast<long long>(r.n), r.seed_s,
                 r.blocked_s, r.seed_s / r.blocked_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = hdmm_bench::FullScale(argc, argv);
  std::vector<FactorRow> rows;
  BenchCholesky(full, &rows);
  BenchEigen(full, &rows);
  BenchTracePinvGram(full, &rows);
  WriteJson(rows, "BENCH_factor.json");
  return 0;
}
