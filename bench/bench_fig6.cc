// Figure 6 (Appendix C.5): scalability of the two optimization kernels.
// Left: OPT_0 runtime vs 1D domain size (walls out near N ~ 10^4).
// Right: OPT_M runtime vs number of dimensions (independent of attribute
// sizes; scales to d = 14 at paper scale).
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/opt0.h"
#include "core/opt_marginals.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 6: OPT_0 time vs N; OPT_M time vs d",
                     "Figure 6 of McKenna et al. 2018");

  std::printf("OPT_0 (AllRange Gram, p = n/16, 1 restart):\n");
  std::printf("%-10s %12s\n", "N", "time(s)");
  std::vector<int64_t> sizes = {64, 128, 256, 512};
  if (full) sizes.push_back(1024);
  for (int64_t n : sizes) {
    Matrix gram = AllRangeGram(n);
    WallTimer t;
    Rng rng(1);
    Opt0Options opts;
    opts.p = static_cast<int>(std::max<int64_t>(1, n / 16));
    opts.restarts = 1;
    Opt0(gram, opts, &rng);
    std::printf("%-10lld %12.3f\n", static_cast<long long>(n), t.Seconds());
  }

  std::printf("\nOPT_M (up-to-2-way marginals, attribute size 4):\n");
  std::printf("%-10s %12s\n", "d", "time(s)");
  std::vector<int> dims = {2, 4, 6, 8, 10};
  if (full) {
    dims.push_back(12);
    dims.push_back(14);
  }
  for (int d : dims) {
    Domain domain(std::vector<int64_t>(d, 4));
    UnionWorkload w = UpToKWayMarginals(domain, std::min(2, d));
    WallTimer t;
    Rng rng(2);
    OptMarginalsOptions opts;
    opts.restarts = 1;
    opts.lbfgs.max_iterations = 100;
    OptMarginals(w, opts, &rng);
    std::printf("%-10d %12.3f\n", d, t.Seconds());
  }
  std::printf(
      "\nShape check (paper): OPT_0 ~cubic in N (practical to ~10^4); "
      "OPT_M cost O(4^d), independent of attribute sizes.\n");
  return 0;
}
