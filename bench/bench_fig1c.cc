// Figure 1c: strategy-selection runtime vs total domain size N = n^8 on the
// 3-way marginals workload (8 dimensions). Both DataCube and HDMM (OPT_M)
// scale gracefully because neither touches the full domain: OPT_M's cost is
// O(4^d) independent of n.
#include <cstdio>

#include "baselines/datacube.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/opt_marginals.h"
#include "workload/marginals.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 1c: runtime vs N = n^8, 3-way marginals (8D)",
                     "Figure 1(c) of McKenna et al. 2018");
  std::printf("%-14s %-6s %14s %14s\n", "N", "n", "DataCube(s)", "HDMM(s)");

  std::vector<int64_t> ns = {2, 3, 4, 6, 8, 10};
  if (full) ns.push_back(12);

  const int d = 8;
  for (int64_t n : ns) {
    Domain domain(std::vector<int64_t>(d, n));
    UnionWorkload w = KWayMarginals(domain, 3);

    std::vector<uint32_t> workload_masks;
    for (uint32_t m = 0; m < (1u << d); ++m)
      if (PopCount(m) == 3) workload_masks.push_back(m);

    WallTimer t_dc;
    DataCubeSelect(domain, workload_masks);
    double dc_s = t_dc.Seconds();

    WallTimer t_hdmm;
    Rng rng(1);
    OptMarginalsOptions opts;
    OptMarginals(w, opts, &rng);
    double hdmm_s = t_hdmm.Seconds();

    double big_n = 1.0;
    for (int i = 0; i < d; ++i) big_n *= static_cast<double>(n);
    std::printf("%-14.3g %-6lld %14.3f %14.3f\n", big_n,
                static_cast<long long>(n), dc_s, hdmm_s);
  }
  std::printf(
      "\nShape check (paper): both scale to N ~ 10^8-10^9; DataCube is "
      "faster on small domains (HDMM pays its up-front optimization),\n  "
      "and neither depends strongly on n because the domain is never "
      "materialized.\n");
  return 0;
}
