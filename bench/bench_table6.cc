// Table 6: improving DAWA by replacing its GreedyH second stage with HDMM's
// OPT_0 (Appendix B.3). Reports min/median/max error ratio
// original-DAWA / modified-DAWA over the five DPBench stand-in datasets, for
// each domain size and data scale, on the Prefix workload at eps = sqrt(2).
// Paper: ratios between 1.04 and 2.28 depending on configuration.
#include <algorithm>
#include <cmath>

#include "baselines/dawa.h"
#include "bench_util.h"
#include "core/error.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

const char* kDatasets[] = {"Hepth", "Medcost", "Nettrace", "Patent",
                           "Searchlogs"};

double AverageEmpiricalError(const Matrix& w, const Vector& x, double eps,
                             const DawaOptions& opts, int trials, Rng* rng) {
  Vector truth = MatVec(w, x);
  double total = 0.0;
  for (int t = 0; t < trials; ++t)
    total += EmpiricalSquaredError(truth, RunDawa(w, x, eps, opts, rng));
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner(
      "Table 6: error ratio original DAWA / DAWA-with-HDMM stage 2",
      "Table 6 of McKenna et al. 2018 (Prefix workload, eps = sqrt(2))");
  hdmm_bench::PrintHeader("config", {"min", "median", "max"});

  const double eps = std::sqrt(2.0);
  const int trials = full ? 10 : 4;
  std::vector<int64_t> domains = {256};
  if (full) {
    domains.push_back(1024);
    domains.push_back(4096);
  }
  std::vector<int64_t> scales = {1000, full ? int64_t{10000000}
                                            : int64_t{1000000}};

  for (int64_t n : domains) {
    Matrix w = PrefixBlock(n);
    for (int64_t scale : scales) {
      std::vector<double> ratios;
      for (const char* name : kDatasets) {
        Rng rng(static_cast<uint64_t>(n + scale) ^ 0x9e3779b9);
        Vector x = DpbenchStandinDataVector(name, n, scale, &rng);
        DawaOptions original;
        DawaOptions modified;
        modified.stage2 = DawaStage2::kHdmm;
        modified.opt0_p = 8;
        // Common random numbers across the two variants.
        Rng rng_orig(4242), rng_mod(4242);
        double err_orig =
            AverageEmpiricalError(w, x, eps, original, trials, &rng_orig);
        double err_mod =
            AverageEmpiricalError(w, x, eps, modified, trials, &rng_mod);
        ratios.push_back(std::sqrt(err_orig / err_mod));
      }
      std::sort(ratios.begin(), ratios.end());
      hdmm_bench::PrintRow(
          "n=" + std::to_string(n) + " scale=" + std::to_string(scale),
          {ratios.front(), ratios[ratios.size() / 2], ratios.back()});
    }
  }
  std::printf(
      "\nPaper: n=256 scale=1e3 -> 1.04/1.12/1.70, scale=1e7 -> "
      "1.18/1.25/1.44; n=1024 -> 1.04/1.15/1.91 and 1.15/1.37/1.92;\n"
      "  n=4096 -> 1.08/1.20/1.84 and 1.45/1.80/2.28\n");
  return 0;
}
