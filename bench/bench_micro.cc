// Micro-benchmarks for the kernels HDMM's scalability rests on. The headline
// section races the seed repo's naive GEMM/Gram kernels (replicated below,
// threading included) against the blocked SYRK/GEMM substrate and emits the
// results as machine-readable BENCH_matmul.json in the working directory so
// future PRs have a perf trajectory to regress against. The remaining
// sections time the Kronecker mat-vec (Appendix A.5), the p-Identity
// objective (Theorem 4), Cholesky solves, and LSMR iterations.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/pidentity.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/kron.h"
#include "linalg/lsmr.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

// ----------------------------------------------------------------------
// Replicas of the seed repo's kernels (pre-blocked-GEMM), used as the fixed
// baseline in BENCH_matmul.json. Kept verbatim, per-call std::thread and all.
constexpr int64_t kSeedParallelFlopThreshold = int64_t{1} << 24;

void SeedParallelOverRows(int64_t rows, int64_t flops,
                          const std::function<void(int64_t, int64_t)>& body) {
  unsigned hw = std::thread::hardware_concurrency();
  int threads =
      (flops < kSeedParallelFlopThreshold || hw == 0) ? 1 : static_cast<int>(hw);
  if (threads <= 1 || rows < 2 * threads) {
    body(0, rows);
    return;
  }
  std::vector<std::thread> pool;
  int64_t chunk = (rows + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    int64_t r0 = t * chunk;
    int64_t r1 = std::min(rows, r0 + chunk);
    if (r0 >= r1) break;
    pool.emplace_back(body, r0, r1);
  }
  for (auto& th : pool) th.join();
}

Matrix SeedMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  int64_t flops = a.rows() * a.cols() * b.cols();
  SeedParallelOverRows(a.rows(), flops, [&](int64_t r0, int64_t r1) {
    const int64_t k_dim = a.cols();
    const int64_t n = b.cols();
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = a.Row(i);
      double* crow = c.Row(i);
      for (int64_t k = 0; k < k_dim; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = b.Row(k);
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return c;
}

Matrix SeedGram(const Matrix& a) {
  // Seed Gram(a) == seed MatMulTN(a, a): serial outer-product accumulation.
  Matrix c(a.cols(), a.cols());
  const int64_t m = a.rows();
  const int64_t p = a.cols();
  for (int64_t k = 0; k < m; ++k) {
    const double* arow = a.Row(k);
    for (int64_t i = 0; i < p; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.Row(i);
      for (int64_t j = 0; j < p; ++j) crow[j] += aki * arow[j];
    }
  }
  return c;
}

// ----------------------------------------------------------------------
// Best-of-N wall time of `fn`, with enough repetitions to get past timer
// noise on fast kernels.
double TimeBest(const std::function<void()>& fn, int min_reps = 3,
                double min_total_s = 0.3) {
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < 20 && (rep < min_reps || total < min_total_s);
       ++rep) {
    WallTimer timer;
    fn();
    double t = timer.Seconds();
    best = std::min(best, t);
    total += t;
  }
  return best;
}

struct MatmulRow {
  std::string kernel;
  int64_t m, k, n;
  double seed_naive_s, blocked_s, blocked_pool_s;
};

// One arm of the pooled-GEMM thread-scaling sweep: wall time on a private
// pool of `threads` total threads, plus whether the product matched the
// 1-thread arm bit for bit (the decomposition is pool-width invariant, so
// anything but `true` is a kernel bug).
struct ScalePoint {
  int threads;
  double seconds;
  bool identical;
};

void BenchMatmulSection(bool full, std::vector<MatmulRow>* rows) {
  hdmm_bench::Banner("GEMM / Gram kernel comparison",
                     "seed naive kernels vs blocked SYRK/GEMM substrate");
  std::vector<int64_t> sizes = {256, 512, 1024};
  if (full) sizes.push_back(2048);

  hdmm_bench::PrintHeader(
      "matmul NxNxN", {"seed(s)", "blocked(s)", "pool(s)", "x-blk", "x-pool"},
      12);
  Rng rng(1);
  for (int64_t n : sizes) {
    Matrix a = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
    Matrix b = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
    Matrix out;
    MatmulRow row{"matmul", n, n, n, 0, 0, 0};
    row.seed_naive_s = TimeBest([&] { out = SeedMatMul(a, b); });
    row.blocked_s = TimeBest(
        [&] { MatMulInto(a, b, &out, GemmParallelism::kSerial); });
    row.blocked_pool_s = TimeBest(
        [&] { MatMulInto(a, b, &out, GemmParallelism::kPooled); });
    std::printf("%-28s%12.4f%12.4f%12.4f%12.2f%12.2f\n",
                (std::to_string(n) + "^3").c_str(), row.seed_naive_s,
                row.blocked_s, row.blocked_pool_s,
                row.seed_naive_s / row.blocked_s,
                row.seed_naive_s / row.blocked_pool_s);
    rows->push_back(row);
  }

  hdmm_bench::PrintHeader(
      "gram MxN", {"seed(s)", "blocked(s)", "pool(s)", "x-blk", "x-pool"}, 12);
  std::vector<std::pair<int64_t, int64_t>> gram_shapes = {{1024, 512},
                                                          {1024, 1024}};
  if (full) gram_shapes.push_back({4096, 1024});
  for (auto [m, n] : gram_shapes) {
    Matrix a = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
    Matrix out;
    // Gram(A) for m x n A is the n x n product A^T A with inner dimension m.
    MatmulRow row{"gram", n, m, n, 0, 0, 0};
    row.seed_naive_s = TimeBest([&] { out = SeedGram(a); });
    row.blocked_s =
        TimeBest([&] { GramInto(a, &out, GemmParallelism::kSerial); });
    row.blocked_pool_s =
        TimeBest([&] { GramInto(a, &out, GemmParallelism::kPooled); });
    std::printf("%-28s%12.4f%12.4f%12.4f%12.2f%12.2f\n",
                (std::to_string(m) + "x" + std::to_string(n)).c_str(),
                row.seed_naive_s, row.blocked_s, row.blocked_pool_s,
                row.seed_naive_s / row.blocked_s,
                row.seed_naive_s / row.blocked_pool_s);
    rows->push_back(row);
  }
}

// Pooled 1024^3 GEMM across private pools of 1/2/4/8 total threads (caller
// included), installed via SetComputePool so every arm runs in this process.
// On a 1-core host the arms oversubscribe the core and the curve is flat —
// the JSON's host_cores field lets validators tell that apart from a real
// scaling regression.
void BenchThreadScalingSection(std::vector<ScalePoint>* points) {
  hdmm_bench::Banner("GEMM thread scaling",
                     "pooled 1024^3 on private 1/2/4/8-thread pools");
  const int64_t n = 1024;
  Rng rng(7);
  Matrix a = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix b = Matrix::RandomUniform(n, n, &rng, -1.0, 1.0);
  Matrix ref;
  MatMulInto(a, b, &ref, GemmParallelism::kSerial);
  hdmm_bench::PrintHeader("threads", {"pool(s)", "speedup", "eff", "bits"},
                          12);
  double base_s = 0.0;
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t - 1);
    SetComputePool(&pool);
    Matrix out;
    ScalePoint pt{t, 0.0, false};
    pt.seconds =
        TimeBest([&] { MatMulInto(a, b, &out, GemmParallelism::kPooled); });
    SetComputePool(nullptr);
    pt.identical = out.rows() == ref.rows() && out.cols() == ref.cols() &&
                   std::memcmp(out.data(), ref.data(),
                               sizeof(double) * static_cast<size_t>(
                                                    out.rows() * out.cols())) ==
                       0;
    if (t == 1) base_s = pt.seconds;
    const double speedup = base_s / pt.seconds;
    std::printf("%-28d%12.4f%12.2f%12.2f%12s\n", t, pt.seconds, speedup,
                speedup / t, pt.identical ? "same" : "DIFFER");
    points->push_back(pt);
  }
}

void WriteJson(const std::vector<MatmulRow>& rows,
               const std::vector<ScalePoint>& points, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_micro/matmul");
  std::fprintf(f, "  \"thread_scaling\": [\n");
  const double base_s = points.empty() ? 1.0 : points.front().seconds;
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup_vs_1\": %.3f, \"efficiency\": %.3f, "
                 "\"bitwise_identical\": %s}%s\n",
                 p.threads, p.seconds, base_s / p.seconds,
                 base_s / p.seconds / p.threads,
                 p.identical ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const MatmulRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
        "\"seed_naive_s\": %.6f, \"blocked_s\": %.6f, "
        "\"blocked_pool_s\": %.6f, \"speedup_blocked\": %.3f, "
        "\"speedup_pool\": %.3f}%s\n",
        r.kernel.c_str(), static_cast<long long>(r.m),
        static_cast<long long>(r.k), static_cast<long long>(r.n),
        r.seed_naive_s, r.blocked_s, r.blocked_pool_s,
        r.seed_naive_s / r.blocked_s, r.seed_naive_s / r.blocked_pool_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void BenchKronSection() {
  hdmm_bench::Banner("Kronecker mat-vec", "Appendix A.5 kmatvec");
  Rng rng(1);
  for (int64_t n : {32, 64, 128}) {
    Matrix a = Matrix::RandomUniform(n, n, &rng);
    Matrix b = Matrix::RandomUniform(n, n, &rng);
    Vector x(static_cast<size_t>(n * n), 1.0);
    Vector y;
    double t = TimeBest([&] { y = KronMatVec({a, b}, x); }, 5, 0.1);
    std::printf("kron matvec %4lldx%-4lld          %10.6fs\n",
                static_cast<long long>(n), static_cast<long long>(n), t);
  }
}

void BenchPIdentitySection() {
  hdmm_bench::Banner("p-Identity objective", "Theorem 4 gradient evaluation");
  Rng rng(2);
  for (int64_t n : {64, 128, 256}) {
    const int p = static_cast<int>(std::max<int64_t>(1, n / 16));
    Matrix gram = AllRangeGram(n);
    PIdentityObjective obj(gram, p);
    Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 1.0);
    Vector flat(theta.data(), theta.data() + theta.size());
    Vector grad;
    double t = TimeBest([&] { obj.Eval(flat, &grad); }, 5, 0.1);
    std::printf("pidentity eval n=%-4lld          %10.6fs\n",
                static_cast<long long>(n), t);
  }
}

void BenchSolversSection() {
  hdmm_bench::Banner("Direct / iterative solvers", "Cholesky and LSMR");
  for (int64_t n : {64, 256}) {
    Matrix gram = PrefixGram(n);
    Matrix l;
    CholeskyFactor(gram, &l);
    Vector b(static_cast<size_t>(n), 1.0);
    Vector sol;
    double t = TimeBest([&] { sol = CholeskySolve(l, b); }, 5, 0.1);
    std::printf("cholesky solve n=%-4lld          %10.6fs\n",
                static_cast<long long>(n), t);
  }
  Rng rng(3);
  for (int64_t n : {64, 256}) {
    Matrix h = HierarchicalBlock(n, 2);
    DenseOperator op(h);
    Vector x(static_cast<size_t>(n));
    for (auto& v : x) v = rng.Uniform(0.0, 1.0);
    Vector y = MatVec(h, x);
    double t = TimeBest([&] { LsmrSolve(op, y); }, 5, 0.1);
    std::printf("lsmr solve n=%-4lld              %10.6fs\n",
                static_cast<long long>(n), t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = hdmm_bench::FullScale(argc, argv);
  std::vector<MatmulRow> rows;
  std::vector<ScalePoint> points;
  BenchMatmulSection(full, &rows);
  BenchThreadScalingSection(&points);
  WriteJson(rows, points, "BENCH_matmul.json");
  BenchKronSection();
  BenchPIdentitySection();
  BenchSolversSection();
  return 0;
}
