// Micro-benchmarks (google-benchmark) for the kernels HDMM's scalability
// rests on: the Kronecker mat-vec (Appendix A.5), the p-Identity objective
// (Theorem 4), Cholesky solves, and LSMR iterations.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/pidentity.h"
#include "linalg/cholesky.h"
#include "linalg/kron.h"
#include "linalg/lsmr.h"
#include "workload/building_blocks.h"

namespace {

using namespace hdmm;

void BM_KronMatVec(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(n, n, &rng);
  Matrix b = Matrix::RandomUniform(n, n, &rng);
  Vector x(static_cast<size_t>(n * n), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KronMatVec({a, b}, x));
  }
  state.SetComplexityN(n * n);
}
BENCHMARK(BM_KronMatVec)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_PIdentityObjective(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int p = static_cast<int>(std::max<int64_t>(1, n / 16));
  Matrix gram = AllRangeGram(n);
  PIdentityObjective obj(gram, p);
  Rng rng(2);
  Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 1.0);
  Vector flat(theta.data(), theta.data() + theta.size());
  Vector grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.Eval(flat, &grad));
  }
}
BENCHMARK(BM_PIdentityObjective)->Arg(64)->Arg(128)->Arg(256);

void BM_CholeskySolve(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix gram = PrefixGram(n);
  Matrix l;
  CholeskyFactor(gram, &l);
  Vector b(static_cast<size_t>(n), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CholeskySolve(l, b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(64)->Arg(256);

void BM_LsmrSolve(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix h = HierarchicalBlock(n, 2);
  DenseOperator op(h);
  Rng rng(3);
  Vector x(static_cast<size_t>(n));
  for (auto& v : x) v = rng.Uniform(0.0, 1.0);
  Vector y = MatVec(h, x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LsmrSolve(op, y));
  }
}
BENCHMARK(BM_LsmrSolve)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
