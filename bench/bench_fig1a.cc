// Figure 1a: strategy-selection runtime vs domain size on the Prefix 1D
// workload, for LRM, GreedyH, and HDMM (OPT_0). DataCube is N/A (it only
// accepts marginal workloads). The paper's qualitative shape: all three are
// limited to N ~ 10^4 in 1D because the workload must be explicit; HDMM sits
// between GreedyH (faster) and LRM (slower).
#include <cstdio>

#include "baselines/greedy_h.h"
#include "baselines/lrm.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/opt0.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 1a: runtime vs N, Prefix (1D)",
                     "Figure 1(a) of McKenna et al. 2018");
  std::printf("%-10s %12s %12s %12s %12s\n", "N", "LRM(s)", "GreedyH(s)",
              "HDMM(s)", "DataCube");

  std::vector<int64_t> sizes = {64, 128, 256};
  if (full) {
    sizes.push_back(512);
    sizes.push_back(1024);
  }

  for (int64_t n : sizes) {
    Matrix gram = PrefixGram(n);

    WallTimer t_lrm;
    LowRankMechanismFromGram(gram);
    double lrm_s = t_lrm.Seconds();

    WallTimer t_gh;
    GreedyH(gram);
    double gh_s = t_gh.Seconds();

    WallTimer t_hdmm;
    Rng rng(1);
    Opt0Options opts;
    opts.p = static_cast<int>(std::max<int64_t>(1, n / 16));
    Opt0(gram, opts, &rng);
    double hdmm_s = t_hdmm.Seconds();

    std::printf("%-10lld %12.3f %12.3f %12.3f %12s\n",
                static_cast<long long>(n), lrm_s, gh_s, hdmm_s, "N/A");
  }
  std::printf(
      "\nShape check (paper): all methods require the explicit workload and "
      "top out near N ~ 10^4;\n  GreedyH < HDMM < LRM in runtime at fixed "
      "N.\n");
  return 0;
}
