// Cold-planning throughput benchmarks: the optimizer-side counterpart of
// bench_engine (which measures how much a *warm* plan saves, this one
// measures how fast a *cold* plan has become).
//
//   eval     the OPT_0 inner loop (PIdentityObjective::Eval driven by
//            L-BFGS-B) raced against a faithful replica of the seed
//            implementation (~12 temporaries per call, two Transposed()
//            copies around the capacitance solve, per-restart SYRK Gram
//            rebuild). Both arms run the same trajectory from the same
//            start, so the speedup is pure workspace-reuse + Gram-cache +
//            transposed-solve effect, valid on a 1-core box.
//   allocs   heap allocations per Eval after warmup (must be zero).
//   error_eval  heap allocations per repeated Strategy::SquaredError
//            evaluation after one warm call, for Kron and union-Kron
//            candidates (must be zero: the factor Grams, their inverses,
//            and the sensitivity are memoized on the strategy, and the
//            workload factor Grams come shared from the GramCache, so
//            re-scoring a candidate never densifies the implicit factors).
//   plan     full OPT_HDMM cold plan on the bench_engine census workload,
//            with GramCache hit/miss/closed-form counts, plus a second
//            plan over the warm Gram cache (cross-call reuse).
//   scaling  cold-plan wall time vs restart count on private pools of
//            1/2/4 total threads (restarts fan out in parallel), with a
//            content hash of the 8-restart winner per arm proving the
//            selected strategy is bit-identical at every thread count.
//
// Emits BENCH_planner.json; the planner-smoke CI job parses it and fails
// the build if the speedup regresses below 2x or the inner loop allocates.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/gram_cache.h"
#include "core/hdmm.h"
#include "core/opt0.h"
#include "core/strategy.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "optimize/lbfgsb.h"
#include "workload/building_blocks.h"
#include "workload/parser.h"

// ------------------------------------------------------------------------
// Global allocation counter: every operator new in the binary bumps it, so
// "allocations per Eval" is measured for real, not inferred.
static std::atomic<long long> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hdmm;

// The bench_engine census-style workload (parser-doc example).
UnionWorkload CensusWorkload(bool full) {
  const std::string spec = full ? "domain sex=2 age=115 race=128\n"
                                : "domain sex=2 age=115 race=64\n";
  return ParseWorkloadOrDie(spec +
                            "product sex=identity age=prefix\n"
                            "product age=prefix race=identity\n"
                            "product sex=identity race=identity\n"
                            "product age=width(10)\n");
}

// ------------------------------------------------------------------------
// Replica of the seed GEMM driver (as of BENCH_engine.json's cold-plan
// numbers): always packs into the BLIS pipeline, allocates the B-panel
// scratch per call, and has no thin-operand fast paths. The legacy Eval
// below runs on this substrate so the race measures the seed inner loop,
// not the seed structure on this PR's kernels. Serial only — the thin
// shapes involved never spanned more than one row panel anyway.
namespace legacy_gemm {

constexpr int kMR = 6;
constexpr int kNR = 8;
constexpr int64_t kMC = 120;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 1024;
constexpr int64_t kNaiveFlopCutoff = int64_t{1} << 13;

struct Operand {
  const double* p;
  int64_t ld;
  bool trans;
};

inline double At(const Operand& o, int64_t i, int64_t j) {
  return o.trans ? o.p[j * o.ld + i] : o.p[i * o.ld + j];
}

void PackA(const Operand& a, int64_t i0, int64_t p0, int64_t mc, int64_t kc,
           double alpha, double* buf) {
  for (int64_t r0 = 0; r0 < mc; r0 += kMR) {
    double* strip = buf + (r0 / kMR) * kMR * kc;
    const int64_t rows = std::min<int64_t>(kMR, mc - r0);
    for (int64_t k = 0; k < kc; ++k) {
      double* dst = strip + k * kMR;
      for (int64_t r = 0; r < rows; ++r)
        dst[r] = alpha * At(a, i0 + r0 + r, p0 + k);
      for (int64_t r = rows; r < kMR; ++r) dst[r] = 0.0;
    }
  }
}

void PackB(const Operand& b, int64_t p0, int64_t j0, int64_t kc, int64_t nc,
           double* buf) {
  for (int64_t c0 = 0; c0 < nc; c0 += kNR) {
    double* strip = buf + (c0 / kNR) * kNR * kc;
    const int64_t cols = std::min<int64_t>(kNR, nc - c0);
    for (int64_t k = 0; k < kc; ++k) {
      double* dst = strip + k * kNR;
      for (int64_t c = 0; c < cols; ++c)
        dst[c] = At(b, p0 + k, j0 + c0 + c);
      for (int64_t c = cols; c < kNR; ++c) dst[c] = 0.0;
    }
  }
}

// The seed's vector micro-kernel (see src/linalg/gemm.cc), so the legacy
// arm is not handicapped at the register level — only the packing pipeline
// and allocation behavior differ.
#if defined(__GNUC__)
typedef double V4 __attribute__((vector_size(32), aligned(8)));
inline V4 LoadV(const double* p) { return *reinterpret_cast<const V4*>(p); }
inline void StoreV(double* p, V4 v) { *reinterpret_cast<V4*>(p) = v; }

void MicroKernel(int64_t kc, const double* __restrict__ ap,
                 const double* __restrict__ bp, double* __restrict__ c,
                 int64_t ldc, int64_t mr, int64_t nr) {
  V4 acc[kMR][2];
  for (int r = 0; r < kMR; ++r) acc[r][0] = acc[r][1] = V4{0, 0, 0, 0};
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR;
    const double* b = bp + k * kNR;
    const V4 b0 = LoadV(b);
    const V4 b1 = LoadV(b + 4);
    for (int r = 0; r < kMR; ++r) {
      const V4 ar = {a[r], a[r], a[r], a[r]};
      acc[r][0] += ar * b0;
      acc[r][1] += ar * b1;
    }
  }
  if (mr == kMR && nr == kNR) {
    for (int r = 0; r < kMR; ++r) {
      double* crow = c + r * ldc;
      StoreV(crow, LoadV(crow) + acc[r][0]);
      StoreV(crow + 4, LoadV(crow + 4) + acc[r][1]);
    }
  } else {
    double tmp[kMR * kNR];
    for (int r = 0; r < kMR; ++r) {
      StoreV(tmp + r * kNR, acc[r][0]);
      StoreV(tmp + r * kNR + 4, acc[r][1]);
    }
    for (int64_t r = 0; r < mr; ++r) {
      double* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r * kNR + j];
    }
  }
}
#else
void MicroKernel(int64_t kc, const double* __restrict__ ap,
                 const double* __restrict__ bp, double* __restrict__ c,
                 int64_t ldc, int64_t mr, int64_t nr) {
  double acc[kMR * kNR] = {0.0};
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR;
    const double* b = bp + k * kNR;
    for (int r = 0; r < kMR; ++r) {
      const double ar = a[r];
      for (int j = 0; j < kNR; ++j) acc[r * kNR + j] += ar * b[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r * kNR + j];
  }
}
#endif

void GemmDriver(int64_t m, int64_t n, int64_t k, double alpha,
                const Operand& a, const Operand& b, double* c, int64_t ldc) {
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  if (m * n * k < kNaiveFlopCutoff) {
    for (int64_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) s += At(a, i, kk) * At(b, kk, j);
        crow[j] += alpha * s;
      }
    }
    return;
  }
  // Seed behavior: one fresh B-panel scratch per call.
  std::vector<double> b_buf(static_cast<size_t>(
      ((std::min(n, kNC) + kNR - 1) / kNR) * kNR * std::min(k, kKC)));
  std::vector<double> a_buf(
      static_cast<size_t>(((kMC + kMR - 1) / kMR) * kMR * kKC));
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      PackB(b, pc, jc, kc, nc, b_buf.data());
      for (int64_t ic = 0; ic < m; ic += kMC) {
        const int64_t mc = std::min(kMC, m - ic);
        PackA(a, ic, pc, mc, kc, alpha, a_buf.data());
        for (int64_t js = 0; js < nc; js += kNR) {
          const double* bs = b_buf.data() + (js / kNR) * kNR * kc;
          const int64_t nr = std::min<int64_t>(kNR, nc - js);
          for (int64_t is = 0; is < mc; is += kMR) {
            MicroKernel(kc, a_buf.data() + (is / kMR) * kMR * kc, bs,
                        c + (ic + is) * ldc + jc + js, ldc,
                        std::min<int64_t>(kMR, mc - is), nr);
          }
        }
      }
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  GemmDriver(a.rows(), b.cols(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), false}, c.data(), c.cols());
  return c;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  GemmDriver(a.cols(), b.cols(), a.rows(), 1.0, {a.data(), a.cols(), true},
             {b.data(), b.cols(), false}, c.data(), c.cols());
  return c;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  GemmDriver(a.rows(), b.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), true}, c.data(), c.cols());
  return c;
}

Matrix GramOuter(const Matrix& a) {
  Matrix c(a.rows(), a.rows());
  GemmDriver(a.rows(), a.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {a.data(), a.cols(), true}, c.data(), c.cols());
  return c;
}

}  // namespace legacy_gemm

// ------------------------------------------------------------------------
// Faithful replica of the seed PIdentityObjective::Eval: every temporary is
// a fresh Matrix, the capacitance solve of the gradient goes through two
// Transposed() copies, and nothing is hoisted. Kept verbatim (modulo the
// class wrapper and the legacy_gemm substrate) so the race below measures
// exactly what this PR removed.
class LegacyPIdentityObjective {
 public:
  LegacyPIdentityObjective(Matrix gram, int p)
      : gram_(std::move(gram)), p_(p) {}

  double Eval(const Vector& theta_flat, Vector* grad_flat) const {
    const int64_t n = gram_.rows();
    Matrix theta(p_, n, theta_flat);

    Vector s(static_cast<size_t>(n), 1.0);
    for (int64_t i = 0; i < p_; ++i) {
      const double* row = theta.Row(i);
      for (int64_t j = 0; j < n; ++j) s[static_cast<size_t>(j)] += row[j];
    }
    Vector d(s.size());
    for (size_t j = 0; j < s.size(); ++j) d[j] = 1.0 / s[j];

    Matrix m = legacy_gemm::GramOuter(theta);
    for (int64_t i = 0; i < m.rows(); ++i) m(i, i) += 1.0;
    Matrix l;
    if (!CholeskyFactor(m, &l)) {
      if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }

    double term1 = 0.0;
    for (int64_t j = 0; j < n; ++j)
      term1 += s[static_cast<size_t>(j)] * s[static_cast<size_t>(j)] *
               gram_(j, j);
    Matrix t1 = ScaledCopy(theta, s, 1);
    Matrix b = legacy_gemm::MatMul(t1, gram_);
    Matrix spp = legacy_gemm::MatMulNT(b, t1);
    Matrix z;
    CholeskySolveMatrixInto(l, spp, &z);
    double objective = term1 - z.Trace();
    if (!(objective > 1e-7 * term1) || !std::isfinite(objective)) {
      if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }
    if (grad_flat == nullptr) return objective;

    Matrix g1 = ScaledCopy(gram_, s, 0);
    Matrix u = legacy_gemm::MatMul(theta, g1);
    Matrix v;
    CholeskySolveMatrixInto(l, u, &v);
    Matrix k = legacy_gemm::MatMulTN(theta, v);
    k.ScaleInPlace(-1.0);
    k.AddInPlace(g1, 1.0);
    k = ScaledCopy(k, s, 0);

    Matrix k1 = ScaledCopy(k, s, 1);
    Matrix pmat = legacy_gemm::MatMulNT(k1, theta);
    Matrix qt;
    CholeskySolveMatrixInto(l, pmat.Transposed(), &qt);
    Matrix q = qt.Transposed();
    Matrix r_term = legacy_gemm::MatMul(q, theta);
    Matrix y = k1;
    y.AddInPlace(r_term, -1.0);
    y = ScaledCopy(y, s, 1);

    Matrix theta_tilde = ScaledCopy(theta, d, 1);
    Matrix ty = legacy_gemm::MatMul(theta_tilde, y);
    Matrix grad1 = ScaledCopy(ty, d, 1);
    grad1.ScaleInPlace(-2.0);

    Matrix zmat = ScaledCopy(ScaledCopy(y, d, 0), d, 1);
    Matrix tz = legacy_gemm::MatMul(theta, zmat);
    Vector r(static_cast<size_t>(n), 0.0);
    for (int64_t j = 0; j < n; ++j) {
      double acc = zmat(j, j);
      for (int64_t i = 0; i < p_; ++i) acc += theta(i, j) * tz(i, j);
      r[static_cast<size_t>(j)] = acc;
    }

    grad_flat->assign(static_cast<size_t>(p_ * n), 0.0);
    for (int64_t i = 0; i < p_; ++i) {
      const double* g1row = grad1.Row(i);
      double* out = grad_flat->data() + i * n;
      for (int64_t j = 0; j < n; ++j) {
        out[j] = g1row[j] +
                 2.0 * r[static_cast<size_t>(j)] * d[static_cast<size_t>(j)];
      }
    }
    return objective;
  }

 private:
  static Matrix ScaledCopy(const Matrix& m, const Vector& scale, int axis) {
    Matrix out = m;
    if (axis == 0) {
      for (int64_t i = 0; i < m.rows(); ++i) {
        double sc = scale[static_cast<size_t>(i)];
        double* row = out.Row(i);
        for (int64_t j = 0; j < m.cols(); ++j) row[j] *= sc;
      }
    } else {
      for (int64_t i = 0; i < m.rows(); ++i) {
        double* row = out.Row(i);
        for (int64_t j = 0; j < m.cols(); ++j)
          row[j] *= scale[static_cast<size_t>(j)];
      }
    }
    return out;
  }

  Matrix gram_;
  int p_;
};

struct EvalRace {
  int64_t n = 0;
  int p = 0;
  double legacy_s = 0.0;
  double new_s = 0.0;
  int legacy_evals = 0;
  int new_evals = 0;
  double speedup = 0.0;  // Per-eval: (legacy_s/evals) / (new_s/evals).
  double values_diff = 0.0;
};

// Races the full L-BFGS-B warm start on the census age attribute: legacy
// per-restart SYRK Gram + legacy Eval vs GramCache + workspace Eval. Both
// arms run `restarts` trajectories from identical starting points.
EvalRace RaceOpt0InnerLoop() {
  const int64_t n = 115;  // Census age attribute.
  const int p = DefaultPFromSize(n);
  const int restarts = 3;
  LbfgsbOptions lbfgs;
  lbfgs.max_iterations = 120;

  Rng rng(17);
  std::vector<Matrix> theta0s;
  for (int r = 0; r < restarts; ++r)
    theta0s.push_back(Matrix::RandomUniform(p, n, &rng, 0.0, 0.5));

  EvalRace race;
  race.n = n;
  race.p = p;

  double legacy_f = 0.0, new_f = 0.0;
  {
    WallTimer timer;
    for (int r = 0; r < restarts; ++r) {
      // Seed behavior: the factor Gram is rebuilt with a SYRK every restart.
      Matrix gram = Gram(PrefixBlock(n));
      LegacyPIdentityObjective obj(std::move(gram), p);
      ObjectiveFn fn = [&obj](const Vector& x, Vector* grad) {
        return obj.Eval(x, grad);
      };
      Vector x0(theta0s[static_cast<size_t>(r)].data(),
                theta0s[static_cast<size_t>(r)].data() +
                    theta0s[static_cast<size_t>(r)].size());
      LbfgsbResult res = MinimizeNonNegative(fn, std::move(x0), lbfgs);
      race.legacy_evals += res.function_evaluations;
      legacy_f = res.f;
    }
    race.legacy_s = timer.Seconds();
  }
  {
    WallTimer timer;
    for (int r = 0; r < restarts; ++r) {
      // This PR: closed-form Gram from the cache (hit after restart 0),
      // allocation-free serial-kernel objective.
      auto gram = GramCache::Global().FactorGram(PrefixBlock(n));
      PIdentityObjective obj(*gram, p, GemmParallelism::kSerial);
      ObjectiveFn fn = [&obj](const Vector& x, Vector* grad) {
        return obj.Eval(x, grad);
      };
      Vector x0(theta0s[static_cast<size_t>(r)].data(),
                theta0s[static_cast<size_t>(r)].data() +
                    theta0s[static_cast<size_t>(r)].size());
      LbfgsbResult res = MinimizeNonNegative(fn, std::move(x0), lbfgs);
      race.new_evals += res.function_evaluations;
      new_f = res.f;
    }
    race.new_s = timer.Seconds();
  }
  // The arms run different (but equivalent) floating-point kernels, so a
  // compiler change can legitimately flip a line-search branch mid-run;
  // agreement is asserted loosely in CI (1e-3) and reported exactly here.
  race.values_diff = std::fabs(legacy_f - new_f) /
                     std::max(1.0, std::fabs(legacy_f));
  const double legacy_per_eval =
      race.legacy_s / std::max(1, race.legacy_evals);
  const double new_per_eval = race.new_s / std::max(1, race.new_evals);
  race.speedup = legacy_per_eval / new_per_eval;

  std::printf("  legacy (seed replica):  %8.1f ms  (%d evals, %.3f ms/eval)\n",
              1e3 * race.legacy_s, race.legacy_evals, 1e3 * legacy_per_eval);
  std::printf("  this PR (workspace):    %8.1f ms  (%d evals, %.3f ms/eval)\n",
              1e3 * race.new_s, race.new_evals, 1e3 * new_per_eval);
  std::printf("  per-eval speedup: %.2fx   (final objectives agree to %.2g)\n",
              race.speedup, race.values_diff);
  return race;
}

// Heap allocations per Eval (gradient included) after one warmup call.
double MeasureEvalAllocations() {
  const int64_t n = 115;
  const int p = DefaultPFromSize(n);
  PIdentityObjective obj(PrefixGram(n), p, GemmParallelism::kSerial);
  Rng rng(23);
  Matrix theta = Matrix::RandomUniform(p, n, &rng, 0.1, 0.5);
  Vector flat(theta.data(), theta.data() + theta.size());
  Vector grad;
  for (int i = 0; i < 3; ++i) obj.Eval(flat, &grad);  // Warmup sizes buffers.
  const int kEvals = 200;
  const long long before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kEvals; ++i) obj.Eval(flat, &grad);
  const long long after = g_heap_allocs.load(std::memory_order_relaxed);
  const double per_eval =
      static_cast<double>(after - before) / static_cast<double>(kEvals);
  std::printf("  heap allocations per Eval after warmup: %.3f\n", per_eval);
  return per_eval;
}

struct ErrorEvalAllocs {
  double kron_per_eval = 0.0;
  double union_per_eval = 0.0;
  double kron_error = 0.0;   // Sanity: the evaluations return real numbers.
  double union_error = 0.0;
};

// Heap allocations per repeated SquaredError after one warm call. The
// OPT_HDMM outer loop re-scores every candidate strategy against the
// workload; with the Grams, their inverses, and the sensitivity memoized on
// the strategy (and the workload factor Grams shared from the GramCache), a
// warm re-evaluation must not densify or allocate anything.
ErrorEvalAllocs MeasureErrorEvalAllocations(const UnionWorkload& w) {
  ErrorEvalAllocs out;
  const Domain& dom = w.domain();

  std::vector<Matrix> kron_factors;
  for (int i = 0; i < dom.NumAttributes(); ++i)
    kron_factors.push_back(PrefixBlock(dom.AttributeSize(i)));
  KronStrategy kron(std::move(kron_factors), "bench-kron");

  // A two-part union: identity factors answer half the products, prefix
  // factors the other half (the split is arbitrary; what matters is that
  // both per-part tracer sets get exercised every evaluation).
  std::vector<std::vector<Matrix>> parts(2);
  for (int i = 0; i < dom.NumAttributes(); ++i) {
    parts[0].push_back(IdentityBlock(dom.AttributeSize(i)));
    parts[1].push_back(PrefixBlock(dom.AttributeSize(i)));
  }
  std::vector<std::vector<int>> groups(2);
  for (int j = 0; j < w.NumProducts(); ++j) groups[static_cast<size_t>(j % 2)].push_back(j);
  UnionKronStrategy uni(std::move(parts), std::move(groups), "bench-union");

  const int kEvals = 50;
  auto measure = [&](const Strategy& s, double* err) {
    for (int i = 0; i < 2; ++i) *err = s.SquaredError(w);  // Warm caches.
    const long long before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kEvals; ++i) *err = s.SquaredError(w);
    const long long after = g_heap_allocs.load(std::memory_order_relaxed);
    return static_cast<double>(after - before) / static_cast<double>(kEvals);
  };
  out.kron_per_eval = measure(kron, &out.kron_error);
  out.union_per_eval = measure(uni, &out.union_error);
  std::printf("  heap allocations per SquaredError after warmup: "
              "kron %.3f, union-kron %.3f\n",
              out.kron_per_eval, out.union_per_eval);
  return out;
}

struct PlanTimings {
  double cold_s = 0.0;
  double warm_gram_s = 0.0;
  GramCache::Stats cold_stats;
  GramCache::Stats warm_stats;
};

PlanTimings BenchColdPlan(const UnionWorkload& w) {
  HdmmOptions options;
  options.restarts = 1;
  options.seed = 7;

  PlanTimings t;
  GramCache::Global().Clear();
  GramCache::Global().ResetStats();
  {
    WallTimer timer;
    HdmmResult res = OptimizeStrategy(w, options);
    t.cold_s = timer.Seconds();
    t.cold_stats = GramCache::Global().stats();
    std::printf("  cold plan (empty gram cache): %8.1f ms  -> %s\n",
                1e3 * t.cold_s, res.chosen_operator.c_str());
  }
  GramCache::Global().ResetStats();
  {
    WallTimer timer;
    HdmmResult res = OptimizeStrategy(w, options);
    t.warm_gram_s = timer.Seconds();
    t.warm_stats = GramCache::Global().stats();
    std::printf("  re-plan (warm gram cache):    %8.1f ms  -> %s\n",
                1e3 * t.warm_gram_s, res.chosen_operator.c_str());
  }
  std::printf("  gram cache: cold %llu miss / %llu hit (%llu closed-form), "
              "warm hit rate %.0f%%\n",
              static_cast<unsigned long long>(t.cold_stats.misses),
              static_cast<unsigned long long>(t.cold_stats.hits),
              static_cast<unsigned long long>(t.cold_stats.closed_form),
              100.0 * t.warm_stats.HitRate());
  return t;
}

struct ScalePoint {
  int restarts = 0;
  double seconds = 0.0;
};

// One thread arm of the restart-scaling sweep: every restart count timed on
// a private pool of `threads` total threads, plus a content hash of the
// 8-restart winner proving selection is bit-identical across arms.
struct ThreadArm {
  int threads = 0;
  uint64_t selection_hash = 0;
  std::vector<ScalePoint> points;
};

// Content hash of the selected strategy: operator name, its error, and the
// strategy applied to a fixed non-uniform vector (exercises every matrix
// entry). Equal digests across pool widths mean the *same bits* were
// selected, not merely the same operator family.
uint64_t SelectionHash(const UnionWorkload& w, const HdmmResult& res) {
  Fnv1aHasher h;
  h.Bytes(res.chosen_operator.data(), res.chosen_operator.size());
  h.F64(res.squared_error);
  Vector x(static_cast<size_t>(w.DomainSize()));
  for (size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 0.25 * static_cast<double>(i % 11);
  for (double v : res.strategy->Apply(x)) h.F64(v);
  return h.Digest();
}

std::vector<ThreadArm> BenchRestartScaling(const UnionWorkload& w) {
  std::vector<ThreadArm> arms;
  for (int threads : {1, 2, 4}) {
    // The arm's pool carries both the restart fan-out and the dense kernels
    // under it, exactly as a process started with HDMM_THREADS=t would run.
    ThreadPool pool(threads - 1);
    SetRestartPoolForTest(&pool);
    SetComputePool(&pool);
    ThreadArm arm;
    arm.threads = threads;
    for (int restarts : {1, 2, 4, 8}) {
      HdmmOptions options;
      options.restarts = restarts;
      options.seed = 7;
      WallTimer timer;
      HdmmResult res = OptimizeStrategy(w, options);
      ScalePoint pt;
      pt.restarts = restarts;
      pt.seconds = timer.Seconds();
      arm.points.push_back(pt);
      if (restarts == 8) arm.selection_hash = SelectionHash(w, res);
      std::printf("  threads=%d restarts=%d: %8.1f ms  (%.1f ms/restart)\n",
                  threads, restarts, 1e3 * pt.seconds,
                  1e3 * pt.seconds / restarts);
    }
    SetComputePool(nullptr);
    SetRestartPoolForTest(nullptr);
    std::printf("  threads=%d selection hash: %016llx\n", threads,
                static_cast<unsigned long long>(arm.selection_hash));
    arms.push_back(std::move(arm));
  }
  return arms;
}

void WriteJson(const EvalRace& race, double allocs_per_eval,
               const ErrorEvalAllocs& error_allocs, const PlanTimings& plan,
               const std::vector<ThreadArm>& scaling, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  hdmm_bench::WriteJsonHeader(f, "bench_planner");
  std::fprintf(f,
               "  \"eval\": {\"n\": %lld, \"p\": %d, \"legacy_s\": %.6f, "
               "\"new_s\": %.6f, \"legacy_evals\": %d, \"new_evals\": %d, "
               "\"per_eval_speedup\": %.2f, \"values_rel_diff\": %.3g},\n",
               static_cast<long long>(race.n), race.p, race.legacy_s,
               race.new_s, race.legacy_evals, race.new_evals, race.speedup,
               race.values_diff);
  // The headline number, with its definition recorded next to it: the
  // census cold plan's optimizer time concentrates in the age attribute's
  // OPT_0 warm starts (the only p > 1 block in the workload), and the race
  // reproduces exactly that component on the seed-replicated substrate
  // (structure + GEMM driver + per-restart SYRK). plan.cold_s above is the
  // absolute end-to-end census number for trajectory tracking across PRs.
  std::fprintf(f, "  \"cold_plan_speedup\": %.2f,\n",
               race.legacy_s / race.new_s);
  std::fprintf(f,
               "  \"cold_plan_speedup_definition\": \"single-thread OPT_0 "
               "inner-loop race on the census age attribute (n=115, p=7, the "
               "workload's only p>1 block) vs the seed-replicated Eval + GEMM "
               "substrate + per-restart SYRK Gram; track absolute census "
               "cold-plan time via plan.cold_s\",\n");
  std::fprintf(f,
               "  \"allocations\": {\"per_eval_after_warmup\": %.3f, "
               "\"per_error_eval_after_warmup\": %.3f, "
               "\"per_error_eval_kron\": %.3f, "
               "\"per_error_eval_union\": %.3f},\n",
               allocs_per_eval,
               std::max(error_allocs.kron_per_eval,
                        error_allocs.union_per_eval),
               error_allocs.kron_per_eval, error_allocs.union_per_eval);
  std::fprintf(f,
               "  \"plan\": {\"cold_s\": %.6f, \"warm_gram_s\": %.6f, "
               "\"cold_gram_misses\": %llu, \"cold_gram_hits\": %llu, "
               "\"cold_closed_form\": %llu, \"warm_hit_rate\": %.3f},\n",
               plan.cold_s, plan.warm_gram_s,
               static_cast<unsigned long long>(plan.cold_stats.misses),
               static_cast<unsigned long long>(plan.cold_stats.hits),
               static_cast<unsigned long long>(plan.cold_stats.closed_form),
               plan.warm_stats.HitRate());
  std::fprintf(f, "  \"restart_scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ThreadArm& arm = scaling[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"selection_hash\": \"%016llx\", "
                 "\"points\": [",
                 arm.threads,
                 static_cast<unsigned long long>(arm.selection_hash));
    for (size_t j = 0; j < arm.points.size(); ++j) {
      std::fprintf(f, "%s{\"restarts\": %d, \"seconds\": %.6f}",
                   j == 0 ? "" : ", ", arm.points[j].restarts,
                   arm.points[j].seconds);
    }
    std::fprintf(f, "]}%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = hdmm_bench::FullScale(argc, argv);
  UnionWorkload w = CensusWorkload(full);

  std::printf("=== planner: OPT_0 inner loop (n=115 census age) ===\n");
  const EvalRace race = RaceOpt0InnerLoop();

  std::printf("\n=== planner: Eval allocation audit ===\n");
  const double allocs = MeasureEvalAllocations();

  std::printf("\n=== planner: SquaredError allocation audit ===\n");
  const ErrorEvalAllocs error_allocs = MeasureErrorEvalAllocations(w);

  std::printf("\n=== planner: cold plan, census workload (N=%lld, %d pool "
              "threads) ===\n",
              static_cast<long long>(w.DomainSize()),
              ThreadPool::Global().num_threads());
  const PlanTimings plan = BenchColdPlan(w);

  std::printf("\n=== planner: restart scaling (deterministic parallel "
              "restarts, private 1/2/4-thread pools) ===\n");
  const std::vector<ThreadArm> scaling = BenchRestartScaling(w);

  WriteJson(race, allocs, error_allocs, plan, scaling,
            "BENCH_planner.json");
  return 0;
}
