// Figure 5 (Appendix C.4): solution quality vs time for OPT_0 (monolithic,
// explicit 2D domain) against OPT_x (decomposed per attribute) on the 2D
// all-range workload. The paper (64x64): OPT_0 eventually finds a slightly
// better strategy but takes far longer to converge; OPT_x converges almost
// immediately.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/opt0.h"
#include "core/opt_kron.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"

int main(int argc, char** argv) {
  using namespace hdmm;
  bool full = hdmm_bench::FullScale(argc, argv);
  hdmm_bench::Banner("Figure 5: quality vs time, OPT_0 vs OPT_x (2D AllRange)",
                     "Figure 5 of McKenna et al. 2018");

  const int64_t n = full ? 32 : 16;  // Per-side; the 2D domain is n^2.
  Matrix g1 = AllRangeGram(n);
  Matrix gram2d = KronExplicit({g1, g1});
  const double id_err = gram2d.Trace();

  // OPT_x: time to run the decomposed optimization.
  Domain d({n, n});
  UnionWorkload w = MakeProductWorkload(d, {AllRangeBlock(n), AllRangeBlock(n)});
  WallTimer t_kron;
  Rng rng1(1);
  OptKronOptions kopts;
  kopts.restarts = 2;
  OptKronResult kres = OptKron(w, kopts, &rng1);
  std::printf("OPT_x : %8.2fs  error %.1f  (vs identity %.1f)\n",
              t_kron.Seconds(), kres.error, id_err);

  // OPT_0 on the explicit 2D Gram, reporting the error trajectory by
  // re-running with increasing iteration budgets.
  std::printf("OPT_0 trajectory (explicit N = %lld):\n",
              static_cast<long long>(n * n));
  for (int iters : {5, 20, 60, 150}) {
    WallTimer t;
    Rng rng2(2);
    Opt0Options opts;
    opts.p = static_cast<int>(std::max<int64_t>(2, (n * n) / 16));
    opts.restarts = 1;
    opts.lbfgs.max_iterations = iters;
    Opt0Result res = Opt0(gram2d, opts, &rng2);
    std::printf("  iters=%4d  %8.2fs  error %.1f\n", iters, t.Seconds(),
                res.error);
  }
  std::printf(
      "\nShape check (paper): OPT_x converges in a fraction of OPT_0's "
      "time; OPT_0's larger search space eventually edges slightly ahead.\n");
  return 0;
}
