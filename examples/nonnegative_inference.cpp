// Non-negative inference: replacing the RECONSTRUCT least-squares solve with
// NNLS (x >= 0). Counts can't be negative, and on sparse data the projection
// onto the orthant removes a large fraction of the per-cell noise — a pure
// post-processing step, so the epsilon-DP guarantee is untouched
// (post-processing theorem, reference [12] of the paper).
//
// The demo also shows the caveat that makes NNLS a choice rather than a
// default: clamping turns zero-mean cell noise into positively-biased cell
// estimates, and aggregate queries (prefix sums) accumulate that bias. NNLS
// is the right call when the deliverable is the cell histogram / synthetic
// table; plain least squares keeps aggregates unbiased.
//
//   build/examples/example_nonnegative_inference
#include <cmath>
#include <cstdio>

#include "core/hdmm.h"
#include "core/nnls.h"
#include "data/synthetic.h"
#include "linalg/kron.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;
  const int64_t n = 128;
  Domain domain({n});
  UnionWorkload workload = MakeProductWorkload(domain, {PrefixBlock(n)});

  HdmmOptions options;
  options.restarts = 2;
  HdmmResult selection = OptimizeStrategy(workload, options);
  auto* kron = dynamic_cast<KronStrategy*>(selection.strategy.get());
  std::printf("strategy: %s\n", selection.chosen_operator.c_str());

  // Sparse data: most cells empty — the regime where non-negativity helps.
  Rng rng(13);
  Vector x(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < 10; ++i) {
    x[static_cast<size_t>(rng.UniformInt(0, n - 1))] =
        static_cast<double>(rng.UniformInt(50, 400));
  }
  const Vector truth = TrueAnswers(workload, x);

  const double epsilon = 0.2;
  const int trials = 20;
  double cell_ls = 0.0, cell_nnls = 0.0;     // Error on the cell estimates.
  double query_ls = 0.0, query_nnls = 0.0;   // Error on the prefix answers.
  int negative_cells = 0;
  for (int t = 0; t < trials; ++t) {
    const Vector y = selection.strategy->Measure(x, epsilon, &rng);

    // Standard pipeline: least-squares x_hat (can go negative).
    const Vector x_ls = selection.strategy->Reconstruct(y);
    for (double v : x_ls) negative_cells += (v < 0.0) ? 1 : 0;

    // NNLS pipeline, warm-started from the least-squares solution.
    KronOperator op(kron ? kron->factors()
                         : std::vector<Matrix>{IdentityBlock(n)});
    NnlsResult res = SolveNnls(op, y, x_ls);

    for (size_t i = 0; i < x.size(); ++i) {
      cell_ls += (x_ls[i] - x[i]) * (x_ls[i] - x[i]);
      cell_nnls += (res.x[i] - x[i]) * (res.x[i] - x[i]);
    }
    const Vector ans_ls = TrueAnswers(workload, x_ls);
    const Vector ans_nnls = TrueAnswers(workload, res.x);
    for (size_t i = 0; i < truth.size(); ++i) {
      query_ls += (ans_ls[i] - truth[i]) * (ans_ls[i] - truth[i]);
      query_nnls += (ans_nnls[i] - truth[i]) * (ans_nnls[i] - truth[i]);
    }
  }
  std::printf("sparse data (10 of %lld cells occupied), %d runs at "
              "epsilon=%.2f:\n",
              static_cast<long long>(n), trials, epsilon);
  std::printf("  cell-histogram squared error:  least-squares %.0f "
              "(%d negative estimates)  |  NNLS %.0f  (%.2fx better)\n",
              cell_ls / trials, negative_cells, cell_nnls / trials,
              cell_ls / cell_nnls);
  std::printf("  prefix-answer squared error:   least-squares %.0f  |  "
              "NNLS %.0f\n",
              query_ls / trials, query_nnls / trials);
  std::printf(
      "\nReading: NNLS sharpens the cell histogram (noise on empty cells is\n"
      "clamped away) but biases each cell upward, and prefix sums accumulate\n"
      "that bias — choose the inference to match the deliverable.\n");
  return 0;
}
