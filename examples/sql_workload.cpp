// From SQL to private answers: the paper's Section 2 use case end to end.
// A data custodian writes ordinary predicate counting queries; the library
// translates them into the logical union-of-products form (Examples 2-3),
// optimizes a strategy, and answers the whole workload under epsilon-DP.
//
//   build/examples/example_sql_workload
#include <cstdio>

#include "core/error.h"
#include "core/hdmm.h"
#include "core/nnls.h"
#include "data/synthetic.h"
#include "workload/parser.h"
#include "workload/sql.h"

int main() {
  using namespace hdmm;

  // A miniature of the paper's Person schema (Section 2).
  Domain domain({"sex", "age", "hispanic"}, {2, 20, 2});

  // The analyst's queries: counts and group-bys, conjunctive predicates.
  const char* script =
      "SELECT COUNT(*) FROM Person WHERE sex = 1 AND age < 5;"
      "SELECT sex, age, COUNT(*) FROM Person WHERE hispanic = 1 "
      "  GROUP BY sex, age;"
      "SELECT age, COUNT(*) FROM Person GROUP BY age;"
      "SELECT COUNT(*) FROM Person WHERE age BETWEEN 13 AND 19;";

  UnionWorkload workload = ParseSqlWorkloadOrDie(script, domain);
  std::printf("parsed %d SQL statements into %lld predicate counting "
              "queries\n",
              workload.NumProducts(),
              static_cast<long long>(workload.TotalQueries()));

  // The logical form is portable: serialize it for review / versioning.
  std::printf("\nworkload spec (hand off to hdmm_cli or a colleague):\n%s\n",
              SerializeWorkload(workload).c_str());

  // Optimize and run.
  HdmmOptions options;
  options.restarts = 3;
  HdmmResult selection = OptimizeStrategy(workload, options);
  std::printf("selected operator: %s, error ratio vs Laplace mechanism on "
              "the raw queries: %.2f\n",
              selection.chosen_operator.c_str(),
              std::sqrt(workload.Sensitivity() * workload.Sensitivity() *
                        static_cast<double>(workload.TotalQueries()) /
                        selection.squared_error));

  Rng rng(5);
  Vector x = ClusteredDataVector(domain, 5000, 4, &rng);
  const double epsilon = 1.0;
  const Vector truth = TrueAnswers(workload, x);
  const Vector answers =
      RunMechanism(workload, *selection.strategy, x, epsilon, &rng);

  std::printf("\nfirst statements' answers (true vs private):\n");
  std::printf("  children, sex=1:      %6.0f vs %8.2f\n", truth[0],
              answers[0]);
  std::printf("  first group-by cell:  %6.0f vs %8.2f\n", truth[1],
              answers[1]);
  std::printf("realized total squared error: %.1f (expected %.1f)\n",
              EmpiricalSquaredError(truth, answers),
              selection.strategy->TotalSquaredError(workload, epsilon));
  return 0;
}
