// Approximate differential privacy ((epsilon, delta)-DP) with the Gaussian
// mechanism — the Section 3.5 extension: "our techniques also apply to a
// version of MM satisfying approximate differential privacy (delta > 0)."
// Strategy selection, Kronecker measurement, and reconstruction are shared
// with the pure epsilon-DP path; only the sensitivity norm (L2 instead of
// L1) and the noise distribution change.
//
// Which mechanism wins depends on the strategy's L1/L2 sensitivity gap:
// Laplace noise scales with the max column *sum*, Gaussian with the max
// column *Euclidean norm*. Measuring the Prefix workload directly has
// ||A||_1 = n but ||A||_{2,col} = sqrt(n), so Gaussian wins by ~n/(2 ln(1/
// delta)); an HDMM-optimized strategy has columns engineered to unit L1
// norm, shrinking the gap — both effects are shown below.
//
//   build/examples/example_gaussian_mechanism
#include <cmath>
#include <cstdio>

#include "core/error.h"
#include "core/gaussian.h"
#include "core/hdmm.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;
  const int64_t n = 256;
  Domain domain({n});
  UnionWorkload workload = MakeProductWorkload(domain, {PrefixBlock(n)});

  Rng rng(3);
  Vector x = ZipfDataVector(domain, 100000, 1.2, &rng);
  const Vector truth = TrueAnswers(workload, x);
  const double epsilon = 1.0;
  const double delta = 1e-6;
  const int trials = 15;

  // --- 1. Measuring the workload itself (the LM baseline, both noises). ---
  ExplicitStrategy direct(PrefixBlock(n), "prefix-direct");
  const double l1 = direct.Sensitivity();               // = n.
  const double l2 = L2Sensitivity(direct.matrix());     // = sqrt(n).
  std::printf("direct Prefix measurement: ||A||_1 = %.0f, ||A||_2,col = %.1f\n",
              l1, l2);

  double sq_lap = 0.0, sq_gauss = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector y_lap = direct.Measure(x, epsilon, &rng);
    sq_lap += EmpiricalSquaredError(truth, y_lap);
    Vector y_gauss = MeasureGaussian(direct, x, l2, epsilon, delta, &rng);
    sq_gauss += EmpiricalSquaredError(truth, y_gauss);
  }
  std::printf("  Laplace  (pure %.1f-DP):        total squared error %.3g\n",
              epsilon, sq_lap / trials);
  std::printf("  Gaussian ((%.1f, %.0e)-DP):  total squared error %.3g "
              "(%.1fx lower — the L1/L2 gap)\n",
              epsilon, delta, sq_gauss / trials, sq_lap / sq_gauss);

  // --- 2. The full HDMM pipeline under both mechanisms. -------------------
  HdmmOptions options;
  options.restarts = 2;
  HdmmResult selection = OptimizeStrategy(workload, options);
  double hdmm_l2 = selection.strategy->Sensitivity();  // Valid upper bound.
  if (auto* kron = dynamic_cast<KronStrategy*>(selection.strategy.get())) {
    hdmm_l2 = KronL2Sensitivity(kron->factors());
  }
  std::printf("\nHDMM strategy (%s): ||A||_1 = %.3f, ||A||_2,col = %.3f\n",
              selection.chosen_operator.c_str(),
              selection.strategy->Sensitivity(), hdmm_l2);

  double sq_hdmm_lap = 0.0, sq_hdmm_gauss = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector ans = RunMechanism(workload, *selection.strategy, x, epsilon, &rng);
    sq_hdmm_lap += EmpiricalSquaredError(truth, ans);
    Vector y = MeasureGaussian(*selection.strategy, x, hdmm_l2, epsilon,
                               delta, &rng);
    Vector ans_g = TrueAnswers(workload, selection.strategy->Reconstruct(y));
    sq_hdmm_gauss += EmpiricalSquaredError(truth, ans_g);
  }
  std::printf("  HDMM + Laplace:  total squared error %.3g "
              "(%.0fx below direct Laplace)\n",
              sq_hdmm_lap / trials, sq_lap / sq_hdmm_lap);
  std::printf("  HDMM + Gaussian: total squared error %.3g\n",
              sq_hdmm_gauss / trials);
  std::printf(
      "\nReading: strategy optimization dwarfs the noise-distribution "
      "choice here;\nonce columns are normalized to unit L1 norm the L1/L2 "
      "gap (and Gaussian's\nedge) shrinks, while the delta > 0 relaxation "
      "still costs its 2 ln(1.25/delta)\nfactor. Gaussian pays off when the "
      "deployment requires (epsilon, delta)\naccounting anyway (e.g., "
      "composition across many releases).\n");
  return 0;
}
