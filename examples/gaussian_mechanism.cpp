// Approximate differential privacy ((epsilon, delta)-DP) with the Gaussian
// mechanism — the Section 3.5 extension: "our techniques also apply to a
// version of MM satisfying approximate differential privacy (delta > 0)."
// Strategy selection, Kronecker measurement, and reconstruction are shared
// with the pure epsilon-DP path; only the sensitivity norm (L2 instead of
// L1) and the noise distribution change.
//
// Which mechanism wins depends on the strategy's L1/L2 sensitivity gap:
// Laplace noise scales with the max column *sum*, Gaussian with the max
// column *Euclidean norm*. Measuring the Prefix workload directly has
// ||A||_1 = n but ||A||_{2,col} = sqrt(n), so Gaussian wins by ~n/(2 ln(1/
// delta)); an HDMM-optimized strategy has columns engineered to unit L1
// norm, shrinking the gap — both effects are shown below.
//
// Gaussian noise is calibrated through zCDP (sigma = sens / sqrt(2 rho) with
// rho = RhoFromEpsilonDelta(epsilon, delta)): unlike the classic
// sqrt(2 ln(1.25/delta)) formula it stays valid at epsilon >= 1 and is what
// the serving engine's zcdp accountant charges for.
//
//   build/examples/example_gaussian_mechanism
#include <cmath>
#include <cstdio>

#include "core/error.h"
#include "core/gaussian.h"
#include "core/hdmm.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;
  const int64_t n = 256;
  Domain domain({n});
  UnionWorkload workload = MakeProductWorkload(domain, {PrefixBlock(n)});

  Rng rng(3);
  Vector x = ZipfDataVector(domain, 100000, 1.2, &rng);
  const Vector truth = TrueAnswers(workload, x);
  const double epsilon = 1.0;
  const double delta = 1e-6;
  // zCDP budget equivalent to (epsilon, delta)-DP by Bun-Steinke: valid at
  // every epsilon, where the classic calibration stops at epsilon < 1.
  const double rho = RhoFromEpsilonDelta(epsilon, delta);
  const int trials = 15;

  // --- 1. Measuring the workload itself (the LM baseline, both noises). ---
  ExplicitStrategy direct(PrefixBlock(n), "prefix-direct");
  const double l1 = direct.Sensitivity();               // = n.
  const double l2 = L2Sensitivity(direct.matrix());     // = sqrt(n).
  std::printf("direct Prefix measurement: ||A||_1 = %.0f, ||A||_2,col = %.1f\n",
              l1, l2);

  double sq_lap = 0.0, sq_gauss = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector y_lap = direct.Measure(x, epsilon, &rng);
    sq_lap += EmpiricalSquaredError(truth, y_lap);
    Vector y_gauss = direct.MeasureGaussian(x, rho, &rng);
    sq_gauss += EmpiricalSquaredError(truth, y_gauss);
  }
  std::printf("  Laplace  (pure %.1f-DP):        total squared error %.3g\n",
              epsilon, sq_lap / trials);
  std::printf("  Gaussian ((%.1f, %.0e)-DP):  total squared error %.3g "
              "(%.1fx lower — the L1/L2 gap)\n",
              epsilon, delta, sq_gauss / trials, sq_lap / sq_gauss);

  // --- 2. The full HDMM pipeline under both mechanisms. -------------------
  HdmmOptions options;
  options.restarts = 2;
  HdmmResult selection = OptimizeStrategy(workload, options);
  const double hdmm_l2 = selection.strategy->L2Sensitivity();
  std::printf("\nHDMM strategy (%s): ||A||_1 = %.3f, ||A||_2,col = %.3f\n",
              selection.chosen_operator.c_str(),
              selection.strategy->Sensitivity(), hdmm_l2);

  double sq_hdmm_lap = 0.0, sq_hdmm_gauss = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector ans = RunMechanism(workload, *selection.strategy, x, epsilon, &rng);
    sq_hdmm_lap += EmpiricalSquaredError(truth, ans);
    Vector y = selection.strategy->MeasureGaussian(x, rho, &rng);
    Vector ans_g = TrueAnswers(workload, selection.strategy->Reconstruct(y));
    sq_hdmm_gauss += EmpiricalSquaredError(truth, ans_g);
  }
  std::printf("  HDMM + Laplace:  total squared error %.3g "
              "(%.0fx below direct Laplace)\n",
              sq_hdmm_lap / trials, sq_lap / sq_hdmm_lap);
  std::printf("  HDMM + Gaussian: total squared error %.3g\n",
              sq_hdmm_gauss / trials);
  std::printf(
      "\nReading: strategy optimization dwarfs the noise-distribution "
      "choice here;\nonce columns are normalized to unit L1 norm the L1/L2 "
      "gap (and Gaussian's\nedge) shrinks, while the delta > 0 relaxation "
      "still pays its ~ln(1/delta)\noverhead through rho. Gaussian pays off "
      "when the deployment requires\n(epsilon, delta) accounting anyway — "
      "zCDP composes additively across many\nreleases, which is exactly what "
      "the serving engine's zcdp regime tracks.\n");
  return 0;
}
