// The paper's motivating use case (Section 2): releasing the SF1 tabulations
// of the Census of Population and Housing under differential privacy.
// Demonstrates the implicit workload representation (4151 queries over a
// 500,480-cell domain held in a few hundred KB) and strategy selection on a
// real multi-dimensional schema.
//
//   build/examples/example_census_sf1
#include <cstdio>

#include "core/error.h"
#include "core/hdmm.h"
#include "data/census.h"
#include "data/synthetic.h"

int main() {
  using namespace hdmm;

  UnionWorkload sf1 = Sf1Workload();
  std::printf("SF1 stand-in: %lld queries, %d products, domain %s "
              "(N = %lld)\n",
              static_cast<long long>(sf1.TotalQueries()), sf1.NumProducts(),
              sf1.domain().ToString().c_str(),
              static_cast<long long>(sf1.DomainSize()));
  std::printf("implicit representation: %.1f KB (explicit would be %.1f "
              "GB)\n",
              sf1.ImplicitStorageDoubles() * 8.0 / 1024,
              sf1.ExplicitStorageDoubles() * 8.0 / (1 << 30));

  // Strategy selection (OPT_HDMM). Data-independent; do it once per decade.
  HdmmOptions options;
  options.restarts = 1;
  options.use_marginals = false;
  HdmmResult selection = OptimizeStrategy(sf1, options);

  // Baselines for context.
  double id_err = [&] {
    HdmmOptions id_only;
    id_only.restarts = 1;
    id_only.use_kron = id_only.use_union = id_only.use_marginals = false;
    return OptimizeStrategy(sf1, id_only).squared_error;
  }();
  std::printf("HDMM strategy (%s): expected squared error %.3g\n",
              selection.chosen_operator.c_str(), selection.squared_error);
  std::printf("identity baseline: %.3g (HDMM is %.2fx better in RMSE)\n",
              id_err, std::sqrt(id_err / selection.squared_error));

  // Run the mechanism on synthetic person-level data.
  Rng rng(2020);
  Vector x = ZipfDataVector(sf1.domain(), 1000000, 1.05, &rng);
  Vector truth = TrueAnswers(sf1, x);
  Vector answers = RunMechanism(sf1, *selection.strategy, x, 1.0, &rng);
  double rmse = std::sqrt(EmpiricalSquaredError(truth, answers) /
                          static_cast<double>(truth.size()));
  std::printf("one run at epsilon=1: per-query RMSE %.2f on %zu queries "
              "(population 1M)\n",
              rmse, truth.size());
  return 0;
}
