// Marginals release on a CPS-like schema (Section 8): OPT_M finds a
// weighted set of marginals to measure and reports which ones it weights
// most — the kind of output an agency would review before a release.
//
//   build/examples/example_marginals_cps
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/baselines.h"
#include "baselines/datacube.h"
#include "core/hdmm.h"
#include "data/census.h"
#include "workload/marginals.h"

int main() {
  using namespace hdmm;

  Domain domain = CpsDomain();
  UnionWorkload w = KWayMarginals(domain, 2);
  std::printf("workload: all 2-way marginals of CPS %s — %lld queries\n",
              domain.ToString().c_str(),
              static_cast<long long>(w.TotalQueries()));

  HdmmOptions options;
  options.restarts = 3;
  HdmmResult res = OptimizeStrategy(w, options);
  std::printf("HDMM chose the %s operator, squared error %.3g\n",
              res.chosen_operator.c_str(), res.squared_error);

  double id_err = MakeIdentityBaseline(domain)->SquaredError(w);
  double lm_err = LaplaceMechanismSquaredError(w);
  std::printf("identity ratio %.2f, LM ratio %.2f  (paper, Adult 2-way: "
              "5.30 and 2.11)\n",
              std::sqrt(id_err / res.squared_error),
              std::sqrt(lm_err / res.squared_error));

  // If the winner is a marginals strategy, show the heaviest marginals.
  if (auto* marg = dynamic_cast<MarginalsStrategy*>(res.strategy.get())) {
    std::vector<std::pair<double, uint32_t>> weighted;
    for (uint32_t m = 0; m < marg->theta().size(); ++m) {
      if (marg->theta()[m] > 1e-6) weighted.push_back({marg->theta()[m], m});
    }
    std::sort(weighted.rbegin(), weighted.rend());
    std::printf("top weighted marginals in the selected strategy:\n");
    for (size_t i = 0; i < std::min<size_t>(6, weighted.size()); ++i) {
      std::printf("  weight %6.3f  { ", weighted[i].first);
      for (int a = 0; a < domain.NumAttributes(); ++a) {
        if ((weighted[i].second >> a) & 1u)
          std::printf("%s ", domain.AttributeName(a).c_str());
      }
      std::printf("}\n");
    }
  }
  return 0;
}
