// Quickstart: answer a workload of range queries over a 1D domain under
// epsilon-differential privacy with HDMM, end to end.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "core/error.h"
#include "core/hdmm.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;

  // 1. Define the domain and the workload: all prefix (CDF) queries over a
  //    domain of 64 values.
  Domain domain({64});
  UnionWorkload workload = MakeProductWorkload(domain, {PrefixBlock(64)});
  std::printf("workload: %lld queries over %lld cells\n",
              static_cast<long long>(workload.TotalQueries()),
              static_cast<long long>(workload.DomainSize()));

  // 2. SELECT: optimize a measurement strategy for this workload. This step
  //    is data-independent and consumes no privacy budget.
  HdmmOptions options;
  options.restarts = 3;
  HdmmResult selection = OptimizeStrategy(workload, options);
  std::printf("selected operator: %s, expected squared error %.1f "
              "(identity baseline: %.1f)\n",
              selection.chosen_operator.c_str(), selection.squared_error,
              PrefixGram(64).Trace());

  // 3. Make some data and run the private mechanism at epsilon = 1.
  Rng rng(7);
  Vector x = ZipfDataVector(domain, 10000, 1.1, &rng);
  const double epsilon = 1.0;
  Vector private_answers =
      RunMechanism(workload, *selection.strategy, x, epsilon, &rng);

  // 4. Compare with the true answers.
  Vector truth = TrueAnswers(workload, x);
  double err = EmpiricalSquaredError(truth, private_answers);
  std::printf("one run at epsilon=%.1f: total squared error %.1f "
              "(expected %.1f)\n",
              epsilon, err,
              selection.strategy->TotalSquaredError(workload, epsilon));
  std::printf("first five answers (true vs private):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  q%d: %8.0f vs %8.1f\n", i, truth[static_cast<size_t>(i)],
                private_answers[static_cast<size_t>(i)]);
  }
  return 0;
}
