// 2D range queries (the Taxi use case of Section 8): a union workload
// [P x I; I x P] where a single product strategy pairs queries badly, so
// OPT_+ union strategies win (Section 6.2).
//
//   build/examples/example_range_queries_2d
#include <cmath>
#include <cstdio>

#include "baselines/baselines.h"
#include "baselines/hb.h"
#include "baselines/privelet.h"
#include "baselines/quadtree.h"
#include "core/hdmm.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;

  const int64_t n = 32;
  Domain domain({n, n});
  UnionWorkload w(domain);
  ProductWorkload p1;
  p1.factors = {PrefixBlock(n), IdentityBlock(n)};
  w.AddProduct(std::move(p1));
  ProductWorkload p2;
  p2.factors = {IdentityBlock(n), PrefixBlock(n)};
  w.AddProduct(std::move(p2));
  std::printf("workload [PxI; IxP]: %lld queries over %lld cells\n",
              static_cast<long long>(w.TotalQueries()),
              static_cast<long long>(w.DomainSize()));

  HdmmOptions options;
  options.restarts = 2;
  options.use_marginals = false;
  HdmmResult hdmm_res = OptimizeStrategy(w, options);
  double hdmm_err = hdmm_res.squared_error;
  std::printf("HDMM (%s): squared error %.1f\n",
              hdmm_res.chosen_operator.c_str(), hdmm_err);

  auto report = [&](const char* name, double err) {
    std::printf("%-10s ratio %.2f\n", name, std::sqrt(err / hdmm_err));
  };
  report("Identity", MakeIdentityBaseline(domain)->SquaredError(w));
  report("LM", LaplaceMechanismSquaredError(w));
  report("Privelet", MakePriveletStrategy(domain)->SquaredError(w));
  report("HB", MakeHbStrategy(domain)->SquaredError(w));
  report("QuadTree", MakeQuadtreeStrategy(n, n)->SquaredError(w));
  std::printf("(paper, 64x64: Identity 1.11, Wavelet 5.26, HB 2.08, "
              "QuadTree 3.32)\n");
  return 0;
}
