// Approximate relative-error optimization by workload re-weighting — the
// Section 9 extension: "by weighting the workload queries (e.g. inversely
// with their L1-norm) we can approximately optimize relative error, at least
// for datasets whose data vectors are close to uniform."
//
// The demo compares two strategies for a mixed workload containing the total
// query, broad ranges, and point queries: one optimized for absolute error,
// one for the re-weighted workload. On near-uniform data, the re-weighted
// strategy trades a little absolute accuracy on the big aggregates for much
// better relative accuracy on the small counts.
//
//   build/examples/example_relative_error
#include <cmath>
#include <cstdio>

#include "core/hdmm.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"
#include "workload/workload.h"

namespace {

using namespace hdmm;

// Mean over queries of |estimate - truth| / max(truth, 1).
double MeanRelativeError(const Vector& truth, const Vector& estimate) {
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    total += std::abs(estimate[i] - truth[i]) / std::max(truth[i], 1.0);
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  using namespace hdmm;
  const int64_t n = 64;
  Domain domain({n});

  // A workload mixing scales: the total (answer ~ all records), all width-16
  // ranges (answers ~ n_records/4), and every point query (small answers).
  UnionWorkload workload(domain);
  ProductWorkload total;
  total.factors = {TotalBlock(n)};
  workload.AddProduct(total);
  ProductWorkload ranges;
  ranges.factors = {WidthRangeBlock(n, 16)};
  workload.AddProduct(ranges);
  ProductWorkload points;
  points.factors = {IdentityBlock(n)};
  workload.AddProduct(points);

  // Re-weight inversely with per-query L1 norm (Section 9's heuristic).
  UnionWorkload reweighted = WeightForRelativeError(workload);
  std::printf("re-weighted product weights:");
  for (const ProductWorkload& p : reweighted.products()) {
    std::printf(" %.4f", p.weight);
  }
  std::printf("  (total gets the smallest weight)\n\n");

  HdmmOptions options;
  options.restarts = 3;
  HdmmResult absolute = OptimizeStrategy(workload, options);
  HdmmResult relative = OptimizeStrategy(reweighted, options);

  // Near-uniform data, where the Section 9 argument applies.
  Rng rng(11);
  Vector x = UniformDataVector(domain, 20000, &rng);
  const Vector truth = TrueAnswers(workload, x);

  const double epsilon = 0.5;
  const int trials = 25;
  double rel_abs = 0.0, rel_rel = 0.0, abs_abs = 0.0, abs_rel = 0.0;
  for (int t = 0; t < trials; ++t) {
    Vector est_a = RunMechanism(workload, *absolute.strategy, x, epsilon, &rng);
    Vector est_r = RunMechanism(workload, *relative.strategy, x, epsilon, &rng);
    rel_abs += MeanRelativeError(truth, est_a);
    rel_rel += MeanRelativeError(truth, est_r);
    for (size_t i = 0; i < truth.size(); ++i) {
      abs_abs += (est_a[i] - truth[i]) * (est_a[i] - truth[i]);
      abs_rel += (est_r[i] - truth[i]) * (est_r[i] - truth[i]);
    }
  }
  std::printf("over %d runs at epsilon=%.2f:\n", trials, epsilon);
  std::printf("  absolute-optimized: mean relative error %.4f, "
              "total squared error %.0f\n",
              rel_abs / trials, abs_abs / trials);
  std::printf("  re-weighted:        mean relative error %.4f, "
              "total squared error %.0f\n",
              rel_rel / trials, abs_rel / trials);
  std::printf("\nThe re-weighted optimization targets the error each query "
              "can afford\n(small counts get proportionally more accuracy), "
              "which is the Section 9\nrecipe for approximate relative-error "
              "optimization on near-uniform data.\n");
  return 0;
}
