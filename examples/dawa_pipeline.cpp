// Using HDMM to improve an existing mechanism (Appendix B.3): DAWA's
// data-dependent partitioning with HDMM's OPT_0 replacing GreedyH as the
// second stage. Reports the empirical improvement on clustered data.
//
//   build/examples/example_dawa_pipeline
#include <cmath>
#include <cstdio>

#include "baselines/dawa.h"
#include "core/error.h"
#include "data/synthetic.h"
#include "workload/building_blocks.h"

int main() {
  using namespace hdmm;

  const int64_t n = 256;
  Domain domain({n});
  Matrix workload = PrefixBlock(n);
  Rng rng(99);
  Vector x = ClusteredDataVector(domain, 500000, 6, &rng);
  Vector truth = MatVec(workload, x);
  std::printf("Prefix workload over %lld cells; clustered data with 6 "
              "density levels, 500k records\n",
              static_cast<long long>(n));

  const double epsilon = std::sqrt(2.0);
  const int trials = 10;
  double err_orig = 0.0, err_hdmm = 0.0;
  // Common random numbers: both variants see identical noise sequences so
  // the comparison isolates the stage-2 strategy difference.
  Rng rng_orig(1234), rng_hdmm(1234);
  for (int t = 0; t < trials; ++t) {
    DawaOptions original;
    err_orig += EmpiricalSquaredError(
        truth, RunDawa(workload, x, epsilon, original, &rng_orig));
    DawaOptions modified;
    modified.stage2 = DawaStage2::kHdmm;
    modified.opt0_p = 8;
    err_hdmm += EmpiricalSquaredError(
        truth, RunDawa(workload, x, epsilon, modified, &rng_hdmm));
  }
  std::printf("average total squared error over %d trials:\n", trials);
  std::printf("  DAWA (GreedyH stage 2): %.3g\n", err_orig / trials);
  std::printf("  DAWA (HDMM stage 2):    %.3g\n", err_hdmm / trials);
  std::printf("improvement ratio: %.2fx  (paper Table 6: 1.04x - 2.28x "
              "depending on data/domain)\n",
              std::sqrt(err_orig / err_hdmm));
  return 0;
}
