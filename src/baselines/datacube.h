// DataCube [10]: answers a workload of marginals by greedily selecting a
// different set of marginals to measure. Each workload marginal is answered
// by aggregating the cheapest measured superset; the greedy step adds the
// candidate marginal that most reduces total expected error.
#ifndef HDMM_BASELINES_DATACUBE_H_
#define HDMM_BASELINES_DATACUBE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "linalg/vector_ops.h"
#include "workload/domain.h"

namespace hdmm {

/// Result of DataCube's selection.
struct DataCubeResult {
  std::vector<uint32_t> measured;  ///< Marginal masks to measure.
  /// Total expected squared error in the library's sens^2-scaled convention
  /// (multiply by 2/eps^2 for Err at budget eps).
  double squared_error = 0.0;
};

/// Greedy marginal-set selection for a workload consisting of the marginals
/// in `workload_masks` over `domain`. The error model follows [10]: with k
/// measured marginals sharing the budget evenly, a workload marginal S
/// answered from measured T (superset of S) costs
/// |cells(S)| * prod_{i in T \ S} n_i * k^2.
DataCubeResult DataCubeSelect(const Domain& domain,
                              const std::vector<uint32_t>& workload_masks);

/// One mechanism run: measures the selected marginals under epsilon-DP and
/// returns the estimated answers of the workload marginals, concatenated in
/// the order of `workload_masks` (cells of each marginal in row-major
/// order).
Vector RunDataCube(const Domain& domain,
                   const std::vector<uint32_t>& workload_masks,
                   const DataCubeResult& selection, const Vector& x,
                   double epsilon, Rng* rng);

}  // namespace hdmm

#endif  // HDMM_BASELINES_DATACUBE_H_
