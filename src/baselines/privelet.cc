#include "baselines/privelet.h"

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {

std::unique_ptr<Strategy> MakePriveletStrategy(const Domain& domain) {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    const int64_t n = domain.AttributeSize(i);
    HDMM_CHECK_MSG((n & (n - 1)) == 0,
                   "Privelet requires power-of-two attribute sizes");
    factors.push_back(HaarBlock(n));
  }
  return std::make_unique<KronStrategy>(std::move(factors), "privelet");
}

}  // namespace hdmm
