#include "baselines/dawa.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/greedy_h.h"
#include "common/check.h"
#include "core/opt0.h"
#include "core/strategy.h"
#include "linalg/pinv.h"

namespace hdmm {

std::vector<int64_t> DawaPartition(const Vector& noisy_counts,
                                   double bucket_penalty) {
  const int64_t n = static_cast<int64_t>(noisy_counts.size());
  HDMM_CHECK(n >= 1);
  // Prefix sums for O(1) interval L2 deviation:
  // dev(i, j) = sum x^2 - (sum x)^2 / len over cells [i, j).
  Vector ps(static_cast<size_t>(n + 1), 0.0), ps2(static_cast<size_t>(n + 1), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    ps[static_cast<size_t>(i + 1)] = ps[static_cast<size_t>(i)] + noisy_counts[static_cast<size_t>(i)];
    ps2[static_cast<size_t>(i + 1)] =
        ps2[static_cast<size_t>(i)] +
        noisy_counts[static_cast<size_t>(i)] * noisy_counts[static_cast<size_t>(i)];
  }
  auto deviation = [&](int64_t i, int64_t j) {
    double s = ps[static_cast<size_t>(j)] - ps[static_cast<size_t>(i)];
    double s2 = ps2[static_cast<size_t>(j)] - ps2[static_cast<size_t>(i)];
    return s2 - s * s / static_cast<double>(j - i);
  };

  // DP over bucket end positions.
  Vector best(static_cast<size_t>(n + 1),
              std::numeric_limits<double>::infinity());
  std::vector<int64_t> prev(static_cast<size_t>(n + 1), 0);
  best[0] = 0.0;
  for (int64_t j = 1; j <= n; ++j) {
    for (int64_t i = 0; i < j; ++i) {
      double cost = best[static_cast<size_t>(i)] + deviation(i, j) + bucket_penalty;
      if (cost < best[static_cast<size_t>(j)]) {
        best[static_cast<size_t>(j)] = cost;
        prev[static_cast<size_t>(j)] = i;
      }
    }
  }
  std::vector<int64_t> bounds;
  for (int64_t j = n; j > 0; j = prev[static_cast<size_t>(j)])
    bounds.push_back(j);
  std::reverse(bounds.begin(), bounds.end());
  return bounds;
}

Vector RunDawa(const Matrix& workload, const Vector& x, double epsilon,
               const DawaOptions& options, Rng* rng) {
  const int64_t n = workload.cols();
  HDMM_CHECK(static_cast<int64_t>(x.size()) == n);
  const double eps1 = options.partition_budget_fraction * epsilon;
  const double eps2 = epsilon - eps1;
  HDMM_CHECK(eps1 > 0.0 && eps2 > 0.0);

  // Stage 1: private partition from noisy counts.
  Vector noisy = x;
  for (double& v : noisy) v += rng->Laplace(1.0 / eps1);
  std::vector<int64_t> bounds = DawaPartition(noisy, 2.0 / (eps2 * eps2));
  const int64_t b = static_cast<int64_t>(bounds.size());

  // Bucket membership and uniform-expansion matrix U (n x b).
  std::vector<int64_t> bucket_of(static_cast<size_t>(n));
  std::vector<int64_t> bucket_size(static_cast<size_t>(b), 0);
  {
    int64_t cell = 0;
    for (int64_t k = 0; k < b; ++k) {
      for (; cell < bounds[static_cast<size_t>(k)]; ++cell) {
        bucket_of[static_cast<size_t>(cell)] = k;
        ++bucket_size[static_cast<size_t>(k)];
      }
    }
  }

  // Reduced workload W_r = W U (m x b).
  Matrix reduced(workload.rows(), b);
  for (int64_t r = 0; r < workload.rows(); ++r) {
    const double* row = workload.Row(r);
    for (int64_t j = 0; j < n; ++j) {
      int64_t k = bucket_of[static_cast<size_t>(j)];
      reduced(r, k) += row[j] / static_cast<double>(bucket_size[static_cast<size_t>(k)]);
    }
  }

  // Bucket totals z = E^T x.
  Vector z(static_cast<size_t>(b), 0.0);
  for (int64_t j = 0; j < n; ++j)
    z[static_cast<size_t>(bucket_of[static_cast<size_t>(j)])] += x[static_cast<size_t>(j)];

  // Stage 2: select-measure-reconstruct on the compressed domain.
  Matrix gram = Gram(reduced);
  std::unique_ptr<Strategy> strategy;
  if (options.stage2 == DawaStage2::kGreedyH && b >= 2) {
    strategy = MakeGreedyHStrategy(gram);
  } else {
    Opt0Options o;
    o.p = std::max(1, std::min<int>(options.opt0_p, static_cast<int>(b)));
    o.restarts = 2;
    Opt0Result res = Opt0(gram, o, rng);
    strategy = std::make_unique<ExplicitStrategy>(
        PIdentityObjective::BuildStrategy(res.theta), "dawa-hdmm");
  }
  Vector y = strategy->Measure(z, eps2, rng);
  Vector z_hat = strategy->Reconstruct(y);
  return MatVec(reduced, z_hat);
}

}  // namespace hdmm
