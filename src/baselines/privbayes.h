// PrivBayes [50]: private synthetic data via a Bayesian network. Fits a
// tree-structured network (each attribute gets at most one parent) with a
// noisy mutual-information criterion, perturbs the conditional
// distributions with Laplace noise, samples synthetic records, and answers
// the workload on the synthetic data vector.
#ifndef HDMM_BASELINES_PRIVBAYES_H_
#define HDMM_BASELINES_PRIVBAYES_H_

#include "common/rng.h"
#include "linalg/vector_ops.h"
#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// Options for PrivBayes.
struct PrivBayesOptions {
  double structure_budget_fraction = 0.3;  ///< For network selection.
  int64_t synthetic_records = 0;           ///< 0 = match input total.
};

/// One PrivBayes run: returns the synthetic data vector (same shape as x)
/// built under epsilon-DP. Workload answers follow by applying W.
Vector RunPrivBayesSynthetic(const Domain& domain, const Vector& x,
                             double epsilon, const PrivBayesOptions& options,
                             Rng* rng);

/// Convenience: synthetic data vector -> workload answers.
Vector RunPrivBayes(const UnionWorkload& w, const Vector& x, double epsilon,
                    const PrivBayesOptions& options, Rng* rng);

}  // namespace hdmm

#endif  // HDMM_BASELINES_PRIVBAYES_H_
