// Privelet [43]: the Haar-wavelet strategy. For multi-dimensional domains
// the wavelet basis extends as the Kronecker product of 1D Haar matrices
// (Xiao et al.'s multi-dimensional extension).
#ifndef HDMM_BASELINES_PRIVELET_H_
#define HDMM_BASELINES_PRIVELET_H_

#include <memory>

#include "core/strategy.h"
#include "workload/domain.h"

namespace hdmm {

/// Builds the Privelet (Haar wavelet) strategy for the given domain. Every
/// attribute size is rounded up to a power of two internally; queries over
/// padded cells are zero so error is unaffected on the real domain when the
/// size is already a power of two (benchmarks use power-of-two domains as in
/// the paper).
std::unique_ptr<Strategy> MakePriveletStrategy(const Domain& domain);

}  // namespace hdmm

#endif  // HDMM_BASELINES_PRIVELET_H_
