// HB [36]: hierarchical strategies with a branching factor tuned for the
// all-range workload (regardless of the actual input workload — the paper
// stresses this as HB's key limitation). Multi-dimensional domains use the
// per-attribute Kronecker extension.
#ifndef HDMM_BASELINES_HB_H_
#define HDMM_BASELINES_HB_H_

#include <memory>

#include "core/strategy.h"
#include "workload/domain.h"

namespace hdmm {

/// Chooses HB's branching factor for a 1D domain of size n. For modest n the
/// expected AllRange error is evaluated exactly for each candidate; beyond
/// `exact_threshold` the standard analytic criterion (minimize
/// (b-1) * height^3) is used.
int SelectHbBranching(int64_t n, int64_t exact_threshold = 1024);

/// Builds the HB strategy for the domain (hierarchy per attribute).
std::unique_ptr<Strategy> MakeHbStrategy(const Domain& domain);

}  // namespace hdmm

#endif  // HDMM_BASELINES_HB_H_
