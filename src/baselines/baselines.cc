#include "baselines/baselines.h"

#include <cmath>

#include "common/check.h"
#include "core/error.h"
#include "core/gaussian.h"
#include "linalg/kron.h"
#include "linalg/lsmr.h"
#include "linalg/pinv.h"
#include "linalg/trace_estimator.h"
#include "workload/building_blocks.h"

namespace hdmm {

std::unique_ptr<Strategy> MakeIdentityBaseline(const Domain& domain) {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain.NumAttributes(); ++i)
    factors.push_back(IdentityBlock(domain.AttributeSize(i)));
  return std::make_unique<KronStrategy>(std::move(factors), "identity");
}

double LaplaceMechanismSquaredError(const UnionWorkload& w) {
  double sens = w.Sensitivity();
  double weighted_rows = 0.0;
  for (const ProductWorkload& p : w.products()) {
    weighted_rows +=
        p.weight * p.weight * static_cast<double>(p.NumQueries());
  }
  return sens * sens * weighted_rows;
}

Vector RunLaplaceMechanism(const UnionWorkload& w, const Vector& x,
                           double epsilon, Rng* rng) {
  auto op = w.ToOperator();
  Vector answers = op->Apply(x);
  double scale = w.Sensitivity() / epsilon;
  for (double& v : answers) v += rng->Laplace(scale);
  return answers;
}

ImplicitStackedStrategy::ImplicitStackedStrategy(
    std::vector<std::vector<Matrix>> parts, std::string name,
    int64_t dense_threshold, uint64_t estimator_seed, int estimator_samples)
    : parts_(std::move(parts)),
      name_(std::move(name)),
      dense_threshold_(dense_threshold),
      estimator_seed_(estimator_seed),
      estimator_samples_(estimator_samples) {
  HDMM_CHECK(!parts_.empty());
  std::vector<std::shared_ptr<const LinearOperator>> blocks;
  for (const auto& factors : parts_)
    blocks.push_back(std::make_shared<KronOperator>(factors));
  op_ = std::make_shared<StackedOperator>(std::move(blocks));
}

int64_t ImplicitStackedStrategy::DomainSize() const { return op_->Cols(); }

int64_t ImplicitStackedStrategy::NumQueries() const { return op_->Rows(); }

double ImplicitStackedStrategy::Sensitivity() const {
  // Exact when every part has uniform column sums (true for the partition
  // levels these baselines stack); an upper bound otherwise.
  double s = 0.0;
  for (const auto& factors : parts_) s += KronSensitivity(factors);
  return s;
}

double ImplicitStackedStrategy::L2Sensitivity() const {
  double sq = 0.0;
  for (const auto& factors : parts_) {
    const double part = KronL2Sensitivity(factors);
    sq += part * part;
  }
  return std::sqrt(sq);
}

Vector ImplicitStackedStrategy::Apply(const Vector& x) const {
  return op_->Apply(x);
}

Vector ImplicitStackedStrategy::Reconstruct(const Vector& y) const {
  return LsmrSolve(*op_, y).x;
}

double ImplicitStackedStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK(w.DomainSize() == DomainSize());
  const double sens = Sensitivity();
  if (DomainSize() <= dense_threshold_) {
    // Exact dense path.
    std::vector<Matrix> blocks;
    for (const auto& factors : parts_) blocks.push_back(KronExplicit(factors));
    Matrix a = VStack(blocks);
    return sens * sens * TracePinvGram(Gram(a), w.ExplicitGram());
  }
  // Matrix-free Hutchinson estimate. A loose CG tolerance is plenty: the
  // Hutchinson sampling error (~1/sqrt(samples)) dominates the solve error.
  Rng rng(estimator_seed_);
  auto wop = w.ToOperator();
  GramOperator gram_a(op_);
  GramOperator gram_w(wop);
  TraceEstimatorOptions opts;
  opts.num_samples = estimator_samples_;
  opts.cg.rtol = 1e-5;
  opts.cg.max_iterations = 300;
  double tr = EstimateTraceInvProduct(gram_a, gram_w, &rng, opts);
  return sens * sens * tr;
}

}  // namespace hdmm
