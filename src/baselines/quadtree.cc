#include "baselines/quadtree.h"

#include <algorithm>

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {

std::unique_ptr<Strategy> MakeQuadtreeStrategy(int64_t n1, int64_t n2) {
  HDMM_CHECK_MSG((n1 & (n1 - 1)) == 0 && (n2 & (n2 - 1)) == 0,
                 "QuadTree requires power-of-two grid sides");
  int levels1 = 0, levels2 = 0;
  while ((int64_t{1} << levels1) < n1) ++levels1;
  while ((int64_t{1} << levels2) < n2) ++levels2;
  const int depth = std::max(levels1, levels2);

  std::vector<std::vector<Matrix>> parts;
  for (int k = 0; k <= depth; ++k) {
    // Clamp each side's level so small sides bottom out at cells.
    int k1 = std::min(k, levels1);
    int k2 = std::min(k, levels2);
    parts.push_back({DyadicPartitionBlock(n1, k1),
                     DyadicPartitionBlock(n2, k2)});
  }
  return std::make_unique<ImplicitStackedStrategy>(std::move(parts),
                                                   "quadtree");
}

}  // namespace hdmm
