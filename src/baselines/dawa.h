// DAWA [25]: the data- and workload-aware mechanism for 1D (and by
// extension 2D) workloads. Stage 1 spends part of the budget finding a
// partition of the domain into approximately-uniform buckets from noisy
// counts; stage 2 measures bucket totals with a workload-aware strategy
// (GreedyH in the original; optionally HDMM's OPT_0, the hybrid studied in
// Appendix B.3) and expands bucket estimates uniformly.
#ifndef HDMM_BASELINES_DAWA_H_
#define HDMM_BASELINES_DAWA_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Which strategy stage 2 uses on the compressed domain.
enum class DawaStage2 {
  kGreedyH,  ///< The original DAWA second stage.
  kHdmm,     ///< HDMM's OPT_0 (the Appendix B.3 improvement).
};

/// Options for DAWA.
struct DawaOptions {
  double partition_budget_fraction = 0.25;  ///< epsilon_1 / epsilon.
  int max_buckets = 0;                      ///< 0 = unlimited.
  DawaStage2 stage2 = DawaStage2::kGreedyH;
  int opt0_p = 4;  ///< p for the kHdmm second stage.
};

/// The deviation-penalized partition (stage 1): minimizes
/// sum_buckets [L2 deviation of noisy counts + 1/eps2 per bucket] with an
/// O(n^2) dynamic program. Returns bucket boundaries (ascending, the last
/// entry is n).
std::vector<int64_t> DawaPartition(const Vector& noisy_counts,
                                   double bucket_penalty);

/// One full DAWA run on a 1D workload: returns estimated workload answers.
/// `workload` is the explicit m x n query matrix.
Vector RunDawa(const Matrix& workload, const Vector& x, double epsilon,
               const DawaOptions& options, Rng* rng);

}  // namespace hdmm

#endif  // HDMM_BASELINES_DAWA_H_
