// QuadTree [8]: the 2D spatial-decomposition strategy. Level k of a
// quadtree over an n1 x n2 grid is exactly the Kronecker product of the 1D
// dyadic partitions at level k, so the full strategy is an implicit stack of
// Kronecker products — which is what lets us evaluate it at 256 x 256 and
// beyond without densifying.
#ifndef HDMM_BASELINES_QUADTREE_H_
#define HDMM_BASELINES_QUADTREE_H_

#include <memory>

#include "baselines/baselines.h"

namespace hdmm {

/// Builds the QuadTree strategy over an n1 x n2 grid (both powers of two).
/// Levels run from the root (whole grid) down to individual cells.
std::unique_ptr<Strategy> MakeQuadtreeStrategy(int64_t n1, int64_t n2);

}  // namespace hdmm

#endif  // HDMM_BASELINES_QUADTREE_H_
