// GreedyH [25]: the weighted binary hierarchy used as DAWA's second stage.
// Each level of the hierarchy carries a scale factor; the scales are
// greedily optimized for the input workload (this is what distinguishes it
// from HB, which ignores the workload).
#ifndef HDMM_BASELINES_GREEDY_H_H_
#define HDMM_BASELINES_GREEDY_H_H_

#include <memory>

#include "core/strategy.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Options for the level-weight search.
struct GreedyHOptions {
  int sweeps = 3;              ///< Coordinate-descent sweeps over levels.
  int candidates_per_level = 9;  ///< Multiplicative grid per evaluation.
};

/// Result: the weighted hierarchy and its expected error.
struct GreedyHResult {
  Matrix strategy;       ///< Stacked weighted levels ((~2n) x n).
  double squared_error;  ///< sens^2 * ||W A^+||_F^2 against the input Gram.
  std::vector<double> level_weights;
};

/// Optimizes per-level weights of a binary hierarchy over a 1D domain of
/// size n against the workload with Gram matrix `workload_gram` (n x n).
GreedyHResult GreedyH(const Matrix& workload_gram,
                      const GreedyHOptions& options = GreedyHOptions());

/// Wraps the result as a Strategy.
std::unique_ptr<Strategy> MakeGreedyHStrategy(const Matrix& workload_gram,
                                              const GreedyHOptions& options =
                                                  GreedyHOptions());

}  // namespace hdmm

#endif  // HDMM_BASELINES_GREEDY_H_H_
