#include "baselines/lrm.h"

#include <cmath>

#include "common/check.h"
#include "linalg/eigen_sym.h"
#include "linalg/pinv.h"
#include "linalg/qr.h"

namespace hdmm {
namespace {

// Spectral factorization W^T W = V diag(lambda) V^T gives the SVD-bound
// strategy L = diag(sqrt(lambda)) V^T; with B's rows expressed in the same
// basis, ||B||_F^2 = sum lambda_i^{1/2} ... here simply B = W V
// diag(lambda^{-1/2}).
struct Spectral {
  Matrix l;
  Vector lambda;
  Matrix v;
  int64_t rank;
};

Spectral SpectralStrategy(const Matrix& gram, const LrmOptions& options) {
  SymmetricEigen eig = EigenSym(gram);
  const int64_t n = gram.rows();
  double max_ev = 0.0;
  for (double ev : eig.eigenvalues) max_ev = std::max(max_ev, ev);
  // Retained components (descending order of eigenvalue).
  std::vector<int64_t> keep;
  for (int64_t i = n - 1; i >= 0; --i) {
    double ev = eig.eigenvalues[static_cast<size_t>(i)];
    if (ev > options.spectral_tol * std::max(max_ev, 1e-300)) {
      keep.push_back(i);
      if (options.rank > 0 &&
          static_cast<int64_t>(keep.size()) >= options.rank)
        break;
    }
  }
  HDMM_CHECK(!keep.empty());
  Spectral out;
  out.rank = static_cast<int64_t>(keep.size());
  out.l = Matrix(out.rank, n);
  out.lambda.resize(static_cast<size_t>(out.rank));
  out.v = Matrix(n, out.rank);
  std::vector<double> scales(static_cast<size_t>(out.rank));
  for (int64_t r = 0; r < out.rank; ++r) {
    double ev = eig.eigenvalues[static_cast<size_t>(keep[static_cast<size_t>(r)])];
    out.lambda[static_cast<size_t>(r)] = ev;
    // W = U Sigma V^T with Sigma = diag(sqrt(lambda)); the SVD-bound
    // strategy is L = Sigma^{1/2} V^T, i.e. rows scaled by lambda^{1/4}.
    scales[static_cast<size_t>(r)] = std::pow(ev, 0.25);
  }
  // Row-major fills: walk the eigenvector matrix by rows so both the reads
  // and the writes stream contiguously.
  for (int64_t j = 0; j < n; ++j) {
    const double* erow = eig.eigenvectors.Row(j);
    double* vrow = out.v.Row(j);
    for (int64_t r = 0; r < out.rank; ++r)
      vrow[r] = erow[keep[static_cast<size_t>(r)]];
  }
  for (int64_t r = 0; r < out.rank; ++r) {
    const int64_t src = keep[static_cast<size_t>(r)];
    const double s = scales[static_cast<size_t>(r)];
    double* lrow = out.l.Row(r);
    for (int64_t j = 0; j < n; ++j) lrow[j] = s * eig.eigenvectors(j, src);
  }
  return out;
}

}  // namespace

LrmResult LowRankMechanismFromGram(const Matrix& workload_gram,
                                   const LrmOptions& options) {
  Spectral spec = SpectralStrategy(workload_gram, options);
  // With W = U Sigma V^T: B = U Sigma^{1/2}, so ||B||_F^2 = sum sqrt(lambda).
  double b_frob = 0.0;
  for (double ev : spec.lambda) b_frob += std::sqrt(ev);
  double sens = spec.l.MaxAbsColSum();

  LrmResult out;
  out.l = spec.l;
  // Representative B in the eigenbasis: diag(lambda^{1/4}) rows.
  out.b = Matrix(spec.rank, spec.rank);
  for (int64_t i = 0; i < spec.rank; ++i)
    out.b(i, i) = std::pow(spec.lambda[static_cast<size_t>(i)], 0.25);
  out.squared_error = sens * sens * b_frob;
  return out;
}

LrmResult LowRankMechanism(const Matrix& w, const LrmOptions& options) {
  Matrix gram = Gram(w);
  Spectral spec = SpectralStrategy(gram, options);
  Matrix l = spec.l;
  // B = W L^+ as the least-squares problem min_B ||L^T B^T - W^T||_F through
  // the rank-revealing QR: the ALS iterates routinely turn rank-deficient
  // (a workload whose rank sits below the requested factor rank collapses
  // directions of L to zero), and the pivoted solve truncates those
  // directions instead of amplifying roundoff through a pseudo-inverse of a
  // squared Gram.
  Matrix b =
      PivotedQrLeastSquares(l.Transposed(), w.Transposed()).Transposed();

  // Alternating refinement: B = W L^+, L = B^+ W, rebalanced each round so
  // the L1 sensitivity stays on L's side of the product.
  for (int it = 0; it < options.als_iterations; ++it) {
    l = PivotedQrLeastSquares(b, w);
    double sens = l.MaxAbsColSum();
    if (sens <= 0.0) break;
    l.ScaleInPlace(1.0 / sens);
    b = PivotedQrLeastSquares(l.Transposed(), w.Transposed()).Transposed();
  }

  LrmResult out;
  out.b = b;
  out.l = l;
  double sens = l.MaxAbsColSum();
  out.squared_error = sens * sens * b.FrobeniusNormSquared();
  return out;
}

}  // namespace hdmm
