// MM — the (original) Matrix Mechanism [29]. The paper's formulation is a
// rank-constrained SDP with O(m^4 (m^4 + N^4)) complexity, "infeasible to
// execute on any non-trivial input workload" (Section 5.1); it is starred
// out of every experimental table.
//
// Substitution note (see DESIGN.md): we implement MM as local gradient
// optimization over an unrestricted square strategy using the exact
// gradient of Equation 4, with column re-normalization after every step.
// This searches the same general strategy space and exhibits the same
// O(N^3)-per-iteration wall that motivates HDMM.
#ifndef HDMM_BASELINES_MATRIX_MECHANISM_H_
#define HDMM_BASELINES_MATRIX_MECHANISM_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Options for the general-space optimizer.
struct MatrixMechanismOptions {
  int max_iterations = 60;
  double step = 0.05;        ///< Initial step; halved on failure.
  int64_t max_domain = 2048;  ///< Dies beyond this (the infeasibility wall).
};

/// Result of the MM search.
struct MatrixMechanismResult {
  Matrix a;              ///< n x n strategy with unit column norms.
  double squared_error;  ///< ||A||_1^2 ||W A^+||_F^2.
  int iterations = 0;
};

/// Optimizes a general strategy for the workload Gram matrix (n x n).
MatrixMechanismResult MatrixMechanism(const Matrix& workload_gram,
                                      const MatrixMechanismOptions& options,
                                      Rng* rng);

}  // namespace hdmm

#endif  // HDMM_BASELINES_MATRIX_MECHANISM_H_
