#include "baselines/hb.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {

int SelectHbBranching(int64_t n, int64_t exact_threshold) {
  if (n <= 2) return 2;
  double best_score = std::numeric_limits<double>::infinity();
  int best_b = 2;
  // The all-range Gram scores every candidate branching factor; build it
  // once, not once per candidate.
  Matrix range_gram;
  if (n <= exact_threshold) range_gram = AllRangeGram(n);
  for (int b = 2; b <= 16; ++b) {
    double score;
    if (n <= exact_threshold) {
      Matrix h = HierarchicalBlock(n, b);
      double sens = h.MaxAbsColSum();
      score = sens * sens * TracePinvGram(Gram(h), range_gram);
    } else {
      // Qardaji et al.'s analytic criterion: height h = ceil(log_b n); the
      // average range-query variance scales like (b - 1) h^3.
      double height = std::ceil(std::log(static_cast<double>(n)) /
                                std::log(static_cast<double>(b)));
      score = (b - 1) * height * height * height;
    }
    if (score < best_score) {
      best_score = score;
      best_b = b;
    }
  }
  return best_b;
}

std::unique_ptr<Strategy> MakeHbStrategy(const Domain& domain) {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    const int64_t n = domain.AttributeSize(i);
    if (n == 1) {
      factors.push_back(TotalBlock(1));
      continue;
    }
    factors.push_back(HierarchicalBlock(n, SelectHbBranching(n)));
  }
  return std::make_unique<KronStrategy>(std::move(factors), "hb");
}

}  // namespace hdmm
