// Baseline mechanisms (Section 8.1): the two universal baselines Identity
// and the Laplace Mechanism (LM), plus the implicit stacked strategy type
// shared by structured baselines (QuadTree, multi-level hierarchies).
#ifndef HDMM_BASELINES_BASELINES_H_
#define HDMM_BASELINES_BASELINES_H_

#include <memory>

#include "core/strategy.h"
#include "workload/workload.h"

namespace hdmm {

/// The Identity baseline: measure every cell of the data vector, answer the
/// workload from the noisy histogram.
std::unique_ptr<Strategy> MakeIdentityBaseline(const Domain& domain);

/// Expected squared error (the paper's sens^2 ||W A^+||_F^2 convention) of
/// the Laplace Mechanism: noise scaled to the workload sensitivity added
/// directly to every workload answer, so
/// Err = ||W||_1^2 * sum_j w_j^2 m_j.
double LaplaceMechanismSquaredError(const UnionWorkload& w);

/// One run of LM: noisy workload answers under epsilon-DP.
Vector RunLaplaceMechanism(const UnionWorkload& w, const Vector& x,
                           double epsilon, Rng* rng);

/// A strategy held as an implicit union (vertical stack) of Kronecker
/// products measured *jointly* (unlike UnionKronStrategy's per-group budget
/// convention): reconstruction is global least squares via LSMR, and the
/// expected error is evaluated exactly on small domains (dense) or via the
/// Hutchinson estimator on large ones. Used by QuadTree and other structured
/// baselines that stack partition levels.
class ImplicitStackedStrategy : public Strategy {
 public:
  ImplicitStackedStrategy(std::vector<std::vector<Matrix>> parts,
                          std::string name,
                          int64_t dense_threshold = 1024,
                          uint64_t estimator_seed = 7,
                          int estimator_samples = 8);

  std::string Name() const override { return name_; }
  int64_t DomainSize() const override;
  int64_t NumQueries() const override;
  double Sensitivity() const override;
  /// Same stacked-column upper bound as UnionKronStrategy: sqrt of the sum
  /// of squared part L2 sensitivities.
  double L2Sensitivity() const override;
  Vector Apply(const Vector& x) const override;
  Vector Reconstruct(const Vector& y) const override;
  double SquaredError(const UnionWorkload& w) const override;

 private:
  std::vector<std::vector<Matrix>> parts_;
  std::string name_;
  int64_t dense_threshold_;
  uint64_t estimator_seed_;
  int estimator_samples_;
  std::shared_ptr<LinearOperator> op_;
};

}  // namespace hdmm

#endif  // HDMM_BASELINES_BASELINES_H_
