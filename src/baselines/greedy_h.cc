#include "baselines/greedy_h.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// Rows of the binary hierarchy grouped by level (level 0 = leaves).
std::vector<Matrix> HierarchyLevels(int64_t n) {
  std::vector<Matrix> levels;
  std::vector<std::pair<int64_t, int64_t>> cur;  // [lo, hi)
  for (int64_t i = 0; i < n; ++i) cur.push_back({i, i + 1});
  while (true) {
    Matrix level(static_cast<int64_t>(cur.size()), n);
    for (size_t r = 0; r < cur.size(); ++r)
      for (int64_t j = cur[r].first; j < cur[r].second; ++j)
        level(static_cast<int64_t>(r), j) = 1.0;
    levels.push_back(level);
    if (cur.size() == 1) break;
    std::vector<std::pair<int64_t, int64_t>> next;
    for (size_t i = 0; i < cur.size(); i += 2) {
      size_t hi = std::min(cur.size(), i + 2);
      next.push_back({cur[i].first, cur[hi - 1].second});
    }
    cur = next;
  }
  return levels;
}

Matrix AssembleWeighted(const std::vector<Matrix>& levels,
                        const std::vector<double>& weights) {
  std::vector<Matrix> scaled;
  scaled.reserve(levels.size());
  for (size_t l = 0; l < levels.size(); ++l) {
    if (weights[l] <= 0.0) continue;
    scaled.push_back(MatScale(levels[l], weights[l]));
  }
  HDMM_CHECK(!scaled.empty());
  return VStack(scaled);
}

// Evaluates the weighted-hierarchy error from per-level Grams cached by the
// caller: the stacked strategy never needs to be assembled because
// Gram(VStack_l w_l H_l) = sum_l w_l^2 Gram(H_l), and with nonnegative level
// entries and weights the stacked column sums are sum_l w_l colsum_l.
double Evaluate(const std::vector<Matrix>& level_grams,
                const std::vector<Vector>& level_colsums,
                const std::vector<double>& weights, const Matrix& gram) {
  const int64_t n = gram.rows();
  Matrix ga = Matrix::Zeros(n, n);
  Vector colsum(static_cast<size_t>(n), 0.0);
  for (size_t l = 0; l < level_grams.size(); ++l) {
    if (weights[l] <= 0.0) continue;
    ga.AddInPlace(level_grams[l], weights[l] * weights[l]);
    for (int64_t j = 0; j < n; ++j)
      colsum[static_cast<size_t>(j)] +=
          weights[l] * level_colsums[l][static_cast<size_t>(j)];
  }
  double sens = 0.0;
  for (double v : colsum) sens = std::max(sens, v);
  double tr = TracePinvGram(ga, gram);
  if (!std::isfinite(tr)) return std::numeric_limits<double>::infinity();
  return sens * sens * tr;
}

}  // namespace

GreedyHResult GreedyH(const Matrix& workload_gram,
                      const GreedyHOptions& options) {
  const int64_t n = workload_gram.rows();
  HDMM_CHECK(workload_gram.cols() == n);
  std::vector<Matrix> levels = HierarchyLevels(n);
  std::vector<double> weights(levels.size(), 1.0);

  // Per-level Grams and column sums are invariant across the whole greedy
  // search; every candidate evaluation reuses them.
  std::vector<Matrix> level_grams;
  std::vector<Vector> level_colsums;
  level_grams.reserve(levels.size());
  level_colsums.reserve(levels.size());
  for (const Matrix& level : levels) {
    level_grams.push_back(Gram(level));
    level_colsums.push_back(level.AbsColSums());
  }

  double best = Evaluate(level_grams, level_colsums, weights, workload_gram);
  // Greedy coordinate descent over level scales on a multiplicative grid.
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    for (size_t l = 0; l < levels.size(); ++l) {
      double best_w = weights[l];
      for (int c = 0; c < options.candidates_per_level; ++c) {
        double factor = std::pow(2.0, c - options.candidates_per_level / 2);
        std::vector<double> trial = weights;
        trial[l] = weights[l] * factor;
        double err = Evaluate(level_grams, level_colsums, trial, workload_gram);
        if (err < best) {
          best = err;
          best_w = trial[l];
        }
      }
      weights[l] = best_w;
    }
  }

  GreedyHResult out;
  out.strategy = AssembleWeighted(levels, weights);
  out.squared_error = best;
  out.level_weights = std::move(weights);
  return out;
}

std::unique_ptr<Strategy> MakeGreedyHStrategy(const Matrix& workload_gram,
                                              const GreedyHOptions& options) {
  GreedyHResult res = GreedyH(workload_gram, options);
  return std::make_unique<ExplicitStrategy>(std::move(res.strategy),
                                            "greedy-h");
}

}  // namespace hdmm
