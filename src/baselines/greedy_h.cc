#include "baselines/greedy_h.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// Rows of the binary hierarchy grouped by level (level 0 = leaves).
std::vector<Matrix> HierarchyLevels(int64_t n) {
  std::vector<Matrix> levels;
  std::vector<std::pair<int64_t, int64_t>> cur;  // [lo, hi)
  for (int64_t i = 0; i < n; ++i) cur.push_back({i, i + 1});
  while (true) {
    Matrix level(static_cast<int64_t>(cur.size()), n);
    for (size_t r = 0; r < cur.size(); ++r)
      for (int64_t j = cur[r].first; j < cur[r].second; ++j)
        level(static_cast<int64_t>(r), j) = 1.0;
    levels.push_back(level);
    if (cur.size() == 1) break;
    std::vector<std::pair<int64_t, int64_t>> next;
    for (size_t i = 0; i < cur.size(); i += 2) {
      size_t hi = std::min(cur.size(), i + 2);
      next.push_back({cur[i].first, cur[hi - 1].second});
    }
    cur = next;
  }
  return levels;
}

Matrix AssembleWeighted(const std::vector<Matrix>& levels,
                        const std::vector<double>& weights) {
  std::vector<Matrix> scaled;
  scaled.reserve(levels.size());
  for (size_t l = 0; l < levels.size(); ++l) {
    if (weights[l] <= 0.0) continue;
    scaled.push_back(MatScale(levels[l], weights[l]));
  }
  HDMM_CHECK(!scaled.empty());
  return VStack(scaled);
}

double Evaluate(const std::vector<Matrix>& levels,
                const std::vector<double>& weights, const Matrix& gram) {
  Matrix a = AssembleWeighted(levels, weights);
  double sens = a.MaxAbsColSum();
  double tr = TracePinvGram(Gram(a), gram);
  if (!std::isfinite(tr)) return std::numeric_limits<double>::infinity();
  return sens * sens * tr;
}

}  // namespace

GreedyHResult GreedyH(const Matrix& workload_gram,
                      const GreedyHOptions& options) {
  const int64_t n = workload_gram.rows();
  HDMM_CHECK(workload_gram.cols() == n);
  std::vector<Matrix> levels = HierarchyLevels(n);
  std::vector<double> weights(levels.size(), 1.0);

  double best = Evaluate(levels, weights, workload_gram);
  // Greedy coordinate descent over level scales on a multiplicative grid.
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    for (size_t l = 0; l < levels.size(); ++l) {
      double best_w = weights[l];
      for (int c = 0; c < options.candidates_per_level; ++c) {
        double factor = std::pow(2.0, c - options.candidates_per_level / 2);
        std::vector<double> trial = weights;
        trial[l] = weights[l] * factor;
        double err = Evaluate(levels, trial, workload_gram);
        if (err < best) {
          best = err;
          best_w = trial[l];
        }
      }
      weights[l] = best_w;
    }
  }

  GreedyHResult out;
  out.strategy = AssembleWeighted(levels, weights);
  out.squared_error = best;
  out.level_weights = std::move(weights);
  return out;
}

std::unique_ptr<Strategy> MakeGreedyHStrategy(const Matrix& workload_gram,
                                              const GreedyHOptions& options) {
  GreedyHResult res = GreedyH(workload_gram, options);
  return std::make_unique<ExplicitStrategy>(std::move(res.strategy),
                                            "greedy-h");
}

}  // namespace hdmm
