#include "baselines/matrix_mechanism.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "optimize/lbfgsb.h"

namespace hdmm {
namespace {

// Objective over the full (non-negative) strategy space: B is n x n,
// A = B D with D = diag(1 / colsum(B)), so ||A||_1 = 1 by construction and
//   C(B) = tr[(A^T A)^{-1} G],
// with the exact gradient derived exactly as for p-Identity strategies but
// without the identity block. Every evaluation performs dense O(N^3)
// solves — the scaling wall that makes MM infeasible beyond N ~ 10^3
// (Section 5.1).
class FullSpaceObjective {
 public:
  explicit FullSpaceObjective(const Matrix& gram) : gram_(gram) {}

  double Eval(const Vector& b_flat, Vector* grad) const {
    const int64_t n = gram_.rows();
    Matrix b(n, n, b_flat);
    // Column sums s_j; all must be positive for A to be defined.
    Vector s(static_cast<size_t>(n), 0.0);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j) s[static_cast<size_t>(j)] += b(i, j);
    for (double v : s) {
      if (v < 1e-9) {
        if (grad != nullptr) grad->assign(b_flat.size(), 0.0);
        return std::numeric_limits<double>::infinity();
      }
    }
    Vector d(s.size());
    for (size_t j = 0; j < s.size(); ++j) d[j] = 1.0 / s[j];

    // X = D (B^T B) D.
    Matrix btb = Gram(b);
    Matrix x(n, n);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j)
        x(i, j) = btb(i, j) * d[static_cast<size_t>(i)] * d[static_cast<size_t>(j)];
    Matrix l;
    if (!CholeskyFactor(x, &l)) {
      if (grad != nullptr) grad->assign(b_flat.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }
    Matrix xinv_g;
    CholeskySolveMatrixInto(l, gram_, &xinv_g);
    double obj = xinv_g.Trace();
    if (!(obj > 0.0) || !std::isfinite(obj)) {
      if (grad != nullptr) grad->assign(b_flat.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }
    if (grad == nullptr) return obj;

    // Y = X^{-1} G X^{-1}.
    Matrix y;
    CholeskySolveMatrixInto(l, xinv_g.Transposed(), &y);
    // Gradient: dC/dB = -2 (B D) Y D + 2 * 1 (r .* d)^T with Z = D Y D and
    // r_j = sum_i B_ij (B Z)_ij.
    Matrix bd = b;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j) bd(i, j) *= d[static_cast<size_t>(j)];
    Matrix bdy = MatMul(bd, y);
    Matrix z = y;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j)
        z(i, j) *= d[static_cast<size_t>(i)] * d[static_cast<size_t>(j)];
    Matrix bz = MatMul(b, z);
    Vector r(static_cast<size_t>(n), 0.0);
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) acc += b(i, j) * bz(i, j);
      r[static_cast<size_t>(j)] = acc;
    }
    grad->assign(b_flat.size(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        (*grad)[static_cast<size_t>(i * n + j)] =
            -2.0 * bdy(i, j) * d[static_cast<size_t>(j)] +
            2.0 * r[static_cast<size_t>(j)] * d[static_cast<size_t>(j)];
      }
    }
    return obj;
  }

 private:
  const Matrix& gram_;
};

}  // namespace

MatrixMechanismResult MatrixMechanism(const Matrix& workload_gram,
                                      const MatrixMechanismOptions& options,
                                      Rng* rng) {
  const int64_t n = workload_gram.rows();
  HDMM_CHECK_MSG(n <= options.max_domain,
                 "MatrixMechanism: domain beyond the feasibility wall");

  FullSpaceObjective objective(workload_gram);
  ObjectiveFn fn = [&objective](const Vector& x, Vector* grad) {
    return objective.Eval(x, grad);
  };

  // Start from a dense random matrix plus identity: random enough to escape
  // the identity basin (a strict local minimum of the normalized objective),
  // identity-shifted to guarantee full rank.
  Vector b0(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    b0[static_cast<size_t>(i * n + i)] = 1.0;
    for (int64_t j = 0; j < n; ++j)
      b0[static_cast<size_t>(i * n + j)] += rng->Uniform();
  }

  LbfgsbOptions lbfgs;
  lbfgs.max_iterations = options.max_iterations;
  LbfgsbResult res = MinimizeNonNegative(fn, std::move(b0), lbfgs);

  MatrixMechanismResult out;
  Matrix b(n, n, res.x);
  // Normalize to unit column sums (the objective is invariant).
  Vector s(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) s[static_cast<size_t>(j)] += b(i, j);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      if (s[static_cast<size_t>(j)] > 0.0) b(i, j) /= s[static_cast<size_t>(j)];
  out.a = std::move(b);
  out.squared_error = res.f;  // ||A||_1 = 1.
  out.iterations = res.iterations;
  return out;
}

}  // namespace hdmm
