#include "baselines/datacube.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/kron.h"
#include "linalg/matrix.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

int64_t MarginalCells(const Domain& domain, uint32_t mask) {
  int64_t cells = 1;
  for (int i = 0; i < domain.NumAttributes(); ++i)
    if ((mask >> i) & 1u) cells *= domain.AttributeSize(i);
  return cells;
}

// Cost of answering workload marginal S from measured T (T must cover S):
// |cells(S)| * prod_{i in T\S} n_i, before the k^2 budget factor.
double AnswerCost(const Domain& domain, uint32_t s, uint32_t t) {
  double cost = static_cast<double>(MarginalCells(domain, s));
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    if (((t >> i) & 1u) && !((s >> i) & 1u))
      cost *= static_cast<double>(domain.AttributeSize(i));
  }
  return cost;
}

// Total error of a measured set against the workload; infinity if some
// workload marginal has no measured superset.
double TotalError(const Domain& domain,
                  const std::vector<uint32_t>& workload_masks,
                  const std::vector<uint32_t>& measured) {
  const double k = static_cast<double>(measured.size());
  double total = 0.0;
  for (uint32_t s : workload_masks) {
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t t : measured) {
      if ((s & t) == s) best = std::min(best, AnswerCost(domain, s, t));
    }
    if (!std::isfinite(best)) return best;
    total += best;
  }
  return k * k * total;
}

}  // namespace

DataCubeResult DataCubeSelect(const Domain& domain,
                              const std::vector<uint32_t>& workload_masks) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(d <= 20);
  const uint32_t full = (uint32_t{1} << d) - 1;

  // Two greedy runs from different seeds sets; keep the better.
  std::vector<std::vector<uint32_t>> inits = {{full}, workload_masks};
  DataCubeResult best;
  best.squared_error = std::numeric_limits<double>::infinity();

  for (auto measured : inits) {
    // Deduplicate the initial set.
    std::sort(measured.begin(), measured.end());
    measured.erase(std::unique(measured.begin(), measured.end()),
                   measured.end());
    double err = TotalError(domain, workload_masks, measured);
    if (!std::isfinite(err)) continue;

    bool improved = true;
    while (improved) {
      improved = false;
      // Try adding each candidate marginal.
      double best_err = err;
      int best_action = -1;  // >= 0: add mask; < -1: remove index ~action.
      for (uint32_t cand = 1; cand <= full; ++cand) {
        if (std::find(measured.begin(), measured.end(), cand) !=
            measured.end())
          continue;
        measured.push_back(cand);
        double e = TotalError(domain, workload_masks, measured);
        measured.pop_back();
        if (e < best_err) {
          best_err = e;
          best_action = static_cast<int>(cand);
        }
      }
      // Try removing each measured marginal.
      for (size_t r = 0; r < measured.size(); ++r) {
        std::vector<uint32_t> trial = measured;
        trial.erase(trial.begin() + static_cast<long>(r));
        if (trial.empty()) continue;
        double e = TotalError(domain, workload_masks, trial);
        if (e < best_err) {
          best_err = e;
          best_action = -2 - static_cast<int>(r);
        }
      }
      if (best_action >= 0) {
        measured.push_back(static_cast<uint32_t>(best_action));
        err = best_err;
        improved = true;
      } else if (best_action <= -2) {
        measured.erase(measured.begin() + (-2 - best_action));
        err = best_err;
        improved = true;
      }
    }
    if (err < best.squared_error) {
      best.squared_error = err;
      best.measured = measured;
    }
  }
  HDMM_CHECK_MSG(std::isfinite(best.squared_error),
                 "DataCube: workload unsupported by any init");
  return best;
}

Vector RunDataCube(const Domain& domain,
                   const std::vector<uint32_t>& workload_masks,
                   const DataCubeResult& selection, const Vector& x,
                   double epsilon, Rng* rng) {
  const double k = static_cast<double>(selection.measured.size());
  const double scale = k / epsilon;  // Even budget split, sensitivity 1 each.

  // Measure each selected marginal.
  std::vector<Vector> noisy(selection.measured.size());
  for (size_t m = 0; m < selection.measured.size(); ++m) {
    ProductWorkload marg = MarginalProduct(domain, selection.measured[m]);
    noisy[m] = KronMatVec(marg.factors, x);
    for (double& v : noisy[m]) v += rng->Laplace(scale);
  }

  // Answer each workload marginal from its cheapest measured superset by
  // aggregating the measured marginal's cells.
  Vector out;
  for (uint32_t s : workload_masks) {
    size_t best_idx = selection.measured.size();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t m = 0; m < selection.measured.size(); ++m) {
      uint32_t t = selection.measured[m];
      if ((s & t) == s) {
        double c = AnswerCost(domain, s, t);
        if (c < best_cost) {
          best_cost = c;
          best_idx = m;
        }
      }
    }
    HDMM_CHECK(best_idx < selection.measured.size());
    uint32_t t = selection.measured[best_idx];
    // Aggregate T's noisy cells down to S: apply the marginal-of-marginal
    // operator, which is the product over attributes in T of either Identity
    // (attribute in S) or Total (attribute in T \ S).
    std::vector<Matrix> agg;
    for (int i = 0; i < domain.NumAttributes(); ++i) {
      if (!((t >> i) & 1u)) continue;
      const int64_t n = domain.AttributeSize(i);
      agg.push_back(((s >> i) & 1u) ? IdentityBlock(n) : TotalBlock(n));
    }
    Vector answer = agg.empty() ? noisy[best_idx]
                                : KronMatVec(agg, noisy[best_idx]);
    out.insert(out.end(), answer.begin(), answer.end());
  }
  return out;
}

}  // namespace hdmm
