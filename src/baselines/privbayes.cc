#include "baselines/privbayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdmm {
namespace {

// Marginal count table over one attribute.
Vector Marginal1(const Domain& d, const Vector& x, int attr) {
  Vector out(static_cast<size_t>(d.AttributeSize(attr)), 0.0);
  for (int64_t cell = 0; cell < d.TotalSize(); ++cell) {
    if (x[static_cast<size_t>(cell)] == 0.0) continue;
    out[static_cast<size_t>(d.Unflatten(cell)[static_cast<size_t>(attr)])] +=
        x[static_cast<size_t>(cell)];
  }
  return out;
}

// Joint count table over two attributes, row-major (a, b).
Matrix Marginal2(const Domain& d, const Vector& x, int a, int b) {
  Matrix out(d.AttributeSize(a), d.AttributeSize(b));
  for (int64_t cell = 0; cell < d.TotalSize(); ++cell) {
    if (x[static_cast<size_t>(cell)] == 0.0) continue;
    std::vector<int64_t> coords = d.Unflatten(cell);
    out(coords[static_cast<size_t>(a)], coords[static_cast<size_t>(b)]) +=
        x[static_cast<size_t>(cell)];
  }
  return out;
}

// Empirical mutual information between attributes a and b.
double MutualInformation(const Domain& d, const Vector& x, int a, int b) {
  Matrix joint = Marginal2(d, x, a, b);
  double total = joint.Sum();
  if (total <= 0.0) return 0.0;
  Vector pa = joint.Transposed().ColSums();  // Row sums of joint.
  Vector pb = joint.ColSums();
  double mi = 0.0;
  for (int64_t i = 0; i < joint.rows(); ++i) {
    for (int64_t j = 0; j < joint.cols(); ++j) {
      double pij = joint(i, j) / total;
      if (pij <= 0.0) continue;
      double pi = pa[static_cast<size_t>(i)] / total;
      double pj = pb[static_cast<size_t>(j)] / total;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  return mi;
}

}  // namespace

Vector RunPrivBayesSynthetic(const Domain& domain, const Vector& x,
                             double epsilon, const PrivBayesOptions& options,
                             Rng* rng) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(static_cast<int64_t>(x.size()) == domain.TotalSize());
  const double eps1 = options.structure_budget_fraction * epsilon;
  const double eps2 = epsilon - eps1;

  // --- Structure: greedy tree with noisy MI scores (exponential mechanism
  // implemented via Gumbel perturbation).
  std::vector<int> order(static_cast<size_t>(d));
  std::vector<int> parent(static_cast<size_t>(d), -1);
  std::vector<bool> placed(static_cast<size_t>(d), false);
  order[0] = 0;
  placed[0] = true;
  const double mi_sensitivity = std::log(Sum(x) + 2.0);  // Loose bound.
  for (int step = 1; step < d; ++step) {
    double best_score = -std::numeric_limits<double>::infinity();
    int best_attr = -1, best_parent = -1;
    for (int a = 0; a < d; ++a) {
      if (placed[static_cast<size_t>(a)]) continue;
      for (int p = 0; p < d; ++p) {
        if (!placed[static_cast<size_t>(p)]) continue;
        double mi = MutualInformation(domain, x, a, p);
        // Gumbel trick = exponential mechanism over (attr, parent) pairs.
        double gumbel =
            -std::log(-std::log(std::max(1e-12, rng->Uniform())));
        double score = mi * eps1 * static_cast<double>(d) /
                           (2.0 * std::max(1e-9, mi_sensitivity)) +
                       gumbel;
        if (score > best_score) {
          best_score = score;
          best_attr = a;
          best_parent = p;
        }
      }
    }
    order[static_cast<size_t>(step)] = best_attr;
    parent[static_cast<size_t>(best_attr)] = best_parent;
    placed[static_cast<size_t>(best_attr)] = true;
  }

  // --- Noisy conditional distributions. Each attribute's (joint with
  // parent) counts get Laplace noise at scale d/eps2 (budget split).
  const double noise = static_cast<double>(d) / eps2;
  // Root distribution.
  int root = order[0];
  Vector root_dist = Marginal1(domain, x, root);
  for (double& v : root_dist) v = std::max(0.0, v + rng->Laplace(noise));
  double root_total = Sum(root_dist);
  if (root_total <= 0.0) root_dist.assign(root_dist.size(), 1.0);

  // Conditionals child | parent as noisy joint tables.
  std::vector<Matrix> joint(static_cast<size_t>(d));
  for (int step = 1; step < d; ++step) {
    int a = order[static_cast<size_t>(step)];
    int p = parent[static_cast<size_t>(a)];
    Matrix j = Marginal2(domain, x, a, p);
    for (int64_t i = 0; i < j.rows(); ++i)
      for (int64_t k = 0; k < j.cols(); ++k)
        j(i, k) = std::max(0.0, j(i, k) + rng->Laplace(noise));
    joint[static_cast<size_t>(a)] = std::move(j);
  }

  // --- Sampling.
  int64_t records = options.synthetic_records > 0
                        ? options.synthetic_records
                        : static_cast<int64_t>(std::llround(Sum(x)));
  Vector synthetic(x.size(), 0.0);
  auto sample_from = [&](const Vector& weights) -> int64_t {
    double total = Sum(weights);
    if (total <= 0.0)
      return rng->UniformInt(0, static_cast<int64_t>(weights.size()) - 1);
    double u = rng->Uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u <= acc) return static_cast<int64_t>(i);
    }
    return static_cast<int64_t>(weights.size()) - 1;
  };
  std::vector<int64_t> coords(static_cast<size_t>(d));
  for (int64_t r = 0; r < records; ++r) {
    coords[static_cast<size_t>(root)] = sample_from(root_dist);
    for (int step = 1; step < d; ++step) {
      int a = order[static_cast<size_t>(step)];
      int p = parent[static_cast<size_t>(a)];
      const Matrix& j = joint[static_cast<size_t>(a)];
      Vector conditional(static_cast<size_t>(j.rows()));
      for (int64_t i = 0; i < j.rows(); ++i)
        conditional[static_cast<size_t>(i)] =
            j(i, coords[static_cast<size_t>(p)]);
      coords[static_cast<size_t>(a)] = sample_from(conditional);
    }
    synthetic[static_cast<size_t>(domain.Flatten(coords))] += 1.0;
  }
  return synthetic;
}

Vector RunPrivBayes(const UnionWorkload& w, const Vector& x, double epsilon,
                    const PrivBayesOptions& options, Rng* rng) {
  Vector synthetic =
      RunPrivBayesSynthetic(w.domain(), x, epsilon, options, rng);
  auto op = w.ToOperator();
  return op->Apply(synthetic);
}

}  // namespace hdmm
