// LRM — the Low-Rank Mechanism [49]. Factors the workload W ~ B L and
// measures the low-rank query set L; answers are reconstructed as B y.
//
// Substitution note (see DESIGN.md): the original solves an augmented
// Lagrangian program under an L1 sensitivity constraint. This implementation
// seeds with the spectral (SVD-bound) factorization obtained from the
// eigendecomposition of W^T W — the closed-form optimum of the Frobenius
// relaxation — and refines it with alternating least squares. It preserves
// LRM's two observable behaviors: error between LM and HDMM, and O(N^3)
// scaling that walls out near N ~ 10^4.
#ifndef HDMM_BASELINES_LRM_H_
#define HDMM_BASELINES_LRM_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Options for LRM.
struct LrmOptions {
  int64_t rank = 0;       ///< 0 = retain eigenvalues above spectral_tol.
  double spectral_tol = 1e-10;
  int als_iterations = 4;
};

/// Result: factorization and its expected error.
struct LrmResult {
  Matrix b;  ///< m x r reconstruction matrix.
  Matrix l;  ///< r x n strategy (the measured queries).
  /// ||L||_1^2 * ||B||_F^2 — the sens^2-scaled expected squared error.
  double squared_error = 0.0;
};

/// Runs LRM on an explicit workload Gram matrix (n x n) with `m` original
/// workload rows. Only the Gram is needed because the error depends on W
/// through its spectrum; B is returned in the eigenbasis.
LrmResult LowRankMechanismFromGram(const Matrix& workload_gram,
                                   const LrmOptions& options = LrmOptions());

/// Runs LRM on an explicit workload matrix (keeps B aligned with W's rows).
LrmResult LowRankMechanism(const Matrix& w,
                           const LrmOptions& options = LrmOptions());

}  // namespace hdmm

#endif  // HDMM_BASELINES_LRM_H_
