#include "optimize/lbfgsb.h"

#include <cmath>
#include <deque>

#include "common/check.h"

namespace hdmm {
namespace {

void ClampToBox(const Vector& lower, const Vector& upper, Vector* x) {
  for (size_t i = 0; i < x->size(); ++i) {
    if ((*x)[i] < lower[i]) (*x)[i] = lower[i];
    if ((*x)[i] > upper[i]) (*x)[i] = upper[i];
  }
}

// Infinity norm of the projected gradient: the first-order optimality
// measure for box-constrained problems.
double ProjectedGradientNorm(const Vector& x, const Vector& g,
                             const Vector& lower, const Vector& upper) {
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double step = x[i] - g[i];
    if (step < lower[i]) step = lower[i];
    if (step > upper[i]) step = upper[i];
    m = std::max(m, std::fabs(x[i] - step));
  }
  return m;
}

struct Correction {
  Vector s;
  Vector y;
  double rho;  // 1 / (y^T s)
};

// Two-loop recursion computing d = -H g restricted to free variables.
Vector LbfgsDirection(const std::deque<Correction>& hist, const Vector& g,
                      const std::vector<bool>& free) {
  Vector q(g.size());
  for (size_t i = 0; i < g.size(); ++i) q[i] = free[i] ? g[i] : 0.0;
  std::vector<double> alpha(hist.size(), 0.0);
  for (size_t k = hist.size(); k-- > 0;) {
    const Correction& c = hist[k];
    double a = 0.0;
    for (size_t i = 0; i < q.size(); ++i)
      if (free[i]) a += c.s[i] * q[i];
    a *= c.rho;
    alpha[k] = a;
    for (size_t i = 0; i < q.size(); ++i)
      if (free[i]) q[i] -= a * c.y[i];
  }
  double gamma = 1.0;
  if (!hist.empty()) {
    const Correction& last = hist.back();
    double yy = 0.0, sy = 0.0;
    for (size_t i = 0; i < q.size(); ++i) {
      if (!free[i]) continue;
      yy += last.y[i] * last.y[i];
      sy += last.s[i] * last.y[i];
    }
    if (yy > 0.0 && sy > 0.0) gamma = sy / yy;
  }
  for (double& v : q) v *= gamma;
  for (size_t k = 0; k < hist.size(); ++k) {
    const Correction& c = hist[k];
    double b = 0.0;
    for (size_t i = 0; i < q.size(); ++i)
      if (free[i]) b += c.y[i] * q[i];
    b *= c.rho;
    for (size_t i = 0; i < q.size(); ++i)
      if (free[i]) q[i] += (alpha[k] - b) * c.s[i];
  }
  for (double& v : q) v = -v;
  return q;
}

}  // namespace

LbfgsbResult MinimizeLbfgsb(const ObjectiveFn& f, Vector x0,
                            const Vector& lower, const Vector& upper,
                            const LbfgsbOptions& options) {
  const size_t n = x0.size();
  HDMM_CHECK(lower.size() == n && upper.size() == n);
  ClampToBox(lower, upper, &x0);

  LbfgsbResult result;
  result.x = std::move(x0);

  Vector g(n, 0.0);
  double fx = f(result.x, &g);
  ++result.function_evaluations;
  result.f = fx;

  std::deque<Correction> hist;
  std::vector<bool> free(n, true);
  Vector x_new(n), g_new(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (CancelRequested(options.cancel)) {
      result.stopped = true;
      break;
    }
    result.iterations = iter + 1;
    double pg = ProjectedGradientNorm(result.x, g, lower, upper);
    if (pg <= options.pg_tolerance) {
      result.converged = true;
      break;
    }

    // Active set: variables pinned at a bound with the gradient pushing
    // further out of the box are frozen for this iteration.
    constexpr double kActiveTol = 1e-12;
    for (size_t i = 0; i < n; ++i) {
      bool at_lower = result.x[i] <= lower[i] + kActiveTol && g[i] > 0.0;
      bool at_upper = result.x[i] >= upper[i] - kActiveTol && g[i] < 0.0;
      free[i] = !(at_lower || at_upper);
    }

    Vector d = LbfgsDirection(hist, g, free);
    // Fall back to steepest descent if d is not a descent direction.
    double gd = 0.0;
    for (size_t i = 0; i < n; ++i)
      if (free[i]) gd += g[i] * d[i];
    if (!(gd < 0.0)) {
      for (size_t i = 0; i < n; ++i) d[i] = free[i] ? -g[i] : 0.0;
      gd = 0.0;
      for (size_t i = 0; i < n; ++i)
        if (free[i]) gd += g[i] * d[i];
      if (!(gd < 0.0)) {
        result.converged = true;  // No descent available: KKT point.
        break;
      }
    }

    // Backtracking Armijo along the projected path.
    double step = 1.0;
    bool accepted = false;
    double f_new = fx;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      for (size_t i = 0; i < n; ++i) x_new[i] = result.x[i] + step * d[i];
      ClampToBox(lower, upper, &x_new);
      f_new = f(x_new, &g_new);
      ++result.function_evaluations;
      // Directional decrease measured against the realized (projected) step.
      double decrease = 0.0;
      for (size_t i = 0; i < n; ++i)
        decrease += g[i] * (x_new[i] - result.x[i]);
      if (std::isfinite(f_new) &&
          f_new <= fx + options.armijo_c1 * decrease) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      result.converged = true;  // Line search stalled near a minimum.
      break;
    }

    // Curvature update.
    Correction c;
    c.s.resize(n);
    c.y.resize(n);
    double sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
      c.s[i] = x_new[i] - result.x[i];
      c.y[i] = g_new[i] - g[i];
      sy += c.s[i] * c.y[i];
    }
    double ss = Norm2Squared(c.s), yy = Norm2Squared(c.y);
    if (sy > 1e-10 * std::sqrt(ss * yy) && sy > 0.0) {
      c.rho = 1.0 / sy;
      hist.push_back(std::move(c));
      if (static_cast<int>(hist.size()) > options.history) hist.pop_front();
    }

    double f_prev = fx;
    result.x = x_new;
    g = g_new;
    fx = f_new;
    result.f = fx;
    if (std::fabs(f_prev - fx) <=
        options.f_tolerance * std::max(1.0, std::fabs(f_prev))) {
      result.converged = true;
      break;
    }
  }
  result.f = fx;
  return result;
}

LbfgsbResult MinimizeNonNegative(const ObjectiveFn& f, Vector x0,
                                 const LbfgsbOptions& options) {
  const size_t n = x0.size();
  Vector lower(n, 0.0);
  Vector upper(n, std::numeric_limits<double>::infinity());
  return MinimizeLbfgsb(f, std::move(x0), lower, upper, options);
}

}  // namespace hdmm
