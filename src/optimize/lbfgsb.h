// Box-constrained limited-memory BFGS. The paper's implementation uses
// scipy.optimize's L-BFGS-B for every optimization routine (Section 8.1);
// this is the equivalent substrate, implemented from scratch: projected
// gradient active sets + two-loop recursion + Armijo backtracking along the
// projected path.
#ifndef HDMM_OPTIMIZE_LBFGSB_H_
#define HDMM_OPTIMIZE_LBFGSB_H_

#include <functional>
#include <limits>

#include "common/deadline.h"
#include "linalg/vector_ops.h"

namespace hdmm {

/// Objective callback: returns f(x) and writes the gradient into *grad
/// (same size as x).
using ObjectiveFn = std::function<double(const Vector& x, Vector* grad)>;

/// Options controlling the optimizer.
struct LbfgsbOptions {
  int max_iterations = 400;
  int history = 10;           ///< Number of (s, y) correction pairs kept.
  double pg_tolerance = 1e-6; ///< Stop when ||projected gradient||_inf small.
  double f_tolerance = 1e-10; ///< Stop on relative objective improvement.
  int max_line_search = 30;   ///< Backtracking steps per iteration.
  double armijo_c1 = 1e-4;
  /// Polled once per iteration; when signalled the run stops early with
  /// `stopped = true` and the best iterate so far. Not owned; may be null.
  /// Excluded from plan fingerprints (they hash the numeric fields only).
  const CancelToken* cancel = nullptr;
};

/// Result of a minimization run.
struct LbfgsbResult {
  Vector x;
  double f = std::numeric_limits<double>::infinity();
  int iterations = 0;
  int function_evaluations = 0;
  bool converged = false;
  bool stopped = false;  ///< Cut short by options.cancel; x is best-so-far.
};

/// Minimizes f over the box [lower_i, upper_i]^n starting from x0 (which is
/// clamped into the box). Use -inf/+inf entries for unbounded coordinates.
LbfgsbResult MinimizeLbfgsb(const ObjectiveFn& f, Vector x0,
                            const Vector& lower, const Vector& upper,
                            const LbfgsbOptions& options = LbfgsbOptions());

/// Convenience: non-negativity constraint only (lower = 0, upper = +inf),
/// the constraint set used by OPT_0 (Theta >= 0) and OPT_M (theta >= 0).
LbfgsbResult MinimizeNonNegative(const ObjectiveFn& f, Vector x0,
                                 const LbfgsbOptions& options =
                                     LbfgsbOptions());

}  // namespace hdmm

#endif  // HDMM_OPTIMIZE_LBFGSB_H_
