#include "core/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "core/gaussian.h"
#include "core/svd_bound.h"
#include "linalg/kron.h"
#include "linalg/pinv.h"
#include "linalg/svd.h"

namespace hdmm {
namespace {

// rank and extreme singular values of an explicit matrix.
void SpectralSummary(const Matrix& a, double rcond, int64_t* rank,
                     double* sigma_max, double* sigma_min_positive) {
  const Vector s = SingularValues(a);
  *sigma_max = s.empty() ? 0.0 : s.front();
  const double cutoff = rcond * (*sigma_max);
  *rank = 0;
  *sigma_min_positive = 0.0;
  for (double sv : s) {
    if (sv > cutoff && sv > 0.0) {
      ++*rank;
      *sigma_min_positive = sv;  // s is descending; last kept is smallest.
    }
  }
}

}  // namespace

bool SupportsWorkloadExplicit(const Matrix& w, const Matrix& a, double tol) {
  HDMM_CHECK(w.cols() == a.cols());
  // W A^+ A == W <=> residual of projecting each workload row onto
  // rowspace(A) vanishes.
  Matrix pinv = PseudoInverse(a);
  Matrix projected = MatMul(MatMul(w, pinv), a);
  return projected.MaxAbsDiff(w) <= tol;
}

bool SupportsWorkload(const Strategy& strategy, const UnionWorkload& w,
                      double tol) {
  HDMM_CHECK(strategy.DomainSize() == w.DomainSize());

  if (const auto* kron = dynamic_cast<const KronStrategy*>(&strategy)) {
    // Product strategies: exact per-factor reduction. rowspace of a
    // Kronecker product is the tensor product of factor rowspaces, so the
    // product workload is contained iff each factor is.
    const std::vector<Matrix>& factors = kron->factors();
    for (const ProductWorkload& p : w.products()) {
      HDMM_CHECK(p.factors.size() == factors.size());
      for (size_t i = 0; i < factors.size(); ++i) {
        if (!SupportsWorkloadExplicit(p.factors[i], factors[i], tol)) {
          return false;
        }
      }
    }
    return true;
  }

  if (const auto* marg = dynamic_cast<const MarginalsStrategy*>(&strategy)) {
    // M(theta) spans the full contingency table iff the full marginal has
    // positive weight; then every linear query is supported.
    const Vector& theta = marg->theta();
    return theta.back() > tol;
  }

  if (const auto* expl = dynamic_cast<const ExplicitStrategy*>(&strategy)) {
    return SupportsWorkloadExplicit(w.Explicit(), expl->matrix(), tol);
  }

  if (const auto* uk = dynamic_cast<const UnionKronStrategy*>(&strategy)) {
    // Definition 11 convention: each part answers its own product group.
    for (int g = 0; g < uk->NumParts(); ++g) {
      const std::vector<Matrix>& part = uk->parts()[static_cast<size_t>(g)];
      for (int prod : uk->group_products()[static_cast<size_t>(g)]) {
        HDMM_CHECK(prod >= 0 && prod < w.NumProducts());
        const ProductWorkload& p = w.products()[static_cast<size_t>(prod)];
        HDMM_CHECK(p.factors.size() == part.size());
        for (size_t i = 0; i < part.size(); ++i) {
          if (!SupportsWorkloadExplicit(p.factors[i], part[i], tol)) {
            return false;
          }
        }
      }
    }
    return true;
  }

  HDMM_CHECK_MSG(false, "unknown strategy type for support checking");
  return false;
}

StrategyReport DescribeStrategy(const Strategy& strategy,
                                int64_t max_explicit_cells) {
  StrategyReport report;
  report.name = strategy.Name();
  report.num_queries = strategy.NumQueries();
  report.domain_size = strategy.DomainSize();
  report.l1_sensitivity = strategy.Sensitivity();

  constexpr double kRcond = 1e-12;
  if (const auto* kron = dynamic_cast<const KronStrategy*>(&strategy)) {
    // Spectra of Kronecker products multiply: rank is the product of factor
    // ranks; extreme singular values are products of extremes.
    report.l2_sensitivity = KronL2Sensitivity(kron->factors());
    report.rank = 1;
    double sigma_max = 1.0, sigma_min = 1.0;
    for (const Matrix& f : kron->factors()) {
      int64_t r;
      double smax, smin;
      SpectralSummary(f, kRcond, &r, &smax, &smin);
      report.rank *= r;
      sigma_max *= smax;
      sigma_min *= smin;
    }
    report.condition_number = sigma_min > 0.0 ? sigma_max / sigma_min : 0.0;
  } else if (const auto* expl =
                 dynamic_cast<const ExplicitStrategy*>(&strategy)) {
    report.l2_sensitivity = L2Sensitivity(expl->matrix());
    double sigma_max, sigma_min;
    SpectralSummary(expl->matrix(), kRcond, &report.rank, &sigma_max,
                    &sigma_min);
    report.condition_number = sigma_min > 0.0 ? sigma_max / sigma_min : 0.0;
  } else {
    // Generic path: expand A row-block by applying it to basis vectors.
    HDMM_CHECK_MSG(
        report.num_queries * report.domain_size <= max_explicit_cells,
        "strategy too large for explicit diagnostics");
    Matrix a(report.num_queries, report.domain_size);
    Vector e(static_cast<size_t>(report.domain_size), 0.0);
    for (int64_t j = 0; j < report.domain_size; ++j) {
      e[static_cast<size_t>(j)] = 1.0;
      const Vector col = strategy.Apply(e);
      for (int64_t i = 0; i < report.num_queries; ++i) {
        a(i, j) = col[static_cast<size_t>(i)];
      }
      e[static_cast<size_t>(j)] = 0.0;
    }
    report.l2_sensitivity = L2Sensitivity(a);
    double sigma_max, sigma_min;
    SpectralSummary(a, kRcond, &report.rank, &sigma_max, &sigma_min);
    report.condition_number = sigma_min > 0.0 ? sigma_max / sigma_min : 0.0;
  }
  report.full_column_rank = report.rank == report.domain_size;
  return report;
}

std::string ReportToString(const StrategyReport& report) {
  std::ostringstream out;
  out << "strategy " << report.name << ": " << report.num_queries
      << " queries over " << report.domain_size << " cells\n";
  out << "  L1 sensitivity " << report.l1_sensitivity << ", L2 sensitivity "
      << report.l2_sensitivity << "\n";
  out << "  rank " << report.rank << "/" << report.domain_size
      << (report.full_column_rank ? " (supports every workload)" : "")
      << ", condition number " << report.condition_number << "\n";
  return out.str();
}

SessionDiagnostics DiagnoseSession(const Strategy& strategy,
                                   const UnionWorkload& w, double epsilon,
                                   int64_t max_explicit_cells) {
  SessionDiagnostics diag;
  diag.epsilon = epsilon;
  // Single products get the implicit (factor-multiplicative) nuclear norm at
  // any size; unions need the explicit N x N Gram spectrum, so refuse
  // gracefully past the ceiling instead of dying inside the bound.
  if (w.NumProducts() > 1 && w.DomainSize() > max_explicit_cells) {
    diag.note = "lower bound needs the explicit Gram spectrum (domain " +
                std::to_string(w.DomainSize()) + " > ceiling " +
                std::to_string(max_explicit_cells) + " for union workloads)";
    return diag;
  }
  const double bound_sq =
      SquaredErrorLowerBound(w, w.DomainSize() * w.DomainSize());
  if (bound_sq <= 0.0) {
    diag.note = "degenerate workload: zero spectral bound";
    return diag;
  }
  const double achieved_sq = strategy.SquaredError(w);
  diag.lower_bound_total_sq = 2.0 / (epsilon * epsilon) * bound_sq;
  diag.achieved_total_sq = 2.0 / (epsilon * epsilon) * achieved_sq;
  // Root scale (the paper's error-ratio convention): 100% certifies the
  // plan optimal among all supporting strategies. Epsilon cancels.
  diag.pct_of_optimal =
      achieved_sq > 0.0 ? 100.0 * std::sqrt(bound_sq / achieved_sq) : 0.0;
  diag.computable = true;
  return diag;
}

}  // namespace hdmm
