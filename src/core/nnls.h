// Non-negative least squares inference: x_hat = argmin_{x >= 0} ||A x - y||^2.
//
// The paper's RECONSTRUCT step uses ordinary least squares (Table 1b), which
// can produce negative cell estimates even though the data vector counts
// tuples. Projecting the inference onto the non-negative orthant is the
// standard post-processing refinement in deployed select-measure-reconstruct
// systems (it is pure post-processing, so epsilon-DP is unaffected by the
// Dwork-Roth post-processing theorem cited as [12]); it typically reduces
// error on sparse data and makes the output directly usable as a synthetic
// contingency table.
//
// The solver is an accelerated projected-gradient method (FISTA with
// function-value restart) over the implicit operator: only mat-vec products
// with A and A^T are required, so it runs on Kronecker and stacked
// strategies at full-domain scale.
#ifndef HDMM_CORE_NNLS_H_
#define HDMM_CORE_NNLS_H_

#include "linalg/linear_operator.h"

namespace hdmm {

/// Options for SolveNnls.
struct NnlsOptions {
  int max_iterations = 500;
  /// Convergence: relative change of the objective between restart checks.
  double tolerance = 1e-10;
  /// Power-iteration steps for the Lipschitz constant ||A^T A||_2.
  int power_iterations = 30;
};

/// Result of SolveNnls.
struct NnlsResult {
  Vector x;                    ///< The non-negative minimizer.
  int iterations = 0;          ///< Gradient steps taken.
  double objective = 0.0;      ///< ||A x - y||^2 at the solution.
  bool converged = false;      ///< Tolerance reached before max_iterations.
};

/// Solves min_{x >= 0} ||A x - y||^2 with accelerated projected gradient.
NnlsResult SolveNnls(const LinearOperator& a, const Vector& y,
                     const NnlsOptions& options = NnlsOptions());

/// Convenience overload starting from a warm start x0 (projected onto the
/// orthant). A good warm start is the unconstrained least-squares solution.
NnlsResult SolveNnls(const LinearOperator& a, const Vector& y, Vector x0,
                     const NnlsOptions& options = NnlsOptions());

}  // namespace hdmm

#endif  // HDMM_CORE_NNLS_H_
