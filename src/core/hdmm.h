// OPT_HDMM (Algorithm 2, Section 7.1) and the end-to-end HDMM mechanism
// (Table 1b): fully automated strategy selection followed by
// measure + reconstruct + workload answering.
#ifndef HDMM_CORE_HDMM_H_
#define HDMM_CORE_HDMM_H_

#include <memory>
#include <string>

#include "common/deadline.h"
#include "common/rng.h"
#include "core/opt_kron.h"
#include "core/opt_marginals.h"
#include "core/opt_union.h"
#include "core/strategy.h"
#include "workload/workload.h"

namespace hdmm {

/// Options for OPT_HDMM.
struct HdmmOptions {
  /// Random restarts S (Algorithm 2). The paper uses 25 but observes that
  /// "far fewer than 25 restarts may be sufficient in practice"
  /// (Section 8.1); the library default favors runtime.
  int restarts = 3;

  bool use_kron = true;       ///< Run OPT_x.
  bool use_union = true;      ///< Run OPT_+ on the signature grouping g(W).
  bool use_marginals = true;  ///< Run OPT_M.
  int max_marginals_dims = 14;  ///< Skip OPT_M beyond this dimensionality.

  OptKronOptions kron;
  OptUnionOptions union_opts;
  OptMarginalsOptions marginals;

  uint64_t seed = 0;

  /// Cooperative stop, polled before each restart job and once per L-BFGS-B
  /// iteration inside them. Not owned; null means run to completion. Plan
  /// fingerprints hash the fields above and ignore this pointer, so the same
  /// options with or without a token name the same plan.
  const CancelToken* cancel = nullptr;
};

/// Result of strategy selection.
struct HdmmResult {
  std::unique_ptr<Strategy> strategy;
  double squared_error = 0.0;   ///< ||A||_1^2 ||W A^+||_F^2 of the winner.
  std::string chosen_operator;  ///< "identity", "kron", "union", "marginals".
  /// True when options.cancel fired mid-run. The strategy is then a
  /// best-so-far, NOT the deterministic full-grid winner — callers must
  /// treat the result as abandoned (never cache or serve it).
  bool cancelled = false;
};

/// Runs OPT_HDMM: evaluates the Identity fallback plus every enabled operator
/// across `restarts` random starts and returns the lowest-error strategy.
/// Strategy selection is data-independent and consumes no privacy budget
/// (Section 7.3).
HdmmResult OptimizeStrategy(const UnionWorkload& w,
                            const HdmmOptions& options = HdmmOptions());

/// End-to-end mechanism (Table 1b): measures x with the strategy under
/// epsilon-DP and returns the estimated workload answers W x_hat.
/// The only interaction with x is through the Laplace mechanism, so the
/// output is epsilon-differentially private (Theorem 7).
Vector RunMechanism(const UnionWorkload& w, const Strategy& strategy,
                    const Vector& x, double epsilon, Rng* rng);

/// True workload answers W x (for evaluation only).
Vector TrueAnswers(const UnionWorkload& w, const Vector& x);

}  // namespace hdmm

#endif  // HDMM_CORE_HDMM_H_
