// p-Identity strategies (Definition 9) and the O(pN^2) objective/gradient of
// Theorem 4 / Appendix A.3. This is the computational kernel behind OPT_0.
//
//   A(Theta) = [I; Theta] * D,  D = diag(1_N + 1_p Theta)^{-1}
//
// so that ||A(Theta)||_1 = 1 for every non-negative Theta, and
//
//   C(A) = || W A^+ ||_F^2 = tr[(A^T A)^{-1} (W^T W)].
#ifndef HDMM_CORE_PIDENTITY_H_
#define HDMM_CORE_PIDENTITY_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Expected-error objective for p-Identity strategies against a fixed
/// workload Gram matrix G = W^T W. Stateless between calls except for the
/// cached Gram; thread-compatible for concurrent Eval on distinct instances.
class PIdentityObjective {
 public:
  /// `gram` is W^T W (N x N, symmetric PSD); `p` the number of extra rows.
  PIdentityObjective(Matrix gram, int p);

  int64_t n() const { return gram_.rows(); }
  int p() const { return p_; }
  const Matrix& gram() const { return gram_; }

  /// Evaluates C(A(Theta)) and, if grad != nullptr, dC/dTheta.
  /// `theta` is the p x N parameter matrix flattened row-major; the gradient
  /// uses the same layout. Both run in O(p N^2) time (Theorem 4).
  double Eval(const Vector& theta_flat, Vector* grad_flat) const;

  /// Builds the explicit (N+p) x N strategy matrix A(Theta).
  static Matrix BuildStrategy(const Matrix& theta);

  /// tr[(A(Theta)^T A(Theta))^{-1} G] for an arbitrary symmetric G (not
  /// necessarily the cached one): used by OPT_x to evaluate per-product
  /// errors of a shared sub-strategy. O(p N^2).
  static double TraceWithGram(const Matrix& theta, const Matrix& g);

  /// Reference O(N^3) implementation of Eval's objective (for tests).
  static double EvalReference(const Matrix& theta, const Matrix& gram);

 private:
  Matrix gram_;
  int p_;
};

}  // namespace hdmm

#endif  // HDMM_CORE_PIDENTITY_H_
