// p-Identity strategies (Definition 9) and the O(pN^2) objective/gradient of
// Theorem 4 / Appendix A.3. This is the computational kernel behind OPT_0.
//
//   A(Theta) = [I; Theta] * D,  D = diag(1_N + 1_p Theta)^{-1}
//
// so that ||A(Theta)||_1 = 1 for every non-negative Theta, and
//
//   C(A) = || W A^+ ||_F^2 = tr[(A^T A)^{-1} (W^T W)].
#ifndef HDMM_CORE_PIDENTITY_H_
#define HDMM_CORE_PIDENTITY_H_

#include "linalg/gemm.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Expected-error objective for p-Identity strategies against a fixed
/// workload Gram matrix G = W^T W.
///
/// Eval is the L-BFGS-B inner loop of OPT_0 and is invoked hundreds of times
/// per restart, so the instance owns a reusable workspace: every temporary
/// the evaluation needs is sized once and recycled, and after the first call
/// an Eval touches the heap zero times (with kSerial kernels; see
/// docs/performance.md, "Planner throughput"). Consequently instances are
/// NOT safe for concurrent Eval — each parallel restart owns its own
/// objective, which is exactly how OPT_0 fans out.
class PIdentityObjective {
 public:
  /// `gram` is W^T W (N x N, symmetric PSD); `p` the number of extra rows.
  /// `par` selects pooled or serial compute kernels: restarts that already
  /// run in parallel pass kSerial so the inner loop stays allocation-free
  /// and off the shared pool.
  PIdentityObjective(Matrix gram, int p,
                     GemmParallelism par = GemmParallelism::kPooled);

  int64_t n() const { return gram_.rows(); }
  int p() const { return p_; }
  const Matrix& gram() const { return gram_; }

  /// Evaluates C(A(Theta)) and, if grad != nullptr, dC/dTheta.
  /// `theta` is the p x N parameter matrix flattened row-major; the gradient
  /// uses the same layout. Both run in O(p N^2) time (Theorem 4).
  double Eval(const Vector& theta_flat, Vector* grad_flat);

  /// Builds the explicit (N+p) x N strategy matrix A(Theta).
  static Matrix BuildStrategy(const Matrix& theta);

  /// tr[(A(Theta)^T A(Theta))^{-1} G] for an arbitrary symmetric G (not
  /// necessarily the cached one): used by OPT_x to evaluate per-product
  /// errors of a shared sub-strategy. O(p N^2).
  static double TraceWithGram(const Matrix& theta, const Matrix& g);

  /// Reference O(N^3) implementation of Eval's objective (for tests).
  static double EvalReference(const Matrix& theta, const Matrix& gram);

 private:
  Matrix gram_;
  Vector gram_diag_;  ///< Hoisted diag(G): read every Eval, never changes.
  int p_;
  GemmParallelism par_;

  // Reusable per-objective workspace (sized lazily on the first Eval).
  // Names follow the derivation in docs/pidentity_gradient.md.
  Matrix theta_;   // p x N parameter matrix (copied in from theta_flat).
  Matrix m_;       // Capacitance I_p + Theta Theta^T, then its space.
  Matrix l_;       // Cholesky factor of the capacitance.
  Matrix t1_;      // Theta S, later ThetaTilde = Theta D.
  Matrix b_;       // T1 G, later ThetaTilde Y (the -2 .. gradient term).
  Matrix spp_;     // B T1^T (p x p).
  Matrix z_;       // M^{-1} Spp.
  Matrix g1_;      // S G.
  Matrix u_;       // Theta G1, later Theta Z.
  Matrix v_;       // M^{-1} U.
  Matrix k_;       // X^{-1} G.
  Matrix k1_;      // K S, then Y, then Z (built up in place).
  Matrix pmat_;    // K1 Theta^T (N x p), solved in place into Q.
  Matrix rterm_;   // Q Theta.
  Vector s_;       // Column scales s_j = 1 + sum_i Theta_ij.
  Vector d_;       // 1 / s.
  Vector r_;       // Gradient row statistic.
};

}  // namespace hdmm

#endif  // HDMM_CORE_PIDENTITY_H_
