#include "core/hdmm.h"

#include <limits>
#include <utility>

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

std::unique_ptr<Strategy> MakeIdentityStrategy(const Domain& domain) {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain.NumAttributes(); ++i)
    factors.push_back(IdentityBlock(domain.AttributeSize(i)));
  return std::make_unique<KronStrategy>(std::move(factors), "identity");
}

}  // namespace

HdmmResult OptimizeStrategy(const UnionWorkload& w,
                            const HdmmOptions& options) {
  HDMM_CHECK(w.NumProducts() >= 1);
  Rng rng(options.seed);
  const int d = w.domain().NumAttributes();

  // Line 1 of Algorithm 2: best = (I, error_I).
  HdmmResult best;
  best.strategy = MakeIdentityStrategy(w.domain());
  best.squared_error = best.strategy->SquaredError(w);
  best.chosen_operator = "identity";

  // Candidates are always compared through the strategy's own closed-form
  // SquaredError rather than the optimizer's internal objective value, so
  // HdmmResult::squared_error is guaranteed to describe the strategy that is
  // actually returned (the optimizers' fast-path objectives can disagree
  // with the built strategy at extreme parameters; see
  // docs/pidentity_gradient.md).
  auto consider = [&](std::unique_ptr<Strategy> s, const std::string& op) {
    const double err = s->SquaredError(w);
    if (err < best.squared_error) {
      best.strategy = std::move(s);
      best.squared_error = err;
      best.chosen_operator = op;
    }
  };

  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    if (options.use_kron) {
      OptKronResult res = OptKron(w, options.kron, &rng);
      auto strat = std::make_unique<KronStrategy>(KronStrategyFactors(res),
                                                  "opt-kron");
      consider(std::move(strat), "kron");
    }
    if (options.use_union) {
      std::vector<std::vector<int>> groups =
          PartitionBySignature(w, options.union_opts.max_groups);
      // With a single signature group OPT_+ degenerates to OPT_x; skip it.
      if (groups.size() > 1) {
        OptUnionResult res = OptUnion(w, options.union_opts, &rng);
        std::vector<std::vector<Matrix>> parts;
        for (size_t g = 0; g < res.group_thetas.size(); ++g) {
          OptKronResult tmp;
          tmp.thetas = res.group_thetas[g];
          std::vector<Matrix> factors = KronStrategyFactors(tmp);
          // Fold the group's budget fraction into the strategy: scaling one
          // factor by lambda_g makes the stacked sensitivity sum to 1 and
          // the closed-form error match OptUnion's bookkeeping.
          factors[0].ScaleInPlace(res.budget_split[g]);
          parts.push_back(std::move(factors));
        }
        auto strat = std::make_unique<UnionKronStrategy>(
            std::move(parts), res.group_products, "opt-union");
        consider(std::move(strat), "union");
      }
    }
    if (options.use_marginals && d <= options.max_marginals_dims) {
      OptMarginalsResult res = OptMarginals(w, options.marginals, &rng);
      auto strat = std::make_unique<MarginalsStrategy>(
          w.domain(), res.theta, "opt-marginals");
      consider(std::move(strat), "marginals");
    }
  }
  return best;
}

Vector RunMechanism(const UnionWorkload& w, const Strategy& strategy,
                    const Vector& x, double epsilon, Rng* rng) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == w.DomainSize());
  Vector y = strategy.Measure(x, epsilon, rng);
  Vector x_hat = strategy.Reconstruct(y);
  return TrueAnswers(w, x_hat);
}

Vector TrueAnswers(const UnionWorkload& w, const Vector& x) {
  auto op = w.ToOperator();
  return op->Apply(x);
}

}  // namespace hdmm
