#include "core/hdmm.h"

#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

std::unique_ptr<Strategy> MakeIdentityStrategy(const Domain& domain) {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain.NumAttributes(); ++i)
    factors.push_back(IdentityBlock(domain.AttributeSize(i)));
  return std::make_unique<KronStrategy>(std::move(factors), "identity");
}

}  // namespace

HdmmResult OptimizeStrategy(const UnionWorkload& w,
                            const HdmmOptions& options) {
  HDMM_TRACE_SPAN("OptimizeStrategy");
  HDMM_CHECK(w.NumProducts() >= 1);
  Rng rng(options.seed);
  const int d = w.domain().NumAttributes();

  // Line 1 of Algorithm 2: best = (I, error_I).
  HdmmResult best;
  best.strategy = MakeIdentityStrategy(w.domain());
  best.squared_error = best.strategy->SquaredError(w);
  best.chosen_operator = "identity";

  // One job per (restart, operator) cell of Algorithm 2's grid. Jobs are
  // enumerated restart-major in the operator order kron, union, marginals —
  // the same order the old sequential loop considered candidates in — and
  // each owns an independent stream forked from the seed Rng on this thread,
  // so the grid (and the selection below) is a pure function of the options,
  // never of the thread count.
  enum Op { kKron, kUnion, kMarginals };
  struct Job {
    Op op;
    Rng rng;
    std::unique_ptr<Strategy> strategy;
    double error = std::numeric_limits<double>::infinity();
  };
  const bool run_union =
      options.use_union &&
      PartitionBySignature(w, options.union_opts.max_groups).size() > 1;
  const bool run_marginals =
      options.use_marginals && d <= options.max_marginals_dims;
  std::vector<Job> jobs;
  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    if (options.use_kron)
      jobs.push_back({kKron, rng.Fork(jobs.size()), nullptr, 0.0});
    // With a single signature group OPT_+ degenerates to OPT_x; skip it.
    if (run_union)
      jobs.push_back({kUnion, rng.Fork(jobs.size()), nullptr, 0.0});
    if (run_marginals)
      jobs.push_back({kMarginals, rng.Fork(jobs.size()), nullptr, 0.0});
  }

  // Candidates are always compared through the strategy's own closed-form
  // SquaredError rather than the optimizer's internal objective value, so
  // HdmmResult::squared_error is guaranteed to describe the strategy that is
  // actually returned (the optimizers' fast-path objectives can disagree
  // with the built strategy at extreme parameters; see
  // docs/pidentity_gradient.md). The error is computed inside the job so it
  // overlaps with other restarts.
  static Counter* const restarts_run =
      Metrics::GetCounter("optimizer.restarts");
  restarts_run->Add(jobs.size());

  // Push the cancel token down into every operator's L-BFGS-B loop — that
  // inner iteration is the finest-grained yield point, giving ~ms-scale
  // response to a deadline on a ~0.5 s cold plan.
  OptKronOptions kron_opts = options.kron;
  kron_opts.lbfgs.cancel = options.cancel;
  OptUnionOptions union_opts = options.union_opts;
  union_opts.kron.lbfgs.cancel = options.cancel;
  OptMarginalsOptions marginals_opts = options.marginals;
  marginals_opts.lbfgs.cancel = options.cancel;

  RestartPool().ParallelFor(
      0, static_cast<int64_t>(jobs.size()), /*grain=*/1,
      [&](int64_t j0, int64_t j1) {
        for (int64_t ji = j0; ji < j1; ++ji) {
          Job& job = jobs[static_cast<size_t>(ji)];
          // A signalled token skips jobs that have not started; jobs already
          // inside L-BFGS-B notice it themselves within one iteration.
          if (CancelRequested(options.cancel)) continue;
          if (job.op == kKron) {
            OptKronResult res = OptKron(w, kron_opts, &job.rng);
            job.strategy = std::make_unique<KronStrategy>(
                KronStrategyFactors(res), "opt-kron");
          } else if (job.op == kUnion) {
            OptUnionResult res = OptUnion(w, union_opts, &job.rng);
            std::vector<std::vector<Matrix>> parts;
            for (size_t g = 0; g < res.group_thetas.size(); ++g) {
              OptKronResult tmp;
              tmp.thetas = res.group_thetas[g];
              std::vector<Matrix> factors = KronStrategyFactors(tmp);
              // Fold the group's budget fraction into the strategy: scaling
              // one factor by lambda_g makes the stacked sensitivity sum to
              // 1 and the closed-form error match OptUnion's bookkeeping.
              factors[0].ScaleInPlace(res.budget_split[g]);
              parts.push_back(std::move(factors));
            }
            job.strategy = std::make_unique<UnionKronStrategy>(
                std::move(parts), res.group_products, "opt-union");
          } else {
            OptMarginalsResult res = OptMarginals(w, marginals_opts,
                                                  &job.rng);
            job.strategy = std::make_unique<MarginalsStrategy>(
                w.domain(), res.theta, "opt-marginals");
          }
          if (CancelRequested(options.cancel)) {
            // Stopped mid-optimization: the iterate is abandoned, so don't
            // spend time scoring it either.
            job.strategy.reset();
            continue;
          }
          job.error = job.strategy->SquaredError(w);
        }
      });

  // Deterministic selection in job order: strict improvement only, so the
  // earliest (lowest restart, operator-order) candidate wins ties.
  best.cancelled = CancelRequested(options.cancel);
  static const char* kOpNames[] = {"kron", "union", "marginals"};
  for (Job& job : jobs) {
    if (job.strategy == nullptr) continue;  // Skipped under cancellation.
    if (job.error < best.squared_error) {
      best.strategy = std::move(job.strategy);
      best.squared_error = job.error;
      best.chosen_operator = kOpNames[job.op];
    }
  }
  return best;
}

Vector RunMechanism(const UnionWorkload& w, const Strategy& strategy,
                    const Vector& x, double epsilon, Rng* rng) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == w.DomainSize());
  Vector y = strategy.Measure(x, epsilon, rng);
  Vector x_hat = strategy.Reconstruct(y);
  return TrueAnswers(w, x_hat);
}

Vector TrueAnswers(const UnionWorkload& w, const Vector& x) {
  auto op = w.ToOperator();
  return op->Apply(x);
}

}  // namespace hdmm
