#include "core/strategy.h"

#include <cmath>

#include "common/check.h"
#include "core/gaussian.h"
#include "core/measure.h"
#include "linalg/lsmr.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {

// ---------------------------------------------------------------- Strategy

Vector Strategy::Measure(const Vector& x, double epsilon, Rng* rng) const {
  // LaplaceScale validates the contract: epsilon and the sensitivity must
  // both be positive and finite, else the noise would be NaN/zero and the
  // privacy guarantee silently void.
  const double scale = LaplaceScale(Sensitivity(), epsilon);
  Vector answers = Apply(x);
  for (double& v : answers) v += rng->Laplace(scale);
  return answers;
}

Vector Strategy::MeasureGaussian(const Vector& x, double rho,
                                 Rng* rng) const {
  // GaussianSigmaFromRho validates the contract: rho and the L2 sensitivity
  // must both be positive and finite, else the noise would be NaN/zero and
  // the zCDP guarantee silently void.
  const double sigma = GaussianSigmaFromRho(L2Sensitivity(), rho);
  Vector answers = Apply(x);
  for (double& v : answers) v += sigma * rng->Gaussian();
  return answers;
}

double Strategy::TotalSquaredError(const UnionWorkload& w,
                                   double epsilon) const {
  return 2.0 / (epsilon * epsilon) * SquaredError(w);
}

double Strategy::RootMeanSquaredError(const UnionWorkload& w,
                                      double epsilon) const {
  return std::sqrt(TotalSquaredError(w, epsilon) /
                   static_cast<double>(w.TotalQueries()));
}

// -------------------------------------------------------- ExplicitStrategy

ExplicitStrategy::ExplicitStrategy(Matrix a, std::string name)
    : a_(std::move(a)), name_(std::move(name)) {}

double ExplicitStrategy::Sensitivity() const { return a_.MaxAbsColSum(); }

double ExplicitStrategy::L2Sensitivity() const {
  return hdmm::L2Sensitivity(a_);
}

Vector ExplicitStrategy::Apply(const Vector& x) const { return MatVec(a_, x); }

const Matrix& ExplicitStrategy::Pinv() const {
  if (!have_pinv_) {
    pinv_ = PseudoInverse(a_);
    have_pinv_ = true;
  }
  return pinv_;
}

Vector ExplicitStrategy::Reconstruct(const Vector& y) const {
  return MatVec(Pinv(), y);
}

double ExplicitStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK(w.DomainSize() == a_.cols());
  Matrix wg = w.ExplicitGram();
  double sens = Sensitivity();
  return sens * sens * TracePinvGram(Gram(a_), wg);
}

// ------------------------------------------------------------ KronStrategy

KronStrategy::KronStrategy(std::vector<Matrix> factors, std::string name)
    : factors_(std::move(factors)), name_(std::move(name)) {
  HDMM_CHECK(!factors_.empty());
}

int64_t KronStrategy::DomainSize() const {
  int64_t n = 1;
  for (const Matrix& f : factors_) n *= f.cols();
  return n;
}

int64_t KronStrategy::NumQueries() const {
  int64_t m = 1;
  for (const Matrix& f : factors_) m *= f.rows();
  return m;
}

double KronStrategy::Sensitivity() const { return KronSensitivity(factors_); }

double KronStrategy::L2Sensitivity() const {
  return KronL2Sensitivity(factors_);
}

Vector KronStrategy::Apply(const Vector& x) const {
  return KronMatVec(factors_, x);
}

const std::vector<Matrix>& KronStrategy::FactorPinvs() const {
  if (pinvs_.empty()) {
    pinvs_.reserve(factors_.size());
    for (const Matrix& f : factors_) pinvs_.push_back(PseudoInverse(f));
  }
  return pinvs_;
}

Vector KronStrategy::Reconstruct(const Vector& y) const {
  return KronMatVec(FactorPinvs(), y);
}

double KronStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK(w.DomainSize() == DomainSize());
  HDMM_CHECK(static_cast<int>(factors_.size()) ==
             w.domain().NumAttributes());
  // Theorem 6: ||W A^+||_F^2 = sum_j w_j^2 prod_i tr[(A_i^T A_i)^+ G_i^(j)].
  double total = 0.0;
  std::vector<Matrix> factor_grams;
  factor_grams.reserve(factors_.size());
  for (const Matrix& f : factors_) factor_grams.push_back(Gram(f));
  for (const ProductWorkload& prod : w.products()) {
    double term = prod.weight * prod.weight;
    for (size_t i = 0; i < factors_.size(); ++i) {
      term *= TracePinvGram(factor_grams[i],
                            *prod.FactorGramShared(static_cast<int>(i)));
    }
    total += term;
  }
  double sens = Sensitivity();
  return sens * sens * total;
}

// ------------------------------------------------------- UnionKronStrategy

UnionKronStrategy::UnionKronStrategy(
    std::vector<std::vector<Matrix>> parts,
    std::vector<std::vector<int>> group_products, std::string name)
    : parts_(std::move(parts)),
      group_products_(std::move(group_products)),
      name_(std::move(name)) {
  HDMM_CHECK(!parts_.empty());
  HDMM_CHECK(parts_.size() == group_products_.size());
  std::vector<std::shared_ptr<const LinearOperator>> blocks;
  for (const auto& factors : parts_)
    blocks.push_back(std::make_shared<KronOperator>(factors));
  op_ = std::make_shared<StackedOperator>(std::move(blocks));
}

int64_t UnionKronStrategy::DomainSize() const { return op_->Cols(); }

int64_t UnionKronStrategy::NumQueries() const { return op_->Rows(); }

double UnionKronStrategy::Sensitivity() const {
  double s = 0.0;
  for (const auto& factors : parts_) s += KronSensitivity(factors);
  return s;
}

double UnionKronStrategy::L2Sensitivity() const {
  // Columns of the stack concatenate the parts' columns, so squared norms
  // add per column; bounding each part's contribution by its own max column
  // norm gives max_j ||col_j||^2 <= sum_k max_j ||col_j of part k||^2. An
  // upper bound — sound to calibrate against, exact when the parts attain
  // their maxima in the same column (e.g. uniform-column-norm blocks).
  double sq = 0.0;
  for (const auto& factors : parts_) {
    const double part = KronL2Sensitivity(factors);
    sq += part * part;
  }
  return std::sqrt(sq);
}

Vector UnionKronStrategy::Apply(const Vector& x) const {
  return op_->Apply(x);
}

Vector UnionKronStrategy::Reconstruct(const Vector& y) const {
  LsmrResult res = LsmrSolve(*op_, y);
  return res.x;
}

double UnionKronStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK_MSG(static_cast<int>(group_products_.size()) >= 1,
                 "union strategy without group mapping");
  // Each group g answers the workload products assigned to it using its own
  // sub-strategy; the stacked sensitivity scales all measurements.
  double total = 0.0;
  for (size_t g = 0; g < parts_.size(); ++g) {
    std::vector<Matrix> grams;
    grams.reserve(parts_[g].size());
    for (const Matrix& f : parts_[g]) grams.push_back(Gram(f));
    for (int j : group_products_[g]) {
      HDMM_CHECK(j >= 0 && j < w.NumProducts());
      const ProductWorkload& prod = w.products()[static_cast<size_t>(j)];
      double term = prod.weight * prod.weight;
      for (size_t i = 0; i < grams.size(); ++i) {
        term *= TracePinvGram(grams[i],
                              *prod.FactorGramShared(static_cast<int>(i)));
      }
      total += term;
    }
  }
  double sens = Sensitivity();
  return sens * sens * total;
}

// ------------------------------------------------------- MarginalsStrategy

MarginalsStrategy::MarginalsStrategy(Domain domain, Vector theta,
                                     std::string name)
    : domain_(std::move(domain)),
      theta_(std::move(theta)),
      name_(std::move(name)),
      algebra_(domain_.sizes()) {
  HDMM_CHECK(theta_.size() == algebra_.num_masks());
}

std::vector<uint32_t> MarginalsStrategy::ActiveMasks() const {
  std::vector<uint32_t> masks;
  for (uint32_t a = 0; a < algebra_.num_masks(); ++a) {
    if (theta_[a] > 1e-12) masks.push_back(a);
  }
  HDMM_CHECK_MSG(!masks.empty(), "marginals strategy with all-zero weights");
  return masks;
}

std::vector<Matrix> MarginalsStrategy::MarginalFactors(uint32_t mask) const {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain_.NumAttributes(); ++i) {
    const int64_t n = domain_.AttributeSize(i);
    factors.push_back(((mask >> i) & 1u) ? IdentityBlock(n) : TotalBlock(n));
  }
  return factors;
}

int64_t MarginalsStrategy::NumQueries() const {
  int64_t m = 0;
  for (uint32_t mask : ActiveMasks()) {
    int64_t cells = 1;
    for (int i = 0; i < domain_.NumAttributes(); ++i)
      if ((mask >> i) & 1u) cells *= domain_.AttributeSize(i);
    m += cells;
  }
  return m;
}

double MarginalsStrategy::Sensitivity() const {
  double s = 0.0;
  for (double t : theta_) s += std::fabs(t);
  return s;
}

double MarginalsStrategy::L2Sensitivity() const {
  // One record lands in exactly one cell of every active marginal, with
  // coefficient theta_a — every column of M(theta) has norm
  // sqrt(sum_a theta_a^2) exactly.
  double sq = 0.0;
  for (double t : theta_) sq += t * t;
  return std::sqrt(sq);
}

Vector MarginalsStrategy::Apply(const Vector& x) const {
  Vector out;
  for (uint32_t mask : ActiveMasks()) {
    Vector part = KronMatVec(MarginalFactors(mask), x);
    for (double& v : part) v *= theta_[mask];
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Vector MarginalsStrategy::Reconstruct(const Vector& y) const {
  // x_hat = (M^T M)^{-1} M^T y, with (M^T M)^{-1} = G(v) (Appendix A.4).
  const uint32_t masks = algebra_.num_masks();
  Vector u(masks);
  for (uint32_t a = 0; a < masks; ++a) u[a] = theta_[a] * theta_[a];
  Vector v = algebra_.InverseWeights(u);

  // M^T y: accumulate theta_a * (marginal factors)^T y_a.
  const int64_t n = domain_.TotalSize();
  Vector mty(static_cast<size_t>(n), 0.0);
  size_t offset = 0;
  for (uint32_t mask : ActiveMasks()) {
    std::vector<Matrix> factors = MarginalFactors(mask);
    int64_t rows = 1;
    for (const Matrix& f : factors) rows *= f.rows();
    Vector sub(y.begin() + static_cast<long>(offset),
               y.begin() + static_cast<long>(offset + static_cast<size_t>(rows)));
    Vector part = KronMatTVec(factors, sub);
    Axpy(theta_[mask], part, &mty);
    offset += static_cast<size_t>(rows);
  }
  HDMM_CHECK(offset == y.size());

  // G(v) * mty = sum_a v_a C(a) mty, each term a Kronecker mat-vec with
  // factors I or the all-ones matrix.
  Vector xhat(static_cast<size_t>(n), 0.0);
  for (uint32_t a = 0; a < masks; ++a) {
    if (v[a] == 0.0) continue;
    std::vector<Matrix> factors;
    for (int i = 0; i < domain_.NumAttributes(); ++i) {
      const int64_t ni = domain_.AttributeSize(i);
      factors.push_back(((a >> i) & 1u) ? IdentityBlock(ni)
                                        : Matrix::Ones(ni, ni));
    }
    Vector part = KronMatVec(factors, mty);
    Axpy(v[a], part, &xhat);
  }
  return xhat;
}

double MarginalsStrategy::SquaredError(const UnionWorkload& w) const {
  Vector tau = algebra_.WorkloadTraceVector(w);
  double tr = algebra_.TraceObjective(theta_, tau);
  double sens = Sensitivity();
  return sens * sens * tr;
}

}  // namespace hdmm
