#include "core/strategy.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "core/gaussian.h"
#include "core/measure.h"
#include "linalg/lsmr.h"
#include "linalg/pinv.h"
#include "workload/building_blocks.h"

namespace hdmm {

// ---------------------------------------------------------------- Strategy

Vector Strategy::Measure(const Vector& x, double epsilon, Rng* rng) const {
  // LaplaceScale validates the contract: epsilon and the sensitivity must
  // both be positive and finite, else the noise would be NaN/zero and the
  // privacy guarantee silently void.
  const double scale = LaplaceScale(Sensitivity(), epsilon);
  Vector answers = Apply(x);
  for (double& v : answers) v += rng->Laplace(scale);
  return answers;
}

Vector Strategy::MeasureGaussian(const Vector& x, double rho,
                                 Rng* rng) const {
  // GaussianSigmaFromRho validates the contract: rho and the L2 sensitivity
  // must both be positive and finite, else the noise would be NaN/zero and
  // the zCDP guarantee silently void.
  const double sigma = GaussianSigmaFromRho(L2Sensitivity(), rho);
  Vector answers = Apply(x);
  for (double& v : answers) v += sigma * rng->Gaussian();
  return answers;
}

double Strategy::TotalSquaredError(const UnionWorkload& w,
                                   double epsilon) const {
  return 2.0 / (epsilon * epsilon) * SquaredError(w);
}

double Strategy::RootMeanSquaredError(const UnionWorkload& w,
                                      double epsilon) const {
  return std::sqrt(TotalSquaredError(w, epsilon) /
                   static_cast<double>(w.TotalQueries()));
}

// -------------------------------------------------------- ExplicitStrategy

ExplicitStrategy::ExplicitStrategy(Matrix a, std::string name)
    : a_(std::move(a)), name_(std::move(name)) {}

double ExplicitStrategy::Sensitivity() const { return a_.MaxAbsColSum(); }

double ExplicitStrategy::L2Sensitivity() const {
  return hdmm::L2Sensitivity(a_);
}

Vector ExplicitStrategy::Apply(const Vector& x) const { return MatVec(a_, x); }

const Matrix& ExplicitStrategy::Pinv() const {
  if (!have_pinv_) {
    pinv_ = PseudoInverse(a_);
    have_pinv_ = true;
  }
  return pinv_;
}

Vector ExplicitStrategy::Reconstruct(const Vector& y) const {
  return MatVec(Pinv(), y);
}

double ExplicitStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK(w.DomainSize() == a_.cols());
  Matrix wg = w.ExplicitGram();
  double sens = Sensitivity();
  return sens * sens * TracePinvGram(Gram(a_), wg);
}

// ------------------------------------------------------------ KronStrategy

KronStrategy::KronStrategy(std::vector<Matrix> factors, std::string name)
    : factors_(std::move(factors)), name_(std::move(name)) {
  HDMM_CHECK(!factors_.empty());
}

int64_t KronStrategy::DomainSize() const {
  int64_t n = 1;
  for (const Matrix& f : factors_) n *= f.cols();
  return n;
}

int64_t KronStrategy::NumQueries() const {
  int64_t m = 1;
  for (const Matrix& f : factors_) m *= f.rows();
  return m;
}

double KronStrategy::Sensitivity() const {
  // Memoized: MaxAbsColSum allocates a column-sum scratch per factor, and
  // SquaredError calls this on every evaluation — the cache keeps repeated
  // error evaluations allocation-free once warm.
  std::call_once(sensitivity_once_,
                 [this] { sensitivity_ = KronSensitivity(factors_); });
  return sensitivity_;
}

double KronStrategy::L2Sensitivity() const {
  return KronL2Sensitivity(factors_);
}

Vector KronStrategy::Apply(const Vector& x) const {
  return KronMatVec(factors_, x);
}

const std::vector<Matrix>& KronStrategy::FactorPinvs() const {
  if (pinvs_.empty()) {
    pinvs_.reserve(factors_.size());
    for (const Matrix& f : factors_) pinvs_.push_back(PseudoInverse(f));
  }
  return pinvs_;
}

Vector KronStrategy::Reconstruct(const Vector& y) const {
  return KronMatVec(FactorPinvs(), y);
}

const std::vector<PinvGramTracer>& KronStrategy::FactorTracers() const {
  std::call_once(tracers_once_, [this] {
    tracers_.reserve(factors_.size());
    for (const Matrix& f : factors_) tracers_.emplace_back(Gram(f));
  });
  return tracers_;
}

double KronStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK(w.DomainSize() == DomainSize());
  HDMM_CHECK(static_cast<int>(factors_.size()) ==
             w.domain().NumAttributes());
  // Theorem 6: ||W A^+||_F^2 = sum_j w_j^2 prod_i tr[(A_i^T A_i)^+ G_i^(j)].
  // The factor Grams and their inverses live on the strategy (FactorTracers)
  // and the workload Grams come shared from the GramCache, so once both are
  // warm a repeated evaluation materializes nothing.
  const std::vector<PinvGramTracer>& tracers = FactorTracers();
  double total = 0.0;
  for (const ProductWorkload& prod : w.products()) {
    double term = prod.weight * prod.weight;
    for (size_t i = 0; i < factors_.size(); ++i) {
      term *= tracers[i].Trace(*prod.FactorGramShared(static_cast<int>(i)));
    }
    total += term;
  }
  double sens = Sensitivity();
  return sens * sens * total;
}

// ------------------------------------------------------- UnionKronStrategy

UnionKronStrategy::UnionKronStrategy(
    std::vector<std::vector<Matrix>> parts,
    std::vector<std::vector<int>> group_products, std::string name)
    : parts_(std::move(parts)),
      group_products_(std::move(group_products)),
      name_(std::move(name)) {
  HDMM_CHECK(!parts_.empty());
  HDMM_CHECK(parts_.size() == group_products_.size());
  std::vector<std::shared_ptr<const LinearOperator>> blocks;
  for (const auto& factors : parts_)
    blocks.push_back(std::make_shared<KronOperator>(factors));
  op_ = std::make_shared<StackedOperator>(std::move(blocks));
}

int64_t UnionKronStrategy::DomainSize() const { return op_->Cols(); }

int64_t UnionKronStrategy::NumQueries() const { return op_->Rows(); }

double UnionKronStrategy::Sensitivity() const {
  // Memoized for the same reason as KronStrategy::Sensitivity.
  std::call_once(sensitivity_once_, [this] {
    double s = 0.0;
    for (const auto& factors : parts_) s += KronSensitivity(factors);
    sensitivity_ = s;
  });
  return sensitivity_;
}

double UnionKronStrategy::L2Sensitivity() const {
  // Columns of the stack concatenate the parts' columns, so squared norms
  // add per column; bounding each part's contribution by its own max column
  // norm gives max_j ||col_j||^2 <= sum_k max_j ||col_j of part k||^2. An
  // upper bound — sound to calibrate against, exact when the parts attain
  // their maxima in the same column (e.g. uniform-column-norm blocks).
  double sq = 0.0;
  for (const auto& factors : parts_) {
    const double part = KronL2Sensitivity(factors);
    sq += part * part;
  }
  return std::sqrt(sq);
}

Vector UnionKronStrategy::Apply(const Vector& x) const {
  return op_->Apply(x);
}

Vector UnionKronStrategy::Reconstruct(const Vector& y) const {
  LsmrResult res = LsmrSolve(*op_, y);
  return res.x;
}

const std::vector<std::vector<PinvGramTracer>>&
UnionKronStrategy::PartTracers() const {
  std::call_once(part_tracers_once_, [this] {
    part_tracers_.resize(parts_.size());
    for (size_t g = 0; g < parts_.size(); ++g) {
      part_tracers_[g].reserve(parts_[g].size());
      for (const Matrix& f : parts_[g]) part_tracers_[g].emplace_back(Gram(f));
    }
  });
  return part_tracers_;
}

double UnionKronStrategy::SquaredError(const UnionWorkload& w) const {
  HDMM_CHECK_MSG(static_cast<int>(group_products_.size()) >= 1,
                 "union strategy without group mapping");
  // Each group g answers the workload products assigned to it using its own
  // sub-strategy; the stacked sensitivity scales all measurements. Factor
  // Grams and inverses are memoized per part (PartTracers), so repeated
  // evaluations allocate nothing once the GramCache is warm.
  const std::vector<std::vector<PinvGramTracer>>& tracers = PartTracers();
  double total = 0.0;
  for (size_t g = 0; g < parts_.size(); ++g) {
    for (int j : group_products_[g]) {
      HDMM_CHECK(j >= 0 && j < w.NumProducts());
      const ProductWorkload& prod = w.products()[static_cast<size_t>(j)];
      double term = prod.weight * prod.weight;
      for (size_t i = 0; i < tracers[g].size(); ++i) {
        term *= tracers[g][i].Trace(
            *prod.FactorGramShared(static_cast<int>(i)));
      }
      total += term;
    }
  }
  double sens = Sensitivity();
  return sens * sens * total;
}

// ------------------------------------------------------- MarginalsStrategy

MarginalsStrategy::MarginalsStrategy(Domain domain, Vector theta,
                                     std::string name)
    : domain_(std::move(domain)),
      theta_(std::move(theta)),
      name_(std::move(name)),
      algebra_(domain_.sizes()) {
  HDMM_CHECK(theta_.size() == algebra_.num_masks());
}

std::vector<uint32_t> MarginalsStrategy::ActiveMasks() const {
  std::vector<uint32_t> masks;
  for (uint32_t a = 0; a < algebra_.num_masks(); ++a) {
    if (theta_[a] > 1e-12) masks.push_back(a);
  }
  HDMM_CHECK_MSG(!masks.empty(), "marginals strategy with all-zero weights");
  return masks;
}

std::vector<Matrix> MarginalsStrategy::MarginalFactors(uint32_t mask) const {
  std::vector<Matrix> factors;
  for (int i = 0; i < domain_.NumAttributes(); ++i) {
    const int64_t n = domain_.AttributeSize(i);
    factors.push_back(((mask >> i) & 1u) ? IdentityBlock(n) : TotalBlock(n));
  }
  return factors;
}

int64_t MarginalsStrategy::NumQueries() const {
  int64_t m = 0;
  for (uint32_t mask : ActiveMasks()) {
    int64_t cells = 1;
    for (int i = 0; i < domain_.NumAttributes(); ++i)
      if ((mask >> i) & 1u) cells *= domain_.AttributeSize(i);
    m += cells;
  }
  return m;
}

double MarginalsStrategy::Sensitivity() const {
  double s = 0.0;
  for (double t : theta_) s += std::fabs(t);
  return s;
}

double MarginalsStrategy::L2Sensitivity() const {
  // One record lands in exactly one cell of every active marginal, with
  // coefficient theta_a — every column of M(theta) has norm
  // sqrt(sum_a theta_a^2) exactly.
  double sq = 0.0;
  for (double t : theta_) sq += t * t;
  return std::sqrt(sq);
}

Vector MarginalsStrategy::Apply(const Vector& x) const {
  Vector out;
  for (uint32_t mask : ActiveMasks()) {
    Vector part = KronMatVec(MarginalFactors(mask), x);
    for (double& v : part) v *= theta_[mask];
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Vector MarginalsStrategy::Reconstruct(const Vector& y) const {
  // x_hat = (M^T M)^{-1} M^T y, with (M^T M)^{-1} = G(v) (Appendix A.4).
  const uint32_t masks = algebra_.num_masks();
  Vector u(masks);
  for (uint32_t a = 0; a < masks; ++a) u[a] = theta_[a] * theta_[a];
  Vector v = algebra_.InverseWeights(u);

  // M^T y: accumulate theta_a * (marginal factors)^T y_a.
  const int64_t n = domain_.TotalSize();
  Vector mty(static_cast<size_t>(n), 0.0);
  size_t offset = 0;
  for (uint32_t mask : ActiveMasks()) {
    std::vector<Matrix> factors = MarginalFactors(mask);
    int64_t rows = 1;
    for (const Matrix& f : factors) rows *= f.rows();
    Vector sub(y.begin() + static_cast<long>(offset),
               y.begin() + static_cast<long>(offset + static_cast<size_t>(rows)));
    Vector part = KronMatTVec(factors, sub);
    Axpy(theta_[mask], part, &mty);
    offset += static_cast<size_t>(rows);
  }
  HDMM_CHECK(offset == y.size());

  // G(v) * mty = sum_a v_a C(a) mty, each term a Kronecker mat-vec with
  // factors I or the all-ones matrix.
  Vector xhat(static_cast<size_t>(n), 0.0);
  for (uint32_t a = 0; a < masks; ++a) {
    if (v[a] == 0.0) continue;
    std::vector<Matrix> factors;
    for (int i = 0; i < domain_.NumAttributes(); ++i) {
      const int64_t ni = domain_.AttributeSize(i);
      factors.push_back(((a >> i) & 1u) ? IdentityBlock(ni)
                                        : Matrix::Ones(ni, ni));
    }
    Vector part = KronMatVec(factors, mty);
    Axpy(v[a], part, &xhat);
  }
  return xhat;
}

double MarginalsStrategy::SquaredError(const UnionWorkload& w) const {
  Vector tau = algebra_.WorkloadTraceVector(w);
  double tr = algebra_.TraceObjective(theta_, tau);
  double sens = Sensitivity();
  return sens * sens * tr;
}

// --------------------------------------------- MarginalsStreamReconstructor

namespace {

// Sums a per-mask measurement table (row-major over mask's attributes,
// ascending) down to the attributes in `sub` (sub subset of mask). Tables
// are marginal-sized, so the straightforward odometer pass is cheap.
Vector DownsumTable(const Domain& domain, uint32_t mask, uint32_t sub,
                    const Vector& in) {
  const int d = domain.NumAttributes();
  std::vector<int> attrs;
  for (int i = 0; i < d; ++i) {
    if ((mask >> i) & 1u) attrs.push_back(i);
  }
  const size_t k = attrs.size();
  std::vector<int64_t> in_stride(k, 1);
  for (size_t i = k; i-- > 1;) {
    in_stride[i - 1] = in_stride[i] * domain.AttributeSize(attrs[i]);
  }
  int64_t out_cells = 1;
  std::vector<int64_t> out_stride(k, 0);
  for (size_t i = k; i-- > 0;) {
    if ((sub >> attrs[i]) & 1u) {
      out_stride[i] = out_cells;
      out_cells *= domain.AttributeSize(attrs[i]);
    }
  }
  // out_stride above grew innermost-first; rebuild in row-major form.
  {
    int64_t s = 1;
    for (size_t i = k; i-- > 0;) {
      if ((sub >> attrs[i]) & 1u) {
        out_stride[i] = s;
        s *= domain.AttributeSize(attrs[i]);
      } else {
        out_stride[i] = 0;
      }
    }
  }
  Vector out(static_cast<size_t>(out_cells), 0.0);
  std::vector<int64_t> coord(k, 0);
  int64_t out_idx = 0;
  for (size_t cell = 0; cell < in.size(); ++cell) {
    out[static_cast<size_t>(out_idx)] += in[cell];
    size_t axis = k;
    while (axis-- > 0) {
      out_idx += out_stride[axis];
      if (++coord[axis] < domain.AttributeSize(attrs[axis])) break;
      out_idx -= coord[axis] * out_stride[axis];
      coord[axis] = 0;
    }
  }
  return out;
}

}  // namespace

MarginalsStreamReconstructor::MarginalsStreamReconstructor(
    const MarginalsStrategy& strategy, const Vector& y)
    : domain_(strategy.domain()) {
  const int d = domain_.NumAttributes();
  const MarginalsAlgebra algebra(domain_.sizes());
  const uint32_t full = algebra.num_masks() - 1;
  const Vector& theta = strategy.theta();
  Vector u(algebra.num_masks());
  for (uint32_t a = 0; a < algebra.num_masks(); ++a) u[a] = theta[a] * theta[a];
  const Vector v = algebra.InverseWeights(u);

  // Combined tables E_s in ascending-submask order (deterministic layout —
  // the backends' bit-identity rests on a fixed summation order).
  std::map<uint32_t, Vector> combined;
  size_t offset = 0;
  for (uint32_t m : strategy.ActiveMasks()) {
    int64_t cells = 1;
    for (int i = 0; i < d; ++i) {
      if ((m >> i) & 1u) cells *= domain_.AttributeSize(i);
    }
    HDMM_CHECK(offset + static_cast<size_t>(cells) <= y.size());
    const Vector raw(y.begin() + static_cast<long>(offset),
                     y.begin() + static_cast<long>(offset) +
                         static_cast<long>(cells));
    offset += static_cast<size_t>(cells);

    // K_{m,s} = theta_m sum_{b subset ~m} v_{s|b} prod_{i in ~m \ b} n_i:
    // every G(v) term with a & m == s lands on the same downsummed table.
    const uint32_t fm = full & ~m;
    uint32_t s = m;
    while (true) {
      double k = 0.0;
      uint32_t b = fm;
      while (true) {
        double mult = 1.0;
        for (int i = 0; i < d; ++i) {
          if (((fm >> i) & 1u) && !((b >> i) & 1u)) {
            mult *= static_cast<double>(domain_.AttributeSize(i));
          }
        }
        k += v[s | b] * mult;
        if (b == 0) break;
        b = (b - 1) & fm;
      }
      k *= theta[m];
      if (k != 0.0) {
        Vector t = DownsumTable(domain_, m, s, raw);
        Vector& e = combined[s];
        if (e.empty()) e.assign(t.size(), 0.0);
        HDMM_CHECK(e.size() == t.size());
        for (size_t i = 0; i < t.size(); ++i) e[i] += k * t[i];
      }
      if (s == 0) break;
      s = (s - 1) & m;
    }
  }
  HDMM_CHECK(offset == y.size());

  for (auto& [s, values] : combined) {
    Table table;
    table.values = std::move(values);
    table.stride.assign(static_cast<size_t>(d), 0);
    int64_t stride = 1;
    for (int i = d; i-- > 0;) {
      if ((s >> i) & 1u) {
        table.stride[static_cast<size_t>(i)] = stride;
        stride *= domain_.AttributeSize(i);
      }
    }
    // roll[j]: index delta when axis j increments and every inner axis
    // wraps from its maximum back to zero.
    table.roll.assign(static_cast<size_t>(d), 0);
    for (int j = 0; j < d; ++j) {
      int64_t roll = table.stride[static_cast<size_t>(j)];
      for (int i = j + 1; i < d; ++i) {
        roll -= (domain_.AttributeSize(i) - 1) *
                table.stride[static_cast<size_t>(i)];
      }
      table.roll[static_cast<size_t>(j)] = roll;
    }
    tables_.push_back(std::move(table));
  }
}

void MarginalsStreamReconstructor::Fill(int64_t begin, int64_t end,
                                        double* out) const {
  HDMM_CHECK(begin >= 0 && begin <= end && end <= domain_.TotalSize());
  if (begin == end) return;
  const int d = domain_.NumAttributes();
  std::vector<int64_t> coord = domain_.Unflatten(begin);
  const size_t nt = tables_.size();
  std::vector<int64_t> idx(nt, 0);
  for (size_t t = 0; t < nt; ++t) {
    for (int i = 0; i < d; ++i) {
      idx[t] += coord[static_cast<size_t>(i)] *
                tables_[t].stride[static_cast<size_t>(i)];
    }
  }
  for (int64_t c = begin; c < end; ++c) {
    double value = 0.0;
    for (size_t t = 0; t < nt; ++t) {
      value += tables_[t].values[static_cast<size_t>(idx[t])];
    }
    *out++ = value;
    int axis = d - 1;
    while (axis >= 0) {
      if (++coord[static_cast<size_t>(axis)] < domain_.AttributeSize(axis)) {
        break;
      }
      coord[static_cast<size_t>(axis)] = 0;
      --axis;
    }
    if (axis < 0) break;  // Walked past the final cell.
    for (size_t t = 0; t < nt; ++t) {
      idx[t] += tables_[t].roll[static_cast<size_t>(axis)];
    }
  }
}

}  // namespace hdmm
