#include "core/svd_bound.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/eigen_sym.h"
#include "linalg/svd.h"

namespace hdmm {

double WorkloadNuclearNorm(const UnionWorkload& w,
                           int64_t max_explicit_cells) {
  HDMM_CHECK_MSG(w.NumProducts() > 0, "empty workload");

  if (w.NumProducts() == 1) {
    // Multiplicativity over Kronecker factors: no expansion needed, so this
    // path works at any domain size.
    const ProductWorkload& p = w.products()[0];
    double norm = std::abs(p.weight);
    for (const Matrix& factor : p.factors) norm *= NuclearNorm(factor);
    return norm;
  }

  // Union of products: ||W||_* = sum_i sqrt(lambda_i(W^T W)). The Gram is
  // N x N, so guard the expansion.
  const int64_t n = w.DomainSize();
  HDMM_CHECK_MSG(n * n <= max_explicit_cells,
                 "union workload too large for explicit Gram nuclear norm");
  Matrix gram = w.ExplicitGram();
  // Only the spectrum is needed: skip eigenvector accumulation entirely.
  Vector lambdas = EigenvaluesSym(gram);
  double total = 0.0;
  for (double lambda : lambdas) {
    if (lambda > 0.0) total += std::sqrt(lambda);
  }
  return total;
}

double SquaredErrorLowerBound(const UnionWorkload& w,
                              int64_t max_explicit_cells) {
  const double nuclear = WorkloadNuclearNorm(w, max_explicit_cells);
  return nuclear * nuclear / static_cast<double>(w.DomainSize());
}

double TotalSquaredErrorLowerBound(const UnionWorkload& w, double epsilon) {
  HDMM_CHECK(epsilon > 0.0);
  return 2.0 / (epsilon * epsilon) * SquaredErrorLowerBound(w);
}

double OptimalityRatio(const Strategy& a, const UnionWorkload& w) {
  const double bound = SquaredErrorLowerBound(w);
  HDMM_CHECK_MSG(bound > 0.0, "degenerate workload: zero spectral bound");
  const double actual = a.SquaredError(w);
  return std::sqrt(actual / bound);
}

}  // namespace hdmm
