#include "core/opt0.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdmm {

int DefaultPFromSize(int64_t n) {
  return static_cast<int>(std::max<int64_t>(1, n / 16));
}

int DefaultP(const Matrix& workload_factor) {
  // "If an attribute's predicate set is contained in T u I, we set p = 1."
  bool simple = true;
  for (int64_t i = 0; i < workload_factor.rows() && simple; ++i) {
    const double* row = workload_factor.Row(i);
    int64_t nonzero = 0;
    bool all_ones = true;
    for (int64_t j = 0; j < workload_factor.cols(); ++j) {
      if (row[j] != 0.0) {
        ++nonzero;
        if (row[j] != 1.0) all_ones = false;
      }
    }
    bool is_point = (nonzero == 1 && all_ones);
    bool is_total = (nonzero == workload_factor.cols() && all_ones);
    if (!is_point && !is_total) simple = false;
  }
  if (simple) return 1;
  return DefaultPFromSize(workload_factor.cols());
}

Opt0Result Opt0WarmStart(const Matrix& gram, const Matrix& theta0,
                         const LbfgsbOptions& lbfgs) {
  const int p = static_cast<int>(theta0.rows());
  PIdentityObjective objective(gram, p);
  ObjectiveFn fn = [&objective](const Vector& x, Vector* grad) {
    return objective.Eval(x, grad);
  };
  Vector x0(theta0.data(), theta0.data() + theta0.size());
  LbfgsbResult res = MinimizeNonNegative(fn, std::move(x0), lbfgs);
  Opt0Result out;
  out.theta = Matrix(p, gram.rows(), std::move(res.x));
  // Report the error through the backward-stable dense path so the restart
  // selection can never be fooled by Woodbury cancellation at extreme Theta
  // (one O(n^3) evaluation per restart).
  out.error = PIdentityObjective::EvalReference(out.theta, gram);
  return out;
}

Opt0Result Opt0(const Matrix& gram, const Opt0Options& options, Rng* rng) {
  HDMM_CHECK(gram.rows() == gram.cols());
  const int64_t n = gram.rows();
  const int p = options.p > 0 ? options.p : DefaultPFromSize(n);

  Opt0Result best;
  best.error = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    // Cycle the initialization scale across restarts: the Theta = 0 basin
    // (the identity strategy, always a strict local minimum) captures some
    // scales on some workloads, and varying the scale escapes it.
    const double scale = options.init_hi / static_cast<double>(int64_t{1} << (r % 3));
    Matrix theta0 =
        Matrix::RandomUniform(p, n, rng, options.init_lo, scale);
    Opt0Result res = Opt0WarmStart(gram, theta0, options.lbfgs);
    if (res.error < best.error) best = std::move(res);
  }
  return best;
}

}  // namespace hdmm
