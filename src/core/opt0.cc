#include "core/opt0.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace hdmm {

int DefaultPFromSize(int64_t n) {
  return static_cast<int>(std::max<int64_t>(1, n / 16));
}

int DefaultP(const Matrix& workload_factor) {
  // "If an attribute's predicate set is contained in T u I, we set p = 1."
  bool simple = true;
  for (int64_t i = 0; i < workload_factor.rows() && simple; ++i) {
    const double* row = workload_factor.Row(i);
    int64_t nonzero = 0;
    bool all_ones = true;
    for (int64_t j = 0; j < workload_factor.cols(); ++j) {
      if (row[j] != 0.0) {
        ++nonzero;
        if (row[j] != 1.0) all_ones = false;
      }
    }
    bool is_point = (nonzero == 1 && all_ones);
    bool is_total = (nonzero == workload_factor.cols() && all_ones);
    if (!is_point && !is_total) simple = false;
  }
  if (simple) return 1;
  return DefaultPFromSize(workload_factor.cols());
}

Opt0Result Opt0WarmStart(const Matrix& gram, const Matrix& theta0,
                         const LbfgsbOptions& lbfgs, GemmParallelism par) {
  const int p = static_cast<int>(theta0.rows());
  PIdentityObjective objective(gram, p, par);
  // The counter update is an allocation-free relaxed store, so the
  // planner-smoke zero-alloc-per-Eval gate is unaffected (the static-local
  // registry lookup lands once, during warmup).
  static Counter* const evals = Metrics::GetCounter("optimizer.evals");
  ObjectiveFn fn = [&objective](const Vector& x, Vector* grad) {
    evals->Add(1);
    return objective.Eval(x, grad);
  };
  Vector x0(theta0.data(), theta0.data() + theta0.size());
  LbfgsbResult res = MinimizeNonNegative(fn, std::move(x0), lbfgs);
  Opt0Result out;
  out.theta = Matrix(p, gram.rows(), std::move(res.x));
  // Report the error through the backward-stable dense path so the restart
  // selection can never be fooled by Woodbury cancellation at extreme Theta
  // (one O(n^3) evaluation per restart).
  out.error = PIdentityObjective::EvalReference(out.theta, gram);
  return out;
}

Opt0Result Opt0(const Matrix& gram, const Opt0Options& options, Rng* rng) {
  HDMM_CHECK(gram.rows() == gram.cols());
  const int64_t n = gram.rows();
  const int p = options.p > 0 ? options.p : DefaultPFromSize(n);
  const int restarts = std::max(1, options.restarts);

  // Every restart draws its starting point from its own forked stream,
  // derived on the calling thread in restart order — so the set of starting
  // points (and hence the selected strategy) is a pure function of the seed,
  // not of the thread count or scheduling.
  std::vector<Matrix> theta0s;
  theta0s.reserve(static_cast<size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    // Cycle the initialization scale across restarts: the Theta = 0 basin
    // (the identity strategy, always a strict local minimum) captures some
    // scales on some workloads, and varying the scale escapes it.
    const double scale = options.init_hi / static_cast<double>(int64_t{1} << (r % 3));
    Rng child = rng->Fork(static_cast<uint64_t>(r));
    theta0s.push_back(
        Matrix::RandomUniform(p, n, &child, options.init_lo, scale));
  }

  // Fan the restarts out over the pool. Each restart runs its whole L-BFGS-B
  // trajectory serially inside one task (kSerial kernels: the inner loop is
  // allocation-free and the pool's width goes to restart-level parallelism);
  // a lone restart keeps pooled kernels so single-restart plans still use
  // the machine.
  const GemmParallelism par =
      restarts > 1 ? GemmParallelism::kSerial : GemmParallelism::kPooled;
  std::vector<Opt0Result> results(static_cast<size_t>(restarts));
  RestartPool().ParallelFor(0, restarts, /*grain=*/1, [&](int64_t r0,
                                                          int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      results[static_cast<size_t>(r)] =
          Opt0WarmStart(gram, theta0s[static_cast<size_t>(r)], options.lbfgs,
                        par);
    }
  });

  // Deterministic selection: restart 0 is kept unconditionally (so the
  // result always carries a valid parameterization even if every error came
  // out non-finite), later restarts only replace it on a strict improvement
  // — the lowest restart index wins ties at any thread count.
  Opt0Result best = std::move(results[0]);
  for (int r = 1; r < restarts; ++r) {
    if (results[static_cast<size_t>(r)].error < best.error)
      best = std::move(results[static_cast<size_t>(r)]);
  }
  return best;
}

}  // namespace hdmm
