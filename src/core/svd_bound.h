// The singular-value (spectral) lower bound on strategy error, after
// Li & Miklau, "Optimal error of query sets under the differentially-private
// matrix mechanism" (ICDT 2013) — reference [28] of the paper. Section 9
// notes that HDMM's distance to optimality is unknown in general; this module
// makes the bound computable (implicitly, for product workloads) so the gap
// can be measured. See bench/bench_lower_bound.cc for the measurements.
#ifndef HDMM_CORE_SVD_BOUND_H_
#define HDMM_CORE_SVD_BOUND_H_

#include "core/strategy.h"
#include "linalg/matrix.h"
#include "workload/workload.h"

namespace hdmm {

/// Nuclear norm ||W||_* of an implicit workload.
///
/// For a single product the norm is computed without expansion:
/// ||W_1 x ... x W_d||_* = prod_i ||W_i||_* (singular values of a Kronecker
/// product are the products of factor singular values). For unions of
/// products it is computed from the eigenvalues of the explicit Gram matrix
/// W^T W = sum_j w_j^2 (G_1^(j) x ... x G_d^(j)), which requires
/// N <= max_explicit_cells (dies beyond it).
double WorkloadNuclearNorm(const UnionWorkload& w,
                           int64_t max_explicit_cells = (int64_t{1} << 24));

/// Lower bound on ||A||_1^2 ||W A^+||_F^2 over every strategy A that
/// supports W:
///
///   ||A||_1^2 ||W A^+||_F^2  >=  ||W||_*^2 / N.
///
/// Proof sketch: W = (W A^+) A gives ||W||_* <= ||W A^+||_F ||A||_F
/// (von Neumann trace inequality), and each column's L2 norm is at most its
/// L1 sum, so ||A||_F^2 <= N ||A||_1^2. The bound is tight for W = I (any
/// scaled orthogonal strategy) and W = Total. Under pure epsilon-DP it can
/// be loose for range-type workloads (the Section 9 caveat), which is
/// exactly what the optimality-gap bench quantifies.
double SquaredErrorLowerBound(const UnionWorkload& w,
                              int64_t max_explicit_cells = (int64_t{1} << 24));

/// Err(W, *) lower bound at budget epsilon: (2 / eps^2) * ||W||_*^2 / N.
double TotalSquaredErrorLowerBound(const UnionWorkload& w, double epsilon);

/// sqrt(actual / bound) >= 1: how far a strategy's error is from the
/// spectral bound, on the same root-scale as the paper's error ratios.
/// A value of 1 certifies optimality; small values bound HDMM's possible
/// further improvement.
double OptimalityRatio(const Strategy& a, const UnionWorkload& w);

}  // namespace hdmm

#endif  // HDMM_CORE_SVD_BOUND_H_
