// Strategy persistence. Section 3.6 of the paper motivates this directly:
// "if the workload is fixed, the optimized strategy A can be computed once
// and used for multiple invocations of measure and reconstruct (i.e. on
// different input datasets and/or for different outputs generated with
// different epsilon values)" — the Census workload changes once a decade
// while releases recur. This module round-trips every strategy type the
// optimizers produce through a line-oriented text format:
//
//   hdmm-strategy v1
//   kind kron                      # explicit | kron | union-kron | marginals
//   name opt-kron
//   factor 5x4 0.25,0,0,0,...      # row-major entries
//   factor 3x2 ...
//
// union-kron adds `part <k>` headers and `covers i j ...` lines (the
// workload products each part answers); marginals stores the domain sizes
// and the 2^d theta weights.
#ifndef HDMM_CORE_STRATEGY_IO_H_
#define HDMM_CORE_STRATEGY_IO_H_

#include <memory>
#include <string>

#include "core/strategy.h"

namespace hdmm {

/// Renders a strategy in the persistence format. Dies on strategy types
/// outside the four library representations.
std::string SerializeStrategy(const Strategy& strategy);

/// Parses the persistence format. Returns nullptr and fills *error with a
/// line-numbered message on malformed input.
std::unique_ptr<Strategy> ParseStrategy(const std::string& text,
                                        std::string* error);

/// SerializeStrategy to a file. Returns false (with *error) on I/O failure.
bool SaveStrategyFile(const std::string& path, const Strategy& strategy,
                      std::string* error);

/// ParseStrategy from a file.
std::unique_ptr<Strategy> LoadStrategyFile(const std::string& path,
                                           std::string* error);

}  // namespace hdmm

#endif  // HDMM_CORE_STRATEGY_IO_H_
