// Strategy persistence. Section 3.6 of the paper motivates this directly:
// "if the workload is fixed, the optimized strategy A can be computed once
// and used for multiple invocations of measure and reconstruct (i.e. on
// different input datasets and/or for different outputs generated with
// different epsilon values)" — the Census workload changes once a decade
// while releases recur. This module round-trips every strategy type the
// optimizers produce through a line-oriented text format:
//
//   hdmm-strategy v1
//   kind kron                      # explicit | kron | union-kron | marginals
//   name opt-kron
//   factor 5x4 0.25,0,0,0,...      # row-major entries
//   factor 3x2 ...
//
// union-kron adds `part <k>` headers and `covers i j ...` lines (the
// workload products each part answers); marginals stores the domain sizes
// and the 2^d theta weights.
#ifndef HDMM_CORE_STRATEGY_IO_H_
#define HDMM_CORE_STRATEGY_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/strategy.h"

namespace hdmm {

/// Renders a strategy in the persistence format. Dies on strategy types
/// outside the four library representations.
std::string SerializeStrategy(const Strategy& strategy);

/// Parses the persistence format. Returns nullptr and fills *error with a
/// line-numbered message on malformed input. Malformed input of any shape —
/// truncated header, wrong magic, short payloads, trailing garbage — is an
/// environmental condition, never an abort.
std::unique_ptr<Strategy> ParseStrategy(const std::string& text,
                                        std::string* error);

/// SerializeStrategy to a file. Returns false (with *error) on I/O failure.
bool SaveStrategyFile(const std::string& path, const Strategy& strategy,
                      std::string* error);

/// ParseStrategy from a file.
std::unique_ptr<Strategy> LoadStrategyFile(const std::string& path,
                                           std::string* error);

/// Status-returning load, distinguishing the conditions callers react to
/// differently:
///
///   kNotFound     the file does not exist (a plain cache miss)
///   kIoError      it exists but cannot be read (permissions, bad media)
///   kCorruption   it reads but does not parse (quarantine candidate)
///
/// Failpoint: `strategy_io.load.io_error` injects kIoError.
Status LoadStrategyFileOr(const std::string& path,
                          std::unique_ptr<Strategy>* out);

}  // namespace hdmm

#endif  // HDMM_CORE_STRATEGY_IO_H_
