#include "core/nnls.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/gemm.h"

namespace hdmm {
namespace {

void ProjectNonNegative(Vector* x) {
  for (double& v : *x) v = std::max(v, 0.0);
}

// Largest eigenvalue of A^T A by power iteration (deterministic seed; the
// estimate only needs ~2 digits for a safe step size). For a dense operator
// with few enough columns the Gram matrix is formed once with the SYRK
// kernel and iterated on directly: each step then costs one n^2 MatVec
// instead of two m x n operator sweeps. Forming the Gram costs m*n^2 MACs
// and each iteration saves 2mn - n^2, so it pays off roughly when
// n < iterations (exactly, for square A; conservative for tall A).
double EstimateLipschitz(const LinearOperator& a, int iterations) {
  const int64_t n = a.Cols();
  Rng rng(12345);
  Vector v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  double norm = Norm2(v);
  HDMM_CHECK(norm > 0.0);
  Scale(1.0 / norm, &v);

  const auto* dense = n <= iterations
                          ? dynamic_cast<const DenseOperator*>(&a)
                          : nullptr;
  Matrix gram;
  if (dense != nullptr) GramInto(dense->matrix(), &gram);

  double lambda = 1.0;
  Vector av, atav;
  for (int it = 0; it < iterations; ++it) {
    if (dense != nullptr) {
      atav = MatVec(gram, v);
    } else {
      a.Apply(v, &av);
      a.ApplyTranspose(av, &atav);
    }
    lambda = Norm2(atav);
    if (lambda <= 1e-300) return 1.0;  // A == 0: any step size works.
    v = atav;
    Scale(1.0 / lambda, &v);
  }
  return lambda;
}

double Objective(const LinearOperator& a, const Vector& y, const Vector& x,
                 Vector* scratch) {
  a.Apply(x, scratch);
  double obj = 0.0;
  for (size_t i = 0; i < scratch->size(); ++i) {
    const double diff = (*scratch)[i] - y[i];
    obj += diff * diff;
  }
  return obj;
}

}  // namespace

NnlsResult SolveNnls(const LinearOperator& a, const Vector& y,
                     const NnlsOptions& options) {
  return SolveNnls(a, y, Vector(static_cast<size_t>(a.Cols()), 0.0), options);
}

NnlsResult SolveNnls(const LinearOperator& a, const Vector& y, Vector x0,
                     const NnlsOptions& options) {
  HDMM_CHECK(static_cast<int64_t>(y.size()) == a.Rows());
  HDMM_CHECK(static_cast<int64_t>(x0.size()) == a.Cols());

  // Step size 1/L with L = ||A^T A||_2 (a safety margin absorbs the power
  // iteration's underestimate).
  const double lipschitz =
      1.05 * EstimateLipschitz(a, options.power_iterations);
  const double step = 1.0 / lipschitz;

  ProjectNonNegative(&x0);
  Vector x = x0;            // Current iterate.
  Vector z = x;             // Extrapolated point.
  double t = 1.0;           // Nesterov momentum parameter.

  Vector az, grad, residual;
  double prev_obj = Objective(a, y, x, &residual);

  NnlsResult result;
  result.x = x;
  result.objective = prev_obj;

  for (int it = 0; it < options.max_iterations; ++it) {
    // FISTA step at the extrapolated point, in the f(x) = 1/2 ||Ax - y||^2
    // convention: x_next = P_+(z - (1/L) A^T (A z - y)), L = ||A^T A||_2.
    a.Apply(z, &az);
    for (size_t i = 0; i < az.size(); ++i) az[i] -= y[i];
    a.ApplyTranspose(az, &grad);

    Vector x_next = z;
    Axpy(-step, grad, &x_next);
    ProjectNonNegative(&x_next);

    // Momentum update.
    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    z = x_next;
    const double beta = (t - 1.0) / t_next;
    for (size_t i = 0; i < z.size(); ++i) {
      z[i] += beta * (x_next[i] - x[i]);
    }
    // The extrapolated point may leave the orthant; that is fine for FISTA,
    // the projection happens after the gradient step.

    const double obj = Objective(a, y, x_next, &residual);
    result.iterations = it + 1;
    if (obj > prev_obj) {
      // Function-value restart: drop the momentum when it overshoots.
      t = 1.0;
      z = x_next;
    } else {
      t = t_next;
    }

    const double change = std::abs(prev_obj - obj);
    x = std::move(x_next);
    result.x = x;
    result.objective = obj;
    if (change <= options.tolerance * std::max(1.0, prev_obj)) {
      result.converged = true;
      break;
    }
    prev_obj = obj;
  }
  return result;
}

}  // namespace hdmm
