// Approximate-DP ((epsilon, delta)) measurement via the Gaussian mechanism.
// Section 3.5 of the paper notes the HDMM machinery "also appl[ies] to a
// version of MM satisfying approximate differential privacy (delta > 0)":
// the only changes are L2 (not L1) sensitivity and Gaussian (not Laplace)
// noise; selection, measurement, and reconstruction are otherwise identical.
#ifndef HDMM_CORE_GAUSSIAN_H_
#define HDMM_CORE_GAUSSIAN_H_

#include "common/rng.h"
#include "core/strategy.h"
#include "linalg/matrix.h"

namespace hdmm {

/// L2 sensitivity of an explicit strategy: max column Euclidean norm.
double L2Sensitivity(const Matrix& a);

/// L2 sensitivity of a Kronecker strategy: columns of a Kronecker product
/// are Kronecker products of columns, and ||u x v||_2 = ||u||_2 ||v||_2, so
/// the sensitivity is the product of the factor sensitivities.
double KronL2Sensitivity(const std::vector<Matrix>& factors);

/// Classic Gaussian-mechanism noise scale sigma for (epsilon, delta)-DP
/// (epsilon <= 1 regime): sigma = sens * sqrt(2 ln(1.25/delta)) / epsilon.
double GaussianNoiseScale(double l2_sensitivity, double epsilon, double delta);

/// MEASURE under (epsilon, delta)-DP: y = A x + N(0, sigma^2)^m. The caller
/// supplies the L2 sensitivity of the strategy.
Vector MeasureGaussian(const Strategy& strategy, const Vector& x,
                       double l2_sensitivity, double epsilon, double delta,
                       Rng* rng);

/// Expected total squared error of the workload answers under Gaussian
/// measurement: sigma^2 * ||W A^+||_F^2. `trace_term` is ||W A^+||_F^2
/// (i.e., Strategy::SquaredError divided by the L1 sensitivity squared).
double GaussianTotalSquaredError(double trace_term, double l2_sensitivity,
                                 double epsilon, double delta);

}  // namespace hdmm

#endif  // HDMM_CORE_GAUSSIAN_H_
