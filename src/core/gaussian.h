// Approximate-DP measurement via the Gaussian mechanism, in two calibrations.
// Section 3.5 of the paper notes the HDMM machinery "also appl[ies] to a
// version of MM satisfying approximate differential privacy (delta > 0)":
// the only changes are L2 (not L1) sensitivity and Gaussian (not Laplace)
// noise; selection, measurement, and reconstruction are otherwise identical.
//
// Two sound ways to set sigma:
//
//   classic   sigma = sens * sqrt(2 ln(1.25/delta)) / eps, valid ONLY for
//             eps < 1 (Dwork & Roth, Thm A.1 — the tail bound underlying the
//             constant 1.25 fails at eps >= 1, where the formula yields a
//             sigma that does NOT deliver (eps, delta)-DP).
//   zCDP      sigma = sens / sqrt(2 rho) gives rho-zCDP exactly, for any
//             rho > 0 (Bun & Steinke, Prop 1.6). rho-zCDP implies
//             (rho + 2 sqrt(rho ln(1/delta)), delta)-DP for every delta
//             (Prop 1.3), composes additively, and is the regime the HDMM
//             journal version (McKenna et al. 2021) accounts Gaussian
//             measurements in. This is the path the serving engine uses.
#ifndef HDMM_CORE_GAUSSIAN_H_
#define HDMM_CORE_GAUSSIAN_H_

#include "common/rng.h"
#include "core/strategy.h"
#include "linalg/matrix.h"

namespace hdmm {

/// L2 sensitivity of an explicit strategy: max column Euclidean norm.
double L2Sensitivity(const Matrix& a);

/// L2 sensitivity of a Kronecker strategy: columns of a Kronecker product
/// are Kronecker products of columns, and ||u x v||_2 = ||u||_2 ||v||_2, so
/// the sensitivity is the product of the factor sensitivities.
double KronL2Sensitivity(const std::vector<Matrix>& factors);

/// Classic Gaussian-mechanism noise scale sigma for (epsilon, delta)-DP:
/// sigma = sens * sqrt(2 ln(1.25/delta)) / epsilon. Dies unless
/// 0 < epsilon < 1 — the classic analysis is invalid at epsilon >= 1, where
/// this formula silently under-noises; large-epsilon callers must go through
/// the zCDP calibration (GaussianSigmaFromRho with rho = RhoFromEpsilonDelta).
double GaussianNoiseScale(double l2_sensitivity, double epsilon, double delta);

// --- zCDP calibration and Bun-Steinke conversions ---------------------------

/// Noise scale delivering rho-zCDP: sigma = sens / sqrt(2 rho)
/// (Bun & Steinke, Prop 1.6). Valid for every rho > 0.
double GaussianSigmaFromRho(double l2_sensitivity, double rho);

/// The zCDP cost of a Gaussian release at a given sigma:
/// rho = sens^2 / (2 sigma^2). Inverse of GaussianSigmaFromRho.
double RhoFromGaussianSigma(double l2_sensitivity, double sigma);

/// rho-zCDP implies (eps, delta)-DP with eps = rho + 2 sqrt(rho ln(1/delta))
/// (Bun & Steinke, Prop 1.3). Used to report a zCDP ledger in (eps, delta).
double RhoToEpsilon(double rho, double delta);

/// Largest rho whose Bun-Steinke (eps, delta) guarantee stays within the
/// given eps: the exact inverse of RhoToEpsilon in rho, i.e.
/// rho = (sqrt(ln(1/delta) + eps) - sqrt(ln(1/delta)))^2.
double RhoFromEpsilonDelta(double epsilon, double delta);

/// Pure eps-DP implies (eps^2/2)-zCDP (Bun & Steinke, Prop 1.4): the cost of
/// accounting a Laplace measurement inside a zCDP ledger.
double PureDpToRho(double epsilon);

/// MEASURE under (epsilon, delta)-DP with the classic calibration:
/// y = A x + N(0, sigma^2)^m. The caller supplies the L2 sensitivity of the
/// strategy. Same epsilon < 1 restriction as GaussianNoiseScale; prefer
/// Strategy::MeasureGaussian (zCDP) in new code.
Vector MeasureGaussian(const Strategy& strategy, const Vector& x,
                       double l2_sensitivity, double epsilon, double delta,
                       Rng* rng);

/// Expected total squared error of the workload answers under Gaussian
/// measurement: sigma^2 * ||W A^+||_F^2. `trace_term` is ||W A^+||_F^2
/// (i.e., Strategy::SquaredError divided by the L1 sensitivity squared).
double GaussianTotalSquaredError(double trace_term, double l2_sensitivity,
                                 double epsilon, double delta);

}  // namespace hdmm

#endif  // HDMM_CORE_GAUSSIAN_H_
