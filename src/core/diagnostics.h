// Strategy diagnostics: the support constraint of Problem 1 and numerical
// health checks. A strategy A supports a workload W iff every workload query
// is a linear combination of strategy queries — W A^+ A = W — which the
// optimizers guarantee by construction (p-Identity strategies contain a
// scaled identity; M(theta) requires theta_full > 0) but user-supplied or
// deserialized strategies may violate. Reconstruction against a
// non-supporting strategy silently produces biased answers, so deployments
// should gate on these checks.
#ifndef HDMM_CORE_DIAGNOSTICS_H_
#define HDMM_CORE_DIAGNOSTICS_H_

#include <string>

#include "core/strategy.h"
#include "workload/workload.h"

namespace hdmm {

/// Explicit support check: ||W A^+ A - W||_max <= tol. O(N^3); for modest
/// domains or per-attribute factors.
bool SupportsWorkloadExplicit(const Matrix& w, const Matrix& a,
                              double tol = 1e-8);

/// Support check for an implicit workload against a library strategy.
///
/// * KronStrategy: exact per-factor reduction — a product workload
///   W_1 x ... x W_d is supported iff rowspace(W_i) <= rowspace(A_i) for
///   every i, so each factor is checked explicitly at per-attribute cost.
/// * MarginalsStrategy: supported iff theta on the full marginal is
///   positive (M then spans the full contingency table).
/// * ExplicitStrategy: direct check (requires modest N).
/// * UnionKronStrategy: per-group check of the group's products against the
///   group's part (the Definition 11 inference convention).
bool SupportsWorkload(const Strategy& strategy, const UnionWorkload& w,
                      double tol = 1e-8);

/// Numerical health report for a strategy.
struct StrategyReport {
  std::string name;
  int64_t num_queries = 0;
  int64_t domain_size = 0;
  double l1_sensitivity = 0.0;   ///< Laplace calibration norm (Section 3.5).
  double l2_sensitivity = 0.0;   ///< Gaussian calibration norm.
  int64_t rank = 0;              ///< Numerical rank of A.
  double condition_number = 0.0; ///< sigma_max / sigma_min_positive.
  bool full_column_rank = false; ///< rank == domain_size: supports anything.
};

/// Builds the report. Explicit and Kron strategies are analyzed exactly
/// (Kron: rank and conditioning multiply across factors); other types are
/// expanded when N <= max_explicit_cells and die beyond it.
StrategyReport DescribeStrategy(const Strategy& strategy,
                                int64_t max_explicit_cells = (int64_t{1}
                                                              << 22));

/// Human-readable rendering of a report (used by hdmm_cli).
std::string ReportToString(const StrategyReport& report);

/// Error-vs-optimal diagnostics for a served plan: the spectral
/// (Hardt–Talwar / Li–Miklau) lower bound on Err(W, *) next to the
/// strategy's achieved Err(W, A), reduced to one percentage on the paper's
/// root-error scale. 100% certifies the plan optimal; 80% means no strategy
/// whatsoever can beat this plan's root error by more than 25%.
struct SessionDiagnostics {
  double epsilon = 0.0;
  double lower_bound_total_sq = 0.0;  ///< Bound on Err(W, *) at epsilon.
  double achieved_total_sq = 0.0;     ///< Err(W, A) for the served strategy.
  double pct_of_optimal = 0.0;  ///< 100 * sqrt(bound / achieved), in (0, 100].
  bool computable = false;  ///< False when the bound needs explicit expansion
                            ///< beyond max_explicit_cells (see note).
  std::string note;
};

/// Computes the diagnostics. The bound is implicit (no expansion) for
/// single-product workloads at any domain size; unions of products need the
/// explicit Gram spectrum, so beyond `max_explicit_cells` the result has
/// computable = false and a note instead of dying. pct_of_optimal is
/// epsilon-independent (the (2/eps^2) factor cancels), but both error
/// figures are reported at the session's epsilon for interpretability.
SessionDiagnostics DiagnoseSession(const Strategy& strategy,
                                   const UnionWorkload& w, double epsilon,
                                   int64_t max_explicit_cells = (int64_t{1}
                                                                 << 12));

}  // namespace hdmm

#endif  // HDMM_CORE_DIAGNOSTICS_H_
