#include "core/strategy_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"

namespace hdmm {
namespace {

constexpr char kHeader[] = "hdmm-strategy v1";

void AppendDouble(std::ostringstream* out, double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    *out << static_cast<int64_t>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out << buf;
  }
}

void AppendMatrixLine(std::ostringstream* out, const char* tag,
                      const Matrix& m) {
  *out << tag << " " << m.rows() << "x" << m.cols() << " ";
  for (int64_t i = 0; i < m.size(); ++i) {
    if (i > 0) *out << ",";
    AppendDouble(out, m.data()[i]);
  }
  *out << "\n";
}

// --- Parsing helpers ---------------------------------------------------------

struct LineReader {
  std::istringstream in;
  std::string line;
  int line_no = 0;
  bool eof = false;

  explicit LineReader(const std::string& text) : in(text) {}

  // Advances to the next non-empty line; returns false at end of input.
  bool Next() {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos)
        return true;
    }
    eof = true;
    return false;
  }

  std::string Error(const std::string& message) const {
    return "line " + std::to_string(line_no) + ": " + message;
  }
};

bool ParseMatrixLine(const std::string& line, const std::string& tag,
                     Matrix* out, std::string* why) {
  std::istringstream in(line);
  std::string word, shape, payload, extra;
  in >> word >> shape >> payload;
  if (word != tag) {
    *why = "expected '" + tag + "' line";
    return false;
  }
  if (in >> extra) {
    *why = "trailing garbage '" + extra + "' after matrix payload";
    return false;
  }
  const size_t x = shape.find('x');
  if (x == std::string::npos) {
    *why = "bad shape '" + shape + "'";
    return false;
  }
  // Strict shape parse: both numbers fully consumed, positive, and small
  // enough that rows * cols cannot overflow — a corrupt shape must become a
  // parse error here, never a giant allocation or UB downstream.
  char* end = nullptr;
  const int64_t rows = std::strtoll(shape.c_str(), &end, 10);
  if (end != shape.c_str() + x) {
    *why = "bad shape '" + shape + "'";
    return false;
  }
  const int64_t cols = std::strtoll(shape.c_str() + x + 1, &end, 10);
  if (end != shape.c_str() + shape.size()) {
    *why = "bad shape '" + shape + "'";
    return false;
  }
  constexpr int64_t kMaxDim = int64_t{1} << 31;
  if (rows <= 0 || cols <= 0 || rows > kMaxDim || cols > kMaxDim) {
    *why = "bad shape '" + shape + "'";
    return false;
  }
  std::vector<double> data;
  // Reserve from the payload's actual size, not the claimed shape: memory
  // stays bounded by the bytes we were actually handed.
  data.reserve(payload.size() / 2 + 1);
  std::string token;
  std::istringstream values(payload);
  while (std::getline(values, token, ',')) {
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      *why = "bad entry '" + token + "'";
      return false;
    }
    data.push_back(v);
  }
  if (rows > static_cast<int64_t>(data.size()) ||
      static_cast<int64_t>(data.size()) != rows * cols) {
    *why = "entry count does not match shape";
    return false;
  }
  *out = Matrix(rows, cols, std::move(data));
  return true;
}

// Reads "key value value ..." integer lines.
bool ParseIntList(const std::string& line, const std::string& tag,
                  std::vector<int64_t>* out, std::string* why) {
  std::istringstream in(line);
  std::string word;
  in >> word;
  if (word != tag) {
    *why = "expected '" + tag + "' line";
    return false;
  }
  int64_t v;
  while (in >> v) out->push_back(v);
  if (in.fail() && !in.eof()) {
    *why = "bad integer in '" + tag + "' line";
    return false;
  }
  return true;
}

std::unique_ptr<Strategy> ParseExplicit(LineReader* reader,
                                        const std::string& name,
                                        std::string* error) {
  if (!reader->Next()) {
    *error = reader->Error("missing 'matrix' line");
    return nullptr;
  }
  Matrix m;
  std::string why;
  if (!ParseMatrixLine(reader->line, "matrix", &m, &why)) {
    *error = reader->Error(why);
    return nullptr;
  }
  if (reader->Next()) {
    *error = reader->Error("trailing garbage after 'matrix' line");
    return nullptr;
  }
  return std::make_unique<ExplicitStrategy>(std::move(m), name);
}

std::unique_ptr<Strategy> ParseKron(LineReader* reader,
                                    const std::string& name,
                                    std::string* error) {
  std::vector<Matrix> factors;
  while (reader->Next()) {
    Matrix m;
    std::string why;
    if (!ParseMatrixLine(reader->line, "factor", &m, &why)) {
      *error = reader->Error(why);
      return nullptr;
    }
    factors.push_back(std::move(m));
  }
  if (factors.empty()) {
    *error = "kron strategy has no factors";
    return nullptr;
  }
  return std::make_unique<KronStrategy>(std::move(factors), name);
}

std::unique_ptr<Strategy> ParseUnionKron(LineReader* reader,
                                         const std::string& name,
                                         std::string* error) {
  std::vector<std::vector<Matrix>> parts;
  std::vector<std::vector<int>> covers;
  while (reader->Next()) {
    if (reader->line.rfind("part", 0) == 0) {
      parts.emplace_back();
      covers.emplace_back();
      continue;
    }
    if (parts.empty()) {
      *error = reader->Error("expected 'part' before factors");
      return nullptr;
    }
    if (reader->line.rfind("covers", 0) == 0) {
      std::vector<int64_t> ids;
      std::string why;
      if (!ParseIntList(reader->line, "covers", &ids, &why)) {
        *error = reader->Error(why);
        return nullptr;
      }
      for (int64_t id : ids) {
        // Product ids index into the serving workload: a negative or absurd
        // id is corruption, and letting it through would trip a contract
        // check (abort) at first expected-error evaluation.
        if (id < 0 || id > (int64_t{1} << 31)) {
          *error = reader->Error("bad product id in 'covers' line");
          return nullptr;
        }
        covers.back().push_back(static_cast<int>(id));
      }
      continue;
    }
    Matrix m;
    std::string why;
    if (!ParseMatrixLine(reader->line, "factor", &m, &why)) {
      *error = reader->Error(why);
      return nullptr;
    }
    parts.back().push_back(std::move(m));
  }
  if (parts.empty()) {
    *error = "union-kron strategy has no parts";
    return nullptr;
  }
  for (const auto& p : parts) {
    if (p.empty()) {
      *error = "union-kron part has no factors";
      return nullptr;
    }
  }
  // Every part must cover the same domain, factor by factor. Truncated or
  // spliced input that drops a factor from a later part would otherwise
  // construct a strategy whose parts disagree on the domain size and trip a
  // contract check (abort) inside the stacked measurement operator.
  for (size_t p = 1; p < parts.size(); ++p) {
    if (parts[p].size() != parts[0].size()) {
      *error = "union-kron parts disagree on factor count";
      return nullptr;
    }
    for (size_t i = 0; i < parts[p].size(); ++i) {
      if (parts[p][i].cols() != parts[0][i].cols()) {
        *error = "union-kron parts disagree on domain sizes";
        return nullptr;
      }
    }
  }
  return std::make_unique<UnionKronStrategy>(std::move(parts),
                                             std::move(covers), name);
}

std::unique_ptr<Strategy> ParseMarginals(LineReader* reader,
                                         const std::string& name,
                                         std::string* error) {
  if (!reader->Next()) {
    *error = reader->Error("missing 'domain' line");
    return nullptr;
  }
  std::vector<int64_t> sizes;
  std::string why;
  if (!ParseIntList(reader->line, "domain", &sizes, &why)) {
    *error = reader->Error(why);
    return nullptr;
  }
  if (sizes.empty()) {
    *error = reader->Error("empty domain");
    return nullptr;
  }
  // Corruption guards: the MarginalsStrategy constructor's contracts
  // (positive sizes, 2^d masks, a nonempty active set) must be established
  // here — a bad cache file has to surface as a parse error, not an abort.
  if (sizes.size() > 30) {
    *error = reader->Error("marginals domain has more than 30 attributes");
    return nullptr;
  }
  for (int64_t size : sizes) {
    if (size < 1) {
      *error = reader->Error("non-positive attribute size in 'domain' line");
      return nullptr;
    }
  }
  if (!reader->Next()) {
    *error = reader->Error("missing 'theta' line");
    return nullptr;
  }
  std::istringstream in(reader->line);
  std::string word;
  in >> word;
  if (word != "theta") {
    *error = reader->Error("expected 'theta' line");
    return nullptr;
  }
  Vector theta;
  double v;
  while (in >> v) theta.push_back(v);
  if (in.fail() && !in.eof()) {
    *error = reader->Error("bad weight in 'theta' line");
    return nullptr;
  }
  const size_t expected = size_t{1} << sizes.size();
  if (theta.size() != expected) {
    *error = reader->Error("theta needs exactly 2^d = " +
                           std::to_string(expected) + " weights");
    return nullptr;
  }
  bool any_active = false;
  for (double w : theta) {
    if (!std::isfinite(w) || w < 0.0) {
      *error = reader->Error("theta weights must be finite and non-negative");
      return nullptr;
    }
    if (w > 1e-12) any_active = true;
  }
  if (!any_active) {
    *error = reader->Error("marginals strategy with all-zero weights");
    return nullptr;
  }
  if (reader->Next()) {
    *error = reader->Error("trailing garbage after 'theta' line");
    return nullptr;
  }
  return std::make_unique<MarginalsStrategy>(Domain(std::move(sizes)),
                                             std::move(theta), name);
}

}  // namespace

std::string SerializeStrategy(const Strategy& strategy) {
  std::ostringstream out;
  out << kHeader << "\n";
  if (const auto* e = dynamic_cast<const ExplicitStrategy*>(&strategy)) {
    out << "kind explicit\nname " << e->Name() << "\n";
    AppendMatrixLine(&out, "matrix", e->matrix());
    return out.str();
  }
  if (const auto* k = dynamic_cast<const KronStrategy*>(&strategy)) {
    out << "kind kron\nname " << k->Name() << "\n";
    for (const Matrix& f : k->factors()) AppendMatrixLine(&out, "factor", f);
    return out.str();
  }
  if (const auto* u = dynamic_cast<const UnionKronStrategy*>(&strategy)) {
    out << "kind union-kron\nname " << u->Name() << "\n";
    for (int p = 0; p < u->NumParts(); ++p) {
      out << "part\n";
      out << "covers";
      for (int id : u->group_products()[static_cast<size_t>(p)]) {
        out << " " << id;
      }
      out << "\n";
      for (const Matrix& f : u->parts()[static_cast<size_t>(p)]) {
        AppendMatrixLine(&out, "factor", f);
      }
    }
    return out.str();
  }
  if (const auto* m = dynamic_cast<const MarginalsStrategy*>(&strategy)) {
    out << "kind marginals\nname " << m->Name() << "\n";
    out << "domain";
    for (int i = 0; i < m->domain().NumAttributes(); ++i) {
      out << " " << m->domain().AttributeSize(i);
    }
    out << "\ntheta";
    for (double v : m->theta()) {
      out << " ";
      AppendDouble(&out, v);
    }
    out << "\n";
    return out.str();
  }
  HDMM_CHECK_MSG(false, "unknown strategy type for serialization");
  return "";
}

std::unique_ptr<Strategy> ParseStrategy(const std::string& text,
                                        std::string* error) {
  HDMM_CHECK(error != nullptr);
  LineReader reader(text);
  if (!reader.Next() || reader.line != kHeader) {
    *error = "missing 'hdmm-strategy v1' header";
    return nullptr;
  }
  if (!reader.Next() || reader.line.rfind("kind ", 0) != 0) {
    *error = reader.Error("missing 'kind' line");
    return nullptr;
  }
  const std::string kind = reader.line.substr(5);
  if (!reader.Next() || reader.line.rfind("name ", 0) != 0) {
    *error = reader.Error("missing 'name' line");
    return nullptr;
  }
  const std::string name = reader.line.substr(5);

  if (kind == "explicit") return ParseExplicit(&reader, name, error);
  if (kind == "kron") return ParseKron(&reader, name, error);
  if (kind == "union-kron") return ParseUnionKron(&reader, name, error);
  if (kind == "marginals") return ParseMarginals(&reader, name, error);
  *error = reader.Error("unknown strategy kind '" + kind + "'");
  return nullptr;
}

bool SaveStrategyFile(const std::string& path, const Strategy& strategy,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << SerializeStrategy(strategy);
  out.flush();
  if (!out) {
    *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::unique_ptr<Strategy> LoadStrategyFile(const std::string& path,
                                           std::string* error) {
  std::unique_ptr<Strategy> strategy;
  const Status status = LoadStrategyFileOr(path, &strategy);
  if (!status.ok()) {
    *error = status.message();
    return nullptr;
  }
  return strategy;
}

Status LoadStrategyFileOr(const std::string& path,
                          std::unique_ptr<Strategy>* out) {
  HDMM_CHECK(out != nullptr);
  out->reset();
  if (HDMM_FAILPOINT("strategy_io.load.io_error")) {
    return Status::IoError("injected: strategy_io.load.io_error at '" + path +
                           "'");
  }
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("cannot open '" + path + "': no such file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read from '" + path + "' failed");
  }
  std::string error;
  *out = ParseStrategy(buffer.str(), &error);
  if (*out == nullptr) {
    return Status::Corruption("'" + path + "': " + error);
  }
  return Status::Ok();
}

}  // namespace hdmm
