// Strategy representations (Section 7): explicit matrices, Kronecker
// products of p-Identity blocks, unions of Kronecker products, and weighted
// marginals. Every representation knows how to MEASURE (apply itself + its
// sensitivity), RECONSTRUCT (apply its pseudo-inverse or solve least squares),
// and evaluate the closed-form expected error against an implicit workload.
#ifndef HDMM_CORE_STRATEGY_H_
#define HDMM_CORE_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/opt_marginals.h"
#include "linalg/kron.h"
#include "linalg/matrix.h"
#include "linalg/pinv.h"
#include "workload/workload.h"

namespace hdmm {

/// Abstract differentially-private measurement strategy A.
///
/// Error convention: SquaredError returns ||A||_1^2 * ||W A^+||_F^2, i.e. the
/// expected total squared error at unit budget up to the universal 2/eps^2
/// factor (Definition 7). TotalSquaredError applies the factor.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string Name() const = 0;
  virtual int64_t DomainSize() const = 0;
  virtual int64_t NumQueries() const = 0;

  /// Sensitivity ||A||_1 (maximum absolute column sum).
  virtual double Sensitivity() const = 0;

  /// L2 sensitivity ||A||_2 (maximum column Euclidean norm), the quantity
  /// Gaussian noise is calibrated to. Implementations may return a sound
  /// upper bound where the exact maximum has no closed form (union-kron);
  /// calibrating to an upper bound only adds noise, never loses privacy.
  virtual double L2Sensitivity() const = 0;

  /// Noiseless strategy query answers a = A x.
  virtual Vector Apply(const Vector& x) const = 0;

  /// x_hat = A^+ y (least-squares inference on noisy answers).
  virtual Vector Reconstruct(const Vector& y) const = 0;

  /// ||A||_1^2 * ||W A^+||_F^2 for an implicit workload.
  virtual double SquaredError(const UnionWorkload& w) const = 0;

  /// The MEASURE step (Definition 6): y = A x + Lap(||A||_1 / epsilon)^m.
  Vector Measure(const Vector& x, double epsilon, Rng* rng) const;

  /// The MEASURE step under rho-zCDP: y = A x + N(0, sigma^2)^m with
  /// sigma = L2Sensitivity() / sqrt(2 rho) (Bun-Steinke Prop 1.6). Same
  /// positive-and-finite contract on rho as Measure has on epsilon.
  Vector MeasureGaussian(const Vector& x, double rho, Rng* rng) const;

  /// Err(W, A) = (2/eps^2) * SquaredError(W) (Definition 7).
  double TotalSquaredError(const UnionWorkload& w, double epsilon) const;

  /// Root-mean squared error per workload query at budget epsilon.
  double RootMeanSquaredError(const UnionWorkload& w, double epsilon) const;
};

/// A strategy held as a dense matrix. Only for modest domains.
class ExplicitStrategy : public Strategy {
 public:
  explicit ExplicitStrategy(Matrix a, std::string name = "explicit");

  std::string Name() const override { return name_; }
  int64_t DomainSize() const override { return a_.cols(); }
  int64_t NumQueries() const override { return a_.rows(); }
  double Sensitivity() const override;
  double L2Sensitivity() const override;
  Vector Apply(const Vector& x) const override;
  Vector Reconstruct(const Vector& y) const override;
  double SquaredError(const UnionWorkload& w) const override;

  const Matrix& matrix() const { return a_; }

 private:
  const Matrix& Pinv() const;

  Matrix a_;
  std::string name_;
  mutable Matrix pinv_;        // Cached lazily.
  mutable bool have_pinv_ = false;
};

/// A single Kronecker product A_1 x ... x A_d (the OPT_x output form).
class KronStrategy : public Strategy {
 public:
  explicit KronStrategy(std::vector<Matrix> factors,
                        std::string name = "kron");

  std::string Name() const override { return name_; }
  int64_t DomainSize() const override;
  int64_t NumQueries() const override;
  double Sensitivity() const override;
  /// Product of factor L2 sensitivities (exact; Kronecker columns are
  /// Kronecker products of columns).
  double L2Sensitivity() const override;
  Vector Apply(const Vector& x) const override;
  /// (A_1 x ... x A_d)^+ = A_1^+ x ... x A_d^+ (Section 4.4) applied via
  /// the Kronecker mat-vec algorithm.
  Vector Reconstruct(const Vector& y) const override;
  /// Theorem 6: sum_j w_j^2 prod_i ||W_i^(j) A_i^+||_F^2, scaled by sens^2.
  double SquaredError(const UnionWorkload& w) const override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  const std::vector<Matrix>& FactorPinvs() const;
  const std::vector<PinvGramTracer>& FactorTracers() const;

  std::vector<Matrix> factors_;
  std::string name_;
  mutable std::vector<Matrix> pinvs_;  // Cached lazily.
  /// Per-factor trace engines, built once (first SquaredError call): the
  /// factor Grams and their inverses stop being re-materialized per
  /// evaluation, so repeated error evaluations allocate nothing.
  mutable std::vector<PinvGramTracer> tracers_;
  mutable std::once_flag tracers_once_;
  /// Memoized L1 sensitivity (MaxAbsColSum allocates; SquaredError calls it
  /// every evaluation).
  mutable double sensitivity_ = 0.0;
  mutable std::once_flag sensitivity_once_;
};

/// A union (vertical stack) of Kronecker products A_1 + ... + A_l, the OPT_+
/// output form. Each part covers a recorded subset of the workload products;
/// error uses the per-group inference convention of Definition 11 (each group
/// answers its own products; the stacked sensitivity multiplies the noise).
class UnionKronStrategy : public Strategy {
 public:
  UnionKronStrategy(std::vector<std::vector<Matrix>> parts,
                    std::vector<std::vector<int>> group_products,
                    std::string name = "union-kron");

  std::string Name() const override { return name_; }
  int64_t DomainSize() const override;
  int64_t NumQueries() const override;
  /// Exact for parts with uniform column sums (true of p-Identity blocks):
  /// sum of part sensitivities.
  double Sensitivity() const override;
  /// Upper bound sqrt(sum of squared part L2 sensitivities): stacked columns
  /// concatenate, so the squared column norms add; bounding each part by its
  /// max column gives a sound (possibly loose) stack bound.
  double L2Sensitivity() const override;
  Vector Apply(const Vector& x) const override;
  /// No closed-form pseudo-inverse exists (Section 7.2): solves the least
  /// squares problem with LSMR on the implicit stacked operator.
  Vector Reconstruct(const Vector& y) const override;
  double SquaredError(const UnionWorkload& w) const override;

  int NumParts() const { return static_cast<int>(parts_.size()); }
  const std::vector<std::vector<Matrix>>& parts() const { return parts_; }
  const std::vector<std::vector<int>>& group_products() const {
    return group_products_;
  }

 private:
  const std::vector<std::vector<PinvGramTracer>>& PartTracers() const;

  std::vector<std::vector<Matrix>> parts_;
  std::vector<std::vector<int>> group_products_;
  std::string name_;
  std::shared_ptr<LinearOperator> op_;
  /// Per-part factor trace engines (see KronStrategy::tracers_).
  mutable std::vector<std::vector<PinvGramTracer>> part_tracers_;
  mutable std::once_flag part_tracers_once_;
  /// Memoized L1 sensitivity (see KronStrategy::sensitivity_).
  mutable double sensitivity_ = 0.0;
  mutable std::once_flag sensitivity_once_;
};

/// The weighted-marginals strategy M(theta) produced by OPT_M.
class MarginalsStrategy : public Strategy {
 public:
  MarginalsStrategy(Domain domain, Vector theta,
                    std::string name = "marginals");

  std::string Name() const override { return name_; }
  int64_t DomainSize() const override { return domain_.TotalSize(); }
  int64_t NumQueries() const override;
  /// Every domain cell is counted once per active marginal: sum theta_a.
  double Sensitivity() const override;
  /// Every domain cell is counted exactly once per active marginal with
  /// coefficient theta_a, so every column norm is sqrt(sum theta_a^2)
  /// (exact).
  double L2Sensitivity() const override;
  Vector Apply(const Vector& x) const override;
  /// M^+ y = (M^T M)^+ M^T y with (M^T M)^{-1} = G(v) from the closed
  /// marginals algebra (Section 7.2 / Appendix A.4).
  Vector Reconstruct(const Vector& y) const override;
  double SquaredError(const UnionWorkload& w) const override;

  const Vector& theta() const { return theta_; }
  const Domain& domain() const { return domain_; }

  /// Masks with non-negligible weight, in ascending order — the order in
  /// which Apply/Measure concatenate the per-marginal answer tables, so
  /// callers (e.g. marginal-table measurement sessions) can split y back
  /// into tables.
  std::vector<uint32_t> ActiveMasks() const;

 private:
  std::vector<Matrix> MarginalFactors(uint32_t mask) const;

  Domain domain_;
  Vector theta_;
  std::string name_;
  MarginalsAlgebra algebra_;
};

/// Streams a marginals-measured reconstruction tile-by-tile: the closed-form
/// x_hat = G(v) M^T y of MarginalsStrategy::Reconstruct re-expressed as a
/// sum of small per-submask tables, so any cell range of x_hat can be
/// produced in O(#tables) per cell without ever materializing a full-domain
/// vector. Out-of-core sessions build their tiled summed-area table through
/// this — the only full-domain state during construction is one tile buffer.
///
/// Derivation: with v = InverseWeights(theta^2) and y split into raw
/// per-mask measurement tables Y_m,
///
///   x_hat[c] = sum_a v_a (C(a) M^T y)[c]
///            = sum_a v_a sum_m theta_m mult(a,m) T_{m->a&m}[c|_{a&m}]
///
/// where C(a) = kron_i (I if bit_i(a) else ones), T_{m->s} sums Y_m down to
/// the attributes in s, and mult(a,m) = prod_{i not in a|m} n_i counts the
/// axes replicated by the all-ones factors. Grouping terms by s = a & m
/// collapses everything into one combined table E_s per distinct submask,
/// and x_hat[c] = sum_s E_s[c|_s].
class MarginalsStreamReconstructor {
 public:
  /// `y` is the strategy's raw (theta-weighted) measurement vector, exactly
  /// as MeasurementSession receives it.
  MarginalsStreamReconstructor(const MarginalsStrategy& strategy,
                               const Vector& y);

  /// Writes x_hat[begin..end) into out[0..end-begin). Stateless per call
  /// (ranges may be produced in any order) and allocation-light: per-table
  /// indices advance with the cell odometer, no division per cell.
  void Fill(int64_t begin, int64_t end, double* out) const;

  int64_t NumTables() const { return static_cast<int64_t>(tables_.size()); }

 private:
  struct Table {
    Vector values;
    /// Per-domain-axis stride within the compact table (0 = axis summed
    /// out) and the index delta applied when the odometer increments that
    /// axis (wrapping every inner axis back to zero).
    std::vector<int64_t> stride;
    std::vector<int64_t> roll;
  };

  Domain domain_;
  std::vector<Table> tables_;
};

}  // namespace hdmm

#endif  // HDMM_CORE_STRATEGY_H_
