// OPT_M (Problem 4, Section 6.3) and the closed marginals algebra of
// Appendix A.4. Strategies are weighted sets of marginals M(theta),
// theta in R^{2^d}_+, and both the objective and its gradient are evaluated
// in O(4^d) time independent of the attribute domain sizes.
#ifndef HDMM_CORE_OPT_MARGINALS_H_
#define HDMM_CORE_OPT_MARGINALS_H_

#include <cstdint>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "optimize/lbfgsb.h"
#include "workload/workload.h"

namespace hdmm {

/// The closed algebra over matrices G(v) = sum_a v_a C(a), where
/// C(a) = kron_i (I if bit_i(a) else 1) — Propositions 3 and 4 of the paper.
/// Products stay inside the algebra: G(u) G(v) = G(X(u) v) with X(u) upper
/// triangular, which yields O(4^d) inverses via one triangular solve.
class MarginalsAlgebra {
 public:
  explicit MarginalsAlgebra(std::vector<int64_t> attr_sizes);

  int d() const { return d_; }
  uint32_t num_masks() const { return uint32_t{1} << d_; }
  const std::vector<int64_t>& attr_sizes() const { return sizes_; }

  /// c(m) = prod_{i : bit_i(m) = 0} n_i  (Proposition 3's scalar).
  double CWeight(uint32_t mask) const {
    return cweight_[static_cast<size_t>(mask)];
  }

  /// The triangular matrix X(u) with G(u) G(v) = G(X(u) v) (Proposition 4):
  /// X(u)[k, b] = sum_{a : a & b = k} u_a c(a | b).
  Matrix BuildX(const Vector& u) const;

  /// Solves X(u) v = e_{full}: then G(v) = G(u)^{-1}. Requires u_full > 0
  /// (which makes X(u) nonsingular). For a strategy M(theta),
  /// (M^T M) = G(theta^2) and hence (M^T M)^{-1} = G(v).
  Vector InverseWeights(const Vector& u) const;

  /// Per-mask workload statistics tau_a = sum_j w_j^2 *
  /// prod_i (bit_i(a) ? tr(G_i^(j)) : sum(G_i^(j))), so that
  /// tr[G(v) W^T W] = v . tau. Precomputed once per workload; cost linear
  /// in the number of products (Section 6.3).
  Vector WorkloadTraceVector(const UnionWorkload& w) const;

  /// tr[(M(theta)^T M(theta))^{-1} W^T W] given tau = WorkloadTraceVector.
  /// Dies if theta_full <= 0.
  double TraceObjective(const Vector& theta, const Vector& tau) const;

 private:
  int d_;
  std::vector<int64_t> sizes_;
  Vector cweight_;
};

/// Options for OPT_M.
struct OptMarginalsOptions {
  int restarts = 1;
  LbfgsbOptions lbfgs;
  double min_full_weight = 1e-4;  ///< Lower bound keeping theta_{2^d} > 0.
  /// Use the workload's own marginals as the first restart's starting point
  /// (a very strong basin); disable to study pure random-restart behaviour
  /// (Figure 3).
  bool workload_aware_init = true;
};

/// Result of OPT_M.
struct OptMarginalsResult {
  Vector theta;        ///< 2^d marginal weights.
  double error = 0.0;  ///< (sum theta)^2 * ||W M(theta)^+||_F^2.
};

/// Optimizes the weighted-marginals strategy for a union-of-products
/// workload. The sensitivity constraint is folded into the objective
/// (sum theta_i)^2 * ||W M(theta)^+||_F^2 exactly as in Problem 4.
OptMarginalsResult OptMarginals(const UnionWorkload& w,
                                const OptMarginalsOptions& options, Rng* rng);

}  // namespace hdmm

#endif  // HDMM_CORE_OPT_MARGINALS_H_
