// The MEASURE step (Table 1b): Laplace mechanism in vector form
// (Definition 6) over implicit operators.
#ifndef HDMM_CORE_MEASURE_H_
#define HDMM_CORE_MEASURE_H_

#include "common/rng.h"
#include "linalg/linear_operator.h"

namespace hdmm {

/// y = A x + Lap(sensitivity / epsilon)^m. The caller supplies the
/// sensitivity (||A||_1) since implicit operators cannot always compute it.
Vector LaplaceMeasure(const LinearOperator& a, const Vector& x,
                      double sensitivity, double epsilon, Rng* rng);

/// Noise scale used by LaplaceMeasure (sigma_A of Definition 6).
inline double LaplaceScale(double sensitivity, double epsilon) {
  return sensitivity / epsilon;
}

}  // namespace hdmm

#endif  // HDMM_CORE_MEASURE_H_
