// The MEASURE step (Table 1b): Laplace mechanism in vector form
// (Definition 6) over implicit operators.
#ifndef HDMM_CORE_MEASURE_H_
#define HDMM_CORE_MEASURE_H_

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/linear_operator.h"

namespace hdmm {

/// y = A x + Lap(sensitivity / epsilon)^m. The caller supplies the
/// sensitivity (||A||_1) since implicit operators cannot always compute it.
/// Dies unless epsilon and the sensitivity are both positive and finite: a
/// NaN/inf/zero noise scale silently voids the privacy guarantee, so it is
/// a contract violation, never a sampled value.
Vector LaplaceMeasure(const LinearOperator& a, const Vector& x,
                      double sensitivity, double epsilon, Rng* rng);

/// Noise scale used by LaplaceMeasure (sigma_A of Definition 6). Same
/// positive-and-finite contract as LaplaceMeasure.
inline double LaplaceScale(double sensitivity, double epsilon) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  HDMM_CHECK_MSG(std::isfinite(sensitivity) && sensitivity > 0.0,
                 "sensitivity must be positive and finite");
  return sensitivity / epsilon;
}

}  // namespace hdmm

#endif  // HDMM_CORE_MEASURE_H_
