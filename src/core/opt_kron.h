// OPT_x (Definition 10 / Problem 3): strategy optimization for (unions of)
// product workloads, decomposed into per-attribute OPT_0 problems. For unions
// the coupled problem is solved block-cyclically with the surrogate workload
// of Equation 6.
#ifndef HDMM_CORE_OPT_KRON_H_
#define HDMM_CORE_OPT_KRON_H_

#include <vector>

#include "common/rng.h"
#include "core/opt0.h"
#include "workload/workload.h"

namespace hdmm {

/// Options for OPT_x.
struct OptKronOptions {
  /// Per-attribute p; empty = the Section 7.1 convention (1 for T/I-only
  /// attributes, n_i/16 otherwise).
  std::vector<int> p;
  int max_cycles = 8;       ///< Block-cyclic passes over the attributes.
  double cycle_tol = 1e-4;  ///< Relative improvement stopping threshold.
  int restarts = 1;
  LbfgsbOptions lbfgs;
};

/// Result of OPT_x: one p_i-Identity parameter block per attribute.
struct OptKronResult {
  std::vector<Matrix> thetas;
  /// sum_j w_j^2 prod_i ||W_i^(j) A_i^+||_F^2 — the Theorem 6 objective for
  /// the sensitivity-1 product strategy A = A_1 x ... x A_d.
  double error = 0.0;
};

/// Runs OPT_x on a (union of) product workload.
OptKronResult OptKron(const UnionWorkload& w, const OptKronOptions& options,
                      Rng* rng);

/// Builds the explicit per-attribute strategy factors A_i(Theta_i) from an
/// OPT_x result.
std::vector<Matrix> KronStrategyFactors(const OptKronResult& result);

/// The Section 7.1 p-convention for attribute i of a union workload.
int AttributeDefaultP(const UnionWorkload& w, int attribute);

}  // namespace hdmm

#endif  // HDMM_CORE_OPT_KRON_H_
