#include "core/gaussian.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

double L2Sensitivity(const Matrix& a) {
  double best = 0.0;
  for (int64_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
    best = std::max(best, s);
  }
  return std::sqrt(best);
}

double KronL2Sensitivity(const std::vector<Matrix>& factors) {
  double s = 1.0;
  for (const Matrix& f : factors) s *= L2Sensitivity(f);
  return s;
}

double GaussianNoiseScale(double l2_sensitivity, double epsilon,
                          double delta) {
  HDMM_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  return l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

Vector MeasureGaussian(const Strategy& strategy, const Vector& x,
                       double l2_sensitivity, double epsilon, double delta,
                       Rng* rng) {
  Vector y = strategy.Apply(x);
  const double sigma = GaussianNoiseScale(l2_sensitivity, epsilon, delta);
  for (double& v : y) v += sigma * rng->Gaussian();
  return y;
}

double GaussianTotalSquaredError(double trace_term, double l2_sensitivity,
                                 double epsilon, double delta) {
  double sigma = GaussianNoiseScale(l2_sensitivity, epsilon, delta);
  return sigma * sigma * trace_term;
}

}  // namespace hdmm
