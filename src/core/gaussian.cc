#include "core/gaussian.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

double L2Sensitivity(const Matrix& a) {
  double best = 0.0;
  for (int64_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
    best = std::max(best, s);
  }
  return std::sqrt(best);
}

double KronL2Sensitivity(const std::vector<Matrix>& factors) {
  double s = 1.0;
  for (const Matrix& f : factors) s *= L2Sensitivity(f);
  return s;
}

double GaussianNoiseScale(double l2_sensitivity, double epsilon,
                          double delta) {
  HDMM_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  // The classic sqrt(2 ln(1.25/delta)) analysis only proves (eps, delta)-DP
  // for eps < 1; at eps >= 1 the formula under-noises and the guarantee is
  // silently void. Large-epsilon callers must calibrate through zCDP:
  // sigma = GaussianSigmaFromRho(sens, RhoFromEpsilonDelta(eps, delta)).
  HDMM_CHECK_MSG(epsilon < 1.0,
                 "classic Gaussian calibration is invalid for epsilon >= 1; "
                 "use the zCDP path (GaussianSigmaFromRho / "
                 "RhoFromEpsilonDelta)");
  return l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

double GaussianSigmaFromRho(double l2_sensitivity, double rho) {
  HDMM_CHECK_MSG(std::isfinite(l2_sensitivity) && l2_sensitivity > 0.0,
                 "L2 sensitivity must be positive and finite");
  HDMM_CHECK_MSG(std::isfinite(rho) && rho > 0.0,
                 "rho must be positive and finite");
  return l2_sensitivity / std::sqrt(2.0 * rho);
}

double RhoFromGaussianSigma(double l2_sensitivity, double sigma) {
  HDMM_CHECK_MSG(std::isfinite(l2_sensitivity) && l2_sensitivity > 0.0,
                 "L2 sensitivity must be positive and finite");
  HDMM_CHECK_MSG(std::isfinite(sigma) && sigma > 0.0,
                 "sigma must be positive and finite");
  return l2_sensitivity * l2_sensitivity / (2.0 * sigma * sigma);
}

double RhoToEpsilon(double rho, double delta) {
  HDMM_CHECK_MSG(std::isfinite(rho) && rho >= 0.0,
                 "rho must be non-negative and finite");
  HDMM_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  if (rho == 0.0) return 0.0;
  return rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
}

double RhoFromEpsilonDelta(double epsilon, double delta) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  HDMM_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  // Solve rho + 2 sqrt(rho L) = eps for rho with L = ln(1/delta): quadratic
  // in s = sqrt(rho), s^2 + 2 s sqrt(L) - eps = 0, positive root
  // s = sqrt(L + eps) - sqrt(L).
  const double l = std::log(1.0 / delta);
  const double s = std::sqrt(l + epsilon) - std::sqrt(l);
  return s * s;
}

double PureDpToRho(double epsilon) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  return 0.5 * epsilon * epsilon;
}

Vector MeasureGaussian(const Strategy& strategy, const Vector& x,
                       double l2_sensitivity, double epsilon, double delta,
                       Rng* rng) {
  Vector y = strategy.Apply(x);
  const double sigma = GaussianNoiseScale(l2_sensitivity, epsilon, delta);
  for (double& v : y) v += sigma * rng->Gaussian();
  return y;
}

double GaussianTotalSquaredError(double trace_term, double l2_sensitivity,
                                 double epsilon, double delta) {
  double sigma = GaussianNoiseScale(l2_sensitivity, epsilon, delta);
  return sigma * sigma * trace_term;
}

}  // namespace hdmm
