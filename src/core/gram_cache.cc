#include "core/gram_cache.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "linalg/gemm.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// One row scanned as a contiguous run of ones: [a, b] inclusive.
struct OnesRun {
  int64_t a = 0;
  int64_t b = 0;
};

// Scans every row of `f`; returns false unless each row is exactly a
// contiguous run of 1.0 entries (zeros elsewhere). Bails on the first
// offending entry, so non-binary factors cost one partial row scan.
bool ScanOnesRuns(const Matrix& f, std::vector<OnesRun>* runs) {
  const int64_t n = f.cols();
  runs->clear();
  runs->reserve(static_cast<size_t>(f.rows()));
  for (int64_t i = 0; i < f.rows(); ++i) {
    const double* row = f.Row(i);
    int64_t a = -1, b = -1;
    for (int64_t j = 0; j < n; ++j) {
      const double v = row[j];
      if (v == 0.0) {
        if (a >= 0 && b < 0) b = j - 1;
        continue;
      }
      if (v != 1.0) return false;
      if (a < 0) {
        a = j;
      } else if (b >= 0) {
        return false;  // Second run of ones.
      }
    }
    if (a < 0) return false;  // Empty row: not a building block.
    if (b < 0) b = n - 1;
    runs->push_back({a, b});
  }
  return true;
}

// True when `values` is a permutation of {0, ..., count-1}.
bool IsPermutationOfIota(const std::vector<OnesRun>& runs, int64_t count,
                         int64_t (*pick)(const OnesRun&)) {
  if (static_cast<int64_t>(runs.size()) != count) return false;
  std::vector<char> seen(static_cast<size_t>(count), 0);
  for (const OnesRun& r : runs) {
    const int64_t v = pick(r);
    if (v < 0 || v >= count || seen[static_cast<size_t>(v)]) return false;
    seen[static_cast<size_t>(v)] = 1;
  }
  return true;
}

}  // namespace

bool RecognizeClosedFormGram(const Matrix& factor, Matrix* gram) {
  const int64_t rows = factor.rows();
  const int64_t n = factor.cols();
  if (rows == 0 || n == 0) return false;
  // Quick reject on the row count: every recognizable family has rows <= n
  // except AllRange with exactly n(n+1)/2 rows. This keeps the scan away
  // from large explicit workloads that cannot match anyway.
  if (rows > n && rows != n * (n + 1) / 2) return false;

  std::vector<OnesRun> runs;
  if (!ScanOnesRuns(factor, &runs)) return false;

  // Total: the single all-ones predicate. Gram(1_{1 x n}) = 1_{n x n}.
  if (rows == 1 && runs[0].a == 0 && runs[0].b == n - 1) {
    *gram = Matrix::Ones(n, n);
    return true;
  }

  if (rows == n) {
    // Identity: n point queries, one per cell, in any order.
    bool all_points = true;
    for (const OnesRun& r : runs) all_points &= (r.a == r.b);
    if (all_points &&
        IsPermutationOfIota(runs, n, [](const OnesRun& r) { return r.a; })) {
      *gram = Matrix::Identity(n);
      return true;
    }
    // Prefix: every run starts at 0 and the endpoints cover 0..n-1.
    bool all_prefixes = true;
    for (const OnesRun& r : runs) all_prefixes &= (r.a == 0);
    if (all_prefixes &&
        IsPermutationOfIota(runs, n, [](const OnesRun& r) { return r.b; })) {
      *gram = PrefixGram(n);
      return true;
    }
  }

  // Fixed-width ranges: all runs share one width w and the starts cover
  // 0..n-w exactly once. (w == 1 is Identity, caught above; w == n is
  // Total, caught above.)
  if (rows <= n) {
    const int64_t w = runs[0].b - runs[0].a + 1;
    bool same_width = rows == n - w + 1;
    for (const OnesRun& r : runs) same_width &= (r.b - r.a + 1 == w);
    if (same_width && IsPermutationOfIota(runs, n - w + 1, [](const OnesRun& r) {
          return r.a;
        })) {
      *gram = WidthRangeGram(n, w);
      return true;
    }
  }

  // AllRange: every interval [a, b], a <= b, exactly once.
  if (rows == n * (n + 1) / 2) {
    std::vector<char> seen(static_cast<size_t>(n) * static_cast<size_t>(n), 0);
    for (const OnesRun& r : runs) {
      const size_t idx =
          static_cast<size_t>(r.a) * static_cast<size_t>(n) +
          static_cast<size_t>(r.b);
      if (seen[idx]) return false;
      seen[idx] = 1;
    }
    *gram = AllRangeGram(n);
    return true;
  }
  return false;
}

uint64_t GramCache::FactorKey(const Matrix& factor) {
  Fnv1aHasher h;
  h.U64(0x6772616d6b310000ULL);  // Format tag: "gramk1".
  h.I64(factor.rows());
  h.I64(factor.cols());
  for (int64_t i = 0; i < factor.size(); ++i) h.F64(factor.data()[i]);
  return h.Digest();
}

std::shared_ptr<const Matrix> GramCache::FactorGram(const Matrix& factor) {
  static Counter* const hit_count = Metrics::GetCounter("gram_cache.hits");
  static Counter* const miss_count = Metrics::GetCounter("gram_cache.misses");
  static Counter* const closed_count =
      Metrics::GetCounter("gram_cache.closed_form");
  const uint64_t key = FactorKey(factor);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second->cols() == factor.cols()) {
      ++hits_;
      hit_count->Add(1);
      return it->second;
    }
    ++misses_;
    miss_count->Add(1);
  }
  // Compute outside the lock: concurrent misses of the same factor may
  // duplicate the work, but both arrive at the same value and the loser's
  // insert is a no-op overwrite.
  Matrix gram;
  const bool closed = RecognizeClosedFormGram(factor, &gram);
  if (!closed) GramInto(factor, &gram);
  auto shared = std::make_shared<const Matrix>(std::move(gram));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed) {
      ++closed_form_;
      closed_count->Add(1);
    }
    if (resident_doubles_ + shared->size() > kMaxResidentDoubles) {
      map_.clear();
      resident_doubles_ = 0;
    }
    auto inserted = map_.emplace(key, shared);
    if (inserted.second) resident_doubles_ += shared->size();
  }
  return shared;
}

GramCache::Stats GramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.closed_form = closed_form_;
  return s;
}

void GramCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = misses_ = closed_form_ = 0;
}

void GramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  resident_doubles_ = 0;
}

size_t GramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

int64_t GramCache::resident_doubles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_doubles_;
}

GramCache& GramCache::Global() {
  static GramCache* cache = new GramCache();  // Leaked like the thread pool.
  return *cache;
}

}  // namespace hdmm
