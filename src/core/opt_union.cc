#include "core/opt_union.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace hdmm {
namespace {

// True if every row of the factor is the all-ones row (a Total block).
bool IsTotalLike(const Matrix& f) {
  for (int64_t i = 0; i < f.rows(); ++i) {
    for (int64_t j = 0; j < f.cols(); ++j) {
      if (f(i, j) != 1.0) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::vector<int>> PartitionBySignature(const UnionWorkload& w,
                                                   int max_groups) {
  const int d = w.domain().NumAttributes();
  HDMM_CHECK(d <= 31);
  std::map<uint32_t, std::vector<int>> by_signature;
  for (int j = 0; j < w.NumProducts(); ++j) {
    uint32_t sig = 0;
    const ProductWorkload& prod = w.products()[static_cast<size_t>(j)];
    for (int i = 0; i < d; ++i) {
      if (!IsTotalLike(prod.factors[static_cast<size_t>(i)]))
        sig |= (1u << i);
    }
    by_signature[sig].push_back(j);
  }
  std::vector<std::vector<int>> groups;
  for (auto& [sig, indices] : by_signature) groups.push_back(indices);
  // Merge smallest groups until within the cap.
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  while (static_cast<int>(groups.size()) > std::max(1, max_groups)) {
    auto last = groups.back();
    groups.pop_back();
    groups.back().insert(groups.back().end(), last.begin(), last.end());
  }
  return groups;
}

std::vector<double> OptimalBudgetSplit(const std::vector<double>& errors) {
  // Minimize sum_g e_g / lambda_g^2 subject to sum lambda_g = 1:
  // stationarity gives lambda_g proportional to e_g^{1/3}.
  std::vector<double> split(errors.size(), 0.0);
  double z = 0.0;
  for (double e : errors) z += std::cbrt(std::max(0.0, e));
  if (z <= 0.0) {
    double uniform = 1.0 / static_cast<double>(errors.size());
    for (double& s : split) s = uniform;
    return split;
  }
  for (size_t g = 0; g < errors.size(); ++g)
    split[g] = std::cbrt(std::max(0.0, errors[g])) / z;
  return split;
}

OptUnionResult OptUnion(const UnionWorkload& w, const OptUnionOptions& options,
                        Rng* rng) {
  std::vector<std::vector<int>> groups =
      PartitionBySignature(w, options.max_groups);
  const int l = static_cast<int>(groups.size());

  OptUnionResult out;
  out.group_products = groups;
  std::vector<double> group_errors;
  for (const std::vector<int>& group : groups) {
    UnionWorkload sub(w.domain());
    for (int j : group) sub.AddProduct(w.products()[static_cast<size_t>(j)]);
    OptKronResult res = OptKron(sub, options.kron, rng);
    group_errors.push_back(res.error);
    out.group_thetas.push_back(std::move(res.thetas));
  }

  if (options.optimize_budget_split) {
    out.budget_split = OptimalBudgetSplit(group_errors);
  } else {
    out.budget_split.assign(static_cast<size_t>(l),
                            1.0 / static_cast<double>(l));
  }
  // Total error under the split: each group's measurements get a
  // lambda_g-fraction of the budget, inflating its error by 1/lambda_g^2.
  double total = 0.0;
  for (size_t g = 0; g < group_errors.size(); ++g) {
    double lam = std::max(1e-12, out.budget_split[g]);
    total += group_errors[g] / (lam * lam);
  }
  out.error = total;
  return out;
}

}  // namespace hdmm
