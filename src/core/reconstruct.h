// The RECONSTRUCT step (Table 1b): least-squares inference x_hat from noisy
// strategy answers. Strategies with structured pseudo-inverses implement
// Reconstruct directly; this is the generic LSMR fallback (Section 7.2).
#ifndef HDMM_CORE_RECONSTRUCT_H_
#define HDMM_CORE_RECONSTRUCT_H_

#include "linalg/linear_operator.h"
#include "linalg/lsmr.h"

namespace hdmm {

/// Least-squares x_hat = argmin ||A x - y||_2 via LSMR on the implicit
/// operator; only mat-vec products with A and A^T are needed.
Vector LeastSquaresReconstruct(const LinearOperator& a, const Vector& y,
                               const LsmrOptions& options = LsmrOptions());

}  // namespace hdmm

#endif  // HDMM_CORE_RECONSTRUCT_H_
