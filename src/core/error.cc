#include "core/error.h"

#include <cmath>

#include "common/check.h"
#include "linalg/gemm.h"
#include "linalg/pinv.h"
#include "linalg/trace_estimator.h"

namespace hdmm {

double ExplicitSquaredError(const Matrix& w, const Matrix& a) {
  HDMM_CHECK(w.cols() == a.cols());
  double sens = a.MaxAbsColSum();
  Matrix gram_a, gram_w;
  GramInto(a, &gram_a);
  GramInto(w, &gram_w);
  return sens * sens * TracePinvGram(gram_a, gram_w);
}

double ErrorRatio(const UnionWorkload& w, const Strategy& other,
                  const Strategy& reference) {
  double e_other = other.SquaredError(w);
  double e_ref = reference.SquaredError(w);
  HDMM_CHECK(e_ref > 0.0);
  return std::sqrt(e_other / e_ref);
}

double EstimateSquaredError(const LinearOperator& strategy_op,
                            const LinearOperator& workload_op,
                            double sensitivity, Rng* rng, int num_samples) {
  auto gram_a = GramOperator(
      std::shared_ptr<const LinearOperator>(&strategy_op, [](auto*) {}));
  auto gram_w = GramOperator(
      std::shared_ptr<const LinearOperator>(&workload_op, [](auto*) {}));
  TraceEstimatorOptions opts;
  opts.num_samples = num_samples;
  double tr = EstimateTraceInvProduct(gram_a, gram_w, rng, opts);
  return sensitivity * sensitivity * tr;
}

double EmpiricalSquaredError(const Vector& truth, const Vector& estimate) {
  HDMM_CHECK(truth.size() == estimate.size());
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double diff = truth[i] - estimate[i];
    total += diff * diff;
  }
  return total;
}

}  // namespace hdmm
