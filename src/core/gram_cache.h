// Cross-call memoization of workload-factor Gram matrices. Strategy
// optimization re-derives the same per-attribute Grams W_i^T W_i over and
// over: every OPT_x restart re-reads the same factor pools, every serve-mode
// `plan` call re-walks the same workload, and unions routinely share a small
// set of per-attribute building blocks across products. The cache keys each
// factor by a content fingerprint (the same FNV-1a hashing the serving
// layer's plan fingerprints use — see common/hash.h) so identical factors
// share one immutable Gram across restarts, across optimizer calls, and
// across plans, with no invalidation protocol at all: a key is derived from
// the factor's bits, so an entry can never go stale.
//
// On a miss the cache first tries to *recognize* the factor as one of the
// closed-form building blocks (Identity, Total, Prefix, AllRange,
// WidthRange — in any row order), building the Gram in O(n^2) from the
// closed form instead of the O(rows * n^2) SYRK.
#ifndef HDMM_CORE_GRAM_CACHE_H_
#define HDMM_CORE_GRAM_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "linalg/matrix.h"

namespace hdmm {

/// Structural recognition of the closed-form building-block Grams. Returns
/// true and fills `gram` when `factor` is (any row permutation of) Identity,
/// Total, Prefix, AllRange, or a fixed-width range workload; false — with
/// `gram` untouched — otherwise. Cost is one O(rows x cols) scan with an
/// early bail on the first row that is not a contiguous run of ones.
bool RecognizeClosedFormGram(const Matrix& factor, Matrix* gram);

/// Thread-safe, content-keyed Gram memoizer. Shared immutable Grams are
/// handed out as shared_ptr so concurrent restarts/plans can hold them with
/// no copies and no lifetime coupling to the cache (a capacity sweep never
/// invalidates a Gram someone is still using).
class GramCache {
 public:
  GramCache() = default;
  GramCache(const GramCache&) = delete;
  GramCache& operator=(const GramCache&) = delete;

  /// Content fingerprint of a factor: shape plus bit-exact entries (-0.0
  /// canonicalized, as in engine/fingerprint). Equal keys mean equal
  /// factors up to 64-bit collision odds, so the key doubles as the
  /// dedup/sharing identity OPT_x uses for its per-attribute Gram pools.
  static uint64_t FactorKey(const Matrix& factor);

  /// The Gram factor^T factor, memoized on FactorKey.
  std::shared_ptr<const Matrix> FactorGram(const Matrix& factor);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t closed_form = 0;  ///< Misses served by a recognized closed form.
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;
  void ResetStats();

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void Clear();
  size_t size() const;

  /// Total doubles held across all cached Grams. When an insert would push
  /// this past the budget the cache is swept wholesale — entries are cheap
  /// to rebuild and an LRU chain is not worth the bookkeeping here.
  int64_t resident_doubles() const;

  /// Process-wide cache consulted by ProductWorkload::FactorGram, OPT_x's
  /// per-attribute Gram pools, and (for its hit-rate accounting)
  /// Engine::Plan.
  static GramCache& Global();

 private:
  // ~256 MiB of cached Grams before a wholesale sweep.
  static constexpr int64_t kMaxResidentDoubles = int64_t{1} << 25;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Matrix>> map_;
  int64_t resident_doubles_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t closed_form_ = 0;
};

}  // namespace hdmm

#endif  // HDMM_CORE_GRAM_CACHE_H_
