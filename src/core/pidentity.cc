#include "core/pidentity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

// Column scale factors s_j = 1 + sum_i Theta_ij (the inverse of D's diagonal).
Vector ColumnScales(const Matrix& theta) {
  Vector s(static_cast<size_t>(theta.cols()), 1.0);
  for (int64_t i = 0; i < theta.rows(); ++i) {
    const double* row = theta.Row(i);
    for (int64_t j = 0; j < theta.cols(); ++j) s[static_cast<size_t>(j)] += row[j];
  }
  return s;
}

// M = I_p + Theta Theta^T (p x p), the Woodbury capacitance matrix. The
// outer-SYRK kernel computes one triangle and mirrors, so M is exactly
// symmetric -- which the Cholesky factorization downstream relies on.
Matrix Capacitance(const Matrix& theta) {
  Matrix m = GramOuter(theta);
  for (int64_t i = 0; i < m.rows(); ++i) m(i, i) += 1.0;
  return m;
}

// Scales the rows (axis == 0) or columns (axis == 1) of `m` by `scale`.
Matrix ScaledCopy(const Matrix& m, const Vector& scale, int axis) {
  Matrix out = m;
  if (axis == 0) {
    HDMM_CHECK(static_cast<int64_t>(scale.size()) == m.rows());
    for (int64_t i = 0; i < m.rows(); ++i) {
      double s = scale[static_cast<size_t>(i)];
      double* row = out.Row(i);
      for (int64_t j = 0; j < m.cols(); ++j) row[j] *= s;
    }
  } else {
    HDMM_CHECK(static_cast<int64_t>(scale.size()) == m.cols());
    for (int64_t i = 0; i < m.rows(); ++i) {
      double* row = out.Row(i);
      for (int64_t j = 0; j < m.cols(); ++j)
        row[j] *= scale[static_cast<size_t>(j)];
    }
  }
  return out;
}

// Workspace variants of ScaledCopy: write src * diag(scale) (or
// diag(scale) * src) into a reusable destination without allocating once the
// destination has the right shape.
void EnsureShape(Matrix* m, int64_t rows, int64_t cols) {
  if (m->rows() != rows || m->cols() != cols) *m = Matrix(rows, cols);
}

void ScaleColumnsInto(const Matrix& src, const Vector& scale, Matrix* dst) {
  EnsureShape(dst, src.rows(), src.cols());
  for (int64_t i = 0; i < src.rows(); ++i) {
    const double* in = src.Row(i);
    double* out = dst->Row(i);
    for (int64_t j = 0; j < src.cols(); ++j)
      out[j] = in[j] * scale[static_cast<size_t>(j)];
  }
}

void ScaleRowsInto(const Matrix& src, const Vector& scale, Matrix* dst) {
  EnsureShape(dst, src.rows(), src.cols());
  for (int64_t i = 0; i < src.rows(); ++i) {
    const double s = scale[static_cast<size_t>(i)];
    const double* in = src.Row(i);
    double* out = dst->Row(i);
    for (int64_t j = 0; j < src.cols(); ++j) out[j] = s * in[j];
  }
}

// Trust floor for the Woodbury fast path, as a fraction of term1 (the
// positive part of the cancelling subtraction). The subtraction's noise is
// governed by the capacitance solve: with condition number kappa(M) the
// computed trace carries ~ kappa * eps * term1 of error, and kappa grows like
// max(Theta)^2. sqrt(eps) ~ 1.5e-8 is the break-even point for
// kappa ~ 1e8 (Theta entries ~ 1e4, which gradient ascent does reach on
// range-type workloads); one order of margin on top of that. Values below
// the floor are treated as pure cancellation: Eval reports the point as
// infeasible (the line search backs off) and TraceWithGram falls back to the
// backward-stable dense path.
constexpr double kFastPathTrustFloor = 1e-7;

}  // namespace

PIdentityObjective::PIdentityObjective(Matrix gram, int p, GemmParallelism par)
    : gram_(std::move(gram)), p_(p), par_(par) {
  HDMM_CHECK(gram_.rows() == gram_.cols());
  HDMM_CHECK(p_ >= 1);
  gram_diag_.resize(static_cast<size_t>(gram_.rows()));
  for (int64_t j = 0; j < gram_.rows(); ++j)
    gram_diag_[static_cast<size_t>(j)] = gram_(j, j);
}

double PIdentityObjective::Eval(const Vector& theta_flat, Vector* grad_flat) {
  const int64_t n = gram_.rows();
  HDMM_CHECK(static_cast<int64_t>(theta_flat.size()) == p_ * n);
  EnsureShape(&theta_, p_, n);
  std::copy(theta_flat.begin(), theta_flat.end(), theta_.data());

  // s_j = 1/d_j, computed into the hoisted workspace vectors.
  s_.assign(static_cast<size_t>(n), 1.0);
  for (int64_t i = 0; i < p_; ++i) {
    const double* row = theta_.Row(i);
    for (int64_t j = 0; j < n; ++j) s_[static_cast<size_t>(j)] += row[j];
  }
  d_.resize(s_.size());
  for (size_t j = 0; j < s_.size(); ++j) d_[j] = 1.0 / s_[j];

  // Capacitance M = I_p + Theta Theta^T; exact symmetry from the SYRK
  // mirror, which the Cholesky below relies on.
  GramOuterInto(theta_, &m_, par_);
  for (int64_t i = 0; i < p_; ++i) m_(i, i) += 1.0;
  if (!CholeskyFactor(m_, &l_)) {
    // Numerically indefinite capacitance: treat as an infeasible point.
    if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
    return std::numeric_limits<double>::infinity();
  }

  // --- Objective: tr[X^{-1} G] with X^{-1} = S (I - Theta^T M^{-1} Theta) S,
  //     S = diag(s). (Appendix A.3.)
  // term1 = sum_j s_j^2 G_jj (diag(G) hoisted at construction).
  double term1 = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const double sj = s_[static_cast<size_t>(j)];
    term1 += sj * sj * gram_diag_[static_cast<size_t>(j)];
  }
  // T1 = Theta * S, B = T1 * G, Spp = B * T1^T; term2 = tr[M^{-1} Spp].
  ScaleColumnsInto(theta_, s_, &t1_);
  MatMulInto(t1_, gram_, &b_, par_);
  MatMulNTInto(b_, t1_, &spp_, par_);
  CholeskySolveMatrixInto(l_, spp_, &z_);
  double objective = term1 - z_.Trace();
  // The exact objective is strictly positive and bounded by term1 (since
  // X^{-1} is dominated by D^{-2}); the subtraction's noise scales with the
  // capacitance solve's conditioning (see kFastPathTrustFloor). Values at or
  // below that noise floor are pure cancellation — treat the point as
  // infeasible so the line search backs off rather than "winning" with
  // garbage.
  if (!(objective > kFastPathTrustFloor * term1) || !std::isfinite(objective)) {
    if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
    return std::numeric_limits<double>::infinity();
  }

  if (grad_flat == nullptr) return objective;

  // --- Gradient (derivation in docs/pidentity_gradient.md):
  //   dC/dTheta = -2 ThetaTilde Y D + 2 * 1_p (r .* d)^T
  // with Y = X^{-1} G X^{-1}, ThetaTilde = Theta D, Z = D Y D,
  // r_j = Z_jj + sum_i Theta_ij (Theta Z)_ij.
  //
  // K = X^{-1} G = S(G1 - Theta^T M^{-1} (Theta G1)) with G1 = S G.
  ScaleRowsInto(gram_, s_, &g1_);
  MatMulInto(theta_, g1_, &u_, par_);
  CholeskySolveMatrixInto(l_, u_, &v_);
  MatMulTNInto(theta_, v_, &k_, par_);  // Theta^T (M^{-1} Theta G1)
  // K = S (G1 - ...), fused subtract-and-row-scale over the workspace.
  for (int64_t i = 0; i < n; ++i) {
    const double si = s_[static_cast<size_t>(i)];
    const double* g1row = g1_.Row(i);
    double* krow = k_.Row(i);
    for (int64_t j = 0; j < n; ++j) krow[j] = si * (g1row[j] - krow[j]);
  }

  // Y = K X^{-1} = (K1 - (K1 Theta^T) M^{-1} Theta) S, K1 = K S. The middle
  // solve runs row-wise (CholeskySolveRowsInto) against the N x p operand
  // directly — no Transposed() copies on either side of it.
  ScaleColumnsInto(k_, s_, &k1_);
  MatMulNTInto(k1_, theta_, &pmat_, par_);           // N x p
  CholeskySolveRowsInto(l_, pmat_, &pmat_, par_);    // Q = (K1 Theta^T) M^{-1}
  MatMulInto(pmat_, theta_, &rterm_, par_);          // N x N
  // Y = (K1 - rterm) S, built in place over K1.
  for (int64_t i = 0; i < n; ++i) {
    double* yrow = k1_.Row(i);
    const double* rrow = rterm_.Row(i);
    for (int64_t j = 0; j < n; ++j)
      yrow[j] = (yrow[j] - rrow[j]) * s_[static_cast<size_t>(j)];
  }

  // ThetaTilde = Theta D (reusing the T1 workspace).
  ScaleColumnsInto(theta_, d_, &t1_);
  MatMulInto(t1_, k1_, &b_, par_);  // ThetaTilde Y, p x N (reuses B).
  // grad1 = -2 ThetaTilde Y D, folded in place.
  for (int64_t i = 0; i < p_; ++i) {
    double* row = b_.Row(i);
    for (int64_t j = 0; j < n; ++j)
      row[j] = -2.0 * (row[j] * d_[static_cast<size_t>(j)]);
  }

  // Z = D Y D, built in place over Y; r_j = Z_jj + sum_i Theta_ij (Theta Z)_ij.
  for (int64_t i = 0; i < n; ++i) {
    const double di = d_[static_cast<size_t>(i)];
    double* zrow = k1_.Row(i);
    for (int64_t j = 0; j < n; ++j)
      zrow[j] = di * zrow[j] * d_[static_cast<size_t>(j)];
  }
  MatMulInto(theta_, k1_, &u_, par_);  // Theta Z, p x N (reuses U).
  r_.assign(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double acc = k1_(j, j);
    for (int64_t i = 0; i < p_; ++i) acc += theta_(i, j) * u_(i, j);
    r_[static_cast<size_t>(j)] = acc;
  }

  grad_flat->resize(static_cast<size_t>(p_ * n));
  for (int64_t i = 0; i < p_; ++i) {
    const double* g1row = b_.Row(i);
    double* out = grad_flat->data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      out[j] = g1row[j] +
               2.0 * r_[static_cast<size_t>(j)] * d_[static_cast<size_t>(j)];
    }
  }
  return objective;
}

Matrix PIdentityObjective::BuildStrategy(const Matrix& theta) {
  const int64_t p = theta.rows();
  const int64_t n = theta.cols();
  Vector s = ColumnScales(theta);
  Matrix a(n + p, n);
  for (int64_t j = 0; j < n; ++j) a(j, j) = 1.0 / s[static_cast<size_t>(j)];
  for (int64_t i = 0; i < p; ++i)
    for (int64_t j = 0; j < n; ++j)
      a(n + i, j) = theta(i, j) / s[static_cast<size_t>(j)];
  return a;
}

double PIdentityObjective::TraceWithGram(const Matrix& theta, const Matrix& g) {
  const int64_t n = theta.cols();
  HDMM_CHECK(g.rows() == n && g.cols() == n);
  const Vector s = ColumnScales(theta);

  Matrix m = Capacitance(theta);
  Matrix l;
  if (CholeskyFactor(m, &l)) {
    double term1 = 0.0;
    for (int64_t j = 0; j < n; ++j)
      term1 += s[static_cast<size_t>(j)] * s[static_cast<size_t>(j)] * g(j, j);
    Matrix t1 = ScaledCopy(theta, s, 1);
    Matrix b = MatMul(t1, g);
    Matrix spp = MatMulNT(b, t1);
    Matrix z;
    CholeskySolveMatrixInto(l, spp, &z);
    double objective = term1 - z.Trace();
    // Fast path only trusted above the cancellation noise floor (see Eval).
    if (objective > kFastPathTrustFloor * term1 && std::isfinite(objective))
      return objective;
  }
  // The Woodbury form cancels catastrophically when the true trace is tiny
  // relative to term1 (e.g. rank-1 Grams against strategies with a heavy
  // total row). Fall back to the backward-stable dense path: form
  // X = A^T A explicitly and solve. O(n^3), evaluation-only.
  Matrix a = BuildStrategy(theta);
  Matrix x;
  GramInto(a, &x);
  Matrix lx;
  if (!CholeskyFactor(x, &lx)) return std::numeric_limits<double>::infinity();
  Matrix z;
  CholeskySolveMatrixInto(lx, g, &z);
  double tr = z.Trace();
  if (!(tr > 0.0) || !std::isfinite(tr))
    return std::numeric_limits<double>::infinity();
  return tr;
}

double PIdentityObjective::EvalReference(const Matrix& theta,
                                         const Matrix& gram) {
  Matrix a = BuildStrategy(theta);
  Matrix x;
  GramInto(a, &x);
  return TracePinvGram(x, gram);
}

}  // namespace hdmm
