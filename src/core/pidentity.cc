#include "core/pidentity.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/pinv.h"

namespace hdmm {
namespace {

// Column scale factors s_j = 1 + sum_i Theta_ij (the inverse of D's diagonal).
Vector ColumnScales(const Matrix& theta) {
  Vector s(static_cast<size_t>(theta.cols()), 1.0);
  for (int64_t i = 0; i < theta.rows(); ++i) {
    const double* row = theta.Row(i);
    for (int64_t j = 0; j < theta.cols(); ++j) s[static_cast<size_t>(j)] += row[j];
  }
  return s;
}

// M = I_p + Theta Theta^T (p x p), the Woodbury capacitance matrix. The
// outer-SYRK kernel computes one triangle and mirrors, so M is exactly
// symmetric -- which the Cholesky factorization downstream relies on.
Matrix Capacitance(const Matrix& theta) {
  Matrix m = GramOuter(theta);
  for (int64_t i = 0; i < m.rows(); ++i) m(i, i) += 1.0;
  return m;
}

// Scales the rows (axis == 0) or columns (axis == 1) of `m` by `scale`.
Matrix ScaledCopy(const Matrix& m, const Vector& scale, int axis) {
  Matrix out = m;
  if (axis == 0) {
    HDMM_CHECK(static_cast<int64_t>(scale.size()) == m.rows());
    for (int64_t i = 0; i < m.rows(); ++i) {
      double s = scale[static_cast<size_t>(i)];
      double* row = out.Row(i);
      for (int64_t j = 0; j < m.cols(); ++j) row[j] *= s;
    }
  } else {
    HDMM_CHECK(static_cast<int64_t>(scale.size()) == m.cols());
    for (int64_t i = 0; i < m.rows(); ++i) {
      double* row = out.Row(i);
      for (int64_t j = 0; j < m.cols(); ++j)
        row[j] *= scale[static_cast<size_t>(j)];
    }
  }
  return out;
}

// Trust floor for the Woodbury fast path, as a fraction of term1 (the
// positive part of the cancelling subtraction). The subtraction's noise is
// governed by the capacitance solve: with condition number kappa(M) the
// computed trace carries ~ kappa * eps * term1 of error, and kappa grows like
// max(Theta)^2. sqrt(eps) ~ 1.5e-8 is the break-even point for
// kappa ~ 1e8 (Theta entries ~ 1e4, which gradient ascent does reach on
// range-type workloads); one order of margin on top of that. Values below
// the floor are treated as pure cancellation: Eval reports the point as
// infeasible (the line search backs off) and TraceWithGram falls back to the
// backward-stable dense path.
constexpr double kFastPathTrustFloor = 1e-7;

}  // namespace

PIdentityObjective::PIdentityObjective(Matrix gram, int p)
    : gram_(std::move(gram)), p_(p) {
  HDMM_CHECK(gram_.rows() == gram_.cols());
  HDMM_CHECK(p_ >= 1);
}

double PIdentityObjective::Eval(const Vector& theta_flat,
                                Vector* grad_flat) const {
  const int64_t n = gram_.rows();
  HDMM_CHECK(static_cast<int64_t>(theta_flat.size()) == p_ * n);
  Matrix theta(p_, n, theta_flat);

  const Vector s = ColumnScales(theta);            // s_j = 1/d_j
  Vector d(s.size());
  for (size_t j = 0; j < s.size(); ++j) d[j] = 1.0 / s[j];

  Matrix m = Capacitance(theta);                   // I_p + Theta Theta^T
  Matrix l;
  if (!CholeskyFactor(m, &l)) {
    // Numerically indefinite capacitance: treat as an infeasible point.
    if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
    return std::numeric_limits<double>::infinity();
  }

  // --- Objective: tr[X^{-1} G] with X^{-1} = S (I - Theta^T M^{-1} Theta) S,
  //     S = diag(s). (Appendix A.3.)
  // term1 = sum_j s_j^2 G_jj.
  double term1 = 0.0;
  for (int64_t j = 0; j < n; ++j)
    term1 += s[static_cast<size_t>(j)] * s[static_cast<size_t>(j)] * gram_(j, j);
  // T1 = Theta * S, B = T1 * G, Spp = B * T1^T; term2 = tr[M^{-1} Spp].
  Matrix t1 = ScaledCopy(theta, s, /*axis=*/1);
  Matrix b = MatMul(t1, gram_);
  Matrix spp = MatMulNT(b, t1);
  Matrix z;
  CholeskySolveMatrixInto(l, spp, &z);
  double objective = term1 - z.Trace();
  // The exact objective is strictly positive and bounded by term1 (since
  // X^{-1} is dominated by D^{-2}); the subtraction's noise scales with the
  // capacitance solve's conditioning (see kFastPathTrustFloor). Values at or
  // below that noise floor are pure cancellation — treat the point as
  // infeasible so the line search backs off rather than "winning" with
  // garbage.
  if (!(objective > kFastPathTrustFloor * term1) || !std::isfinite(objective)) {
    if (grad_flat != nullptr) grad_flat->assign(theta_flat.size(), 0.0);
    return std::numeric_limits<double>::infinity();
  }

  if (grad_flat == nullptr) return objective;

  // --- Gradient (derivation in docs/pidentity_gradient.md):
  //   dC/dTheta = -2 ThetaTilde Y D + 2 * 1_p (r .* d)^T
  // with Y = X^{-1} G X^{-1}, ThetaTilde = Theta D, Z = D Y D,
  // r_j = Z_jj + sum_i Theta_ij (Theta Z)_ij.
  //
  // K = X^{-1} G = S(G1 - Theta^T M^{-1} (Theta G1)) with G1 = S G.
  Matrix g1 = ScaledCopy(gram_, s, /*axis=*/0);
  Matrix u = MatMul(theta, g1);
  Matrix v;
  CholeskySolveMatrixInto(l, u, &v);
  Matrix k = MatMulTN(theta, v);       // Theta^T (M^{-1} Theta G1)
  k.ScaleInPlace(-1.0);
  k.AddInPlace(g1, 1.0);
  k = ScaledCopy(k, s, /*axis=*/0);    // K = S (G1 - ...)

  // Y = K X^{-1} = (K1 - (K1 Theta^T) M^{-1} Theta) S, K1 = K S.
  Matrix k1 = ScaledCopy(k, s, /*axis=*/1);
  Matrix pmat = MatMulNT(k1, theta);   // N x p
  Matrix qt;
  CholeskySolveMatrixInto(l, pmat.Transposed(), &qt);
  Matrix q = qt.Transposed();          // N x p
  Matrix r_term = MatMul(q, theta);    // N x N
  Matrix y = k1;
  y.AddInPlace(r_term, -1.0);
  y = ScaledCopy(y, s, /*axis=*/1);

  // ThetaTilde = Theta D.
  Matrix theta_tilde = ScaledCopy(theta, d, /*axis=*/1);
  Matrix ty = MatMul(theta_tilde, y);            // p x N
  Matrix grad1 = ScaledCopy(ty, d, /*axis=*/1);  // ThetaTilde Y D
  grad1.ScaleInPlace(-2.0);

  // Z = D Y D; r_j = Z_jj + sum_i Theta_ij (Theta Z)_ij.
  Matrix zmat = ScaledCopy(ScaledCopy(y, d, 0), d, 1);
  Matrix tz = MatMul(theta, zmat);               // p x N
  Vector r(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double acc = zmat(j, j);
    for (int64_t i = 0; i < p_; ++i) acc += theta(i, j) * tz(i, j);
    r[static_cast<size_t>(j)] = acc;
  }

  grad_flat->assign(static_cast<size_t>(p_ * n), 0.0);
  for (int64_t i = 0; i < p_; ++i) {
    const double* g1row = grad1.Row(i);
    double* out = grad_flat->data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      out[j] = g1row[j] +
               2.0 * r[static_cast<size_t>(j)] * d[static_cast<size_t>(j)];
    }
  }
  return objective;
}

Matrix PIdentityObjective::BuildStrategy(const Matrix& theta) {
  const int64_t p = theta.rows();
  const int64_t n = theta.cols();
  Vector s = ColumnScales(theta);
  Matrix a(n + p, n);
  for (int64_t j = 0; j < n; ++j) a(j, j) = 1.0 / s[static_cast<size_t>(j)];
  for (int64_t i = 0; i < p; ++i)
    for (int64_t j = 0; j < n; ++j)
      a(n + i, j) = theta(i, j) / s[static_cast<size_t>(j)];
  return a;
}

double PIdentityObjective::TraceWithGram(const Matrix& theta, const Matrix& g) {
  const int64_t n = theta.cols();
  HDMM_CHECK(g.rows() == n && g.cols() == n);
  const Vector s = ColumnScales(theta);

  Matrix m = Capacitance(theta);
  Matrix l;
  if (CholeskyFactor(m, &l)) {
    double term1 = 0.0;
    for (int64_t j = 0; j < n; ++j)
      term1 += s[static_cast<size_t>(j)] * s[static_cast<size_t>(j)] * g(j, j);
    Matrix t1 = ScaledCopy(theta, s, 1);
    Matrix b = MatMul(t1, g);
    Matrix spp = MatMulNT(b, t1);
    Matrix z;
    CholeskySolveMatrixInto(l, spp, &z);
    double objective = term1 - z.Trace();
    // Fast path only trusted above the cancellation noise floor (see Eval).
    if (objective > kFastPathTrustFloor * term1 && std::isfinite(objective))
      return objective;
  }
  // The Woodbury form cancels catastrophically when the true trace is tiny
  // relative to term1 (e.g. rank-1 Grams against strategies with a heavy
  // total row). Fall back to the backward-stable dense path: form
  // X = A^T A explicitly and solve. O(n^3), evaluation-only.
  Matrix a = BuildStrategy(theta);
  Matrix x;
  GramInto(a, &x);
  Matrix lx;
  if (!CholeskyFactor(x, &lx)) return std::numeric_limits<double>::infinity();
  Matrix z;
  CholeskySolveMatrixInto(lx, g, &z);
  double tr = z.Trace();
  if (!(tr > 0.0) || !std::isfinite(tr))
    return std::numeric_limits<double>::infinity();
  return tr;
}

double PIdentityObjective::EvalReference(const Matrix& theta,
                                         const Matrix& gram) {
  Matrix a = BuildStrategy(theta);
  Matrix x;
  GramInto(a, &x);
  return TracePinvGram(x, gram);
}

}  // namespace hdmm
