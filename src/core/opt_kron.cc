#include "core/opt_kron.h"

#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/gram_cache.h"

namespace hdmm {

int AttributeDefaultP(const UnionWorkload& w, int attribute) {
  int p = 1;
  for (const ProductWorkload& prod : w.products()) {
    int candidate = DefaultP(prod.factors[static_cast<size_t>(attribute)]);
    p = std::max(p, candidate);
  }
  return p;
}

OptKronResult OptKron(const UnionWorkload& w, const OptKronOptions& options,
                      Rng* rng) {
  const int d = w.domain().NumAttributes();
  const int k = w.NumProducts();
  HDMM_CHECK(k >= 1);

  // Per-product, per-attribute Gram matrices (Section 6.2 notes (W^T W)_i^(j)
  // can be precomputed), deduplicated on the GramCache content fingerprint:
  // products that share an identical factor for attribute i (the common case
  // — unions are usually built from a small set of per-attribute building
  // blocks) share one Gram, one trace entry in the t table, and one term in
  // the surrogate sum. The Grams themselves come from the process-wide
  // GramCache, so they also survive across restarts and across optimizer
  // calls (serve-mode plans re-planning similar workloads pay nothing).
  // unique_grams[i][u] is the Gram pool for attribute i; gram_id[j][i] maps
  // product j into it.
  std::vector<std::vector<std::shared_ptr<const Matrix>>> unique_grams(
      static_cast<size_t>(d));
  std::vector<std::vector<int>> gram_id(static_cast<size_t>(k),
                                        std::vector<int>(static_cast<size_t>(d)));
  for (int i = 0; i < d; ++i) {
    std::unordered_map<uint64_t, int> by_key;  // fingerprint -> pool index
    for (int j = 0; j < k; ++j) {
      const Matrix& f =
          w.products()[static_cast<size_t>(j)].factors[static_cast<size_t>(i)];
      const uint64_t key = GramCache::FactorKey(f);
      auto it = by_key.find(key);
      if (it == by_key.end()) {
        it = by_key.emplace(key, static_cast<int>(
                                     unique_grams[static_cast<size_t>(i)].size()))
                 .first;
        unique_grams[static_cast<size_t>(i)].push_back(
            GramCache::Global().FactorGram(f));
      }
      gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)] = it->second;
    }
  }

  std::vector<int> p(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    p[static_cast<size_t>(i)] = options.p.empty()
                                    ? AttributeDefaultP(w, i)
                                    : options.p[static_cast<size_t>(i)];
  }

  const int restarts = std::max(1, options.restarts);
  // Restart-level parallelism: each restart runs its whole block-cyclic
  // optimization in one pool task on an independent forked stream (see
  // Opt0 for the determinism contract). With several restarts in flight the
  // inner objectives use serial kernels — allocation-free and contention-free.
  const GemmParallelism par =
      restarts > 1 ? GemmParallelism::kSerial : GemmParallelism::kPooled;
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(restarts));
  for (int r = 0; r < restarts; ++r)
    streams.push_back(rng->Fork(static_cast<uint64_t>(r)));

  struct RestartResult {
    std::vector<Matrix> thetas;
    double error = std::numeric_limits<double>::infinity();
  };
  std::vector<RestartResult> results(static_cast<size_t>(restarts));

  auto run_restart = [&](int restart, Rng* stream) {
    RestartResult out;
    // Random initialization of each attribute's parameters.
    std::vector<Matrix>& thetas = out.thetas;
    thetas.reserve(static_cast<size_t>(d));
    // Initialization scale cycles across restarts (see Opt0).
    const double scale = 0.5 / static_cast<double>(int64_t{1} << (restart % 3));
    for (int i = 0; i < d; ++i) {
      thetas.push_back(Matrix::RandomUniform(
          p[static_cast<size_t>(i)], w.domain().AttributeSize(i), stream, 0.0,
          scale));
    }
    // tu[i][u] = tr[(A_i^T A_i)^{-1} G_i^(u)], evaluated once per *unique*
    // Gram; t[j][i] reads through gram_id so products sharing a factor share
    // the trace.
    std::vector<std::vector<double>> tu(static_cast<size_t>(d));
    auto refresh_traces = [&](int i) {
      const auto& pool = unique_grams[static_cast<size_t>(i)];
      tu[static_cast<size_t>(i)].resize(pool.size());
      for (size_t u = 0; u < pool.size(); ++u)
        tu[static_cast<size_t>(i)][u] = PIdentityObjective::TraceWithGram(
            thetas[static_cast<size_t>(i)], *pool[u]);
    };
    for (int i = 0; i < d; ++i) refresh_traces(i);
    auto t = [&](int j, int i) {
      return tu[static_cast<size_t>(i)][static_cast<size_t>(
          gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)])];
    };

    auto total_error = [&]() {
      double total = 0.0;
      for (int j = 0; j < k; ++j) {
        double term = w.products()[static_cast<size_t>(j)].weight *
                      w.products()[static_cast<size_t>(j)].weight;
        for (int i = 0; i < d; ++i) term *= t(j, i);
        total += term;
      }
      return total;
    };

    double err = total_error();
    // Block-cyclic optimization (Problem 3). With k == 1 the surrogate is
    // just a rescaled G_i, so one pass reduces to independent OPT_0 calls
    // (Definition 10).
    const int cycles = (d == 1) ? 1 : options.max_cycles;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (int i = 0; i < d; ++i) {
        // Surrogate Gram: \hat{G}_i = sum_j c_j^2 G_i^(j) with
        // c_j = w_j prod_{i' != i} ||W_i'^(j) A_i'^+||_F (Equation 6).
        // Coefficients of products sharing a Gram are merged first so each
        // unique Gram is accumulated exactly once.
        const int64_t ni = w.domain().AttributeSize(i);
        const auto& pool = unique_grams[static_cast<size_t>(i)];
        std::vector<double> coeff(pool.size(), 0.0);
        for (int j = 0; j < k; ++j) {
          double c2 = w.products()[static_cast<size_t>(j)].weight *
                      w.products()[static_cast<size_t>(j)].weight;
          for (int i2 = 0; i2 < d; ++i2) {
            if (i2 == i) continue;
            c2 *= t(j, i2);
          }
          coeff[static_cast<size_t>(
              gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)])] += c2;
        }
        Matrix surrogate = Matrix::Zeros(ni, ni);
        for (size_t u = 0; u < pool.size(); ++u)
          surrogate.AddInPlace(*pool[u], coeff[u]);
        Opt0Result res = Opt0WarmStart(
            surrogate, thetas[static_cast<size_t>(i)], options.lbfgs, par);
        thetas[static_cast<size_t>(i)] = std::move(res.theta);
        refresh_traces(i);
      }
      double new_err = total_error();
      if (err - new_err <= options.cycle_tol * std::fabs(err)) {
        err = new_err;
        break;
      }
      err = new_err;
    }
    out.error = err;
    return out;
  };

  RestartPool().ParallelFor(0, restarts, /*grain=*/1, [&](int64_t r0,
                                                          int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      results[static_cast<size_t>(r)] = run_restart(
          static_cast<int>(r), &streams[static_cast<size_t>(r)]);
    }
  });

  // Keep the first restart unconditionally so the result always carries a
  // valid parameterization even if every objective came out non-finite;
  // later restarts replace it only on a strict improvement (lowest index
  // wins ties, independent of thread count).
  OptKronResult best;
  best.error = results[0].error;
  best.thetas = std::move(results[0].thetas);
  for (int r = 1; r < restarts; ++r) {
    if (results[static_cast<size_t>(r)].error < best.error) {
      best.error = results[static_cast<size_t>(r)].error;
      best.thetas = std::move(results[static_cast<size_t>(r)].thetas);
    }
  }
  return best;
}

std::vector<Matrix> KronStrategyFactors(const OptKronResult& result) {
  std::vector<Matrix> factors;
  factors.reserve(result.thetas.size());
  for (const Matrix& theta : result.thetas)
    factors.push_back(PIdentityObjective::BuildStrategy(theta));
  return factors;
}

}  // namespace hdmm
