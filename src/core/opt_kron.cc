#include "core/opt_kron.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdmm {

int AttributeDefaultP(const UnionWorkload& w, int attribute) {
  int p = 1;
  for (const ProductWorkload& prod : w.products()) {
    int candidate = DefaultP(prod.factors[static_cast<size_t>(attribute)]);
    p = std::max(p, candidate);
  }
  return p;
}

OptKronResult OptKron(const UnionWorkload& w, const OptKronOptions& options,
                      Rng* rng) {
  const int d = w.domain().NumAttributes();
  const int k = w.NumProducts();
  HDMM_CHECK(k >= 1);

  // Per-product, per-attribute Gram matrices (Section 6.2 notes (W^T W)_i^(j)
  // can be precomputed), deduplicated on factor identity: products that share
  // an identical factor for attribute i (the common case — unions are usually
  // built from a small set of per-attribute building blocks) share one Gram,
  // one trace entry in the t table, and one term in the surrogate sum.
  // unique_grams[i][u] is the Gram pool for attribute i; gram_id[j][i] maps
  // product j into it.
  std::vector<std::vector<Matrix>> unique_grams(static_cast<size_t>(d));
  std::vector<std::vector<int>> gram_id(static_cast<size_t>(k),
                                        std::vector<int>(static_cast<size_t>(d)));
  for (int i = 0; i < d; ++i) {
    std::vector<const Matrix*> seen;  // factor behind unique_grams[i][u]
    for (int j = 0; j < k; ++j) {
      const Matrix& f =
          w.products()[static_cast<size_t>(j)].factors[static_cast<size_t>(i)];
      int id = -1;
      for (size_t u = 0; u < seen.size(); ++u) {
        const Matrix& g = *seen[u];
        if (g.rows() == f.rows() && g.cols() == f.cols() &&
            g.storage() == f.storage()) {
          id = static_cast<int>(u);
          break;
        }
      }
      if (id < 0) {
        id = static_cast<int>(seen.size());
        seen.push_back(&f);
        unique_grams[static_cast<size_t>(i)].push_back(
            w.products()[static_cast<size_t>(j)].FactorGram(i));
      }
      gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)] = id;
    }
  }

  std::vector<int> p(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    p[static_cast<size_t>(i)] = options.p.empty()
                                    ? AttributeDefaultP(w, i)
                                    : options.p[static_cast<size_t>(i)];
  }

  OptKronResult best;
  best.error = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    // Random initialization of each attribute's parameters.
    std::vector<Matrix> thetas;
    thetas.reserve(static_cast<size_t>(d));
    // Initialization scale cycles across restarts (see Opt0).
    const double scale = 0.5 / static_cast<double>(int64_t{1} << (restart % 3));
    for (int i = 0; i < d; ++i) {
      thetas.push_back(Matrix::RandomUniform(
          p[static_cast<size_t>(i)], w.domain().AttributeSize(i), rng, 0.0,
          scale));
    }
    // tu[i][u] = tr[(A_i^T A_i)^{-1} G_i^(u)], evaluated once per *unique*
    // Gram; t[j][i] reads through gram_id so products sharing a factor share
    // the trace.
    std::vector<std::vector<double>> tu(static_cast<size_t>(d));
    auto refresh_traces = [&](int i) {
      const auto& pool = unique_grams[static_cast<size_t>(i)];
      tu[static_cast<size_t>(i)].resize(pool.size());
      for (size_t u = 0; u < pool.size(); ++u)
        tu[static_cast<size_t>(i)][u] = PIdentityObjective::TraceWithGram(
            thetas[static_cast<size_t>(i)], pool[u]);
    };
    for (int i = 0; i < d; ++i) refresh_traces(i);
    auto t = [&](int j, int i) {
      return tu[static_cast<size_t>(i)][static_cast<size_t>(
          gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)])];
    };

    auto total_error = [&]() {
      double total = 0.0;
      for (int j = 0; j < k; ++j) {
        double term = w.products()[static_cast<size_t>(j)].weight *
                      w.products()[static_cast<size_t>(j)].weight;
        for (int i = 0; i < d; ++i) term *= t(j, i);
        total += term;
      }
      return total;
    };

    double err = total_error();
    // Block-cyclic optimization (Problem 3). With k == 1 the surrogate is
    // just a rescaled G_i, so one pass reduces to independent OPT_0 calls
    // (Definition 10).
    const int cycles = (d == 1) ? 1 : options.max_cycles;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (int i = 0; i < d; ++i) {
        // Surrogate Gram: \hat{G}_i = sum_j c_j^2 G_i^(j) with
        // c_j = w_j prod_{i' != i} ||W_i'^(j) A_i'^+||_F (Equation 6).
        // Coefficients of products sharing a Gram are merged first so each
        // unique Gram is accumulated exactly once.
        const int64_t ni = w.domain().AttributeSize(i);
        const auto& pool = unique_grams[static_cast<size_t>(i)];
        std::vector<double> coeff(pool.size(), 0.0);
        for (int j = 0; j < k; ++j) {
          double c2 = w.products()[static_cast<size_t>(j)].weight *
                      w.products()[static_cast<size_t>(j)].weight;
          for (int i2 = 0; i2 < d; ++i2) {
            if (i2 == i) continue;
            c2 *= t(j, i2);
          }
          coeff[static_cast<size_t>(
              gram_id[static_cast<size_t>(j)][static_cast<size_t>(i)])] += c2;
        }
        Matrix surrogate = Matrix::Zeros(ni, ni);
        for (size_t u = 0; u < pool.size(); ++u)
          surrogate.AddInPlace(pool[u], coeff[u]);
        Opt0Result res = Opt0WarmStart(
            surrogate, thetas[static_cast<size_t>(i)], options.lbfgs);
        thetas[static_cast<size_t>(i)] = std::move(res.theta);
        refresh_traces(i);
      }
      double new_err = total_error();
      if (err - new_err <= options.cycle_tol * std::fabs(err)) {
        err = new_err;
        break;
      }
      err = new_err;
    }

    // Keep the first restart unconditionally so the result always carries a
    // valid parameterization even if every objective came out non-finite.
    if (restart == 0 || err < best.error) {
      best.error = err;
      best.thetas = std::move(thetas);
    }
  }
  return best;
}

std::vector<Matrix> KronStrategyFactors(const OptKronResult& result) {
  std::vector<Matrix> factors;
  factors.reserve(result.thetas.size());
  for (const Matrix& theta : result.thetas)
    factors.push_back(PIdentityObjective::BuildStrategy(theta));
  return factors;
}

}  // namespace hdmm
