// Expected-error computation and comparison helpers (Definition 7 and the
// error-ratio metric of Section 8.1).
#ifndef HDMM_CORE_ERROR_H_
#define HDMM_CORE_ERROR_H_

#include "common/rng.h"
#include "core/strategy.h"
#include "linalg/linear_operator.h"
#include "workload/workload.h"

namespace hdmm {

/// ||A||_1^2 * ||W A^+||_F^2 for explicit matrices (small domains).
double ExplicitSquaredError(const Matrix& w, const Matrix& a);

/// Ratio(W, K_other) = sqrt(Err(W, K_other) / Err(W, K_hdmm)), the metric of
/// Table 3/4/5. Independent of epsilon.
double ErrorRatio(const UnionWorkload& w, const Strategy& other,
                  const Strategy& reference);

/// Matrix-free estimate of ||A||_1^2 * tr[(A^T A)^{-1} W^T W] via Hutchinson
/// probes and CG, for strategies with no structured error formula (e.g., the
/// QuadTree baseline on large 2D domains). `sensitivity` = ||A||_1.
double EstimateSquaredError(const LinearOperator& strategy_op,
                            const LinearOperator& workload_op,
                            double sensitivity, Rng* rng,
                            int num_samples = 16);

/// Empirical total squared error of one mechanism run: given true workload
/// answers and reconstructed answers, sum of squared differences. Used for
/// the data-dependent algorithms (DAWA, PrivBayes) whose expected error has
/// no closed form (Section 8.1).
double EmpiricalSquaredError(const Vector& truth, const Vector& estimate);

}  // namespace hdmm

#endif  // HDMM_CORE_ERROR_H_
