#include "core/reconstruct.h"

namespace hdmm {

Vector LeastSquaresReconstruct(const LinearOperator& a, const Vector& y,
                               const LsmrOptions& options) {
  return LsmrSolve(a, y, options).x;
}

}  // namespace hdmm
