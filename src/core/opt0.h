// OPT_0 (Problem 2, Section 5.2): gradient-based optimization of p-Identity
// strategies for an explicitly-represented workload Gram matrix. Scales to
// modest domains (N ~ 10^4 in the paper); the multi-dimensional operators of
// Section 6 use it as their inner subroutine.
#ifndef HDMM_CORE_OPT0_H_
#define HDMM_CORE_OPT0_H_

#include "common/rng.h"
#include "core/pidentity.h"
#include "linalg/matrix.h"
#include "optimize/lbfgsb.h"

namespace hdmm {

/// Options for OPT_0.
struct Opt0Options {
  int p = 0;           ///< Extra rows; 0 = auto (max(1, n/16), Section 7.1).
  int restarts = 1;    ///< Random restarts (S in Algorithm 2).
  LbfgsbOptions lbfgs; ///< Inner optimizer settings.
  /// Uniform init range for Theta. Restarts cycle the scale downward from
  /// init_hi (see Opt0); 0.5 is markedly more robust than 1.0 at small n.
  double init_lo = 0.0, init_hi = 0.5;
};

/// Result of OPT_0: the optimized parameters and their error.
struct Opt0Result {
  Matrix theta;        ///< p x n parameters of the p-Identity strategy.
  double error = 0.0;  ///< ||W A^+||_F^2 (sensitivity-1 expected error).
};

/// Runs OPT_0 on the Gram matrix G = W^T W of an explicit workload. Taking
/// the Gram rather than W itself allows closed-form Grams for structured
/// workloads (e.g., AllRange) that are too large to materialize.
///
/// Restarts fan out in parallel over the shared pool, each on an
/// independent stream forked from `rng` (Rng::Fork), with the lowest
/// restart index winning error ties — the selected strategy is bit-identical
/// at any thread count. Restart 0 is kept unconditionally so the result
/// carries a valid Theta even when every restart evaluates non-finite.
Opt0Result Opt0(const Matrix& gram, const Opt0Options& options, Rng* rng);

/// Warm-started single run from an existing parameter matrix (used by the
/// block-cyclic union optimization, Problem 3). `par` selects the compute
/// kernels of the inner objective: callers that already run warm starts in
/// parallel (restart fan-out) pass kSerial.
Opt0Result Opt0WarmStart(const Matrix& gram, const Matrix& theta0,
                         const LbfgsbOptions& lbfgs,
                         GemmParallelism par = GemmParallelism::kPooled);

/// The paper's default p for a workload factor: 1 if every query row is
/// either a point query or the total (strategies richer than [I; T] don't
/// help), else max(1, n/16) (Section 7.1).
int DefaultP(const Matrix& workload_factor);

/// DefaultP from a Gram matrix when the factor itself is implicit: uses the
/// diagonal/off-diagonal structure to detect Identity+Total-like workloads.
int DefaultPFromSize(int64_t n);

}  // namespace hdmm

#endif  // HDMM_CORE_OPT0_H_
