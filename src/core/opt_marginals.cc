#include "core/opt_marginals.h"

#include <cmath>
#include <limits>

#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "linalg/lu.h"

namespace hdmm {

MarginalsAlgebra::MarginalsAlgebra(std::vector<int64_t> attr_sizes)
    : d_(static_cast<int>(attr_sizes.size())), sizes_(std::move(attr_sizes)) {
  HDMM_CHECK_MSG(d_ >= 1 && d_ <= 20, "marginals algebra supports d in [1,20]");
  const uint32_t masks = num_masks();
  cweight_.resize(masks);
  for (uint32_t m = 0; m < masks; ++m) {
    double c = 1.0;
    for (int i = 0; i < d_; ++i) {
      if (((m >> i) & 1u) == 0) c *= static_cast<double>(sizes_[static_cast<size_t>(i)]);
    }
    cweight_[m] = c;
  }
}

Matrix MarginalsAlgebra::BuildX(const Vector& u) const {
  const uint32_t masks = num_masks();
  HDMM_CHECK(u.size() == masks);
  Matrix x(masks, masks);
  for (uint32_t a = 0; a < masks; ++a) {
    const double ua = u[a];
    if (ua == 0.0) continue;
    for (uint32_t b = 0; b < masks; ++b) {
      x(a & b, b) += ua * cweight_[a | b];
    }
  }
  return x;
}

Vector MarginalsAlgebra::InverseWeights(const Vector& u) const {
  const uint32_t masks = num_masks();
  HDMM_CHECK(u.size() == masks);
  HDMM_CHECK_MSG(u[masks - 1] > 0.0,
                 "InverseWeights requires positive weight on the full "
                 "marginal (theta_{2^d} > 0)");
  Matrix x = BuildX(u);
  Vector e_full(masks, 0.0);
  e_full[masks - 1] = 1.0;  // C(2^d - 1) = I.
  return UpperTriangularSolve(x, e_full);
}

Vector MarginalsAlgebra::WorkloadTraceVector(const UnionWorkload& w) const {
  HDMM_CHECK(w.domain().NumAttributes() == d_);
  const uint32_t masks = num_masks();
  Vector tau(masks, 0.0);
  for (const ProductWorkload& prod : w.products()) {
    // Per-attribute trace and sum of the factor Gram matrices. tr(1 G) is
    // the sum of all entries of G; tr(I G) is the trace. Neither needs the
    // n x n Gram materialized: tr(F^T F) = ||F||_F^2 and
    // sum(F^T F) = 1^T F^T F 1 = ||F 1||^2, both O(rows x cols) row scans.
    std::vector<double> tr(static_cast<size_t>(d_)),
        sm(static_cast<size_t>(d_));
    for (int i = 0; i < d_; ++i) {
      const Matrix& f = prod.factors[static_cast<size_t>(i)];
      tr[static_cast<size_t>(i)] = f.FrobeniusNormSquared();
      double row_sum_sq = 0.0;
      for (int64_t r = 0; r < f.rows(); ++r) {
        const double* row = f.Row(r);
        double rs = 0.0;
        for (int64_t c = 0; c < f.cols(); ++c) rs += row[c];
        row_sum_sq += rs * rs;
      }
      sm[static_cast<size_t>(i)] = row_sum_sq;
    }
    const double w2 = prod.weight * prod.weight;
    for (uint32_t a = 0; a < masks; ++a) {
      double term = w2;
      for (int i = 0; i < d_; ++i) {
        term *= ((a >> i) & 1u) ? tr[static_cast<size_t>(i)]
                                : sm[static_cast<size_t>(i)];
      }
      tau[a] += term;
    }
  }
  return tau;
}

double MarginalsAlgebra::TraceObjective(const Vector& theta,
                                        const Vector& tau) const {
  const uint32_t masks = num_masks();
  HDMM_CHECK(theta.size() == masks && tau.size() == masks);
  Vector u(masks);
  for (uint32_t a = 0; a < masks; ++a) u[a] = theta[a] * theta[a];
  Vector v = InverseWeights(u);
  double tr = Dot(v, tau);
  // The exact trace is strictly positive; a non-positive value means the
  // triangular solve lost all precision (extreme weight disparity).
  if (!(tr > 0.0) || !std::isfinite(tr)) {
    return std::numeric_limits<double>::infinity();
  }
  return tr;
}

OptMarginalsResult OptMarginals(const UnionWorkload& w,
                                const OptMarginalsOptions& options, Rng* rng) {
  MarginalsAlgebra algebra(w.domain().sizes());
  const uint32_t masks = algebra.num_masks();
  const Vector tau = algebra.WorkloadTraceVector(w);

  // Objective (Problem 4): (sum theta)^2 * tr[G(v) W^T W], u = theta^2,
  // X(u) v = e_full. Gradient via the adjoint of the triangular solve:
  //   d(v . tau)/du_a = -sum_b y[a&b] c(a|b) v_b,  X(u)^T y = tau.
  ObjectiveFn fn = [&](const Vector& theta, Vector* grad) -> double {
    double s = Sum(theta);
    if (s <= 0.0 || theta[masks - 1] <= 0.0) {
      if (grad != nullptr) grad->assign(theta.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }
    Vector u(masks);
    for (uint32_t a = 0; a < masks; ++a) u[a] = theta[a] * theta[a];
    Matrix x = algebra.BuildX(u);
    Vector e_full(masks, 0.0);
    e_full[masks - 1] = 1.0;
    Vector v = UpperTriangularSolve(x, e_full);
    double vt = Dot(v, tau);
    double obj = s * s * vt;
    if (!(vt > 0.0) || !std::isfinite(obj)) {
      // Numerically poisoned region (the exact objective is positive).
      if (grad != nullptr) grad->assign(theta.size(), 0.0);
      return std::numeric_limits<double>::infinity();
    }
    if (grad != nullptr) {
      Vector y = UpperTriangularSolveTranspose(x, tau);
      grad->assign(masks, 0.0);
      // O(masks^2) double loop — the cost wall for high-d marginal domains.
      // Rows (gradient entries) are independent; fan out over the pool.
      ComputePool().ParallelFor(
          0, masks, /*grain=*/64, [&](int64_t a0, int64_t a1) {
            for (int64_t ai = a0; ai < a1; ++ai) {
              const uint32_t a = static_cast<uint32_t>(ai);
              double dvt = 0.0;
              for (uint32_t b = 0; b < masks; ++b) {
                dvt -= y[a & b] * algebra.CWeight(a | b) * v[b];
              }
              (*grad)[a] = 2.0 * s * vt + s * s * dvt * 2.0 * theta[a];
            }
          });
    }
    return obj;
  };

  // The objective is invariant to rescaling theta (both (sum theta)^2 and
  // the inverse weights scale oppositely), so bounding the box loses no
  // generality and keeps the triangular solves well-conditioned.
  Vector lower(masks, 0.0);
  lower[masks - 1] = options.min_full_weight;
  Vector upper(masks, 1e3);

  OptMarginalsResult best;
  // Deterministic fallback: theta = e_full (measure the full contingency
  // table, i.e. the identity strategy). Guarantees OPT_M never regresses
  // below the Algorithm 2 identity baseline on marginal workloads.
  best.theta.assign(masks, 0.0);
  best.theta[masks - 1] = 1.0;
  best.error = algebra.TraceObjective(best.theta, tau);

  // Masks present in the workload (for the workload-aware initialization):
  // a marginal strategy that measures roughly what the workload asks is an
  // excellent starting basin.
  Vector workload_mask_weight(masks, 0.0);
  for (const ProductWorkload& prod : w.products()) {
    uint32_t mask = 0;
    for (int i = 0; i < w.domain().NumAttributes(); ++i) {
      if (prod.factors[static_cast<size_t>(i)].rows() > 1) mask |= (1u << i);
    }
    workload_mask_weight[mask] += 1.0;
  }

  // Starting points are derived on the calling thread, in restart order,
  // from forked streams — a pure function of the seed, so the fan-out below
  // selects the same strategy at any thread count (lowest restart index
  // wins ties).
  const int restarts = std::max(1, options.restarts);
  std::vector<Vector> theta0s(static_cast<size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    Vector theta0(masks);
    if (r == 0 && options.workload_aware_init) {
      // Workload-aware start: weight the workload's own marginals, tiny
      // weight elsewhere.
      for (uint32_t a = 0; a < masks; ++a) {
        theta0[a] = workload_mask_weight[a] > 0.0 ? 1.0 : 0.01;
      }
    } else {
      Rng child = rng->Fork(static_cast<uint64_t>(r));
      const double scale = 1.0 / static_cast<double>(int64_t{1} << (r % 3));
      for (uint32_t a = 0; a < masks; ++a)
        theta0[a] = child.Uniform(0.0, scale);
    }
    theta0[masks - 1] = std::max(theta0[masks - 1], 0.1);
    theta0s[static_cast<size_t>(r)] = std::move(theta0);
  }

  std::vector<LbfgsbResult> results(static_cast<size_t>(restarts));
  RestartPool().ParallelFor(0, restarts, /*grain=*/1, [&](int64_t r0,
                                                          int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      results[static_cast<size_t>(r)] =
          MinimizeLbfgsb(fn, std::move(theta0s[static_cast<size_t>(r)]), lower,
                         upper, options.lbfgs);
    }
  });
  for (int r = 0; r < restarts; ++r) {
    LbfgsbResult& res = results[static_cast<size_t>(r)];
    if (res.f < best.error) {
      best.error = res.f;
      best.theta = std::move(res.x);
    }
  }
  return best;
}

}  // namespace hdmm
