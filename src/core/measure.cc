#include "core/measure.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

Vector LaplaceMeasure(const LinearOperator& a, const Vector& x,
                      double sensitivity, double epsilon, Rng* rng) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  HDMM_CHECK_MSG(std::isfinite(sensitivity) && sensitivity > 0.0,
                 "sensitivity must be positive and finite");
  Vector y;
  a.Apply(x, &y);
  const double scale = LaplaceScale(sensitivity, epsilon);
  for (double& v : y) v += rng->Laplace(scale);
  return y;
}

}  // namespace hdmm
