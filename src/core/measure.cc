#include "core/measure.h"

#include "common/check.h"

namespace hdmm {

Vector LaplaceMeasure(const LinearOperator& a, const Vector& x,
                      double sensitivity, double epsilon, Rng* rng) {
  HDMM_CHECK(epsilon > 0.0 && sensitivity > 0.0);
  Vector y;
  a.Apply(x, &y);
  const double scale = LaplaceScale(sensitivity, epsilon);
  for (double& v : y) v += rng->Laplace(scale);
  return y;
}

}  // namespace hdmm
