// OPT_+ (Definition 11): partitions a union-of-products workload into groups,
// optimizes each group with OPT_x, and combines the outputs into a
// union-of-products strategy. Needed when a single product strategy forces a
// suboptimal pairing of queries across attributes, e.g. (R x T) u (T x R).
#ifndef HDMM_CORE_OPT_UNION_H_
#define HDMM_CORE_OPT_UNION_H_

#include <vector>

#include "core/opt_kron.h"
#include "workload/workload.h"

namespace hdmm {

/// Options for OPT_+.
struct OptUnionOptions {
  OptKronOptions kron;
  int max_groups = 4;  ///< Upper bound on the number of strategy parts.
  /// Optimize the per-group budget split instead of splitting evenly
  /// (the extension noted under Definition 11: "each A_i gets a different
  /// fraction of the privacy budget"). The optimal split for group errors
  /// e_g is lambda_g proportional to e_g^{1/3}, giving total error
  /// (sum_g e_g^{1/3})^3 <= l^2 sum_g e_g.
  bool optimize_budget_split = true;
};

/// Result of OPT_+.
struct OptUnionResult {
  std::vector<std::vector<Matrix>> group_thetas;  ///< Per group, per attr.
  std::vector<std::vector<int>> group_products;   ///< Product indices.
  std::vector<double> budget_split;               ///< lambda_g, sums to 1.
  /// Total error under the chosen budget split (even or optimized):
  /// sum_g e_g / lambda_g^2 for sensitivity-1 group strategies.
  double error = 0.0;
};

/// Closed-form optimal budget split for per-group errors e_g:
/// lambda_g = e_g^{1/3} / sum_h e_h^{1/3}.
std::vector<double> OptimalBudgetSplit(const std::vector<double>& errors);

/// The grouping function g of Section 7.1: products are grouped by the set
/// of attributes on which their factor is not Total-like (a signature
/// bitmask). Groups beyond max_groups are merged smallest-first.
std::vector<std::vector<int>> PartitionBySignature(const UnionWorkload& w,
                                                   int max_groups);

/// Runs OPT_+ on the workload.
OptUnionResult OptUnion(const UnionWorkload& w, const OptUnionOptions& options,
                        Rng* rng);

}  // namespace hdmm

#endif  // HDMM_CORE_OPT_UNION_H_
