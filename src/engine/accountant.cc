#include "engine/accountant.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace hdmm {

namespace {
// Tolerance for "exactly exhausting" the budget: splitting epsilon_total
// into k equal parts accumulates k-1 roundings, which must not strand an
// unusable sliver or refuse the final legitimate charge.
constexpr double kRelSlack = 1e-12;
}  // namespace

BudgetAccountant::BudgetAccountant(double total_epsilon,
                                   const std::string& ledger_path)
    : total_epsilon_(total_epsilon), ledger_path_(ledger_path) {
  HDMM_CHECK_MSG(std::isfinite(total_epsilon) && total_epsilon > 0.0,
                 "total epsilon must be positive and finite");
  if (!ledger_path_.empty()) {
    ReplayLedgerFile();
    ledger_file_ = std::fopen(ledger_path_.c_str(), "a");
    HDMM_CHECK_MSG(ledger_file_ != nullptr,
                   "cannot open the budget ledger for appending");
  }
}

BudgetAccountant::~BudgetAccountant() {
  if (ledger_file_ != nullptr) std::fclose(ledger_file_);
}

// Ledger file format, one line per successful charge:
//   <epsilon> <dataset...to end of line>
// The epsilon leads so dataset names may contain spaces. Replay restores the
// per-dataset running sums; past charges are history, so they are summed
// without re-checking the ceiling (the configured total may have changed
// between runs — overspent datasets simply have no remaining budget).
void BudgetAccountant::ReplayLedgerFile() {
  std::ifstream in(ledger_path_);
  if (!in) return;  // No ledger yet: nothing spent.
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string eps_token;
    fields >> eps_token;
    char* end = nullptr;
    const double epsilon = std::strtod(eps_token.c_str(), &end);
    const bool eps_ok = !eps_token.empty() &&
                        end == eps_token.c_str() + eps_token.size() &&
                        std::isfinite(epsilon) && epsilon > 0.0;
    std::string dataset;
    std::getline(fields, dataset);
    const size_t start = dataset.find_first_not_of(' ');
    HDMM_CHECK_MSG(eps_ok && start != std::string::npos,
                   "malformed budget ledger line (a corrupt privacy ledger "
                   "must not be ignored)");
    dataset.erase(0, start);
    Ledger& ledger = ledgers_[dataset];
    ledger.spent += epsilon;
    ++ledger.charges;
  }
}

bool BudgetAccountant::TryCharge(const std::string& dataset, double epsilon) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  std::lock_guard<std::mutex> lock(mu_);
  Ledger& ledger = ledgers_[dataset];
  if (ledger.spent + epsilon > total_epsilon_ * (1.0 + kRelSlack)) {
    return false;
  }
  if (ledger_file_ != nullptr) {
    // Durable before spendable: the charge hits the disk ledger before the
    // caller is told to draw noise, so a crash can only over-record (refuse
    // budget that was never used), never under-record.
    std::fprintf(ledger_file_, "%.17g %s\n", epsilon, dataset.c_str());
    HDMM_CHECK_MSG(std::fflush(ledger_file_) == 0,
                   "budget ledger write failed; refusing to spend "
                   "unrecorded budget");
  }
  ledger.spent += epsilon;
  ++ledger.charges;
  return true;
}

double BudgetAccountant::Spent(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0.0 : it->second.spent;
}

double BudgetAccountant::Remaining(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  const double spent = it == ledgers_.end() ? 0.0 : it->second.spent;
  return spent >= total_epsilon_ ? 0.0 : total_epsilon_ - spent;
}

int64_t BudgetAccountant::NumCharges(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0 : it->second.charges;
}

}  // namespace hdmm
