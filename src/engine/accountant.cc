#include "engine/accountant.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "core/gaussian.h"

namespace hdmm {

namespace {

// Tolerance for "exactly exhausting" the budget: splitting the total into k
// equal parts accumulates k-1 roundings, which must not strand an unusable
// sliver or refuse the final legitimate charge.
constexpr double kRelSlack = 1e-12;

constexpr char kLedgerHeaderV2[] = "hdmm-budget-ledger v2";

// One replayed ledger record, in mechanism-native units (epsilon for
// laplace, rho for gaussian).
struct LedgerRecord {
  Mechanism mechanism = Mechanism::kLaplace;
  double value = 0.0;
  double delta = 0.0;
  std::string dataset;
};

bool ParseStrictDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return !token.empty() && end == token.c_str() + token.size();
}

// Parses one record line of either format. v1: `<epsilon> <dataset...>`.
// v2: `<mechanism> <value> <delta> <dataset...>`.
bool ParseRecordLine(const std::string& line, bool v2, LedgerRecord* out) {
  std::istringstream fields(line);
  std::string token;
  if (v2) {
    if (!(fields >> token) || !ParseMechanismName(token, &out->mechanism))
      return false;
  } else {
    out->mechanism = Mechanism::kLaplace;
  }
  if (!(fields >> token) || !ParseStrictDouble(token, &out->value) ||
      !std::isfinite(out->value) || out->value <= 0.0) {
    return false;
  }
  if (v2) {
    if (!(fields >> token) || !ParseStrictDouble(token, &out->delta) ||
        !std::isfinite(out->delta) || out->delta < 0.0 || out->delta >= 1.0) {
      return false;
    }
  } else {
    out->delta = 0.0;
  }
  std::getline(fields, out->dataset);
  const size_t start = out->dataset.find_first_not_of(' ');
  if (start == std::string::npos) return false;
  out->dataset.erase(0, start);
  return true;
}

void FormatRecord(std::FILE* file, const LedgerRecord& record) {
  std::fprintf(file, "%s %.17g %.17g %s\n", MechanismName(record.mechanism),
               record.value, record.delta, record.dataset.c_str());
}

// Flush userspace buffers AND the kernel page cache: fflush alone leaves the
// record in memory, where a power loss silently un-spends recorded budget.
void FlushAndSyncOrDie(std::FILE* file) {
  HDMM_CHECK_MSG(std::fflush(file) == 0,
                 "budget ledger write failed; refusing to spend unrecorded "
                 "budget");
  HDMM_CHECK_MSG(::fsync(::fileno(file)) == 0,
                 "budget ledger fsync failed; refusing to spend unrecorded "
                 "budget");
}

// Best-effort directory sync so a rename is itself durable.
void SyncParentDir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

BudgetAccountant::BudgetAccountant(BudgetAccountantOptions options)
    : options_(std::move(options)) {
  if (options_.regime == BudgetRegime::kPureDp) {
    HDMM_CHECK_MSG(
        std::isfinite(options_.total_epsilon) && options_.total_epsilon > 0.0,
        "total epsilon must be positive and finite");
    total_budget_ = options_.total_epsilon;
  } else {
    HDMM_CHECK_MSG(options_.delta > 0.0 && options_.delta < 1.0,
                   "zcdp regime needs a reporting delta in (0, 1)");
    if (options_.total_rho > 0.0) {
      HDMM_CHECK_MSG(std::isfinite(options_.total_rho),
                     "total rho must be positive and finite");
      total_budget_ = options_.total_rho;
    } else {
      HDMM_CHECK_MSG(std::isfinite(options_.total_epsilon) &&
                         options_.total_epsilon > 0.0,
                     "total epsilon must be positive and finite");
      total_budget_ =
          RhoFromEpsilonDelta(options_.total_epsilon, options_.delta);
    }
  }
  if (!options_.ledger_path.empty()) LoadLedger();
}

BudgetAccountant::BudgetAccountant(double total_epsilon,
                                   const std::string& ledger_path)
    : BudgetAccountant([&] {
        BudgetAccountantOptions options;
        options.regime = BudgetRegime::kPureDp;
        options.total_epsilon = total_epsilon;
        options.ledger_path = ledger_path;
        return options;
      }()) {}

BudgetAccountant::~BudgetAccountant() {
  if (ledger_file_ != nullptr) std::fclose(ledger_file_);
  if (lock_fd_ >= 0) ::close(lock_fd_);  // Releases the flock.
}

// Replays the ledger (v1 or v2), migrates it to canonical v2 via an atomic
// tmp + rename, and leaves an fsync-backed append handle open. Past charges
// are history: they are summed without re-checking the ceiling (the
// configured total may have changed between runs — overspent datasets simply
// have no remaining budget).
void BudgetAccountant::LoadLedger() {
  // Cross-process exclusion first: two accountants replaying one ledger
  // would each see the pre-existing spend only, and could jointly spend up
  // to twice the ceiling. The lock lives on a sidecar file because the
  // ledger itself is atomically replaced below (a lock on a renamed-over
  // inode would no longer exclude anyone).
  const std::string lock_path = options_.ledger_path + ".lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  HDMM_CHECK_MSG(lock_fd_ >= 0, "cannot open the budget ledger lock file");
  HDMM_CHECK_MSG(::flock(lock_fd_, LOCK_EX | LOCK_NB) == 0,
                 "budget ledger is locked by another accountant; two "
                 "processes sharing a ledger could jointly double-spend the "
                 "budget, so serving of a dataset must go through one "
                 "process");

  std::vector<LedgerRecord> records;
  std::ifstream in(options_.ledger_path, std::ios::binary);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    in.close();

    const bool ends_with_newline =
        !content.empty() && content.back() == '\n';
    std::istringstream lines(content);
    std::string line;
    std::vector<std::string> raw;
    while (std::getline(lines, line)) raw.push_back(line);

    size_t first = 0;
    bool v2 = false;
    if (!raw.empty() && raw[0] == kLedgerHeaderV2) {
      v2 = true;
      first = 1;
    }
    for (size_t i = first; i < raw.size(); ++i) {
      if (raw[i].empty() ||
          raw[i].find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      LedgerRecord record;
      if (!ParseRecordLine(raw[i], v2, &record)) {
        // A malformed FINAL line with no trailing newline is the signature
        // of a crash mid-append. By the durable-before-spendable protocol
        // the charge it describes was never acted on (TryCharge only
        // returns after the full record is on disk), so dropping it cannot
        // under-record; the canonical rewrite below truncates it away.
        if (i + 1 == raw.size() && !ends_with_newline) break;
        HDMM_CHECK_MSG(false,
                       "malformed budget ledger line (a corrupt privacy "
                       "ledger must not be ignored)");
      }
      records.push_back(std::move(record));
    }
  }

  // Apply the replayed history in regime units. A record the regime cannot
  // express (Gaussian history under a pure-dp accountant) is a configuration
  // error, not a runtime condition: it must abort, or the Gaussian spend
  // would silently vanish from the ledger.
  for (const LedgerRecord& record : records) {
    PrivacyCharge charge;
    charge.mechanism = record.mechanism;
    (record.mechanism == Mechanism::kLaplace ? charge.epsilon : charge.rho) =
        record.value;
    double cost = 0.0;
    std::string why;
    HDMM_CHECK_MSG(RegimeCost(charge, &cost, &why),
                   "budget ledger contains charges this accounting regime "
                   "cannot express (Gaussian history needs the zcdp regime)");
    Ledger& ledger = ledgers_[record.dataset];
    ledger.spent += cost;
    ++ledger.charges;
  }

  // Canonical v2 rewrite: migrates v1 files, truncates torn tails, and
  // guarantees the append handle below always starts at a record boundary.
  const std::string tmp_path = options_.ledger_path + ".tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "w");
  HDMM_CHECK_MSG(tmp != nullptr,
                 "cannot write the migrated budget ledger");
  std::fprintf(tmp, "%s\n", kLedgerHeaderV2);
  for (const LedgerRecord& record : records) FormatRecord(tmp, record);
  FlushAndSyncOrDie(tmp);
  std::fclose(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp_path, options_.ledger_path, ec);
  HDMM_CHECK_MSG(!ec, "cannot atomically replace the budget ledger");
  SyncParentDir(options_.ledger_path);

  ledger_file_ = std::fopen(options_.ledger_path.c_str(), "a");
  HDMM_CHECK_MSG(ledger_file_ != nullptr,
                 "cannot open the budget ledger for appending");
}

bool BudgetAccountant::RegimeCost(const PrivacyCharge& charge, double* cost,
                                  std::string* why) const {
  if (charge.mechanism == Mechanism::kLaplace) {
    HDMM_CHECK_MSG(std::isfinite(charge.epsilon) && charge.epsilon > 0.0,
                   "epsilon must be positive and finite");
    *cost = options_.regime == BudgetRegime::kPureDp
                ? charge.epsilon
                : PureDpToRho(charge.epsilon);
    return true;
  }
  HDMM_CHECK_MSG(std::isfinite(charge.rho) && charge.rho > 0.0,
                 "rho must be positive and finite");
  if (options_.regime == BudgetRegime::kPureDp) {
    // A Gaussian release satisfies no finite pure epsilon; pretending
    // otherwise (e.g. charging its reported epsilon) would not compose
    // soundly. Refuse instead of approximating.
    if (why != nullptr) {
      *why = "a Gaussian (zCDP) charge cannot be accounted in the pure-dp "
             "regime; configure the zcdp regime";
    }
    return false;
  }
  *cost = charge.rho;
  return true;
}

bool BudgetAccountant::TryCharge(const std::string& dataset,
                                 const PrivacyCharge& charge,
                                 std::string* why) {
  double cost = 0.0;
  if (!RegimeCost(charge, &cost, why)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Ledger& ledger = ledgers_[dataset];
  if (ledger.spent + cost > total_budget_ * (1.0 + kRelSlack)) {
    if (why != nullptr) {
      std::ostringstream msg;
      msg << "budget exceeded: spent " << ledger.spent << " of "
          << total_budget_ << " " << BudgetRegimeName(options_.regime)
          << " budget, charge costs " << cost;
      *why = msg.str();
    }
    return false;
  }
  if (ledger_file_ != nullptr) {
    // Durable before spendable: the record reaches the disk ledger (through
    // the page cache — fsync, not just fflush) before the caller is told to
    // draw noise, so a crash can only over-record (refuse budget that was
    // never used), never under-record.
    AppendRecordLocked(charge, dataset);
  }
  ledger.spent += cost;
  ++ledger.charges;
  return true;
}

bool BudgetAccountant::TryCharge(const std::string& dataset, double epsilon) {
  return TryCharge(dataset, PrivacyCharge::Laplace(epsilon));
}

void BudgetAccountant::AppendRecordLocked(const PrivacyCharge& charge,
                                          const std::string& dataset) {
  LedgerRecord record;
  record.mechanism = charge.mechanism;
  if (charge.mechanism == Mechanism::kLaplace) {
    record.value = charge.epsilon;
    record.delta = 0.0;
  } else {
    record.value = charge.rho;
    record.delta = options_.delta;
  }
  record.dataset = dataset;
  FormatRecord(ledger_file_, record);
  FlushAndSyncOrDie(ledger_file_);
}

double BudgetAccountant::Spent(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0.0 : it->second.spent;
}

double BudgetAccountant::Remaining(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  const double spent = it == ledgers_.end() ? 0.0 : it->second.spent;
  return spent >= total_budget_ ? 0.0 : total_budget_ - spent;
}

int64_t BudgetAccountant::NumCharges(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0 : it->second.charges;
}

double BudgetAccountant::TotalBudget() const { return total_budget_; }

double BudgetAccountant::total_epsilon() const {
  return options_.regime == BudgetRegime::kPureDp
             ? options_.total_epsilon
             : RhoToEpsilon(total_budget_, options_.delta);
}

double BudgetAccountant::ReportedEpsilon(const std::string& dataset) const {
  const double spent = Spent(dataset);
  return options_.regime == BudgetRegime::kPureDp
             ? spent
             : RhoToEpsilon(spent, options_.delta);
}

}  // namespace hdmm
