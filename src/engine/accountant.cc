#include "engine/accountant.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/gaussian.h"

namespace hdmm {

namespace {

// Tolerance for "exactly exhausting" the budget: splitting the total into k
// equal parts accumulates k-1 roundings, which must not strand an unusable
// sliver or refuse the final legitimate charge.
constexpr double kRelSlack = 1e-12;

constexpr char kLedgerHeaderV2[] = "hdmm-budget-ledger v2";

// One replayed ledger record, in mechanism-native units (epsilon for
// laplace, rho for gaussian).
struct LedgerRecord {
  Mechanism mechanism = Mechanism::kLaplace;
  double value = 0.0;
  double delta = 0.0;
  std::string dataset;
};

bool ParseStrictDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return !token.empty() && end == token.c_str() + token.size();
}

// Parses one record line of either format. v1: `<epsilon> <dataset...>`.
// v2: `<mechanism> <value> <delta> <dataset...>`.
bool ParseRecordLine(const std::string& line, bool v2, LedgerRecord* out) {
  std::istringstream fields(line);
  std::string token;
  if (v2) {
    if (!(fields >> token) || !ParseMechanismName(token, &out->mechanism))
      return false;
  } else {
    out->mechanism = Mechanism::kLaplace;
  }
  if (!(fields >> token) || !ParseStrictDouble(token, &out->value) ||
      !std::isfinite(out->value) || out->value <= 0.0) {
    return false;
  }
  if (v2) {
    if (!(fields >> token) || !ParseStrictDouble(token, &out->delta) ||
        !std::isfinite(out->delta) || out->delta < 0.0 || out->delta >= 1.0) {
      return false;
    }
  } else {
    out->delta = 0.0;
  }
  std::getline(fields, out->dataset);
  const size_t start = out->dataset.find_first_not_of(' ');
  if (start == std::string::npos) return false;
  out->dataset.erase(0, start);
  return true;
}

std::string FormatRecordString(const LedgerRecord& record) {
  char numbers[128];
  std::snprintf(numbers, sizeof(numbers), " %.17g %.17g ", record.value,
                record.delta);
  return std::string(MechanismName(record.mechanism)) + numbers +
         record.dataset + "\n";
}

void FormatRecord(std::FILE* file, const LedgerRecord& record) {
  const std::string text = FormatRecordString(record);
  std::fwrite(text.data(), 1, text.size(), file);
}

// Flush userspace buffers AND the kernel page cache: fflush alone leaves the
// record in memory, where a power loss silently un-spends recorded budget.
void FlushAndSyncOrDie(std::FILE* file) {
  HDMM_CHECK_MSG(std::fflush(file) == 0,
                 "budget ledger write failed; refusing to spend unrecorded "
                 "budget");
  HDMM_CHECK_MSG(::fsync(::fileno(file)) == 0,
                 "budget ledger fsync failed; refusing to spend unrecorded "
                 "budget");
}

// Best-effort directory sync so a rename is itself durable.
void SyncParentDir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

BudgetAccountant::BudgetAccountant(BudgetAccountantOptions options)
    : options_(std::move(options)) {
  if (options_.regime == BudgetRegime::kPureDp) {
    HDMM_CHECK_MSG(
        std::isfinite(options_.total_epsilon) && options_.total_epsilon > 0.0,
        "total epsilon must be positive and finite");
    total_budget_ = options_.total_epsilon;
  } else {
    HDMM_CHECK_MSG(options_.delta > 0.0 && options_.delta < 1.0,
                   "zcdp regime needs a reporting delta in (0, 1)");
    if (options_.total_rho > 0.0) {
      HDMM_CHECK_MSG(std::isfinite(options_.total_rho),
                     "total rho must be positive and finite");
      total_budget_ = options_.total_rho;
    } else {
      HDMM_CHECK_MSG(std::isfinite(options_.total_epsilon) &&
                         options_.total_epsilon > 0.0,
                     "total epsilon must be positive and finite");
      total_budget_ =
          RhoFromEpsilonDelta(options_.total_epsilon, options_.delta);
    }
  }
  for (const auto& [dataset, ceiling] : options_.dataset_ceilings) {
    HDMM_CHECK_MSG(std::isfinite(ceiling) && ceiling > 0.0,
                   "per-dataset budget ceilings must be positive and finite");
    (void)dataset;
  }
  if (!options_.ledger_path.empty()) LoadLedger();
}

BudgetAccountant::BudgetAccountant(double total_epsilon,
                                   const std::string& ledger_path)
    : BudgetAccountant([&] {
        BudgetAccountantOptions options;
        options.regime = BudgetRegime::kPureDp;
        options.total_epsilon = total_epsilon;
        options.ledger_path = ledger_path;
        return options;
      }()) {}

BudgetAccountant::~BudgetAccountant() {
  if (ledger_file_ != nullptr) std::fclose(ledger_file_);
  if (lock_fd_ >= 0) ::close(lock_fd_);  // Releases the flock.
}

// Replays the ledger (v1 or v2), migrates it to canonical v2 via an atomic
// tmp + rename, and leaves an fsync-backed append handle open. Past charges
// are history: they are summed without re-checking the ceiling (the
// configured total may have changed between runs — overspent datasets simply
// have no remaining budget).
void BudgetAccountant::LoadLedger() {
  // Cross-process exclusion first: two accountants replaying one ledger
  // would each see the pre-existing spend only, and could jointly spend up
  // to twice the ceiling. The lock lives on a sidecar file because the
  // ledger itself is atomically replaced below (a lock on a renamed-over
  // inode would no longer exclude anyone).
  const std::string lock_path = options_.ledger_path + ".lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  HDMM_CHECK_MSG(lock_fd_ >= 0, "cannot open the budget ledger lock file");
  // A held lock is usually transient — a restarting predecessor releasing
  // its flock, or a sibling test process — so retry with exponential backoff
  // (1ms doubling to 100ms) until the configured deadline before treating it
  // as the genuinely fatal two-servers-one-ledger configuration.
  // Failpoint `accountant.flock.busy` makes an attempt see a held lock.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, options_.lock_timeout_ms));
  WallTimer flock_timer;
  int backoff_ms = 1;
  bool locked = false;
  while (true) {
    const bool injected_busy = HDMM_FAILPOINT("accountant.flock.busy");
    if (!injected_busy && ::flock(lock_fd_, LOCK_EX | LOCK_NB) == 0) {
      locked = true;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    // Never sleep past the deadline: an unclamped backoff step (up to
    // 100ms) could overshoot the configured lock_timeout_ms by a whole
    // step, making small timeouts lie.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(
        std::min(std::chrono::milliseconds(backoff_ms),
                 std::max(std::chrono::milliseconds(1), remaining)));
    backoff_ms = std::min(backoff_ms * 2, 100);
  }
  static Histogram* const flock_wait =
      Metrics::GetHistogram("accountant.flock_wait_ns");
  flock_wait->Record(static_cast<uint64_t>(flock_timer.Seconds() * 1e9));
  HDMM_CHECK_MSG(locked,
                 "budget ledger is locked by another accountant (still held "
                 "after the lock timeout); two processes sharing a ledger "
                 "could jointly double-spend the budget, so serving of a "
                 "dataset must go through one process");

  std::vector<LedgerRecord> records;
  std::ifstream in(options_.ledger_path, std::ios::binary);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    in.close();

    const bool ends_with_newline =
        !content.empty() && content.back() == '\n';
    std::istringstream lines(content);
    std::string line;
    std::vector<std::string> raw;
    std::vector<size_t> offsets;  // Byte offset of each line's first byte.
    size_t next_offset = 0;
    while (std::getline(lines, line)) {
      raw.push_back(line);
      offsets.push_back(next_offset);
      next_offset += line.size() + 1;
    }

    size_t first = 0;
    bool v2 = false;
    if (!raw.empty() && raw[0] == kLedgerHeaderV2) {
      v2 = true;
      first = 1;
    }
    for (size_t i = first; i < raw.size(); ++i) {
      if (raw[i].empty() ||
          raw[i].find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      LedgerRecord record;
      if (!ParseRecordLine(raw[i], v2, &record)) {
        // A malformed FINAL line with no trailing newline is the signature
        // of a crash mid-append. By the durable-before-spendable protocol
        // the charge it describes was never acted on (TryCharge only
        // returns after the full record is on disk), so dropping it cannot
        // under-record; the canonical rewrite below truncates it away.
        if (i + 1 == raw.size() && !ends_with_newline) break;
        // Interior corruption is unrecoverable — silently skipping records
        // would un-spend budget — but the abort should leave the operator
        // everything: which line, which byte, and the bytes themselves
        // (the copy survives whatever fix is applied to the live ledger).
        const std::string copy_path = options_.ledger_path + ".corrupt";
        std::error_code copy_ec;
        std::filesystem::copy_file(
            options_.ledger_path, copy_path,
            std::filesystem::copy_options::overwrite_existing, copy_ec);
        std::ostringstream diagnostic;
        diagnostic << "malformed budget ledger line " << (i + 1)
                   << " (byte offset " << offsets[i] << "): '" << raw[i]
                   << "'; ";
        if (copy_ec) {
          diagnostic << "failed to copy the ledger to '" << copy_path << "'; ";
        } else {
          diagnostic << "ledger copied to '" << copy_path << "'; ";
        }
        diagnostic << "a corrupt privacy ledger must not be ignored";
        HDMM_CHECK_MSG(false, diagnostic.str().c_str());
      }
      records.push_back(std::move(record));
    }
  }

  // Apply the replayed history in regime units. A record the regime cannot
  // express (Gaussian history under a pure-dp accountant) is a configuration
  // error, not a runtime condition: it must abort, or the Gaussian spend
  // would silently vanish from the ledger.
  for (const LedgerRecord& record : records) {
    PrivacyCharge charge;
    charge.mechanism = record.mechanism;
    (record.mechanism == Mechanism::kLaplace ? charge.epsilon : charge.rho) =
        record.value;
    double cost = 0.0;
    std::string why;
    HDMM_CHECK_MSG(RegimeCost(charge, &cost, &why),
                   "budget ledger contains charges this accounting regime "
                   "cannot express (Gaussian history needs the zcdp regime)");
    Ledger& ledger = ledgers_[record.dataset];
    ledger.spent += cost;
    ++ledger.charges;
  }

  // Canonical v2 rewrite: migrates v1 files, truncates torn tails, and
  // guarantees the append handle below always starts at a record boundary.
  const std::string tmp_path = options_.ledger_path + ".tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "w");
  HDMM_CHECK_MSG(tmp != nullptr,
                 "cannot write the migrated budget ledger");
  std::fprintf(tmp, "%s\n", kLedgerHeaderV2);
  for (const LedgerRecord& record : records) FormatRecord(tmp, record);
  FlushAndSyncOrDie(tmp);
  std::fclose(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp_path, options_.ledger_path, ec);
  HDMM_CHECK_MSG(!ec, "cannot atomically replace the budget ledger");
  SyncParentDir(options_.ledger_path);

  ledger_file_ = std::fopen(options_.ledger_path.c_str(), "a");
  HDMM_CHECK_MSG(ledger_file_ != nullptr,
                 "cannot open the budget ledger for appending");
}

bool BudgetAccountant::RegimeCost(const PrivacyCharge& charge, double* cost,
                                  std::string* why) const {
  if (charge.mechanism == Mechanism::kLaplace) {
    HDMM_CHECK_MSG(std::isfinite(charge.epsilon) && charge.epsilon > 0.0,
                   "epsilon must be positive and finite");
    *cost = options_.regime == BudgetRegime::kPureDp
                ? charge.epsilon
                : PureDpToRho(charge.epsilon);
    return true;
  }
  HDMM_CHECK_MSG(std::isfinite(charge.rho) && charge.rho > 0.0,
                 "rho must be positive and finite");
  if (options_.regime == BudgetRegime::kPureDp) {
    // A Gaussian release satisfies no finite pure epsilon; pretending
    // otherwise (e.g. charging its reported epsilon) would not compose
    // soundly. Refuse instead of approximating.
    if (why != nullptr) {
      *why = "a Gaussian (zCDP) charge cannot be accounted in the pure-dp "
             "regime; configure the zcdp regime";
    }
    return false;
  }
  *cost = charge.rho;
  return true;
}

Status BudgetAccountant::Charge(const std::string& dataset,
                                const PrivacyCharge& charge) {
  static Counter* const charges = Metrics::GetCounter("accountant.charges");
  static Counter* const refusals = Metrics::GetCounter("accountant.refusals");
  double cost = 0.0;
  std::string why;
  if (!RegimeCost(charge, &cost, &why)) {
    refusals->Add(1);
    return Status::FailedPrecondition(why);
  }
  const double ceiling = CeilingFor(dataset);
  std::lock_guard<std::mutex> lock(mu_);
  Ledger& ledger = ledgers_[dataset];
  if (ledger.spent + cost > ceiling * (1.0 + kRelSlack)) {
    std::ostringstream msg;
    msg << "budget exceeded: spent " << ledger.spent << " of " << ceiling
        << " " << BudgetRegimeName(options_.regime)
        << " budget, charge costs " << cost;
    refusals->Add(1);
    return Status::OverBudget(msg.str());
  }
  if (ledger_file_ != nullptr) {
    // Durable before spendable: the record reaches the disk ledger (through
    // the page cache — fsync, not just fflush) before the caller is told to
    // draw noise, so a crash can only over-record (refuse budget that was
    // never used), never under-record. An append failure refuses the charge
    // without updating the in-memory ledger.
    const Status appended = AppendRecordLocked(charge, dataset);
    if (!appended.ok()) {
      refusals->Add(1);
      return appended;
    }
  }
  ledger.spent += cost;
  ++ledger.charges;
  charges->Add(1);
  // Per-dataset gauges are in regime units (epsilon for pure-dp, rho for
  // zcdp), matching Spent()/Remaining(). The name lookup is a mutex-guarded
  // map probe — noise next to the fsync this path just paid.
  Metrics::GetGauge("accountant.spent." + dataset)->Set(ledger.spent);
  Metrics::GetGauge("accountant.remaining." + dataset)
      ->Set(ledger.spent >= ceiling ? 0.0 : ceiling - ledger.spent);
  return Status::Ok();
}

bool BudgetAccountant::TryCharge(const std::string& dataset,
                                 const PrivacyCharge& charge,
                                 std::string* why) {
  const Status status = Charge(dataset, charge);
  if (status.ok()) return true;
  if (why != nullptr) *why = status.message();
  return false;
}

bool BudgetAccountant::TryCharge(const std::string& dataset, double epsilon) {
  return TryCharge(dataset, PrivacyCharge::Laplace(epsilon));
}

HDMM_REGISTER_CRASH_SITE("accountant.append.before");
HDMM_REGISTER_CRASH_SITE("accountant.append.torn");
HDMM_REGISTER_CRASH_SITE("accountant.append.after_sync");

Status BudgetAccountant::AppendRecordLocked(const PrivacyCharge& charge,
                                            const std::string& dataset) {
  if (wedged_) {
    return Status::IoError(
        "budget ledger is wedged after a failed append rollback; refusing "
        "further durable charges (restart to replay the ledger)");
  }
  LedgerRecord record;
  record.mechanism = charge.mechanism;
  if (charge.mechanism == Mechanism::kLaplace) {
    record.value = charge.epsilon;
    record.delta = 0.0;
  } else {
    record.value = charge.rho;
    record.delta = options_.delta;
  }
  record.dataset = dataset;
  if (HDMM_FAILPOINT("accountant.append.before")) {
    // Crash before any byte of the record exists: recovery must replay
    // exactly the previously-acked charges.
    Failpoints::CrashNow();
  }
  // Record the pre-append boundary so a failed write can be truncated away
  // instead of leaving torn bytes for the next append to extend. With the
  // flock held this process is the only writer, so SEEK_END is that
  // boundary.
  std::fseek(ledger_file_, 0, SEEK_END);
  const long boundary = std::ftell(ledger_file_);
  if (HDMM_FAILPOINT("accountant.append.torn")) {
    // Crash with half the record durably on disk — the torn-final-line case
    // LoadLedger's replay must drop. The charge was never acked, so the
    // dropped record cannot under-count spend.
    const std::string text = FormatRecordString(record);
    std::fwrite(text.data(), 1, text.size() / 2, ledger_file_);
    std::fflush(ledger_file_);
    ::fsync(::fileno(ledger_file_));
    Failpoints::CrashNow();
  }
  bool failed = HDMM_FAILPOINT("accountant.append.io_error");
  if (!failed) {
    FormatRecord(ledger_file_, record);
    failed = std::fflush(ledger_file_) != 0 ||
             ::fsync(::fileno(ledger_file_)) != 0;
  }
  if (failed) {
    // Roll the file back to the record boundary. Every direction here is
    // privacy-safe: rollback restores the acked prefix exactly; a failed
    // rollback wedges the accountant so no append can ever land after torn
    // bytes; and the refused charge draws no noise either way.
    std::clearerr(ledger_file_);
    const bool rolled_back =
        boundary >= 0 && ::ftruncate(::fileno(ledger_file_), boundary) == 0 &&
        std::fseek(ledger_file_, 0, SEEK_END) == 0;
    if (!rolled_back) {
      wedged_ = true;
      return Status::IoError(
          "budget ledger append failed and rollback failed; ledger wedged, "
          "refusing further durable charges");
    }
    return Status::IoError(
        "budget ledger append failed; charge refused and not recorded");
  }
  if (HDMM_FAILPOINT("accountant.append.after_sync")) {
    // Crash after the record is durable but before the caller learns the
    // charge succeeded: recovery may see one more charge than was acked —
    // over-recording, the safe direction.
    Failpoints::CrashNow();
  }
  return Status::Ok();
}

double BudgetAccountant::Spent(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0.0 : it->second.spent;
}

double BudgetAccountant::Remaining(const std::string& dataset) const {
  const double ceiling = CeilingFor(dataset);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  const double spent = it == ledgers_.end() ? 0.0 : it->second.spent;
  return spent >= ceiling ? 0.0 : ceiling - spent;
}

int64_t BudgetAccountant::NumCharges(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(dataset);
  return it == ledgers_.end() ? 0 : it->second.charges;
}

double BudgetAccountant::TotalBudget() const { return total_budget_; }

double BudgetAccountant::TotalBudget(const std::string& dataset) const {
  return CeilingFor(dataset);
}

double BudgetAccountant::CeilingFor(const std::string& dataset) const {
  auto it = options_.dataset_ceilings.find(dataset);
  return it == options_.dataset_ceilings.end() ? total_budget_ : it->second;
}

double BudgetAccountant::total_epsilon() const {
  return options_.regime == BudgetRegime::kPureDp
             ? options_.total_epsilon
             : RhoToEpsilon(total_budget_, options_.delta);
}

double BudgetAccountant::ReportedEpsilon(const std::string& dataset) const {
  const double spent = Spent(dataset);
  return options_.regime == BudgetRegime::kPureDp
             ? spent
             : RhoToEpsilon(spent, options_.delta);
}

}  // namespace hdmm
