#include "engine/tile_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace hdmm {

namespace {

// Registry-cached counters/gauges, the StrategyCache pattern. Gauges are
// process-wide aggregates across every live store, maintained through the
// global atomics below so concurrent stores don't clobber each other.
Counter* const g_writes = Metrics::GetCounter("tile_store.writes");
Counter* const g_seals = Metrics::GetCounter("tile_store.seals");
Counter* const g_hits = Metrics::GetCounter("tile_store.hits");
Counter* const g_faults = Metrics::GetCounter("tile_store.faults");
Counter* const g_evictions = Metrics::GetCounter("tile_store.evictions");
Counter* const g_corrupt =
    Metrics::GetCounter("tile_store.corrupt_quarantined");
Gauge* const g_mapped_bytes_gauge = Metrics::GetGauge("tile_store.mapped_bytes");
Gauge* const g_hot_tiles_gauge = Metrics::GetGauge("tile_store.hot_tiles");

std::atomic<int64_t> g_mapped_bytes{0};
std::atomic<int64_t> g_hot_tiles{0};

void AddMappedBytes(int64_t delta) {
  g_mapped_bytes_gauge->Set(static_cast<double>(
      g_mapped_bytes.fetch_add(delta, std::memory_order_relaxed) + delta));
}

void AddHotTiles(int64_t delta) {
  g_hot_tiles_gauge->Set(static_cast<double>(
      g_hot_tiles.fetch_add(delta, std::memory_order_relaxed) + delta));
}

HDMM_REGISTER_CRASH_SITE("tile_store.seal");

// Tile file layout: 40-byte header (8-aligned, so the payload doubles start
// aligned) followed by `cells` raw doubles.
constexpr uint32_t kTileMagic = 0x4c495448u;  // "HTIL"
constexpr uint32_t kTileVersion = 1;

struct TileFileHeader {
  uint32_t magic = kTileMagic;
  uint32_t version = kTileVersion;
  int64_t tile_index = 0;
  int64_t cells = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(TileFileHeader) == 32, "header layout drifted");
constexpr int64_t kPayloadOffset = 40;  // Header plus 8 reserved bytes.

// FNV-1a over the payload bytes: cheap, order-sensitive, catches torn and
// truncated writes (the same integrity check family StrategyCache uses).
uint64_t Fnv1a(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

const char* SessionStorageName(SessionStorage backend) {
  switch (backend) {
    case SessionStorage::kMemory:
      return "memory";
    case SessionStorage::kMmap:
      return "mmap";
  }
  return "unknown";
}

bool ParseSessionStorage(const std::string& text, SessionStorage* out) {
  if (text == "memory") {
    *out = SessionStorage::kMemory;
    return true;
  }
  if (text == "mmap") {
    *out = SessionStorage::kMmap;
    return true;
  }
  return false;
}

// -------------------------------------------------------- DataVectorStore

DataVectorStore::DataVectorStore(int64_t size, int64_t tile_bytes)
    : size_(size) {
  HDMM_CHECK(size >= 0);
  tile_cells_ = std::max<int64_t>(1, tile_bytes / 8);
}

double DataVectorStore::At(int64_t index) const {
  HDMM_CHECK(index >= 0 && index < size_);
  if (const double* contig = ContiguousData()) return contig[index];
  const int64_t tile = index / tile_cells_;
  StatusOr<TileRef> ref = Tile(tile);
  if (!ref.ok()) {
    std::fprintf(stderr, "tile store: unreadable tile %lld: %s\n",
                 static_cast<long long>(tile),
                 ref.status().ToString().c_str());
    std::abort();
  }
  return ref.value().data()[index - tile * tile_cells_];
}

std::unique_ptr<DataVectorStore> MakeDataVectorStore(
    int64_t size, const SessionStorageOptions& options,
    const std::string& name) {
  if (options.backend == SessionStorage::kMemory) {
    return std::make_unique<MemoryVectorStore>(size, options.tile_bytes);
  }
  HDMM_CHECK_MSG(!options.dir.empty(),
                 "mmap session storage needs a directory");
  return std::make_unique<MmapTileStore>(
      size, options.tile_bytes, options.dir + "/" + name,
      options.hot_tile_budget);
}

// ------------------------------------------------------ MemoryVectorStore

MemoryVectorStore::MemoryVectorStore(int64_t size, int64_t tile_bytes)
    : DataVectorStore(size, tile_bytes) {
  data_.reserve(static_cast<size_t>(size));
}

std::unique_ptr<MemoryVectorStore> MemoryVectorStore::Adopt(
    Vector data, int64_t tile_bytes) {
  auto store = std::make_unique<MemoryVectorStore>(
      static_cast<int64_t>(data.size()), tile_bytes);
  store->data_ = std::move(data);
  store->appended_cells_ = store->size_;
  store->sealed_ = true;
  return store;
}

Status MemoryVectorStore::AppendTile(const double* cells, int64_t count) {
  HDMM_CHECK(!sealed_);
  HDMM_CHECK(count == TileCells(appended_cells_ / tile_cells_));
  data_.insert(data_.end(), cells, cells + count);
  appended_cells_ += count;
  return Status::Ok();
}

Status MemoryVectorStore::Seal() {
  HDMM_CHECK(appended_cells_ == size_);
  sealed_ = true;
  return Status::Ok();
}

StatusOr<TileRef> MemoryVectorStore::Tile(int64_t tile) const {
  HDMM_CHECK(sealed_);
  HDMM_CHECK(tile >= 0 && tile < num_tiles());
  // Aliasing ref into the vector: nothing to release, the store outlives
  // every ref a session hands out.
  std::shared_ptr<const double> alias(data_.data() + tile * tile_cells_,
                                      [](const double*) {});
  return TileRef(std::move(alias), TileCells(tile));
}

// ---------------------------------------------------------- MmapTileStore

MmapTileStore::MmapTileStore(int64_t size, int64_t tile_bytes,
                             std::string dir, int64_t hot_tile_budget,
                             bool remove_dir_on_destroy)
    : DataVectorStore(size, tile_bytes),
      dir_(std::move(dir)),
      hot_tile_budget_(std::max<int64_t>(0, hot_tile_budget)),
      remove_dir_on_destroy_(remove_dir_on_destroy) {
  // A fresh build never trusts leftovers: a predecessor that crashed mid-
  // build (or mid-seal) may have left torn tiles behind.
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
  std::filesystem::create_directories(dir_, ec);
  HDMM_CHECK_MSG(!ec, "tile store: cannot create directory");
}

MmapTileStore::~MmapTileStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tile, hot] : hot_) {
      (void)tile;
      hot.data.reset();
    }
    AddHotTiles(-static_cast<int64_t>(hot_.size()));
    hot_.clear();
    lru_.clear();
    hot_bytes_ = 0;
  }
  if (remove_dir_on_destroy_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

std::string MmapTileStore::TilePath(int64_t tile) const {
  char name[32];
  std::snprintf(name, sizeof(name), "tile-%08lld.bin",
                static_cast<long long>(tile));
  return dir_ + "/" + name;
}

Status MmapTileStore::AppendTile(const double* cells, int64_t count) {
  HDMM_CHECK(!sealed_);
  const int64_t tile = appended_cells_ / tile_cells_;
  HDMM_CHECK(count == TileCells(tile));
  if (HDMM_FAILPOINT("tile_store.write.io_error")) {
    return Status::IoError("injected: tile_store.write.io_error");
  }

  const std::string path = TilePath(tile);
  const std::string tmp = path + ".tmp";
  const int64_t payload_bytes = count * static_cast<int64_t>(sizeof(double));
  const int64_t file_bytes = kPayloadOffset + payload_bytes;

  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));
  if (::ftruncate(fd, file_bytes) != 0) {
    const Status st = Status::IoError(ErrnoMessage("ftruncate", tmp));
    ::close(fd);
    return st;
  }
  // Write through a transient mapping and schedule writeback immediately
  // (msync MS_ASYNC): the build pass keeps at most one tile's address space
  // mapped for writing at any moment, so out-of-core construction stays
  // inside the same address-space budget as serving.
  void* addr = ::mmap(nullptr, static_cast<size_t>(file_bytes),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) return Status::IoError(ErrnoMessage("mmap", tmp));

  TileFileHeader header;
  header.tile_index = tile;
  header.cells = count;
  header.checksum = Fnv1a(cells, static_cast<size_t>(payload_bytes));
  std::memset(addr, 0, kPayloadOffset);
  std::memcpy(addr, &header, sizeof(header));
  std::memcpy(static_cast<char*>(addr) + kPayloadOffset, cells,
              static_cast<size_t>(payload_bytes));
  ::msync(addr, static_cast<size_t>(file_bytes), MS_ASYNC);
  ::munmap(addr, static_cast<size_t>(file_bytes));

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename '" + tmp + "': " + ec.message());
  appended_cells_ += count;
  g_writes->Add(1);
  return Status::Ok();
}

Status MmapTileStore::Seal() {
  HDMM_CHECK(appended_cells_ == size_);
  // The crash site: a process killed here leaves every tile on disk but no
  // manifest — the next build over this directory wipes and rebuilds.
  if (HDMM_FAILPOINT("tile_store.seal")) {
    return Status::IoError("injected: tile_store.seal");
  }
  const std::string path = dir_ + "/" + kManifestName;
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return Status::IoError(ErrnoMessage("open", tmp));
    std::fprintf(f, "htil v%u\nsize %lld\ntile_cells %lld\nnum_tiles %lld\n",
                 kTileVersion, static_cast<long long>(size_),
                 static_cast<long long>(tile_cells_),
                 static_cast<long long>(num_tiles()));
    const bool write_ok = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    std::fclose(f);
    if (!write_ok) return Status::IoError(ErrnoMessage("fsync", tmp));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename '" + tmp + "': " + ec.message());
  sealed_ = true;
  g_seals->Add(1);
  return Status::Ok();
}

StatusOr<std::shared_ptr<const double>> MmapTileStore::MapTile(
    int64_t tile, int64_t* bytes) const {
  const std::string path = TilePath(tile);
  if (HDMM_FAILPOINT("tile_store.read.io_error")) {
    return Status::IoError("injected: tile_store.read.io_error");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));

  const int64_t want_cells = TileCells(tile);
  const int64_t want_bytes =
      kPayloadOffset + want_cells * static_cast<int64_t>(sizeof(double));
  struct stat st;
  bool valid = ::fstat(fd, &st) == 0 && st.st_size == want_bytes;
  void* addr = MAP_FAILED;
  if (valid) {
    addr = ::mmap(nullptr, static_cast<size_t>(want_bytes), PROT_READ,
                  MAP_SHARED, fd, 0);
  }
  ::close(fd);
  if (valid && addr == MAP_FAILED) {
    return Status::IoError(ErrnoMessage("mmap", path));
  }
  if (valid) {
    TileFileHeader header;
    std::memcpy(&header, addr, sizeof(header));
    const double* payload = reinterpret_cast<const double*>(
        static_cast<const char*>(addr) + kPayloadOffset);
    valid = header.magic == kTileMagic && header.version == kTileVersion &&
            header.tile_index == tile && header.cells == want_cells &&
            header.checksum ==
                Fnv1a(payload, static_cast<size_t>(want_cells) *
                                   sizeof(double));
    if (valid) {
      AddMappedBytes(want_bytes);
      std::shared_ptr<const double> data(
          payload, [addr, want_bytes](const double*) {
            ::munmap(addr, static_cast<size_t>(want_bytes));
            AddMappedBytes(-want_bytes);
          });
      *bytes = want_bytes;
      return data;
    }
    ::munmap(addr, static_cast<size_t>(want_bytes));
  }
  // Unreadable tile: quarantine like StrategyCache so a retry (or an
  // operator) sees the evidence instead of tripping over it forever.
  std::error_code ec;
  std::filesystem::rename(path, path + ".corrupt", ec);
  g_corrupt->Add(1);
  return Status::Corruption("tile store: invalid tile file '" + path +
                            "' (quarantined as .corrupt)");
}

void MmapTileStore::EvictToBudget(int64_t incoming_bytes) const {
  // Keep the hot set within budget counting the incoming tile; a budget
  // smaller than one tile degenerates to "evict everything else", never
  // "refuse the read". Evicted mappings are released by the last TileRef.
  while (!lru_.empty() && hot_bytes_ + incoming_bytes > hot_tile_budget_) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    auto it = hot_.find(victim);
    HDMM_CHECK(it != hot_.end());
    hot_bytes_ -= it->second.bytes;
    hot_.erase(it);
    AddHotTiles(-1);
    g_evictions->Add(1);
  }
}

StatusOr<TileRef> MmapTileStore::Tile(int64_t tile) const {
  HDMM_CHECK(sealed_);
  HDMM_CHECK(tile >= 0 && tile < num_tiles());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hot_.find(tile);
  if (it != hot_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    g_hits->Add(1);
    return TileRef(it->second.data, TileCells(tile));
  }

  int64_t bytes = 0;
  StatusOr<std::shared_ptr<const double>> mapped = MapTile(tile, &bytes);
  if (!mapped.ok()) return mapped.status();
  g_faults->Add(1);
  EvictToBudget(bytes);
  lru_.push_front(tile);
  HotTile hot;
  hot.data = mapped.value();
  hot.bytes = bytes;
  hot.lru_it = lru_.begin();
  hot_bytes_ += bytes;
  hot_.emplace(tile, std::move(hot));
  AddHotTiles(1);
  return TileRef(std::move(mapped).value(), TileCells(tile));
}

int64_t MmapTileStore::HotBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_bytes_;
}

int64_t MmapTileStore::HotTiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(hot_.size());
}

int64_t MmapTileStore::hot_tile_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_tile_budget_;
}

void MmapTileStore::SetHotTileBudget(int64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  hot_tile_budget_ = std::max<int64_t>(0, budget);
  EvictToBudget(0);
}

}  // namespace hdmm
