// Tiled data-vector storage for measurement sessions: the out-of-core
// substrate that lets a session serve box queries over a domain whose
// reconstructed data vector (and its summed-area table) would not fit in
// RAM.
//
// A DataVectorStore holds one flattened length-N vector as fixed-size
// row-major tiles. Two backends:
//
//   MemoryVectorStore  the vector lives in one contiguous heap allocation
//                      (ContiguousData() non-null) — the zero-overhead path
//                      for domains that fit, and the default.
//   MmapTileStore      each tile is its own file under a session directory,
//                      written once during the build pass (through a
//                      transient PROT_WRITE mapping, msync(MS_ASYNC)ed and
//                      unmapped immediately so the build never accumulates
//                      address space), then mapped read-only on demand. A
//                      hot-tile LRU keeps at most `hot_tile_budget` bytes
//                      mapped; eviction unmaps once the last outstanding
//                      TileRef releases, so readers are never invalidated.
//
// Build protocol: AppendTile tiles in order (the last tile may be short),
// then Seal. Seal writes the manifest durably (tmp + fsync + rename, the
// StrategyCache pattern) and is a registered crash site
// (`tile_store.seal`); a store whose seal never completed is rebuilt from
// scratch — the constructor wipes the directory, so a crashed build can
// never leak torn tiles into a later session.
//
// Corruption handling follows StrategyCache: a tile file that fails
// validation on map (size, magic, index, checksum) is renamed to
// `<file>.corrupt` and the read returns kCorruption. Unlike the strategy
// cache there is no way to regenerate a lost tile inside the session — the
// session must be re-measured — so the answer path surfaces the failure
// instead of degrading silently.
//
// Metrics (docs/observability.md): tile_store.{writes,seals,hits,faults,
// evictions,corrupt_quarantined} counters and tile_store.{mapped_bytes,
// hot_tiles} gauges (process-wide across stores). Failpoints:
// tile_store.write.io_error, tile_store.read.io_error, tile_store.seal.
#ifndef HDMM_ENGINE_TILE_STORE_H_
#define HDMM_ENGINE_TILE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "linalg/vector_ops.h"

namespace hdmm {

/// Which DataVectorStore backend a session builds on.
enum class SessionStorage { kMemory, kMmap };

const char* SessionStorageName(SessionStorage backend);
bool ParseSessionStorage(const std::string& text, SessionStorage* out);

/// Session storage knobs, surfaced through EngineOptions and the
/// `hdmm_cli serve` flags. `dir` is the session's private directory for the
/// mmap backend (each store places its tiles in a subdirectory); empty lets
/// the session derive a unique directory under the system temp path.
struct SessionStorageOptions {
  SessionStorage backend = SessionStorage::kMemory;
  /// Per-tile payload bytes (rounded down to whole cells, minimum one).
  int64_t tile_bytes = 1 << 20;
  /// Mapped-bytes budget of the hot-tile LRU (mmap backend). A budget
  /// smaller than one tile still admits the tile being read — it just
  /// evicts everything else first.
  int64_t hot_tile_budget = 64ll << 20;
  std::string dir;
};

/// A pinned, read-only view of one tile. Holds the backing storage alive:
/// the mmap backend may evict the tile from its hot set while refs are
/// outstanding, but the mapping is only released when the last ref drops.
class TileRef {
 public:
  TileRef() = default;
  const double* data() const { return data_.get(); }
  int64_t cells() const { return cells_; }
  explicit operator bool() const { return data_ != nullptr; }

 private:
  friend class MemoryVectorStore;
  friend class MmapTileStore;
  TileRef(std::shared_ptr<const double> data, int64_t cells)
      : data_(std::move(data)), cells_(cells) {}

  std::shared_ptr<const double> data_;
  int64_t cells_ = 0;
};

/// One flattened length-N vector stored as fixed-size tiles. Build
/// (AppendTile xN, Seal) is single-threaded; reads on a sealed store are
/// thread-safe.
class DataVectorStore {
 public:
  virtual ~DataVectorStore() = default;

  int64_t size() const { return size_; }
  int64_t tile_cells() const { return tile_cells_; }
  int64_t num_tiles() const {
    return size_ == 0 ? 0 : (size_ + tile_cells_ - 1) / tile_cells_;
  }
  /// Cells in tile `tile` (the last tile may be short).
  int64_t TileCells(int64_t tile) const {
    const int64_t begin = tile * tile_cells_;
    return std::min(tile_cells_, size_ - begin);
  }
  bool sealed() const { return sealed_; }

  /// Appends the next tile in order; `count` must be TileCells(next).
  virtual Status AppendTile(const double* cells, int64_t count) = 0;
  /// Finishes the build; reads are only valid afterwards.
  virtual Status Seal() = 0;

  /// Pins one tile of a sealed store.
  virtual StatusOr<TileRef> Tile(int64_t tile) const = 0;

  /// Non-null when the whole vector is one contiguous allocation (memory
  /// backend) — the fast path that skips per-read pinning entirely.
  virtual const double* ContiguousData() const { return nullptr; }

  /// The vector, when this backend holds one (memory backend); else null.
  virtual const Vector* AsVector() const { return nullptr; }

  /// One cell of a sealed store; dies (with the store's status message) on
  /// an unreadable tile — inside a session there is no way to regenerate
  /// lost data, so the failure must not be silently absorbed.
  double At(int64_t index) const;

 protected:
  DataVectorStore(int64_t size, int64_t tile_bytes);

  int64_t size_ = 0;
  int64_t tile_cells_ = 1;
  int64_t appended_cells_ = 0;
  bool sealed_ = false;
};

/// Creates the backend named by `options`; `name` is the subdirectory under
/// options.dir used by the mmap backend ("xhat", "prefix").
std::unique_ptr<DataVectorStore> MakeDataVectorStore(
    int64_t size, const SessionStorageOptions& options,
    const std::string& name);

/// In-memory backend: one contiguous Vector.
class MemoryVectorStore : public DataVectorStore {
 public:
  MemoryVectorStore(int64_t size, int64_t tile_bytes);

  /// Wraps an already-materialized vector as a sealed store without
  /// copying — the eager-session path, where the caller hands the session
  /// a reconstructed x_hat it would otherwise free.
  static std::unique_ptr<MemoryVectorStore> Adopt(Vector data,
                                                  int64_t tile_bytes);

  Status AppendTile(const double* cells, int64_t count) override;
  Status Seal() override;
  StatusOr<TileRef> Tile(int64_t tile) const override;
  const double* ContiguousData() const override {
    return sealed_ ? data_.data() : nullptr;
  }
  const Vector* AsVector() const override {
    return sealed_ ? &data_ : nullptr;
  }

 private:
  Vector data_;
};

/// Mmap-backed tiled backend: per-tile files under `dir`, hot-tile LRU.
class MmapTileStore : public DataVectorStore {
 public:
  /// Wipes and (re)creates `dir` — a fresh build can never trip over tiles
  /// from a crashed predecessor. `remove_dir_on_destroy` deletes the
  /// directory with the store (sessions own their storage; pass false to
  /// inspect files after destruction).
  MmapTileStore(int64_t size, int64_t tile_bytes, std::string dir,
                int64_t hot_tile_budget, bool remove_dir_on_destroy = true);
  ~MmapTileStore() override;

  Status AppendTile(const double* cells, int64_t count) override;
  Status Seal() override;
  StatusOr<TileRef> Tile(int64_t tile) const override;

  const std::string& dir() const { return dir_; }
  /// Bytes currently counted against the hot-tile budget.
  int64_t HotBytes() const;
  /// Tiles currently in the hot set.
  int64_t HotTiles() const;
  int64_t hot_tile_budget() const;

  /// Retargets the hot-tile LRU budget and evicts down to it immediately.
  /// The governor's hibernate/resume lever: a budget of 0 drops every hot
  /// mapping (tiles stay sealed on disk; reads still work, one transient
  /// tile at a time), and restoring the old budget lets the LRU refill on
  /// demand. Thread-safe; outstanding TileRefs stay valid — their mappings
  /// are released when the last ref drops.
  void SetHotTileBudget(int64_t budget);

  static constexpr const char* kManifestName = "MANIFEST";

 private:
  struct HotTile {
    std::shared_ptr<const double> data;
    int64_t bytes = 0;
    std::list<int64_t>::iterator lru_it;
  };

  std::string TilePath(int64_t tile) const;
  /// Maps + validates one tile file; quarantines on corruption. Caller
  /// holds mu_.
  StatusOr<std::shared_ptr<const double>> MapTile(int64_t tile,
                                                  int64_t* bytes) const;
  void EvictToBudget(int64_t incoming_bytes) const;

  std::string dir_;
  int64_t hot_tile_budget_ = 0;
  bool remove_dir_on_destroy_ = true;

  mutable std::mutex mu_;
  mutable std::unordered_map<int64_t, HotTile> hot_;
  mutable std::list<int64_t> lru_;  // Front = most recently used.
  mutable int64_t hot_bytes_ = 0;
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_TILE_STORE_H_
