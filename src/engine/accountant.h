// Per-dataset privacy-budget ledger. Strategy selection is data-independent
// and free (Section 7.3 of the paper); only MEASURE spends budget. The
// accountant enforces a hard per-dataset ceiling: a measurement that would
// push the running spend past the configured total is refused *before* any
// noise is drawn, so a refused request leaks nothing.
//
// Two composition regimes (see engine/privacy.h):
//
//   pure-dp  Laplace only; epsilons add. zCDP charges are refused (a
//            Gaussian release has no finite pure-eps cost).
//   zcdp     rho adds (Bun-Steinke): Gaussian charges cost their rho,
//            Laplace charges cost eps^2/2 (Prop 1.4). The running rho is
//            reported as (eps, delta)-DP via eps = rho + 2 sqrt(rho ln(1/d))
//            (Prop 1.3) at the accountant's configured reporting delta.
//
// Durability: the ceiling is only as durable as the ledger. With a
// `ledger_path` every successful charge is appended, flushed, AND fsync'd to
// disk before TryCharge returns — charges are durable before they are
// spendable, so a crash can only over-record (refuse budget that was never
// used), never under-record. Prior charges are replayed at construction.
//
// Ledger format v2 (versioned; one record per line after the header):
//
//   hdmm-budget-ledger v2
//   <mechanism> <epsilon-or-rho> <delta> <dataset...to end of line>
//
// where <mechanism> is `laplace` (value = epsilon, delta = 0) or `gaussian`
// (value = rho, delta = the reporting delta at charge time). Headerless v1
// files (`<epsilon> <dataset>` per line, pure-eps charges) replay cleanly
// and are migrated to v2 in place (atomic tmp + rename) at construction. A
// torn final record without a trailing newline — the signature of a crash
// mid-append, whose charge was by construction never acted on — is dropped
// and truncated away; any other malformed content aborts, because a corrupt
// privacy ledger must never be silently ignored. That abort names the
// offending line number and byte offset and first copies the ledger to
// `<ledger_path>.corrupt`, so the evidence survives the operator's fix.
//
// Cross-process exclusion: the accountant takes a `flock` on
// `<ledger_path>.lock` for its whole lifetime — two serving processes
// replaying one ledger could otherwise jointly spend up to twice the
// ceiling. A held lock is retried with bounded exponential backoff until
// `lock_timeout_ms` elapses (restart orchestration routinely overlaps the
// old process's shutdown with the new one's startup); only after the
// deadline does construction die. Serialize steady-state serving of a
// dataset through one accountant.
#ifndef HDMM_ENGINE_ACCOUNTANT_H_
#define HDMM_ENGINE_ACCOUNTANT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/privacy.h"

namespace hdmm {

struct BudgetAccountantOptions {
  /// Composition regime; fixes the currency of the ceiling and of
  /// Spent/Remaining (epsilon for kPureDp, rho for kZCdp).
  BudgetRegime regime = BudgetRegime::kPureDp;

  /// Per-dataset ceiling in pure-dp regime. Must be positive and finite
  /// when regime == kPureDp.
  double total_epsilon = 1.0;

  /// Per-dataset ceiling in zcdp regime. When 0 (and regime == kZCdp) it is
  /// derived from (total_epsilon, delta) via the Bun-Steinke inverse, i.e.
  /// the largest rho whose reported epsilon stays within total_epsilon.
  double total_rho = 0.0;

  /// Reporting delta for the zcdp regime's rho -> (eps, delta) conversion.
  double delta = 1e-9;

  /// Per-dataset ceiling overrides in REGIME units (epsilon for pure-dp,
  /// rho for zcdp); datasets not listed use the default ceiling above.
  /// Sensitive datasets can be pinned below the fleet-wide default without
  /// a dedicated accountant per dataset. Every override must be positive
  /// and finite (checked at construction). Overrides bound future charges
  /// only — spend already replayed from a ledger is history, exactly like a
  /// lowered default ceiling.
  std::unordered_map<std::string, double> dataset_ceilings;

  /// Durable ledger file; empty keeps the ledger in memory only (resets on
  /// restart — each process would get the full budget again).
  std::string ledger_path;

  /// How long construction keeps retrying a held ledger lock (exponential
  /// backoff, 1ms doubling to a 100ms cap) before dying. 0 means a single
  /// attempt — the pre-backoff fail-fast behavior.
  int lock_timeout_ms = 2000;
};

class BudgetAccountant {
 public:
  /// Dies on non-positive / non-finite ceilings, on a malformed ledger, or
  /// when another accountant holds the ledger lock.
  explicit BudgetAccountant(BudgetAccountantOptions options);

  /// Pure-dp convenience constructor (the pre-zCDP interface): epsilon
  /// ceiling, sequential composition, optional durable ledger.
  explicit BudgetAccountant(double total_epsilon,
                            const std::string& ledger_path = "");
  ~BudgetAccountant();

  BudgetAccountant(const BudgetAccountant&) = delete;
  BudgetAccountant& operator=(const BudgetAccountant&) = delete;

  /// Attempts to charge `charge` against `dataset`'s ledger, durably
  /// recording it when the regime cost fits under the ceiling (up to a
  /// relative tolerance absorbing floating-point accumulation). Non-OK
  /// returns record nothing:
  ///
  ///   kOverBudget          the charge would exceed the ceiling
  ///   kFailedPrecondition  the regime cannot soundly express the charge
  ///                        (a zCDP charge against a pure-dp accountant)
  ///   kIoError             the durable append failed (see below)
  ///
  /// Dies on costs that are not positive and finite: NaN/inf/zero noise
  /// scales are never a meaningful request, so that stays a contract.
  ///
  /// An append failure rolls the ledger file back to the pre-append record
  /// boundary and refuses the charge — the caller must not draw noise. If
  /// even the rollback fails the accountant wedges: every later durable
  /// charge is refused with kIoError, because appending after a torn record
  /// would corrupt the ledger. Failure never under-records spend.
  ///
  /// Failpoints: `accountant.append.io_error` injects an append failure;
  /// crash sites `accountant.append.before`, `accountant.append.torn`
  /// (half the record reaches disk), and `accountant.append.after_sync`
  /// SIGKILL mid-charge.
  Status Charge(const std::string& dataset, const PrivacyCharge& charge);

  /// Bool-shaped wrapper over Charge(): true on OK, otherwise false with
  /// the status message in *why.
  bool TryCharge(const std::string& dataset, const PrivacyCharge& charge,
                 std::string* why = nullptr);

  /// Laplace shorthand: TryCharge(dataset, PrivacyCharge::Laplace(epsilon)).
  bool TryCharge(const std::string& dataset, double epsilon);

  /// Budget already consumed by `dataset` in regime units (epsilon for
  /// pure-dp, rho for zcdp); 0 for unknown datasets.
  double Spent(const std::string& dataset) const;

  /// TotalBudget() - Spent(dataset), clamped at 0.
  double Remaining(const std::string& dataset) const;

  /// Number of successful charges against `dataset`.
  int64_t NumCharges(const std::string& dataset) const;

  /// The default per-dataset ceiling in regime units (== total_epsilon()
  /// for pure-dp, == the rho ceiling for zcdp). Per-dataset overrides are
  /// not reflected here; use TotalBudget(dataset).
  double TotalBudget() const;

  /// The ceiling actually enforced for `dataset` in regime units: its
  /// entry in dataset_ceilings when present, the default otherwise.
  double TotalBudget(const std::string& dataset) const;

  /// The ceiling as an epsilon: the configured total for pure-dp, the
  /// Bun-Steinke (eps, delta) report of the rho ceiling for zcdp.
  double total_epsilon() const;

  /// The (eps, delta)-DP guarantee currently delivered for `dataset`: the
  /// spent epsilon for pure-dp (delta = 0), RhoToEpsilon(spent, delta) for
  /// zcdp.
  double ReportedEpsilon(const std::string& dataset) const;

  BudgetRegime regime() const { return options_.regime; }
  double delta() const { return options_.delta; }

 private:
  struct Ledger {
    double spent = 0.0;  // Regime units: epsilon (pure-dp) or rho (zcdp).
    int64_t charges = 0;
  };

  /// The charge's cost in regime units, or a refusal (false + *why).
  bool RegimeCost(const PrivacyCharge& charge, double* cost,
                  std::string* why) const;

  /// Ceiling for `dataset`: its override or the default. Lock-free —
  /// options_ is immutable after construction.
  double CeilingFor(const std::string& dataset) const;

  void LoadLedger();
  Status AppendRecordLocked(const PrivacyCharge& charge,
                            const std::string& dataset);

  BudgetAccountantOptions options_;
  double total_budget_ = 0.0;  // Ceiling in regime units.
  mutable std::mutex mu_;
  std::unordered_map<std::string, Ledger> ledgers_;
  std::FILE* ledger_file_ = nullptr;  // Append handle when persistent.
  int lock_fd_ = -1;                  // flock'd <ledger_path>.lock handle.
  bool wedged_ = false;  // Append rollback failed; durable charges refused.
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_ACCOUNTANT_H_
