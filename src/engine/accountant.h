// Per-dataset privacy-budget ledger. Strategy selection is data-independent
// and free (Section 7.3 of the paper); only MEASURE spends budget. The
// accountant enforces a hard per-dataset ceiling: a measurement that would
// push the running spend past the configured total is refused *before* any
// noise is drawn, so a refused request leaks nothing.
//
// Two composition regimes (see engine/privacy.h):
//
//   pure-dp  Laplace only; epsilons add. zCDP charges are refused (a
//            Gaussian release has no finite pure-eps cost).
//   zcdp     rho adds (Bun-Steinke): Gaussian charges cost their rho,
//            Laplace charges cost eps^2/2 (Prop 1.4). The running rho is
//            reported as (eps, delta)-DP via eps = rho + 2 sqrt(rho ln(1/d))
//            (Prop 1.3) at the accountant's configured reporting delta.
//
// Durability: the ceiling is only as durable as the ledger. With a
// `ledger_path` every successful charge is appended, flushed, AND fsync'd to
// disk before TryCharge returns — charges are durable before they are
// spendable, so a crash can only over-record (refuse budget that was never
// used), never under-record. Prior charges are replayed at construction.
//
// Ledger format v2 (versioned; one record per line after the header):
//
//   hdmm-budget-ledger v2
//   <mechanism> <epsilon-or-rho> <delta> <dataset...to end of line>
//
// where <mechanism> is `laplace` (value = epsilon, delta = 0) or `gaussian`
// (value = rho, delta = the reporting delta at charge time). Headerless v1
// files (`<epsilon> <dataset>` per line, pure-eps charges) replay cleanly
// and are migrated to v2 in place (atomic tmp + rename) at construction. A
// torn final record without a trailing newline — the signature of a crash
// mid-append, whose charge was by construction never acted on — is dropped
// and truncated away; any other malformed content aborts, because a corrupt
// privacy ledger must never be silently ignored.
//
// Cross-process exclusion: the accountant takes a `flock` on
// `<ledger_path>.lock` for its whole lifetime and dies if another process
// (or another accountant in this process) already holds it — two serving
// processes replaying one ledger could otherwise jointly spend up to twice
// the ceiling. Serialize serving of a dataset through one accountant.
#ifndef HDMM_ENGINE_ACCOUNTANT_H_
#define HDMM_ENGINE_ACCOUNTANT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/privacy.h"

namespace hdmm {

struct BudgetAccountantOptions {
  /// Composition regime; fixes the currency of the ceiling and of
  /// Spent/Remaining (epsilon for kPureDp, rho for kZCdp).
  BudgetRegime regime = BudgetRegime::kPureDp;

  /// Per-dataset ceiling in pure-dp regime. Must be positive and finite
  /// when regime == kPureDp.
  double total_epsilon = 1.0;

  /// Per-dataset ceiling in zcdp regime. When 0 (and regime == kZCdp) it is
  /// derived from (total_epsilon, delta) via the Bun-Steinke inverse, i.e.
  /// the largest rho whose reported epsilon stays within total_epsilon.
  double total_rho = 0.0;

  /// Reporting delta for the zcdp regime's rho -> (eps, delta) conversion.
  double delta = 1e-9;

  /// Durable ledger file; empty keeps the ledger in memory only (resets on
  /// restart — each process would get the full budget again).
  std::string ledger_path;
};

class BudgetAccountant {
 public:
  /// Dies on non-positive / non-finite ceilings, on a malformed ledger, or
  /// when another accountant holds the ledger lock.
  explicit BudgetAccountant(BudgetAccountantOptions options);

  /// Pure-dp convenience constructor (the pre-zCDP interface): epsilon
  /// ceiling, sequential composition, optional durable ledger.
  explicit BudgetAccountant(double total_epsilon,
                            const std::string& ledger_path = "");
  ~BudgetAccountant();

  BudgetAccountant(const BudgetAccountant&) = delete;
  BudgetAccountant& operator=(const BudgetAccountant&) = delete;

  /// Attempts to charge `charge` against `dataset`'s ledger. Returns true
  /// and durably records the charge when the regime cost fits under the
  /// ceiling (up to a relative tolerance absorbing floating-point
  /// accumulation); returns false — recording nothing and, when `why` is
  /// given, explaining — when the charge would exceed the budget or cannot
  /// be soundly expressed in this regime (a zCDP charge against a pure-dp
  /// accountant). Dies on costs that are not positive and finite: NaN/inf/
  /// zero noise scales are never a meaningful request.
  bool TryCharge(const std::string& dataset, const PrivacyCharge& charge,
                 std::string* why = nullptr);

  /// Laplace shorthand: TryCharge(dataset, PrivacyCharge::Laplace(epsilon)).
  bool TryCharge(const std::string& dataset, double epsilon);

  /// Budget already consumed by `dataset` in regime units (epsilon for
  /// pure-dp, rho for zcdp); 0 for unknown datasets.
  double Spent(const std::string& dataset) const;

  /// TotalBudget() - Spent(dataset), clamped at 0.
  double Remaining(const std::string& dataset) const;

  /// Number of successful charges against `dataset`.
  int64_t NumCharges(const std::string& dataset) const;

  /// The per-dataset ceiling in regime units (== total_epsilon() for
  /// pure-dp, == the rho ceiling for zcdp).
  double TotalBudget() const;

  /// The ceiling as an epsilon: the configured total for pure-dp, the
  /// Bun-Steinke (eps, delta) report of the rho ceiling for zcdp.
  double total_epsilon() const;

  /// The (eps, delta)-DP guarantee currently delivered for `dataset`: the
  /// spent epsilon for pure-dp (delta = 0), RhoToEpsilon(spent, delta) for
  /// zcdp.
  double ReportedEpsilon(const std::string& dataset) const;

  BudgetRegime regime() const { return options_.regime; }
  double delta() const { return options_.delta; }

 private:
  struct Ledger {
    double spent = 0.0;  // Regime units: epsilon (pure-dp) or rho (zcdp).
    int64_t charges = 0;
  };

  /// The charge's cost in regime units, or a refusal (false + *why).
  bool RegimeCost(const PrivacyCharge& charge, double* cost,
                  std::string* why) const;

  void LoadLedger();
  void AppendRecordLocked(const PrivacyCharge& charge,
                          const std::string& dataset);

  BudgetAccountantOptions options_;
  double total_budget_ = 0.0;  // Ceiling in regime units.
  mutable std::mutex mu_;
  std::unordered_map<std::string, Ledger> ledgers_;
  std::FILE* ledger_file_ = nullptr;  // Append handle when persistent.
  int lock_fd_ = -1;                  // flock'd <ledger_path>.lock handle.
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_ACCOUNTANT_H_
