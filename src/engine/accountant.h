// Per-dataset privacy-budget ledger with sequential composition. Strategy
// selection is data-independent and free (Section 7.3 of the paper); only
// MEASURE spends budget, and under sequential composition the epsilons of
// successive measurements of the same dataset add. The accountant enforces a
// hard per-dataset ceiling: a measurement that would push the running sum
// past the configured total is refused *before* any noise is drawn, so a
// refused request leaks nothing.
//
// The ceiling is only as durable as the ledger. An in-memory ledger resets
// on restart — each process would get the full budget again — so deployments
// that persist strategies across restarts must persist the ledger too: pass
// `ledger_path` and every successful charge is appended and flushed to that
// file before TryCharge returns, and prior charges are replayed from it on
// construction. Charges are durable before they are spendable.
//
// Scope: one accountant (one process) owns a ledger at a time. The file is
// replayed at construction only and appended without cross-process locking,
// so N concurrent processes sharing a ledger could jointly spend up to N
// times the ceiling. Serialize serving of a dataset through one process;
// cross-process ledger locking is a ROADMAP item.
#ifndef HDMM_ENGINE_ACCOUNTANT_H_
#define HDMM_ENGINE_ACCOUNTANT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hdmm {

class BudgetAccountant {
 public:
  /// `total_epsilon` is the per-dataset ceiling; must be positive and
  /// finite (dies otherwise — an unbounded or non-numeric budget is a
  /// configuration bug, not a runtime condition). A non-empty `ledger_path`
  /// makes the ledger durable: existing charges in the file are replayed
  /// (dying on malformed content — a corrupt privacy ledger must never be
  /// silently ignored), and new charges are appended write-through.
  explicit BudgetAccountant(double total_epsilon,
                            const std::string& ledger_path = "");
  ~BudgetAccountant();

  BudgetAccountant(const BudgetAccountant&) = delete;
  BudgetAccountant& operator=(const BudgetAccountant&) = delete;

  /// Attempts to charge `epsilon` against `dataset`'s ledger. Returns true
  /// and records the charge when spent + epsilon <= total (up to a relative
  /// tolerance absorbing floating-point accumulation); returns false and
  /// records nothing when the charge would exceed the budget. Dies on
  /// epsilon that is not positive and finite: NaN/inf/zero noise scales are
  /// never a meaningful request.
  bool TryCharge(const std::string& dataset, double epsilon);

  /// Budget already consumed by `dataset` (0 for unknown datasets).
  double Spent(const std::string& dataset) const;

  /// total - Spent(dataset), clamped at 0.
  double Remaining(const std::string& dataset) const;

  /// Number of successful charges against `dataset`.
  int64_t NumCharges(const std::string& dataset) const;

  double total_epsilon() const { return total_epsilon_; }

 private:
  struct Ledger {
    double spent = 0.0;
    int64_t charges = 0;
  };

  void ReplayLedgerFile();

  const double total_epsilon_;
  const std::string ledger_path_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Ledger> ledgers_;
  std::FILE* ledger_file_ = nullptr;  // Append handle when persistent.
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_ACCOUNTANT_H_
