// The serving engine: the library's compute-once/serve-many layer.
//
//   Plan        optimize-or-cache — fingerprint the (workload, options) pair,
//               consult the two-tier StrategyCache, and only fall back to
//               OPT_HDMM on a genuine miss.
//   Measure     one budgeted noisy measurement of a dataset: the accountant
//               charges the measurement's privacy cost (epsilon under pure-dp
//               sequential composition, rho under zCDP — refusing over-budget
//               requests before any noise is drawn), then the session holds
//               the release for unlimited free post-processing.
//   AnswerBatch pool-parallel batched answering of point/range/marginal
//               queries. Sessions measured with a marginals strategy answer
//               covered queries directly from the measured marginal tables
//               (no full-domain reconstruction needed); everything else — and
//               uncovered queries — goes through a d-dimensional summed-area
//               table of x_hat (inclusion-exclusion over 2^d corners), built
//               lazily on first use, so a batch never densifies a workload
//               matrix and per-query cost is O(2^d) instead of O(N).
//
// Everything downstream of Measure is post-processing of a differentially
// private release: answering any number of queries from a session consumes
// no additional budget.
#ifndef HDMM_ENGINE_ENGINE_H_
#define HDMM_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/hdmm.h"
#include "core/strategy.h"
#include "engine/accountant.h"
#include "engine/fingerprint.h"
#include "engine/governor.h"
#include "engine/privacy.h"
#include "engine/strategy_cache.h"
#include "engine/tile_store.h"
#include "linalg/matrix.h"
#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// An axis-aligned box query over the domain: the answer is
/// sum_{lo <= t <= hi} x_hat[t] (bounds inclusive, per attribute). Point
/// queries fix every attribute (lo == hi everywhere); marginal-cell queries
/// fix a subset and leave the rest full-range.
struct BoxQuery {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

/// A full-range box over every attribute of `domain` (the Total query).
BoxQuery FullRangeQuery(const Domain& domain);

/// Parses one query line against a domain:
///
///   point    attr=V [attr=V ...]     every attribute required
///   marginal attr=V [attr=V ...]     named attributes fixed, rest summed
///   range    attr=LO:HI [attr=V ...] named attributes bounded, rest full
///
/// Attributes are referenced by name; zero-based indices are accepted only
/// for fully unnamed domains (on a named schema a bare index is rejected —
/// silently binding positions would answer the wrong query if the schema
/// order ever changes). Returns false with a message on malformed input,
/// unknown attributes, out-of-range values, or (for `point`) missing
/// attributes.
bool ParseQueryLine(const std::string& line, const Domain& domain,
                    BoxQuery* out, std::string* error);

/// One measured (noisy, theta-unscaled) marginal table: the unbiased DP
/// estimate of the marginal over `mask`'s attributes, laid out row-major
/// over the kept attributes in ascending attribute order.
struct MeasuredMarginal {
  uint32_t mask = 0;
  std::vector<int> attrs;        ///< Kept attributes, ascending.
  std::vector<int64_t> strides;  ///< Per kept attribute, within the table.
  Vector values;                 ///< Product of kept sizes entries.
};

/// One noisy measurement of a dataset and the state needed to answer
/// queries from it. Two shapes:
///
///   - generic: holds the reconstructed x_hat (and its summed-area table).
///   - marginals-measured: holds the measured marginal tables; box queries
///     whose constrained attributes are covered by an active marginal are
///     answered by summing the (smallest covering) table directly, and the
///     full x_hat + summed-area table is only reconstructed — lazily, once,
///     thread-safely — if an uncovered query arrives.
///
/// Both full-domain vectors (x_hat and its summed-area table) live in
/// DataVectorStores selected by SessionStorageOptions: the in-memory backend
/// keeps the pre-PR behavior (contiguous vectors, lock-free answering),
/// while the mmap backend tiles both vectors onto per-tile files so a
/// session over a domain far larger than RAM still answers box queries by
/// touching only the O(2^d) corner tiles of the summed-area table. The
/// summed-area table is built tile-by-tile in one streaming pass (per-axis
/// prefix seams carried between tiles), so construction never holds the
/// full table either; for marginals-measured sessions even x_hat itself is
/// produced tile-by-tile through MarginalsStreamReconstructor.
///
/// Sessions are safe to share across threads for answering.
///
/// Sessions participate in resource governance (GovernedSession): a session
/// measured through a governed Engine carries an AdmissionTicket charging
/// its footprint estimate against the governor's budget until destruction,
/// and the governor may hibernate an idle mmap session (drop its hot-tile
/// LRUs; answers keep working, one transient tile at a time) to make room
/// for new admissions.
class MeasurementSession : public GovernedSession {
 public:
  /// Generic session over an already-reconstructed x_hat (Laplace charge).
  MeasurementSession(Domain domain, Vector x_hat, double epsilon,
                     std::shared_ptr<const Strategy> strategy,
                     SessionStorageOptions storage = {});

  /// Generic session with an explicit privacy charge.
  MeasurementSession(Domain domain, Vector x_hat, PrivacyCharge charge,
                     std::shared_ptr<const Strategy> strategy,
                     SessionStorageOptions storage = {});

  /// Generic session whose x_hat is produced by `fill` over flattened cell
  /// ranges (fill(begin, end, out) writes cells [begin, end) into out). The
  /// out-of-core construction path: the full data vector never exists in
  /// RAM — on the mmap backend peak transient memory is two tile buffers
  /// plus the per-axis prefix seams, regardless of domain size.
  MeasurementSession(Domain domain,
                     std::function<void(int64_t, int64_t, double*)> fill,
                     PrivacyCharge charge,
                     std::shared_ptr<const Strategy> strategy,
                     SessionStorageOptions storage = {});

  /// Marginals-measured session: `y` is the strategy's raw measurement
  /// vector (theta-weighted marginal tables concatenated in ActiveMasks
  /// order); x_hat reconstruction is deferred until an uncovered query
  /// needs it.
  MeasurementSession(Domain domain,
                     std::shared_ptr<const MarginalsStrategy> strategy,
                     Vector y, PrivacyCharge charge,
                     SessionStorageOptions storage = {});

  /// Removes the session's storage directory (mmap backend) — sessions own
  /// their on-disk state.
  ~MeasurementSession() override;

  const Domain& domain() const { return domain_; }
  Mechanism mechanism() const { return charge_.mechanism; }
  /// Pure-dp cost of this measurement (0 for Gaussian measurements).
  double epsilon() const { return charge_.epsilon; }
  /// zCDP cost of this measurement (0 for Laplace measurements).
  double rho() const { return charge_.rho; }
  const std::shared_ptr<const Strategy>& strategy() const { return strategy_; }

  /// The reconstructed data vector; triggers (and caches) reconstruction on
  /// a marginals-measured session. On the mmap backend this densifies the
  /// whole vector into RAM (cached) — a debugging/accuracy-check affordance,
  /// not the serving path; callers that only answer queries never pay it.
  const Vector& XHat() const;

  /// The storage configuration this session was built with (dir resolved).
  const SessionStorageOptions& storage() const { return storage_; }

  /// The measured marginal tables (empty for generic sessions).
  const std::vector<MeasuredMarginal>& marginal_tables() const {
    return marginal_tables_;
  }

  /// Answers one box query: from the smallest covering measured marginal
  /// when one exists, else in O(2^d) from the summed-area table.
  double Answer(const BoxQuery& q) const;

  /// Answers a batch, sharded across the persistent ThreadPool.
  Vector AnswerBatch(const std::vector<BoxQuery>& queries) const;

  /// AnswerBatch with a cooperative stop: polled once per pool chunk (and
  /// before any lazy materialization), returning kDeadlineExceeded without
  /// side effects — the session stays fully serviceable, and answering is
  /// post-processing so no budget is at stake. Null `cancel` never fails.
  StatusOr<Vector> AnswerBatchOr(const std::vector<BoxQuery>& queries,
                                 const CancelToken* cancel) const;

  /// True when `q` would be answered from a measured marginal table.
  bool CoveredByMarginal(const BoxQuery& q) const;

  /// Governor hooks (GovernedSession). Hibernation only applies to mmap
  /// sessions whose stores exist; both calls are idempotent and safe
  /// against concurrent answering.
  bool Hibernatable() const override;
  void HibernateStores() override;
  void WakeStores() override;

  /// Takes ownership of the admission ticket charging this session against
  /// the engine's governor, and binds the session to it so the hibernation
  /// rung can reach the stores. Called once by Engine::MeasureOr.
  void AttachTicket(AdmissionTicket ticket);

 private:
  void InitStrides();
  void BuildMarginalTables(const MarginalsStrategy& strategy,
                           const Vector& y);
  /// Streams x_hat (produced by `fill` over cell ranges) into the tiled
  /// stores: one pass that appends each x_hat tile and the matching
  /// summed-area-table tile, carrying per-axis prefix seams between tiles —
  /// peak transient memory is two tile buffers plus the seams
  /// (sum_a strides_[a] cells, i.e. ~N / n_0 for the leading attribute's
  /// size n_0), never the full table. With `adopt_xhat` non-null the vector
  /// is adopted as the x_hat store (memory backend, zero copy) instead of
  /// being re-appended. Caller must hold lazy_mu_ or be the constructor.
  void BuildStores(const std::function<void(int64_t, int64_t, double*)>& fill,
                   Vector* adopt_xhat) const;
  /// The covering table with the fewest cells to sum, or nullptr.
  const MeasuredMarginal* CoveringTable(const BoxQuery& q) const;
  /// Answer() minus the governor Touch(): the batched path touches once per
  /// batch at the AnswerBatchOr entry, keeping the per-query loop free of
  /// the ticket's shared counter.
  double AnswerImpl(const BoxQuery& q) const;
  double AnswerFromTable(const MeasuredMarginal& table,
                         const BoxQuery& q) const;
  /// Builds x_hat + summed-area stores on first use (marginals sessions
  /// defer this until an uncovered query arrives). Lock-free once
  /// materialized.
  void EnsureMaterialized() const;
  /// One summed-area-table cell: contiguous read on the memory backend,
  /// tile-pinned read on the mmap backend.
  double PrefixAt(int64_t index) const {
    return prefix_contig_ != nullptr ? prefix_contig_[index]
                                     : prefix_store_->At(index);
  }

  Domain domain_;
  PrivacyCharge charge_;
  std::shared_ptr<const Strategy> strategy_;
  SessionStorageOptions storage_;  // dir resolved to this session's own.
  /// Governor charge; inert when the engine is ungoverned. Unbound first
  /// thing in the destructor (so the governor never touches a dying
  /// session) and released only after the stores unmap (so the byte charge
  /// outlives the mappings it accounts for). Mutable: Touch() from the
  /// const answer path only updates recency metadata.
  mutable AdmissionTicket ticket_;
  std::vector<int64_t> strides_;  // Row-major strides per attribute.
  std::vector<MeasuredMarginal> marginal_tables_;

  mutable Vector y_;  // Raw measurement; released once x_hat materializes.
  mutable std::mutex lazy_mu_;
  mutable std::atomic<bool> materialized_{false};
  mutable std::unique_ptr<DataVectorStore> xhat_store_;
  mutable std::unique_ptr<DataVectorStore> prefix_store_;
  /// Non-null iff prefix_store_ is contiguous (memory backend fast path).
  mutable const double* prefix_contig_ = nullptr;
  mutable Vector xhat_dense_;  // XHat() cache for the mmap backend.
};

struct EngineOptions {
  /// Optimizer configuration; part of the plan fingerprint.
  HdmmOptions optimizer;

  /// Strategy cache configuration (set cache.disk_dir for persistence).
  StrategyCacheOptions cache;

  /// Data-vector storage for measurement sessions. The default (in-memory)
  /// keeps everything in RAM; `mmap` tiles each session's x_hat and
  /// summed-area table onto files so sessions over domains larger than RAM
  /// still serve box queries. `session_storage.dir` is a base directory —
  /// each session gets its own subdirectory under it (a unique temp
  /// directory when empty) and removes it on destruction.
  SessionStorageOptions session_storage;

  /// Accounting regime: pure-dp (Laplace only, epsilons add) or zcdp
  /// (rho adds; Gaussian costs rho, Laplace costs eps^2/2).
  BudgetRegime regime = BudgetRegime::kPureDp;

  /// Per-dataset epsilon ceiling. Under zcdp (with total_rho == 0) this is
  /// converted to the largest rho whose Bun-Steinke report stays within
  /// (total_epsilon, delta).
  double total_epsilon = 1.0;

  /// Direct per-dataset rho ceiling for the zcdp regime; 0 derives it from
  /// (total_epsilon, delta).
  double total_rho = 0.0;

  /// Reporting delta for the zcdp regime.
  double delta = 1e-9;

  /// Per-dataset epsilon-ceiling overrides; datasets not listed get
  /// total_epsilon (or total_rho). Each value is converted to the
  /// accountant's regime units exactly like total_epsilon — passed through
  /// under pure-dp, inverted through Bun-Steinke against `delta` under
  /// zcdp — so a sensitive dataset can be pinned below the fleet default.
  std::unordered_map<std::string, double> dataset_budgets;

  /// Durable budget ledger file (see BudgetAccountant). Deployments that
  /// persist strategies across restarts should persist the ledger too —
  /// otherwise every restart hands out the full budget again.
  std::string ledger_path;

  /// Admission control and the degradation ladder (see engine/governor.h).
  /// With both limits 0 (the default) no governor is constructed and the
  /// serving path is identical to the ungoverned one.
  GovernorOptions governor;
};

/// Where a planned strategy came from.
enum class PlanSource { kMemoryCache, kDiskCache, kOptimized };

const char* PlanSourceName(PlanSource source);

struct PlanResult {
  std::shared_ptr<const Strategy> strategy;
  Fingerprint fingerprint;
  PlanSource source = PlanSource::kOptimized;
  double seconds = 0.0;  ///< Wall time spent inside Plan.
  /// GramCache traffic observed during this plan's optimization window
  /// (both zero on strategy-cache hits — the optimizer never ran). The
  /// counters are deltas of the process-wide cache, so Plan calls running
  /// concurrently see each other's traffic folded in; the numbers are
  /// diagnostics for serial planning (benches, CLI), not an exact per-plan
  /// attribution. A warm gram cache makes even a strategy-cache *miss*
  /// substantially cheaper, since every recognized workload Gram is shared
  /// across plan calls.
  uint64_t gram_cache_hits = 0;
  uint64_t gram_cache_misses = 0;
  /// Non-empty when a freshly optimized strategy could not be written
  /// through to the disk tier (the in-memory plan is still valid, but warm
  /// restarts will re-optimize until the directory is fixed).
  std::string cache_error;
};

/// One measurement request: which mechanism, at what cost.
struct MeasureRequest {
  Mechanism mechanism = Mechanism::kLaplace;
  double epsilon = 0.0;  ///< Laplace budget; required for kLaplace.
  double rho = 0.0;      ///< zCDP budget; required for kGaussian.

  static MeasureRequest Laplace(double epsilon);
  static MeasureRequest Gaussian(double rho);
};

/// The serving facade. Thread-safe: Plan/Measure may be called concurrently;
/// sessions returned by Measure are independent.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Optimize-or-cache. On a miss runs OPT_HDMM and write-throughs the
  /// result; on a hit the optimization is skipped entirely.
  PlanResult Plan(const UnionWorkload& w);

  /// Plan with a cooperative deadline/cancel. The token is polled before
  /// the cache lookup, before each restart job, and once per L-BFGS-B
  /// iteration inside the optimizer, so a ~0.5 s cold plan stops within
  /// a few milliseconds of the deadline. A cancelled plan has no side
  /// effects: the abandoned partial strategy is never cached (it is a
  /// best-so-far, not the deterministic grid winner) and never returned.
  /// Null `cancel` never fails. Strategy selection is data-independent, so
  /// cancelling a plan costs nothing but the wasted CPU.
  StatusOr<PlanResult> PlanOr(const UnionWorkload& w,
                              const CancelToken* cancel);

  /// Plans, charges the request's cost against `dataset_id`, measures the
  /// data vector `x` with the requested mechanism, and builds a session
  /// (marginal-table-backed when the plan is a marginals strategy measured
  /// under Gaussian/Laplace noise; x_hat-backed otherwise). A non-OK
  /// status carries the accountant's refusal — kOverBudget, the regime
  /// mismatch as kFailedPrecondition, or a ledger-append kIoError; the
  /// governor's refusal (kResourceExhausted with a retry_after_ms hint);
  /// or the token's kDeadlineExceeded. No noise is drawn and no budget is
  /// charged in any refused case — admission and cancellation are checked
  /// *before* the accountant, and the accountant refuses before drawing —
  /// and the engine (its cache, accountant, and any previously measured
  /// sessions) remains fully serviceable afterwards.
  StatusOr<std::unique_ptr<MeasurementSession>> MeasureOr(
      const UnionWorkload& w, const std::string& dataset_id, const Vector& x,
      const MeasureRequest& request, Rng* rng,
      const CancelToken* cancel = nullptr);

  /// Pointer-shaped wrapper over MeasureOr: nullptr (with *error holding
  /// the status message) on refusal.
  std::unique_ptr<MeasurementSession> Measure(const UnionWorkload& w,
                                              const std::string& dataset_id,
                                              const Vector& x,
                                              const MeasureRequest& request,
                                              Rng* rng,
                                              std::string* error = nullptr);

  /// Laplace shorthand (the pre-zCDP interface).
  std::unique_ptr<MeasurementSession> Measure(const UnionWorkload& w,
                                              const std::string& dataset_id,
                                              const Vector& x, double epsilon,
                                              Rng* rng,
                                              std::string* error = nullptr);

  BudgetAccountant& accountant() { return accountant_; }
  StrategyCache& cache() { return cache_; }
  const EngineOptions& options() const { return options_; }
  /// Null when both governor limits are 0 (ungoverned engine). Shared with
  /// the admission tickets of live sessions, so sessions may outlive the
  /// engine as they always could.
  ResourceGovernor* governor() { return governor_.get(); }

 private:
  /// x_hat from noisy answers, reusing a per-fingerprint Cholesky factor of
  /// A^T A for explicit strategies (structured strategies reconstruct
  /// through their own cached pseudo-inverses on the shared object).
  Vector Reconstruct(const Strategy& strategy, const Fingerprint& fp,
                     const Vector& y);

  EngineOptions options_;
  StrategyCache cache_;
  BudgetAccountant accountant_;
  std::shared_ptr<ResourceGovernor> governor_;
  std::mutex recon_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Matrix>> recon_chol_;
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_ENGINE_H_
